// Ablation: multi-rail striping across parallel adapters.
//
// Two nodes joined by 1..4 identical Fast-Ethernet-class TCP adapters;
// with more than one adapter the channels form a rail set (the rail
// scheduler splits every large block across the adapters, see
// docs/CHANNELS.md). Large-block bandwidth should scale close to linearly
// with the rail count, because the segments travel concurrently and the
// only serial parts are the descriptor/trailer framing on the primary.
//
// This bench is the regression gate for the rail layer: it fails (exit 1)
// if 2-rail aggregate bandwidth at 1 MiB drops below 1.5x the best single
// rail.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

using namespace mad2;

/// Two nodes with `rail_count` independent TCP adapters; channels
/// ch0..chN-1, grouped into rail set "r" when N > 1.
mad::SessionConfig rails_config(std::size_t rail_count) {
  mad::SessionConfig config;
  config.node_count = 2;
  mad::RailSetDef rails;
  rails.name = "r";
  for (std::size_t i = 0; i < rail_count; ++i) {
    mad::NetworkDef net;
    net.name = "net" + std::to_string(i);
    net.kind = mad::NetworkKind::kTcp;
    net.nodes = {0, 1};
    config.networks.push_back(net);
    const std::string channel = "ch" + std::to_string(i);
    config.channels.emplace_back(channel, net.name);
    rails.channels.push_back(channel);
  }
  if (rail_count > 1) config.rail_sets.push_back(rails);
  return config;
}

/// One-way transfer time (us) of `size`-byte messages on the primary
/// channel, ping-pong averaged (the paper's Section 5.1 methodology).
double one_way_us(std::size_t rail_count, std::size_t size) {
  mad::Session session(rails_config(rail_count));
  const int iterations = 10;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::vector<std::byte> back(size);
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& out = rt.channel("ch0").begin_packing(1);
      out.pack(payload);
      out.end_packing();
      auto& in = rt.channel("ch0").begin_unpacking();
      in.unpack(back);
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < iterations; ++i) {
      auto& in = rt.channel("ch0").begin_unpacking();
      in.unpack(data);
      in.end_unpacking();
      auto& out = rt.channel("ch0").begin_packing(0);
      out.pack(data);
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "striping bench session failed");
  return sim::to_us(end - start) / (2.0 * iterations);
}

std::string format_fixed(double value, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mad2;
  const std::vector<std::uint64_t> sizes{64 * 1024, 256 * 1024, 1 << 20};
  const std::size_t gate_size = 1 << 20;

  std::vector<PerfSeries> series;
  for (std::size_t rails = 1; rails <= 4; ++rails) {
    PerfSeries curve;
    curve.label = std::to_string(rails) + (rails == 1 ? " rail" : " rails");
    for (std::uint64_t size : sizes) {
      const double latency = one_way_us(rails, size);
      curve.points.push_back(
          PerfPoint{size, latency, static_cast<double>(size) / latency});
    }
    series.push_back(std::move(curve));
  }

  Table table({"size", "1 rail", "2 rails", "3 rails", "4 rails",
               "2-rail speedup"});
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    std::vector<std::string> row{format_bytes(sizes[s])};
    for (const PerfSeries& curve : series) {
      row.push_back(format_fixed(curve.points[s].bandwidth_mbs, 1) +
                    " MB/s");
    }
    row.push_back(format_fixed(series[1].points[s].bandwidth_mbs /
                                   series[0].points[s].bandwidth_mbs,
                               2) +
                  "x");
    table.add_row(row);
  }

  std::printf("== Ablation — multi-rail striping bandwidth ==\n");
  table.print();

  if (bench::json_mode(argc, argv)) {
    bench::write_series_json("abl_striping", series);
  }

  const double single = series[0].bandwidth_at(gate_size);
  const double dual = series[1].bandwidth_at(gate_size);
  std::printf("\n2-rail aggregate at 1 MiB: %.1f MB/s (%.2fx of %.1f MB/s "
              "single rail, gate 1.50x)\n",
              dual, dual / single, single);
  if (dual < 1.5 * single) {
    std::printf("FAIL: 2-rail striping below 1.5x single-rail bandwidth\n");
    return 1;
  }
  return 0;
}
