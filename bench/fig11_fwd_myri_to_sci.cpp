// Figure 11: inter-cluster forwarding bandwidth from BIP/Myrinet to
// SISCI/SCI — the bad direction. Paper shape: only ~29 MB/s with 8 kB
// packets and an asymptote below ~36.5 MB/s, because the Myrinet NIC's
// receive DMA has priority on the gateway PCI bus over the CPU's SCI PIO
// sends (Section 6.2.3).
#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mad2;
  const std::vector<std::uint64_t> mtus{8 * 1024, 16 * 1024, 32 * 1024,
                                        64 * 1024, 128 * 1024};
  const auto messages = geometric_sizes(32 * 1024, 2 * 1024 * 1024);

  std::vector<std::string> headers{"message"};
  for (std::uint64_t mtu : mtus) {
    headers.push_back(format_bytes(mtu) + " pkts (MB/s)");
  }
  Table table(std::move(headers));

  std::vector<std::vector<bench::FwdResult>> columns;
  for (std::uint64_t mtu : mtus) {
    columns.push_back(bench::forwarding_sweep(
        mad::NetworkKind::kBip, mad::NetworkKind::kSisci, mtu, messages));
  }
  for (std::size_t row = 0; row < messages.size(); ++row) {
    std::vector<std::string> cells{format_bytes(messages[row])};
    for (const auto& column : columns) {
      cells.push_back(format_mbs(column[row].bandwidth_mbs));
    }
    table.add_row(std::move(cells));
  }
  std::printf("== Figure 11 — forwarding bandwidth: Myrinet -> SCI ==\n");
  table.print();
  std::printf(
      "\nasymptotic: 8kB pkts=%.1f MB/s (paper: 29), 128kB pkts=%.1f MB/s "
      "(paper: <= 36.5)\n",
      columns.front().back().bandwidth_mbs,
      columns.back().back().bandwidth_mbs);
  if (bench::json_mode(argc, argv)) {
    std::vector<bench::FwdJsonSeries> series;
    for (std::size_t i = 0; i < mtus.size(); ++i) {
      series.push_back(bench::FwdJsonSeries{
          "mtu" + std::to_string(mtus[i]), &columns[i]});
    }
    bench::write_fwd_json("fig11", series);
  }
  return 0;
}
