// Shared measurement harness for the figure benchmarks.
//
// All measurements follow the paper's methodology: one-way transfer time
// from ping-pong round trips (Section 5.1, "latency measurements are
// one-way transfer time measurements"), message sizes swept on a log
// scale. Time is virtual (simulator) time; bandwidth is decimal MB/s.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fwd/virtual_channel.hpp"
#include "mad/madeleine.hpp"
#include "mpi/comm.hpp"
#include "util/stats.hpp"

namespace mad2::bench {

/// A fresh two-node session with one network of `kind` and one channel
/// named "ch".
mad::SessionConfig two_node_config(mad::NetworkKind kind);

/// One-way latency (us) of `size`-byte Madeleine messages over `kind`.
/// When `samples` is non-null it receives one one-way latency sample per
/// ping-pong iteration (for percentile reporting).
double mad_one_way_us(mad::NetworkKind kind, std::size_t size,
                      int iterations = 20, SampleSet* samples = nullptr);

/// Full latency/bandwidth sweep for Madeleine over `kind`.
PerfSeries mad_sweep(const std::string& label, mad::NetworkKind kind,
                     const std::vector<std::uint64_t>& sizes);

/// Raw driver sweeps (the "without Madeleine" reference curves).
PerfSeries raw_bip_sweep(const std::vector<std::uint64_t>& sizes);
PerfSeries raw_sisci_sweep(const std::vector<std::uint64_t>& sizes);

/// MPI implementations for Figure 6.
enum class MpiImpl { kChMad, kScampiLike, kScimpichLike };
PerfSeries mpi_sweep(const std::string& label, MpiImpl impl,
                     const std::vector<std::uint64_t>& sizes);

/// Nexus over Madeleine for Figure 7.
PerfSeries nexus_sweep(const std::string& label, mad::NetworkKind kind,
                       const std::vector<std::uint64_t>& sizes);

/// Inter-cluster forwarding bandwidth through a gateway (Figures 10/11):
/// clusters {0,gateway} on `from` and {gateway,2} on `to`.
struct FwdResult {
  std::uint64_t message_bytes = 0;
  double bandwidth_mbs = 0.0;
  /// Per-message transfer time (virtual us, bandwidth-phase average).
  double latency_us = 0.0;
  /// Percentiles of receiver-side per-message landing time (inter-arrival
  /// of end_unpacking completions; the first message includes pipe fill).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// Gateway-node memory counters over the sweep point's session — the
  /// zero-copy forwarding evidence (hw::MemCounters, node 1).
  std::uint64_t gw_memcpy_bytes = 0;
  std::uint64_t gw_alloc_count = 0;
  std::uint64_t gw_pool_recycle_count = 0;
  /// Total payload bytes pushed through the gateway (messages x iters).
  std::uint64_t forwarded_bytes = 0;
};
/// `propagation` turns hop-stamp trace propagation on for the virtual
/// channel (abl_trace_overhead measures its on-path cost against the
/// default-off configuration).
std::vector<FwdResult> forwarding_sweep(
    mad::NetworkKind from, mad::NetworkKind to, std::size_t mtu,
    const std::vector<std::uint64_t>& message_sizes,
    std::size_t pipeline_depth = 2, double sender_rate_mbs = 0.0,
    bool propagation = false);

/// --- Bench JSON trajectory -----------------------------------------------
/// `--json` on a figure bench writes BENCH_<figure>.json next to the table
/// output so the perf trajectory is machine-tracked. Also honors the
/// MAD2_TRACE environment: when tracing is on, the writers below dump a
/// Chrome-trace JSON + metrics JSON next to the bench JSON and reference
/// them from its "trace_file" / "metrics_file" keys.
bool json_mode(int argc, char** argv);

/// The "trace_file"/"metrics_file" JSON lines for a bench sidecar dump:
/// writes BENCH_<figure>_trace.json / BENCH_<figure>_metrics.json when an
/// ambient recorder / registry is installed, null values otherwise. For
/// benches with hand-rolled JSON writers (abl_ib).
std::string trace_sidecar_fields(const std::string& figure);

/// One labeled forwarding curve for the JSON output.
struct FwdJsonSeries {
  std::string label;
  const std::vector<FwdResult>* results;
};

/// Write BENCH_<figure>.json into the current directory: every point
/// carries size, latency_us, bandwidth_mbs and the gateway stats counters.
void write_fwd_json(const std::string& figure,
                    const std::vector<FwdJsonSeries>& series);

/// Same for plain latency/bandwidth curves (the two-node figures).
void write_series_json(const std::string& figure,
                       const std::vector<PerfSeries>& series);

}  // namespace mad2::bench
