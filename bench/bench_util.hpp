// Shared measurement harness for the figure benchmarks.
//
// All measurements follow the paper's methodology: one-way transfer time
// from ping-pong round trips (Section 5.1, "latency measurements are
// one-way transfer time measurements"), message sizes swept on a log
// scale. Time is virtual (simulator) time; bandwidth is decimal MB/s.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fwd/virtual_channel.hpp"
#include "mad/madeleine.hpp"
#include "mpi/comm.hpp"
#include "util/stats.hpp"

namespace mad2::bench {

/// A fresh two-node session with one network of `kind` and one channel
/// named "ch".
mad::SessionConfig two_node_config(mad::NetworkKind kind);

/// One-way latency (us) of `size`-byte Madeleine messages over `kind`.
double mad_one_way_us(mad::NetworkKind kind, std::size_t size,
                      int iterations = 20);

/// Full latency/bandwidth sweep for Madeleine over `kind`.
PerfSeries mad_sweep(const std::string& label, mad::NetworkKind kind,
                     const std::vector<std::uint64_t>& sizes);

/// Raw driver sweeps (the "without Madeleine" reference curves).
PerfSeries raw_bip_sweep(const std::vector<std::uint64_t>& sizes);
PerfSeries raw_sisci_sweep(const std::vector<std::uint64_t>& sizes);

/// MPI implementations for Figure 6.
enum class MpiImpl { kChMad, kScampiLike, kScimpichLike };
PerfSeries mpi_sweep(const std::string& label, MpiImpl impl,
                     const std::vector<std::uint64_t>& sizes);

/// Nexus over Madeleine for Figure 7.
PerfSeries nexus_sweep(const std::string& label, mad::NetworkKind kind,
                       const std::vector<std::uint64_t>& sizes);

/// Inter-cluster forwarding bandwidth through a gateway (Figures 10/11):
/// clusters {0,gateway} on `from` and {gateway,2} on `to`.
struct FwdResult {
  std::uint64_t message_bytes;
  double bandwidth_mbs;
};
std::vector<FwdResult> forwarding_sweep(
    mad::NetworkKind from, mad::NetworkKind to, std::size_t mtu,
    const std::vector<std::uint64_t>& message_sizes,
    std::size_t pipeline_depth = 2, double sender_rate_mbs = 0.0);

}  // namespace mad2::bench
