// Figure 7: Nexus/Madeleine II performance over TCP and over SISCI, with
// raw Madeleine/SISCI for reference. Paper headline: minimal RSR latency
// below 25 us on SCI — far better than Nexus over commodity TCP,
// justifying Madeleine as Nexus's cluster-level protocol.
#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace mad2;
  const auto sizes = geometric_sizes(4, 1 << 20);
  std::vector<PerfSeries> series;
  series.push_back(
      bench::mad_sweep("Madeleine/SISCI", mad::NetworkKind::kSisci, sizes));
  series.push_back(bench::nexus_sweep("Nexus/Mad/SISCI",
                                      mad::NetworkKind::kSisci, sizes));
  series.push_back(
      bench::nexus_sweep("Nexus/Mad/TCP", mad::NetworkKind::kTcp, sizes));
  print_perf_series("Figure 7 — Nexus/Madeleine II performance", series);

  std::printf("Nexus/Mad/SISCI min latency: %.2f us (paper: < 25)\n",
              series[1].min_latency_us());
  std::printf("Nexus/Mad/TCP min latency: %.2f us\n",
              series[2].min_latency_us());
  return 0;
}
