#include "bench_util.hpp"

#include <cstdio>
#include <string_view>

#include "mpi/ch_mad.hpp"
#include "mpi/sci_baselines.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "net/bip.hpp"
#include "net/sisci.hpp"
#include "nexus/nexus.hpp"
#include "util/bytes.hpp"

namespace mad2::bench {

mad::SessionConfig two_node_config(mad::NetworkKind kind) {
  mad::SessionConfig config;
  config.node_count = 2;
  mad::NetworkDef net;
  net.name = "net0";
  net.kind = kind;
  net.nodes = {0, 1};
  config.networks.push_back(net);
  config.channels.push_back(mad::ChannelDef{"ch", "net0"});
  return config;
}

double mad_one_way_us(mad::NetworkKind kind, std::size_t size,
                      int iterations, SampleSet* samples) {
  mad::Session session(two_node_config(kind));
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::vector<std::byte> back(size);
    start = rt.simulator().now();
    sim::Time previous = start;
    for (int i = 0; i < iterations; ++i) {
      auto& out = rt.channel("ch").begin_packing(1);
      out.pack(payload);
      out.end_packing();
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(back);
      in.end_unpacking();
      if (samples != nullptr) {
        const sim::Time t = rt.simulator().now();
        samples->add(sim::to_us(t - previous) / 2.0);
        previous = t;
      }
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < iterations; ++i) {
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(data);
      in.end_unpacking();
      auto& out = rt.channel("ch").begin_packing(0);
      out.pack(data);
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "bench session failed");
  return sim::to_us(end - start) / (2.0 * iterations);
}

namespace {

PerfSeries sweep_with(
    const std::string& label, const std::vector<std::uint64_t>& sizes,
    const std::function<double(std::size_t, SampleSet*)>& one_way_us) {
  PerfSeries series;
  series.label = label;
  for (std::uint64_t size : sizes) {
    SampleSet samples;
    const double latency = one_way_us(size, &samples);
    PerfPoint point{size, latency, static_cast<double>(size) / latency};
    if (samples.count() > 0) {
      point.p50_us = samples.quantile(0.5);
      point.p95_us = samples.quantile(0.95);
      point.p99_us = samples.quantile(0.99);
    }
    series.points.push_back(point);
  }
  return series;
}

}  // namespace

PerfSeries mad_sweep(const std::string& label, mad::NetworkKind kind,
                     const std::vector<std::uint64_t>& sizes) {
  return sweep_with(label, sizes, [kind](std::size_t size,
                                         SampleSet* samples) {
    return mad_one_way_us(kind, size, 20, samples);
  });
}

PerfSeries raw_bip_sweep(const std::vector<std::uint64_t>& sizes) {
  return sweep_with("raw BIP", sizes, [](std::size_t size,
                                         SampleSet* samples) {
    sim::Simulator simulator;
    std::vector<std::unique_ptr<hw::Node>> nodes;
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(std::make_unique<hw::Node>(
          &simulator, i, "n" + std::to_string(i),
          hw::HostParams::pentium_ii_450()));
    }
    net::BipNetwork network(&simulator, {nodes[0].get(), nodes[1].get()},
                            net::BipParams::myrinet_lanai43());
    const std::uint32_t short_max =
        network.params().short_max_bytes;
    const int iterations = 20;
    sim::Time start = 0;
    sim::Time end = 0;
    for (int me = 0; me < 2; ++me) {
      simulator.spawn("p" + std::to_string(me), [&, me] {
        const std::uint32_t other = 1 - me;
        std::vector<std::byte> payload(size, std::byte{1});
        std::vector<std::byte> incoming(size);
        if (me == 0) start = simulator.now();
        sim::Time previous = simulator.now();
        for (int i = 0; i < iterations; ++i) {
          auto do_send = [&] {
            if (size <= short_max) {
              network.port(me).send_short(other, 0, payload);
            } else {
              std::vector<std::byte> ready(1);
              network.port(me).recv_short_copy(1, ready);
              network.port(me).send_long(other, 0, payload);
            }
          };
          auto do_recv = [&] {
            if (size <= short_max) {
              network.port(me).recv_short_copy(0, incoming);
            } else {
              network.port(me).post_recv_long(other, 0, incoming);
              std::vector<std::byte> ready{std::byte{1}};
              network.port(me).send_short(other, 1, ready);
              network.port(me).wait_recv_long(other, 0);
            }
          };
          if (me == 0) {
            do_send();
            do_recv();
            if (samples != nullptr) {
              const sim::Time t = simulator.now();
              samples->add(sim::to_us(t - previous) / 2.0);
              previous = t;
            }
          } else {
            do_recv();
            do_send();
          }
        }
        if (me == 0) end = simulator.now();
      });
    }
    MAD2_CHECK(simulator.run().is_ok(), "raw BIP bench failed");
    return sim::to_us(end - start) / (2.0 * iterations);
  });
}

PerfSeries raw_sisci_sweep(const std::vector<std::uint64_t>& sizes) {
  return sweep_with("raw SISCI", sizes, [](std::size_t size,
                                           SampleSet* samples) {
    sim::Simulator simulator;
    std::vector<std::unique_ptr<hw::Node>> nodes;
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(std::make_unique<hw::Node>(
          &simulator, i, "n" + std::to_string(i),
          hw::HostParams::pentium_ii_450()));
    }
    net::SciNetwork network(&simulator, {nodes[0].get(), nodes[1].get()},
                            net::SciParams::dolphin_d310());
    // Raw SISCI ping-pong through one exported segment per direction,
    // with a sequence flag after the payload.
    const int iterations = 20;
    net::SegmentId seg[2];
    seg[0] = network.port(0).create_segment(size + 8);
    seg[1] = network.port(1).create_segment(size + 8);
    sim::Time start = 0;
    sim::Time end = 0;
    for (int me = 0; me < 2; ++me) {
      simulator.spawn("p" + std::to_string(me), [&, me] {
        const std::uint32_t other = 1 - me;
        auto remote = network.port(me).connect(other, seg[other]);
        auto local = network.port(me).segment_memory(seg[me]);
        std::vector<std::byte> payload(size, std::byte{1});
        if (me == 0) start = simulator.now();
        sim::Time previous = simulator.now();
        for (int i = 0; i < iterations; ++i) {
          auto do_send = [&, i] {
            if (size > 0) network.port(me).pio_write(remote, 0, payload);
            std::byte flag[4];
            store_u32(flag, static_cast<std::uint32_t>(i + 1));
            network.port(me).pio_write(remote, size, flag);
          };
          auto do_recv = [&, i] {
            network.port(me).wait_segment(seg[me], [&] {
              return load_u32(local.data() + size) ==
                     static_cast<std::uint32_t>(i + 1);
            });
            // Drain the payload to host memory like a real consumer.
            nodes[me]->charge_memcpy(size);
          };
          if (me == 0) {
            do_send();
            do_recv();
            if (samples != nullptr) {
              const sim::Time t = simulator.now();
              samples->add(sim::to_us(t - previous) / 2.0);
              previous = t;
            }
          } else {
            do_recv();
            do_send();
          }
        }
        if (me == 0) end = simulator.now();
      });
    }
    MAD2_CHECK(simulator.run().is_ok(), "raw SISCI bench failed");
    return sim::to_us(end - start) / (2.0 * iterations);
  });
}

PerfSeries mpi_sweep(const std::string& label, MpiImpl impl,
                     const std::vector<std::uint64_t>& sizes) {
  return sweep_with(label, sizes, [impl](std::size_t size,
                                         SampleSet* samples) {
    mad::Session session(two_node_config(mad::NetworkKind::kSisci));
    std::unique_ptr<mpi::ChMadWorld> chmad;
    std::unique_ptr<mpi::SciBaselineWorld> baseline;
    mpi::Comm* a = nullptr;
    mpi::Comm* b = nullptr;
    switch (impl) {
      case MpiImpl::kChMad:
        chmad = std::make_unique<mpi::ChMadWorld>(session, "ch");
        a = &chmad->comm(0);
        b = &chmad->comm(1);
        break;
      case MpiImpl::kScampiLike:
        baseline = std::make_unique<mpi::SciBaselineWorld>(
            *session.network("net0").sci,
            mpi::SciBaselineParams::scampi_like());
        a = &baseline->comm(0);
        b = &baseline->comm(1);
        break;
      case MpiImpl::kScimpichLike:
        baseline = std::make_unique<mpi::SciBaselineWorld>(
            *session.network("net0").sci,
            mpi::SciBaselineParams::scimpich_like());
        a = &baseline->comm(0);
        b = &baseline->comm(1);
        break;
    }
    const int iterations = 10;
    sim::Time start = 0;
    sim::Time end = 0;
    session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
      std::vector<std::byte> payload(size, std::byte{1});
      std::vector<std::byte> back(size);
      start = rt.simulator().now();
      sim::Time previous = start;
      for (int i = 0; i < iterations; ++i) {
        a->send(payload, 1, 0);
        a->recv(back, 1, 0);
        if (samples != nullptr) {
          const sim::Time t = rt.simulator().now();
          samples->add(sim::to_us(t - previous) / 2.0);
          previous = t;
        }
      }
      end = rt.simulator().now();
    });
    session.spawn(1, "pong", [&](mad::NodeRuntime&) {
      std::vector<std::byte> data(size);
      for (int i = 0; i < iterations; ++i) {
        b->recv(data, 0, 0);
        b->send(data, 0, 0);
      }
    });
    MAD2_CHECK(session.run().is_ok(), "mpi bench failed");
    return sim::to_us(end - start) / (2.0 * iterations);
  });
}

PerfSeries nexus_sweep(const std::string& label, mad::NetworkKind kind,
                       const std::vector<std::uint64_t>& sizes) {
  return sweep_with(label, sizes, [kind](std::size_t size,
                                         SampleSet* samples) {
    mad::Session session(two_node_config(kind));
    nexus::NexusWorld world(session, "ch");
    const int iterations = 10;
    sim::Time start = 0;
    sim::Time end = 0;
    sim::Time previous = 0;
    int remaining = iterations;
    auto payload = make_pattern_buffer(size, 1);
    world.context(1).register_handler(
        1, [&](std::uint32_t src, nexus::ReadBuffer& buffer) {
          world.context(1).rsr(src, 2,
                               buffer.get_bytes(buffer.remaining()));
        });
    world.context(0).register_handler(
        2, [&](std::uint32_t, nexus::ReadBuffer&) {
          if (samples != nullptr) {
            const sim::Time t = session.simulator().now();
            samples->add(sim::to_us(t - previous) / 2.0);
            previous = t;
          }
          if (--remaining == 0) {
            end = session.simulator().now();
            session.simulator().stop();
            return;
          }
          world.context(0).rsr(1, 1, payload);
        });
    session.spawn(0, "client", [&](mad::NodeRuntime& rt) {
      start = rt.simulator().now();
      previous = start;
      world.context(0).rsr(1, 1, payload);
    });
    MAD2_CHECK(session.run().is_ok(), "nexus bench failed");
    return sim::to_us(end - start) / (2.0 * iterations);
  });
}

std::vector<FwdResult> forwarding_sweep(
    mad::NetworkKind from, mad::NetworkKind to, std::size_t mtu,
    const std::vector<std::uint64_t>& message_sizes,
    std::size_t pipeline_depth, double sender_rate_mbs, bool propagation) {
  std::vector<FwdResult> results;
  for (std::uint64_t message : message_sizes) {
    mad::SessionConfig config;
    config.node_count = 3;
    mad::NetworkDef left;
    left.name = "left";
    left.kind = from;
    left.nodes = {0, 1};
    mad::NetworkDef right;
    right.name = "right";
    right.kind = to;
    right.nodes = {1, 2};
    config.networks = {left, right};
    config.channels = {mad::ChannelDef{"vleft", "left"},
                       mad::ChannelDef{"vright", "right"}};
    mad::Session session(std::move(config));
    fwd::VirtualChannelDef def;
    def.name = "vc";
    def.hops = {"vleft", "vright"};
    def.mtu = mtu;
    def.pipeline_depth = pipeline_depth;
    def.sender_rate_mbs = sender_rate_mbs;
    def.propagation = propagation;
    fwd::VirtualChannel vc(session, def);

    const int iterations = 4;
    sim::Time start = 0;
    sim::Time end = 0;
    session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
      std::vector<std::byte> payload(message, std::byte{1});
      start = rt.simulator().now();
      for (int i = 0; i < iterations; ++i) {
        auto& conn = vc.endpoint(0).begin_packing(2);
        conn.pack(payload);
        conn.end_packing();
      }
      auto& in = vc.endpoint(0).begin_unpacking();
      std::byte ack;
      in.unpack(std::span(&ack, 1));
      in.end_unpacking();
      end = rt.simulator().now();
    });
    SampleSet landings;
    session.spawn(2, "receiver", [&](mad::NodeRuntime& rt) {
      std::vector<std::byte> out(message);
      sim::Time previous = rt.simulator().now();
      for (int i = 0; i < iterations; ++i) {
        auto& conn = vc.endpoint(2).begin_unpacking();
        conn.unpack(out);
        conn.end_unpacking();
        const sim::Time t = rt.simulator().now();
        landings.add(sim::to_us(t - previous));
        previous = t;
      }
      auto& reply = vc.endpoint(2).begin_packing(0);
      std::byte ack{1};
      reply.pack(std::span(&ack, 1));
      reply.end_packing();
    });
    MAD2_CHECK(session.run().is_ok(), "forwarding bench failed");
    FwdResult result;
    result.message_bytes = message;
    result.bandwidth_mbs = static_cast<double>(message) * iterations /
                           (sim::to_seconds(end - start) * 1e6);
    result.latency_us = sim::to_us(end - start) / iterations;
    result.p50_us = landings.quantile(0.5);
    result.p95_us = landings.quantile(0.95);
    result.p99_us = landings.quantile(0.99);
    const hw::MemCounters& gw = session.node(1).mem();
    result.gw_memcpy_bytes = gw.memcpy_bytes;
    result.gw_alloc_count = gw.alloc_count;
    result.gw_pool_recycle_count = gw.pool_recycle_count;
    result.forwarded_bytes =
        static_cast<std::uint64_t>(message) * iterations;
    results.push_back(result);
  }
  return results;
}

// --- Bench JSON trajectory --------------------------------------------------

bool json_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      // Honor MAD2_TRACE for bench runs: the trace/metrics sidecar files
      // the JSON writers emit need an ambient recorder and registry.
      obs::ensure_env_recorder();
      if (obs::recorder() != nullptr && obs::metrics() == nullptr) {
        static obs::MetricsRegistry registry;
        obs::install_metrics(&registry);
      }
      return true;
    }
  }
  return false;
}

namespace {

FILE* open_bench_json(const std::string& figure) {
  const std::string path = "BENCH_" + figure + ".json";
  FILE* out = std::fopen(path.c_str(), "w");
  MAD2_CHECK(out != nullptr, "cannot write bench JSON output");
  return out;
}

}  // namespace

// When tracing is on, dump the recorder / registry next to the bench
// JSON and return the "trace_file"/"metrics_file" lines referencing
// them; null values otherwise (so the schema is stable either way).
std::string trace_sidecar_fields(const std::string& figure) {
  std::string fields = "  \"trace_file\": ";
  if (obs::recorder() != nullptr) {
    const std::string path = "BENCH_" + figure + "_trace.json";
    MAD2_CHECK(obs::write_chrome_trace(*obs::recorder(), path),
               "cannot write bench trace sidecar");
    fields += "\"" + path + "\"";
  } else {
    fields += "null";
  }
  fields += ",\n  \"metrics_file\": ";
  if (obs::metrics() != nullptr) {
    const std::string path = "BENCH_" + figure + "_metrics.json";
    MAD2_CHECK(obs::metrics()->write_json(path),
               "cannot write bench metrics sidecar");
    fields += "\"" + path + "\"";
  } else {
    fields += "null";
  }
  fields += ",\n";
  return fields;
}

void write_fwd_json(const std::string& figure,
                    const std::vector<FwdJsonSeries>& series) {
  FILE* out = open_bench_json(figure);
  std::fprintf(out, "{\n  \"figure\": \"%s\",\n%s  \"series\": [\n",
               figure.c_str(), trace_sidecar_fields(figure).c_str());
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::fprintf(out, "    {\"label\": \"%s\", \"points\": [\n",
                 series[s].label.c_str());
    const auto& results = *series[s].results;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const FwdResult& r = results[i];
      std::fprintf(
          out,
          "      {\"size\": %llu, \"latency_us\": %.3f, "
          "\"bandwidth_mbs\": %.3f, \"p50_us\": %.3f, \"p95_us\": %.3f, "
          "\"p99_us\": %.3f, \"gw_memcpy_bytes\": %llu, "
          "\"gw_alloc_count\": %llu, \"gw_pool_recycle_count\": %llu, "
          "\"forwarded_bytes\": %llu}%s\n",
          static_cast<unsigned long long>(r.message_bytes), r.latency_us,
          r.bandwidth_mbs, r.p50_us, r.p95_us, r.p99_us,
          static_cast<unsigned long long>(r.gw_memcpy_bytes),
          static_cast<unsigned long long>(r.gw_alloc_count),
          static_cast<unsigned long long>(r.gw_pool_recycle_count),
          static_cast<unsigned long long>(r.forwarded_bytes),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", s + 1 < series.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_%s.json\n", figure.c_str());
}

void write_series_json(const std::string& figure,
                       const std::vector<PerfSeries>& series) {
  FILE* out = open_bench_json(figure);
  std::fprintf(out, "{\n  \"figure\": \"%s\",\n%s  \"series\": [\n",
               figure.c_str(), trace_sidecar_fields(figure).c_str());
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::fprintf(out, "    {\"label\": \"%s\", \"points\": [\n",
                 series[s].label.c_str());
    const auto& points = series[s].points;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(out,
                   "      {\"size\": %llu, \"latency_us\": %.3f, "
                   "\"bandwidth_mbs\": %.3f, \"p50_us\": %.3f, "
                   "\"p95_us\": %.3f, \"p99_us\": %.3f}%s\n",
                   static_cast<unsigned long long>(points[i].size_bytes),
                   points[i].latency_us, points[i].bandwidth_mbs,
                   points[i].p50_us, points[i].p95_us, points[i].p99_us,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", s + 1 < series.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_%s.json\n", figure.c_str());
}

}  // namespace mad2::bench
