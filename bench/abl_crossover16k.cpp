// Section 6.2.1: "Madeleine II achieves approximately the same performance
// on top of Myrinet and SCI for messages of size 16 kB ... which suggests
// that the correct packet size should be set to 16 kB". This bench prints
// the per-network curves around the crossover: SCI wins below it, Myrinet
// above it.
#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace mad2;
  const auto sizes = geometric_sizes(1024, 256 * 1024, /*per_octave=*/2);
  PerfSeries sci =
      bench::mad_sweep("Madeleine/SISCI", mad::NetworkKind::kSisci, sizes);
  PerfSeries myri =
      bench::mad_sweep("Madeleine/BIP", mad::NetworkKind::kBip, sizes);
  print_perf_series(
      "Ablation — SCI vs Myrinet crossover (gateway MTU choice)",
      {sci, myri});

  // Locate the crossover: the first size where Myrinet's one-way time
  // beats SCI's.
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (myri.points[i].latency_us < sci.points[i].latency_us) {
      std::printf("crossover at %s (paper: ~16 kB)\n",
                  format_bytes(sizes[i]).c_str());
      break;
    }
  }
  return 0;
}
