// Ablation: the RDMA-class IB driver (docs/RDMA.md).
//
// Three measurements:
//
//  1. Fig4/5-style latency/bandwidth sweep over the IB channel, with the
//     1 MiB points of the BIP and SISCI drivers measured in the same
//     binary as the comparison line. The IB rendezvous path streams
//     MTU-sized fragments through the 450 MB/s PCI DMA engine; after
//     per-fragment overheads the curve tops out around ~267 MB/s at
//     1 MiB — more than double BIP's ~123 MB/s ceiling, the new top line.
//
//  2. Eager/rendezvous crossover: one-way latency of mid-sized blocks
//     with the cutoff forced below (all-rendezvous) and above (all-eager)
//     the block size. Eager pays a send-side copy into the pre-registered
//     pool; rendezvous pays the RTS/CTS round plus registration. The
//     crossover between the two regimes is the `eager_cutoff` knob's
//     reason to exist.
//
//  3. Registration-cache ablation: repeated-buffer rendezvous traffic
//     (the same source and landing buffers over and over, the dominant
//     pattern in real MPI apps) with the per-port cache at its default
//     capacity vs disabled (`regcache_capacity = 0`, register/deregister
//     on every access). The JSON sidecar carries the measured hit rate.
//
// This bench is the CI regression gate for the IB driver: it fails
// (exit 1) unless IB 1 MiB bandwidth beats the best existing driver,
// cache-on bandwidth is >= 1.5x cache-off, and the cache hit rate is
// >= 90% for the repeated-buffer flood.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/ib.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mad2;

std::string format_fixed(double value, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

// --- eager/rendezvous crossover --------------------------------------------

/// One-way latency (us) of `size`-byte messages with a forced cutoff.
double one_way_with_cutoff(std::size_t size, std::size_t cutoff) {
  mad::SessionConfig config = bench::two_node_config(mad::NetworkKind::kIb);
  mad::IbPmmOptions options;
  options.eager_cutoff = cutoff;
  config.channels[0].ib_options = options;
  mad::Session session(std::move(config));
  constexpr int kIterations = 20;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::vector<std::byte> back(size);
    start = rt.simulator().now();
    for (int i = 0; i < kIterations; ++i) {
      auto& out = rt.channel("ch").begin_packing(1);
      out.pack(payload);
      out.end_packing();
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(back);
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < kIterations; ++i) {
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(data);
      in.end_unpacking();
      auto& out = rt.channel("ch").begin_packing(0);
      out.pack(data);
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "ib crossover session failed");
  return sim::to_us(end - start) / (2.0 * kIterations);
}

// --- registration-cache ablation -------------------------------------------

struct CacheResult {
  double bandwidth_mbs = 0.0;
  double hit_rate = 0.0;
  std::uint64_t regs = 0;    // both nodes, cumulative
  std::uint64_t deregs = 0;  // both nodes, cumulative
};

/// Repeated-buffer flood: `iterations` rendezvous blocks of `size` bytes
/// from one persistent source buffer into one persistent landing buffer.
CacheResult run_cache_flood(std::size_t size, int iterations,
                            std::uint32_t capacity) {
  mad::SessionConfig config = bench::two_node_config(mad::NetworkKind::kIb);
  net::IbParams params = net::IbParams::mellanox_like();
  params.regcache_capacity = capacity;
  config.networks[0].ib_params = params;
  mad::Session session(std::move(config));

  sim::Time recv_start = 0;
  sim::Time recv_end = 0;
  session.spawn(0, "tx", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{42});
    for (int i = 0; i < iterations; ++i) {
      auto& conn = rt.channel("ch").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    recv_start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& conn = rt.channel("ch").begin_unpacking();
      conn.unpack(data);
      conn.end_unpacking();
    }
    recv_end = rt.simulator().now();
  });
  MAD2_CHECK(session.run().is_ok(), "ib regcache session failed");

  CacheResult result;
  const double elapsed_us = sim::to_us(recv_end - recv_start);
  result.bandwidth_mbs =
      static_cast<double>(size) * iterations / elapsed_us;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  net::IbNetwork& network = *session.network("net0").ib;
  for (std::uint32_t port = 0; port < 2; ++port) {
    const net::IbRegCacheStats stats =
        network.port(port).reg_cache().stats();
    hits += stats.hits;
    misses += stats.misses;
  }
  if (hits + misses > 0) {
    result.hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  const mad::TrafficStats stats = session.endpoint("ch", 0).stats();
  mad::TrafficStats merged = stats;
  merged.merge(session.endpoint("ch", 1).stats());
  result.regs = merged.mem.reg_count;
  result.deregs = merged.mem.dereg_count;
  return result;
}

// --- JSON sidecar ----------------------------------------------------------

void write_ib_json(const std::vector<PerfSeries>& sweeps,
                   const std::vector<std::uint64_t>& cross_sizes,
                   const std::vector<double>& rendezvous_us,
                   const std::vector<double>& eager_us,
                   const CacheResult& cache_on,
                   const CacheResult& cache_off) {
  FILE* out = std::fopen("BENCH_abl_ib.json", "w");
  MAD2_CHECK(out != nullptr, "cannot write bench JSON output");
  std::fprintf(out, "{\n  \"figure\": \"abl_ib\",\n%s  \"series\": [\n",
               bench::trace_sidecar_fields("abl_ib").c_str());
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    std::fprintf(out, "    {\"label\": \"%s\", \"points\": [\n",
                 sweeps[s].label.c_str());
    for (std::size_t i = 0; i < sweeps[s].points.size(); ++i) {
      const PerfPoint& p = sweeps[s].points[i];
      std::fprintf(out,
                   "      {\"size\": %llu, \"latency_us\": %.3f, "
                   "\"bandwidth_mbs\": %.3f, \"p50_us\": %.3f, "
                   "\"p95_us\": %.3f, \"p99_us\": %.3f}%s\n",
                   static_cast<unsigned long long>(p.size_bytes),
                   p.latency_us, p.bandwidth_mbs, p.p50_us, p.p95_us,
                   p.p99_us, i + 1 < sweeps[s].points.size() ? "," : "");
    }
    std::fprintf(out, "    ]},\n");
  }
  std::fprintf(out, "    {\"label\": \"crossover\", \"points\": [\n");
  for (std::size_t i = 0; i < cross_sizes.size(); ++i) {
    std::fprintf(out,
                 "      {\"size\": %llu, \"rendezvous_us\": %.3f, "
                 "\"eager_us\": %.3f}%s\n",
                 static_cast<unsigned long long>(cross_sizes[i]),
                 rendezvous_us[i], eager_us[i],
                 i + 1 < cross_sizes.size() ? "," : "");
  }
  std::fprintf(out, "    ]}\n  ],\n");
  std::fprintf(
      out,
      "  \"regcache\": {\"on_mbs\": %.3f, \"off_mbs\": %.3f, "
      "\"gain\": %.3f, \"hit_rate\": %.4f, \"on_regs\": %llu, "
      "\"off_regs\": %llu}\n}\n",
      cache_on.bandwidth_mbs, cache_off.bandwidth_mbs,
      cache_on.bandwidth_mbs / cache_off.bandwidth_mbs, cache_on.hit_rate,
      static_cast<unsigned long long>(cache_on.regs),
      static_cast<unsigned long long>(cache_off.regs));
  std::fclose(out);
  std::printf("wrote BENCH_abl_ib.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mad2;

  // 1. Fig4/5-style sweep, IB vs the paper-era top lines.
  const std::vector<std::uint64_t> sizes{4,     16,     64,      256,
                                         1024,  4096,   8192,    16384,
                                         65536, 262144, 1048576};
  std::vector<PerfSeries> sweeps;
  sweeps.push_back(bench::mad_sweep("ib", mad::NetworkKind::kIb, sizes));
  const std::vector<std::uint64_t> top{1048576};
  sweeps.push_back(bench::mad_sweep("bip", mad::NetworkKind::kBip, top));
  sweeps.push_back(
      bench::mad_sweep("sisci", mad::NetworkKind::kSisci, top));

  Table sweep_table({"size", "ib lat us", "ib MB/s"});
  for (const PerfPoint& p : sweeps[0].points) {
    sweep_table.add_row({std::to_string(p.size_bytes),
                         format_fixed(p.latency_us, 2),
                         format_fixed(p.bandwidth_mbs, 1)});
  }
  std::printf("== IB driver — latency/bandwidth sweep ==\n");
  sweep_table.print();
  const double ib_1m = sweeps[0].points.back().bandwidth_mbs;
  const double bip_1m = sweeps[1].points.back().bandwidth_mbs;
  const double sisci_1m = sweeps[2].points.back().bandwidth_mbs;
  std::printf("1 MiB bandwidth: ib %.1f MB/s, bip %.1f, sisci %.1f\n\n",
              ib_1m, bip_1m, sisci_1m);

  // 2. Eager/rendezvous crossover.
  const std::vector<std::uint64_t> cross_sizes{1024, 2048, 4096, 8192,
                                               16384, 32768};
  std::vector<double> rendezvous_us;
  std::vector<double> eager_us;
  Table cross_table({"size", "rendezvous us", "eager us", "winner"});
  for (std::uint64_t size : cross_sizes) {
    // cutoff = 64 forces rendezvous for every probed size; a cutoff above
    // the largest size forces eager.
    const double rdv = one_way_with_cutoff(size, 64);
    const double eag = one_way_with_cutoff(size, 64 * 1024);
    rendezvous_us.push_back(rdv);
    eager_us.push_back(eag);
    cross_table.add_row({std::to_string(size), format_fixed(rdv, 2),
                         format_fixed(eag, 2),
                         rdv < eag ? "rendezvous" : "eager"});
  }
  std::printf("== Eager/rendezvous crossover (forced cutoffs) ==\n");
  cross_table.print();
  std::printf("\n");

  // 3. Registration-cache ablation on repeated-buffer rendezvous traffic.
  constexpr std::size_t kCacheBlock = 64 * 1024;
  constexpr int kCacheIters = 40;
  const CacheResult cache_on =
      run_cache_flood(kCacheBlock, kCacheIters,
                      net::IbParams{}.regcache_capacity);
  const CacheResult cache_off = run_cache_flood(kCacheBlock, kCacheIters, 0);
  const double gain = cache_on.bandwidth_mbs / cache_off.bandwidth_mbs;
  std::printf(
      "== Registration cache, %d x %zu KiB repeated-buffer flood ==\n"
      "cache on:  %8.1f MB/s  hit rate %5.1f%%  %llu regs / %llu deregs\n"
      "cache off: %8.1f MB/s                  %llu regs / %llu deregs\n"
      "gain: %.2fx\n\n",
      kCacheIters, kCacheBlock / 1024, cache_on.bandwidth_mbs,
      100.0 * cache_on.hit_rate,
      static_cast<unsigned long long>(cache_on.regs),
      static_cast<unsigned long long>(cache_on.deregs),
      cache_off.bandwidth_mbs,
      static_cast<unsigned long long>(cache_off.regs),
      static_cast<unsigned long long>(cache_off.deregs), gain);

  if (bench::json_mode(argc, argv)) {
    write_ib_json(sweeps, cross_sizes, rendezvous_us, eager_us, cache_on,
                  cache_off);
  }

  // Gates.
  bool ok = true;
  if (ib_1m <= bip_1m || ib_1m <= sisci_1m) {
    std::printf("FAIL: IB 1 MiB bandwidth (%.1f MB/s) does not beat the "
                "best existing driver (bip %.1f, sisci %.1f)\n",
                ib_1m, bip_1m, sisci_1m);
    ok = false;
  }
  if (gain < 1.5) {
    std::printf("FAIL: registration cache gain %.2fx below 1.5x\n", gain);
    ok = false;
  }
  if (cache_on.hit_rate < 0.9) {
    std::printf("FAIL: registration cache hit rate %.1f%% below 90%%\n",
                100.0 * cache_on.hit_rate);
    ok = false;
  }
  std::printf("gates: ib 1MiB > max(bip, sisci) %s; regcache gain %.2fx "
              "(>= 1.50) %s; hit rate %.1f%% (>= 90%%) %s\n",
              ok || ib_1m > bip_1m ? "ok" : "FAIL", gain,
              gain >= 1.5 ? "ok" : "FAIL", 100.0 * cache_on.hit_rate,
              cache_on.hit_rate >= 0.9 ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
