// Ablation — madtrace overhead. Two properties are gated, not just
// reported:
//
//  1. Tracing never perturbs the simulation: the same workload run with
//     no recorder, and again with a full-category recorder installed,
//     must produce bit-identical virtual times (instrumentation reads
//     the clock, it never advances it).
//  2. A *disabled* instrumentation site is nearly free: with no recorder
//     installed a MAD2_TRACE_EVENT site costs one global load and an
//     untaken branch. A calibrated spin loop with one site per iteration
//     must stay within 1% of the same loop without the site (plus a
//     small absolute guard, since sub-millisecond wall-clock deltas are
//     timer noise).
//  3. Hop-stamp trace propagation is cheap even when ON: a fig10-style
//     forwarding run (SCI -> Myrinet through the gateway) with the
//     `propagation` knob on must keep >= 95% of the propagation-off
//     virtual-time bandwidth. The stamp rides as one extra EXPRESS block
//     per packet (~200 B on a 32 KiB MTU), so the simulated wire cost is
//     well under a percent; a regression here means the stamp grew or
//     leaked onto a hot path.
//
// Exits non-zero when any gate fails, so CI's bench-smoke catches a
// regression that makes tracing expensive when it is off (or propagation
// expensive when it is on).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace {

using namespace mad2;

double wall_seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Best-of-N wall clock: the minimum is the least-noise estimate of the
/// true cost on a time-shared machine.
double best_of(int runs, const std::function<void()>& body) {
  double best = 1e30;
  for (int i = 0; i < runs; ++i) {
    const double t = wall_seconds(body);
    if (t < best) best = t;
  }
  return best;
}

// noinline keeps the loops honest: both bodies compile in isolation, so
// the traced variant really carries the site the library hot paths carry.
// Each iteration does a dependent ALU chain (~tens of ns) — the ballpark
// of the header/cursor work between two instrumentation sites on the
// real pack/unpack paths; gating a site against a ~1 ns empty loop would
// measure code-layout noise, not the site.
__attribute__((noinline)) std::uint64_t spin_plain(std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t x = i | 1;
    for (int k = 0; k < 16; ++k) x = (x * 2654435761ull) ^ (x >> 7);
    acc += x;
  }
  return acc;
}

__attribute__((noinline)) std::uint64_t spin_traced(std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t x = i | 1;
    for (int k = 0; k < 16; ++k) x = (x * 2654435761ull) ^ (x >> 7);
    acc += x;
    MAD2_TRACE_EVENT(obs::Category::kTm, "abl.noop", nullptr, acc);
  }
  return acc;
}

volatile std::uint64_t g_sink = 0;

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::json_mode(argc, argv);
  // The disabled leg needs a truly untraced process: drop any ambient
  // enablement before the first Session calls ensure_env_recorder().
  unsetenv("MAD2_TRACE");

  // --- Gate 1: virtual time is independent of the recorder state. ---------
  const auto workload = [] {
    return bench::mad_one_way_us(mad::NetworkKind::kBip, 16 * 1024,
                                 /*iterations=*/30);
  };
  const double virtual_disabled_us = workload();
  const double wall_disabled =
      best_of(5, [&] { g_sink = g_sink + static_cast<std::uint64_t>(workload()); });

  obs::TraceConfig config;
  config.categories = obs::kAllCategories;
  obs::TraceRecorder recorder(config);
  obs::MetricsRegistry registry;
  obs::install_recorder(&recorder);
  obs::install_metrics(&registry);
  const double virtual_enabled_us = workload();
  const double wall_enabled =
      best_of(5, [&] { g_sink = g_sink + static_cast<std::uint64_t>(workload()); });
  obs::uninstall_recorder(&recorder);
  obs::uninstall_metrics(&registry);

  const bool identical = virtual_disabled_us == virtual_enabled_us;

  // --- Gate 2: a disabled site costs <1% of a trivial loop iteration. -----
  const std::uint64_t spins = 10'000'000ull;
  // Noise on a time-shared machine swings single runs by several percent
  // — far more than the site costs. Measure back-to-back (plain, traced)
  // pairs so slow phases hit both legs of a pair equally, and gate the
  // *median* of the per-pair ratios, which is robust to outlier pairs.
  std::vector<double> ratios;
  double plain = 1e30;
  double traced = 1e30;
  for (int run = 0; run < 15; ++run) {
    const double p =
        wall_seconds([&] { g_sink = g_sink + spin_plain(spins); });
    const double t =
        wall_seconds([&] { g_sink = g_sink + spin_traced(spins); });
    plain = std::min(plain, p);
    traced = std::min(traced, t);
    ratios.push_back(t / p);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio = ratios[ratios.size() / 2];
  const double overhead_pct = (median_ratio - 1.0) * 100.0;
  // Absolute guard: when both minima agree within timer noise (2 ms over
  // ~0.1 s legs) the relative figure is not meaningful.
  const bool site_ok = median_ratio <= 1.01 || traced - plain < 0.002;

  // --- Gate 3: propagation-on forwarding keeps >= 95% of the off bw. ------
  // One fig10 point: 1 MiB messages through the SCI -> Myrinet gateway
  // with 32 KiB packets. Virtual time, so the comparison is exact — the
  // only cost propagation is allowed is its extra wire bytes.
  const std::vector<std::uint64_t> fwd_sizes{1024 * 1024};
  const double fwd_off_mbs =
      bench::forwarding_sweep(mad::NetworkKind::kSisci,
                              mad::NetworkKind::kBip, 32 * 1024, fwd_sizes)
          .front()
          .bandwidth_mbs;
  const double fwd_on_mbs =
      bench::forwarding_sweep(mad::NetworkKind::kSisci,
                              mad::NetworkKind::kBip, 32 * 1024, fwd_sizes,
                              /*pipeline_depth=*/2, /*sender_rate_mbs=*/0.0,
                              /*propagation=*/true)
          .front()
          .bandwidth_mbs;
  const double propagation_ratio = fwd_on_mbs / fwd_off_mbs;
  const bool propagation_ok = propagation_ratio >= 0.95;

  Table table({"measurement", "value"});
  table.add_row({"virtual time, tracing off (us)",
                 std::to_string(virtual_disabled_us)});
  table.add_row({"virtual time, tracing on (us)",
                 std::to_string(virtual_enabled_us)});
  table.add_row({"bit-identical", identical ? "yes" : "NO"});
  char line[64];
  std::snprintf(line, sizeof line, "%.3f", wall_disabled * 1e3);
  table.add_row({"workload wall, tracing off (ms)", line});
  std::snprintf(line, sizeof line, "%.3f", wall_enabled * 1e3);
  table.add_row({"workload wall, tracing on (ms)", line});
  std::snprintf(line, sizeof line, "%+.3f%%", overhead_pct);
  table.add_row({"disabled-site spin overhead", line});
  table.add_row({"disabled-site gate (<1%)", site_ok ? "pass" : "FAIL"});
  std::snprintf(line, sizeof line, "%.3f", fwd_off_mbs);
  table.add_row({"fwd bandwidth, propagation off (MB/s)", line});
  std::snprintf(line, sizeof line, "%.3f", fwd_on_mbs);
  table.add_row({"fwd bandwidth, propagation on (MB/s)", line});
  std::snprintf(line, sizeof line, "%.4f", propagation_ratio);
  table.add_row({"propagation bw ratio", line});
  table.add_row({"propagation gate (>=0.95)",
                 propagation_ok ? "pass" : "FAIL"});
  std::printf("== Ablation — madtrace overhead ==\n");
  table.print();

  if (json) {
    FILE* out = std::fopen("BENCH_abl_trace_overhead.json", "w");
    MAD2_CHECK(out != nullptr, "cannot write bench JSON output");
    std::fprintf(out,
                 "{\n  \"figure\": \"abl_trace_overhead\",\n"
                 "  \"virtual_identical\": %s,\n"
                 "  \"workload_wall_off_ms\": %.3f,\n"
                 "  \"workload_wall_on_ms\": %.3f,\n"
                 "  \"disabled_site_overhead_pct\": %.3f,\n"
                 "  \"disabled_site_gate\": %s,\n"
                 "  \"propagation_off_mbs\": %.3f,\n"
                 "  \"propagation_on_mbs\": %.3f,\n"
                 "  \"propagation_ratio\": %.4f,\n"
                 "  \"propagation_gate\": %s\n}\n",
                 identical ? "true" : "false", wall_disabled * 1e3,
                 wall_enabled * 1e3, overhead_pct,
                 site_ok ? "true" : "false", fwd_off_mbs, fwd_on_mbs,
                 propagation_ratio, propagation_ok ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_abl_trace_overhead.json\n");
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: tracing changed virtual time (%.6f != %.6f us)\n",
                 virtual_disabled_us, virtual_enabled_us);
    return 1;
  }
  if (!site_ok) {
    std::fprintf(stderr,
                 "FAIL: disabled trace site costs %.3f%% (gate: 1%%)\n",
                 overhead_pct);
    return 1;
  }
  if (!propagation_ok) {
    std::fprintf(stderr,
                 "FAIL: hop-stamp propagation keeps only %.1f%% of the "
                 "propagation-off forwarding bandwidth (gate: 95%%)\n",
                 100.0 * propagation_ratio);
    return 1;
  }
  return 0;
}
