// Figure 4: latency and bandwidth of Madeleine II over SISCI/SCI, with
// the raw SISCI curve for reference. Paper headline numbers: 3.9 us
// minimal latency, 82 MB/s asymptotic bandwidth, dual-buffering visible
// above 8 kB.
#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace mad2;
  const auto sizes = geometric_sizes(4, 1 << 20);
  std::vector<PerfSeries> series;
  series.push_back(bench::raw_sisci_sweep(sizes));
  series.push_back(
      bench::mad_sweep("Madeleine/SISCI", mad::NetworkKind::kSisci, sizes));
  print_perf_series("Figure 4 — SISCI/SCI latency and bandwidth", series);

  std::printf("min latency: raw=%.2f us, Madeleine=%.2f us (paper: 3.9)\n",
              series[0].min_latency_us(), series[1].min_latency_us());
  std::printf("peak bandwidth: raw=%.1f MB/s, Madeleine=%.1f MB/s "
              "(paper: 82)\n",
              series[0].peak_bandwidth_mbs(),
              series[1].peak_bandwidth_mbs());
  return 0;
}
