// Ablation: the SISCI bulk ring buffer capacity sets where Figure 4's
// dual-buffering kink sits. The paper's implementation uses 8 kB buffers
// ("this algorithm is activated for data blocks larger than 8 kB");
// sweeping the capacity moves the kink and trades small-block latency
// against pipelining granularity.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

double one_way_us(std::uint32_t bulk_capacity, std::size_t size) {
  using namespace mad2;
  mad::SessionConfig config =
      bench::two_node_config(mad::NetworkKind::kSisci);
  mad::SciPmmOptions options;
  options.bulk_capacity = bulk_capacity;
  config.channels[0].sci_options = options;
  mad::Session session(std::move(config));
  const int iterations = 10;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::vector<std::byte> back(size);
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& out = rt.channel("ch").begin_packing(1);
      out.pack(payload);
      out.end_packing();
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(back);
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < iterations; ++i) {
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(data);
      in.end_unpacking();
      auto& out = rt.channel("ch").begin_packing(0);
      out.pack(data);
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "ring bench failed");
  return mad2::sim::to_us(end - start) / (2.0 * iterations);
}

}  // namespace

int main() {
  using namespace mad2;
  const std::vector<std::uint32_t> capacities{2048, 4096, 8192, 16384,
                                              32768};
  const auto sizes = geometric_sizes(1024, 512 * 1024);

  std::vector<std::string> headers{"size"};
  for (std::uint32_t capacity : capacities) {
    headers.push_back(format_bytes(capacity) + " ring (MB/s)");
  }
  Table table(std::move(headers));
  for (std::uint64_t size : sizes) {
    std::vector<std::string> row{format_bytes(size)};
    for (std::uint32_t capacity : capacities) {
      row.push_back(format_mbs(static_cast<double>(size) /
                               one_way_us(capacity, size)));
    }
    table.add_row(std::move(row));
  }
  std::printf("== Ablation — SISCI bulk ring capacity (the Figure 4 kink) "
              "==\n");
  table.print();
  std::printf("\nthe per-size bandwidth step moves with the buffer size;\n"
              "the paper's 8 kB is the latency/pipelining compromise\n");
  return 0;
}
