// Host-time microbenchmarks (google-benchmark): the real CPU cost of the
// simulator substrate and the Madeleine hot paths. These measure wall
// clock, not virtual time — they answer "how fast does the simulation
// itself run", which bounds how large an experiment the harness can
// sweep.
//
// With --json the binary instead runs traced ping-pong workloads per
// driver and writes BENCH_micro_pack.json: virtual-time pack-path
// latency percentiles (p50/p99) taken from the madtrace histograms the
// Switch records ("ch.pack_to_wire", "ch.wire_to_unpack", "ch.e2e"), so
// CI keeps a trajectory of the library's per-message overhead
// distribution, not just its mean.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mad/madeleine.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"

namespace {

using namespace mad2;

void BM_FiberSpawnAndJoin(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 100; ++i) {
      simulator.spawn("f", [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FiberSpawnAndJoin);

void BM_FiberContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    simulator.spawn("a", [&] {
      for (int i = 0; i < 1000; ++i) simulator.yield_fiber();
    });
    simulator.spawn("b", [&] {
      for (int i = 0; i < 1000; ++i) simulator.yield_fiber();
    });
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FiberContextSwitch);

void BM_SessionSetup(benchmark::State& state) {
  for (auto _ : state) {
    mad::Session session(
        bench::two_node_config(mad::NetworkKind::kSisci));
    benchmark::DoNotOptimize(&session);
  }
}
BENCHMARK(BM_SessionSetup);

void BM_MadMessageRoundTrip(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    // One full simulated ping-pong, measured in host time.
    benchmark::DoNotOptimize(
        bench::mad_one_way_us(mad::NetworkKind::kBip, size,
                              /*iterations=*/1));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(size) * 2);
}
BENCHMARK(BM_MadMessageRoundTrip)->Arg(64)->Arg(64 * 1024);

void BM_PatternFillVerify(benchmark::State& state) {
  std::vector<std::byte> buffer(64 * 1024);
  for (auto _ : state) {
    fill_pattern(buffer, 42);
    benchmark::DoNotOptimize(verify_pattern(buffer, 42));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buffer.size()) * 2);
}
BENCHMARK(BM_PatternFillVerify);

// --- --json mode: virtual-time pack-path percentiles ------------------------

struct PackPathPoint {
  std::uint64_t size_bytes = 0;
  double one_way_us = 0.0;
  std::uint64_t messages = 0;
  double pack_to_wire_p50_us = 0.0;
  double pack_to_wire_p99_us = 0.0;
  double wire_to_unpack_p50_us = 0.0;
  double wire_to_unpack_p99_us = 0.0;
  double e2e_p50_us = 0.0;
  double e2e_p99_us = 0.0;
};

double percentile_us(const obs::MetricsRegistry& registry,
                     const std::string& name, double q) {
  auto it = registry.histograms().find(name);
  if (it == registry.histograms().end()) return 0.0;
  return static_cast<double>(it->second.percentile(q)) / 1000.0;
}

/// One traced ping-pong per (driver, size), with a registry local to the
/// run so the shared channel name "ch" never mixes drivers or sizes.
PackPathPoint traced_point(mad::NetworkKind kind, std::uint64_t size) {
  obs::MetricsRegistry* previous = obs::metrics();
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  PackPathPoint point;
  point.size_bytes = size;
  point.one_way_us = bench::mad_one_way_us(kind, size, /*iterations=*/40);
  obs::install_metrics(previous);

  auto e2e = registry.histograms().find("ch.e2e");
  point.messages =
      e2e == registry.histograms().end() ? 0 : e2e->second.count();
  point.pack_to_wire_p50_us = percentile_us(registry, "ch.pack_to_wire", 0.5);
  point.pack_to_wire_p99_us = percentile_us(registry, "ch.pack_to_wire", 0.99);
  point.wire_to_unpack_p50_us =
      percentile_us(registry, "ch.wire_to_unpack", 0.5);
  point.wire_to_unpack_p99_us =
      percentile_us(registry, "ch.wire_to_unpack", 0.99);
  point.e2e_p50_us = percentile_us(registry, "ch.e2e", 0.5);
  point.e2e_p99_us = percentile_us(registry, "ch.e2e", 0.99);
  return point;
}

int run_json_mode() {
  struct Driver {
    const char* label;
    mad::NetworkKind kind;
  };
  const std::vector<Driver> drivers{
      {"bip", mad::NetworkKind::kBip},
      {"sisci", mad::NetworkKind::kSisci},
      {"tcp", mad::NetworkKind::kTcp},
      {"ib", mad::NetworkKind::kIb},
  };
  const std::vector<std::uint64_t> sizes{64, 4096, 64 * 1024};

  FILE* out = std::fopen("BENCH_micro_pack.json", "w");
  MAD2_CHECK(out != nullptr, "cannot write bench JSON output");
  std::fprintf(out, "{\n  \"figure\": \"micro_pack\",\n  \"series\": [\n");
  for (std::size_t d = 0; d < drivers.size(); ++d) {
    std::fprintf(out, "    {\"label\": \"%s\", \"points\": [\n",
                 drivers[d].label);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const PackPathPoint p = traced_point(drivers[d].kind, sizes[i]);
      std::printf("%-6s %7llu B: one-way %.2f us, pack_to_wire p50/p99 "
                  "%.2f/%.2f us, e2e p50/p99 %.2f/%.2f us (%llu msgs)\n",
                  drivers[d].label,
                  static_cast<unsigned long long>(p.size_bytes),
                  p.one_way_us, p.pack_to_wire_p50_us, p.pack_to_wire_p99_us,
                  p.e2e_p50_us, p.e2e_p99_us,
                  static_cast<unsigned long long>(p.messages));
      std::fprintf(
          out,
          "      {\"size\": %llu, \"latency_us\": %.3f, "
          "\"messages\": %llu, "
          "\"pack_to_wire_p50_us\": %.3f, \"pack_to_wire_p99_us\": %.3f, "
          "\"wire_to_unpack_p50_us\": %.3f, "
          "\"wire_to_unpack_p99_us\": %.3f, "
          "\"e2e_p50_us\": %.3f, \"e2e_p99_us\": %.3f}%s\n",
          static_cast<unsigned long long>(p.size_bytes), p.one_way_us,
          static_cast<unsigned long long>(p.messages),
          p.pack_to_wire_p50_us, p.pack_to_wire_p99_us,
          p.wire_to_unpack_p50_us, p.wire_to_unpack_p99_us, p.e2e_p50_us,
          p.e2e_p99_us, i + 1 < sizes.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", d + 1 < drivers.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_micro_pack.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (mad2::bench::json_mode(argc, argv)) return run_json_mode();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
