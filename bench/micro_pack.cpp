// Host-time microbenchmarks (google-benchmark): the real CPU cost of the
// simulator substrate and the Madeleine hot paths. These measure wall
// clock, not virtual time — they answer "how fast does the simulation
// itself run", which bounds how large an experiment the harness can
// sweep.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "mad/madeleine.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"

namespace {

using namespace mad2;

void BM_FiberSpawnAndJoin(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 100; ++i) {
      simulator.spawn("f", [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FiberSpawnAndJoin);

void BM_FiberContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    simulator.spawn("a", [&] {
      for (int i = 0; i < 1000; ++i) simulator.yield_fiber();
    });
    simulator.spawn("b", [&] {
      for (int i = 0; i < 1000; ++i) simulator.yield_fiber();
    });
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FiberContextSwitch);

void BM_SessionSetup(benchmark::State& state) {
  for (auto _ : state) {
    mad::Session session(
        bench::two_node_config(mad::NetworkKind::kSisci));
    benchmark::DoNotOptimize(&session);
  }
}
BENCHMARK(BM_SessionSetup);

void BM_MadMessageRoundTrip(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    // One full simulated ping-pong, measured in host time.
    benchmark::DoNotOptimize(
        bench::mad_one_way_us(mad::NetworkKind::kBip, size,
                              /*iterations=*/1));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(size) * 2);
}
BENCHMARK(BM_MadMessageRoundTrip)->Arg(64)->Arg(64 * 1024);

void BM_PatternFillVerify(benchmark::State& state) {
  std::vector<std::byte> buffer(64 * 1024);
  for (auto _ : state) {
    fill_pattern(buffer, 42);
    benchmark::DoNotOptimize(verify_pattern(buffer, 42));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buffer.size()) * 2);
}
BENCHMARK(BM_PatternFillVerify);

}  // namespace

BENCHMARK_MAIN();
