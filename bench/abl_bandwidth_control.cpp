// The paper's future work, implemented (Conclusion: "the sharing of the
// gateway internal system bus bandwidth appears to be a central issue:
// some sophisticated bandwidth control mechanism is needed to regulate
// the incoming communication flow on gateways").
//
// Senders pace their packet departures with a token bucket
// (VirtualChannelDef::sender_rate_mbs). In the bad direction
// (Myrinet -> SCI), capping the inbound flow near the gateway's
// sustainable rate reduces PCI thrash against the outgoing PIO stream;
// over-throttling simply wastes capacity.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace mad2;
  const std::vector<std::uint64_t> message{1024 * 1024};
  Table table({"sender pacing", "Myri->SCI (MB/s)", "SCI->Myri (MB/s)"});
  for (double rate : {0.0, 60.0, 45.0, 35.0, 25.0}) {
    const auto bad = bench::forwarding_sweep(
        mad::NetworkKind::kBip, mad::NetworkKind::kSisci, 64 * 1024,
        message, 2, rate);
    const auto good = bench::forwarding_sweep(
        mad::NetworkKind::kSisci, mad::NetworkKind::kBip, 64 * 1024,
        message, 2, rate);
    const std::string label =
        rate == 0.0 ? "unpaced" : format_mbs(rate) + " MB/s";
    table.add_row({label, format_mbs(bad[0].bandwidth_mbs),
                   format_mbs(good[0].bandwidth_mbs)});
  }
  std::printf("== Ablation — gateway bandwidth control (paper future "
              "work) ==\n");
  table.print();
  return 0;
}
