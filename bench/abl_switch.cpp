// Ablation (Section 4.1): the cost of TM switches. When consecutive
// blocks select different Transmission Modules, the Switch must flush
// (commit) the previous BMM to preserve delivery order. This bench sends
// messages whose blocks alternate between the short and bulk TMs, vs the
// same bytes in TM-sorted order (one switch instead of many).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

double mixed_message_one_way_us(mad2::mad::NetworkKind kind,
                                bool alternating) {
  using namespace mad2;
  // 8 small (64 B) + 8 large (16 kB) blocks, interleaved or sorted.
  std::vector<std::size_t> blocks;
  for (int i = 0; i < 8; ++i) {
    if (alternating) {
      blocks.push_back(64);
      blocks.push_back(16 * 1024);
    }
  }
  if (!alternating) {
    blocks.assign(8, 64);
    blocks.insert(blocks.end(), 8, 16 * 1024);
  }

  mad::Session session(bench::two_node_config(kind));
  const int iterations = 10;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
    std::vector<std::vector<std::byte>> payloads;
    for (std::size_t size : blocks) {
      payloads.emplace_back(size, std::byte{1});
    }
    std::byte ack;
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& out = rt.channel("ch").begin_packing(1);
      for (auto& block : payloads) out.pack(block);
      out.end_packing();
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(std::span(&ack, 1));
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](mad::NodeRuntime& rt) {
    std::vector<std::vector<std::byte>> sinks;
    for (std::size_t size : blocks) sinks.emplace_back(size);
    std::byte ack{1};
    for (int i = 0; i < iterations; ++i) {
      auto& in = rt.channel("ch").begin_unpacking();
      for (auto& sink : sinks) in.unpack(sink);
      in.end_unpacking();
      auto& out = rt.channel("ch").begin_packing(0);
      out.pack(std::span(&ack, 1));
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "switch bench failed");
  return mad2::sim::to_us(end - start) / (2.0 * iterations);
}

}  // namespace

int main() {
  using namespace mad2;
  Table table({"network", "alternating TMs (us)", "sorted TMs (us)",
               "switch overhead"});
  for (auto kind : {mad::NetworkKind::kBip, mad::NetworkKind::kSisci,
                    mad::NetworkKind::kVia}) {
    const double alternating = mixed_message_one_way_us(kind, true);
    const double sorted = mixed_message_one_way_us(kind, false);
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%+.1f%%",
                  (alternating / sorted - 1.0) * 100.0);
    table.add_row({std::string(to_string(kind)), format_us(alternating),
                   format_us(sorted), overhead});
  }
  std::printf("== Ablation — Switch/TM-flush cost (8x64B + 8x16kB blocks) "
              "==\n");
  table.print();
  return 0;
}
