// Figure 10: inter-cluster forwarding bandwidth from SISCI/SCI to
// BIP/Myrinet through the gateway, for packet (MTU) sizes 8-128 kB.
// Paper shape: ~36.5 MB/s with 8 kB packets, rising toward ~49.5 MB/s
// with 128 kB packets; the ceiling is the gateway's shared PCI bus
// (theoretical one-way max 66 MB/s, eroded by full-duplex conflicts).
#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mad2;
  const std::vector<std::uint64_t> mtus{8 * 1024, 16 * 1024, 32 * 1024,
                                        64 * 1024, 128 * 1024};
  const auto messages = geometric_sizes(32 * 1024, 2 * 1024 * 1024);

  std::vector<std::string> headers{"message"};
  for (std::uint64_t mtu : mtus) {
    headers.push_back(format_bytes(mtu) + " pkts (MB/s)");
  }
  Table table(std::move(headers));

  std::vector<std::vector<bench::FwdResult>> columns;
  for (std::uint64_t mtu : mtus) {
    columns.push_back(bench::forwarding_sweep(
        mad::NetworkKind::kSisci, mad::NetworkKind::kBip, mtu, messages));
  }
  for (std::size_t row = 0; row < messages.size(); ++row) {
    std::vector<std::string> cells{format_bytes(messages[row])};
    for (const auto& column : columns) {
      cells.push_back(format_mbs(column[row].bandwidth_mbs));
    }
    table.add_row(std::move(cells));
  }
  std::printf("== Figure 10 — forwarding bandwidth: SCI -> Myrinet ==\n");
  table.print();
  std::printf(
      "\nasymptotic: 8kB pkts=%.1f MB/s (paper: 36.5), 128kB pkts=%.1f "
      "MB/s (paper: ~49.5)\n",
      columns.front().back().bandwidth_mbs,
      columns.back().back().bandwidth_mbs);
  if (bench::json_mode(argc, argv)) {
    std::vector<bench::FwdJsonSeries> series;
    for (std::size_t i = 0; i < mtus.size(); ++i) {
      series.push_back(bench::FwdJsonSeries{
          "mtu" + std::to_string(mtus[i]), &columns[i]});
    }
    bench::write_fwd_json("fig10", series);
  }
  return 0;
}
