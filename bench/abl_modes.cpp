// Ablation (Section 2.2): cost of the pack/unpack flag combinations. The
// flags exist precisely because their costs differ per network — e.g.
// send_SAFER forces eager handling, receive_EXPRESS forces immediate
// extraction. This bench times a 4 kB block under every combination on
// every network.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

double mode_one_way_us(mad2::mad::NetworkKind kind, mad2::mad::SendMode s,
                       mad2::mad::ReceiveMode r, std::size_t size) {
  using namespace mad2;
  mad::Session session(bench::two_node_config(kind));
  const int iterations = 10;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::byte ack;
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& out = rt.channel("ch").begin_packing(1);
      out.pack(payload, s, r);
      out.end_packing();
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(std::span(&ack, 1));
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> sink(size);
    std::byte ack{1};
    for (int i = 0; i < iterations; ++i) {
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(sink, s, r);
      in.end_unpacking();
      auto& out = rt.channel("ch").begin_packing(0);
      out.pack(std::span(&ack, 1));
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "modes bench failed");
  return mad2::sim::to_us(end - start) / (2.0 * iterations);
}

}  // namespace

int main() {
  using namespace mad2;
  using mad::ReceiveMode;
  using mad::SendMode;
  const std::size_t size = 4096;
  Table table({"combination", "bip (us)", "sisci (us)", "tcp (us)",
               "via (us)"});
  for (SendMode s :
       {mad::send_SAFER, mad::send_LATER, mad::send_CHEAPER}) {
    for (ReceiveMode r : {mad::receive_EXPRESS, mad::receive_CHEAPER}) {
      std::vector<std::string> row{std::string(to_string(s)) + " + " +
                                   std::string(to_string(r))};
      for (auto kind : {mad::NetworkKind::kBip, mad::NetworkKind::kSisci,
                        mad::NetworkKind::kTcp, mad::NetworkKind::kVia}) {
        row.push_back(format_us(mode_one_way_us(kind, s, r, size)));
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("== Ablation — flag combination matrix (4 kB block) ==\n");
  table.print();
  return 0;
}
