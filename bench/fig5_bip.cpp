// Figure 5: latency and bandwidth of Madeleine II over BIP/Myrinet vs the
// raw BIP interface. Paper headline numbers: raw BIP 5 us / 126 MB/s,
// Madeleine 7 us / 122 MB/s.
#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace mad2;
  const auto sizes = geometric_sizes(4, 1 << 20);
  std::vector<PerfSeries> series;
  series.push_back(bench::raw_bip_sweep(sizes));
  series.push_back(
      bench::mad_sweep("Madeleine/BIP", mad::NetworkKind::kBip, sizes));
  print_perf_series("Figure 5 — BIP/Myrinet latency and bandwidth", series);

  std::printf(
      "min latency: raw=%.2f us (paper: 5), Madeleine=%.2f us (paper: 7)\n",
      series[0].min_latency_us(), series[1].min_latency_us());
  std::printf(
      "peak bandwidth: raw=%.1f MB/s (paper: 126), Madeleine=%.1f MB/s "
      "(paper: 122)\n",
      series[0].peak_bandwidth_mbs(), series[1].peak_bandwidth_mbs());
  return 0;
}
