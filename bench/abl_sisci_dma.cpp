// Ablation (Section 5.2.1 text): the SISCI DMA TM is implemented but
// shipped disabled — the D310 DMA engine cannot beat PIO (paper: at most
// 35 MB/s vs 82 MB/s). This bench enables it and shows why.
#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

double dma_one_way_us(std::size_t size) {
  using namespace mad2;
  mad::SessionConfig config = bench::two_node_config(
      mad::NetworkKind::kSisci);
  mad::SciPmmOptions options;
  options.enable_dma = true;
  options.dma_min_bytes = 4096;  // route everything sizable through DMA
  config.channels[0].sci_options = options;
  mad::Session session(std::move(config));
  const int iterations = 10;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::vector<std::byte> back(size);
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& out = rt.channel("ch").begin_packing(1);
      out.pack(payload);
      out.end_packing();
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(back);
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < iterations; ++i) {
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(data);
      in.end_unpacking();
      auto& out = rt.channel("ch").begin_packing(0);
      out.pack(data);
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "dma bench failed");
  return sim::to_us(end - start) / (2.0 * iterations);
}

}  // namespace

int main() {
  using namespace mad2;
  const auto sizes = geometric_sizes(8 * 1024, 1 << 20);
  PerfSeries pio = bench::mad_sweep("PIO TM", mad::NetworkKind::kSisci,
                                    sizes);
  PerfSeries dma;
  dma.label = "DMA TM";
  for (std::uint64_t size : sizes) {
    const double latency = dma_one_way_us(size);
    dma.points.push_back(
        PerfPoint{size, latency, static_cast<double>(size) / latency});
  }
  print_perf_series(
      "Ablation — SISCI PIO TM vs DMA TM (why DMA ships disabled)",
      {pio, dma});
  std::printf("peak: PIO=%.1f MB/s (paper: 82), DMA=%.1f MB/s (paper: "
              "could not exceed 35)\n",
              pio.peak_bandwidth_mbs(), dma.peak_bandwidth_mbs());
  return 0;
}
