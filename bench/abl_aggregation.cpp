// Ablation (Section 3.4): BMM aggregation. A message of many small blocks
// can be flushed eagerly (one protocol operation per block) or aggregated
// by the group/static BMMs and flushed at commit. receive_EXPRESS forces
// eager behaviour, so the comparison is CHEAPER (aggregated) vs EXPRESS
// (per-block) on each network.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

double many_blocks_one_way_us(mad2::mad::NetworkKind kind, int blocks,
                              std::size_t block_bytes, bool aggregated) {
  using namespace mad2;
  mad::Session session(bench::two_node_config(kind));
  const mad::ReceiveMode rmode =
      aggregated ? mad::receive_CHEAPER : mad::receive_EXPRESS;
  const int iterations = 10;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](mad::NodeRuntime& rt) {
    std::vector<std::vector<std::byte>> payloads(
        blocks, std::vector<std::byte>(block_bytes, std::byte{1}));
    std::byte ack;
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& out = rt.channel("ch").begin_packing(1);
      for (auto& block : payloads) {
        out.pack(block, mad::send_CHEAPER, rmode);
      }
      out.end_packing();
      auto& in = rt.channel("ch").begin_unpacking();
      in.unpack(std::span(&ack, 1));
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](mad::NodeRuntime& rt) {
    std::vector<std::vector<std::byte>> sinks(
        blocks, std::vector<std::byte>(block_bytes));
    std::byte ack{1};
    for (int i = 0; i < iterations; ++i) {
      auto& in = rt.channel("ch").begin_unpacking();
      for (auto& sink : sinks) {
        in.unpack(sink, mad::send_CHEAPER, rmode);
      }
      in.end_unpacking();
      auto& out = rt.channel("ch").begin_packing(0);
      out.pack(std::span(&ack, 1));
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "aggregation bench failed");
  return mad2::sim::to_us(end - start) / (2.0 * iterations);
}

}  // namespace

int main() {
  using namespace mad2;
  const int blocks = 32;
  const std::size_t block_bytes = 64;
  Table table({"network", "aggregated (us)", "per-block (us)", "speedup"});
  for (auto kind :
       {mad::NetworkKind::kBip, mad::NetworkKind::kSisci,
        mad::NetworkKind::kTcp, mad::NetworkKind::kVia}) {
    const double agg =
        many_blocks_one_way_us(kind, blocks, block_bytes, true);
    const double eager =
        many_blocks_one_way_us(kind, blocks, block_bytes, false);
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", eager / agg);
    table.add_row({std::string(to_string(kind)), format_us(agg),
                   format_us(eager), speedup});
  }
  std::printf(
      "== Ablation — BMM aggregation: %d blocks x %zu B per message ==\n",
      blocks, block_bytes);
  table.print();
  return 0;
}
