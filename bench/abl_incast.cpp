// Ablation: incast fairness under end-to-end congestion control.
//
// N bulk senders and one latency-sensitive probe sender converge through
// a gateway onto a single receiver (the classic incast choke point). The
// probe flow sends small paced messages; its per-message one-way latency
// distribution is the figure of merit. Two gateway disciplines compete:
//
//   fifo  congestion control off — every bulk sender floods its hop
//         stream until the transport pushes back, so a standing backlog
//         of roughly a socket buffer per flow sits between the probe
//         and the wire.
//   fair  congestion stanza on — per-flow delay-driven AIMD windows cap
//         each bulk flow's in-flight share (draining the standing
//         queue) and the gateway runs a DRR fair queue, so a probe
//         packet only ever waits behind a handful of in-window packets.
//
// Bulk data rides in single-packet messages (same per-flow volume as
// one large message) so the single receiver fiber interleaves flows at
// packet granularity; a monolithic 128 KiB message would serialize the
// receiver for its full multi-round unpack and mask the path queueing
// under test. At the gated N=100 point the melee outlasts the whole
// probe run, so every gated sample is taken inside it; at small N the
// melee drains early and those rows double as the near-uncontended
// baseline the blowup bound compares against.
//
// This bench is the regression gate for the congestion layer: it fails
// (exit 1) if the fair-mode probe p99 at N=100 is not bounded (see the
// gate at the bottom — fair p99 must stay under half of fifo p99, and
// must not blow up relative to the uncontended N=4 case).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/tcp.hpp"
#include "sim/sync.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mad2;

constexpr const char* kLeft = "in";
constexpr const char* kRight = "out";
constexpr std::size_t kProbeBytes = 1024;
constexpr std::size_t kBulkBytes = 2 * 1024;
constexpr int kBulkMessages = 64;
constexpr int kProbes = 40;

/// Probe sender is node 0, bulk senders 1..N, gateway N+1, receiver N+2.
mad::SessionConfig incast_config(std::size_t bulk_senders, bool fair) {
  mad::SessionConfig config;
  config.node_count = bulk_senders + 3;
  const auto gateway = static_cast<std::uint32_t>(bulk_senders + 1);
  const auto receiver = static_cast<std::uint32_t>(bulk_senders + 2);

  mad::NetworkDef left;
  left.name = "left";
  left.kind = mad::NetworkKind::kTcp;
  for (std::uint32_t n = 0; n <= gateway; ++n) left.nodes.push_back(n);
  mad::NetworkDef right;
  right.name = "right";
  right.kind = mad::NetworkKind::kTcp;
  right.nodes = {gateway, receiver};
  // Shallow egress socket on the choke hop (both disciplines alike): a
  // deep socket buffer is an unscheduled FIFO *below* the gateway
  // scheduler, and whatever sits there is queueing no discipline can
  // undo. Four packets keeps the wire busy while leaving the backlog
  // where the scheduler can see it.
  net::TcpParams choke = net::TcpParams::fast_ethernet();
  choke.socket_buffer = 16 * 1024;
  right.tcp_params = choke;
  config.networks.push_back(left);
  config.networks.push_back(right);
  config.channels.emplace_back(kLeft, left.name);
  config.channels.emplace_back(kRight, right.name);

  if (fair) {
    mad::CongestionConfig cc;
    cc.enabled = true;
    // Start conservatively instead of trusting the bandwidth-delay seed:
    // under 100-to-1 fan-in the seed's per-flow BDP guess is ~100x too
    // optimistic, and the resulting startup burst is pure queueing.
    cc.init_window = 1;
    cc.max_window = 8;
    // Deep enough that the whole windowed in-flight population (N x
    // max_window packets at worst) fits in the fair queue: admission
    // never backpressures, so the DRR dequeue — not the arrival-order
    // admission loop — is the scheduler the probe meets.
    cc.gateway_queue = 1024;
    cc.quantum = 4096;
    config.congestion = cc;
  }
  return config;
}

struct IncastOutcome {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

/// One incast run: N bulk flows of kBulkMessages x kBulkBytes each, and
/// kProbes paced kProbeBytes messages on the probe flow. Returns the
/// probe flow's one-way latency percentiles.
IncastOutcome run_incast(std::size_t bulk_senders, bool fair) {
  mad::Session session(incast_config(bulk_senders, fair));
  const auto gateway = static_cast<std::uint32_t>(bulk_senders + 1);
  const auto receiver = static_cast<std::uint32_t>(bulk_senders + 2);

  fwd::VirtualChannelDef def;
  def.name = "vc";
  def.hops = {kLeft, kRight};
  def.mtu = 4 * 1024;
  fwd::VirtualChannel vc(session, def);
  // The probe is the latency-sensitive flow: weight it above the bulk
  // herd so that even when it does queue, its deficit covers a packet in
  // the first round.
  if (fair) vc.set_flow_weight(0, receiver, 8.0);

  std::vector<sim::Time> probe_sent(kProbes, 0);
  SampleSet probe_latency;
  sim::WaitQueue probe_done(&session.simulator());
  int probes_delivered = 0;

  session.spawn(0, "probe", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(kProbeBytes, std::byte{7});
    // The latency flow joins an incast already in progress: the first
    // few round trips after a cold start are the windows' slow-start
    // transient, not the steady-state tail this bench gates on.
    rt.simulator().advance(sim::milliseconds(50));
    for (int i = 0; i < kProbes; ++i) {
      // Closed loop with a think time: exactly one probe outstanding, so
      // each sample is the queueing that probe found on the path, never
      // backlog the probe flow built itself.
      rt.simulator().advance(sim::microseconds(500));
      probe_sent[i] = rt.simulator().now();
      auto& conn = vc.endpoint(0).begin_packing(receiver);
      conn.pack(payload);
      conn.end_packing();
      while (probes_delivered <= i) probe_done.wait();
    }
  });
  for (std::uint32_t sender = 1; sender <= bulk_senders; ++sender) {
    session.spawn(sender, "bulk" + std::to_string(sender),
                  [&, sender](mad::NodeRuntime&) {
                    std::vector<std::byte> payload(
                        kBulkBytes, static_cast<std::byte>(sender));
                    for (int i = 0; i < kBulkMessages; ++i) {
                      auto& conn =
                          vc.endpoint(sender).begin_packing(receiver);
                      conn.pack(payload);
                      conn.end_packing();
                    }
                  });
  }
  session.spawn(receiver, "receiver", [&](mad::NodeRuntime& rt) {
    const std::size_t total =
        kProbes + bulk_senders * static_cast<std::size_t>(kBulkMessages);
    int probes_seen = 0;
    std::vector<std::byte> probe(kProbeBytes);
    std::vector<std::byte> bulk(kBulkBytes);
    for (std::size_t i = 0; i < total; ++i) {
      auto& conn = vc.endpoint(receiver).begin_unpacking();
      const std::uint32_t src = conn.remote();
      if (src == 0) {
        conn.unpack(probe);
        conn.end_unpacking();
        probe_latency.add(
            sim::to_us(rt.simulator().now() - probe_sent[probes_seen]));
        ++probes_seen;
        probes_delivered = probes_seen;
        probe_done.notify_all();
      } else {
        conn.unpack(bulk);
        conn.end_unpacking();
      }
    }
  });
  MAD2_CHECK(session.run().is_ok(), "incast bench session failed");
  MAD2_CHECK(probe_latency.count() == kProbes,
             "incast bench lost probe messages");
  (void)gateway;

  IncastOutcome outcome;
  outcome.p50_us = probe_latency.quantile(0.5);
  outcome.p95_us = probe_latency.quantile(0.95);
  outcome.p99_us = probe_latency.quantile(0.99);
  double sum = 0.0;
  for (double sample : probe_latency.samples()) sum += sample;
  outcome.mean_us = sum / static_cast<double>(probe_latency.count());
  return outcome;
}

std::string format_fixed(double value, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mad2;
  const std::vector<std::size_t> fan_in{4, 16, 100};

  // One curve per discipline; x is the bulk fan-in N, "latency" is the
  // probe flow's mean one-way latency, p50/p99 its distribution tails.
  std::vector<PerfSeries> series(2);
  series[0].label = "fifo";
  series[1].label = "fair";
  for (std::size_t n : fan_in) {
    for (int mode = 0; mode < 2; ++mode) {
      const IncastOutcome outcome = run_incast(n, mode == 1);
      PerfPoint point;
      point.size_bytes = n;
      point.latency_us = outcome.mean_us;
      point.bandwidth_mbs = 0.0;  // latency-only figure
      point.p50_us = outcome.p50_us;
      point.p95_us = outcome.p95_us;
      point.p99_us = outcome.p99_us;
      series[mode].points.push_back(point);
    }
  }

  Table table({"bulk flows", "fifo p50", "fifo p99", "fair p50", "fair p99",
               "p99 gain"});
  for (std::size_t i = 0; i < fan_in.size(); ++i) {
    table.add_row({std::to_string(fan_in[i]),
                   format_fixed(series[0].points[i].p50_us, 1) + " us",
                   format_fixed(series[0].points[i].p99_us, 1) + " us",
                   format_fixed(series[1].points[i].p50_us, 1) + " us",
                   format_fixed(series[1].points[i].p99_us, 1) + " us",
                   format_fixed(series[0].points[i].p99_us /
                                    series[1].points[i].p99_us,
                                2) +
                       "x"});
  }
  std::printf("== Ablation — incast probe latency, FIFO vs fair gateway ==\n");
  std::printf("(1 probe flow of %d x %zu B vs N bulk flows of %d x %zu B)\n",
              kProbes, kProbeBytes, kBulkMessages, kBulkBytes);
  table.print();

  if (bench::json_mode(argc, argv)) {
    bench::write_series_json("abl_incast", series);
  }

  // Gate: at N=100 the fair-mode probe p99 must stay bounded — under
  // half of the FIFO p99 (the whole point of the fair gateway), and
  // within 20x of the near-uncontended N=4 fair p99 (no silent collapse
  // into bufferbloat as fan-in grows).
  const double fifo_p99 = series[0].points.back().p99_us;
  const double fair_p99 = series[1].points.back().p99_us;
  const double fair_p99_small = series[1].points.front().p99_us;
  std::printf("\nN=100 probe p99: fifo %.1f us, fair %.1f us "
              "(gate: fair < 0.5x fifo and < 20x fair@N=4 = %.1f us)\n",
              fifo_p99, fair_p99, 20.0 * fair_p99_small);
  if (fair_p99 >= 0.5 * fifo_p99) {
    std::printf("FAIL: fair-gateway p99 not below half of FIFO p99\n");
    return 1;
  }
  if (fair_p99 >= 20.0 * fair_p99_small) {
    std::printf("FAIL: fair-gateway p99 grows unboundedly with fan-in\n");
    return 1;
  }
  return 0;
}
