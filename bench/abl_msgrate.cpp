// Ablation: short-message rate with the allocation-free fast path on/off.
//
// One sender floods one receiver with small messages (8/64/256 B) over a
// TCP channel and a BIP channel, with the `fastpath` session stanza off
// (legacy per-message path) and on (dispatch tables + batched progress
// engine). The figure of merit is messages per simulated second measured
// at the receiver, plus the per-message sender CPU ticks spent in the
// pack path (mad::SwitchCounters::pack_cpu_ticks) and the fast/legacy
// selection split.
//
// The TCP network runs at a gigabit-class 125 MB/s wire (instead of the
// default Fast Ethernet 12.5 MB/s) so that even the 256 B point is
// kernel-path-bound, not wire-serialization-bound: what this bench
// measures — and what the fast path attacks — is the per-message syscall
// and bookkeeping overhead, one send + one recv syscall per message on
// the legacy path vs one syscall per coalesced batch with the fast path.
// BIP has no syscalls to elide (its short path is already user-level);
// there the fast path only defers credit-return control messages, so the
// BIP rows are a regression guard (ratio >= 0.95), not a speedup claim.
//
// This bench is the regression gate for the fast path: it fails (exit 1)
// if TCP msgs/sec with the fast path on is not >= 1.5x the legacy rate
// at every size, or if a BIP rate regresses below 0.95x legacy.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/tcp.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mad2;

constexpr int kWarmup = 64;
constexpr int kMessages = 1024;

mad::SessionConfig msgrate_config(mad::NetworkKind kind, bool fastpath) {
  mad::SessionConfig config = bench::two_node_config(kind);
  if (kind == mad::NetworkKind::kTcp) {
    // Gigabit-class wire: keep the 18 us syscalls (the overhead under
    // test) but take wire serialization out of the critical path.
    net::TcpParams params = net::TcpParams::fast_ethernet();
    params.fabric.wire_mbs = 125.0;
    config.networks[0].tcp_params = params;
  }
  if (fastpath) config.fastpath = mad::FastPathConfig{};
  return config;
}

struct RateResult {
  double msgs_per_sec = 0.0;
  double sim_us_per_msg = 0.0;
  double pack_ticks_per_msg = 0.0;
  std::uint64_t fast_selects = 0;
  std::uint64_t legacy_selects = 0;
  std::uint64_t alloc_delta = 0;  // sender + receiver, post-warmup flood
};

/// One flood: node 0 sends kWarmup + kMessages messages of `size` bytes
/// to node 1. Rate is measured at the receiver across the post-warmup
/// messages; allocation deltas are sampled on both nodes over the same
/// window.
RateResult run_flood(mad::NetworkKind kind, std::size_t size,
                     bool fastpath) {
  mad::Session session(msgrate_config(kind, fastpath));
  constexpr int kTotal = kWarmup + kMessages;

  std::uint64_t sender_alloc_start = 0;
  std::uint64_t sender_alloc_end = 0;
  session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{42});
    for (int i = 0; i < kTotal; ++i) {
      if (i == kWarmup) sender_alloc_start = rt.node().mem().alloc_count;
      auto& conn = rt.channel("ch").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
    sender_alloc_end = rt.node().mem().alloc_count;
  });

  sim::Time recv_start = 0;
  sim::Time recv_end = 0;
  std::uint64_t recv_alloc_start = 0;
  std::uint64_t recv_alloc_end = 0;
  session.spawn(1, "receiver", [&](mad::NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < kTotal; ++i) {
      auto& conn = rt.channel("ch").begin_unpacking();
      conn.unpack(data);
      conn.end_unpacking();
      if (i == kWarmup - 1) {
        recv_start = rt.simulator().now();
        recv_alloc_start = rt.node().mem().alloc_count;
      }
    }
    recv_end = rt.simulator().now();
    recv_alloc_end = rt.node().mem().alloc_count;
  });
  MAD2_CHECK(session.run().is_ok(), "msgrate bench session failed");

  RateResult result;
  const double elapsed_us = sim::to_us(recv_end - recv_start);
  result.sim_us_per_msg = elapsed_us / kMessages;
  result.msgs_per_sec = 1e6 * kMessages / elapsed_us;
  const mad::TrafficStats stats = session.endpoint("ch", 0).stats();
  result.pack_ticks_per_msg =
      static_cast<double>(stats.switching.pack_cpu_ticks) / kTotal;
  result.fast_selects = stats.switching.fast_selects;
  result.legacy_selects = stats.switching.legacy_selects;
  result.alloc_delta = (sender_alloc_end - sender_alloc_start) +
                       (recv_alloc_end - recv_alloc_start);
  return result;
}

std::string format_fixed(double value, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

struct RateSeries {
  std::string label;
  mad::NetworkKind kind;
  bool fastpath;
  std::vector<RateResult> points;
};

void write_msgrate_json(const std::vector<std::uint64_t>& sizes,
                        const std::vector<RateSeries>& series) {
  FILE* out = std::fopen("BENCH_abl_msgrate.json", "w");
  MAD2_CHECK(out != nullptr, "cannot write bench JSON output");
  std::fprintf(out, "{\n  \"figure\": \"abl_msgrate\",\n  \"series\": [\n");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::fprintf(out, "    {\"label\": \"%s\", \"points\": [\n",
                 series[s].label.c_str());
    for (std::size_t i = 0; i < series[s].points.size(); ++i) {
      const RateResult& r = series[s].points[i];
      std::fprintf(
          out,
          "      {\"size\": %llu, \"msgs_per_sec\": %.1f, "
          "\"sim_us_per_msg\": %.4f, \"pack_ticks_per_msg\": %.1f, "
          "\"fast_selects\": %llu, \"legacy_selects\": %llu, "
          "\"alloc_delta\": %llu}%s\n",
          static_cast<unsigned long long>(sizes[i]), r.msgs_per_sec,
          r.sim_us_per_msg, r.pack_ticks_per_msg,
          static_cast<unsigned long long>(r.fast_selects),
          static_cast<unsigned long long>(r.legacy_selects),
          static_cast<unsigned long long>(r.alloc_delta),
          i + 1 < series[s].points.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", s + 1 < series.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_abl_msgrate.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mad2;
  const std::vector<std::uint64_t> sizes{8, 64, 256};

  std::vector<RateSeries> series{
      {"tcp-legacy", mad::NetworkKind::kTcp, false, {}},
      {"tcp-fastpath", mad::NetworkKind::kTcp, true, {}},
      {"bip-legacy", mad::NetworkKind::kBip, false, {}},
      {"bip-fastpath", mad::NetworkKind::kBip, true, {}},
  };
  for (RateSeries& s : series) {
    for (std::uint64_t size : sizes) {
      s.points.push_back(run_flood(s.kind, size, s.fastpath));
    }
  }

  const RateSeries& tcp_off = series[0];
  const RateSeries& tcp_on = series[1];
  const RateSeries& bip_off = series[2];
  const RateSeries& bip_on = series[3];

  Table table({"size", "tcp off msg/s", "tcp on msg/s", "tcp gain",
               "bip off msg/s", "bip on msg/s", "bip gain"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.add_row(
        {std::to_string(sizes[i]) + " B",
         format_fixed(tcp_off.points[i].msgs_per_sec, 0),
         format_fixed(tcp_on.points[i].msgs_per_sec, 0),
         format_fixed(tcp_on.points[i].msgs_per_sec /
                          tcp_off.points[i].msgs_per_sec,
                      2) +
             "x",
         format_fixed(bip_off.points[i].msgs_per_sec, 0),
         format_fixed(bip_on.points[i].msgs_per_sec, 0),
         format_fixed(bip_on.points[i].msgs_per_sec /
                          bip_off.points[i].msgs_per_sec,
                      2) +
             "x"});
  }
  std::printf(
      "== Ablation — short-message rate, fast path off vs on ==\n"
      "(%d-message flood per point after %d warmup, TCP wire at 125 MB/s)\n",
      kMessages, kWarmup);
  table.print();
  std::printf(
      "(sender pack ticks/msg at 8 B: tcp off %.1f on %.1f, "
      "bip off %.1f on %.1f; alloc delta during flood: bip on %llu)\n",
      tcp_off.points[0].pack_ticks_per_msg,
      tcp_on.points[0].pack_ticks_per_msg,
      bip_off.points[0].pack_ticks_per_msg,
      bip_on.points[0].pack_ticks_per_msg,
      static_cast<unsigned long long>(bip_on.points[0].alloc_delta));

  if (bench::json_mode(argc, argv)) {
    write_msgrate_json(sizes, series);
  }

  // Gates. TCP: the fast path exists to amortize the per-message syscall
  // pair; anything under 1.5x means the batching is broken. BIP: no
  // syscalls to save — only deferred credits — so just forbid regression.
  bool ok = true;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double tcp_gain =
        tcp_on.points[i].msgs_per_sec / tcp_off.points[i].msgs_per_sec;
    const double bip_gain =
        bip_on.points[i].msgs_per_sec / bip_off.points[i].msgs_per_sec;
    std::printf("%4llu B: tcp %.2fx (gate >= 1.50), bip %.2fx "
                "(gate >= 0.95)\n",
                static_cast<unsigned long long>(sizes[i]), tcp_gain,
                bip_gain);
    if (tcp_gain < 1.5) {
      std::printf("FAIL: TCP fast-path msg rate below 1.5x legacy\n");
      ok = false;
    }
    if (bip_gain < 0.95) {
      std::printf("FAIL: BIP fast-path msg rate regressed below 0.95x\n");
      ok = false;
    }
  }
  // The fast path must also be allocation-free in steady state: the
  // post-warmup flood may not allocate on either node.
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (bip_on.points[i].alloc_delta != 0) {
      std::printf("FAIL: BIP fast-path flood allocated (%llu allocs)\n",
                  static_cast<unsigned long long>(
                      bip_on.points[i].alloc_delta));
      ok = false;
    }
    if (tcp_on.points[i].alloc_delta != 0) {
      std::printf("FAIL: TCP fast-path flood allocated (%llu allocs)\n",
                  static_cast<unsigned long long>(
                      tcp_on.points[i].alloc_delta));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
