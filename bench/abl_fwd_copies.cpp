// Ablation: gateway bytes-copied per byte-forwarded.
//
// The pooled forwarding path (docs/FORWARDING.md) re-emits each packet's
// original gather list straight from the pool buffer, so the gateway's CPU
// only copies what the drivers themselves demand:
//   - SCI hops charge ~1 copy/byte for the PIO segment drain (inherent to
//     the transfer method, not to forwarding),
//   - BIP/Myrinet long messages move by DMA, so a Myrinet->Myrinet relay
//     should copy nothing but packet headers.
// Before the pooled rewrite the gateway also charged one full
// reassembly copy per forwarded byte (packets were consolidated into a
// heap payload before retransmit), putting every path ~1.0 copies/byte
// above these ceilings. This bench is the regression gate for that win:
// it fails (exit 1) if any path's copies/byte drifts back up.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

struct Path {
  const char* label;
  mad2::mad::NetworkKind from;
  mad2::mad::NetworkKind to;
  // Copies/byte ceiling: driver-inherent copies plus header slack.
  double ceiling;
};

std::string format_fixed(double value, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mad2;
  const std::size_t mtu = 64 * 1024;
  const std::vector<std::uint64_t> messages{256 * 1024, 1024 * 1024};

  const std::vector<Path> paths{
      // SCI ingress drains the shared segment with PIO: ~1 copy/byte.
      {"sci_to_myri", mad::NetworkKind::kSisci, mad::NetworkKind::kBip, 1.05},
      // SCI egress PIO is bus time, not a charged memcpy: headers only.
      {"myri_to_sci", mad::NetworkKind::kBip, mad::NetworkKind::kSisci, 0.02},
      // DMA on both hops: headers only.
      {"myri_to_myri", mad::NetworkKind::kBip, mad::NetworkKind::kBip, 0.02},
  };

  Table table({"path", "forwarded", "gw memcpy", "copies/byte", "allocs",
               "ceiling", "status"});
  std::vector<bench::FwdJsonSeries> series;
  std::vector<std::vector<bench::FwdResult>> columns;
  columns.reserve(paths.size());
  bool ok = true;
  for (const Path& path : paths) {
    columns.push_back(
        bench::forwarding_sweep(path.from, path.to, mtu, messages));
    const bench::FwdResult& last = columns.back().back();
    const double ratio = static_cast<double>(last.gw_memcpy_bytes) /
                         static_cast<double>(last.forwarded_bytes);
    const bool pass = ratio <= path.ceiling && last.gw_alloc_count == 0;
    ok = ok && pass;
    table.add_row({path.label, format_bytes(last.forwarded_bytes),
                   format_bytes(last.gw_memcpy_bytes),
                   format_fixed(ratio, 4), std::to_string(last.gw_alloc_count),
                   format_fixed(path.ceiling, 2), pass ? "ok" : "REGRESSION"});
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    series.push_back(bench::FwdJsonSeries{paths[i].label, &columns[i]});
  }

  std::printf("== Ablation — gateway copies per forwarded byte ==\n");
  table.print();
  std::printf(
      "\npre-pool baseline: every path carried one extra reassembly "
      "copy/byte at the gateway\n");
  if (bench::json_mode(argc, argv)) {
    bench::write_fwd_json("abl_fwd_copies", series);
  }
  if (!ok) {
    std::printf("FAIL: gateway copies/byte regressed above ceiling\n");
    return 1;
  }
  return 0;
}
