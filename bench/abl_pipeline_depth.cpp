// Ablation (Section 6.2.1, Figure 9): the gateway's dual-buffering. With
// one buffer the forwarding pipeline fully serializes receive and send at
// the gateway; with two (the paper's design) they overlap; deeper pools
// give diminishing returns because the PCI bus is already saturated.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace mad2;
  const std::vector<std::uint64_t> message{2 * 1024 * 1024};
  Table table({"pipeline depth", "SCI->Myrinet (MB/s)"});
  double dual = 0.0;
  double single = 0.0;
  for (std::size_t depth : {1u, 2u, 4u, 8u}) {
    const auto results =
        bench::forwarding_sweep(mad::NetworkKind::kSisci,
                                mad::NetworkKind::kBip, 128 * 1024, message,
                                depth);
    if (depth == 1) single = results[0].bandwidth_mbs;
    if (depth == 2) dual = results[0].bandwidth_mbs;
    table.add_row({std::to_string(depth),
                   format_mbs(results[0].bandwidth_mbs)});
  }
  std::printf("== Ablation — gateway pipeline depth (Figure 9 dual "
              "buffering) ==\n");
  table.print();
  std::printf("\ndual buffering gains %.0f%% over a single buffer\n",
              (dual / single - 1.0) * 100.0);
  return 0;
}
