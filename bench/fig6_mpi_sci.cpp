// Figure 6: comparison of MPI implementations over SCI — MPICH/Madeleine
// (ch_mad) vs SCI-MPICH-like and ScaMPI-like baselines, with raw
// Madeleine/SISCI for reference. Paper shape: the direct MPIs win on
// small-message latency, ch_mad delivers the best bandwidth for messages
// of 32 kB and above and tracks Madeleine's bandwidth at large sizes.
#include <cstdio>

#include "bench_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace mad2;
  const auto sizes = geometric_sizes(4, 1 << 20);
  std::vector<PerfSeries> series;
  series.push_back(
      bench::mad_sweep("Madeleine/SISCI", mad::NetworkKind::kSisci, sizes));
  series.push_back(
      bench::mpi_sweep("MPICH/Mad", bench::MpiImpl::kChMad, sizes));
  series.push_back(
      bench::mpi_sweep("SCI-MPICH", bench::MpiImpl::kScimpichLike, sizes));
  series.push_back(
      bench::mpi_sweep("ScaMPI", bench::MpiImpl::kScampiLike, sizes));
  print_perf_series("Figure 6 — MPI implementations over SCI", series);

  std::printf("min latency (us): MPICH/Mad=%.2f  SCI-MPICH=%.2f  "
              "ScaMPI=%.2f (paper: ch_mad worst)\n",
              series[1].min_latency_us(), series[2].min_latency_us(),
              series[3].min_latency_us());
  std::printf("bandwidth at 256 kB (MB/s): MPICH/Mad=%.1f  SCI-MPICH=%.1f  "
              "ScaMPI=%.1f (paper: ch_mad best >= 32 kB)\n",
              series[1].bandwidth_at(256 * 1024),
              series[2].bandwidth_at(256 * 1024),
              series[3].bandwidth_at(256 * 1024));
  return 0;
}
