// Ablation: BIP short-path credit window sizing (Section 5.2.2: the short
// TM "uses a credit-based flow control algorithm to make sure that each
// message can be stored into a buffer"). A small window stalls the sender
// waiting for batched credit returns; beyond the bandwidth-delay product
// extra credits only cost receiver buffer memory.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "mad/bip_options.hpp"
#include "util/table.hpp"

namespace {

double messages_per_ms(std::size_t credits) {
  using namespace mad2;
  mad::SessionConfig config = bench::two_node_config(mad::NetworkKind::kBip);
  // Large windows need a larger driver-side buffer pool to back them.
  net::BipParams driver = net::BipParams::myrinet_lanai43();
  driver.short_host_slots = 256;
  config.networks[0].bip_params = driver;
  mad::BipPmmOptions options;
  options.credits = credits;
  options.credit_batch = credits / 2;
  config.channels[0].bip_options = options;
  mad::Session session(std::move(config));
  const int messages = 2000;
  sim::Time end = 0;
  session.spawn(0, "tx", [&](mad::NodeRuntime& rt) {
    for (int i = 0; i < messages; ++i) {
      std::uint32_t value = i;
      auto& conn = rt.channel("ch").begin_packing(1);
      mad::mad_pack_value(conn, value);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](mad::NodeRuntime& rt) {
    for (int i = 0; i < messages; ++i) {
      std::uint32_t value = 0;
      auto& conn = rt.channel("ch").begin_unpacking();
      mad::mad_unpack_value(conn, value);
      conn.end_unpacking();
    }
    end = rt.simulator().now();
  });
  MAD2_CHECK(session.run().is_ok(), "credit bench failed");
  return messages / (mad2::sim::to_us(end) / 1000.0);
}

}  // namespace

int main() {
  using namespace mad2;
  std::printf(
      "== Ablation — BIP short-path credit window (flow control) ==\n");
  Table table({"credit window", "messages/ms"});
  for (std::size_t credits : {2u, 4u, 8u, 16u, 32u, 64u}) {
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1f", messages_per_ms(credits));
    table.add_row({std::to_string(credits), rate});
  }
  table.print();
  std::printf("\nthe window saturates once it covers the round trip of a\n"
              "batched credit return; the paper ships 8\n");
  return 0;
}
