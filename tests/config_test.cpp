// Tests for the session config parser and the traffic statistics.
#include <gtest/gtest.h>

#include "mad/config_parser.hpp"
#include "mad/madeleine.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {
namespace {

TEST(ConfigParser, ParsesAFullCluster) {
  const char* text = R"(
# the paper's testbed
nodes 4

network myri0 bip   0 1 2 3
network sci0  sisci 0 1
network eth0  tcp   0 1 2 3   # control network

channel bulk myri0
channel ctl  eth0 paranoid
)";
  auto result = parse_session_config(text);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const SessionConfig& config = result.value();
  EXPECT_EQ(config.node_count, 4u);
  ASSERT_EQ(config.networks.size(), 3u);
  EXPECT_EQ(config.networks[0].name, "myri0");
  EXPECT_EQ(config.networks[0].kind, NetworkKind::kBip);
  EXPECT_EQ(config.networks[0].nodes,
            (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(config.networks[1].kind, NetworkKind::kSisci);
  EXPECT_EQ(config.networks[1].nodes, (std::vector<std::uint32_t>{0, 1}));
  ASSERT_EQ(config.channels.size(), 2u);
  EXPECT_EQ(config.channels[0].name, "bulk");
  EXPECT_FALSE(config.channels[0].paranoid);
  EXPECT_EQ(config.channels[1].network, "eth0");
  EXPECT_TRUE(config.channels[1].paranoid);
}

TEST(ConfigParser, ParsesRailSets) {
  auto result = parse_session_config(R"(
nodes 2
network myri0 bip 0 1
network eth0  tcp 0 1
channel bulk myri0
channel aux  eth0
rails fat bulk aux threshold=131072
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const SessionConfig& config = result.value();
  ASSERT_EQ(config.rail_sets.size(), 1u);
  EXPECT_EQ(config.rail_sets[0].name, "fat");
  EXPECT_EQ(config.rail_sets[0].channels,
            (std::vector<std::string>{"bulk", "aux"}));
  EXPECT_EQ(config.rail_sets[0].stripe_threshold, 131072u);
}

TEST(ConfigParser, ParsesCongestionStanza) {
  auto result = parse_session_config(R"(
nodes 2
network n tcp 0 1
channel c n
congestion window=8 min_window=2 max_window=32 gain=0.5 decrease=0.25 backlog=3.0 quantum=8192 gateway_queue=16
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const SessionConfig& config = result.value();
  ASSERT_TRUE(config.congestion.has_value());
  const CongestionConfig& cc = *config.congestion;
  EXPECT_TRUE(cc.enabled);
  EXPECT_EQ(cc.init_window, 8u);
  EXPECT_EQ(cc.min_window, 2u);
  EXPECT_EQ(cc.max_window, 32u);
  EXPECT_DOUBLE_EQ(cc.gain, 0.5);
  EXPECT_DOUBLE_EQ(cc.decrease, 0.25);
  EXPECT_DOUBLE_EQ(cc.backlog_factor, 3.0);
  EXPECT_EQ(cc.quantum, 8192u);
  EXPECT_EQ(cc.gateway_queue, 16u);
}

TEST(ConfigParser, BareCongestionStanzaEnablesDefaults) {
  auto result = parse_session_config(R"(
nodes 2
network n tcp 0 1
channel c n
congestion
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_TRUE(result.value().congestion.has_value());
  const CongestionConfig& cc = *result.value().congestion;
  const CongestionConfig defaults;
  EXPECT_TRUE(cc.enabled);
  // window=0 means "seed from the driver's bandwidth hint".
  EXPECT_EQ(cc.init_window, 0u);
  EXPECT_EQ(cc.min_window, defaults.min_window);
  EXPECT_EQ(cc.max_window, defaults.max_window);
  EXPECT_DOUBLE_EQ(cc.gain, defaults.gain);
  EXPECT_DOUBLE_EQ(cc.decrease, defaults.decrease);
  EXPECT_DOUBLE_EQ(cc.backlog_factor, defaults.backlog_factor);
  EXPECT_EQ(cc.quantum, defaults.quantum);
  EXPECT_EQ(cc.gateway_queue, defaults.gateway_queue);
}

TEST(ConfigParser, NoCongestionStanzaLeavesItDisabled) {
  auto result = parse_session_config("nodes 2\nnetwork n tcp 0 1\n");
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().congestion.has_value());
}

TEST(ConfigParser, ParsesTopologyStanza) {
  auto result = parse_session_config(R"(
nodes 2
network n tcp 0 1
channel c n
topology salt=42 replay_quota=256
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const SessionConfig& config = result.value();
  ASSERT_TRUE(config.topology.has_value());
  EXPECT_TRUE(config.topology->enabled);
  EXPECT_EQ(config.topology->spread_salt, 42u);
  EXPECT_EQ(config.topology->replay_quota, 256u);
}

TEST(ConfigParser, BareTopologyStanzaEnablesDefaults) {
  auto result = parse_session_config(R"(
nodes 2
network n tcp 0 1
channel c n
topology
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_TRUE(result.value().topology.has_value());
  const TopologyConfig defaults;
  EXPECT_TRUE(result.value().topology->enabled);
  EXPECT_EQ(result.value().topology->spread_salt, defaults.spread_salt);
  EXPECT_EQ(result.value().topology->replay_quota, defaults.replay_quota);
}

TEST(ConfigParser, NoTopologyStanzaLeavesItDisabled) {
  auto result = parse_session_config("nodes 2\nnetwork n tcp 0 1\n");
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().topology.has_value());
}

TEST(ConfigParser, ParsedConfigRunsASession) {
  auto result = parse_session_config(R"(
nodes 2
network n0 sisci 0 1
channel ch n0
)");
  ASSERT_TRUE(result.is_ok());
  Session session(std::move(result.value()));
  session.spawn(0, "s", [&](NodeRuntime& rt) {
    auto payload = make_pattern_buffer(1000, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(1, "r", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch").begin_unpacking();
    std::vector<std::byte> out(1000);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 1));
  });
  EXPECT_TRUE(session.run().is_ok());
}

struct BadCase {
  const char* text;
  const char* expected;
};

class ConfigErrors : public testing::TestWithParam<BadCase> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, ConfigErrors,
    testing::Values(
        BadCase{"network n tcp 0\n", "'nodes' must come before"},
        BadCase{"nodes 0\n", "invalid node count"},
        BadCase{"nodes two\n", "invalid node count"},
        BadCase{"nodes 2\nnodes 2\n", "duplicate 'nodes'"},
        BadCase{"nodes 2\nnetwork n quantum 0 1\n", "unknown network kind"},
        BadCase{"nodes 2\nnetwork n tcp 0 5\n", "out of range"},
        BadCase{"nodes 2\nnetwork n tcp 0 0\n", "listed twice"},
        BadCase{"nodes 2\nnetwork n tcp\n", "usage: network"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork n tcp 0 1\n",
                "duplicate network name"},
        BadCase{"nodes 2\nchannel c ghost\n", "unknown network"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nchannel c n turbo\n",
                "unknown channel option"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nchannel c n\nchannel c n\n",
                "duplicate channel name"},
        BadCase{"nodes 2\nfrobnicate\n", "unknown directive"},
        BadCase{"", "missing 'nodes'"},
        // Arity and overflow paths:
        BadCase{"nodes 2 3\n", "usage: nodes N"},
        BadCase{"nodes\n", "usage: nodes N"},
        BadCase{"nodes -1\n", "invalid node count"},
        BadCase{"nodes 4294967296\n", "invalid node count"},  // > uint32
        BadCase{"nodes 2\nnetwork n tcp 0 one\n", "invalid node id"},
        BadCase{"nodes 2\nnetwork n tcp 0 4294967296\n", "invalid node id"},
        BadCase{"nodes 2\nchannel c\n", "usage: channel"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nchannel c n paranoid extra\n",
                "unknown channel option"},
        // Rail-set stanza misuse: contradictory sets must be rejected at
        // parse time with an explanation, not die in the scheduler.
        BadCase{"nodes 2\nrails r\n", "usage: rails"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nchannel a n\nrails r a\n",
                "usage: rails"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork m tcp 0 1\n"
                "channel a n\nchannel b m\nrails r a ghost\n",
                "unknown channel 'ghost'"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork m tcp 0 1\n"
                "channel a n\nchannel b m\nrails r a b\nrails r b a\n",
                "duplicate rail set name"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork m tcp 0 1\n"
                "channel a n\nchannel b m\nrails r a a\n",
                "listed twice"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork m tcp 0 1\n"
                "network o tcp 0 1\nchannel a n\nchannel b m\nchannel c o\n"
                "rails r a b\nrails s b c\n",
                "already belongs to rail set 'r'"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork m tcp 0 1\n"
                "channel a n paranoid\nchannel b m\nrails r a b\n",
                "is paranoid"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nchannel a n\nchannel b n\n"
                "rails r a b\n",
                "share network 'n'"},
        BadCase{"nodes 3\nnetwork n tcp 0 1\nnetwork m tcp 1 2\n"
                "channel a n\nchannel b m\nrails r a b\n",
                "span different node sets"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork m tcp 0 1\n"
                "channel a n\nchannel b m\nrails r a b threshold=0\n",
                "invalid stripe threshold"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork m tcp 0 1\n"
                "channel a n\nchannel b m\nrails r a b threshold=many\n",
                "invalid stripe threshold"},
        BadCase{"nodes 2\nnetwork n tcp 0 1\nnetwork m tcp 0 1\n"
                "channel a n\nchannel b m\nrails r a threshold=4096 b\n",
                "threshold= must come last"},
        // Congestion stanza misuse: contradictory window arithmetic is a
        // parse-time error, never something the AIMD loop clamps around.
        BadCase{"nodes 2\ncongestion\ncongestion\n",
                "duplicate 'congestion'"},
        BadCase{"nodes 2\ncongestion window=0\n",
                "invalid congestion window"},
        BadCase{"nodes 2\ncongestion window=wide\n",
                "invalid congestion window"},
        BadCase{"nodes 2\ncongestion min_window=0\n",
                "invalid congestion min_window"},
        BadCase{"nodes 2\ncongestion max_window=0\n",
                "invalid congestion max_window"},
        BadCase{"nodes 2\ncongestion gain=0\n",
                "invalid congestion gain"},
        BadCase{"nodes 2\ncongestion gain=-0.5\n",
                "invalid congestion gain"},
        BadCase{"nodes 2\ncongestion decrease=0\n",
                "invalid congestion decrease"},
        BadCase{"nodes 2\ncongestion decrease=1\n",
                "invalid congestion decrease"},
        BadCase{"nodes 2\ncongestion backlog=1\n",
                "invalid congestion backlog"},
        BadCase{"nodes 2\ncongestion quantum=0\n",
                "invalid congestion quantum"},
        BadCase{"nodes 2\ncongestion gateway_queue=0\n",
                "invalid congestion gateway_queue"},
        BadCase{"nodes 2\ncongestion turbo=1\n",
                "unknown congestion option"},
        BadCase{"nodes 2\ncongestion min_window=4 max_window=2\n",
                "max_window is below min_window"},
        BadCase{"nodes 2\ncongestion window=16 max_window=8\n",
                "outside"},
        // Topology stanza misuse.
        BadCase{"nodes 2\ntopology\ntopology\n", "duplicate 'topology'"},
        BadCase{"nodes 2\ntopology salt=pepper\n", "invalid topology salt"},
        BadCase{"nodes 2\ntopology replay_quota=0\n",
                "invalid topology replay_quota"},
        BadCase{"nodes 2\ntopology replay_quota=lots\n",
                "invalid topology replay_quota"},
        BadCase{"nodes 2\ntopology turbo=1\n",
                "unknown topology option"}));

TEST_P(ConfigErrors, AreReportedWithContext) {
  auto result = parse_session_config(GetParam().text);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find(GetParam().expected),
            std::string::npos)
      << result.status().message();
}

TEST(ConfigParser, ErrorsCarryLineNumbers) {
  auto result = parse_session_config("nodes 2\n\n\nbogus\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos);
}

TEST(ConfigParser, CommentsAndBlankLinesAreIgnoredEverywhere) {
  auto result = parse_session_config(R"(
# leading comment

nodes 2   # trailing comment
   # indented comment
network n tcp 0 1 # nodes follow
channel c n # done

)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().node_count, 2u);
  ASSERT_EQ(result.value().networks.size(), 1u);
  EXPECT_EQ(result.value().networks[0].nodes,
            (std::vector<std::uint32_t>{0, 1}));
  ASSERT_EQ(result.value().channels.size(), 1u);
}

// ------------------------------------------------------------ statistics ---

TEST(TrafficStats, CountsBlocksAndBytesPerTm) {
  SessionConfig config;
  config.node_count = 2;
  NetworkDef net;
  net.name = "n";
  net.kind = NetworkKind::kBip;
  net.nodes = {0, 1};
  config.networks.push_back(net);
  config.channels.push_back(ChannelDef{"ch", "n"});
  Session session(std::move(config));
  session.spawn(0, "s", [&](NodeRuntime& rt) {
    auto small = make_pattern_buffer(100, 1);   // BIP short TM
    auto large = make_pattern_buffer(50000, 2); // BIP long TM
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(small);
    conn.pack(large);
    conn.end_packing();
  });
  session.spawn(1, "r", [&](NodeRuntime& rt) {
    std::vector<std::byte> small(100);
    std::vector<std::byte> large(50000);
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(small);
    conn.unpack(large);
    conn.end_unpacking();
  });
  ASSERT_TRUE(session.run().is_ok());

  const TrafficStats sender = session.endpoint("ch", 0).stats();
  EXPECT_EQ(sender.messages_sent, 1u);
  EXPECT_EQ(sender.messages_received, 0u);
  ASSERT_TRUE(sender.sent_by_tm.count("bip-short"));
  ASSERT_TRUE(sender.sent_by_tm.count("bip-long"));
  EXPECT_EQ(sender.sent_by_tm.at("bip-short").blocks, 1u);
  EXPECT_EQ(sender.sent_by_tm.at("bip-short").bytes, 100u);
  EXPECT_EQ(sender.sent_by_tm.at("bip-long").blocks, 1u);
  EXPECT_EQ(sender.sent_by_tm.at("bip-long").bytes, 50000u);

  const TrafficStats receiver = session.endpoint("ch", 1).stats();
  EXPECT_EQ(receiver.messages_received, 1u);
  EXPECT_EQ(receiver.received_by_tm.at("bip-long").bytes, 50000u);

  // The printable summary mentions both TMs.
  const std::string text = sender.to_string();
  EXPECT_NE(text.find("bip-short"), std::string::npos);
  EXPECT_NE(text.find("bip-long"), std::string::npos);
}

TEST(TrafficStats, MergeAggregates) {
  TrafficStats a;
  a.messages_sent = 2;
  a.sent_by_tm["x"].blocks = 3;
  a.sent_by_tm["x"].bytes = 300;
  TrafficStats b;
  b.messages_sent = 1;
  b.sent_by_tm["x"].blocks = 1;
  b.sent_by_tm["x"].bytes = 50;
  b.received_by_tm["y"].blocks = 7;
  a.merge(b);
  EXPECT_EQ(a.messages_sent, 3u);
  EXPECT_EQ(a.sent_by_tm["x"].blocks, 4u);
  EXPECT_EQ(a.sent_by_tm["x"].bytes, 350u);
  EXPECT_EQ(a.received_by_tm["y"].blocks, 7u);
}

}  // namespace
}  // namespace mad2::mad
