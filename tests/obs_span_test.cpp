// Cross-node causal tracing tests: hop-stamp encoding round trips, the
// SpanWeaver (hand-made rings and a real 3-channel forwarding session),
// per-hop latency attribution under fault-injected jitter, the SLO
// watchdog's weaved auto-dump, and the madreport cluster aggregation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fwd/virtual_channel.hpp"
#include "mad/madeleine.hpp"
#include "net/fault.hpp"
#include "net/tcp.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span_weaver.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace mad2 {
namespace {

// CI exports MAD2_TRACE for whole test steps; this suite manages
// recorders and dump directories by hand and needs a clean slate.
class CleanTraceEnv : public testing::Environment {
 public:
  void SetUp() override {
    unsetenv(obs::kTraceEnvVar);
    unsetenv(obs::kTraceRingEnvVar);
    unsetenv(obs::kTraceDumpEnvVar);
  }
};
const testing::Environment* const kCleanEnv =
    testing::AddGlobalTestEnvironment(new CleanTraceEnv);

// ------------------------------------------------------- arg encoding ---

TEST(HopEncoding, FlowIdRoundTrip) {
  const std::uint64_t id = obs::flow_id(3, 200);
  EXPECT_EQ(obs::flow_src(id), 3u);
  EXPECT_EQ(obs::flow_dst(id), 200u);
  // Distinct directions encode distinctly.
  EXPECT_NE(obs::flow_id(3, 200), obs::flow_id(200, 3));
}

TEST(HopEncoding, HopArgRoundTripAndSeqTruncation) {
  const obs::HopArg arg = obs::decode_hop_arg(obs::hop_arg(77, 1023, 5));
  EXPECT_EQ(arg.seq, 77u);
  EXPECT_EQ(arg.node, 1023u);
  EXPECT_EQ(arg.hop, 5u);
  // The sequence rides in 32 bits: grouping needs locality, not the full
  // counter, so bit 32 and above must drop without disturbing the rest.
  const std::uint64_t big_seq = (1ull << 32) | 5ull;
  const obs::HopArg truncated =
      obs::decode_hop_arg(obs::hop_arg(big_seq, 7, 2));
  EXPECT_EQ(truncated.seq, 5u);
  EXPECT_EQ(truncated.node, 7u);
  EXPECT_EQ(truncated.hop, 2u);
}

// ------------------------------------------------- offline span weaving ---

/// Hand-made ring: packet (2->9, seq 7) crossing three hops, a partial
/// packet (2->9, seq 8) that only stamped its sender hop, and a one-hop
/// packet on a different flow (1->9, seq 0).
std::vector<obs::TraceEvent> hand_made_hop_events() {
  using obs::Category;
  const std::uint64_t flow29 = obs::flow_id(2, 9);
  const std::uint64_t flow19 = obs::flow_id(1, 9);
  std::vector<obs::TraceEvent> events;
  // Deliberately out of hop / packet order: delivery-time replay batches
  // events, so the weaver must not rely on ring order.
  events.push_back({4000, 1000, 0, obs::kHopQueueEvent, nullptr, flow29,
                    obs::hop_arg(7, 5, 1), Category::kFwd});
  events.push_back({1000, 500, 0, obs::kHopQueueEvent, nullptr, flow29,
                    obs::hop_arg(7, 2, 0), Category::kFwd});
  events.push_back({8000, 0, 0, obs::kHopQueueEvent, nullptr, flow29,
                    obs::hop_arg(7, 9, 2), Category::kFwd});
  events.push_back({5000, 3000, 0, obs::kHopWireEvent, nullptr, flow29,
                    obs::hop_arg(7, 5, 1), Category::kFwd});
  events.push_back({1500, 2500, 0, obs::kHopWireEvent, nullptr, flow29,
                    obs::hop_arg(7, 2, 0), Category::kFwd});
  events.push_back({9000, 100, 0, obs::kHopQueueEvent, nullptr, flow29,
                    obs::hop_arg(8, 2, 0), Category::kFwd});
  events.push_back({2000, 300, 0, obs::kHopQueueEvent, nullptr, flow19,
                    obs::hop_arg(0, 1, 0), Category::kFwd});
  // Unrelated event the weaver must ignore.
  events.push_back({100, -1, 0, "switch.tm_select", nullptr, 0, 0,
                    Category::kSwitch});
  return events;
}

TEST(SpanWeaver, WeavesHandMadeEventsIntoCausalSpans) {
  obs::SpanWeaver weaver;
  const std::vector<obs::TraceEvent> events = hand_made_hop_events();
  weaver.add_events(events);
  const std::vector<obs::WeavedSpan> spans = weaver.weave();

  // Deterministic (src, dst, seq) order.
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].src, 1u);
  EXPECT_EQ(spans[0].seq, 0u);
  EXPECT_EQ(spans[1].src, 2u);
  EXPECT_EQ(spans[1].seq, 7u);
  EXPECT_EQ(spans[2].seq, 8u);

  const obs::WeavedSpan& full = spans[1];
  ASSERT_EQ(full.hops.size(), 3u);
  EXPECT_EQ(full.hops[0].node, 2u);
  EXPECT_EQ(full.hops[1].node, 5u);
  EXPECT_EQ(full.hops[2].node, 9u);
  EXPECT_EQ(full.hops[0].enqueue, 1000);
  EXPECT_EQ(full.hops[0].dequeue, 1500);
  EXPECT_EQ(full.hops[0].queue_ns, 500);
  EXPECT_EQ(full.hops[0].wire, 1500);
  EXPECT_EQ(full.hops[0].wire_ns, 2500);
  EXPECT_EQ(full.hops[1].queue_ns, 1000);
  EXPECT_EQ(full.hops[1].wire_ns, 3000);
  EXPECT_EQ(full.hops[2].queue_ns, 0);
  EXPECT_EQ(full.start(), 1000);
  EXPECT_EQ(full.end(), 8000);
  EXPECT_EQ(full.total_ns(), 7000);

  // The ring-wrapped packet still weaves into a (partial) one-hop span.
  EXPECT_EQ(spans[2].hops.size(), 1u);
  EXPECT_EQ(spans[2].hops[0].queue_ns, 100);
}

TEST(SpanWeaver, ExportMetricsRecordsPerHopHistograms) {
  obs::SpanWeaver weaver;
  weaver.add_events(hand_made_hop_events());
  obs::MetricsRegistry registry;
  obs::SpanWeaver::export_metrics(weaver.weave(), "vc", &registry);

  const auto& histograms = registry.histograms();
  ASSERT_TRUE(histograms.count("vc.hop.2-9.0.queue"));
  // Both 2->9 packets stamped their sender queue.
  EXPECT_EQ(histograms.at("vc.hop.2-9.0.queue").count(), 2u);
  EXPECT_EQ(histograms.at("vc.hop.2-9.0.queue").sum(), 500 + 100);
  // seq 8's hop 0 is its last known hop, so only seq 7 contributes wire.
  ASSERT_TRUE(histograms.count("vc.hop.2-9.0.wire"));
  EXPECT_EQ(histograms.at("vc.hop.2-9.0.wire").count(), 1u);
  EXPECT_EQ(histograms.at("vc.hop.2-9.0.wire").sum(), 2500);
  ASSERT_TRUE(histograms.count("vc.hop.1-9.0.queue"));
  EXPECT_EQ(histograms.at("vc.hop.1-9.0.queue").count(), 1u);
}

TEST(SpanWeaver, ChromeJsonParsesAndCarriesFlowArrows) {
  obs::SpanWeaver weaver;
  weaver.add_events(hand_made_hop_events());
  const std::string json = obs::SpanWeaver::chrome_json(weaver.weave());
  const auto parsed = obs::parse_chrome_trace(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();

  int queue_spans = 0;
  int wire_spans = 0;
  int flow_starts = 0;
  int flow_finishes = 0;
  int tracks = 0;
  for (const obs::ParsedEvent& event : parsed.value()) {
    if (event.phase == "X" && event.name == "hop.queue") ++queue_spans;
    if (event.phase == "X" && event.name == "hop.wire") ++wire_spans;
    if (event.phase == "s") ++flow_starts;
    if (event.phase == "f") ++flow_finishes;
    if (event.phase == "M") ++tracks;
  }
  EXPECT_EQ(queue_spans, 5);  // 3 + 1 + 1 hops across the three spans
  EXPECT_EQ(wire_spans, 2);   // only the full span has non-last hops
  // Flow arrows only link multi-hop spans: one start, one finish per
  // consecutive hop chain.
  EXPECT_EQ(flow_starts, 1);
  EXPECT_GE(flow_finishes, 1);
  EXPECT_GE(tracks, 4);  // nodes 1, 2, 5, 9
}

// ------------------------------------------------ live session weaving ---

/// 0 -> gw1 -> gw2 -> 3 chain over three TCP segments. `middle` tunes the
/// gw1->gw2 segment (fault plan + socket depth) when given.
mad::SessionConfig chain_config(net::FaultPlan* middle_faults,
                                std::size_t middle_socket_buffer) {
  mad::SessionConfig config;
  config.node_count = 4;
  const char* names[3] = {"netA", "netB", "netC"};
  for (std::uint32_t i = 0; i < 3; ++i) {
    mad::NetworkDef net;
    net.name = names[i];
    net.kind = mad::NetworkKind::kTcp;
    net.nodes = {i, i + 1};
    if (i == 1 && (middle_faults != nullptr || middle_socket_buffer > 0)) {
      net::TcpParams tcp = net::TcpParams::fast_ethernet();
      if (middle_socket_buffer > 0) tcp.socket_buffer = middle_socket_buffer;
      tcp.fabric.faults = middle_faults;
      // Stop-and-wait on the middle segment: one unacked frame at a time
      // makes its drain ack-clocked, so injected delivery delay slows the
      // drain and the backlog builds where the hop stamp can see it (the
      // gateway queue) instead of overlapping in flight as wire time.
      tcp.reliability.window = 1;
      // Keep the retransmit clock far above the injected jitter so every
      // delay is honest wire time, not retransmission noise.
      tcp.reliability.rto_initial = sim::milliseconds(20);
      tcp.reliability.rto_max = sim::milliseconds(50);
      net.tcp_params = tcp;
    }
    config.networks.push_back(net);
  }
  config.channels.emplace_back("chA", "netA");
  config.channels.emplace_back("chB", "netB");
  config.channels.emplace_back("chC", "netC");
  return config;
}

/// Run `messages` one-packet messages 0 -> 3 through the chain. Returns
/// the session's final virtual time.
sim::Time run_chain(const mad::SessionConfig& config,
                    const fwd::VirtualChannelDef& def, int messages,
                    std::size_t payload_bytes) {
  mad::Session session(config);
  fwd::VirtualChannel vc(session, def);
  session.spawn(0, "sender", [&](mad::NodeRuntime&) {
    std::vector<std::byte> payload(payload_bytes, std::byte{0x5a});
    for (int i = 0; i < messages; ++i) {
      auto& conn = vc.endpoint(0).begin_packing(3);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(3, "receiver", [&](mad::NodeRuntime&) {
    std::vector<std::byte> payload(payload_bytes);
    for (int i = 0; i < messages; ++i) {
      auto& conn = vc.endpoint(3).begin_unpacking();
      conn.unpack(payload);
      conn.end_unpacking();
    }
  });
  EXPECT_TRUE(session.run().is_ok());
  return session.simulator().now();
}

TEST(SpanSession, ThreeChannelChainWeavesFourHopSpans) {
  constexpr int kMessages = 6;
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  obs::install_recorder(&recorder);
  obs::install_metrics(&registry);

  fwd::VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"chA", "chB", "chC"};
  def.mtu = 4096;
  def.propagation = true;
  run_chain(chain_config(nullptr, 0), def, kMessages, 2048);

  obs::uninstall_recorder(&recorder);
  obs::uninstall_metrics(&registry);
  // Flight-recorder contract: this workload fits the default ring whole.
  EXPECT_EQ(recorder.dropped_events(), 0u);

  obs::SpanWeaver weaver;
  weaver.add(recorder);
  const std::vector<obs::WeavedSpan> spans = weaver.weave();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    const obs::WeavedSpan& span = spans[static_cast<std::size_t>(i)];
    EXPECT_EQ(span.src, 0u);
    EXPECT_EQ(span.dst, 3u);
    EXPECT_EQ(span.seq, static_cast<std::uint32_t>(i));
    // Sender, two gateways, delivery — four causally ordered hops.
    ASSERT_EQ(span.hops.size(), 4u);
    for (std::uint32_t k = 0; k < 4; ++k) {
      const obs::HopSpan& hop = span.hops[k];
      EXPECT_EQ(hop.hop, k);
      EXPECT_EQ(hop.node, k);  // chain: node id == hop index
      EXPECT_GE(hop.queue_ns, 0);
      EXPECT_LE(hop.enqueue, hop.dequeue);
      if (k < 3) {
        // The wire to the next hop takes real virtual time.
        EXPECT_GT(hop.wire_ns, 0) << "hop " << k;
        EXPECT_GE(span.hops[k + 1].enqueue, hop.wire) << "hop " << k;
      }
    }
    EXPECT_GT(span.total_ns(), 0);
  }

  // Delivery-side replay filled the per-flow hop histograms.
  const auto& histograms = registry.histograms();
  ASSERT_TRUE(histograms.count("vc.hop.0-3.0.queue"));
  EXPECT_EQ(histograms.at("vc.hop.0-3.0.queue").count(),
            static_cast<std::uint64_t>(kMessages));
  ASSERT_TRUE(histograms.count("vc.hop.0-3.2.wire"));
  EXPECT_EQ(histograms.at("vc.hop.0-3.2.wire").count(),
            static_cast<std::uint64_t>(kMessages));
  // The delivery hop has no outgoing wire.
  ASSERT_TRUE(histograms.count("vc.hop.0-3.3.wire"));
  EXPECT_EQ(histograms.at("vc.hop.0-3.3.wire").count(), 0u);

  // The weaved timeline exports to valid Chrome JSON with flow arrows.
  const auto parsed =
      obs::parse_chrome_trace(obs::SpanWeaver::chrome_json(spans));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  bool has_flow_start = false;
  for (const obs::ParsedEvent& event : parsed.value()) {
    if (event.phase == "s") has_flow_start = true;
  }
  EXPECT_TRUE(has_flow_start);
}

TEST(SpanSession, PropagationOffKeepsVirtualTimeIdentical) {
  // With the propagation knob off the wire must be bit-identical to an
  // untraced run: same packets, same timings — even with a recorder
  // installed and every category enabled.
  constexpr int kMessages = 4;
  fwd::VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"chA", "chB", "chC"};
  def.mtu = 4096;  // def.propagation left unset -> off (no trace stanza)

  const sim::Time untraced =
      run_chain(chain_config(nullptr, 0), def, kMessages, 2048);

  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  obs::install_recorder(&recorder);
  obs::install_metrics(&registry);
  const sim::Time traced =
      run_chain(chain_config(nullptr, 0), def, kMessages, 2048);
  obs::uninstall_recorder(&recorder);
  obs::uninstall_metrics(&registry);

  EXPECT_EQ(untraced, traced);
  // And no hop stamps were recorded: the stamp only exists when asked for.
  for (const obs::TraceEvent& event : recorder.snapshot()) {
    EXPECT_STRNE(event.name, obs::kHopQueueEvent);
    EXPECT_STRNE(event.name, obs::kHopWireEvent);
  }
}

/// Per-hop {queue,wire} sums (ns) of the 0->3 flow from one chain run.
struct HopSums {
  double queue[4] = {0, 0, 0, 0};
  double wire[4] = {0, 0, 0, 0};
};

HopSums run_jitter_leg(net::FaultPlan* plan) {
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  fwd::VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"chA", "chB", "chC"};
  def.mtu = 4096;
  // Deep gateway pipeline: the whole burst fits at gw1, so backpressure
  // never leaks upstream and queueing lands at the slow hop, not the
  // sender.
  def.pipeline_depth = 192;
  def.propagation = true;
  // The 1 KiB middle socket plus the 1-frame reliable window (see
  // chain_config) make gw1 -> gw2 the choke: arrivals outpace the
  // ack-clocked drain and the burst waits in gw1's forwarding queue.
  // Queue residency grows with the square of the burst while per-packet
  // wire time is linear, so a long burst keeps the attribution sharp.
  run_chain(chain_config(plan, 1024), def, /*messages=*/160,
            /*payload_bytes=*/512);
  obs::uninstall_metrics(&registry);

  HopSums sums;
  const auto& histograms = registry.histograms();
  for (int k = 0; k < 4; ++k) {
    const std::string stem = "vc.hop.0-3." + std::to_string(k);
    const auto queue = histograms.find(stem + ".queue");
    if (queue != histograms.end()) {
      sums.queue[k] = static_cast<double>(queue->second.sum());
    }
    const auto wire = histograms.find(stem + ".wire");
    if (wire != histograms.end()) {
      sums.wire[k] = static_cast<double>(wire->second.sum());
    }
  }
  return sums;
}

TEST(SpanSession, JitterAtMiddleHopAttributesLatencyToItsQueue) {
  // Acceptance gate: inject delay jitter on the gw1 -> gw2 wire only, and
  // the weaved per-hop attribution must charge >= 90% of the *added*
  // latency to gateway 1's queue-residency bucket — the congestion builds
  // in its forwarding queue while the slow wire drains packet by packet.
  net::FaultPlan clean(0xC0FFEE);
  net::FaultPlan jitter(0xC0FFEE);
  net::LinkFaults faults;
  faults.jitter_rate = 1.0;
  faults.jitter_max = sim::milliseconds(4);
  // Fabric ranks on netB (nodes {1, 2}): 0 is gw1, 1 is gw2.
  jitter.set_link_faults(0, 1, faults);

  const HopSums baseline = run_jitter_leg(&clean);
  const HopSums jittered = run_jitter_leg(&jitter);

  double total_added = 0.0;
  for (int k = 0; k < 4; ++k) {
    total_added += jittered.queue[k] - baseline.queue[k];
    total_added += jittered.wire[k] - baseline.wire[k];
  }
  const double gw1_queue_added = jittered.queue[1] - baseline.queue[1];
  // The jitter injected real latency (tens of ms in aggregate).
  ASSERT_GT(total_added, static_cast<double>(sim::milliseconds(50)));
  ASSERT_GT(gw1_queue_added, 0.0);
  std::ostringstream breakdown;
  for (int k = 0; k < 4; ++k) {
    breakdown << "hop " << k << ": queue +"
              << (jittered.queue[k] - baseline.queue[k]) / 1e6 << " ms wire +"
              << (jittered.wire[k] - baseline.wire[k]) / 1e6 << " ms\n";
  }
  EXPECT_GE(gw1_queue_added, 0.9 * total_added)
      << "gw1 queue added " << gw1_queue_added / 1e6 << " ms of "
      << total_added / 1e6 << " ms total added latency\n"
      << breakdown.str();
}

// ------------------------------------------------------- SLO watchdog ---

TEST(SloWatchdog, BreachAutoDumpsRawAndWeavedTrace) {
  ASSERT_EQ(obs::recorder(), nullptr)
      << "ambient recorder leaked from another test";
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "mad2_slo_dump_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  obs::set_dump_directory(dir.string());

  std::string raw_path;
  {
    mad::SessionConfig config;
    config.node_count = 2;
    mad::NetworkDef net;
    net.name = "net0";
    net.kind = mad::NetworkKind::kTcp;
    net.nodes = {0, 1};
    config.networks.push_back(net);
    config.channels.emplace_back("ch0", "net0");
    obs::TraceConfig trace;
    trace.propagation = true;
    // 1 us p99 on a ~75 us link: guaranteed breach.
    trace.slo.push_back(obs::SloRule{"ch0", 1});
    config.trace = trace;

    mad::Session session(config);
    session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
      std::vector<std::byte> payload(1024, std::byte{1});
      for (int i = 0; i < 4; ++i) {
        auto& conn = rt.channel("ch0").begin_packing(1);
        conn.pack(payload);
        conn.end_packing();
      }
    });
    session.spawn(1, "receiver", [&](mad::NodeRuntime& rt) {
      std::vector<std::byte> payload(1024);
      for (int i = 0; i < 4; ++i) {
        auto& conn = rt.channel("ch0").begin_unpacking();
        conn.unpack(payload);
        conn.end_unpacking();
      }
    });
    // A breach alarms and dumps; it must not fail a healthy run.
    ASSERT_TRUE(session.run().is_ok());
    ASSERT_NE(obs::metrics(), nullptr);
    EXPECT_EQ(obs::metrics()->value("slo.breaches"), 1);
    raw_path = obs::last_dump_path();
  }

  ASSERT_FALSE(raw_path.empty());
  EXPECT_NE(raw_path.find("mad2_slo_dump_test"), std::string::npos)
      << "dump landed outside the overridden directory: " << raw_path;
  ASSERT_TRUE(fs::exists(raw_path));
  std::string weaved_path = raw_path;
  const std::string suffix = ".json";
  ASSERT_GE(weaved_path.size(), suffix.size());
  weaved_path.resize(weaved_path.size() - suffix.size());
  weaved_path += "-weaved.json";
  ASSERT_TRUE(fs::exists(weaved_path))
      << "SLO breach did not write the weaved companion dump";

  // Both artifacts are loadable Chrome traces.
  for (const std::string& path : {raw_path, weaved_path}) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto parsed = obs::parse_chrome_trace(buffer.str());
    EXPECT_TRUE(parsed.is_ok()) << path << ": " << parsed.status().message();
  }

  obs::set_dump_directory("");
  fs::remove_all(dir);
}

// ---------------------------------------------------- madreport folding ---

TEST(ClusterReport, FoldsPerNodeSnapshotsIntoOneView) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "mad2_report_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  obs::MetricsRegistry node_a;
  node_a.set_value("vc.flow.0-3.packets", 10);
  node_a.set_value("vc.flow.0-3.cwnd_x1000", 5000);
  node_a.set_value("vc.flow.0-3.srtt_us", 200);
  node_a.set_value("rel.netB:1.retransmits", 3);
  node_a.set_value("vc.routing.replayed_packets", 2);
  node_a.set_value("trace.dropped_events", 1);
  node_a.set_value("slo.breaches", 1);
  for (int i = 0; i < 4; ++i) {
    node_a.histogram("vc.flow.0-3.e2e")->record(100'000);  // 100 us
    node_a.histogram("vc.hop.0-3.0.queue")->record(20'000);
    node_a.histogram("vc.hop.0-3.0.wire")->record(60'000);
    node_a.histogram("vc.hop.0-3.1.queue")->record(10'000);
  }
  obs::MetricsRegistry node_b;
  node_b.set_value("vc.flow.0-3.packets", 6);
  node_b.set_value("vc.flow.0-3.cwnd_x1000", 3000);
  node_b.set_value("vc.flow.0-3.srtt_us", 500);
  node_b.set_value("rel.netB:2.retransmits", 2);
  for (int i = 0; i < 2; ++i) {
    node_b.histogram("vc.flow.0-3.e2e")->record(400'000);
    node_b.histogram("vc.hop.0-3.1.queue")->record(300'000);
  }

  const std::string path_a = (dir / "node_a.json").string();
  const std::string path_b = (dir / "node_b.json").string();
  ASSERT_TRUE(node_a.write_json(path_a));
  ASSERT_TRUE(node_b.write_json(path_b));

  std::vector<std::string> errors;
  const obs::ClusterReport report = obs::cluster_report_from_files(
      {path_a, path_b, (dir / "missing.json").string()}, &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("missing.json"), std::string::npos);
  EXPECT_EQ(report.inputs, 2u);

  EXPECT_EQ(report.retransmits, 5);
  EXPECT_EQ(report.replayed_packets, 2);
  EXPECT_EQ(report.dropped_trace_events, 1);
  EXPECT_EQ(report.slo_breaches, 1);

  ASSERT_EQ(report.flows.size(), 1u);
  const obs::FlowRollup& flow = report.flows[0];
  EXPECT_EQ(flow.channel, "vc");
  EXPECT_EQ(flow.flow, "0-3");
  EXPECT_EQ(flow.packets, 16);
  EXPECT_EQ(flow.cwnd_x1000, 3000);  // worst (smallest) window
  EXPECT_EQ(flow.srtt_us, 500);      // worst (largest) srtt
  EXPECT_EQ(flow.e2e_count, 6);
  // Count-weighted p50 mean: (4 * 100 + 2 * 400) / 6 = 200 us.
  EXPECT_NEAR(flow.e2e_p50_us, 200.0, 1.0);
  EXPECT_GE(flow.e2e_p99_us, 400.0 * 0.9);

  ASSERT_EQ(flow.hops.size(), 2u);
  EXPECT_EQ(flow.hops[0].hop, 0u);
  EXPECT_EQ(flow.hops[0].samples, 4);
  EXPECT_NEAR(flow.hops[0].queue_mean_us, 20.0, 1.0);
  EXPECT_NEAR(flow.hops[0].wire_mean_us, 60.0, 1.0);
  EXPECT_EQ(flow.hops[1].hop, 1u);
  // Hop 1 merges both nodes' snapshots: 4 x 10 us + 2 x 300 us.
  EXPECT_EQ(flow.hops[1].samples, 6);
  EXPECT_NEAR(flow.hops[1].queue_mean_us, (4 * 10.0 + 2 * 300.0) / 6.0,
              2.0);
  EXPECT_GE(flow.hops[1].queue_p99_us, 250.0);

  // Serialized forms carry the rollups.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"flows\""), std::string::npos);
  EXPECT_NE(json.find("\"hops\""), std::string::npos);
  EXPECT_NE(json.find("\"0-3\""), std::string::npos);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("vc 0-3"), std::string::npos);
  EXPECT_NE(text.find("hop 1"), std::string::npos);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace mad2
