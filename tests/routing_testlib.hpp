// Shared scaffolding for the resilient-routing test tier: a mesh of
// pattern-tagged flows over one virtual channel plus the flow invariant
// checker — every message arrives exactly once, in per-flow order, with
// its payload intact, no matter how many gateways died along the way.
//
// Kept gtest-free so the madcheck explore bodies (which report through
// Status, not assertions) can reuse it verbatim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fwd/virtual_channel.hpp"
#include "mad/session.hpp"
#include "util/bytes.hpp"

namespace mad2 {

struct FlowSpec {
  std::uint32_t src;
  std::uint32_t dst;
};

/// Pattern seed of message `k` of the flow from `src`: unique per
/// (flow, message), so a replayed/duplicated/reordered delivery can never
/// masquerade as the right one.
inline int flow_seed(std::uint32_t src, std::size_t k) {
  return static_cast<int>(src) * 131 + static_cast<int>(k) * 7 + 1;
}

/// Spawn one sender fiber per flow (flows must have distinct sources —
/// a virtual endpoint packs one message at a time) and one receiver
/// fiber per distinct destination. Each flow ships `messages` messages
/// of `message_bytes`; each receiver checks, per source: sequential
/// seeds (in-order, no loss, no duplication) and intact payloads.
/// The returned string holds the first invariant violation ("" = all
/// held) once session.run() finished.
inline std::shared_ptr<std::string> run_flows(mad::Session& session,
                                              fwd::VirtualChannel& vc,
                                              const std::vector<FlowSpec>& flows,
                                              std::size_t messages,
                                              std::size_t message_bytes) {
  auto failure = std::make_shared<std::string>();
  auto fail = [failure](const std::string& what) {
    if (failure->empty()) *failure = what;
  };

  std::map<std::uint32_t, std::vector<std::uint32_t>> senders_of_dst;
  for (const FlowSpec& flow : flows) {
    senders_of_dst[flow.dst].push_back(flow.src);
    session.spawn(flow.src, "flow" + std::to_string(flow.src),
                  [&vc, flow, messages, message_bytes](mad::NodeRuntime&) {
                    for (std::size_t k = 0; k < messages; ++k) {
                      auto payload = make_pattern_buffer(
                          message_bytes, flow_seed(flow.src, k));
                      auto& conn =
                          vc.endpoint(flow.src).begin_packing(flow.dst);
                      conn.pack(payload);
                      conn.end_packing();
                    }
                  });
  }
  for (const auto& [dst, srcs] : senders_of_dst) {
    const std::size_t total = srcs.size() * messages;
    session.spawn(
        dst, "sink" + std::to_string(dst),
        [&vc, fail, dst = dst, srcs = srcs, total, messages,
         message_bytes](mad::NodeRuntime&) {
          std::map<std::uint32_t, std::size_t> next_k;
          for (std::size_t i = 0; i < total; ++i) {
            auto& conn = vc.endpoint(dst).begin_unpacking();
            const std::uint32_t src = conn.remote();
            std::vector<std::byte> out(message_bytes);
            conn.unpack(out);
            conn.end_unpacking();
            const std::size_t k = next_k[src]++;
            if (k >= messages) {
              fail("node " + std::to_string(dst) + " received message " +
                   std::to_string(k) + " from " + std::to_string(src) +
                   ": duplicated delivery");
            } else if (!verify_pattern(out, flow_seed(src, k))) {
              fail("node " + std::to_string(dst) + " message " +
                   std::to_string(k) + " from " + std::to_string(src) +
                   ": corrupt or out-of-order payload");
            }
          }
          for (const std::uint32_t src : srcs) {
            if (next_k[src] != messages) {
              fail("node " + std::to_string(dst) + " got " +
                   std::to_string(next_k[src]) + "/" +
                   std::to_string(messages) + " messages from " +
                   std::to_string(src));
            }
          }
        });
  }
  return failure;
}

/// Post-run channel hygiene shared by every scale/fault scenario: every
/// gateway queue drained and every pooled packet buffer back home (a
/// killed gateway's in-flight buffers must recycle, not leak).
inline std::string check_channel_drained(const fwd::VirtualChannel& vc) {
  for (std::size_t depth : vc.gateway_queue_depths()) {
    if (depth != 0) return "gateway queue not drained after the run";
  }
  if (vc.pool().free_buffers() != vc.pool().total_buffers()) {
    return "packet pool leak: " +
           std::to_string(vc.pool().total_buffers() -
                          vc.pool().free_buffers()) +
           " buffers never recycled";
  }
  return "";
}

}  // namespace mad2
