// Tests for the inter-device forwarding extension (paper Section 6):
// virtual channels over cluster-of-clusters topologies, Generic-TM
// self-description, gateway pipelining, and directional asymmetry.
#include <gtest/gtest.h>

#include "fwd/virtual_channel.hpp"
#include "sim/explore.hpp"
#include "util/bytes.hpp"

namespace mad2::fwd {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::NodeRuntime;
using mad::Session;
using mad::SessionConfig;

// The paper's testbed: an SCI cluster {0, 1} and a Myrinet cluster {1, 2}
// sharing gateway node 1.
SessionConfig two_cluster_config(NetworkKind left = NetworkKind::kSisci,
                                 NetworkKind right = NetworkKind::kBip,
                                 std::size_t left_extra = 0,
                                 std::size_t right_extra = 0) {
  SessionConfig config;
  config.node_count = 3 + left_extra + right_extra;
  NetworkDef sci;
  sci.name = "sci0";
  sci.kind = left;
  sci.nodes.push_back(0);
  for (std::size_t i = 0; i < left_extra; ++i) {
    sci.nodes.push_back(static_cast<std::uint32_t>(3 + i));
  }
  sci.nodes.push_back(1);  // gateway
  NetworkDef myri;
  myri.name = "myri0";
  myri.kind = right;
  myri.nodes.push_back(1);  // gateway
  myri.nodes.push_back(2);
  for (std::size_t i = 0; i < right_extra; ++i) {
    myri.nodes.push_back(static_cast<std::uint32_t>(3 + left_extra + i));
  }
  config.networks.push_back(sci);
  config.networks.push_back(myri);
  config.channels.push_back(ChannelDef{"vch_sci", "sci0"});
  config.channels.push_back(ChannelDef{"vch_myri", "myri0"});
  return config;
}

VirtualChannelDef vdef(std::size_t mtu = 16 * 1024) {
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"vch_sci", "vch_myri"};
  def.mtu = mtu;
  return def;
}

TEST(VirtualChannel, RoutesAcrossTheGateway) {
  Session session(two_cluster_config());
  VirtualChannel vc(session, vdef());
  const std::size_t size = 100000;
  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(size, 1);
    auto& conn = vc.endpoint(0).begin_packing(2);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(2).begin_unpacking();
    EXPECT_EQ(conn.remote(), 0u);
    std::vector<std::byte> out(size);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 1));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannel, BothDirectionsWork) {
  Session session(two_cluster_config());
  VirtualChannel vc(session, vdef());
  const std::size_t size = 50000;
  for (int node : {0, 2}) {
    session.spawn(node, "peer" + std::to_string(node),
                  [&, node](NodeRuntime&) {
                    const std::uint32_t other = node == 0 ? 2 : 0;
                    if (node == 0) {
                      auto payload = make_pattern_buffer(size, 5);
                      auto& out = vc.endpoint(node).begin_packing(other);
                      out.pack(payload);
                      out.end_packing();
                      auto& in = vc.endpoint(node).begin_unpacking();
                      std::vector<std::byte> back(size);
                      in.unpack(back);
                      in.end_unpacking();
                      EXPECT_TRUE(verify_pattern(back, 6));
                    } else {
                      auto& in = vc.endpoint(node).begin_unpacking();
                      std::vector<std::byte> data(size);
                      in.unpack(data);
                      in.end_unpacking();
                      EXPECT_TRUE(verify_pattern(data, 5));
                      auto payload = make_pattern_buffer(size, 6);
                      auto& out = vc.endpoint(node).begin_packing(other);
                      out.pack(payload);
                      out.end_packing();
                    }
                  });
  }
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannel, MultiBlockMessagesSurviveForwarding) {
  Session session(two_cluster_config());
  VirtualChannel vc(session, vdef(8 * 1024));
  const std::vector<std::size_t> blocks{4, 20000, 16, 70000, 1000};
  session.spawn(0, "sender", [&](NodeRuntime&) {
    std::vector<std::vector<std::byte>> payloads;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      payloads.push_back(make_pattern_buffer(blocks[i], i));
    }
    auto& conn = vc.endpoint(0).begin_packing(2);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      conn.pack(payloads[i], mad::send_CHEAPER,
                i % 2 == 0 ? mad::receive_EXPRESS : mad::receive_CHEAPER);
    }
    conn.end_packing();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(2).begin_unpacking();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      std::vector<std::byte> out(blocks[i]);
      conn.unpack(out, mad::send_CHEAPER,
                  i % 2 == 0 ? mad::receive_EXPRESS : mad::receive_CHEAPER);
      EXPECT_TRUE(verify_pattern(out, i)) << "block " << i;
    }
    conn.end_unpacking();
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannel, IntraClusterTrafficBypassesTheGateway) {
  // Node 0 -> node 3, both on the SCI hop: direct, no forwarding.
  Session session(two_cluster_config(NetworkKind::kSisci, NetworkKind::kBip,
                                     /*left_extra=*/1));
  VirtualChannel vc(session, vdef());
  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(5000, 9);
    auto& conn = vc.endpoint(0).begin_packing(3);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(3, "receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(3).begin_unpacking();
    EXPECT_EQ(conn.remote(), 0u);
    std::vector<std::byte> out(5000);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 9));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannel, SequentialMessagesKeepOrder) {
  Session session(two_cluster_config());
  VirtualChannel vc(session, vdef(8 * 1024));
  const int messages = 20;
  session.spawn(0, "sender", [&](NodeRuntime&) {
    for (int i = 0; i < messages; ++i) {
      auto payload = make_pattern_buffer(3000 + i, 100 + i);
      auto& conn = vc.endpoint(0).begin_packing(2);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    for (int i = 0; i < messages; ++i) {
      auto& conn = vc.endpoint(2).begin_unpacking();
      std::vector<std::byte> out(3000 + i);
      conn.unpack(out);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, 100 + i)) << "message " << i;
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannel, TwoSendersInterleaveThroughOneGateway) {
  Session session(two_cluster_config(NetworkKind::kSisci, NetworkKind::kBip,
                                     /*left_extra=*/1));
  VirtualChannel vc(session, vdef(8 * 1024));
  const std::size_t size = 60000;
  for (std::uint32_t sender : {0u, 3u}) {
    session.spawn(sender, "sender" + std::to_string(sender),
                  [&, sender](NodeRuntime&) {
                    auto payload = make_pattern_buffer(size, sender);
                    auto& conn = vc.endpoint(sender).begin_packing(2);
                    conn.pack(payload);
                    conn.end_packing();
                  });
  }
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    for (int m = 0; m < 2; ++m) {
      auto& conn = vc.endpoint(2).begin_unpacking();
      std::vector<std::byte> out(size);
      conn.unpack(out);
      const std::uint32_t src = conn.remote();
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, src)) << "message from " << src;
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannel, StaticBufferNetworksForwardCorrectly) {
  // Section 6.1's hard case: BOTH hop networks require static buffers
  // (SBP), so the gateway pays the unavoidable extra copy — but data must
  // still arrive intact across every buffer-size boundary.
  Session session(two_cluster_config(NetworkKind::kSbp, NetworkKind::kSbp));
  VirtualChannel vc(session, vdef(8 * 1024));
  const std::vector<std::size_t> blocks{10, 3000, 40000, 5};
  session.spawn(0, "sender", [&](NodeRuntime&) {
    std::vector<std::vector<std::byte>> payloads;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      payloads.push_back(make_pattern_buffer(blocks[i], 70 + i));
    }
    auto& conn = vc.endpoint(0).begin_packing(2);
    for (auto& payload : payloads) conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(2).begin_unpacking();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      std::vector<std::byte> out(blocks[i]);
      conn.unpack(out);
      EXPECT_TRUE(verify_pattern(out, 70 + i)) << i;
    }
    conn.end_unpacking();
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannel, MixedStaticDynamicGatewaysWork) {
  // One static-buffer hop (SBP), one zero-copy-capable hop (Myrinet).
  Session session(two_cluster_config(NetworkKind::kSbp, NetworkKind::kBip));
  VirtualChannel vc(session, vdef(8 * 1024));
  const std::size_t size = 120000;
  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(size, 8);
    auto& conn = vc.endpoint(0).begin_packing(2);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(2).begin_unpacking();
    std::vector<std::byte> out(size);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 8));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannel, ThreeHopChains) {
  // SCI {0,1} - Myrinet {1,2} - TCP {2,3}: two gateways.
  SessionConfig config;
  config.node_count = 4;
  NetworkDef a;
  a.name = "a";
  a.kind = NetworkKind::kSisci;
  a.nodes = {0, 1};
  NetworkDef b;
  b.name = "b";
  b.kind = NetworkKind::kBip;
  b.nodes = {1, 2};
  NetworkDef c;
  c.name = "c";
  c.kind = NetworkKind::kTcp;
  c.nodes = {2, 3};
  config.networks = {a, b, c};
  config.channels = {ChannelDef{"cha", "a"}, ChannelDef{"chb", "b"},
                     ChannelDef{"chc", "c"}};
  Session session(std::move(config));
  VirtualChannelDef def;
  def.name = "vc3";
  def.hops = {"cha", "chb", "chc"};
  def.mtu = 8 * 1024;
  VirtualChannel vc(session, def);
  const std::size_t size = 40000;
  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(size, 77);
    auto& conn = vc.endpoint(0).begin_packing(3);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(3, "receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(3).begin_unpacking();
    std::vector<std::byte> out(size);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 77));
  });
  ASSERT_TRUE(session.run().is_ok());
}

// ------------------------------------------------------------ madcheck ---

// Schedule exploration (sim/explore.hpp): with a small MTU the gateway's
// store-and-forward fiber juggles several packets per message, and its
// receive-from-hop-A / send-on-hop-B steps tie with both endpoints'
// pack/unpack fibers at the same virtual time. A round trip through the
// gateway must deliver intact data under every ordering of those ties.
// Failures print a shrunk decision trace replayable via MAD2_SCHEDULE.
TEST(VirtualChannelExplore, GatewayPipelineHoldsAcross200Schedules) {
  const auto body = []() -> Status {
    std::string failure;
    auto fail = [&failure](std::string detail) {
      if (failure.empty()) failure = std::move(detail);
    };
    Session session(two_cluster_config());
    VirtualChannel vc(session, vdef(/*mtu=*/2048));
    const std::size_t size = 12000;  // ~6 packets per direction
    session.spawn(0, "pinger", [&](NodeRuntime&) {
      auto payload = make_pattern_buffer(size, 5);
      auto& out = vc.endpoint(0).begin_packing(2);
      out.pack(payload);
      out.end_packing();
      auto& in = vc.endpoint(0).begin_unpacking();
      std::vector<std::byte> back(size);
      in.unpack(back);
      in.end_unpacking();
      if (!verify_pattern(back, 6)) fail("reply corrupt at node 0");
    });
    session.spawn(2, "ponger", [&](NodeRuntime&) {
      auto& in = vc.endpoint(2).begin_unpacking();
      std::vector<std::byte> data(size);
      in.unpack(data);
      in.end_unpacking();
      if (!verify_pattern(data, 5)) fail("request corrupt at node 2");
      auto payload = make_pattern_buffer(size, 6);
      auto& out = vc.endpoint(2).begin_packing(0);
      out.pack(payload);
      out.end_packing();
    });
    const Status run = session.run();
    if (!run.is_ok()) return run;
    if (!failure.empty()) return internal_error(failure);
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

double forwarding_bandwidth(NetworkKind from, NetworkKind to,
                            std::size_t mtu, std::size_t message = 512 * 1024,
                            int iterations = 4) {
  Session session(two_cluster_config(from, to));
  VirtualChannel vc(session, vdef(mtu));
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    std::vector<std::byte> payload(message, std::byte{1});
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& conn = vc.endpoint(0).begin_packing(2);
      conn.pack(payload);
      conn.end_packing();
    }
    auto& in = vc.endpoint(0).begin_unpacking();
    std::byte ack;
    in.unpack(std::span(&ack, 1));
    in.end_unpacking();
    end = rt.simulator().now();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    std::vector<std::byte> out(message);
    for (int i = 0; i < iterations; ++i) {
      auto& conn = vc.endpoint(2).begin_unpacking();
      conn.unpack(out);
      conn.end_unpacking();
    }
    auto& reply = vc.endpoint(2).begin_packing(0);
    std::byte ack{1};
    reply.pack(std::span(&ack, 1));
    reply.end_packing();
  });
  EXPECT_TRUE(session.run().is_ok());
  return static_cast<double>(message) * iterations /
         (sim::to_seconds(end - start) * 1e6);
}

TEST(VirtualChannel, SenderPacingCapsTheRate) {
  // Bandwidth control (paper future work): a paced sender converges to
  // its configured rate when that is below the unpaced throughput.
  Session session(two_cluster_config());
  auto def = vdef(64 * 1024);
  def.sender_rate_mbs = 20.0;
  VirtualChannel vc(session, def);
  const std::size_t message = 512 * 1024;
  sim::Time end = 0;
  session.spawn(0, "sender", [&](NodeRuntime&) {
    std::vector<std::byte> payload(message, std::byte{1});
    for (int i = 0; i < 3; ++i) {
      auto& conn = vc.endpoint(0).begin_packing(2);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(2, "receiver", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(message);
    for (int i = 0; i < 3; ++i) {
      auto& conn = vc.endpoint(2).begin_unpacking();
      conn.unpack(out);
      conn.end_unpacking();
    }
    end = rt.simulator().now();
  });
  ASSERT_TRUE(session.run().is_ok());
  const double mbs =
      static_cast<double>(message) * 3 / (sim::to_seconds(end) * 1e6);
  EXPECT_GT(mbs, 17.0);
  EXPECT_LT(mbs, 21.0);
}

TEST(VirtualChannel, ForwardingBandwidthIsGatewayBusLimited) {
  // Section 6.2.2: SCI -> Myrinet forwarding lands in the 40-55 MB/s range
  // (one-way max is ~60; full-duplex bus conflicts erode it).
  const double mbs =
      forwarding_bandwidth(NetworkKind::kSisci, NetworkKind::kBip, 64 * 1024);
  EXPECT_GT(mbs, 38.0);
  EXPECT_LT(mbs, 58.0);
}

TEST(VirtualChannel, MyrinetToSciIsSlowerThanSciToMyrinet) {
  // Section 6.2.3: incoming Myrinet DMA has priority over outgoing SCI
  // PIO on the gateway PCI bus, so this direction is measurably worse.
  // The margin is thinner than in the paper since the pooled data path
  // removed the gateway's charged reassembly copies, which used to widen
  // the bus-contention gap.
  const double sci_to_myri =
      forwarding_bandwidth(NetworkKind::kSisci, NetworkKind::kBip, 64 * 1024);
  const double myri_to_sci =
      forwarding_bandwidth(NetworkKind::kBip, NetworkKind::kSisci, 64 * 1024);
  EXPECT_LT(myri_to_sci, sci_to_myri * 0.96);
}

TEST(VirtualChannel, LargerPacketsForwardFaster) {
  // Section 6.2.2: per-packet gateway overhead penalizes small MTUs.
  const double small =
      forwarding_bandwidth(NetworkKind::kSisci, NetworkKind::kBip, 8 * 1024);
  const double large =
      forwarding_bandwidth(NetworkKind::kSisci, NetworkKind::kBip, 128 * 1024);
  EXPECT_GT(large, small * 1.1);
}

}  // namespace
}  // namespace mad2::fwd
