// Multi-rail striping (mad/rail_set.hpp): large-block sweeps across rail
// counts and sizes straddling the threshold and the TCP MSS, mixed-driver
// rail sets, the striping/eligibility boundary (EXPRESS and sub-threshold
// blocks stay on the single-TM path), per-rail statistics, and rail-fault
// degradation — a rail killed mid-transfer must not lose or corrupt a
// byte, and the message must complete on the survivors.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mad/config_parser.hpp"
#include "mad/madeleine.hpp"
#include "net/fault.hpp"
#include "sim/explore.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {
namespace {

/// Two nodes joined by `rail_count` independent TCP adapters, one channel
/// per adapter, all grouped into rail set "r" headed by "ch0".
SessionConfig tcp_rails_config(std::size_t rail_count,
                               std::size_t threshold =
                                   kDefaultStripeThreshold) {
  SessionConfig config;
  config.node_count = 2;
  RailSetDef rails;
  rails.name = "r";
  rails.stripe_threshold = threshold;
  for (std::size_t i = 0; i < rail_count; ++i) {
    NetworkDef net;
    net.name = "net" + std::to_string(i);
    net.kind = NetworkKind::kTcp;
    net.nodes = {0, 1};
    config.networks.push_back(net);
    const std::string channel = "ch" + std::to_string(i);
    config.channels.emplace_back(channel, net.name);
    rails.channels.push_back(channel);
  }
  config.rail_sets.push_back(rails);
  return config;
}

/// Send `sizes` as consecutive blocks of one message on ch0 and verify
/// them on the receive side. Returns the run status.
Status run_transfer(Session& session, const std::vector<std::size_t>& sizes,
                    SendMode smode = send_CHEAPER,
                    ReceiveMode rmode = receive_CHEAPER) {
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    std::vector<std::vector<std::byte>> payloads;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      payloads.push_back(make_pattern_buffer(sizes[i], 100 + i));
    }
    auto& conn = rt.channel("ch0").begin_packing(1);
    for (const auto& payload : payloads) conn.pack(payload, smode, rmode);
    conn.end_packing();
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_unpacking();
    std::vector<std::vector<std::byte>> outs;
    for (std::size_t size : sizes) outs.emplace_back(size);
    for (auto& out : outs) conn.unpack(out, smode, rmode);
    conn.end_unpacking();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_TRUE(verify_pattern(outs[i], 100 + i))
          << "block " << i << " (" << sizes[i] << " bytes) corrupt";
    }
  });
  return session.run();
}

std::uint64_t secondary_segments(Session& session) {
  std::uint64_t total = 0;
  const TrafficStats stats =
      session.endpoint("ch0", 1).connection(0).stats();
  for (const auto& [rail, counters] : stats.rails) {
    if (rail != "ch0") total += counters.segments;
  }
  return total;
}

// ------------------------------------------------------------ the sweep ---

TEST(RailStriping, SweepRailsBySizes) {
  // Sizes straddle the stripe threshold (64 KiB) and the TCP MSS (1460):
  // just below/at/above the threshold, an MSS-straddling odd size, and a
  // large block, mixed with small blocks so the striped path's BMM
  // flushes interleave with grouped small-block traffic.
  for (std::size_t rail_count : {2u, 3u, 4u}) {
    Session session(tcp_rails_config(rail_count));
    const std::vector<std::size_t> sizes = {
        64,           kDefaultStripeThreshold - 1, kDefaultStripeThreshold,
        3 * 1460 + 7, 32,                          200 * 1000 + 13,
        1 << 20,      5};
    const Status run = run_transfer(session, sizes);
    EXPECT_TRUE(run.is_ok()) << "rails=" << rail_count << ": "
                             << run.to_string();
    EXPECT_TRUE(session.rail_set("r").health().is_ok());
    // Both directions of the primary connection account striped traffic;
    // the receiver side must have landed secondary segments.
    EXPECT_GT(secondary_segments(session), 0u) << "rails=" << rail_count;
  }
}

TEST(RailStriping, BelowThresholdBlocksAreNotStriped) {
  Session session(tcp_rails_config(2));
  const Status run =
      run_transfer(session, {kDefaultStripeThreshold - 1, 4096, 64});
  EXPECT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_EQ(secondary_segments(session), 0u);
  EXPECT_TRUE(
      session.endpoint("ch0", 1).connection(0).stats().rails.empty());
}

TEST(RailStriping, ExpressBlocksAreNeverStriped) {
  // receive_EXPRESS data must be available at unpack return; the
  // scheduler must leave it on the single-TM path however large it is.
  Session session(tcp_rails_config(2));
  const Status run = run_transfer(session, {1 << 20, 1 << 18},
                                  send_CHEAPER, receive_EXPRESS);
  EXPECT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_EQ(secondary_segments(session), 0u);
}

TEST(RailStriping, CustomThresholdIsHonored) {
  Session session(tcp_rails_config(2, /*threshold=*/256 * 1024));
  const Status run = run_transfer(session, {128 * 1024, 256 * 1024});
  EXPECT_TRUE(run.is_ok()) << run.to_string();
  const TrafficStats stats =
      session.endpoint("ch0", 1).connection(0).stats();
  auto it = stats.rails.find("ch1");
  ASSERT_NE(it, stats.rails.end());
  // Only the 256 KiB block crossed the threshold.
  EXPECT_EQ(it->second.segments, 1u);
}

TEST(RailStriping, StripedReceiveRefusesBorrow) {
  // A striping-eligible block lands scattered straight into user memory;
  // unpack_borrow must refuse it (before consuming anything) so the
  // caller falls back to the copying unpack — which is the striped path.
  Session session(tcp_rails_config(2));
  const std::size_t size = 256 * 1024;
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    auto payload = make_pattern_buffer(size, 7);
    auto& conn = rt.channel("ch0").begin_packing(1);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_unpacking();
    std::vector<BorrowedBlock> views;
    EXPECT_FALSE(
        conn.unpack_borrow(size, send_CHEAPER, receive_CHEAPER, views));
    std::vector<std::byte> out(size);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 7));
  });
  EXPECT_TRUE(session.run().is_ok());
  EXPECT_GT(secondary_segments(session), 0u);
}

TEST(RailStriping, MixedProtocolRails) {
  // Primary on BIP/Myrinet, secondaries on SISCI, TCP, and IB: the
  // scheduler must split by the very different driver bandwidth hints and
  // move segments through four different protocol data paths — including
  // the IB rail's checked RDMA rendezvous per segment.
  SessionConfig config;
  config.node_count = 2;
  NetworkDef myri{"myri0", NetworkKind::kBip, {0, 1}, {}, {}, {}, {}, {}, {},
                  nullptr};
  NetworkDef sci{"sci0", NetworkKind::kSisci, {0, 1}, {}, {}, {}, {}, {}, {},
                 nullptr};
  NetworkDef eth{"eth0", NetworkKind::kTcp, {0, 1}, {}, {}, {}, {}, {}, {},
                 nullptr};
  NetworkDef ib{"ib0", NetworkKind::kIb, {0, 1}, {}, {}, {}, {}, {}, {},
                nullptr};
  config.networks = {myri, sci, eth, ib};
  config.channels = {ChannelDef{"ch0", "myri0"}, ChannelDef{"ch1", "sci0"},
                     ChannelDef{"ch2", "eth0"}, ChannelDef{"ch3", "ib0"}};
  config.rail_sets.push_back(RailSetDef{"r", {"ch0", "ch1", "ch2", "ch3"}});
  Session session(std::move(config));
  const Status run =
      run_transfer(session, {1 << 20, 64, 300 * 1000, 1 << 19});
  EXPECT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_TRUE(session.rail_set("r").health().is_ok());
  const TrafficStats stats =
      session.endpoint("ch0", 1).connection(0).stats();
  ASSERT_NE(stats.rails.find("ch0"), stats.rails.end());
  EXPECT_GT(stats.rails.at("ch0").bytes, 0u);
  // The IB rail has the fattest bandwidth hint of the secondaries; it
  // must have carried striped segments.
  ASSERT_NE(stats.rails.find("ch3"), stats.rails.end());
  EXPECT_GT(stats.rails.at("ch3").bytes, 0u);
}

TEST(RailStriping, ParsedConfigStripes) {
  auto parsed = parse_session_config(R"(
nodes 2
network net0 tcp 0 1
network net1 tcp 0 1
channel ch0 net0
channel ch1 net1
rails r ch0 ch1 threshold=32768
)");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  Session session(std::move(parsed.value()));
  EXPECT_EQ(session.rail_set("r").rail_count(), 2u);
  EXPECT_EQ(session.rail_set("r").threshold(), 32768u);
  const Status run = run_transfer(session, {64 * 1024});
  EXPECT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_GT(secondary_segments(session), 0u);
}

// --------------------------------------------------------- rail faults ---

/// Two nodes: primary rail on lossless BIP, secondary on a TCP network
/// whose fabric follows `plan` with an aggressive give-up so a partition
/// kills the rail quickly.
SessionConfig faulty_rail_config(net::FaultPlan* plan) {
  net::TcpParams tcp = net::TcpParams::fast_ethernet();
  tcp.fabric.faults = plan;
  tcp.reliability.rto_initial = sim::microseconds(200);
  tcp.reliability.rto_max = sim::microseconds(800);
  tcp.reliability.max_retransmits = 5;
  SessionConfig config;
  config.node_count = 2;
  NetworkDef myri{"myri0", NetworkKind::kBip, {0, 1}, {}, {}, {}, {}, {}, {},
                  nullptr};
  NetworkDef eth{"eth0", NetworkKind::kTcp, {0, 1}, {}, {}, {}, {}, {}, {},
                 nullptr};
  eth.tcp_params = tcp;
  config.networks = {myri, eth};
  config.channels = {ChannelDef{"ch0", "myri0"}, ChannelDef{"ch1", "eth0"}};
  config.rail_sets.push_back(RailSetDef{"r", {"ch0", "ch1"}});
  return config;
}

TEST(RailFault, KilledRailResubmitsOnSurvivors) {
  // The TCP rail dies mid-stream (scripted partition, never heals). Every
  // block must still arrive intact — outstanding segments resubmitted on
  // the primary — and the session must stay up, degraded.
  net::FaultPlan plan(/*seed=*/11);
  plan.partition(0, 1, sim::microseconds(2500));
  Session session(faulty_rail_config(&plan));
  const std::vector<std::size_t> sizes(6, 256 * 1024);
  const Status run = run_transfer(session, sizes);
  EXPECT_TRUE(run.is_ok()) << run.to_string();
  RailSet& rails = session.rail_set("r");
  EXPECT_FALSE(rails.health().is_ok());
  EXPECT_FALSE(rails.alive(1));
  EXPECT_EQ(rails.weight(1), 0.0);
  // At least one segment was resubmitted after the fault (accounted on
  // whichever side observed its lane fail).
  const TrafficStats tx = session.endpoint("ch0", 0).connection(1).stats();
  const TrafficStats rx = session.endpoint("ch0", 1).connection(0).stats();
  const std::uint64_t resubmits = tx.rails.count("ch1") != 0
                                      ? tx.rails.at("ch1").resubmits
                                      : 0;
  const std::uint64_t rx_resubmits = rx.rails.count("ch1") != 0
                                         ? rx.rails.at("ch1").resubmits
                                         : 0;
  EXPECT_GE(resubmits + rx_resubmits, 1u);
}

TEST(RailFault, SurvivesPartitionSeedSweep) {
  // The partition instant scans across the whole transfer, so the rail
  // dies before, inside, and after every phase of a striped block
  // (descriptor, segments in flight, trailer, between blocks).
  for (int at_us = 500; at_us <= 8000; at_us += 500) {
    net::FaultPlan plan(/*seed=*/at_us);
    plan.partition(0, 1, sim::microseconds(at_us));
    Session session(faulty_rail_config(&plan));
    // Long enough (~12 ms of virtual time) that every partition instant
    // in the sweep falls inside the transfer.
    const std::vector<std::size_t> sizes(6, 256 * 1024);
    const Status run = run_transfer(session, sizes);
    EXPECT_TRUE(run.is_ok())
        << "partition at " << at_us << "us: " << run.to_string();
    EXPECT_FALSE(session.rail_set("r").health().is_ok())
        << "partition at " << at_us << "us left the rail alive";
  }
}

TEST(RailFault, ResubmissionUnderExploredSchedules) {
  // madcheck: the killed-rail scenario must hold under at least 200
  // explored fiber schedules — lane/pump/retransmit interleavings vary,
  // the bytes must not.
  auto body = []() -> Status {
    net::FaultPlan plan(/*seed=*/23);
    plan.partition(0, 1, sim::microseconds(1500));
    Session session(faulty_rail_config(&plan));
    std::string failure;
    const std::vector<std::size_t> sizes(3, 96 * 1024);
    session.spawn(0, "tx", [&](NodeRuntime& rt) {
      std::vector<std::vector<std::byte>> payloads;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        payloads.push_back(make_pattern_buffer(sizes[i], 100 + i));
      }
      auto& conn = rt.channel("ch0").begin_packing(1);
      for (const auto& payload : payloads) conn.pack(payload);
      conn.end_packing();
    });
    session.spawn(1, "rx", [&](NodeRuntime& rt) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::vector<std::byte>> outs;
      for (std::size_t size : sizes) outs.emplace_back(size);
      for (auto& out : outs) conn.unpack(out);
      conn.end_unpacking();
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        if (!verify_pattern(outs[i], 100 + i)) {
          failure = "block " + std::to_string(i) +
                    " corrupt after rail failure";
        }
      }
    });
    const Status run = session.run();
    if (!run.is_ok()) return run;
    if (!failure.empty()) return internal_error(failure);
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

}  // namespace
}  // namespace mad2::mad
