// Property tests for the forwarding layer: random block schedules and
// random mode combinations across the gateway must arrive intact and in
// order, including with paranoid hop channels, store-and-forward
// gateways, odd MTUs, and lossy TCP hops riding the reliable shim.
#include <gtest/gtest.h>

#include "fwd/virtual_channel.hpp"
#include "net/fault.hpp"
#include "sim/explore.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mad2::fwd {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::NodeRuntime;
using mad::Session;
using mad::SessionConfig;

struct FuzzParam {
  std::uint64_t seed;
  std::size_t mtu;
  std::size_t pipeline_depth;
  bool paranoid_hops;
  NetworkKind left = NetworkKind::kSisci;
  NetworkKind right = NetworkKind::kBip;
  /// Packet loss injected into every TCP hop (non-TCP hops stay lossless;
  /// only the TCP driver layers the reliable shim underneath).
  double fault_drop = 0.0;
};

/// Faulty-Ethernet parameters: a FaultPlan with light loss/dup/reorder
/// plus the matching TcpParams. The plan must outlive the session.
net::TcpParams faulty_tcp(net::FaultPlan& plan, double drop_rate) {
  net::LinkFaults faults;
  faults.drop_rate = drop_rate;
  faults.dup_rate = drop_rate / 4;
  faults.reorder_rate = drop_rate;
  faults.reorder_window = 4;
  plan.set_default_faults(faults);
  net::TcpParams params = net::TcpParams::fast_ethernet();
  params.fabric.faults = &plan;
  return params;
}

class FwdFuzz : public testing::TestWithParam<FuzzParam> {};

std::string param_name(const testing::TestParamInfo<FuzzParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_mtu" +
         std::to_string(info.param.mtu) + "_depth" +
         std::to_string(info.param.pipeline_depth) +
         (info.param.paranoid_hops ? "_paranoid" : "") + "_" +
         std::string(to_string(info.param.left)) + "_" +
         std::string(to_string(info.param.right)) +
         (info.param.fault_drop > 0 ? "_faulty" : "");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FwdFuzz,
    testing::Values(
        FuzzParam{1, 4096, 2, false},
        FuzzParam{2, 16 * 1024, 2, false},
        FuzzParam{3, 16 * 1024, 1, false},  // store-and-forward
        FuzzParam{4, 1000, 2, false},       // odd MTU
        FuzzParam{5, 16 * 1024, 4, false},  // deep pipeline
        FuzzParam{6, 16 * 1024, 2, true},   // paranoid hops
        FuzzParam{7, 4096, 1, true},
        // Every substrate pairing through a gateway:
        FuzzParam{8, 8192, 2, false, NetworkKind::kTcp, NetworkKind::kSbp},
        FuzzParam{9, 8192, 2, false, NetworkKind::kVia, NetworkKind::kSisci},
        FuzzParam{10, 8192, 2, false, NetworkKind::kSbp, NetworkKind::kBip},
        FuzzParam{11, 8192, 2, false, NetworkKind::kVia, NetworkKind::kTcp},
        FuzzParam{12, 8192, 2, false, NetworkKind::kSbp, NetworkKind::kSbp},
        // Lossy-wire cases: the TCP hops drop/dup/reorder under the
        // reliable shim; end-to-end integrity must be unaffected.
        FuzzParam{13, 8192, 2, false, NetworkKind::kTcp, NetworkKind::kTcp,
                  0.03},
        FuzzParam{14, 4096, 2, false, NetworkKind::kTcp,
                  NetworkKind::kSisci, 0.05},
        FuzzParam{15, 16 * 1024, 1, true, NetworkKind::kTcp,
                  NetworkKind::kTcp, 0.02}),
    param_name);

TEST_P(FwdFuzz, RandomSchedulesSurviveTheGateway) {
  const FuzzParam param = GetParam();
  Rng rng(param.seed);

  SessionConfig config;
  config.node_count = 3;
  net::FaultPlan left_plan(param.seed * 2 + 1);
  net::FaultPlan right_plan(param.seed * 2 + 2);
  NetworkDef left;
  left.name = "left";
  left.kind = param.left;
  left.nodes = {0, 1};
  if (param.fault_drop > 0 && param.left == NetworkKind::kTcp) {
    left.tcp_params = faulty_tcp(left_plan, param.fault_drop);
  }
  NetworkDef right;
  right.name = "right";
  right.kind = param.right;
  right.nodes = {1, 2};
  if (param.fault_drop > 0 && param.right == NetworkKind::kTcp) {
    right.tcp_params = faulty_tcp(right_plan, param.fault_drop);
  }
  config.networks = {left, right};
  ChannelDef cl{"cl", "left"};
  cl.paranoid = param.paranoid_hops;
  ChannelDef cr{"cr", "right"};
  cr.paranoid = param.paranoid_hops;
  config.channels = {cl, cr};
  Session session(std::move(config));

  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"cl", "cr"};
  def.mtu = param.mtu;
  def.pipeline_depth = param.pipeline_depth;
  VirtualChannel vc(session, def);

  // Random message plan, verified end to end.
  struct Block {
    std::size_t size;
    mad::SendMode smode;
    mad::ReceiveMode rmode;
  };
  std::vector<std::vector<Block>> messages(rng.next_range(2, 5));
  for (auto& message : messages) {
    message.resize(rng.next_range(1, 5));
    for (Block& block : message) {
      block.size = rng.next_below(3) == 0 ? rng.next_range(0, 200)
                                          : rng.next_range(201, 60000);
      block.smode =
          rng.next_bool(0.3) ? mad::send_SAFER : mad::send_CHEAPER;
      block.rmode =
          rng.next_bool(0.3) ? mad::receive_EXPRESS : mad::receive_CHEAPER;
    }
  }

  session.spawn(0, "sender", [&](NodeRuntime&) {
    std::uint64_t pattern = 0;
    for (const auto& message : messages) {
      std::vector<std::vector<std::byte>> payloads;
      for (const Block& block : message) {
        payloads.push_back(make_pattern_buffer(block.size, ++pattern));
      }
      auto& conn = vc.endpoint(0).begin_packing(2);
      for (std::size_t i = 0; i < message.size(); ++i) {
        conn.pack(payloads[i], message[i].smode, message[i].rmode);
      }
      conn.end_packing();
    }
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    std::uint64_t pattern = 0;
    for (const auto& message : messages) {
      auto& conn = vc.endpoint(2).begin_unpacking();
      std::vector<std::vector<std::byte>> outs;
      for (const Block& block : message) outs.emplace_back(block.size);
      for (std::size_t i = 0; i < message.size(); ++i) {
        conn.unpack(outs[i], message[i].smode, message[i].rmode);
      }
      conn.end_unpacking();
      for (const auto& out : outs) {
        EXPECT_TRUE(verify_pattern(out, ++pattern));
      }
    }
  });
  ASSERT_TRUE(session.run().is_ok());
  if (param.fault_drop > 0 && param.left == NetworkKind::kTcp) {
    // The lossy hop really exercised the shim, and the ARQ counters are
    // visible through the channel stats.
    EXPECT_GT(left_plan.counters().shipped, 0u);
    EXPECT_GT(session.endpoint("cl", 0).stats().reliability.data_frames,
              0u);
  }
}

// ------------------------------------------------------------ madcheck ---

// Schedule exploration x payload fuzz: every explored schedule also runs
// a *different* randomized message plan (the run counter seeds the plan),
// so schedule-space and payload-space are swept together. Odd MTU and
// paranoid hops maximize the per-packet work racing at the gateway.
TEST(FwdFuzzExplore, VariedPayloadsSurviveAnySchedule) {
  int run_index = 0;
  const auto body = [&run_index]() -> Status {
    const std::uint64_t plan_seed = 1000 + run_index++;
    Rng rng(plan_seed);
    std::string failure;
    auto fail = [&failure](std::string detail) {
      if (failure.empty()) failure = std::move(detail);
    };

    SessionConfig config;
    config.node_count = 3;
    NetworkDef left;
    left.name = "left";
    left.kind = NetworkKind::kSisci;
    left.nodes = {0, 1};
    NetworkDef right;
    right.name = "right";
    right.kind = NetworkKind::kBip;
    right.nodes = {1, 2};
    config.networks = {left, right};
    ChannelDef cl{"cl", "left"};
    cl.paranoid = true;
    ChannelDef cr{"cr", "right"};
    cr.paranoid = true;
    config.channels = {cl, cr};
    Session session(std::move(config));
    VirtualChannelDef def;
    def.name = "vc";
    def.hops = {"cl", "cr"};
    def.mtu = 1000;  // odd MTU: packet boundaries never align with blocks
    VirtualChannel vc(session, def);

    struct Block {
      std::size_t size;
      mad::SendMode smode;
      mad::ReceiveMode rmode;
    };
    std::vector<Block> message(rng.next_range(1, 4));
    for (Block& block : message) {
      block.size = rng.next_below(2) == 0 ? rng.next_range(0, 200)
                                          : rng.next_range(201, 8000);
      block.smode = rng.next_bool(0.3) ? mad::send_SAFER : mad::send_CHEAPER;
      block.rmode =
          rng.next_bool(0.3) ? mad::receive_EXPRESS : mad::receive_CHEAPER;
    }

    session.spawn(0, "sender", [&](NodeRuntime&) {
      std::vector<std::vector<std::byte>> payloads;
      for (std::size_t i = 0; i < message.size(); ++i) {
        payloads.push_back(
            make_pattern_buffer(message[i].size, plan_seed + i));
      }
      auto& conn = vc.endpoint(0).begin_packing(2);
      for (std::size_t i = 0; i < message.size(); ++i) {
        conn.pack(payloads[i], message[i].smode, message[i].rmode);
      }
      conn.end_packing();
    });
    session.spawn(2, "receiver", [&](NodeRuntime&) {
      auto& conn = vc.endpoint(2).begin_unpacking();
      std::vector<std::vector<std::byte>> outs;
      for (const Block& block : message) outs.emplace_back(block.size);
      for (std::size_t i = 0; i < message.size(); ++i) {
        conn.unpack(outs[i], message[i].smode, message[i].rmode);
      }
      conn.end_unpacking();
      for (std::size_t i = 0; i < message.size(); ++i) {
        if (!verify_pattern(outs[i], plan_seed + i)) {
          fail("plan " + std::to_string(plan_seed) + " block " +
               std::to_string(i) + " corrupt under explored schedule");
        }
      }
    });
    const Status run = session.run();
    if (!run.is_ok()) return run;
    if (!failure.empty()) return internal_error(failure);
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  // No exhaustive phase: the body is intentionally not idempotent (each
  // run draws a fresh payload plan), so DFS prefix extension — which
  // assumes replaying a prefix reproduces the same run — would explore
  // stale prefixes. Random walks and the FIFO baseline do not replay.
  options.max_exhaustive_runs = 0;
  options.shrink = false;  // shrinking also assumes idempotence
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

// Gateway-path acceptance criterion of the fault-injection issue: 10k
// messages through a forwarding gateway over two lossy TCP hops (5% drop,
// 1% dup, reorder window 4), delivered exactly once, in order, intact —
// with a byte-identical delivery trace across two same-seed runs.
TEST(FwdFaultAcceptance, TenThousandMessagesThroughLossyGateway) {
  auto run_once = [] {
    constexpr int kMessages = 10000;
    net::LinkFaults faults;
    faults.drop_rate = 0.05;
    faults.dup_rate = 0.01;
    faults.reorder_rate = 0.25;
    faults.reorder_window = 4;
    net::FaultPlan left_plan(/*seed=*/101);
    net::FaultPlan right_plan(/*seed=*/202);
    left_plan.set_default_faults(faults);
    right_plan.set_default_faults(faults);
    net::TcpParams left_tcp = net::TcpParams::fast_ethernet();
    left_tcp.fabric.faults = &left_plan;
    net::TcpParams right_tcp = net::TcpParams::fast_ethernet();
    right_tcp.fabric.faults = &right_plan;

    SessionConfig config;
    config.node_count = 3;
    NetworkDef left;
    left.name = "left";
    left.kind = NetworkKind::kTcp;
    left.nodes = {0, 1};
    left.tcp_params = left_tcp;
    NetworkDef right;
    right.name = "right";
    right.kind = NetworkKind::kTcp;
    right.nodes = {1, 2};
    right.tcp_params = right_tcp;
    config.networks = {left, right};
    config.channels = {ChannelDef{"cl", "left"}, ChannelDef{"cr", "right"}};
    Session session(std::move(config));
    VirtualChannelDef def;
    def.name = "vc";
    def.hops = {"cl", "cr"};
    def.mtu = 4096;
    VirtualChannel vc(session, def);

    std::string trace;
    session.spawn(0, "sender", [&](NodeRuntime&) {
      for (int i = 0; i < kMessages; ++i) {
        auto payload = make_pattern_buffer(32 + (i % 64), i);
        auto& conn = vc.endpoint(0).begin_packing(2);
        conn.pack(payload);
        conn.end_packing();
      }
    });
    session.spawn(2, "receiver", [&](NodeRuntime& rt) {
      for (int i = 0; i < kMessages; ++i) {
        std::vector<std::byte> out(32 + (i % 64));
        auto& conn = vc.endpoint(2).begin_unpacking();
        conn.unpack(out);
        conn.end_unpacking();
        // Exactly-once + in-order: message i must carry pattern i.
        EXPECT_TRUE(verify_pattern(out, i)) << "message " << i;
        trace += std::to_string(fnv1a(out)) + "@" +
                 std::to_string(rt.simulator().now()) + ";";
      }
    });
    EXPECT_TRUE(session.run().is_ok());
    // The wire was genuinely hostile and the shim genuinely worked.
    EXPECT_GT(left_plan.counters().dropped, 0u);
    EXPECT_GT(right_plan.counters().dropped, 0u);
    EXPECT_GT(session.endpoint("cl", 0).stats().reliability.retransmits,
              0u);
    return trace;
  };
  const std::string first = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(run_once(), first);
}

TEST(FwdSelfDescription, ModeMismatchIsCaughtByTheGenericTm) {
  // Virtual channels ARE self-described (unlike plain channels), so the
  // receiver's divergence is detected even without paranoid mode.
  SessionConfig config;
  config.node_count = 3;
  NetworkDef left;
  left.name = "left";
  left.kind = NetworkKind::kTcp;
  left.nodes = {0, 1};
  NetworkDef right;
  right.name = "right";
  right.kind = NetworkKind::kTcp;
  right.nodes = {1, 2};
  config.networks = {left, right};
  config.channels = {ChannelDef{"cl", "left"}, ChannelDef{"cr", "right"}};
  Session session(std::move(config));
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"cl", "cr"};
  VirtualChannel vc(session, def);

  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(100, 1);
    auto& conn = vc.endpoint(0).begin_packing(2);
    conn.pack(payload, mad::send_CHEAPER, mad::receive_CHEAPER);
    conn.end_packing();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    std::vector<std::byte> out(100);
    auto& conn = vc.endpoint(2).begin_unpacking();
    conn.unpack(out, mad::send_CHEAPER, mad::receive_EXPRESS);  // mismatch
    conn.end_unpacking();
  });
  EXPECT_DEATH({ (void)session.run(); }, "modes do not match");
}

TEST(FwdSelfDescription, SizeMismatchIsCaughtByTheGenericTm) {
  SessionConfig config;
  config.node_count = 3;
  NetworkDef left;
  left.name = "left";
  left.kind = NetworkKind::kTcp;
  left.nodes = {0, 1};
  NetworkDef right;
  right.name = "right";
  right.kind = NetworkKind::kTcp;
  right.nodes = {1, 2};
  config.networks = {left, right};
  config.channels = {ChannelDef{"cl", "left"}, ChannelDef{"cr", "right"}};
  Session session(std::move(config));
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"cl", "cr"};
  VirtualChannel vc(session, def);

  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(100, 1);
    auto& conn = vc.endpoint(0).begin_packing(2);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    std::vector<std::byte> out(99);
    auto& conn = vc.endpoint(2).begin_unpacking();
    conn.unpack(out);
    conn.end_unpacking();
  });
  EXPECT_DEATH({ (void)session.run(); }, "does not match");
}

}  // namespace
}  // namespace mad2::fwd
