// Fast-path suite (docs/PERFORMANCE.md): the Switch's flat dispatch
// tables must agree with the legacy per-call query everywhere, the
// short-message path must be allocation-free in steady state, ordering
// must hold across mixed deferred/direct sends, the vectorized util
// kernels must be bit-identical to their scalar definitions, and the
// batched progress tick must survive madcheck schedule exploration.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mad/madeleine.hpp"
#include "sim/explore.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {
namespace {

SessionConfig one_network_config(NetworkKind kind, bool fastpath = false) {
  SessionConfig config;
  config.node_count = 2;
  NetworkDef net;
  net.name = "net0";
  net.kind = kind;
  net.nodes = {0, 1};
  config.networks.push_back(net);
  config.channels.push_back(ChannelDef{"ch0", "net0"});
  if (fastpath) config.fastpath = FastPathConfig{};
  return config;
}

// ------------------------------------------------- dispatch equivalence ---

/// Sweep sizes that straddle every declared breakpoint (plus the extremes)
/// across all six mode pairs, asserting the dispatch table answers and
/// answers exactly what the legacy virtual query would.
void check_dispatch_equivalence(SessionConfig config) {
  Session session(std::move(config));
  Connection& conn = session.endpoint("ch0", 0).connection(1);
  Pmm& pmm = session.endpoint("ch0", 0).pmm();

  const auto breaks = pmm.selection_breakpoints();
  ASSERT_TRUE(breaks.has_value())
      << pmm.name() << " no longer declares breakpoints";
  std::vector<std::size_t> sizes{0, 1, 2, 16, 1 << 20};
  for (std::size_t b : *breaks) {
    if (b > 0) sizes.push_back(b - 1);
    sizes.push_back(b);
    sizes.push_back(b + 1);
  }

  const std::vector<SendMode> smodes{send_SAFER, send_LATER, send_CHEAPER};
  const std::vector<ReceiveMode> rmodes{receive_EXPRESS, receive_CHEAPER};
  for (std::size_t len : sizes) {
    for (SendMode s : smodes) {
      for (ReceiveMode r : rmodes) {
        const Connection::SwitchDecision got = conn.probe_switch(len, s, r);
        Tm& want_tm = pmm.select_tm(len, s, r);
        const BmmKind want_kind = select_bmm_kind(want_tm, s, r);
        EXPECT_TRUE(got.from_table)
            << pmm.name() << " len=" << len << " fell back to legacy";
        EXPECT_EQ(got.tm, &want_tm)
            << pmm.name() << " len=" << len << " smode=" << to_string(s)
            << " rmode=" << to_string(r) << ": table picked "
            << (got.tm != nullptr ? got.tm->name() : "null") << ", legacy "
            << want_tm.name();
        EXPECT_EQ(got.kind, want_kind)
            << pmm.name() << " len=" << len << " smode=" << to_string(s)
            << " rmode=" << to_string(r);
      }
    }
  }
}

TEST(FastPathDispatch, TcpMatchesLegacy) {
  check_dispatch_equivalence(one_network_config(NetworkKind::kTcp));
}

TEST(FastPathDispatch, BipMatchesLegacy) {
  check_dispatch_equivalence(one_network_config(NetworkKind::kBip));
}

TEST(FastPathDispatch, SisciMatchesLegacy) {
  check_dispatch_equivalence(one_network_config(NetworkKind::kSisci));
}

TEST(FastPathDispatch, SisciWithDmaMatchesLegacy) {
  // DMA adds a second boundary at dma_min_bytes - 1; the default config
  // even overlaps it with the short cutoff when dma_min_bytes is small —
  // both shapes must table identically.
  for (std::uint32_t dma_min : {512u, 32768u}) {
    SessionConfig config = one_network_config(NetworkKind::kSisci);
    SciPmmOptions options;
    options.enable_dma = true;
    options.dma_min_bytes = dma_min;
    config.channels[0].sci_options = options;
    check_dispatch_equivalence(std::move(config));
  }
}

TEST(FastPathDispatch, ViaMatchesLegacy) {
  check_dispatch_equivalence(one_network_config(NetworkKind::kVia));
}

TEST(FastPathDispatch, SbpMatchesLegacy) {
  check_dispatch_equivalence(one_network_config(NetworkKind::kSbp));
}

TEST(FastPathDispatch, IbMatchesLegacy) {
  // The IB driver's table covers the eager cutoff and the EXPRESS/CHEAPER
  // split between RDMA-write and RDMA-read rendezvous.
  check_dispatch_equivalence(one_network_config(NetworkKind::kIb));
}

TEST(FastPathDispatch, HotPathsUseTheTable) {
  // After real traffic, every selection must have come from the table
  // (fast_selects > 0, legacy_selects == 0) for a breakpoint-declaring
  // driver — the legacy path would mean the table silently disengaged.
  for (NetworkKind kind : {NetworkKind::kTcp, NetworkKind::kBip,
                           NetworkKind::kSisci, NetworkKind::kVia,
                           NetworkKind::kSbp, NetworkKind::kIb}) {
    Session session(one_network_config(kind));
    session.spawn(0, "tx", [&](NodeRuntime& rt) {
      for (std::size_t size : {16, 300, 2000, 70000}) {
        auto payload = make_pattern_buffer(size, size);
        auto& conn = rt.channel("ch0").begin_packing(1);
        conn.pack(payload);
        conn.end_packing();
      }
    });
    session.spawn(1, "rx", [&](NodeRuntime& rt) {
      for (std::size_t size : {16, 300, 2000, 70000}) {
        auto& conn = rt.channel("ch0").begin_unpacking();
        std::vector<std::byte> out(size);
        conn.unpack(out);
        conn.end_unpacking();
        EXPECT_TRUE(verify_pattern(out, size));
      }
    });
    ASSERT_TRUE(session.run().is_ok());
    for (std::uint32_t node : {0u, 1u}) {
      const TrafficStats stats = session.endpoint("ch0", node).stats();
      EXPECT_GT(stats.switching.fast_selects, 0u) << to_string(kind);
      EXPECT_EQ(stats.switching.legacy_selects, 0u) << to_string(kind);
    }
  }
}

// ------------------------------------------------- zero-allocation flood ---

/// Post-warmup short-message floods may not allocate on either node: the
/// receive-slot slab, staging pools and coalescing buffers are all sized
/// during setup/warmup and recycled afterwards.
void check_alloc_free_flood(NetworkKind kind, std::size_t size) {
  Session session(one_network_config(kind, /*fastpath=*/true));
  constexpr int kWarmup = 32;
  constexpr int kMessages = 256;
  std::uint64_t tx_start = 0;
  std::uint64_t tx_end = 0;
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{5});
    for (int i = 0; i < kWarmup + kMessages; ++i) {
      if (i == kWarmup) tx_start = rt.node().mem().alloc_count;
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
    tx_end = rt.node().mem().alloc_count;
  });
  std::uint64_t rx_start = 0;
  std::uint64_t rx_end = 0;
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(size);
    for (int i = 0; i < kWarmup + kMessages; ++i) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      conn.unpack(out);
      conn.end_unpacking();
      if (i == kWarmup - 1) rx_start = rt.node().mem().alloc_count;
    }
    rx_end = rt.node().mem().alloc_count;
  });
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_EQ(tx_end - tx_start, 0u)
      << to_string(kind) << " sender allocated during the flood";
  EXPECT_EQ(rx_end - rx_start, 0u)
      << to_string(kind) << " receiver allocated during the flood";
}

TEST(FastPathAlloc, BipShortFloodIsAllocationFree) {
  check_alloc_free_flood(NetworkKind::kBip, 8);
  check_alloc_free_flood(NetworkKind::kBip, 256);
}

TEST(FastPathAlloc, TcpFloodIsAllocationFree) {
  check_alloc_free_flood(NetworkKind::kTcp, 8);
  check_alloc_free_flood(NetworkKind::kTcp, 256);
}

// ------------------------------------------------- deferred/direct order ---

TEST(FastPathOrdering, MixedSmallAndLargeBlocksStayOrdered) {
  // Small blocks ride the deferred coalescing path, large ones the direct
  // path; a direct send must flush staged bytes first so the stream order
  // is exactly the pack order.
  const std::vector<std::size_t> sizes{8, 64, 100000, 16, 70000, 32, 8};
  Session session(one_network_config(NetworkKind::kTcp, /*fastpath=*/true));
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    for (int round = 0; round < 3; ++round) {
      auto& conn = rt.channel("ch0").begin_packing(1);
      std::vector<std::vector<std::byte>> blocks;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        blocks.push_back(
            make_pattern_buffer(sizes[i], 100 * round + i));
      }
      for (const auto& block : blocks) conn.pack(block);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    for (int round = 0; round < 3; ++round) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      // Group-BMM blocks land at end_unpacking, so every out buffer must
      // stay alive until then; verify afterwards.
      std::vector<std::vector<std::byte>> outs;
      for (std::size_t size : sizes) outs.emplace_back(size);
      for (auto& out : outs) conn.unpack(out);
      conn.end_unpacking();
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_TRUE(verify_pattern(outs[i], 100 * round + i))
            << "round " << round << " block " << i;
      }
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

// ------------------------------------------------- vectorized util kernels ---

namespace reference {

// The original byte-at-a-time definitions, kept verbatim as the oracle
// for the word-at-a-time versions in util/bytes.cpp.
std::byte pattern_byte(std::uint64_t seed, std::size_t i) {
  const std::uint64_t x =
      (seed * 0x9e3779b97f4a7c15ULL) ^ (static_cast<std::uint64_t>(i) *
                                        0xbf58476d1ce4e5b9ULL);
  return static_cast<std::byte>((x >> 32) & 0xff);
}

void fill_pattern(std::span<std::byte> dst, std::uint64_t seed) {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = pattern_byte(seed, i);
  }
}

std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    hash = (hash ^ static_cast<std::uint64_t>(b)) * 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace reference

TEST(FastPathBytes, VectorizedKernelsMatchScalarReference) {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 0; n <= 70; ++n) sizes.push_back(n);
  sizes.insert(sizes.end(), {127, 128, 129, 4096, 65537});
  for (std::size_t n : sizes) {
    for (std::uint64_t seed : {0ull, 42ull, 0xdeadbeefull}) {
      std::vector<std::byte> fast(n);
      std::vector<std::byte> slow(n);
      fill_pattern(fast, seed);
      reference::fill_pattern(slow, seed);
      ASSERT_TRUE(n == 0 ||
                  std::memcmp(fast.data(), slow.data(), n) == 0)
          << "fill_pattern diverges at n=" << n << " seed=" << seed;
      EXPECT_TRUE(verify_pattern(fast, seed)) << "n=" << n;
      EXPECT_EQ(fnv1a(fast), reference::fnv1a(slow))
          << "fnv1a diverges at n=" << n << " seed=" << seed;
      if (n > 0) {
        // verify_pattern must still catch single-byte corruption in
        // every lane position.
        std::vector<std::byte> bad = fast;
        bad[n / 2] ^= std::byte{0x01};
        EXPECT_FALSE(verify_pattern(bad, seed)) << "n=" << n;
      }
    }
  }
}

// ------------------------------------------------- progress-tick explore ---

/// Body for sim::explore: a fastpath session whose messages must all
/// arrive intact no matter how the scheduler interleaves the sender, the
/// receiver pump and the progress-engine daemon.
Status explore_fastpath_body(NetworkKind kind) {
  const std::vector<std::size_t> sizes{8, 64, 8, 300, 8};
  Session session(one_network_config(kind, /*fastpath=*/true));
  std::string failure;
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      auto payload = make_pattern_buffer(sizes[i], 7 * i + 1);
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::byte> out(sizes[i]);
      conn.unpack(out);
      conn.end_unpacking();
      if (!verify_pattern(out, 7 * i + 1)) {
        failure = "message " + std::to_string(i) +
                  " corrupt under explored schedule";
      }
    }
  });
  const Status run = session.run();
  if (!run.is_ok()) return run;
  if (!failure.empty()) return internal_error(failure);
  return Status::ok();
}

TEST(FastPathExplore, TcpProgressTickSurvivesSchedules) {
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(
      [] { return explore_fastpath_body(NetworkKind::kTcp); }, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(FastPathExplore, BipDeferredCreditsSurviveSchedules) {
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(
      [] { return explore_fastpath_body(NetworkKind::kBip); }, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(FastPathExplore, SciDeferredFeedbackSurvivesSchedules) {
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(
      [] { return explore_fastpath_body(NetworkKind::kSisci); }, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(FastPathProgress, SciFeedbackRidesTheProgressTick) {
  // A SISCI-only fastpath session: the per-unit feedback writes are gone,
  // so any doorbells/flushes the engine reports came from the SciPmm
  // client. Shorts flood the slot window and bulks cycle the 2-deep ring,
  // both directions, so deferral is exercised under pressure.
  Session session(one_network_config(NetworkKind::kSisci, /*fastpath=*/true));
  const int shorts = 64;
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    for (int i = 0; i < shorts; ++i) {
      auto payload = make_pattern_buffer(16, i);
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
    auto bulk = make_pattern_buffer(100 * 1000, 77);
    auto& conn = rt.channel("ch0").begin_packing(1);
    conn.pack(bulk);
    conn.end_packing();
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    for (int i = 0; i < shorts; ++i) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::byte> out(16);
      conn.unpack(out);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, i));
    }
    auto& conn = rt.channel("ch0").begin_unpacking();
    std::vector<std::byte> out(100 * 1000);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 77));
  });
  ASSERT_TRUE(session.run().is_ok());
  const ProgressEngine* engine = session.progress_engine(1);
  ASSERT_NE(engine, nullptr);
  EXPECT_GT(engine->counters().doorbells, 0u);
  EXPECT_GT(engine->counters().flushes, 0u);
}

}  // namespace
}  // namespace mad2::mad
