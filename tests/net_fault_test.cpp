// Unit tests for the deterministic fault-injection layer (net/fault):
// every fault kind in isolation with exact outcomes under a fixed seed,
// plus the replay property the seed-sweep suites depend on — the same
// (seed, workload) pair produces a byte-identical delivery trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "fwd/virtual_channel.hpp"
#include "mad/congestion.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "sim/time.hpp"
#include "testbed.hpp"
#include "util/bytes.hpp"

namespace mad2::net {
namespace {

// A packet that exposes its bytes to the corruption hook.
struct FaultyPacket {
  int id = 0;
  std::vector<std::byte> data;

  friend std::span<std::byte> fault_payload(FaultyPacket& packet) {
    return {packet.data.data(), packet.data.size()};
  }
};

// A packet the fault layer cannot see into (no fault_payload overload):
// corruption decisions must leave it intact.
struct OpaquePacket {
  int id = 0;
  std::vector<std::byte> data;
};

FabricParams fast_params(FaultPlan* plan) {
  FabricParams params;
  params.wire_mbs = 10000.0;  // keep serialization out of the timing
  params.propagation = sim::microseconds(1);
  params.faults = plan;
  return params;
}

TEST(FaultPlan, DropRateOneDropsEverything) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/1);
  LinkFaults faults;
  faults.drop_rate = 1.0;
  plan.set_default_faults(faults);
  PacketFabric<FaultyPacket> fabric(&simulator, fast_params(&plan));
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  simulator.spawn("tx", [&] {
    for (int i = 0; i < 10; ++i) {
      fabric.ship(a, b, FaultyPacket{i, std::vector<std::byte>(64)}, 64);
    }
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(plan.counters().shipped, 10u);
  EXPECT_EQ(plan.counters().dropped, 10u);
  EXPECT_EQ(plan.counters().delivered, 0u);
  EXPECT_FALSE(fabric.pending(b));
}

TEST(FaultPlan, DupRateOneDeliversEveryPacketTwice) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/2);
  LinkFaults faults;
  faults.dup_rate = 1.0;
  plan.set_default_faults(faults);
  PacketFabric<FaultyPacket> fabric(&simulator, fast_params(&plan));
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  std::vector<int> received;
  simulator.spawn("tx", [&] {
    for (int i = 0; i < 5; ++i) {
      fabric.ship(a, b, FaultyPacket{i, std::vector<std::byte>(16)}, 16);
    }
  });
  simulator.spawn("rx", [&] {
    for (int i = 0; i < 10; ++i) received.push_back(fabric.receive(b).id);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(plan.counters().duplicated, 5u);
  EXPECT_EQ(plan.counters().delivered, 10u);
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(received[2 * i], i);      // copy and original are adjacent
    EXPECT_EQ(received[2 * i + 1], i);  // (identical payloads either way)
  }
}

TEST(FaultPlan, CorruptionFlipsExactlyOneByteAndChecksumCatchesIt) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/3);
  LinkFaults faults;
  faults.corrupt_rate = 1.0;
  plan.set_default_faults(faults);
  PacketFabric<FaultyPacket> fabric(&simulator, fast_params(&plan));
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  const std::vector<std::byte> original = make_pattern_buffer(256, 7);
  const std::uint32_t sent_checksum =
      wire_checksum(original.data(), original.size());
  std::vector<std::byte> arrived;
  simulator.spawn("tx", [&] {
    fabric.ship(a, b, FaultyPacket{0, original}, 256);
  });
  simulator.spawn("rx", [&] { arrived = fabric.receive(b).data; });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(plan.counters().corrupted, 1u);
  ASSERT_EQ(arrived.size(), original.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (arrived[i] != original[i]) ++differing;
  }
  EXPECT_EQ(differing, 1u);  // single-byte XOR with a non-zero mask
  EXPECT_NE(wire_checksum(arrived.data(), arrived.size()), sent_checksum);
}

TEST(FaultPlan, OpaquePacketsSurviveCorruptionDecisions) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/3);
  LinkFaults faults;
  faults.corrupt_rate = 1.0;
  plan.set_default_faults(faults);
  PacketFabric<OpaquePacket> fabric(&simulator, fast_params(&plan));
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  const std::vector<std::byte> original = make_pattern_buffer(128, 9);
  std::vector<std::byte> arrived;
  simulator.spawn("tx", [&] {
    fabric.ship(a, b, OpaquePacket{0, original}, 128);
  });
  simulator.spawn("rx", [&] { arrived = fabric.receive(b).data; });
  ASSERT_TRUE(simulator.run().is_ok());
  // The decision was made (and counted) but there are no bytes to flip.
  EXPECT_EQ(plan.counters().corrupted, 1u);
  EXPECT_EQ(arrived, original);
}

TEST(FaultPlan, ReorderingIsABoundedPermutation) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator simulator;
    FaultPlan plan(seed);
    LinkFaults faults;
    faults.reorder_rate = 0.4;
    faults.reorder_window = 4;
    plan.set_default_faults(faults);
    PacketFabric<FaultyPacket> fabric(&simulator, fast_params(&plan));
    const auto a = fabric.add_port();
    const auto b = fabric.add_port();
    std::vector<int> received;
    simulator.spawn("tx", [&] {
      for (int i = 0; i < 40; ++i) {
        fabric.ship(a, b, FaultyPacket{i, std::vector<std::byte>(32)}, 32);
      }
    });
    simulator.spawn("rx", [&] {
      for (int i = 0; i < 40; ++i) received.push_back(fabric.receive(b).id);
    });
    EXPECT_TRUE(simulator.run().is_ok());
    EXPECT_GT(plan.counters().reordered, 0u);
    return received;
  };

  const std::vector<int> received = run_once(4);
  ASSERT_EQ(received.size(), 40u);
  // A permutation of 0..39, not the identity.
  std::vector<int> sorted = received;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> identity(40);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(sorted, identity);
  EXPECT_NE(received, identity);
  // A held packet may be overtaken by at most reorder_window later
  // packets, so nothing arrives more than 4 positions late.
  for (std::size_t pos = 0; pos < received.size(); ++pos) {
    EXPECT_LE(static_cast<int>(pos) - received[pos], 4)
        << "packet " << received[pos] << " arrived at position " << pos;
  }
  // Same seed => the exact same permutation.
  EXPECT_EQ(run_once(4), received);
}

TEST(FaultPlan, ReorderTimeoutReleasesHeldPacketOnQuietLink) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/5);
  LinkFaults faults;
  faults.reorder_rate = 1.0;
  faults.reorder_window = 4;
  faults.reorder_timeout = sim::microseconds(300);
  plan.set_default_faults(faults);
  PacketFabric<FaultyPacket> fabric(&simulator, fast_params(&plan));
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  sim::Time arrived_at = 0;
  simulator.spawn("tx", [&] {
    fabric.ship(a, b, FaultyPacket{0, std::vector<std::byte>(32)}, 32);
  });
  simulator.spawn("rx", [&] {
    (void)fabric.receive(b);
    arrived_at = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // No follow-on traffic ever overtakes it; the safety valve delivers at
  // normal-arrival + reorder_timeout.
  EXPECT_GE(arrived_at, sim::microseconds(300));
  EXPECT_LE(arrived_at, sim::microseconds(302));
}

TEST(FaultPlan, JitterDelaysWithinBound) {
  auto run_once = [] {
    sim::Simulator simulator;
    FaultPlan plan(/*seed=*/6);
    LinkFaults faults;
    faults.jitter_rate = 1.0;
    faults.jitter_max = sim::microseconds(50);
    plan.set_default_faults(faults);
    PacketFabric<FaultyPacket> fabric(&simulator, fast_params(&plan));
    const auto a = fabric.add_port();
    const auto b = fabric.add_port();
    std::vector<sim::Time> arrivals;
    simulator.spawn("tx", [&] {
      for (int i = 0; i < 8; ++i) {
        fabric.ship(a, b, FaultyPacket{i, std::vector<std::byte>(16)}, 16);
      }
    });
    simulator.spawn("rx", [&] {
      for (int i = 0; i < 8; ++i) {
        (void)fabric.receive(b);
        arrivals.push_back(simulator.now());
      }
    });
    EXPECT_TRUE(simulator.run().is_ok());
    EXPECT_EQ(plan.counters().jittered, 8u);
    return arrivals;
  };

  const std::vector<sim::Time> arrivals = run_once();
  ASSERT_EQ(arrivals.size(), 8u);
  // Every arrival is within [ship + propagation, + jitter_max]. Ships are
  // nearly back-to-back (tiny serialization), so just bound the last one.
  EXPECT_LE(arrivals.back(),
            sim::microseconds(1) + sim::microseconds(50) +
                sim::microseconds(2));
  EXPECT_EQ(run_once(), arrivals);  // deterministic under the seed
}

TEST(FaultPlan, ScriptedPartitionDropsExactlyTheWindow) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/7);
  plan.partition(0, 1, sim::microseconds(10), sim::microseconds(20));
  PacketFabric<FaultyPacket> fabric(&simulator, fast_params(&plan));
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  std::vector<int> received;
  simulator.spawn("tx", [&] {
    // One packet before, two during, one after the partition window.
    fabric.ship(a, b, FaultyPacket{0, {}}, 16);
    simulator.advance(sim::microseconds(12) - simulator.now());
    fabric.ship(a, b, FaultyPacket{1, {}}, 16);
    simulator.advance(sim::microseconds(19) - simulator.now());
    fabric.ship(a, b, FaultyPacket{2, {}}, 16);
    simulator.advance(sim::microseconds(25) - simulator.now());
    fabric.ship(a, b, FaultyPacket{3, {}}, 16);
  });
  simulator.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) received.push_back(fabric.receive(b).id);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(plan.counters().partition_dropped, 2u);
  EXPECT_EQ(received, (std::vector<int>{0, 3}));
  // The partition is directional state, queryable without consuming draws.
  EXPECT_FALSE(plan.is_partitioned(0, 1, sim::microseconds(9)));
  EXPECT_TRUE(plan.is_partitioned(0, 1, sim::microseconds(10)));
  EXPECT_TRUE(plan.is_partitioned(1, 0, sim::microseconds(15)));
  EXPECT_FALSE(plan.is_partitioned(0, 1, sim::microseconds(20)));
}

TEST(FaultPlan, OneWayPartitionLeavesReverseDirectionAlone) {
  FaultPlan plan(/*seed=*/8);
  plan.partition_one_way(0, 1, 0, sim::kNever);
  EXPECT_TRUE(plan.is_partitioned(0, 1, sim::microseconds(5)));
  EXPECT_FALSE(plan.is_partitioned(1, 0, sim::microseconds(5)));
}

// The replay property: one seed, one workload => one delivery trace, byte
// for byte, across independent runs. This is what lets a failing
// seed-sweep case be replayed exactly (see docs/PROTOCOLS.md).
TEST(FaultPlan, SameSeedSameWorkloadGivesIdenticalDeliveryTrace) {
  auto run_trace = [](std::uint64_t seed) {
    sim::Simulator simulator;
    FaultPlan plan(seed);
    LinkFaults faults;
    faults.drop_rate = 0.1;
    faults.dup_rate = 0.1;
    faults.reorder_rate = 0.2;
    faults.reorder_window = 3;
    faults.corrupt_rate = 0.1;
    faults.jitter_rate = 0.3;
    faults.jitter_max = sim::microseconds(20);
    plan.set_default_faults(faults);
    PacketFabric<FaultyPacket> fabric(&simulator, fast_params(&plan));
    const auto a = fabric.add_port();
    const auto b = fabric.add_port();
    std::string trace;
    simulator.spawn("tx", [&] {
      for (int i = 0; i < 200; ++i) {
        fabric.ship(a, b,
                    FaultyPacket{i, make_pattern_buffer(
                                        64, static_cast<std::uint64_t>(i))},
                    64);
      }
    });
    simulator.spawn_daemon("rx", [&] {
      for (;;) {
        FaultyPacket packet = fabric.receive(b);
        trace += std::to_string(packet.id) + "@" +
                 std::to_string(simulator.now()) + "#" +
                 std::to_string(fnv1a(
                     {packet.data.data(), packet.data.size()})) +
                 ";";
      }
    });
    EXPECT_TRUE(simulator.run().is_ok());
    return trace;
  };

  const std::string first = run_trace(42);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(run_trace(42), first);   // replay
  EXPECT_NE(run_trace(43), first);   // the seed actually matters
}

// ------------------------------------------------- RTT under faults ---

// The reliable shim samples RTT under Karn's rule: only frames that were
// never retransmitted contribute, so heavy loss thins the sample stream
// but cannot poison it with retransmit ambiguity.
TEST(RttSampling, EstimatorStaysSaneUnderHeavyLoss) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/21);
  LinkFaults faults;
  faults.drop_rate = 0.3;
  plan.set_default_faults(faults);
  ReliableNetwork network(&simulator, fast_params(&plan), ReliableParams{});
  const std::uint32_t a = network.add_port();
  const std::uint32_t b = network.add_port();
  constexpr int kMessages = 60;
  simulator.spawn("tx", [&] {
    for (int i = 0; i < kMessages; ++i) {
      std::vector<std::byte> payload = make_pattern_buffer(256, i);
      ASSERT_TRUE(network.endpoint(a).send(b, 0, payload).is_ok());
      // Space the sends: a burst makes one early drop stall the
      // cumulative ack for the whole window, and Karn's rule would then
      // exclude every frame (each one ends up retransmitted).
      simulator.advance(sim::microseconds(20));
    }
    ASSERT_TRUE(network.endpoint(a).wait_drained(b).is_ok());
  });
  simulator.spawn("rx", [&] {
    for (int i = 0; i < kMessages; ++i) {
      ReliableEndpoint::Message message;
      ASSERT_TRUE(network.endpoint(b).recv(message).is_ok());
      EXPECT_TRUE(verify_pattern(message.payload, i));
    }
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // Loss actually happened, yet clean samples got through.
  EXPECT_GT(network.endpoint(a).counters().retransmits, 0u);
  const sim::Duration srtt = network.endpoint(a).srtt(b);
  const sim::Duration floor = network.endpoint(a).min_rtt(b);
  EXPECT_GT(floor, 0);
  EXPECT_GE(srtt, floor);
  // The floor is at least one round trip of pure propagation and at most
  // a sane multiple of it (a retransmit-contaminated sample would be an
  // RTO off, i.e. hundreds of microseconds).
  EXPECT_GE(floor, 2 * fast_params(&plan).propagation);
  EXPECT_LT(srtt, sim::milliseconds(1));
}

TEST(RttSampling, EstimatorRecoversAfterHealedPartition) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/22);
  // Quiet until 2ms, dead from 2ms to 22ms, healed afterwards.
  plan.partition(0, 1, sim::milliseconds(2), sim::milliseconds(22));
  ReliableNetwork network(&simulator, fast_params(&plan), ReliableParams{});
  const std::uint32_t a = network.add_port();
  const std::uint32_t b = network.add_port();
  constexpr int kMessages = 40;
  simulator.spawn("tx", [&] {
    for (int i = 0; i < kMessages; ++i) {
      std::vector<std::byte> payload = make_pattern_buffer(128, i);
      ASSERT_TRUE(network.endpoint(a).send(b, 0, payload).is_ok());
      simulator.advance(sim::milliseconds(1));  // straddle the partition
    }
    ASSERT_TRUE(network.endpoint(a).wait_drained(b).is_ok());
  });
  simulator.spawn("rx", [&] {
    for (int i = 0; i < kMessages; ++i) {
      ReliableEndpoint::Message message;
      ASSERT_TRUE(network.endpoint(b).recv(message).is_ok());
    }
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(network.endpoint(a).counters().give_ups, 0u);
  EXPECT_GT(network.endpoint(a).counters().retransmits, 0u);
  // Post-heal clean samples keep the estimate near the true path RTT:
  // the partition stall (tens of ms) never entered the EWMA, because
  // every frame alive across it was a retransmit.
  const sim::Duration srtt = network.endpoint(a).srtt(b);
  EXPECT_GT(srtt, 0);
  EXPECT_LT(srtt, sim::milliseconds(2));
}

// ------------------------------- congestion windows on a faulty wire ---

/// Incast with end-to-end windows over a left network whose TCP wire
/// drops, reorders, and jitters. Invariants per seed: every flow delivers
/// in full, no window slot leaks, windows end inside their bounds, and
/// the gateway fair queues drain.
void run_faulty_incast(std::uint64_t seed, const LinkFaults& faults,
                       FaultPlan* scripted) {
  constexpr std::size_t kSenders = 3;
  constexpr std::size_t kMessage = 16 * 1024;
  IncastBed bed = make_incast(kSenders);
  FaultPlan plan(seed);
  plan.set_default_faults(faults);
  FaultPlan* active = scripted != nullptr ? scripted : &plan;
  TcpParams tcp = TcpParams::fast_ethernet();
  tcp.fabric.faults = active;
  bed.config.networks[0].tcp_params = tcp;  // the contended left hop
  mad::CongestionConfig cc;
  cc.enabled = true;
  cc.max_window = 8;
  cc.gateway_queue = 8;
  cc.quantum = 2048;
  bed.config.congestion = cc;
  mad::Session session(bed.config);
  fwd::VirtualChannelDef def;
  def.name = "vc";
  def.hops = {IncastBed::kLeftChannel, IncastBed::kRightChannel};
  def.mtu = 2 * 1024;
  fwd::VirtualChannel vc(session, def);
  for (std::uint32_t sender : bed.senders) {
    session.spawn(sender, "sender" + std::to_string(sender),
                  [&, sender](mad::NodeRuntime&) {
                    auto payload = make_pattern_buffer(
                        kMessage, static_cast<int>(sender) + 1);
                    auto& conn =
                        vc.endpoint(sender).begin_packing(bed.receiver);
                    conn.pack(payload);
                    conn.end_packing();
                  });
  }
  session.spawn(bed.receiver, "receiver", [&](mad::NodeRuntime&) {
    for (std::size_t i = 0; i < kSenders; ++i) {
      auto& conn = vc.endpoint(bed.receiver).begin_unpacking();
      std::vector<std::byte> out(kMessage);
      conn.unpack(out);
      const std::uint32_t src = conn.remote();
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, static_cast<int>(src) + 1))
          << "seed " << seed << ": corrupt message from " << src;
    }
  });
  ASSERT_TRUE(session.run().is_ok()) << "seed " << seed;
  const mad::TrafficStats stats = vc.stats();
  for (std::uint32_t sender : bed.senders) {
    const std::string key = std::to_string(sender) + "->" +
                            std::to_string(bed.receiver);
    ASSERT_TRUE(stats.flows.count(key)) << "seed " << seed;
    EXPECT_EQ(stats.flows.at(key).bytes,
              kMessage + fwd::VirtualChannel::kBlockHeaderBytes)
        << "seed " << seed << " flow " << key;
    const mad::CongestionWindow* window =
        vc.flow_window(sender, bed.receiver);
    ASSERT_NE(window, nullptr) << "seed " << seed;
    EXPECT_EQ(window->in_flight(), 0u)
        << "seed " << seed << ": leaked window slot on " << key;
    EXPECT_GE(window->cwnd(), static_cast<double>(cc.min_window));
    EXPECT_LE(window->cwnd(), static_cast<double>(cc.max_window));
  }
  for (std::size_t depth : vc.gateway_queue_depths()) {
    EXPECT_EQ(depth, 0u) << "seed " << seed;
  }
}

// MAD2_FAULT_SEED narrows the sweep to a single seed for replay.
TEST(CongestionUnderFaults, WindowsRecoverAcrossSeeds) {
  std::uint64_t first = 1;
  std::uint64_t last = 8;
  if (const char* replay = std::getenv("MAD2_FAULT_SEED")) {
    first = last = std::strtoull(replay, nullptr, 10);
  }
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    LinkFaults faults;
    faults.drop_rate = 0.02 + 0.02 * static_cast<double>(seed % 4);
    faults.reorder_rate = 0.05 * static_cast<double>(seed % 3);
    faults.reorder_window = 2;
    faults.jitter_rate = 0.2;
    faults.jitter_max = sim::microseconds(50);
    run_faulty_incast(seed, faults, nullptr);
  }
}

TEST(CongestionUnderFaults, WindowsSurviveAHealedPartition) {
  // Sender 0 loses its link to the gateway (left-net ranks are in
  // NetworkDef node order, so 0 <-> kSenders) for 20ms mid-transfer; the
  // reliable shim rides it out and the flow's window must come back
  // without leaking in-flight slots.
  FaultPlan plan(/*seed=*/31);
  plan.partition(0, 3, sim::milliseconds(2), sim::milliseconds(22));
  run_faulty_incast(/*seed=*/31, LinkFaults{}, &plan);
}

}  // namespace
}  // namespace mad2::net
