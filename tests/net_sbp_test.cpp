// Tests for the SBP driver: kernel buffer pool discipline, blocking
// acquisition, overflow aborts, tag demultiplexing.
#include <gtest/gtest.h>

#include "net/sbp.hpp"
#include "sim/time.hpp"
#include "testbed.hpp"
#include "util/bytes.hpp"

namespace mad2::net {
namespace {

struct SbpBed : Testbed {
  explicit SbpBed(int n, SbpParams params = SbpParams::fast_ethernet())
      : Testbed(n), network(&simulator, node_ptrs(), params) {}
  SbpNetwork network;
};

TEST(Sbp, BufferRoundTripsData) {
  SbpBed bed(2);
  const auto payload = make_pattern_buffer(2000, 1);
  bed.simulator.spawn("sender", [&] {
    SbpTxBuffer buffer = bed.network.port(0).acquire_tx_buffer();
    std::copy(payload.begin(), payload.end(), buffer.memory.begin());
    bed.network.port(0).send(1, 5, buffer, payload.size());
  });
  bed.simulator.spawn("receiver", [&] {
    SbpRxBuffer buffer = bed.network.port(1).recv(5);
    EXPECT_EQ(buffer.src, 0u);
    EXPECT_EQ(buffer.tag, 5u);
    EXPECT_TRUE(verify_pattern(buffer.data, 1));
    bed.network.port(1).release(buffer);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Sbp, TxPoolBlocksWhenExhausted) {
  SbpParams params = SbpParams::fast_ethernet();
  params.tx_pool = 2;
  SbpBed bed(2, params);
  sim::Time third_acquired = -1;
  bed.simulator.spawn("sender", [&] {
    // Hold two buffers; the third acquire must wait until one is sent.
    SbpTxBuffer a = bed.network.port(0).acquire_tx_buffer();
    SbpTxBuffer b = bed.network.port(0).acquire_tx_buffer();
    bed.simulator.post_after(sim::microseconds(100), [&, a]() mutable {
      // Nothing — placeholder to show time passing; the send below at
      // +200us is what frees a buffer.
    });
    bed.simulator.advance(sim::microseconds(200));
    bed.network.port(0).send(1, 0, a, 100);
    bed.simulator.advance(sim::microseconds(50));
    SbpTxBuffer c = bed.network.port(0).acquire_tx_buffer();
    third_acquired = bed.simulator.now();
    bed.network.port(0).send(1, 0, b, 100);
    bed.network.port(0).send(1, 0, c, 100);
  });
  bed.simulator.spawn("receiver", [&] {
    for (int i = 0; i < 3; ++i) {
      SbpRxBuffer buffer = bed.network.port(1).recv(0);
      bed.network.port(1).release(buffer);
    }
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_GE(third_acquired, sim::microseconds(250));
}

TEST(Sbp, TagsAreIndependent) {
  SbpBed bed(2);
  bed.simulator.spawn("sender", [&] {
    for (std::uint32_t tag : {7u, 9u}) {
      SbpTxBuffer buffer = bed.network.port(0).acquire_tx_buffer();
      buffer.memory[0] = static_cast<std::byte>(tag);
      bed.network.port(0).send(1, tag, buffer, 1);
    }
  });
  bed.simulator.spawn("receiver", [&] {
    // Read tag 9 before tag 7.
    SbpRxBuffer nine = bed.network.port(1).recv(9);
    EXPECT_EQ(nine.data[0], std::byte{9});
    bed.network.port(1).release(nine);
    SbpRxBuffer seven = bed.network.port(1).recv(7);
    EXPECT_EQ(seven.data[0], std::byte{7});
    bed.network.port(1).release(seven);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Sbp, RxPoolOverflowAborts) {
  SbpParams params = SbpParams::fast_ethernet();
  params.rx_pool = 4;
  SbpBed bed(2, params);
  bed.simulator.spawn("sender", [&] {
    for (int i = 0; i < 10; ++i) {
      SbpTxBuffer buffer = bed.network.port(0).acquire_tx_buffer();
      bed.network.port(0).send(1, 0, buffer, 64);
    }
  });
  // No receiver draining: the kernel rx pool overflows.
  EXPECT_DEATH({ (void)bed.simulator.run(); }, "overflow");
}

TEST(Sbp, OverfilledTxBufferAborts) {
  SbpBed bed(2);
  bed.simulator.spawn("sender", [&] {
    SbpTxBuffer buffer = bed.network.port(0).acquire_tx_buffer();
    bed.network.port(0).send(1, 0, buffer, buffer.memory.size() + 1);
  });
  EXPECT_DEATH({ (void)bed.simulator.run(); }, "overfilled");
}

TEST(Sbp, LatencyAndBandwidthAreEthernetClass) {
  SbpBed bed(2);
  sim::Time first_arrival = 0;
  sim::Time end = 0;
  const int messages = 50;
  bed.simulator.spawn("sender", [&] {
    for (int i = 0; i < messages; ++i) {
      SbpTxBuffer buffer = bed.network.port(0).acquire_tx_buffer();
      fill_pattern(buffer.memory, i);
      bed.network.port(0).send(1, 0, buffer, buffer.memory.size());
    }
  });
  bed.simulator.spawn("receiver", [&] {
    for (int i = 0; i < messages; ++i) {
      SbpRxBuffer buffer = bed.network.port(1).recv(0);
      if (i == 0) first_arrival = bed.simulator.now();
      EXPECT_TRUE(verify_pattern(buffer.data, i));
      bed.network.port(1).release(buffer);
    }
    end = bed.simulator.now();
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  // Leaner than TCP (kernel fast path), still Ethernet-bound.
  EXPECT_LT(sim::to_us(first_arrival), 450.0);  // ~330 us wire + kernel path
  const double mbs =
      sim::bandwidth_mbs(4096.0 * messages, end - first_arrival);
  EXPECT_GT(mbs, 9.0);
  EXPECT_LT(mbs, 12.5);
}

}  // namespace
}  // namespace mad2::net
