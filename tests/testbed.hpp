// Shared test scaffolding: a simulator plus N paper-calibrated nodes,
// and the stock many-to-one (incast) session topology used by the
// congestion suite and benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/node.hpp"
#include "mad/session.hpp"
#include "sim/simulator.hpp"

namespace mad2 {

struct Testbed {
  explicit Testbed(int node_count,
                   hw::HostParams params = hw::HostParams::pentium_ii_450()) {
    for (int i = 0; i < node_count; ++i) {
      nodes.push_back(std::make_unique<hw::Node>(
          &simulator, i, "node" + std::to_string(i), params));
    }
  }

  std::vector<hw::Node*> node_ptrs() {
    std::vector<hw::Node*> out;
    for (auto& node : nodes) out.push_back(node.get());
    return out;
  }

  sim::Simulator simulator;
  std::vector<std::unique_ptr<hw::Node>> nodes;
};

/// Many-to-one (incast) topology: nodes 0..N-1 are senders on a "left"
/// network, node N is the gateway joining it to a "right" network, and
/// node N+1 is the single receiver. Tests lay a virtual channel over the
/// two channels ({kLeftChannel, kRightChannel}) so all N flows converge
/// on the gateway's forwarding queue — the classic incast choke point.
///
/// Header-only on purpose: building the config touches no out-of-line
/// mad symbols, so the net-only tests that include this file keep
/// linking without the mad library.
struct IncastBed {
  static constexpr const char* kLeftChannel = "incast_left";
  static constexpr const char* kRightChannel = "incast_right";

  mad::SessionConfig config;
  std::vector<std::uint32_t> senders;
  std::uint32_t gateway = 0;
  std::uint32_t receiver = 0;
};

inline IncastBed make_incast(std::size_t sender_count,
                             mad::NetworkKind left = mad::NetworkKind::kTcp,
                             mad::NetworkKind right = mad::NetworkKind::kTcp) {
  IncastBed bed;
  bed.config.node_count = sender_count + 2;
  bed.gateway = static_cast<std::uint32_t>(sender_count);
  bed.receiver = static_cast<std::uint32_t>(sender_count + 1);

  mad::NetworkDef left_net;
  left_net.name = "incast_left_net";
  left_net.kind = left;
  for (std::size_t i = 0; i < sender_count; ++i) {
    bed.senders.push_back(static_cast<std::uint32_t>(i));
    left_net.nodes.push_back(static_cast<std::uint32_t>(i));
  }
  left_net.nodes.push_back(bed.gateway);

  mad::NetworkDef right_net;
  right_net.name = "incast_right_net";
  right_net.kind = right;
  right_net.nodes.push_back(bed.gateway);
  right_net.nodes.push_back(bed.receiver);

  bed.config.networks.push_back(left_net);
  bed.config.networks.push_back(right_net);
  bed.config.channels.push_back(
      mad::ChannelDef{IncastBed::kLeftChannel, left_net.name});
  bed.config.channels.push_back(
      mad::ChannelDef{IncastBed::kRightChannel, right_net.name});
  return bed;
}

}  // namespace mad2
