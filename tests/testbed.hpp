// Shared test scaffolding: a simulator plus N paper-calibrated nodes.
#pragma once

#include <memory>
#include <vector>

#include "hw/node.hpp"
#include "sim/simulator.hpp"

namespace mad2 {

struct Testbed {
  explicit Testbed(int node_count,
                   hw::HostParams params = hw::HostParams::pentium_ii_450()) {
    for (int i = 0; i < node_count; ++i) {
      nodes.push_back(std::make_unique<hw::Node>(
          &simulator, i, "node" + std::to_string(i), params));
    }
  }

  std::vector<hw::Node*> node_ptrs() {
    std::vector<hw::Node*> out;
    for (auto& node : nodes) out.push_back(node.get());
    return out;
  }

  sim::Simulator simulator;
  std::vector<std::unique_ptr<hw::Node>> nodes;
};

}  // namespace mad2
