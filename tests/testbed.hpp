// Shared test scaffolding: a simulator plus N paper-calibrated nodes,
// and the stock many-to-one (incast) session topology used by the
// congestion suite and benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/node.hpp"
#include "mad/session.hpp"
#include "sim/simulator.hpp"

namespace mad2 {

struct Testbed {
  explicit Testbed(int node_count,
                   hw::HostParams params = hw::HostParams::pentium_ii_450()) {
    for (int i = 0; i < node_count; ++i) {
      nodes.push_back(std::make_unique<hw::Node>(
          &simulator, i, "node" + std::to_string(i), params));
    }
  }

  std::vector<hw::Node*> node_ptrs() {
    std::vector<hw::Node*> out;
    for (auto& node : nodes) out.push_back(node.get());
    return out;
  }

  sim::Simulator simulator;
  std::vector<std::unique_ptr<hw::Node>> nodes;
};

/// Many-to-one (incast) topology: nodes 0..N-1 are senders on a "left"
/// network, node N is the gateway joining it to a "right" network, and
/// node N+1 is the single receiver. Tests lay a virtual channel over the
/// two channels ({kLeftChannel, kRightChannel}) so all N flows converge
/// on the gateway's forwarding queue — the classic incast choke point.
///
/// Header-only on purpose: building the config touches no out-of-line
/// mad symbols, so the net-only tests that include this file keep
/// linking without the mad library.
struct IncastBed {
  static constexpr const char* kLeftChannel = "incast_left";
  static constexpr const char* kRightChannel = "incast_right";

  mad::SessionConfig config;
  std::vector<std::uint32_t> senders;
  std::uint32_t gateway = 0;
  std::uint32_t receiver = 0;
};

inline IncastBed make_incast(std::size_t sender_count,
                             mad::NetworkKind left = mad::NetworkKind::kTcp,
                             mad::NetworkKind right = mad::NetworkKind::kTcp) {
  IncastBed bed;
  bed.config.node_count = sender_count + 2;
  bed.gateway = static_cast<std::uint32_t>(sender_count);
  bed.receiver = static_cast<std::uint32_t>(sender_count + 1);

  mad::NetworkDef left_net;
  left_net.name = "incast_left_net";
  left_net.kind = left;
  for (std::size_t i = 0; i < sender_count; ++i) {
    bed.senders.push_back(static_cast<std::uint32_t>(i));
    left_net.nodes.push_back(static_cast<std::uint32_t>(i));
  }
  left_net.nodes.push_back(bed.gateway);

  mad::NetworkDef right_net;
  right_net.name = "incast_right_net";
  right_net.kind = right;
  right_net.nodes.push_back(bed.gateway);
  right_net.nodes.push_back(bed.receiver);

  bed.config.networks.push_back(left_net);
  bed.config.networks.push_back(right_net);
  bed.config.channels.push_back(
      mad::ChannelDef{IncastBed::kLeftChannel, left_net.name});
  bed.config.channels.push_back(
      mad::ChannelDef{IncastBed::kRightChannel, right_net.name});
  return bed;
}

// ---------------------------------------------------- scale topologies ---
//
// Multi-gateway cluster topologies for the resilient-routing scale tier
// (docs/ROUTING.md). Both builders only assemble SessionConfig /
// VirtualChannelDef data — header-only, like the incast bed above — and
// number nodes cluster-major: cluster c occupies a contiguous id block
// with its leaves first and its gateways after them.

/// Fat tree of sub-clusters: every cluster is one network (leaves +
/// that cluster's gateways) and all gateways share a core network.
/// A route between two clusters is the 3-hop chain
///   cluster_net(from) -> core_net -> cluster_net(to)
/// whose boundaries are the *gateway sets* of the two clusters — the
/// redundancy the resilient router spreads across and fails over within.
struct FatTreeBed {
  mad::SessionConfig config;
  std::size_t clusters = 0;
  std::size_t leaves_per_cluster = 0;
  std::size_t gateways_per_cluster = 0;

  [[nodiscard]] std::uint32_t leaf(std::size_t cluster,
                                   std::size_t i) const {
    return static_cast<std::uint32_t>(
        cluster * (leaves_per_cluster + gateways_per_cluster) + i);
  }
  [[nodiscard]] std::uint32_t gateway(std::size_t cluster,
                                      std::size_t g) const {
    return static_cast<std::uint32_t>(
        cluster * (leaves_per_cluster + gateways_per_cluster) +
        leaves_per_cluster + g);
  }
  [[nodiscard]] static std::string cluster_channel(std::size_t cluster) {
    return "ft_c" + std::to_string(cluster);
  }
  static constexpr const char* kCoreChannel = "ft_core";

  /// Hop chain for traffic between two distinct clusters.
  [[nodiscard]] std::vector<std::string> route(std::size_t from,
                                               std::size_t to) const {
    return {cluster_channel(from), kCoreChannel, cluster_channel(to)};
  }
};

inline FatTreeBed make_fat_tree(
    std::size_t clusters, std::size_t leaves_per_cluster,
    std::size_t gateways_per_cluster,
    mad::NetworkKind kind = mad::NetworkKind::kTcp) {
  FatTreeBed bed;
  bed.clusters = clusters;
  bed.leaves_per_cluster = leaves_per_cluster;
  bed.gateways_per_cluster = gateways_per_cluster;
  bed.config.node_count =
      clusters * (leaves_per_cluster + gateways_per_cluster);

  mad::NetworkDef core;
  core.name = "ft_core_net";
  core.kind = kind;
  for (std::size_t c = 0; c < clusters; ++c) {
    mad::NetworkDef net;
    net.name = "ft_c" + std::to_string(c) + "_net";
    net.kind = kind;
    for (std::size_t i = 0; i < leaves_per_cluster; ++i) {
      net.nodes.push_back(bed.leaf(c, i));
    }
    for (std::size_t g = 0; g < gateways_per_cluster; ++g) {
      net.nodes.push_back(bed.gateway(c, g));
      core.nodes.push_back(bed.gateway(c, g));
    }
    bed.config.networks.push_back(net);
    bed.config.channels.push_back(
        mad::ChannelDef{FatTreeBed::cluster_channel(c), net.name});
  }
  bed.config.networks.push_back(core);
  bed.config.channels.push_back(
      mad::ChannelDef{FatTreeBed::kCoreChannel, core.name});
  return bed;
}

/// Ring ("torus" of sub-clusters, one dimension): cluster c's network
/// holds its leaves, its own east gateway set, and the east gateways of
/// cluster c-1 (its west side). Consecutive cluster networks therefore
/// overlap in exactly one gateway set, so a route is simply the chain of
/// cluster channels along the shorter arc. Needs >= 3 clusters (with 2,
/// the east and west sets would both join the same two networks).
struct TorusBed {
  mad::SessionConfig config;
  std::size_t clusters = 0;
  std::size_t leaves_per_cluster = 0;
  std::size_t gateways_per_side = 0;

  [[nodiscard]] std::uint32_t leaf(std::size_t cluster,
                                   std::size_t i) const {
    return static_cast<std::uint32_t>(
        cluster * (leaves_per_cluster + gateways_per_side) + i);
  }
  /// Gateway g of cluster `cluster`'s east side (shared with the network
  /// of cluster (cluster + 1) % clusters).
  [[nodiscard]] std::uint32_t east_gateway(std::size_t cluster,
                                           std::size_t g) const {
    return static_cast<std::uint32_t>(
        cluster * (leaves_per_cluster + gateways_per_side) +
        leaves_per_cluster + g);
  }
  [[nodiscard]] static std::string cluster_channel(std::size_t cluster) {
    return "torus_c" + std::to_string(cluster);
  }

  /// Hop chain along the shorter arc (east on ties).
  [[nodiscard]] std::vector<std::string> route(std::size_t from,
                                               std::size_t to) const {
    const std::size_t east = (to + clusters - from) % clusters;
    const std::size_t west = (from + clusters - to) % clusters;
    std::vector<std::string> hops;
    std::size_t c = from;
    hops.push_back(cluster_channel(c));
    const bool go_east = east <= west;
    while (c != to) {
      c = go_east ? (c + 1) % clusters : (c + clusters - 1) % clusters;
      hops.push_back(cluster_channel(c));
    }
    return hops;
  }
};

inline TorusBed make_torus(std::size_t clusters,
                           std::size_t leaves_per_cluster,
                           std::size_t gateways_per_side,
                           mad::NetworkKind kind = mad::NetworkKind::kTcp) {
  TorusBed bed;
  bed.clusters = clusters;
  bed.leaves_per_cluster = leaves_per_cluster;
  bed.gateways_per_side = gateways_per_side;
  bed.config.node_count =
      clusters * (leaves_per_cluster + gateways_per_side);
  for (std::size_t c = 0; c < clusters; ++c) {
    mad::NetworkDef net;
    net.name = "torus_c" + std::to_string(c) + "_net";
    net.kind = kind;
    for (std::size_t i = 0; i < leaves_per_cluster; ++i) {
      net.nodes.push_back(bed.leaf(c, i));
    }
    const std::size_t west_of = (c + clusters - 1) % clusters;
    for (std::size_t g = 0; g < gateways_per_side; ++g) {
      net.nodes.push_back(bed.east_gateway(west_of, g));
    }
    for (std::size_t g = 0; g < gateways_per_side; ++g) {
      net.nodes.push_back(bed.east_gateway(c, g));
    }
    bed.config.networks.push_back(net);
    bed.config.channels.push_back(
        mad::ChannelDef{TorusBed::cluster_channel(c), net.name});
  }
  return bed;
}

/// Deterministic mid-transfer gateway deaths for tests and benches.
/// Templated on the virtual-channel type so net-only tests including
/// this header never even parse the fwd headers.
struct GatewayKiller {
  /// Kill after the channel's gateways have received `count` more
  /// packets — a point in the packet stream, stable across schedules.
  template <typename VirtualChannel>
  static void at_packet_count(VirtualChannel& vc, std::uint32_t gateway,
                              std::uint64_t count) {
    vc.arm_gateway_kill(gateway, count);
  }

  /// Kill at simulated time `when` (a daemon fiber sleeps and strikes;
  /// daemons never hold session.run() open).
  template <typename VirtualChannel>
  static void at_time(mad::Session& session, VirtualChannel& vc,
                      std::uint32_t gateway, sim::Time when) {
    session.simulator().spawn_daemon(
        "gateway_killer", [&session, &vc, gateway, when] {
          sim::Simulator& simulator = session.simulator();
          if (simulator.now() < when) {
            simulator.advance(when - simulator.now());
          }
          vc.kill_gateway(gateway);
        });
  }
};

}  // namespace mad2
