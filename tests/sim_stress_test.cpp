// Stress and determinism tests for the simulation substrate: the whole
// reproduction depends on the simulator staying exact under load.
#include <gtest/gtest.h>

#include "hw/resource.hpp"
#include "mad/madeleine.hpp"
#include "sim/explore.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mad2 {
namespace {

TEST(SimStress, AThousandFibersInterleave) {
  sim::Simulator simulator;
  std::uint64_t sum = 0;
  for (int i = 0; i < 1000; ++i) {
    simulator.spawn("f" + std::to_string(i), [&, i] {
      for (int k = 0; k < 10; ++k) {
        simulator.advance(sim::microseconds((i % 7) + 1));
        sum += 1;
      }
    });
  }
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(sum, 10000u);
}

TEST(SimStress, ProducerConsumerChains) {
  // fibers in a chain pass a token through bounded channels.
  sim::Simulator simulator;
  constexpr int kStages = 50;
  std::vector<std::unique_ptr<sim::BoundedChannel<int>>> links;
  for (int i = 0; i <= kStages; ++i) {
    links.push_back(
        std::make_unique<sim::BoundedChannel<int>>(&simulator, 2));
  }
  for (int stage = 0; stage < kStages; ++stage) {
    simulator.spawn("stage" + std::to_string(stage), [&, stage] {
      for (;;) {
        auto value = links[stage]->receive();
        if (!value.has_value()) {
          links[stage + 1]->close();
          return;
        }
        simulator.advance(sim::microseconds(1));
        links[stage + 1]->send(*value + 1);
      }
    });
  }
  std::vector<int> results;
  simulator.spawn("source", [&] {
    for (int i = 0; i < 20; ++i) links[0]->send(i);
    links[0]->close();
  });
  simulator.spawn("sink", [&] {
    while (auto v = links[kStages]->receive()) results.push_back(*v);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  ASSERT_EQ(results.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(results[i], i + kStages);
}

TEST(SimStress, ContendedResourceConservesWork) {
  sim::Simulator simulator;
  hw::ChunkedResource::Params params;
  params.chunk_bytes = 1024;
  params.strict_priority = true;
  params.turnaround_factor = 0.2;
  hw::ChunkedResource bus(&simulator, params);
  const int fibers = 20;
  const std::uint64_t bytes_each = 64 * 1024;
  for (int i = 0; i < fibers; ++i) {
    simulator.spawn("t" + std::to_string(i), [&, i] {
      bus.transfer(bytes_each, 100.0,
                   i % 2 == 0 ? hw::TxClass::kDma : hw::TxClass::kPio,
                   static_cast<std::uint64_t>(i));
    });
  }
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(bus.bytes_transferred(), bytes_each * fibers);
  // Lower bound: pure transfer time; upper: everything paid turnaround.
  const double pure_us = bytes_each * fibers / 100.0;  // at 100 MB/s
  EXPECT_GE(sim::to_us(bus.busy_time()), pure_us);
  EXPECT_LE(sim::to_us(bus.busy_time()), pure_us * 1.25);
}

double run_random_session(std::uint64_t seed) {
  // A randomized multi-network session; returns the final virtual time.
  Rng rng(seed);
  mad::SessionConfig config;
  config.node_count = 3;
  mad::NetworkDef net;
  net.name = "n";
  net.kind = static_cast<mad::NetworkKind>(rng.next_below(5));
  net.nodes = {0, 1, 2};
  config.networks.push_back(net);
  config.channels.push_back(mad::ChannelDef{"ch", "n"});
  mad::Session session(std::move(config));
  session.spawn(0, "tx", [&](mad::NodeRuntime& rt) {
    Rng inner(seed + 1);
    for (int i = 0; i < 10; ++i) {
      const std::size_t size = inner.next_range(1, 40000);
      auto payload = make_pattern_buffer(size, i);
      auto& conn = rt.channel("ch").begin_packing(1 + (i % 2));
      mad::mad_pack_value(conn, size, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  for (std::uint32_t receiver : {1u, 2u}) {
    session.spawn(receiver, "rx" + std::to_string(receiver),
                  [&](mad::NodeRuntime& rt) {
      for (int i = 0; i < 5; ++i) {
        auto& conn = rt.channel("ch").begin_unpacking();
        std::size_t size = 0;
        mad::mad_unpack_value(conn, size, mad::send_CHEAPER,
                              mad::receive_EXPRESS);
        std::vector<std::byte> out(size);
        conn.unpack(out);
        conn.end_unpacking();
      }
    });
  }
  EXPECT_TRUE(session.run().is_ok());
  return sim::to_us(session.simulator().now());
}

TEST(SimStress, SessionsAreBitForBitDeterministic) {
  // The whole evaluation methodology rests on this: identical runs give
  // identical virtual times.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const double first = run_random_session(seed);
    const double second = run_random_session(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_GT(first, 0.0);
  }
}

struct FaultySessionResult {
  double final_us = 0.0;
  std::uint64_t payload_hash = 0;
  net::FaultCounters faults;
  net::ReliabilityCounters reliability;
};

FaultySessionResult run_faulty_tcp_session(std::uint64_t seed) {
  // Same shape as run_random_session, but over a lossy TCP fabric: the
  // retransmit/ack machinery adds hundreds of extra events whose relative
  // order must still replay exactly.
  FaultySessionResult result;
  net::FaultPlan plan(seed);
  net::LinkFaults faults;
  faults.drop_rate = 0.04;
  faults.dup_rate = 0.01;
  faults.reorder_rate = 0.15;
  faults.reorder_window = 3;
  faults.corrupt_rate = 0.01;
  plan.set_default_faults(faults);
  net::TcpParams tcp = net::TcpParams::fast_ethernet();
  tcp.fabric.faults = &plan;

  mad::SessionConfig config;
  config.node_count = 3;
  mad::NetworkDef net_def;
  net_def.name = "n";
  net_def.kind = mad::NetworkKind::kTcp;
  net_def.nodes = {0, 1, 2};
  net_def.tcp_params = tcp;
  config.networks.push_back(net_def);
  config.channels.push_back(mad::ChannelDef{"ch", "n"});
  mad::Session session(std::move(config));
  session.spawn(0, "tx", [&](mad::NodeRuntime& rt) {
    Rng inner(seed + 1);
    for (int i = 0; i < 10; ++i) {
      const std::size_t size = inner.next_range(1, 40000);
      auto payload = make_pattern_buffer(size, i);
      auto& conn = rt.channel("ch").begin_packing(1 + (i % 2));
      mad::mad_pack_value(conn, size, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  for (std::uint32_t receiver : {1u, 2u}) {
    session.spawn(receiver, "rx" + std::to_string(receiver),
                  [&, receiver](mad::NodeRuntime& rt) {
      for (int i = 0; i < 5; ++i) {
        auto& conn = rt.channel("ch").begin_unpacking();
        std::size_t size = 0;
        mad::mad_unpack_value(conn, size, mad::send_CHEAPER,
                              mad::receive_EXPRESS);
        std::vector<std::byte> out(size);
        conn.unpack(out);
        conn.end_unpacking();
        EXPECT_TRUE(verify_pattern(out, 2 * i + (receiver - 1)))
            << "receiver " << receiver << " message " << i;
        result.payload_hash ^= fnv1a(out) * (receiver + 7 * i);
      }
    });
  }
  EXPECT_TRUE(session.run().is_ok());
  result.final_us = sim::to_us(session.simulator().now());
  result.faults = plan.counters();
  result.reliability =
      session.endpoint("ch", 0).stats().reliability;
  return result;
}

TEST(SimStress, FaultyTcpSessionsAreBitForBitDeterministic) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const FaultySessionResult first = run_faulty_tcp_session(seed);
    const FaultySessionResult second = run_faulty_tcp_session(seed);
    EXPECT_EQ(first.final_us, second.final_us) << "seed " << seed;
    EXPECT_EQ(first.payload_hash, second.payload_hash) << "seed " << seed;
    EXPECT_EQ(first.faults.shipped, second.faults.shipped);
    EXPECT_EQ(first.faults.dropped, second.faults.dropped);
    EXPECT_EQ(first.faults.delivered, second.faults.delivered);
    EXPECT_EQ(first.reliability.retransmits, second.reliability.retransmits);
    // And the faults really fired: the clean payloads above came through
    // the ARQ machinery, not a silently-lossless wire.
    EXPECT_GT(first.faults.dropped, 0u) << "seed " << seed;
    EXPECT_GT(first.reliability.data_frames, 0u) << "seed " << seed;
  }
}

// ------------------------------------------------------------ madcheck ---

// A miniature producer-consumer chain as an explorable body: three stages
// pass tokens through bounded channels, with every handoff a potential
// tie. The conservation invariant (every token arrives, incremented once
// per stage, in order) must hold under any schedule.
Status chain_body() {
  sim::Simulator simulator;
  constexpr int kStages = 3;
  constexpr int kTokens = 8;
  std::vector<std::unique_ptr<sim::BoundedChannel<int>>> links;
  for (int i = 0; i <= kStages; ++i) {
    links.push_back(std::make_unique<sim::BoundedChannel<int>>(&simulator, 1));
  }
  for (int stage = 0; stage < kStages; ++stage) {
    simulator.spawn("stage" + std::to_string(stage), [&, stage] {
      for (;;) {
        auto value = links[stage]->receive();
        if (!value.has_value()) {
          links[stage + 1]->close();
          return;
        }
        links[stage + 1]->send(*value + 1);
      }
    });
  }
  std::vector<int> results;
  simulator.spawn("source", [&] {
    for (int i = 0; i < kTokens; ++i) links[0]->send(i);
    links[0]->close();
  });
  simulator.spawn("sink", [&] {
    while (auto v = links[kStages]->receive()) results.push_back(*v);
  });
  const Status run = simulator.run();
  if (!run.is_ok()) return run;
  if (results.size() != kTokens) {
    return internal_error("lost tokens: got " +
                          std::to_string(results.size()));
  }
  for (int i = 0; i < kTokens; ++i) {
    if (results[i] != i + kStages) {
      return internal_error("token " + std::to_string(i) +
                            " out of order or mangled");
    }
  }
  return Status::ok();
}

TEST(SimStressExplore, ProducerConsumerChainHoldsAcross200Schedules) {
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(chain_body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(SimStressExplore, ScheduleReplayIsBitForBitDeterministic) {
  // The replay side of the determinism story: pinning the decision trace
  // pins the run. Two replays of the same non-trivial trace must take an
  // identical decision stream (same ties, same widths, same picks).
  const sim::ScheduleTrace trace{1, 0, 2, 1};
  const sim::ReplayOutcome first = sim::run_with_schedule(chain_body, trace);
  const sim::ReplayOutcome second = sim::run_with_schedule(chain_body, trace);
  EXPECT_TRUE(first.status.is_ok()) << first.status.to_string();
  EXPECT_TRUE(second.status.is_ok());
  EXPECT_EQ(first.taken, second.taken);
  EXPECT_FALSE(first.taken.empty());  // the chain really had ties to decide
  // A different trace yields a different (but equally deterministic) run.
  const sim::ReplayOutcome fifo = sim::run_with_schedule(chain_body, {});
  EXPECT_TRUE(fifo.status.is_ok());
  EXPECT_NE(fifo.taken, first.taken);
}

}  // namespace
}  // namespace mad2
