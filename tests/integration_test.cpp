// Integration tests: whole-system scenarios combining multiple networks,
// channels, layers (mad + MPI + Nexus + forwarding) and traffic patterns
// in single sessions — the "one application, several networks" promise of
// paper Section 2.1 exercised end to end.
#include <gtest/gtest.h>

#include "fwd/virtual_channel.hpp"
#include "mpi/ch_mad.hpp"
#include "nexus/nexus.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mad2 {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::NodeRuntime;
using mad::Session;
using mad::SessionConfig;

TEST(Integration, ThreeNetworksOneApplication) {
  // Every node has SCI + Myrinet + Ethernet; the app moves data over all
  // three and cross-checks.
  SessionConfig config;
  config.node_count = 2;
  for (auto [name, kind] :
       {std::pair{"sci0", NetworkKind::kSisci},
        std::pair{"myri0", NetworkKind::kBip},
        std::pair{"eth0", NetworkKind::kTcp}}) {
    NetworkDef net;
    net.name = name;
    net.kind = kind;
    net.nodes = {0, 1};
    config.networks.push_back(net);
  }
  config.channels = {ChannelDef{"sci", "sci0"}, ChannelDef{"myri", "myri0"},
                     ChannelDef{"eth", "eth0"}};
  Session session(std::move(config));

  // Sizes chosen so no send blocks on its receiver (the Myrinet long path
  // is a blocking rendezvous, so it carries a short message here), letting
  // the receiver drain channels in reverse order.
  const std::vector<std::string> channels{"sci", "myri", "eth"};
  const std::vector<std::size_t> sizes{20000, 500, 20000};
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    for (std::size_t c = 0; c < channels.size(); ++c) {
      auto payload = make_pattern_buffer(sizes[c], c);
      auto& conn = rt.channel(channels[c]).begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    // Drain in reverse channel order: channels are independent worlds.
    for (std::size_t c = channels.size(); c-- > 0;) {
      auto& conn = rt.channel(channels[c]).begin_unpacking();
      std::vector<std::byte> out(sizes[c]);
      conn.unpack(out);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, c)) << channels[c];
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(Integration, TwoChannelsOnOneAdapterSplitModules) {
  // Paper Section 2.1: several channels on the same interface/adapter
  // "logically split communication from two different modules". Two
  // modules ping concurrently on separate channels of one SCI network.
  SessionConfig config;
  config.node_count = 2;
  NetworkDef net;
  net.name = "sci0";
  net.kind = NetworkKind::kSisci;
  net.nodes = {0, 1};
  config.networks.push_back(net);
  config.channels = {ChannelDef{"module_a", "sci0"},
                     ChannelDef{"module_b", "sci0"}};
  Session session(std::move(config));

  for (const char* module : {"module_a", "module_b"}) {
    const std::uint64_t seed = module[7];  // distinct per module
    session.spawn(0, std::string(module) + ".client",
                  [&, module, seed](NodeRuntime& rt) {
      for (int i = 0; i < 20; ++i) {
        auto payload = make_pattern_buffer(2000, seed + i);
        auto& out = rt.channel(module).begin_packing(1);
        out.pack(payload);
        out.end_packing();
        auto& in = rt.channel(module).begin_unpacking();
        std::vector<std::byte> echoed(2000);
        in.unpack(echoed);
        in.end_unpacking();
        EXPECT_TRUE(verify_pattern(echoed, seed + i));
      }
    });
    session.spawn(1, std::string(module) + ".server",
                  [&, module](NodeRuntime& rt) {
      for (int i = 0; i < 20; ++i) {
        auto& in = rt.channel(module).begin_unpacking();
        std::vector<std::byte> data(2000);
        in.unpack(data);
        in.end_unpacking();
        auto& out = rt.channel(module).begin_packing(0);
        out.pack(data);
        out.end_packing();
      }
    });
  }
  ASSERT_TRUE(session.run().is_ok());
}

TEST(Integration, MpiAndNexusShareASession) {
  // The MPI world and the Nexus world run over separate channels of the
  // same network, concurrently, on the same nodes.
  SessionConfig config;
  config.node_count = 2;
  NetworkDef net;
  net.name = "myri0";
  net.kind = NetworkKind::kBip;
  net.nodes = {0, 1};
  config.networks.push_back(net);
  config.channels = {ChannelDef{"mpi", "myri0"}, ChannelDef{"nexus", "myri0"}};
  Session session(std::move(config));

  mpi::ChMadWorld mpi_world(session, "mpi");
  nexus::NexusWorld nexus_world(session, "nexus");

  int rsr_count = 0;
  nexus_world.context(1).register_handler(
      1, [&](std::uint32_t, nexus::ReadBuffer& buffer) {
        EXPECT_EQ(buffer.get<std::uint32_t>(), 0xabcdu);
        ++rsr_count;
      });

  session.spawn(0, "r0", [&](NodeRuntime&) {
    for (int i = 0; i < 5; ++i) {
      nexus::WriteBuffer rsr;
      rsr.put<std::uint32_t>(0xabcd);
      nexus_world.context(0).rsr(1, 1, rsr);
      auto payload = make_pattern_buffer(10000, i);
      mpi_world.comm(0).send(payload, 1, i);
    }
  });
  session.spawn(1, "r1", [&](NodeRuntime& rt) {
    for (int i = 0; i < 5; ++i) {
      std::vector<std::byte> out(10000);
      mpi_world.comm(1).recv(out, 0, i);
      EXPECT_TRUE(verify_pattern(out, i));
    }
    // Let the Nexus dispatcher drain before stopping.
    rt.simulator().advance(sim::milliseconds(5));
    rt.simulator().stop();
  });
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_EQ(rsr_count, 5);
}

TEST(Integration, MultipleAdaptersShareTheHostBus) {
  // Paper Section 2.1: a session can manage multiple network adapters for
  // each network. Two Myrinet adapters (two network instances of the same
  // kind) carry independent channels concurrently and correctly — but a
  // single LANai already saturates the node's 33 MHz PCI bus, so the
  // aggregate stays bus-bound rather than doubling (the era's real
  // constraint, and the reason the paper's gateways are bus-limited too).
  auto run = [](int adapters) {
    SessionConfig config;
    config.node_count = 2;
    for (int a = 0; a < adapters; ++a) {
      NetworkDef net;
      net.name = "myri" + std::to_string(a);
      net.kind = NetworkKind::kBip;
      net.nodes = {0, 1};
      config.networks.push_back(net);
    }
    for (int a = 0; a < adapters; ++a) {
      config.channels.push_back(ChannelDef{"ch" + std::to_string(a),
                                           "myri" + std::to_string(a)});
    }
    Session session(std::move(config));
    const std::size_t message = 512 * 1024;
    const int iterations = 4;
    sim::Time end = 0;
    int done = 0;
    for (int a = 0; a < adapters; ++a) {
      const std::string ch = "ch" + std::to_string(a);
      session.spawn(0, "tx" + ch, [&, ch](NodeRuntime& rt) {
        std::vector<std::byte> payload(message, std::byte{1});
        for (int i = 0; i < iterations; ++i) {
          auto& conn = rt.channel(ch).begin_packing(1);
          conn.pack(payload);
          conn.end_packing();
        }
      });
      session.spawn(1, "rx" + ch, [&, ch](NodeRuntime& rt) {
        std::vector<std::byte> out(message);
        for (int i = 0; i < iterations; ++i) {
          auto& conn = rt.channel(ch).begin_unpacking();
          conn.unpack(out);
          conn.end_unpacking();
        }
        if (++done == adapters) end = rt.simulator().now();
      });
    }
    EXPECT_TRUE(session.run().is_ok());
    return static_cast<double>(message) * iterations * adapters /
           (sim::to_seconds(end) * 1e6);
  };
  const double one = run(1);
  const double two = run(2);
  // Both adapters progressed (aggregate within the bus envelope, not
  // halved by cross-adapter interference), and the bus cap holds.
  EXPECT_GT(two, one * 0.85);
  EXPECT_LT(two, one * 1.25);
}

TEST(Integration, ManyToOneFanInKeepsPerSourceOrder) {
  const int senders = 5;
  const int messages = 10;
  SessionConfig config;
  config.node_count = senders + 1;
  NetworkDef net;
  net.name = "myri0";
  net.kind = NetworkKind::kBip;
  for (std::uint32_t i = 0; i <= senders; ++i) net.nodes.push_back(i);
  config.networks.push_back(net);
  config.channels.push_back(ChannelDef{"ch", "myri0"});
  Session session(std::move(config));

  for (std::uint32_t s = 1; s <= senders; ++s) {
    session.spawn(s, "sender" + std::to_string(s),
                  [&, s](NodeRuntime& rt) {
      for (int m = 0; m < messages; ++m) {
        auto& conn = rt.channel("ch").begin_packing(0);
        const std::uint32_t header[2] = {s, static_cast<std::uint32_t>(m)};
        conn.pack(std::as_bytes(std::span(header)));
        conn.end_packing();
      }
    });
  }
  session.spawn(0, "sink", [&](NodeRuntime& rt) {
    std::map<std::uint32_t, int> next;
    for (int total = 0; total < senders * messages; ++total) {
      auto& conn = rt.channel("ch").begin_unpacking();
      std::uint32_t header[2];
      conn.unpack(std::as_writable_bytes(std::span(header)));
      conn.end_unpacking();
      EXPECT_EQ(header[0], conn.remote());
      EXPECT_EQ(header[1], static_cast<std::uint32_t>(next[header[0]]++));
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(Integration, MpiOverTheForwardedTopologyCoexists) {
  // MPI runs inside the SCI cluster while the virtual channel forwards
  // traffic to the Myrinet cluster through the shared gateway.
  SessionConfig config;
  config.node_count = 4;  // 0,1 = SCI; 1 = gateway; 1,2,3 = Myrinet
  NetworkDef sci;
  sci.name = "sci0";
  sci.kind = NetworkKind::kSisci;
  sci.nodes = {0, 1};
  NetworkDef myri;
  myri.name = "myri0";
  myri.kind = NetworkKind::kBip;
  myri.nodes = {1, 2, 3};
  config.networks = {sci, myri};
  config.channels = {ChannelDef{"hop_sci", "sci0"},
                     ChannelDef{"hop_myri", "myri0"},
                     ChannelDef{"local_sci", "sci0"}};
  Session session(std::move(config));

  fwd::VirtualChannelDef vdef;
  vdef.name = "vc";
  vdef.hops = {"hop_sci", "hop_myri"};
  vdef.mtu = 8 * 1024;
  fwd::VirtualChannel vc(session, vdef);

  // Inter-cluster transfer 0 -> 3 across the gateway.
  session.spawn(0, "intercluster", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(100000, 9);
    auto& conn = vc.endpoint(0).begin_packing(3);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(3, "far_receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(3).begin_unpacking();
    std::vector<std::byte> out(100000);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 9));
  });
  // Meanwhile a local SCI exchange on a separate channel.
  session.spawn(0, "local_tx", [&](NodeRuntime& rt) {
    auto payload = make_pattern_buffer(5000, 3);
    auto& conn = rt.channel("local_sci").begin_packing(1);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(1, "local_rx", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("local_sci").begin_unpacking();
    std::vector<std::byte> out(5000);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 3));
  });
  ASSERT_TRUE(session.run().is_ok());
}

// Randomized whole-topology property test: random messages between random
// pairs on random channels, receiver-side verification everywhere.
struct TopologyFuzzParam {
  std::uint64_t seed;
};

class TopologyFuzz : public testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyFuzz,
                         testing::Values(11, 22, 33, 44),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(TopologyFuzz, RandomPairwiseTrafficIsIntact) {
  Rng rng(GetParam());
  SessionConfig config;
  config.node_count = 4;
  NetworkDef net;
  net.name = "net0";
  net.kind = static_cast<NetworkKind>(rng.next_below(4));
  net.nodes = {0, 1, 2, 3};
  config.networks.push_back(net);
  config.channels.push_back(ChannelDef{"ch", "net0"});
  Session session(std::move(config));

  // Plan: per ordered pair (s, d), a queue of message sizes. Each sender
  // sends its plans in order; each receiver verifies per-source order.
  std::map<std::pair<int, int>, std::vector<std::size_t>> plan;
  int total_to[4] = {};
  for (int i = 0; i < 40; ++i) {
    const int s = static_cast<int>(rng.next_below(4));
    int d = static_cast<int>(rng.next_below(4));
    if (d == s) d = (d + 1) % 4;
    plan[{s, d}].push_back(rng.next_range(1, 30000));
    ++total_to[d];
  }

  for (int me = 0; me < 4; ++me) {
    // Separate sending and receiving fibers per node: large sends may
    // block in a rendezvous until the destination reaches its unpack, so
    // each node must keep receiving while it sends.
    session.spawn(me, "tx" + std::to_string(me), [&, me](NodeRuntime& rt) {
      std::uint64_t pattern = 1000 * me;
      for (int d = 0; d < 4; ++d) {
        auto it = plan.find({me, d});
        if (it == plan.end()) continue;
        for (std::size_t size : it->second) {
          auto payload = make_pattern_buffer(size, ++pattern);
          auto& conn = rt.channel("ch").begin_packing(d);
          mad_pack_value(conn, size, mad::send_CHEAPER,
                         mad::receive_EXPRESS);
          mad_pack_value(conn, pattern, mad::send_CHEAPER,
                         mad::receive_EXPRESS);
          conn.pack(payload);
          conn.end_packing();
        }
      }
    });
    session.spawn(me, "rx" + std::to_string(me), [&, me](NodeRuntime& rt) {
      for (int m = 0; m < total_to[me]; ++m) {
        auto& conn = rt.channel("ch").begin_unpacking();
        std::size_t size = 0;
        std::uint64_t pattern_in = 0;
        mad_unpack_value(conn, size, mad::send_CHEAPER,
                         mad::receive_EXPRESS);
        mad_unpack_value(conn, pattern_in, mad::send_CHEAPER,
                         mad::receive_EXPRESS);
        std::vector<std::byte> data(size);
        conn.unpack(data);
        conn.end_unpacking();
        EXPECT_TRUE(verify_pattern(data, pattern_in));
      }
    });
  }
  ASSERT_TRUE(session.run().is_ok());
}

}  // namespace
}  // namespace mad2
