// White-box protocol tests per PMM: TM selection boundaries, credit-window
// behaviour under streaming, and channel-option overrides — verified
// through the per-TM traffic statistics.
#include <gtest/gtest.h>

#include "mad/madeleine.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {
namespace {

SessionConfig one_net(NetworkKind kind,
                      std::optional<SciPmmOptions> sci = {}) {
  SessionConfig config;
  config.node_count = 2;
  NetworkDef net;
  net.name = "n";
  net.kind = kind;
  net.nodes = {0, 1};
  config.networks.push_back(net);
  ChannelDef channel{"ch", "n"};
  channel.sci_options = sci;
  config.channels.push_back(channel);
  return config;
}

/// Send one block of each size and return the sender's per-TM stats.
TrafficStats run_blocks(SessionConfig config,
                        const std::vector<std::size_t>& sizes) {
  Session session(std::move(config));
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto payload = make_pattern_buffer(size, size);
      auto& conn = rt.channel("ch").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto& conn = rt.channel("ch").begin_unpacking();
      std::vector<std::byte> out(size);
      conn.unpack(out);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, size));
    }
  });
  EXPECT_TRUE(session.run().is_ok());
  return session.endpoint("ch", 0).stats();
}

TEST(PmmProtocol, BipSplitsAtOneKilobyte) {
  const auto stats = run_blocks(one_net(NetworkKind::kBip),
                                {1, 1024, 1025, 65536});
  EXPECT_EQ(stats.sent_by_tm.at("bip-short").blocks, 2u);  // 1, 1024
  EXPECT_EQ(stats.sent_by_tm.at("bip-long").blocks, 2u);   // 1025, 65536
}

TEST(PmmProtocol, SisciHasThreeRegimes) {
  const auto stats = run_blocks(one_net(NetworkKind::kSisci),
                                {4, 256, 257, 8192, 100000});
  EXPECT_EQ(stats.sent_by_tm.at("sci-short").blocks, 2u);  // <= 256
  EXPECT_EQ(stats.sent_by_tm.at("sci-pio").blocks, 3u);    // the rest
  EXPECT_EQ(stats.sent_by_tm.count("sci-dma"), 0u);  // shipped disabled
}

TEST(PmmProtocol, SisciDmaEngagesOnlyWhenEnabled) {
  SciPmmOptions options;
  options.enable_dma = true;
  options.dma_min_bytes = 32768;
  const auto stats = run_blocks(one_net(NetworkKind::kSisci, options),
                                {4, 8192, 32768, 100000});
  EXPECT_EQ(stats.sent_by_tm.at("sci-dma").blocks, 2u);  // >= 32 kB
  EXPECT_EQ(stats.sent_by_tm.at("sci-pio").blocks, 1u);  // 8 kB
  EXPECT_EQ(stats.sent_by_tm.at("sci-short").blocks, 1u);
}

TEST(PmmProtocol, ViaSplitsAtThePacketPayload) {
  const auto stats = run_blocks(one_net(NetworkKind::kVia),
                                {4088, 4089, 100});
  EXPECT_EQ(stats.sent_by_tm.at("via-short").blocks, 2u);
  EXPECT_EQ(stats.sent_by_tm.at("via-bulk").blocks, 1u);
}

TEST(PmmProtocol, TcpAndSbpAreSingleTm) {
  const auto tcp = run_blocks(one_net(NetworkKind::kTcp), {4, 100000});
  EXPECT_EQ(tcp.sent_by_tm.size(), 1u);
  EXPECT_EQ(tcp.sent_by_tm.begin()->first, "tcp");
  const auto sbp = run_blocks(one_net(NetworkKind::kSbp), {4, 100000});
  EXPECT_EQ(sbp.sent_by_tm.size(), 1u);
  EXPECT_EQ(sbp.sent_by_tm.begin()->first, "sbp");
}

TEST(PmmProtocol, CreditWindowThrottlesButNeverDeadlocks) {
  // Stream far more small messages than the credit window in both
  // directions at once, on every credit-governed driver.
  for (NetworkKind kind :
       {NetworkKind::kBip, NetworkKind::kVia, NetworkKind::kSbp}) {
    Session session(one_net(kind));
    const int messages = 200;
    int verified = 0;
    for (int me = 0; me < 2; ++me) {
      session.spawn(me, "tx" + std::to_string(me), [&, me](NodeRuntime& rt) {
        for (int i = 0; i < messages; ++i) {
          std::uint32_t value = i;
          auto& conn = rt.channel("ch").begin_packing(1 - me);
          mad_pack_value(conn, value);
          conn.end_packing();
        }
      });
      session.spawn(me, "rx" + std::to_string(me), [&, me](NodeRuntime& rt) {
        for (int i = 0; i < messages; ++i) {
          std::uint32_t value = 0;
          auto& conn = rt.channel("ch").begin_unpacking();
          mad_unpack_value(conn, value);
          conn.end_unpacking();
          EXPECT_EQ(value, static_cast<std::uint32_t>(i));
          ++verified;
        }
      });
    }
    ASSERT_TRUE(session.run().is_ok()) << to_string(kind);
    EXPECT_EQ(verified, 2 * messages) << to_string(kind);
  }
}

TEST(PmmProtocol, ParanoidModeChangesTmTrafficOnly) {
  // Paranoid check blocks travel as ordinary small blocks: the user data
  // still selects the same TMs, and integrity holds.
  auto config = one_net(NetworkKind::kBip);
  config.channels[0].paranoid = true;
  const auto stats = run_blocks(std::move(config), {64, 50000});
  // 2 user blocks + 2 check blocks of 12 B on the short TM; the long TM
  // carries exactly the one big user block.
  EXPECT_EQ(stats.sent_by_tm.at("bip-long").blocks, 1u);
  EXPECT_EQ(stats.sent_by_tm.at("bip-short").blocks, 3u);
  EXPECT_EQ(stats.sent_by_tm.at("bip-short").bytes, 64u + 2 * 12u);
}

TEST(PmmProtocol, MessagesCountPerDirection) {
  Session session(one_net(NetworkKind::kTcp));
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    for (int i = 0; i < 3; ++i) {
      std::uint32_t v = i;
      auto& conn = rt.channel("ch").begin_packing(1);
      mad_pack_value(conn, v);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    for (int i = 0; i < 3; ++i) {
      std::uint32_t v = 0;
      auto& conn = rt.channel("ch").begin_unpacking();
      mad_unpack_value(conn, v);
      conn.end_unpacking();
    }
  });
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_EQ(session.endpoint("ch", 0).stats().messages_sent, 3u);
  EXPECT_EQ(session.endpoint("ch", 1).stats().messages_received, 3u);
}

}  // namespace
}  // namespace mad2::mad
