// Tests for the util module: Status/Result, stats, tables, byte helpers,
// and the deterministic RNG.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace mad2 {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status status = invalid_argument("bad size");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad size");
  EXPECT_EQ(status.to_string(), "INVALID_ARGUMENT: bad size");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> result(not_found("nope"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST(RunningStats, ComputesMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(SampleSet, QuantilesAreExact) {
  SampleSet set;
  for (int i = 100; i >= 1; --i) set.add(i);
  EXPECT_DOUBLE_EQ(set.median(), 50.5);
  EXPECT_DOUBLE_EQ(set.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.quantile(1.0), 100.0);
  EXPECT_NEAR(set.quantile(0.9), 90.0, 1.0);
}

TEST(PerfSeries, SummariesMatchPoints) {
  PerfSeries series{"x",
                    {{4, 5.0, 0.8}, {1024, 15.0, 60.0}, {65536, 900.0, 72.0}}};
  EXPECT_DOUBLE_EQ(series.min_latency_us(), 5.0);
  EXPECT_DOUBLE_EQ(series.peak_bandwidth_mbs(), 72.0);
  EXPECT_DOUBLE_EQ(series.bandwidth_at(1024), 60.0);
  EXPECT_DOUBLE_EQ(series.bandwidth_at(999), 0.0);
}

TEST(GeometricSizes, DoublesAndIncludesEndpoints) {
  const auto sizes = geometric_sizes(4, 64);
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{4, 8, 16, 32, 64}));
}

TEST(GeometricSizes, AlwaysEndsAtHi) {
  const auto sizes = geometric_sizes(4, 100);
  EXPECT_EQ(sizes.front(), 4u);
  EXPECT_EQ(sizes.back(), 100u);
}

TEST(GeometricSizes, PerOctaveSubdivision) {
  const auto sizes = geometric_sizes(16, 64, 2);
  // 16, ~23, 32, ~45, 64.
  EXPECT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes.front(), 16u);
  EXPECT_EQ(sizes.back(), 64u);
}

TEST(Table, AlignsColumns) {
  Table table({"a", "bbbb"});
  table.add_row({"xxxxx", "y"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("a      bbbb"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  y"), std::string::npos);
}

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(4), "4 B");
  EXPECT_EQ(format_bytes(8192), "8 kB");
  EXPECT_EQ(format_bytes(1 << 20), "1 MB");
  EXPECT_EQ(format_bytes(1500), "1500 B");  // not a whole number of kB
}

TEST(Bytes, PatternRoundTrips) {
  auto buf = make_pattern_buffer(4096, 7);
  EXPECT_TRUE(verify_pattern(buf, 7));
  EXPECT_FALSE(verify_pattern(buf, 8));
}

TEST(Bytes, PatternDetectsCorruption) {
  auto buf = make_pattern_buffer(1024, 3);
  buf[512] ^= std::byte{0x01};
  EXPECT_FALSE(verify_pattern(buf, 3));
}

TEST(Bytes, PatternIsPositionSensitive) {
  auto buf = make_pattern_buffer(256, 5);
  // A shifted view must not verify: catches off-by-one reassembly bugs.
  EXPECT_FALSE(
      verify_pattern(std::span<const std::byte>(buf).subspan(1), 5));
}

TEST(Bytes, Fnv1aMatchesKnownVector) {
  const char* text = "hello";
  const std::uint64_t hash = fnv1a(std::as_bytes(std::span(text, 5)));
  EXPECT_EQ(hash, 0xa430d84680aabd0bULL);
}

TEST(Bytes, EndianHelpersRoundTrip) {
  std::byte buf[8];
  store_u32(buf, 0xdeadbeefu);
  EXPECT_EQ(load_u32(buf), 0xdeadbeefu);
  store_u64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(load_u64(buf), 0x0123456789abcdefULL);
}

TEST(Rng, IsDeterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsAreRespected) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const auto v = rng.next_range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughUniformity) {
  Rng rng(7);
  int buckets[8] = {};
  for (int i = 0; i < 8000; ++i) ++buckets[rng.next_below(8)];
  for (int count : buckets) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

}  // namespace
}  // namespace mad2
