// Core Madeleine II tests: the pack/unpack interface and its semantic
// flags (paper Section 2.2), Switch/TM/BMM routing (Sections 3-4), across
// all four protocol management modules. Most suites are parameterized over
// the network kind so every driver exercises the same contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mad/madeleine.hpp"
#include "sim/explore.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mad2::mad {
namespace {

SessionConfig one_network_config(NetworkKind kind, std::size_t nodes = 2,
                                 std::size_t channels = 1) {
  SessionConfig config;
  config.node_count = nodes;
  NetworkDef net;
  net.name = "net0";
  net.kind = kind;
  for (std::uint32_t i = 0; i < nodes; ++i) net.nodes.push_back(i);
  config.networks.push_back(net);
  for (std::size_t c = 0; c < channels; ++c) {
    config.channels.push_back(ChannelDef{"ch" + std::to_string(c), "net0"});
  }
  return config;
}

std::string kind_name(const testing::TestParamInfo<NetworkKind>& info) {
  return std::string(to_string(info.param));
}

class MadOverDriver : public testing::TestWithParam<NetworkKind> {};

INSTANTIATE_TEST_SUITE_P(AllDrivers, MadOverDriver,
                         testing::Values(NetworkKind::kBip,
                                         NetworkKind::kSisci,
                                         NetworkKind::kTcp,
                                         NetworkKind::kVia,
                                         NetworkKind::kSbp),
                         kind_name);

// --------------------------------------------------------- basic traffic ---

TEST_P(MadOverDriver, SingleBlockRoundTripsAcrossSizes) {
  // Sizes straddle every TM boundary: SISCI short (256), BIP short (1024),
  // VIA short (4088), SISCI bulk buffer (8192), plus large.
  const std::vector<std::size_t> sizes{1,    4,    255,   256,   257,
                                       1024, 1025, 4087,  4088,  4089,
                                       8192, 8193, 65536, 262144};
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto payload = make_pattern_buffer(size, size);
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::byte> out(size);
      conn.unpack(out);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, size)) << "size " << size;
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, AllModeCombinationsRoundTrip) {
  const std::vector<SendMode> smodes{send_SAFER, send_LATER, send_CHEAPER};
  const std::vector<ReceiveMode> rmodes{receive_EXPRESS, receive_CHEAPER};
  const std::vector<std::size_t> sizes{16, 2048, 50000};
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      for (SendMode s : smodes) {
        for (ReceiveMode r : rmodes) {
          auto payload = make_pattern_buffer(size, size + 7);
          auto& conn = rt.channel("ch0").begin_packing(1);
          conn.pack(payload, s, r);
          conn.end_packing();
        }
      }
    }
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      for (SendMode s : smodes) {
        for (ReceiveMode r : rmodes) {
          auto& conn = rt.channel("ch0").begin_unpacking();
          std::vector<std::byte> out(size);
          conn.unpack(out, s, r);
          conn.end_unpacking();
          EXPECT_TRUE(verify_pattern(out, size + 7))
              << "size " << size << " " << to_string(s) << " "
              << to_string(r);
        }
      }
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, Figure1DynamicSizeArray) {
  // The paper's Figure 1: the receiver extracts the size EXPRESS, then
  // allocates and extracts the array CHEAPER.
  const std::uint32_t n = 10000;
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto payload = make_pattern_buffer(n, 42);
    auto& conn = mad_begin_packing(rt.channel("ch0"), 1);
    mad_pack_value(conn, n, send_CHEAPER, receive_EXPRESS);
    mad_pack(conn, payload, send_CHEAPER, receive_CHEAPER);
    mad_end_packing(conn);
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    auto& conn = mad_begin_unpacking(rt.channel("ch0"));
    std::uint32_t size = 0;
    mad_unpack_value(conn, size, send_CHEAPER, receive_EXPRESS);
    // EXPRESS guarantee: the value is usable right here.
    ASSERT_EQ(size, n);
    std::vector<std::byte> data(size);
    mad_unpack(conn, data, send_CHEAPER, receive_CHEAPER);
    mad_end_unpacking(conn);
    EXPECT_TRUE(verify_pattern(data, 42));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, MixedBlockMessageCrossesTmBoundaries) {
  // One message whose blocks alternate between the short and bulk TMs,
  // forcing Switch flushes (commit/checkout) mid-message.
  const std::vector<std::size_t> blocks{8, 60000, 16, 9000, 200, 30000, 4};
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_packing(1);
    std::vector<std::vector<std::byte>> payloads;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      payloads.push_back(make_pattern_buffer(blocks[i], i));
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      conn.pack(payloads[i]);
    }
    conn.end_packing();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_unpacking();
    std::vector<std::vector<std::byte>> outs;
    for (std::size_t size : blocks) outs.emplace_back(size);
    for (auto& out : outs) conn.unpack(out);
    conn.end_unpacking();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_TRUE(verify_pattern(outs[i], i)) << "block " << i;
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

// ------------------------------------------------------- flag semantics ---

TEST_P(MadOverDriver, LaterSeesModificationsUntilEndPacking) {
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    std::vector<std::byte> data(512, std::byte{0x11});
    auto& conn = rt.channel("ch0").begin_packing(1);
    conn.pack(data, send_LATER, receive_CHEAPER);
    // send_LATER contract: this update must reach the receiver.
    std::fill(data.begin(), data.end(), std::byte{0x22});
    conn.end_packing();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_unpacking();
    std::vector<std::byte> out(512);
    conn.unpack(out, send_LATER, receive_CHEAPER);
    conn.end_unpacking();
    for (std::byte b : out) EXPECT_EQ(b, std::byte{0x22});
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, SaferToleratesModificationAfterPack) {
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    std::vector<std::byte> data(512, std::byte{0x33});
    auto& conn = rt.channel("ch0").begin_packing(1);
    conn.pack(data, send_SAFER, receive_CHEAPER);
    // send_SAFER contract: this update must NOT corrupt the message.
    std::fill(data.begin(), data.end(), std::byte{0x44});
    conn.end_packing();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_unpacking();
    std::vector<std::byte> out(512);
    conn.unpack(out, send_SAFER, receive_CHEAPER);
    conn.end_unpacking();
    for (std::byte b : out) EXPECT_EQ(b, std::byte{0x33});
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, ExpressValueControlsFollowingUnpacks) {
  // A chain of EXPRESS headers each deciding the next extraction — the
  // multi-level incremental message construction of Section 2.2.
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_packing(1);
    const std::uint32_t count = 5;
    // send_CHEAPER data must stay valid until end_packing: hold payloads.
    std::vector<std::uint32_t> sizes;
    std::vector<std::vector<std::byte>> payloads;
    for (std::uint32_t i = 0; i < count; ++i) {
      sizes.push_back(100 * (i + 1));
      payloads.push_back(make_pattern_buffer(sizes.back(), i));
    }
    mad_pack_value(conn, count, send_CHEAPER, receive_EXPRESS);
    for (std::uint32_t i = 0; i < count; ++i) {
      mad_pack_value(conn, sizes[i], send_CHEAPER, receive_EXPRESS);
      mad_pack(conn, payloads[i], send_CHEAPER, receive_CHEAPER);
    }
    mad_end_packing(conn);
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    auto& conn = mad_begin_unpacking(rt.channel("ch0"));
    std::uint32_t count = 0;
    mad_unpack_value(conn, count, send_CHEAPER, receive_EXPRESS);
    ASSERT_EQ(count, 5u);
    // receive_CHEAPER blocks may only be read after end_unpacking; the
    // EXPRESS headers are usable immediately (that is the whole point).
    std::vector<std::vector<std::byte>> payloads;
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t size = 0;
      mad_unpack_value(conn, size, send_CHEAPER, receive_EXPRESS);
      ASSERT_EQ(size, 100 * (i + 1));
      payloads.emplace_back(size);
      mad_unpack(conn, payloads.back(), send_CHEAPER, receive_CHEAPER);
    }
    mad_end_unpacking(conn);
    for (std::uint32_t i = 0; i < count; ++i) {
      EXPECT_TRUE(verify_pattern(payloads[i], i));
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

// ----------------------------------------------------- ordering & demux ---

TEST_P(MadOverDriver, ManySmallMessagesExceedCreditWindow) {
  // More in-flight shorts than any credit window: flow control must
  // throttle, not deadlock or overflow.
  const int messages = 100;
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    for (int i = 0; i < messages; ++i) {
      auto& conn = rt.channel("ch0").begin_packing(1);
      std::uint32_t value = i;
      mad_pack_value(conn, value);
      mad_end_packing(conn);
    }
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    for (int i = 0; i < messages; ++i) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::uint32_t value = 999;
      mad_unpack_value(conn, value);
      mad_end_unpacking(conn);
      EXPECT_EQ(value, static_cast<std::uint32_t>(i));
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, BeginUnpackingIdentifiesTheSender) {
  Session session(one_network_config(GetParam(), /*nodes=*/3));
  // Node 2 sends first (guaranteed by virtual-time delay on node 1).
  session.spawn(2, "early", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_packing(0);
    std::uint32_t tag = 222;
    mad_pack_value(conn, tag);
    mad_end_packing(conn);
  });
  session.spawn(1, "late", [&](NodeRuntime& rt) {
    rt.simulator().advance(sim::milliseconds(5));
    auto& conn = rt.channel("ch0").begin_packing(0);
    std::uint32_t tag = 111;
    mad_pack_value(conn, tag);
    mad_end_packing(conn);
  });
  session.spawn(0, "receiver", [&](NodeRuntime& rt) {
    auto& first = rt.channel("ch0").begin_unpacking();
    EXPECT_EQ(first.remote(), 2u);
    std::uint32_t tag = 0;
    mad_unpack_value(first, tag);
    mad_end_unpacking(first);
    EXPECT_EQ(tag, 222u);

    auto& second = rt.channel("ch0").begin_unpacking();
    EXPECT_EQ(second.remote(), 1u);
    mad_unpack_value(second, tag);
    mad_end_unpacking(second);
    EXPECT_EQ(tag, 111u);
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, ChannelsAreIsolatedWorlds) {
  // Paper Section 2.1: communication on one channel does not interfere
  // with another. Receive in the opposite order of sending.
  Session session(one_network_config(GetParam(), 2, /*channels=*/2));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto& a = rt.channel("ch0").begin_packing(1);
    std::uint32_t va = 10;
    mad_pack_value(a, va);
    mad_end_packing(a);
    auto& b = rt.channel("ch1").begin_packing(1);
    std::uint32_t vb = 20;
    mad_pack_value(b, vb);
    mad_end_packing(b);
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    // Drain ch1 first even though ch0's message was sent first.
    auto& b = rt.channel("ch1").begin_unpacking();
    std::uint32_t vb = 0;
    mad_unpack_value(b, vb);
    mad_end_unpacking(b);
    EXPECT_EQ(vb, 20u);
    auto& a = rt.channel("ch0").begin_unpacking();
    std::uint32_t va = 0;
    mad_unpack_value(a, va);
    mad_end_unpacking(a);
    EXPECT_EQ(va, 10u);
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, PingPongManyIterations) {
  Session session(one_network_config(GetParam()));
  const int iterations = 50;
  for (int me = 0; me < 2; ++me) {
    session.spawn(me, "peer" + std::to_string(me), [&, me](NodeRuntime& rt) {
      const std::uint32_t other = 1 - me;
      for (int i = 0; i < iterations; ++i) {
        if ((i % 2 == 0) == (me == 0)) {
          auto& conn = rt.channel("ch0").begin_packing(other);
          std::uint32_t v = i;
          mad_pack_value(conn, v);
          mad_end_packing(conn);
        } else {
          auto& conn = rt.channel("ch0").begin_unpacking();
          std::uint32_t v = 0;
          mad_unpack_value(conn, v);
          mad_end_unpacking(conn);
          EXPECT_EQ(v, static_cast<std::uint32_t>(i));
        }
      }
    });
  }
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(MadOverDriver, ZeroLengthBlocksAreLegal) {
  Session session(one_network_config(GetParam()));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_packing(1);
    std::uint32_t v = 7;
    conn.pack({});  // empty block
    mad_pack_value(conn, v);
    conn.pack({});
    mad_end_packing(conn);
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch0").begin_unpacking();
    std::uint32_t v = 0;
    conn.unpack({});
    mad_unpack_value(conn, v);
    conn.unpack({});
    mad_end_unpacking(conn);
    EXPECT_EQ(v, 7u);
  });
  ASSERT_TRUE(session.run().is_ok());
}

// ------------------------------------------------------- property tests ---

struct ScheduleParam {
  NetworkKind kind;
  std::uint64_t seed;
};

class RandomSchedule : public testing::TestWithParam<ScheduleParam> {};

std::string schedule_name(const testing::TestParamInfo<ScheduleParam>& info) {
  return std::string(to_string(info.param.kind)) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RandomSchedule,
    testing::Values(ScheduleParam{NetworkKind::kBip, 1},
                    ScheduleParam{NetworkKind::kBip, 2},
                    ScheduleParam{NetworkKind::kBip, 3},
                    ScheduleParam{NetworkKind::kSisci, 1},
                    ScheduleParam{NetworkKind::kSisci, 2},
                    ScheduleParam{NetworkKind::kSisci, 3},
                    ScheduleParam{NetworkKind::kTcp, 1},
                    ScheduleParam{NetworkKind::kTcp, 2},
                    ScheduleParam{NetworkKind::kVia, 1},
                    ScheduleParam{NetworkKind::kVia, 2},
                    ScheduleParam{NetworkKind::kVia, 3},
                    ScheduleParam{NetworkKind::kSbp, 1},
                    ScheduleParam{NetworkKind::kSbp, 2}),
    schedule_name);

struct BlockSpec {
  std::size_t size;
  SendMode smode;
  ReceiveMode rmode;
};

std::vector<std::vector<BlockSpec>> random_messages(std::uint64_t seed) {
  // Deterministic random message schedule: sizes span all TM regimes,
  // modes cover the whole matrix.
  Rng rng(seed);
  std::vector<std::vector<BlockSpec>> messages(rng.next_range(3, 8));
  for (auto& message : messages) {
    message.resize(rng.next_range(1, 6));
    for (BlockSpec& block : message) {
      switch (rng.next_below(4)) {
        case 0:
          block.size = rng.next_range(0, 64);
          break;
        case 1:
          block.size = rng.next_range(65, 1500);
          break;
        case 2:
          block.size = rng.next_range(1501, 10000);
          break;
        default:
          block.size = rng.next_range(10001, 150000);
          break;
      }
      const auto s = rng.next_below(3);
      block.smode = s == 0 ? send_SAFER : (s == 1 ? send_LATER : send_CHEAPER);
      block.rmode = rng.next_bool(0.3) ? receive_EXPRESS : receive_CHEAPER;
    }
  }
  return messages;
}

TEST_P(RandomSchedule, SymmetricSchedulesPreserveData) {
  const auto messages = random_messages(GetParam().seed);
  Session session(one_network_config(GetParam().kind));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    std::uint64_t pattern = 0;
    for (const auto& message : messages) {
      std::vector<std::vector<std::byte>> payloads;
      for (const BlockSpec& block : message) {
        payloads.push_back(make_pattern_buffer(block.size, ++pattern));
      }
      auto& conn = rt.channel("ch0").begin_packing(1);
      for (std::size_t i = 0; i < message.size(); ++i) {
        conn.pack(payloads[i], message[i].smode, message[i].rmode);
      }
      conn.end_packing();
    }
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    std::uint64_t pattern = 0;
    for (const auto& message : messages) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::vector<std::byte>> outs;
      for (const BlockSpec& block : message) outs.emplace_back(block.size);
      for (std::size_t i = 0; i < message.size(); ++i) {
        conn.unpack(outs[i], message[i].smode, message[i].rmode);
      }
      conn.end_unpacking();
      for (const auto& out : outs) {
        EXPECT_TRUE(verify_pattern(out, ++pattern));
      }
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

// ------------------------------------------------------------ madcheck ---

// Schedule exploration (sim/explore.hpp): a mixed-mode message whose
// blocks straddle the short/bulk TM boundary forces the Switch to flush
// (commit/checkout) mid-message, and those flush events tie with the
// peer's pack/unpack fibers at the same virtual time. The data-integrity
// contract must hold for every ordering the policy can pick, not just the
// FIFO one the suites above run. Failures print a shrunk decision trace
// replayable via MAD2_SCHEDULE.
TEST(MadExplore, SwitchFlushOrderingHoldsAcross200Schedules) {
  const auto body = []() -> Status {
    struct Block {
      std::size_t size;
      SendMode smode;
      ReceiveMode rmode;
    };
    // Short / bulk alternation plus all three send modes: every pack
    // switches TM or flushes the aggregation buffer at least once.
    const std::vector<Block> blocks{
        {64, send_CHEAPER, receive_EXPRESS},
        {6000, send_CHEAPER, receive_CHEAPER},
        {32, send_SAFER, receive_EXPRESS},
        {12000, send_CHEAPER, receive_CHEAPER},
        {128, send_LATER, receive_CHEAPER},
    };
    std::string failure;
    auto fail = [&failure](std::string detail) {
      if (failure.empty()) failure = std::move(detail);
    };
    Session session(one_network_config(NetworkKind::kSisci));
    for (std::uint32_t me = 0; me < 2; ++me) {
      const std::uint32_t other = 1 - me;
      // Independent tx and rx fibers per node: both directions are in
      // flight at once, so Switch flushes on one side race against
      // application progress on the other.
      session.spawn(me, "tx" + std::to_string(me),
                    [&, me, other](NodeRuntime& rt) {
        std::vector<std::vector<std::byte>> payloads;
        for (std::size_t i = 0; i < blocks.size(); ++i) {
          payloads.push_back(
              make_pattern_buffer(blocks[i].size, 1000 * (me + 1) + i));
        }
        auto& conn = rt.channel("ch0").begin_packing(other);
        for (std::size_t i = 0; i < blocks.size(); ++i) {
          conn.pack(payloads[i], blocks[i].smode, blocks[i].rmode);
        }
        // send_LATER/send_CHEAPER payloads stay alive until here.
        conn.end_packing();
      });
      session.spawn(me, "rx" + std::to_string(me),
                    [&, me, other](NodeRuntime& rt) {
        auto& conn = rt.channel("ch0").begin_unpacking();
        std::vector<std::vector<std::byte>> outs;
        for (const Block& block : blocks) outs.emplace_back(block.size);
        for (std::size_t i = 0; i < blocks.size(); ++i) {
          conn.unpack(outs[i], blocks[i].smode, blocks[i].rmode);
        }
        conn.end_unpacking();
        for (std::size_t i = 0; i < blocks.size(); ++i) {
          if (!verify_pattern(outs[i], 1000 * (other + 1) + i)) {
            fail("node " + std::to_string(me) + " block " +
                 std::to_string(i) +
                 " corrupt or reordered under explored schedule");
          }
        }
      });
    }
    const Status run = session.run();
    if (!run.is_ok()) return run;
    if (!failure.empty()) return internal_error(failure);
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

// --------------------------------------------------------- calibrations ---

double one_way_latency_us(NetworkKind kind, std::size_t size) {
  Session session(one_network_config(kind));
  const int iterations = 20;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "pinger", [&](NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::vector<std::byte> back(size);
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& out = rt.channel("ch0").begin_packing(1);
      out.pack(payload);
      out.end_packing();
      auto& in = rt.channel("ch0").begin_unpacking();
      in.unpack(back);
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "ponger", [&](NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < iterations; ++i) {
      auto& in = rt.channel("ch0").begin_unpacking();
      in.unpack(data);
      in.end_unpacking();
      auto& out = rt.channel("ch0").begin_packing(0);
      out.pack(data);
      out.end_packing();
    }
  });
  EXPECT_TRUE(session.run().is_ok());
  return sim::to_us(end - start) / (2.0 * iterations);
}

TEST(MadCalibration, BipLatencyNearSevenMicroseconds) {
  const double latency = one_way_latency_us(NetworkKind::kBip, 4);
  EXPECT_GT(latency, 5.0);
  EXPECT_LT(latency, 9.0);  // paper: 7 us
}

TEST(MadCalibration, SisciLatencyNearFourMicroseconds) {
  const double latency = one_way_latency_us(NetworkKind::kSisci, 4);
  EXPECT_GT(latency, 2.8);
  EXPECT_LT(latency, 5.0);  // paper: 3.9 us
}

TEST(MadCalibration, SisciBeatsBipOnSmallMessages) {
  EXPECT_LT(one_way_latency_us(NetworkKind::kSisci, 4),
            one_way_latency_us(NetworkKind::kBip, 4));
}

double bandwidth_mbs(NetworkKind kind, std::size_t size) {
  Session session(one_network_config(kind));
  const int iterations = 8;
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
    // Wait for the final ack byte so `end` covers full delivery.
    auto& in = rt.channel("ch0").begin_unpacking();
    std::byte ack;
    in.unpack(std::span(&ack, 1));
    in.end_unpacking();
    end = rt.simulator().now();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < iterations; ++i) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      conn.unpack(data);
      conn.end_unpacking();
    }
    auto& out = rt.channel("ch0").begin_packing(0);
    std::byte ack{1};
    out.pack(std::span(&ack, 1));
    out.end_packing();
  });
  EXPECT_TRUE(session.run().is_ok());
  return static_cast<double>(size) * iterations /
         (sim::to_seconds(end - start) * 1e6);
}

TEST(MadCalibration, BipBandwidthNear122MBs) {
  const double mbs = bandwidth_mbs(NetworkKind::kBip, 2 * 1024 * 1024);
  EXPECT_GT(mbs, 110.0);
  EXPECT_LT(mbs, 128.0);  // paper: 122 MB/s
}

TEST(MadCalibration, SisciBandwidthNear82MBs) {
  const double mbs = bandwidth_mbs(NetworkKind::kSisci, 2 * 1024 * 1024);
  EXPECT_GT(mbs, 74.0);
  EXPECT_LT(mbs, 88.0);  // paper: 82 MB/s
}

TEST(MadCalibration, BipBeatsSisciOnLargeMessages) {
  EXPECT_GT(bandwidth_mbs(NetworkKind::kBip, 1024 * 1024),
            bandwidth_mbs(NetworkKind::kSisci, 1024 * 1024));
}

TEST(MadCalibration, SisciDualBufferingKinkAtEightKB) {
  // Below the kink a single isolated message serializes sender PIO and
  // receiver drain (one ring buffer); above it the buffers overlap. Use
  // isolated one-way transfers (as the paper's figure does) — streaming
  // back-to-back messages would pipeline across messages and hide it.
  const double below_mbs =
      8.0 * 1024 / one_way_latency_us(NetworkKind::kSisci, 8 * 1024);
  const double above_mbs =
      64.0 * 1024 / one_way_latency_us(NetworkKind::kSisci, 64 * 1024);
  EXPECT_GT(above_mbs, below_mbs * 1.2);
}

// ------------------------------------------------- stats merge dedupe ---
//
// Regression: TrafficStats::merge used to blind-add node-level MemCounters
// and link-level ReliabilityCounters, so merging endpoints that share a
// node (or a reliable port) double-counted them. Identity-tagged samples
// (mem_by_node / reliability_by_link) must dedupe by key.

TEST(TrafficStatsMerge, SharedIdentityCountsOnce) {
  TrafficStats a;
  a.mem.memcpy_bytes = 1000;
  a.mem.alloc_count = 3;
  a.mem_by_node[0] = a.mem;
  a.reliability.data_frames = 50;
  a.reliability.retransmits = 2;
  a.reliability_by_link["tcp0:4"] = a.reliability;

  // A second endpoint on the same node and reliable port took a slightly
  // newer snapshot of the same monotonic counters.
  TrafficStats b = a;
  b.mem.memcpy_bytes = 1200;
  b.mem_by_node[0] = b.mem;
  b.reliability.retransmits = 3;
  b.reliability_by_link["tcp0:4"] = b.reliability;

  a.merge(b);
  EXPECT_EQ(a.mem.memcpy_bytes, 1200u);  // newest snapshot, not 2200
  EXPECT_EQ(a.mem.alloc_count, 3u);
  EXPECT_EQ(a.reliability.data_frames, 50u);  // not 100
  EXPECT_EQ(a.reliability.retransmits, 3u);
}

TEST(TrafficStatsMerge, DistinctIdentitiesStillAdd) {
  TrafficStats a;
  TrafficStats b;
  a.mem.memcpy_bytes = 100;
  a.mem_by_node[0].memcpy_bytes = 100;
  b.mem.memcpy_bytes = 70;
  b.mem_by_node[1].memcpy_bytes = 70;
  a.reliability.data_frames = 5;
  a.reliability_by_link["tcp0:0"].data_frames = 5;
  b.reliability.data_frames = 7;
  b.reliability_by_link["tcp0:1"].data_frames = 7;
  a.merge(b);
  EXPECT_EQ(a.mem.memcpy_bytes, 170u);
  EXPECT_EQ(a.reliability.data_frames, 12u);
}

TEST(TrafficStatsMerge, UntaggedStatsFallBackToBlindAdd) {
  TrafficStats a;
  TrafficStats b;
  a.mem.memcpy_bytes = 10;
  b.mem.memcpy_bytes = 5;
  a.reliability.retransmits = 1;
  b.reliability.retransmits = 2;
  a.merge(b);
  EXPECT_EQ(a.mem.memcpy_bytes, 15u);
  EXPECT_EQ(a.reliability.retransmits, 3u);
}

TEST(TrafficStatsMerge, EndpointsSharingANodeDoNotDoubleCountMem) {
  // Two channels over one network: node 0 has two endpoints, both
  // reporting the same node-level memory counters.
  Session session(one_network_config(NetworkKind::kTcp, 2, 2));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    for (const char* ch : {"ch0", "ch1"}) {
      auto payload = make_pattern_buffer(4096, 9);
      auto& conn = rt.channel(ch).begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    for (const char* ch : {"ch0", "ch1"}) {
      auto& conn = rt.channel(ch).begin_unpacking();
      std::vector<std::byte> out(4096);
      conn.unpack(out);
      conn.end_unpacking();
    }
  });
  ASSERT_TRUE(session.run().is_ok());

  const TrafficStats s0 = session.endpoint("ch0", 0).stats();
  const TrafficStats s1 = session.endpoint("ch1", 0).stats();
  ASSERT_GT(s0.mem.memcpy_bytes, 0u);
  ASSERT_EQ(s0.mem.memcpy_bytes, s1.mem.memcpy_bytes);  // same node

  TrafficStats merged = s0;
  merged.merge(s1);
  EXPECT_EQ(merged.mem.memcpy_bytes, s0.mem.memcpy_bytes)
      << "merging two endpoints of one node double-counted its memory";
  EXPECT_EQ(merged.messages_sent, s0.messages_sent + s1.messages_sent);
}

}  // namespace
}  // namespace mad2::mad
