// Tests for the pooled zero-copy forwarding data path: recycled fixed-MTU
// packet buffers, piece-preserving gateway retransmit, in-place endpoint
// reassembly and unpack_view borrowing (docs/FORWARDING.md).
#include <gtest/gtest.h>

#include "fwd/virtual_channel.hpp"
#include "sim/explore.hpp"
#include "util/bytes.hpp"

namespace mad2::fwd {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::NodeRuntime;
using mad::Session;
using mad::SessionConfig;

// Same testbed as fwd_test: cluster {0, 1} and cluster {1, 2} sharing
// gateway node 1.
SessionConfig two_cluster_config(NetworkKind left = NetworkKind::kSisci,
                                 NetworkKind right = NetworkKind::kBip) {
  SessionConfig config;
  config.node_count = 3;
  NetworkDef a;
  a.name = "neta";
  a.kind = left;
  a.nodes = {0, 1};
  NetworkDef b;
  b.name = "netb";
  b.kind = right;
  b.nodes = {1, 2};
  config.networks.push_back(a);
  config.networks.push_back(b);
  config.channels.push_back(ChannelDef{"vcha", "neta"});
  config.channels.push_back(ChannelDef{"vchb", "netb"});
  return config;
}

VirtualChannelDef vdef(std::size_t mtu, std::size_t depth = 2) {
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"vcha", "vchb"};
  def.mtu = mtu;
  def.pipeline_depth = depth;
  return def;
}

void run_one_message(NetworkKind left, NetworkKind right, std::size_t mtu,
                     std::size_t depth, std::size_t size) {
  SCOPED_TRACE("mtu=" + std::to_string(mtu) + " depth=" +
               std::to_string(depth) + " size=" + std::to_string(size));
  Session session(two_cluster_config(left, right));
  VirtualChannel vc(session, vdef(mtu, depth));
  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(size, 3);
    auto& conn = vc.endpoint(0).begin_packing(2);
    conn.pack(payload);
    conn.end_packing();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(2).begin_unpacking();
    std::vector<std::byte> out(size);
    conn.unpack(out);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(out, 3));
  });
  ASSERT_TRUE(session.run().is_ok());
}

// Byte-identical delivery across MTU x pipeline depth x message size,
// including sizes that land exactly on, just under and just over packet
// boundaries.
TEST(PooledDelivery, SweepMtuDepthSize) {
  for (std::size_t mtu : {2048u, 8192u, 16384u}) {
    for (std::size_t depth : {1u, 2u, 4u}) {
      for (std::size_t size :
           {std::size_t{1}, std::size_t{777}, mtu - 1, mtu, mtu + 1,
            3 * mtu + 100}) {
        run_one_message(NetworkKind::kSisci, NetworkKind::kBip, mtu, depth,
                        size);
      }
    }
  }
}

// A multi-block message whose blocks straddle packet boundaries: the
// first block ends mid-packet, later blocks span several packets. The
// gateway must re-emit the original piece list (meta and payload pieces
// alike) without re-segmenting on block edges.
TEST(PooledDelivery, BlocksStraddlePacketBoundaries) {
  const std::size_t mtu = 4096;
  const std::vector<std::size_t> blocks{4000, 200, 9000, 1, 4096, 13};
  for (std::size_t depth : {1u, 2u}) {
    Session session(two_cluster_config());
    VirtualChannel vc(session, vdef(mtu, depth));
    session.spawn(0, "sender", [&](NodeRuntime&) {
      std::vector<std::vector<std::byte>> payloads;
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        payloads.push_back(make_pattern_buffer(blocks[i], i + 1));
      }
      auto& conn = vc.endpoint(0).begin_packing(2);
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        conn.pack(payloads[i], mad::send_CHEAPER,
                  i % 2 == 0 ? mad::receive_CHEAPER : mad::receive_EXPRESS);
      }
      conn.end_packing();
    });
    session.spawn(2, "receiver", [&](NodeRuntime&) {
      auto& conn = vc.endpoint(2).begin_unpacking();
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        std::vector<std::byte> out(blocks[i]);
        conn.unpack(out, mad::send_CHEAPER,
                    i % 2 == 0 ? mad::receive_CHEAPER : mad::receive_EXPRESS);
        EXPECT_TRUE(verify_pattern(out, i + 1)) << "block " << i;
      }
      conn.end_unpacking();
    });
    ASSERT_TRUE(session.run().is_ok());
  }
}

// Regression: messages made of many small blocks over a credit-windowed
// hop (BIP shorts) used to deadlock — borrowed slots held by staged
// packets shrank the sender's credit window while the receiver's owed
// credit returns sat below the batching threshold. The short TMs now cap
// retained slots at half the window and flush owed credits before
// blocking.
TEST(PooledDelivery, ManyShortBlocksDoNotStarveCredits) {
  const std::size_t size = 30000;
  for (std::size_t chunk : {100u, 1024u, 2000u, 4000u}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    Session session(two_cluster_config(NetworkKind::kBip, NetworkKind::kBip));
    VirtualChannel vc(session, vdef(16 * 1024));
    session.spawn(0, "sender", [&](NodeRuntime&) {
      auto payload = make_pattern_buffer(size, 8);
      auto& conn = vc.endpoint(0).begin_packing(2);
      for (std::size_t off = 0; off < size; off += chunk) {
        conn.pack(std::span(payload).subspan(off,
                                             std::min(chunk, size - off)));
      }
      conn.end_packing();
    });
    session.spawn(2, "receiver", [&](NodeRuntime&) {
      auto& conn = vc.endpoint(2).begin_unpacking();
      std::vector<std::byte> copy;
      copy.reserve(size);
      std::size_t left = size;
      while (left > 0) {
        const std::size_t want = std::min(left, chunk);
        std::vector<std::byte> out(want);
        conn.unpack(out);
        copy.insert(copy.end(), out.begin(), out.end());
        left -= want;
      }
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(copy, 8));
    });
    const Status run = session.run();
    ASSERT_TRUE(run.is_ok()) << run.message();
  }
}

// ------------------------------------------------------------- stats ----

// Stats regression for the tentpole claim: on a DMA-capable relay
// (Myrinet on both hops) the gateway copies only packet headers — its
// charged memcpy traffic stays orders of magnitude below the forwarded
// payload — and after the pool has warmed up, forwarding allocates
// nothing: every packet buffer is a recycle.
TEST(PooledStats, GatewayZeroPayloadCopyAndNoSteadyStateAllocs) {
  Session session(two_cluster_config(NetworkKind::kBip, NetworkKind::kBip));
  VirtualChannel vc(session, vdef(16 * 1024));
  const std::size_t size = 200000;
  const int warmups = 1;
  const int measured = 4;
  hw::MemCounters after_warmup;
  hw::MemCounters after_run;
  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(size, 9);
    for (int i = 0; i < warmups + measured; ++i) {
      auto& out = vc.endpoint(0).begin_packing(2);
      out.pack(payload);
      out.end_packing();
      // Wait for the ack so the gateway is quiescent before sampling.
      auto& in = vc.endpoint(0).begin_unpacking();
      std::byte ack;
      in.unpack(std::span(&ack, 1));
      in.end_unpacking();
      if (i == warmups - 1) after_warmup = session.node(1).mem();
    }
    after_run = session.node(1).mem();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    for (int i = 0; i < warmups + measured; ++i) {
      auto& in = vc.endpoint(2).begin_unpacking();
      std::vector<std::byte> out(size);
      in.unpack(out);
      in.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, 9));
      auto& out_conn = vc.endpoint(2).begin_packing(0);
      std::byte ack{1};
      out_conn.pack(std::span(&ack, 1));
      out_conn.end_packing();
    }
  });
  ASSERT_TRUE(session.run().is_ok());

  const std::uint64_t forwarded =
      static_cast<std::uint64_t>(size) * measured;
  const std::uint64_t copied =
      after_run.memcpy_bytes - after_warmup.memcpy_bytes;
  // Headers + size lists + the tiny ack: well under 1% of the payload.
  EXPECT_LT(copied, forwarded / 100)
      << "gateway charged payload copies: " << copied << " bytes for "
      << forwarded << " forwarded";
  EXPECT_EQ(after_run.alloc_count, after_warmup.alloc_count)
      << "forwarding allocated packet buffers after warm-up";
  EXPECT_GT(after_run.pool_recycle_count, after_warmup.pool_recycle_count)
      << "steady-state packets should come from the recycled pool";
}

// unpack_view on the terminal endpoint lends bytes straight out of the
// landed pool buffer: delivery stays byte-identical and the receiving
// node's charged copies stay far below the message size.
TEST(PooledView, UnpackViewBorrowsFromPool) {
  Session session(two_cluster_config(NetworkKind::kBip, NetworkKind::kBip));
  VirtualChannel vc(session, vdef(16 * 1024));
  const std::size_t size = 150000;
  hw::MemCounters receiver_mem;
  // Blocks of 4000 over a 16 kB MTU: most views are in-place lends from
  // the landed packet, roughly every fourth straddles a boundary and goes
  // through the staged scratch copy.
  const std::size_t chunk = 4000;
  session.spawn(0, "sender", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(size, 4);
    auto& conn = vc.endpoint(0).begin_packing(2);
    for (std::size_t off = 0; off < size; off += chunk) {
      conn.pack(std::span(payload).subspan(off,
                                           std::min(chunk, size - off)));
    }
    conn.end_packing();
  });
  session.spawn(2, "receiver", [&](NodeRuntime&) {
    auto& conn = vc.endpoint(2).begin_unpacking();
    std::vector<std::byte> copy;
    copy.reserve(size);
    std::size_t left = size;
    while (left > 0) {
      const std::size_t want = std::min(left, chunk);
      auto view = conn.unpack_view(want);
      ASSERT_EQ(view.size(), want);
      copy.insert(copy.end(), view.begin(), view.end());
      left -= want;
    }
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(copy, 4));
    receiver_mem = session.node(2).mem();
  });
  const Status run = session.run();
  ASSERT_TRUE(run.is_ok()) << run.message();
  // The landing is DMA'd into the pool and views are lent in place; only
  // packet-straddling tails go through the scratch staging copy.
  EXPECT_LT(receiver_mem.memcpy_bytes, size / 2)
      << "unpack_view should not copy every byte";
}

// ---------------------------------------------------------- madcheck ----

// Schedule exploration over the pooled path: small MTU, store-and-forward
// depth, and a reply riding the same recycled pool. Any ordering of the
// gateway's acquire/recycle against the endpoints' borrow/release must
// keep delivery byte-identical (use-after-recycle would corrupt it).
TEST(PooledExplore, PoolRecyclingHoldsAcross200Schedules) {
  const auto body = []() -> Status {
    std::string failure;
    auto fail = [&failure](std::string detail) {
      if (failure.empty()) failure = std::move(detail);
    };
    Session session(two_cluster_config());
    VirtualChannel vc(session, vdef(/*mtu=*/2048, /*depth=*/1));
    const std::size_t size = 9000;  // ~5 packets per direction
    session.spawn(0, "pinger", [&](NodeRuntime&) {
      auto payload = make_pattern_buffer(size, 2);
      auto& out = vc.endpoint(0).begin_packing(2);
      // Two blocks so the receiver can mix unpack_view and unpack.
      out.pack(std::span(payload).first(5000));
      out.pack(std::span(payload).subspan(5000));
      out.end_packing();
      auto& in = vc.endpoint(0).begin_unpacking();
      std::vector<std::byte> back(size);
      in.unpack(back);
      in.end_unpacking();
      if (!verify_pattern(back, 3)) fail("reply corrupt at node 0");
    });
    session.spawn(2, "ponger", [&](NodeRuntime&) {
      auto& in = vc.endpoint(2).begin_unpacking();
      // Mix view-based and copying consumption under exploration.
      std::vector<std::byte> data;
      data.reserve(size);
      auto head = in.unpack_view(5000);
      data.insert(data.end(), head.begin(), head.end());
      std::vector<std::byte> tail(size - 5000);
      in.unpack(tail);
      data.insert(data.end(), tail.begin(), tail.end());
      in.end_unpacking();
      if (!verify_pattern(data, 2)) fail("request corrupt at node 2");
      auto payload = make_pattern_buffer(size, 3);
      auto& out = vc.endpoint(2).begin_packing(0);
      out.pack(payload);
      out.end_packing();
    });
    const Status run = session.run();
    if (!run.is_ok()) return run;
    if (!failure.empty()) return internal_error(failure);
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

}  // namespace
}  // namespace mad2::fwd
