// Tests for the mini-Nexus layer: RSR dispatch, typed buffers, handler
// chaining (reply RSRs), and the Figure 7 latency calibration.
#include <gtest/gtest.h>

#include "nexus/nexus.hpp"
#include "util/bytes.hpp"

namespace mad2::nexus {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::NodeRuntime;
using mad::Session;
using mad::SessionConfig;

SessionConfig nexus_config(NetworkKind kind, std::size_t nodes = 2) {
  SessionConfig config;
  config.node_count = nodes;
  NetworkDef net;
  net.name = "net0";
  net.kind = kind;
  for (std::uint32_t i = 0; i < nodes; ++i) net.nodes.push_back(i);
  config.networks.push_back(net);
  config.channels.push_back(ChannelDef{"nexus", "net0"});
  return config;
}

TEST(Nexus, RsrRunsHandlerWithPayload) {
  Session session(nexus_config(NetworkKind::kSisci));
  NexusWorld world(session, "nexus");
  bool handled = false;
  world.context(1).register_handler(7, [&](std::uint32_t src,
                                           ReadBuffer& buffer) {
    EXPECT_EQ(src, 0u);
    EXPECT_EQ(buffer.get<std::uint32_t>(), 123u);
    const auto bytes = buffer.get_bytes(1000);
    EXPECT_TRUE(verify_pattern(bytes, 9));
    EXPECT_EQ(buffer.remaining(), 0u);
    handled = true;
    session.simulator().stop();
  });
  session.spawn(0, "client", [&](NodeRuntime&) {
    WriteBuffer buffer;
    buffer.put<std::uint32_t>(123);
    buffer.put_bytes(make_pattern_buffer(1000, 9));
    world.context(0).rsr(1, 7, buffer);
  });
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_TRUE(handled);
}

TEST(Nexus, HandlersCanReplyWithRsrs) {
  Session session(nexus_config(NetworkKind::kBip));
  NexusWorld world(session, "nexus");
  sim::Time replied_at = -1;
  world.context(1).register_handler(1, [&](std::uint32_t src,
                                           ReadBuffer& buffer) {
    WriteBuffer reply;
    reply.put<std::uint64_t>(buffer.get<std::uint64_t>() * 2);
    world.context(1).rsr(src, 2, reply);
  });
  world.context(0).register_handler(2, [&](std::uint32_t,
                                           ReadBuffer& buffer) {
    EXPECT_EQ(buffer.get<std::uint64_t>(), 42u);
    replied_at = session.simulator().now();
    session.simulator().stop();
  });
  session.spawn(0, "client", [&](NodeRuntime&) {
    WriteBuffer request;
    request.put<std::uint64_t>(21);
    world.context(0).rsr(1, 1, request);
  });
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_GT(replied_at, 0);
}

TEST(Nexus, ManyRsrsAreDispatchedInOrder) {
  Session session(nexus_config(NetworkKind::kSisci));
  NexusWorld world(session, "nexus");
  std::vector<std::uint32_t> seen;
  world.context(1).register_handler(3, [&](std::uint32_t,
                                           ReadBuffer& buffer) {
    seen.push_back(buffer.get<std::uint32_t>());
    if (seen.size() == 20) session.simulator().stop();
  });
  session.spawn(0, "client", [&](NodeRuntime&) {
    for (std::uint32_t i = 0; i < 20; ++i) {
      WriteBuffer buffer;
      buffer.put(i);
      world.context(0).rsr(1, 3, buffer);
    }
  });
  ASSERT_TRUE(session.run().is_ok());
  ASSERT_EQ(seen.size(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(seen[i], i);
}

TEST(Nexus, ThreadedHandlersDoNotStallTheDispatcher) {
  Session session(nexus_config(NetworkKind::kSisci));
  NexusWorld world(session, "nexus");
  std::vector<int> order;
  // A slow threaded handler (blocks 1 ms) and a fast plain handler.
  world.context(1).register_threaded_handler(
      1, [&](std::uint32_t, ReadBuffer&) {
        session.simulator().advance(sim::milliseconds(1));
        order.push_back(1);
      });
  world.context(1).register_handler(2, [&](std::uint32_t, ReadBuffer&) {
    order.push_back(2);
  });
  session.spawn(0, "client", [&](NodeRuntime&) {
    WriteBuffer buffer;
    buffer.put<std::uint32_t>(0);
    world.context(0).rsr(1, 1, buffer);  // slow, threaded
    world.context(0).rsr(1, 2, buffer);  // fast, inline
  });
  ASSERT_TRUE(session.run().is_ok());
  // The fast handler finished while the threaded one was still blocked.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(Nexus, ThreadedHandlersMayBlockOnReplies) {
  Session session(nexus_config(NetworkKind::kSisci));
  NexusWorld world(session, "nexus");
  bool done = false;
  // Node 1's threaded handler performs a nested request back to node 0
  // and waits for the answer — impossible on a non-threaded handler
  // without deadlocking the dispatcher.
  sim::WaitQueue answered(&session.simulator());
  int answer = 0;
  world.context(1).register_threaded_handler(
      1, [&](std::uint32_t src, ReadBuffer&) {
        WriteBuffer ask;
        ask.put<std::uint32_t>(7);
        world.context(1).rsr(src, 2, ask);
        while (answer == 0) answered.wait();
        EXPECT_EQ(answer, 49);
        done = true;
      });
  world.context(0).register_handler(2, [&](std::uint32_t src,
                                           ReadBuffer& buffer) {
    const auto v = buffer.get<std::uint32_t>();
    WriteBuffer reply;
    reply.put<std::uint32_t>(v * v);
    world.context(0).rsr(src, 3, reply);
  });
  world.context(1).register_handler(3, [&](std::uint32_t,
                                           ReadBuffer& buffer) {
    answer = static_cast<int>(buffer.get<std::uint32_t>());
    answered.notify_all();
  });
  session.spawn(0, "client", [&](NodeRuntime&) {
    WriteBuffer buffer;
    world.context(0).rsr(1, 1, buffer);
  });
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_TRUE(done);
}

double nexus_one_way_us(NetworkKind kind, std::size_t payload_bytes,
                        int iterations = 10) {
  Session session(nexus_config(kind));
  NexusWorld world(session, "nexus");
  sim::Time start = 0;
  sim::Time end = 0;
  int remaining = iterations;
  auto payload = make_pattern_buffer(payload_bytes, 1);

  world.context(1).register_handler(1, [&](std::uint32_t src,
                                           ReadBuffer& buffer) {
    world.context(1).rsr(src, 2, buffer.get_bytes(buffer.remaining()));
  });
  world.context(0).register_handler(2, [&](std::uint32_t, ReadBuffer&) {
    if (--remaining == 0) {
      end = session.simulator().now();
      session.simulator().stop();
      return;
    }
    world.context(0).rsr(1, 1, payload);
  });
  session.spawn(0, "client", [&](NodeRuntime& rt) {
    start = rt.simulator().now();
    world.context(0).rsr(1, 1, payload);
  });
  EXPECT_TRUE(session.run().is_ok());
  return sim::to_us(end - start) / (2.0 * iterations);
}

TEST(Figure7, NexusOverSciLatencyBelow25Microseconds) {
  const double latency = nexus_one_way_us(NetworkKind::kSisci, 4);
  EXPECT_GT(latency, 12.0);  // well above raw Madeleine's 3.9 us
  EXPECT_LT(latency, 25.0);  // the paper's headline bound
}

TEST(Figure7, NexusOverTcpIsMuchSlower) {
  const double sci = nexus_one_way_us(NetworkKind::kSisci, 4);
  const double tcp = nexus_one_way_us(NetworkKind::kTcp, 4);
  EXPECT_GT(tcp, 3.0 * sci);
}

TEST(Figure7, LargePayloadBandwidthApproachesMadeleine) {
  const std::size_t size = 1024 * 1024;
  const double latency_us = nexus_one_way_us(NetworkKind::kSisci, size, 3);
  const double mbs = static_cast<double>(size) / latency_us;
  EXPECT_GT(mbs, 65.0);  // Madeleine/SISCI delivers ~82; Nexus adds copies
}

}  // namespace
}  // namespace mad2::nexus
