// madtrace observability tests: histogram math, category parsing, the
// event ring, Switch-level instrumentation + latency histograms on a
// real session, the Chrome trace-event exporter round trip, the `trace`
// config stanza, and the auto-dump path on a madcheck invariant failure.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mad/config_parser.hpp"
#include "mad/madeleine.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/explore.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"

namespace mad2 {
namespace {

// The CI matrix exports MAD2_TRACE for the whole test step (so every
// other suite runs traced and failures auto-dump); this suite manages
// recorders by hand and must start from a clean slate.
class CleanTraceEnv : public testing::Environment {
 public:
  void SetUp() override {
    unsetenv(obs::kTraceEnvVar);
    unsetenv(obs::kTraceRingEnvVar);
    unsetenv(obs::kTraceDumpEnvVar);
  }
};
const testing::Environment* const kCleanEnv =
    testing::AddGlobalTestEnvironment(new CleanTraceEnv);

// ------------------------------------------------------------- histogram ---

TEST(Histogram, EmptyIsAllZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(Histogram, QuantilesAreOrderedAndBucketAccurate) {
  obs::Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.sum(), 1000 * 1001 / 2);
  // Log buckets promise ~2x relative error on quantiles.
  EXPECT_GE(h.p50(), 250);
  EXPECT_LE(h.p50(), 1000);
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_LE(h.p99(), h.max());
  EXPECT_NEAR(h.mean(), 500.5, 0.001);
}

TEST(Histogram, MergeAddsCountsAndWidensRange) {
  obs::Histogram a;
  obs::Histogram b;
  for (int i = 0; i < 10; ++i) a.record(100);
  for (int i = 0; i < 30; ++i) b.record(10000);
  a.merge(b);
  EXPECT_EQ(a.count(), 40u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 10000);
  // 3/4 of the mass sits in the high bucket: p99 must land there.
  EXPECT_GE(a.p99(), 5000);
}

TEST(Histogram, BucketLimitsAreMonotonic) {
  for (std::size_t i = 1; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_GT(obs::Histogram::bucket_limit(i),
              obs::Histogram::bucket_limit(i - 1))
        << "bucket " << i;
  }
}

TEST(Histogram, QuantileAtExactBucketBoundaryIsExact) {
  // An exact power of two sits on a bucket edge. Whatever bucket the
  // implementation files it under, the min/max clamp must make every
  // quantile of a single-valued histogram report that value exactly —
  // not a bucket limit.
  for (std::int64_t v : {std::int64_t{1}, std::int64_t{2},
                         std::int64_t{1024}, std::int64_t{1} << 40}) {
    obs::Histogram h;
    for (int i = 0; i < 100; ++i) h.record(v);
    EXPECT_EQ(h.percentile(0.0), v) << "value " << v;
    EXPECT_EQ(h.p50(), v) << "value " << v;
    EXPECT_EQ(h.p95(), v) << "value " << v;
    EXPECT_EQ(h.p99(), v) << "value " << v;
    EXPECT_EQ(h.percentile(1.0), v) << "value " << v;
  }
}

TEST(Histogram, BoundaryValuesInAdjacentBucketsStayInRange) {
  // 512 and 1024 are both bucket edges and land in adjacent buckets.
  // Interpolated quantiles may sit anywhere inside the hit bucket but
  // must stay within the recorded extremes and be monotone in q.
  obs::Histogram h;
  for (int i = 0; i < 50; ++i) h.record(512);
  for (int i = 0; i < 50; ++i) h.record(1024);
  EXPECT_EQ(h.min(), 512);
  EXPECT_EQ(h.max(), 1024);
  std::int64_t previous = 0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    const std::int64_t value = h.percentile(q);
    EXPECT_GE(value, 512) << "q=" << q;
    EXPECT_LE(value, 1024) << "q=" << q;
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  // The top quantile interpolates to the hit bucket's upper limit (2048)
  // and must be clamped back to the recorded maximum.
  EXPECT_EQ(h.percentile(1.0), 1024);
}

// ------------------------------------------------------------ categories ---

TEST(TraceCategories, ParseMasks) {
  std::uint32_t mask = 0;
  ASSERT_TRUE(obs::parse_categories("all", &mask));
  EXPECT_EQ(mask, obs::kAllCategories);
  ASSERT_TRUE(obs::parse_categories("fwd,switch", &mask));
  EXPECT_EQ(mask, static_cast<std::uint32_t>(obs::Category::kFwd) |
                      static_cast<std::uint32_t>(obs::Category::kSwitch));
  ASSERT_TRUE(obs::parse_categories("tm,,net", &mask));  // empty tokens ok
  EXPECT_EQ(mask, static_cast<std::uint32_t>(obs::Category::kTm) |
                      static_cast<std::uint32_t>(obs::Category::kNet));
  ASSERT_TRUE(obs::parse_categories("", &mask));
  EXPECT_EQ(mask, 0u);
  EXPECT_FALSE(obs::parse_categories("bogus", &mask));
  EXPECT_FALSE(obs::parse_categories("fwd,bogus", &mask));
}

// --------------------------------------------------------------- the ring ---

TEST(TraceRecorder, RingWrapsKeepingNewestEvents) {
  obs::TraceConfig config;
  config.ring_kb = 1;  // a handful of slots
  obs::TraceRecorder recorder(config);
  const std::size_t cap = recorder.capacity();
  ASSERT_GT(cap, 0u);
  const std::size_t total = cap + 5;
  for (std::size_t i = 0; i < total; ++i) {
    recorder.record(obs::Category::kTm, "tick", nullptr,
                    static_cast<sim::Time>(i), -1, i, 0);
  }
  EXPECT_EQ(recorder.recorded(), total);
  EXPECT_EQ(recorder.size(), cap);
  // The wrap is accounted, never silent: exactly the five overwritten
  // events show up as drops.
  EXPECT_EQ(recorder.dropped_events(), 5u);
  const std::vector<obs::TraceEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), cap);
  // Oldest five events were overwritten; snapshot starts at a0 == 5.
  EXPECT_EQ(events.front().a0, 5u);
  EXPECT_EQ(events.back().a0, total - 1);
}

TEST(TraceRecorder, NoWrapMeansNoDroppedEvents) {
  obs::TraceRecorder recorder;
  EXPECT_EQ(recorder.dropped_events(), 0u);
  for (int i = 0; i < 100; ++i) {
    recorder.record(obs::Category::kTm, "tick", nullptr,
                    static_cast<sim::Time>(i), -1, 0, 0);
  }
  EXPECT_EQ(recorder.dropped_events(), 0u);
}

TEST(TraceRecorder, ChannelFilter) {
  obs::TraceConfig open;
  obs::TraceRecorder all(open);
  EXPECT_TRUE(all.channel_enabled("anything"));

  obs::TraceConfig narrow;
  narrow.channels = {"ch0"};
  obs::TraceRecorder filtered(narrow);
  EXPECT_TRUE(filtered.channel_enabled("ch0"));
  EXPECT_FALSE(filtered.channel_enabled("ch1"));
}

TEST(TraceMacros, DisabledSitesAreInertWithoutRecorder) {
  ASSERT_EQ(obs::recorder(), nullptr);
  EXPECT_FALSE(obs::trace_enabled(obs::Category::kSwitch));
  // Must be safe to execute with no recorder installed.
  MAD2_TRACE_EVENT(obs::Category::kSwitch, "noop", nullptr, 1);
  {
    MAD2_TRACE_SPAN(span, obs::Category::kFwd, "noop.span");
    span.args(1, 2);
    EXPECT_FALSE(span.active());
  }
}

// ------------------------------------------------------- metrics registry ---

TEST(MetricsRegistry, ValuesAndStampFifo) {
  obs::MetricsRegistry registry;
  registry.set_value("a", 7);
  registry.add_value("a", 3);
  EXPECT_EQ(registry.value("a"), 10);
  EXPECT_EQ(registry.value("missing"), 0);

  registry.push_stamp("flow", 100);
  registry.push_stamp("flow", 200);
  sim::Time t = 0;
  ASSERT_TRUE(registry.pop_stamp("flow", &t));
  EXPECT_EQ(t, 100);  // FIFO
  ASSERT_TRUE(registry.pop_stamp("flow", &t));
  EXPECT_EQ(t, 200);
  EXPECT_FALSE(registry.pop_stamp("flow", &t));

  // The per-flow cap bounds a one-sided flow.
  for (std::size_t i = 0; i < obs::MetricsRegistry::kMaxStampsPerFlow + 100;
       ++i) {
    registry.push_stamp("one-sided", static_cast<sim::Time>(i));
  }
  std::size_t drained = 0;
  while (registry.pop_stamp("one-sided", &t)) ++drained;
  EXPECT_LE(drained, obs::MetricsRegistry::kMaxStampsPerFlow);
}

TEST(MetricsRegistry, MergeAddsValuesAndMergesHistograms) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.set_value("shared", 3);
  b.set_value("shared", 4);
  b.set_value("only_b", 7);
  a.histogram("lat")->record(100);
  a.histogram("lat")->record(200);
  b.histogram("lat")->record(10000);
  b.histogram("only_b.lat")->record(5);
  a.merge(b);

  // Identically-named values add; other-only names appear.
  EXPECT_EQ(a.value("shared"), 7);
  EXPECT_EQ(a.value("only_b"), 7);
  // Identically-named histograms bucket-merge (counts add, range widens).
  const obs::Histogram& lat = a.histograms().at("lat");
  EXPECT_EQ(lat.count(), 3u);
  EXPECT_EQ(lat.min(), 100);
  EXPECT_EQ(lat.max(), 10000);
  EXPECT_GE(lat.p99(), 5000);
  ASSERT_EQ(a.histograms().count("only_b.lat"), 1u);
  EXPECT_EQ(a.histograms().at("only_b.lat").count(), 1u);
  // The source registry is untouched.
  EXPECT_EQ(b.value("shared"), 4);
  EXPECT_EQ(b.histograms().at("lat").count(), 1u);
}

TEST(MetricsRegistry, JsonContainsHistogramsAndValues) {
  obs::MetricsRegistry registry;
  registry.set_value("stats.ch.messages_sent", 4);
  registry.histogram("ch.e2e")->record(1500);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("stats.ch.messages_sent"), std::string::npos);
  EXPECT_NE(json.find("ch.e2e"), std::string::npos);
  EXPECT_NE(json.find("p99_us"), std::string::npos);
}

// ------------------------------------------------- session instrumentation ---

mad::SessionConfig two_node_config() {
  mad::SessionConfig config;
  config.node_count = 2;
  mad::NetworkDef net;
  net.name = "net0";
  net.kind = mad::NetworkKind::kTcp;
  net.nodes = {0, 1};
  config.networks.push_back(net);
  config.channels.push_back(mad::ChannelDef{"ch0", "net0"});
  return config;
}

/// N one-way messages 0 -> 1 over "ch0"; sizes straddle the TM boundary
/// so both the short and the bulk paths get instrumented.
void run_traffic(int messages) {
  mad::Session session(two_node_config());
  session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
    for (int i = 0; i < messages; ++i) {
      const std::size_t size = i % 2 == 0 ? 64 : 32768;
      auto payload = make_pattern_buffer(size, i);
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "receiver", [&](mad::NodeRuntime& rt) {
    for (int i = 0; i < messages; ++i) {
      const std::size_t size = i % 2 == 0 ? 64 : 32768;
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::byte> out(size);
      conn.unpack(out);
      conn.end_unpacking();
      ASSERT_TRUE(verify_pattern(out, i)) << "message " << i;
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(SessionTrace, SwitchEventsAndLatencyHistograms) {
  constexpr int kMessages = 6;
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  obs::install_recorder(&recorder);
  obs::install_metrics(&registry);
  run_traffic(kMessages);
  obs::uninstall_recorder(&recorder);
  obs::uninstall_metrics(&registry);
  // The default ring holds this workload whole: wrap here would mean the
  // flight recorder silently truncated a small trace.
  EXPECT_EQ(recorder.dropped_events(), 0u);

  std::set<std::string> names;
  for (const obs::TraceEvent& event : recorder.snapshot()) {
    names.insert(event.name);
  }
  EXPECT_TRUE(names.count("switch.tm_select")) << "no TM-selection events";
  EXPECT_TRUE(names.count("msg.pack"));
  EXPECT_TRUE(names.count("msg.unpack"));

  // One sample per message in each stage histogram; e2e spans both.
  const auto& histograms = registry.histograms();
  ASSERT_TRUE(histograms.count("ch0.pack_to_wire"));
  ASSERT_TRUE(histograms.count("ch0.wire_to_unpack"));
  ASSERT_TRUE(histograms.count("ch0.e2e"));
  const obs::Histogram& pack = histograms.at("ch0.pack_to_wire");
  const obs::Histogram& unpack = histograms.at("ch0.wire_to_unpack");
  const obs::Histogram& e2e = histograms.at("ch0.e2e");
  EXPECT_EQ(pack.count(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(unpack.count(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(e2e.count(), static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(e2e.max(), 0);
  // End-to-end covers at least the receive stage of the same message mix.
  EXPECT_GE(e2e.max(), unpack.max());
}

TEST(SessionTrace, ChannelFilterSuppressesSwitchEvents) {
  obs::TraceConfig config;
  config.channels = {"not-this-channel"};
  obs::TraceRecorder recorder(config);
  obs::MetricsRegistry registry;
  obs::install_recorder(&recorder);
  obs::install_metrics(&registry);
  run_traffic(2);
  obs::uninstall_recorder(&recorder);
  obs::uninstall_metrics(&registry);

  for (const obs::TraceEvent& event : recorder.snapshot()) {
    EXPECT_NE(event.cat, obs::Category::kSwitch)
        << "filtered channel produced Switch event " << event.name;
  }
  // Latency histograms honor the same filter.
  EXPECT_EQ(registry.histograms().count("ch0.e2e"), 0u);
}

TEST(SessionTrace, ExportMetricsPublishesTrafficStats) {
  constexpr int kMessages = 4;
  obs::MetricsRegistry registry;

  mad::Session session(two_node_config());
  session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
    for (int i = 0; i < kMessages; ++i) {
      auto payload = make_pattern_buffer(256, i);
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "receiver", [&](mad::NodeRuntime& rt) {
    for (int i = 0; i < kMessages; ++i) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::byte> out(256);
      conn.unpack(out);
      conn.end_unpacking();
    }
  });
  ASSERT_TRUE(session.run().is_ok());
  session.export_metrics(registry);

  EXPECT_EQ(registry.value("stats.ch0.messages_sent"), kMessages);
  EXPECT_EQ(registry.value("stats.ch0.messages_received"), kMessages);
  // Some TM moved bytes for the channel.
  bool tx_bytes = false;
  for (const auto& [name, value] : registry.values()) {
    if (name.rfind("stats.ch0.tx.", 0) == 0 &&
        name.find(".bytes") != std::string::npos && value > 0) {
      tx_bytes = true;
    }
  }
  EXPECT_TRUE(tx_bytes) << "no stats.ch0.tx.<tm>.bytes value exported";
  // Node memory counters land keyed by node id.
  EXPECT_GE(registry.value("mem.node0.memcpy_bytes"), 0);
}

TEST(SessionTrace, ExportMetricsSurfacesDroppedTraceEvents) {
  // A deliberately tiny ring wraps under a normal workload; the drop
  // count must surface as the trace.dropped_events metric so a truncated
  // flight recording is visible in every metrics snapshot.
  obs::TraceConfig config;
  config.ring_kb = 1;
  obs::TraceRecorder recorder(config);
  obs::MetricsRegistry registry;
  obs::install_recorder(&recorder);
  obs::install_metrics(&registry);

  mad::Session session(two_node_config());
  session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
    for (int i = 0; i < 8; ++i) {
      auto payload = make_pattern_buffer(4096, i);
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "receiver", [&](mad::NodeRuntime& rt) {
    for (int i = 0; i < 8; ++i) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::byte> out(4096);
      conn.unpack(out);
      conn.end_unpacking();
    }
  });
  ASSERT_TRUE(session.run().is_ok());
  session.export_metrics(registry);
  obs::uninstall_recorder(&recorder);
  obs::uninstall_metrics(&registry);

  EXPECT_GT(recorder.dropped_events(), 0u) << "ring unexpectedly fit";
  EXPECT_EQ(registry.value("trace.dropped_events"),
            static_cast<std::int64_t>(recorder.dropped_events()));
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("trace.dropped_events"), std::string::npos);
}

// -------------------------------------------------- Chrome trace exporter ---

TEST(ChromeTrace, RoundTripInvariants) {
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  obs::install_recorder(&recorder);
  obs::install_metrics(&registry);
  run_traffic(4);
  obs::uninstall_recorder(&recorder);
  obs::uninstall_metrics(&registry);
  ASSERT_GT(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped_events(), 0u);

  const std::string json = obs::chrome_trace_json(recorder);
  const auto parsed = obs::parse_chrome_trace(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const std::vector<obs::ParsedEvent>& events = parsed.value();
  ASSERT_FALSE(events.empty());

  std::set<std::uint64_t> named_tracks;
  for (const obs::ParsedEvent& event : events) {
    if (event.phase == "M") {
      EXPECT_FALSE(event.thread_name.empty());
      named_tracks.insert(event.tid);
    }
  }
  std::map<std::uint64_t, double> last_ts;
  std::size_t spans = 0;
  for (const obs::ParsedEvent& event : events) {
    if (event.phase == "M") continue;
    EXPECT_TRUE(event.phase == "X" || event.phase == "i") << event.phase;
    EXPECT_FALSE(event.name.empty());
    EXPECT_TRUE(named_tracks.count(event.tid))
        << "track " << event.tid << " has no thread_name metadata";
    // Exporter sorts by timestamp: per-track ts must be non-decreasing
    // (the Perfetto ingestion requirement).
    auto [it, inserted] = last_ts.try_emplace(event.tid, event.ts_us);
    if (!inserted) {
      EXPECT_GE(event.ts_us, it->second) << event.name;
      it->second = event.ts_us;
    }
    if (event.phase == "X") {
      ++spans;
      EXPECT_GE(event.dur_us, 0.0) << event.name;
    }
  }
  EXPECT_GT(spans, 0u) << "no complete (X) span events in the trace";
}

TEST(ChromeTrace, WriteToFileMatchesInMemoryJson) {
  obs::TraceRecorder recorder;
  recorder.record(obs::Category::kFwd, "fwd.hop", "gateway", 1000, 500, 1,
                  2);
  recorder.record(obs::Category::kNet, "rel.retransmit", nullptr, 2000, -1,
                  3, 0);
  const std::string path =
      testing::TempDir() + "obs_test_chrome_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(recorder, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), obs::chrome_trace_json(recorder));
  const auto parsed = obs::parse_chrome_trace(buffer.str());
  ASSERT_TRUE(parsed.is_ok());
  bool saw_span = false;
  for (const obs::ParsedEvent& event : parsed.value()) {
    if (event.phase == "X" && event.name == "fwd.hop") {
      saw_span = true;
      EXPECT_DOUBLE_EQ(event.ts_us, 1.0);
      EXPECT_DOUBLE_EQ(event.dur_us, 0.5);
    }
  }
  EXPECT_TRUE(saw_span);
  std::filesystem::remove(path);
}

// ----------------------------------------------------- trace config stanza ---

constexpr std::string_view kBaseConfig =
    "nodes 2\n"
    "network net0 tcp 0 1\n"
    "channel ch0 net0\n";

TEST(ConfigTrace, StanzaParses) {
  const std::string text =
      std::string(kBaseConfig) +
      "trace categories=switch,fwd ring_kb=64 channels=ch0\n";
  const auto result = mad::parse_session_config(text);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const mad::SessionConfig& config = result.value();
  ASSERT_TRUE(config.trace.has_value());
  EXPECT_EQ(config.trace->categories,
            static_cast<std::uint32_t>(obs::Category::kSwitch) |
                static_cast<std::uint32_t>(obs::Category::kFwd));
  EXPECT_EQ(config.trace->ring_kb, 64u);
  ASSERT_EQ(config.trace->channels.size(), 1u);
  EXPECT_EQ(config.trace->channels[0], "ch0");
}

TEST(ConfigTrace, BareStanzaUsesDefaults) {
  const auto result =
      mad::parse_session_config(std::string(kBaseConfig) + "trace\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_TRUE(result.value().trace.has_value());
  EXPECT_EQ(result.value().trace->categories, obs::kAllCategories);
  EXPECT_TRUE(result.value().trace->channels.empty());
}

TEST(ConfigTrace, RejectsBadStanzas) {
  const std::string base(kBaseConfig);
  EXPECT_FALSE(
      mad::parse_session_config(base + "trace categories=bogus\n").is_ok());
  EXPECT_FALSE(
      mad::parse_session_config(base + "trace channels=nope\n").is_ok());
  EXPECT_FALSE(mad::parse_session_config(base + "trace ring_kb=0\n").is_ok());
  EXPECT_FALSE(mad::parse_session_config(base + "trace wat=1\n").is_ok());
  EXPECT_FALSE(mad::parse_session_config(base + "trace\ntrace\n").is_ok());
}

TEST(ConfigTrace, PropagationAndSloParse) {
  const auto result = mad::parse_session_config(
      std::string(kBaseConfig) +
      "trace propagation slo=ch0:2500\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_TRUE(result.value().trace.has_value());
  const obs::TraceConfig& trace = *result.value().trace;
  EXPECT_TRUE(trace.propagation);
  ASSERT_EQ(trace.slo.size(), 1u);
  EXPECT_EQ(trace.slo[0].channel, "ch0");
  EXPECT_EQ(trace.slo[0].p99_us, 2500);

  // Defaults: a bare stanza leaves propagation off and no SLO rules.
  const auto bare =
      mad::parse_session_config(std::string(kBaseConfig) + "trace\n");
  ASSERT_TRUE(bare.is_ok());
  EXPECT_FALSE(bare.value().trace->propagation);
  EXPECT_TRUE(bare.value().trace->slo.empty());
}

TEST(ConfigTrace, RejectsBadSloRules) {
  const std::string base(kBaseConfig);
  // Unknown channel, malformed rule, zero/garbage threshold.
  EXPECT_FALSE(
      mad::parse_session_config(base + "trace slo=nope:100\n").is_ok());
  EXPECT_FALSE(mad::parse_session_config(base + "trace slo=ch0\n").is_ok());
  EXPECT_FALSE(
      mad::parse_session_config(base + "trace slo=ch0:0\n").is_ok());
  EXPECT_FALSE(
      mad::parse_session_config(base + "trace slo=ch0:abc\n").is_ok());
}

TEST(ConfigTrace, SessionInstallsAndRemovesStanzaRecorder) {
  const auto parsed = mad::parse_session_config(
      std::string(kBaseConfig) + "trace categories=all ring_kb=32\n");
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(obs::recorder(), nullptr);
  {
    mad::Session session(parsed.value());
    // The config stanza installed a session-owned recorder.
    obs::TraceRecorder* installed = obs::recorder();
    ASSERT_NE(installed, nullptr);
    EXPECT_EQ(installed->config().ring_kb, 32u);
    session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
      auto payload = make_pattern_buffer(128, 1);
      auto& conn = rt.channel("ch0").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    });
    session.spawn(1, "receiver", [&](mad::NodeRuntime& rt) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::byte> out(128);
      conn.unpack(out);
      conn.end_unpacking();
    });
    ASSERT_TRUE(session.run().is_ok());
    EXPECT_GT(installed->recorded(), 0u);
  }
  // Session teardown uninstalls its recorder.
  EXPECT_EQ(obs::recorder(), nullptr);
}

// ------------------------------------------------------------- auto-dump ---

// The planted lost-wakeup bug from the madcheck self-tests: the FIFO
// baseline passes, exploration deadlocks. Each fiber also emits trace
// events so the auto-dump has a timeline to write.
Status traced_buggy_pipeline() {
  sim::Simulator simulator;
  sim::WaitQueue queue(&simulator);
  bool ready = false;
  bool consumed = false;
  simulator.spawn("consumer", [&] {
    MAD2_TRACE_EVENT(obs::Category::kFwd, "test.consumer.check");
    if (!ready) {
      simulator.yield_fiber();  // check-to-wait window
      queue.wait();             // no re-check: wakeup can be lost
    }
    consumed = true;
  });
  simulator.spawn("producer", [&] {
    simulator.yield_fiber();
    ready = true;
    MAD2_TRACE_EVENT(obs::Category::kFwd, "test.producer.notify");
    queue.notify_one();
  });
  const Status run = simulator.run();
  if (!run.is_ok()) return run;
  if (!consumed) return internal_error("consumer never consumed");
  return Status::ok();
}

TEST(AutoDump, ExploreInvariantFailureWritesChromeTrace) {
  obs::TraceRecorder recorder;
  obs::install_recorder(&recorder);
  const std::string dir = testing::TempDir() + "mad2_obs_dumps";
  std::filesystem::remove_all(dir);
  obs::set_dump_directory(dir);

  sim::ExploreOptions options;
  options.random_runs = 200;
  options.delay_bound = 2;
  options.max_exhaustive_runs = 200;
  const sim::ExploreResult result =
      sim::explore([] { return traced_buggy_pipeline(); }, options);

  ASSERT_FALSE(result.ok) << "planted bug not found: " << result.summary();
  const std::string dump = obs::last_dump_path();
  obs::set_dump_directory("");
  obs::uninstall_recorder(&recorder);
  ASSERT_FALSE(dump.empty()) << "invariant failure produced no trace dump";
  // The whole exploration fits the default ring: the dump lost nothing.
  EXPECT_EQ(recorder.dropped_events(), 0u);

  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << dump;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = obs::parse_chrome_trace(buffer.str());
  ASSERT_TRUE(parsed.is_ok()) << "dump is not loadable trace JSON: "
                           << parsed.status().to_string();
  bool saw_test_event = false;
  for (const obs::ParsedEvent& event : parsed.value()) {
    if (event.name.rfind("test.", 0) == 0) saw_test_event = true;
  }
  EXPECT_TRUE(saw_test_event)
      << "dump does not contain the failing run's events";
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mad2
