// Tests for the simulated InfiniBand HCA: queue-pair semantics (posted
// receives, SQ depth back-pressure, signaled sends), RDMA write/read with
// target-side completions, registration costs and pinned-memory counters,
// the LRU registration cache (hit/miss accounting, coalescing, eviction
// order, invalidation), and the fault-plan overlay (partition -> give-up
// timer -> poisoned link, payload corruption).
#include <gtest/gtest.h>

#include "net/fault.hpp"
#include "net/ib.hpp"
#include "sim/time.hpp"
#include "testbed.hpp"
#include "util/bytes.hpp"

namespace mad2::net {
namespace {

using sim::to_us;

struct IbBed : Testbed {
  explicit IbBed(int n, IbParams params = IbParams::mellanox_like())
      : Testbed(n), network(&simulator, node_ptrs(), params) {}
  IbNetwork network;
};

// ------------------------------------------------------------ send/recv ---

TEST(Ib, SendConsumesPostedDescriptorsInOrder) {
  IbBed bed(2);
  std::vector<std::byte> first(4096);
  std::vector<std::byte> second(4096);
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv(0, 0, first);
    bed.network.port(1).post_recv(0, 0, second);
    const IbCompletion c1 = bed.network.port(1).wait_cq(0);
    const IbCompletion c2 = bed.network.port(1).wait_cq(0);
    EXPECT_EQ(c1.kind, IbCompletion::Kind::kRecv);
    EXPECT_EQ(c1.bytes, 100u);
    EXPECT_EQ(c1.imm, 7u);
    EXPECT_EQ(c1.buffer.data(), first.data());
    EXPECT_TRUE(verify_pattern(
        std::span<const std::byte>(first).subspan(0, 100), 1));
    EXPECT_EQ(c2.bytes, 200u);
    EXPECT_EQ(c2.imm, 9u);
    EXPECT_EQ(c2.buffer.data(), second.data());
    EXPECT_TRUE(verify_pattern(
        std::span<const std::byte>(second).subspan(0, 200), 2));
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(5));  // after the posts
    bed.network.port(0).post_send(1, 0, make_pattern_buffer(100, 1), 7);
    bed.network.port(0).post_send(1, 0, make_pattern_buffer(200, 2), 9);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Ib, SendWithoutPostedReceiveBreaksTheQp) {
  IbBed bed(2);
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).post_send(1, 0, make_pattern_buffer(64, 1));
  });
  EXPECT_DEATH({ (void)bed.simulator.run(); }, "no posted receive");
}

TEST(Ib, SignaledSendRaisesLocalCompletion) {
  IbBed bed(2);
  std::vector<std::byte> sink(4096);
  std::uint64_t wr = 0;
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv(0, 0, sink);
    (void)bed.network.port(1).wait_cq(0);
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(5));
    wr = bed.network.port(0).post_send(1, 0, make_pattern_buffer(256, 1),
                                       /*imm=*/0, /*signaled=*/true);
    const IbCompletion c = bed.network.port(0).wait_cq(0);
    EXPECT_EQ(c.kind, IbCompletion::Kind::kSend);
    EXPECT_EQ(c.wr_id, wr);
    EXPECT_TRUE(c.ok);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Ib, SendQueueDepthBackPressuresThePoster) {
  IbParams params = IbParams::mellanox_like();
  params.qp_depth = 2;
  IbBed bed(2, params);
  const std::size_t sends = 8;
  std::vector<std::vector<std::byte>> sinks(sends);
  bed.simulator.spawn("receiver", [&] {
    for (auto& sink : sinks) {
      sink.resize(params.mtu);
      bed.network.port(1).post_recv(0, 0, sink);
    }
    for (std::size_t i = 0; i < sends; ++i) {
      (void)bed.network.port(1).wait_cq(0);
    }
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(5));
    const auto payload = make_pattern_buffer(params.mtu, 3);
    for (std::size_t i = 0; i < sends; ++i) {
      bed.network.port(0).post_send(1, 0, payload);
      // The SQ admits at most qp_depth outstanding WRs; the ninth post
      // would have to wait for serialization, never queue-build beyond.
      EXPECT_LE(bed.network.port(0).outstanding(1, 0), 2u);
    }
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

// ------------------------------------------------------------- RDMA ops ---

TEST(Ib, RdmaWriteLandsAndCompletesBothSides) {
  IbBed bed(2);
  const std::size_t size = 64 * 1024;
  std::vector<std::byte> sink(size);
  IbMr sink_mr;
  bed.simulator.spawn("target", [&] {
    sink_mr = bed.network.port(1).register_memory(sink);
    const IbCompletion c = bed.network.port(1).wait_cq(0);
    EXPECT_EQ(c.kind, IbCompletion::Kind::kWriteImm);
    EXPECT_EQ(c.imm, 42u);
    EXPECT_EQ(c.bytes, size);
    EXPECT_TRUE(verify_pattern(sink, 5));
    bed.network.port(1).deregister(sink_mr);
  });
  bed.simulator.spawn("writer", [&] {
    bed.simulator.advance(sim::microseconds(100));  // after registration
    const auto payload = make_pattern_buffer(size, 5);
    const std::uint64_t wr = bed.network.port(0).post_rdma_write(
        1, 0, payload, sink_mr.key, /*roffset=*/0, /*imm=*/42);
    const IbCompletion c = bed.network.port(0).wait_cq(0);
    EXPECT_EQ(c.kind, IbCompletion::Kind::kRdmaWrite);
    EXPECT_EQ(c.wr_id, wr);
    EXPECT_TRUE(c.ok);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Ib, RdmaWriteHonorsRegionOffset) {
  IbBed bed(2);
  std::vector<std::byte> region(8192);
  IbMr mr;
  bed.simulator.spawn("target", [&] {
    mr = bed.network.port(1).register_memory(region);
    (void)bed.network.port(1).wait_cq(0);
    EXPECT_TRUE(verify_pattern(
        std::span<const std::byte>(region).subspan(4096, 1024), 6));
  });
  bed.simulator.spawn("writer", [&] {
    bed.simulator.advance(sim::microseconds(100));
    bed.network.port(0).post_rdma_write(1, 0, make_pattern_buffer(1024, 6),
                                        mr.key, /*roffset=*/4096,
                                        /*imm=*/1);
    (void)bed.network.port(0).wait_cq(0);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Ib, RdmaReadPullsTheRemoteRegion) {
  IbBed bed(2);
  const std::size_t size = 48 * 1024;
  const auto source = make_pattern_buffer(size, 7);
  IbMr source_mr;
  bed.simulator.spawn("target", [&] {
    source_mr = bed.network.port(1).register_memory(source);
    // One-sided: the target CPU never runs for the read itself.
  });
  bed.simulator.spawn("reader", [&] {
    bed.simulator.advance(sim::microseconds(100));
    std::vector<std::byte> landing(size);
    const std::uint64_t wr = bed.network.port(0).post_rdma_read(
        1, 0, landing, source_mr.key, /*roffset=*/0);
    const IbCompletion c = bed.network.port(0).wait_cq(0);
    EXPECT_EQ(c.kind, IbCompletion::Kind::kRdmaRead);
    EXPECT_EQ(c.wr_id, wr);
    EXPECT_TRUE(c.ok);
    EXPECT_TRUE(verify_pattern(landing, 7));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

// ------------------------------------------------- registration costs ---

TEST(Ib, RegistrationChargesBasePlusPerPage) {
  IbBed bed(1);
  std::vector<std::byte> small(4096);
  std::vector<std::byte> large(4096 * 64);
  sim::Duration small_cost = 0;
  sim::Duration large_cost = 0;
  bed.simulator.spawn("f", [&] {
    const sim::Time t0 = bed.simulator.now();
    const IbMr h1 = bed.network.port(0).register_memory(small);
    small_cost = bed.simulator.now() - t0;
    const sim::Time t1 = bed.simulator.now();
    const IbMr h2 = bed.network.port(0).register_memory(large);
    large_cost = bed.simulator.now() - t1;
    bed.network.port(0).deregister(h1);
    bed.network.port(0).deregister(h2);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  // 30us base + 3us/page: 1 page vs 64 pages.
  EXPECT_NEAR(to_us(small_cost), 33.0, 1.0);
  EXPECT_NEAR(to_us(large_cost - small_cost), 3.0 * 63, 2.0);
}

TEST(Ib, PinnedMemoryCountersTrackRegistration) {
  IbBed bed(1);
  std::vector<std::byte> buffer(10000);
  bed.simulator.spawn("f", [&] {
    const IbMr mr = bed.network.port(0).register_memory(buffer);
    EXPECT_EQ(bed.nodes[0]->mem().pinned_bytes, 10000u);
    EXPECT_EQ(bed.nodes[0]->mem().reg_count, 1u);
    EXPECT_EQ(bed.nodes[0]->mem().dereg_count, 0u);
    bed.network.port(0).deregister(mr);
    EXPECT_EQ(bed.nodes[0]->mem().pinned_bytes, 0u);
    EXPECT_EQ(bed.nodes[0]->mem().dereg_count, 1u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

// ---------------------------------------------------- registration cache ---

TEST(IbRegCache, RepeatedAcquireHitsWithoutReRegistering) {
  IbBed bed(1);
  std::vector<std::byte> buffer(16 * 1024);
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    const IbMr a = cache.acquire(buffer.data(), buffer.size());
    cache.release(a);
    const IbMr b = cache.acquire(buffer.data(), buffer.size());
    cache.release(b);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    // The pin persisted across release: exactly one registration.
    EXPECT_EQ(bed.nodes[0]->mem().reg_count, 1u);
    EXPECT_EQ(bed.nodes[0]->mem().dereg_count, 0u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbRegCache, SubRangeOfACachedRegionHits) {
  IbBed bed(1);
  std::vector<std::byte> buffer(16 * 1024);
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    const IbMr whole = cache.acquire(buffer.data(), buffer.size());
    cache.release(whole);
    const IbMr part = cache.acquire(buffer.data() + 4096, 2048);
    cache.release(part);
    EXPECT_EQ(part.key, whole.key);
    EXPECT_EQ(cache.stats().hits, 1u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbRegCache, OverlappingAndAdjacentRegionsCoalesce) {
  IbBed bed(1);
  std::vector<std::byte> buffer(32 * 1024);
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    // [0, 8k) then the overlapping [4k, 16k): one merged entry pinning
    // the union [0, 16k).
    cache.release(cache.acquire(buffer.data(), 8192));
    cache.release(cache.acquire(buffer.data() + 4096, 12288));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().merges, 1u);
    // Adjacent [16k, 24k) also coalesces (no gap, no overlap).
    cache.release(cache.acquire(buffer.data() + 16384, 8192));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().merges, 2u);
    // The union now covers everything: a spanning request is a pure hit.
    const IbMr all = cache.acquire(buffer.data(), 24576);
    cache.release(all);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(all.bytes, 24576u);
    // Merging deregistered the absorbed pins: one live registration.
    EXPECT_EQ(bed.nodes[0]->mem().reg_count,
              bed.nodes[0]->mem().dereg_count + 1);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbRegCache, DisjointRegionsDoNotCoalesce) {
  IbBed bed(1);
  std::vector<std::byte> buffer(32 * 1024);
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    cache.release(cache.acquire(buffer.data(), 4096));
    cache.release(cache.acquire(buffer.data() + 8192, 4096));  // gap at 4k
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().merges, 0u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbRegCache, EvictsLeastRecentlyUsed) {
  IbParams params = IbParams::mellanox_like();
  params.regcache_capacity = 2;
  IbBed bed(1, params);
  std::vector<std::byte> a(4096);
  std::vector<std::byte> b(4096);
  std::vector<std::byte> c(4096);
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    cache.release(cache.acquire(a.data(), a.size()));
    cache.release(cache.acquire(b.data(), b.size()));
    // Touch `a` so `b` is the least recently used entry.
    cache.release(cache.acquire(a.data(), a.size()));
    EXPECT_EQ(cache.stats().hits, 1u);
    // Capacity 2: inserting `c` must evict `b`, not `a`.
    cache.release(cache.acquire(c.data(), c.size()));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
    cache.release(cache.acquire(a.data(), a.size()));
    EXPECT_EQ(cache.stats().hits, 2u);  // survived
    cache.release(cache.acquire(b.data(), b.size()));
    EXPECT_EQ(cache.stats().misses, 4u);  // evicted: re-registered
    // Evictions pay the deregistration cost.
    EXPECT_GT(bed.nodes[0]->mem().dereg_count, 0u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbRegCache, InvalidateUnpinsOverlappingEntries) {
  IbBed bed(1);
  std::vector<std::byte> buffer(16 * 1024);
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    cache.release(cache.acquire(buffer.data(), 8192));
    cache.release(cache.acquire(buffer.data() + 12288, 4096));
    EXPECT_EQ(cache.size(), 2u);
    // Freeing the first half must drop only the overlapping pin.
    cache.invalidate(buffer.data(), 8192);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().invalidations, 1u);
    // The freed range re-registers on next use.
    cache.release(cache.acquire(buffer.data(), 8192));
    EXPECT_EQ(cache.stats().misses, 3u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbRegCache, CapacityZeroRegistersEveryTime) {
  IbParams params = IbParams::mellanox_like();
  params.regcache_capacity = 0;
  IbBed bed(1, params);
  std::vector<std::byte> buffer(4096);
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    for (int i = 0; i < 3; ++i) {
      const IbMr mr = cache.acquire(buffer.data(), buffer.size());
      cache.release(mr);
    }
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.size(), 0u);
    // Uncached: every acquire registers, every release deregisters.
    EXPECT_EQ(bed.nodes[0]->mem().reg_count, 3u);
    EXPECT_EQ(bed.nodes[0]->mem().dereg_count, 3u);
    EXPECT_EQ(bed.nodes[0]->mem().pinned_bytes, 0u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbRegCache, ReferencedEntriesAreNotMergedAway) {
  IbBed bed(1);
  std::vector<std::byte> buffer(32 * 1024);
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    // Hold both registrations, as a TM does while the rkeys are advertised
    // to a peer. The second region abuts the first, but merging would
    // deregister `a` mid-flight — the adjacent regions must coexist.
    const IbMr a = cache.acquire(buffer.data(), 8192);
    const IbMr b = cache.acquire(buffer.data() + 8192, 8192);
    EXPECT_NE(a.key, b.key);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().merges, 0u);
    EXPECT_EQ(bed.nodes[0]->mem().dereg_count, 0u);
    cache.release(a);
    cache.release(b);
    // Idle again: a spanning acquire coalesces both into one union pin.
    const IbMr all = cache.acquire(buffer.data(), 16384);
    cache.release(all);
    EXPECT_EQ(cache.stats().merges, 2u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(all.bytes, 16384u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbRegCache, ReferencedEntriesAreNotEvicted) {
  IbParams params = IbParams::mellanox_like();
  params.regcache_capacity = 1;
  IbBed bed(1, params);
  std::vector<std::byte> buffer(64 * 1024);  // gaps keep the regions apart
  std::byte* const a_ptr = buffer.data();
  std::byte* const b_ptr = buffer.data() + 16384;
  std::byte* const c_ptr = buffer.data() + 32768;
  bed.simulator.spawn("f", [&] {
    IbRegCache& cache = bed.network.port(0).reg_cache();
    const IbMr a = cache.acquire(a_ptr, 4096);
    // `a` is still referenced, so inserting `b` cannot evict it even at
    // capacity 1: the cache temporarily exceeds capacity instead.
    const IbMr b = cache.acquire(b_ptr, 4096);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(bed.nodes[0]->mem().dereg_count, 0u);
    cache.release(a);
    // Now `a` is the only idle entry: inserting `c` evicts it, and only
    // it (`b` is still in use).
    const IbMr c = cache.acquire(c_ptr, 4096);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
    cache.release(b);
    cache.release(c);
    // `b` survived the over-capacity episode: still a hit.
    cache.release(cache.acquire(b_ptr, 4096));
    EXPECT_EQ(cache.stats().hits, 1u);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

// -------------------------------------------------------- fault overlay ---

TEST(IbFault, PartitionTripsTheGiveUpTimerAndPoisonsTheLink) {
  IbParams params = IbParams::mellanox_like();
  params.op_timeout = sim::microseconds(500);
  FaultPlan plan(/*seed=*/3);
  plan.partition(0, 1, /*from=*/0);  // never heals
  params.fabric.faults = &plan;
  IbBed bed(2, params);
  int handler_calls = 0;
  Status handler_status;
  bed.network.set_link_error_handler(
      [&](std::uint32_t, std::uint32_t, const Status& status) {
        ++handler_calls;
        handler_status = status;
      });
  std::vector<std::byte> sink(4096);
  IbMr mr;
  bed.simulator.spawn("target", [&] {
    mr = bed.network.port(1).register_memory(sink);
  });
  bed.simulator.spawn("writer", [&] {
    bed.simulator.advance(sim::microseconds(100));
    const auto payload = make_pattern_buffer(4096, 9);
    const std::uint64_t wr =
        bed.network.port(0).post_rdma_write(1, 0, payload, mr.key, 0);
    const IbCompletion c = bed.network.port(0).wait_cq(0);
    EXPECT_EQ(c.wr_id, wr);
    EXPECT_FALSE(c.ok);  // flushed in error by the give-up timer
    EXPECT_FALSE(bed.network.port(0).link_status(1).is_ok());
    // Work toward the dead peer now fails immediately.
    const std::uint64_t wr2 = bed.network.port(0).post_send(
        1, 0, payload, /*imm=*/0, /*signaled=*/true);
    const IbCompletion c2 = bed.network.port(0).wait_cq(0);
    EXPECT_EQ(c2.wr_id, wr2);
    EXPECT_FALSE(c2.ok);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_EQ(handler_calls, 1);  // both directions poisoned, one report
  EXPECT_EQ(handler_status.code(), ErrorCode::kUnavailable);
}

TEST(IbFault, ExplicitFailLinkFlushesOutstandingWork) {
  IbBed bed(2);
  std::vector<std::byte> sink(64 * 1024);
  IbMr mr;
  bed.simulator.spawn("target", [&] {
    mr = bed.network.port(1).register_memory(sink);
  });
  bed.simulator.spawn("writer", [&] {
    bed.simulator.advance(sim::microseconds(100));
    const auto payload = make_pattern_buffer(64 * 1024, 4);
    bed.network.port(0).post_rdma_write(1, 0, payload, mr.key, 0);
    const IbCompletion c = bed.network.port(0).wait_cq(0);
    EXPECT_FALSE(c.ok);
  });
  bed.simulator.spawn_daemon("killer", [&] {
    bed.simulator.advance(sim::microseconds(110));
    bed.network.fail_link(0, 1, unavailable("cable pulled"));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(IbFault, CorruptionOverlayFlipsPayloadBytes) {
  IbParams params = IbParams::mellanox_like();
  FaultPlan plan(/*seed=*/17);
  LinkFaults faults;
  faults.corrupt_rate = 1.0;  // every packet loses a byte
  plan.set_default_faults(faults);
  params.fabric.faults = &plan;
  IbBed bed(2, params);
  std::vector<std::byte> sink(4096);
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv(0, 0, sink);
    const IbCompletion c = bed.network.port(1).wait_cq(0);
    EXPECT_EQ(c.bytes, 4096u);
    // The HCA has no end-to-end checksum in this model: the corrupt
    // payload lands silently — exactly what the overlay is for.
    EXPECT_FALSE(verify_pattern(sink, 11));
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(5));
    bed.network.port(0).post_send(1, 0, make_pattern_buffer(4096, 11));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

}  // namespace
}  // namespace mad2::net
