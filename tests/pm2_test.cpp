// Tests for the mini-PM2 RPC runtime: synchronous/asynchronous/one-way
// calls, thread-per-request semantics, nested RPCs, and dispatch under
// concurrency.
#include <gtest/gtest.h>

#include <cstring>

#include "pm2/pm2.hpp"
#include "util/bytes.hpp"

namespace mad2::pm2 {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::NodeRuntime;
using mad::Session;
using mad::SessionConfig;

SessionConfig pm2_config(NetworkKind kind, std::size_t nodes = 2) {
  SessionConfig config;
  config.node_count = nodes;
  NetworkDef net;
  net.name = "net0";
  net.kind = kind;
  for (std::uint32_t i = 0; i < nodes; ++i) net.nodes.push_back(i);
  config.networks.push_back(net);
  config.channels.push_back(ChannelDef{"pm2", "net0"});
  return config;
}

std::vector<std::byte> to_bytes(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

std::uint64_t from_bytes(std::span<const std::byte> bytes) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data(), 8);
  return v;
}

TEST(Pm2, SynchronousRpcReturnsTheReply) {
  Session session(pm2_config(NetworkKind::kSisci));
  Pm2World world(session, "pm2");
  world.node(1).register_service(
      1, [](std::uint32_t, std::span<const std::byte> argument) {
        return to_bytes(from_bytes(argument) * 3);
      });
  session.spawn(0, "caller", [&](NodeRuntime&) {
    const auto reply = world.node(0).rpc(1, 1, to_bytes(14));
    EXPECT_EQ(from_bytes(reply), 42u);
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(Pm2, AsyncRpcsOverlap) {
  Session session(pm2_config(NetworkKind::kBip, 3));
  Pm2World world(session, "pm2");
  for (std::uint32_t worker : {1u, 2u}) {
    world.node(worker).register_service(
        1, [&, worker](std::uint32_t, std::span<const std::byte> argument) {
          // Unequal compute times: the caller still gets both replies
          // concurrently, not serially.
          session.simulator().advance(sim::milliseconds(worker));
          return to_bytes(from_bytes(argument) + worker);
        });
  }
  session.spawn(0, "caller", [&](NodeRuntime& rt) {
    const sim::Time start = rt.simulator().now();
    RpcFuture f1 = world.node(0).async_rpc(1, 1, to_bytes(100));
    RpcFuture f2 = world.node(0).async_rpc(2, 1, to_bytes(200));
    EXPECT_EQ(from_bytes(world.node(0).wait(f2)), 202u);
    EXPECT_EQ(from_bytes(world.node(0).wait(f1)), 101u);
    // Total must be close to the slower call, not the sum (overlap).
    const double elapsed_ms =
        sim::to_us(rt.simulator().now() - start) / 1000.0;
    EXPECT_LT(elapsed_ms, 2.8);
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(Pm2, QuickRpcIsFireAndForget) {
  Session session(pm2_config(NetworkKind::kSisci));
  Pm2World world(session, "pm2");
  int hits = 0;
  world.node(1).register_service(
      9, [&](std::uint32_t src, std::span<const std::byte>) {
        EXPECT_EQ(src, 0u);
        ++hits;
        return std::vector<std::byte>{};
      });
  session.spawn(0, "caller", [&](NodeRuntime& rt) {
    for (int i = 0; i < 5; ++i) world.node(0).quick_rpc(1, 9, {});
    rt.simulator().advance(sim::milliseconds(1));
    rt.simulator().stop();
  });
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_EQ(hits, 5);
}

TEST(Pm2, ServicesRunConcurrentlyPerRequest) {
  Session session(pm2_config(NetworkKind::kSisci));
  Pm2World world(session, "pm2");
  int in_flight = 0;
  int max_in_flight = 0;
  world.node(1).register_service(
      1, [&](std::uint32_t, std::span<const std::byte>) {
        ++in_flight;
        max_in_flight = std::max(max_in_flight, in_flight);
        session.simulator().advance(sim::milliseconds(1));
        --in_flight;
        return std::vector<std::byte>{};
      });
  session.spawn(0, "caller", [&](NodeRuntime&) {
    RpcFuture f1 = world.node(0).async_rpc(1, 1, {});
    RpcFuture f2 = world.node(0).async_rpc(1, 1, {});
    RpcFuture f3 = world.node(0).async_rpc(1, 1, {});
    world.node(0).wait(f1);
    world.node(0).wait(f2);
    world.node(0).wait(f3);
  });
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_GE(max_in_flight, 2);  // thread-per-request, not serialized
}

TEST(Pm2, NestedRpcsWork) {
  // Service on node 1 calls a service on node 2 to compose the answer.
  Session session(pm2_config(NetworkKind::kBip, 3));
  Pm2World world(session, "pm2");
  world.node(2).register_service(
      2, [](std::uint32_t, std::span<const std::byte> argument) {
        return to_bytes(from_bytes(argument) + 1);
      });
  world.node(1).register_service(
      1, [&](std::uint32_t, std::span<const std::byte> argument) {
        const auto inner = world.node(1).rpc(2, 2, argument);
        return to_bytes(from_bytes(inner) * 2);
      });
  session.spawn(0, "caller", [&](NodeRuntime&) {
    const auto reply = world.node(0).rpc(1, 1, to_bytes(20));
    EXPECT_EQ(from_bytes(reply), 42u);  // (20 + 1) * 2
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(Pm2, LargeArgumentsAndRepliesRideTheBulkPath) {
  Session session(pm2_config(NetworkKind::kBip));
  Pm2World world(session, "pm2");
  const std::size_t size = 500000;
  world.node(1).register_service(
      1, [&](std::uint32_t, std::span<const std::byte> argument) {
        EXPECT_TRUE(verify_pattern(argument, 5));
        return make_pattern_buffer(size, 6);
      });
  session.spawn(0, "caller", [&](NodeRuntime&) {
    const auto reply = world.node(0).rpc(1, 1, make_pattern_buffer(size, 5));
    EXPECT_EQ(reply.size(), size);
    EXPECT_TRUE(verify_pattern(reply, 6));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(Pm2, BidirectionalCallsBetweenTwoNodes) {
  Session session(pm2_config(NetworkKind::kSisci));
  Pm2World world(session, "pm2");
  for (std::uint32_t n : {0u, 1u}) {
    world.node(n).register_service(
        1, [n](std::uint32_t, std::span<const std::byte> argument) {
          return to_bytes(from_bytes(argument) + 10 * (n + 1));
        });
  }
  int done = 0;
  for (std::uint32_t n : {0u, 1u}) {
    session.spawn(n, "caller" + std::to_string(n), [&, n](NodeRuntime&) {
      const std::uint32_t other = 1 - n;
      const auto reply = world.node(n).rpc(other, 1, to_bytes(n));
      EXPECT_EQ(from_bytes(reply), n + 10 * (other + 1));
      ++done;
    });
  }
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_EQ(done, 2);
}

TEST(Pm2, UnregisteredServiceAborts) {
  Session session(pm2_config(NetworkKind::kSisci));
  Pm2World world(session, "pm2");
  session.spawn(0, "caller", [&](NodeRuntime&) {
    (void)world.node(0).rpc(1, 77, {});
  });
  EXPECT_DEATH({ (void)session.run(); }, "unregistered service");
}

}  // namespace
}  // namespace mad2::pm2
