// Tests for the hardware models: chunked resource arbitration, priority,
// turnaround penalties, and node cost accounting.
#include <gtest/gtest.h>

#include "hw/node.hpp"
#include "hw/resource.hpp"
#include "sim/simulator.hpp"
#include "testbed.hpp"

namespace mad2::hw {
namespace {

using sim::from_us;
using sim::microseconds;
using sim::to_us;

ChunkedResource::Params basic_params() {
  ChunkedResource::Params p;
  p.name = "bus";
  p.chunk_bytes = 4096;
  return p;
}

TEST(ChunkedResource, SingleTransferTimeMatchesBandwidth) {
  sim::Simulator simulator;
  ChunkedResource bus(&simulator, basic_params());
  sim::Time end = 0;
  simulator.spawn("f", [&] {
    bus.transfer(100 * 4096, 100.0, TxClass::kDma, 1);
    end = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // 409600 B at 100 MB/s = 4096 us.
  EXPECT_NEAR(to_us(end), 4096.0, 1.0);
  EXPECT_EQ(bus.bytes_transferred(), 100u * 4096u);
}

TEST(ChunkedResource, ZeroBytesIsFree) {
  sim::Simulator simulator;
  ChunkedResource bus(&simulator, basic_params());
  simulator.spawn("f", [&] {
    bus.transfer(0, 100.0, TxClass::kDma, 1);
    EXPECT_EQ(simulator.now(), 0);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(bus.busy_time(), 0);
}

TEST(ChunkedResource, ConcurrentStreamsShareFairlyWithoutPriority) {
  sim::Simulator simulator;
  ChunkedResource bus(&simulator, basic_params());
  sim::Time end_a = 0;
  sim::Time end_b = 0;
  const std::uint64_t bytes = 50 * 4096;
  simulator.spawn("a", [&] {
    bus.transfer(bytes, 100.0, TxClass::kDma, 1);
    end_a = simulator.now();
  });
  simulator.spawn("b", [&] {
    bus.transfer(bytes, 100.0, TxClass::kDma, 2);
    end_b = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // Both finish around the serialized total (each got ~half bandwidth).
  const double total_us = to_us(std::max(end_a, end_b));
  EXPECT_NEAR(total_us, 4096.0, 50.0);
  // Interleaving means the two completions are close together.
  EXPECT_LT(to_us(std::max(end_a, end_b) - std::min(end_a, end_b)), 100.0);
}

TEST(ChunkedResource, TurnaroundPenaltyChargedOnInitiatorChange) {
  sim::Simulator simulator;
  auto params = basic_params();
  params.turnaround_factor = 0.5;
  ChunkedResource bus(&simulator, params);
  sim::Time end = 0;
  simulator.spawn("a", [&] {
    // Same initiator: only the first chunk has no predecessor; no
    // turnaround anywhere.
    bus.transfer(10 * 4096, 100.0, TxClass::kDma, 1);
    end = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_NEAR(to_us(end), 409.6, 1.0);

  // Now alternate initiators: every chunk but the first pays the
  // fractional burst-breaking penalty.
  sim::Simulator simulator2;
  ChunkedResource bus2(&simulator2, params);
  sim::Time end2 = 0;
  simulator2.spawn("a", [&] {
    for (int i = 0; i < 5; ++i) {
      bus2.transfer(4096, 100.0, TxClass::kDma, 1);
      bus2.transfer(4096, 100.0, TxClass::kDma, 2);
    }
    end2 = simulator2.now();
  });
  ASSERT_TRUE(simulator2.run().is_ok());
  // 10 chunks, 9 initiator changes at +50% of 40.96 us each.
  EXPECT_NEAR(to_us(end2), 409.6 + 9 * 20.48, 1.0);
}

TEST(ChunkedResource, TurnaroundPenaltyIsProportionalToChunkSize) {
  // Tiny transactions (doorbells, flag writes) must not pay a bulk-sized
  // penalty when the bus alternates between masters.
  sim::Simulator simulator;
  auto params = basic_params();
  params.turnaround_factor = 0.5;
  ChunkedResource bus(&simulator, params);
  sim::Time end = 0;
  simulator.spawn("a", [&] {
    for (int i = 0; i < 10; ++i) {
      bus.transfer(16, 100.0, TxClass::kDma, i % 2);
    }
    end = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_LT(to_us(end), 3.0);  // ~0.16 us/chunk * 1.5 * 10
}

TEST(ChunkedResource, ConcurrentDmaSlowsPioByAboutTwo) {
  // The Section 6.2.3 effect: per-packet DMA traffic and a PIO stream
  // alternate at chunk granularity, roughly doubling the PIO stream's
  // transfer time (it is slowed, not starved: the forwarding pipeline
  // must still make progress).
  sim::Simulator simulator;
  auto params = basic_params();
  params.strict_priority = true;
  ChunkedResource bus(&simulator, params);
  sim::Time pio_end = 0;
  simulator.spawn("dma", [&] {
    for (int i = 0; i < 20; ++i) {
      bus.transfer(4096, 100.0, TxClass::kDma, 1);
    }
  });
  simulator.spawn("pio", [&] {
    bus.transfer(4 * 4096, 100.0, TxClass::kPio, 2);
    pio_end = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // Solo: 4 chunks = ~164 us. Contended: roughly doubled.
  EXPECT_GT(to_us(pio_end), 250.0);
  EXPECT_LT(to_us(pio_end), 500.0);
}

TEST(ChunkedResource, DmaBurstHoldsBusAgainstPioUnderStrictPriority) {
  sim::Simulator simulator;
  auto params = basic_params();
  params.strict_priority = true;
  ChunkedResource bus(&simulator, params);
  sim::Time dma_end = 0;
  sim::Time pio_end = 0;
  // One multi-chunk DMA burst vs one multi-chunk PIO transfer: the DMA
  // burst keeps its continuous bus request asserted and completes first.
  simulator.spawn("dma", [&] {
    bus.transfer(10 * 4096, 100.0, TxClass::kDma, 1);
    dma_end = simulator.now();
  });
  simulator.spawn("pio", [&] {
    bus.transfer(10 * 4096, 100.0, TxClass::kPio, 2);
    pio_end = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_NEAR(to_us(dma_end), 10 * 40.96, 50.0);
  EXPECT_NEAR(to_us(pio_end), 20 * 40.96, 50.0);

  // Without strict priority the two bursts interleave and finish together.
  sim::Simulator simulator2;
  ChunkedResource bus2(&simulator2, basic_params());
  sim::Time dma_end2 = 0;
  simulator2.spawn("dma", [&] {
    bus2.transfer(10 * 4096, 100.0, TxClass::kDma, 1);
    dma_end2 = simulator2.now();
  });
  simulator2.spawn("pio", [&] {
    bus2.transfer(10 * 4096, 100.0, TxClass::kPio, 2);
  });
  ASSERT_TRUE(simulator2.run().is_ok());
  EXPECT_GT(to_us(dma_end2), 19 * 40.96 - 50.0);
}

TEST(ChunkedResource, WithoutPriorityPioIsNotStarved) {
  sim::Simulator simulator;
  ChunkedResource bus(&simulator, basic_params());
  sim::Time pio_end = 0;
  simulator.spawn("dma", [&] {
    for (int i = 0; i < 20; ++i) bus.transfer(4096, 100.0, TxClass::kDma, 1);
  });
  simulator.spawn("pio", [&] {
    bus.transfer(4 * 4096, 100.0, TxClass::kPio, 2);
    pio_end = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // PIO finishes near the time its own chunks plus fair interleave allow,
  // far earlier than the full DMA stream.
  EXPECT_LT(to_us(pio_end), 500.0);
}

TEST(ChunkedResource, BusyTimeAccumulates) {
  sim::Simulator simulator;
  ChunkedResource bus(&simulator, basic_params());
  simulator.spawn("f", [&] { bus.transfer(8192, 100.0, TxClass::kDma, 1); });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_NEAR(to_us(bus.busy_time()), 81.92, 0.5);
}

TEST(Node, MemcpyChargesHostBandwidth) {
  Testbed bed(1);
  sim::Time end = 0;
  bed.simulator.spawn("f", [&] {
    bed.nodes[0]->charge_memcpy(180 * 1000 * 1000 / 100);  // 1/100 s worth
    end = bed.simulator.now();
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_NEAR(to_us(end), 10000.0, 10.0);
}

TEST(Node, InitiatorIdsAreDistinct) {
  Testbed bed(2);
  EXPECT_NE(bed.nodes[0]->cpu_initiator_id(),
            bed.nodes[0]->nic_initiator_id(0));
  EXPECT_NE(bed.nodes[0]->nic_initiator_id(0),
            bed.nodes[0]->nic_initiator_id(1));
  EXPECT_NE(bed.nodes[0]->cpu_initiator_id(),
            bed.nodes[1]->cpu_initiator_id());
}

TEST(Node, PciBusHasStrictPriority) {
  Testbed bed(1);
  EXPECT_TRUE(bed.nodes[0]->pci_bus().params().strict_priority);
}

}  // namespace
}  // namespace mad2::hw
