// Tests for the SISCI/SCI driver: segments, ordered PIO remote writes,
// polling, the slow DMA engine, and calibration (raw PIO latency ~2 us,
// PIO bandwidth ~85 MB/s, DMA <= 38 MB/s).
#include <gtest/gtest.h>

#include "net/sisci.hpp"
#include "sim/time.hpp"
#include "testbed.hpp"
#include "util/bytes.hpp"

namespace mad2::net {
namespace {

using sim::to_us;

struct SciBed : Testbed {
  explicit SciBed(int n)
      : Testbed(n),
        network(&simulator, node_ptrs(), SciParams::dolphin_d310()) {}
  SciNetwork network;
};

TEST(Sisci, SegmentMemoryIsZeroInitialized) {
  SciBed bed(1);
  bed.simulator.spawn("f", [&] {
    const SegmentId seg = bed.network.port(0).create_segment(128);
    auto memory = bed.network.port(0).segment_memory(seg);
    ASSERT_EQ(memory.size(), 128u);
    for (std::byte b : memory) EXPECT_EQ(b, std::byte{0});
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Sisci, PioWriteBecomesVisibleRemotely) {
  SciBed bed(2);
  SegmentId seg = 0;
  const auto payload = make_pattern_buffer(1024, 5);
  bed.simulator.spawn("receiver", [&] {
    seg = bed.network.port(1).create_segment(2048);
    auto memory = bed.network.port(1).segment_memory(seg);
    bed.network.port(1).wait_segment(
        seg, [&] { return memory[1024 + 1023] != std::byte{0} ||
                          verify_pattern(memory.subspan(1024, 1024), 5); });
    EXPECT_TRUE(verify_pattern(memory.subspan(1024, 1024), 5));
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(10));  // let the segment exist
    auto remote = bed.network.port(0).connect(1, seg);
    bed.network.port(0).pio_write(remote, 1024, payload);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Sisci, SmallPioLatencyIsAboutTwoMicroseconds) {
  SciBed bed(2);
  SegmentId seg = 0;
  sim::Time sent_at = 0;
  sim::Time seen_at = 0;
  bed.simulator.spawn("receiver", [&] {
    seg = bed.network.port(1).create_segment(64);
    auto memory = bed.network.port(1).segment_memory(seg);
    bed.network.port(1).wait_segment(
        seg, [&] { return memory[0] != std::byte{0}; });
    seen_at = bed.simulator.now();
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(10));
    auto remote = bed.network.port(0).connect(1, seg);
    std::vector<std::byte> flag{std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}};
    sent_at = bed.simulator.now();
    bed.network.port(0).pio_write(remote, 0, flag);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  const double one_way = to_us(seen_at - sent_at);
  EXPECT_GT(one_way, 1.0);
  EXPECT_LT(one_way, 3.5);
}

TEST(Sisci, PioWritesToOneRemoteArriveInOrder) {
  SciBed bed(2);
  SegmentId seg = 0;
  bed.simulator.spawn("receiver", [&] {
    seg = bed.network.port(1).create_segment(8192 + 4);
    auto memory = bed.network.port(1).segment_memory(seg);
    // The flag is written after the data; if ordering holds, data is
    // complete whenever the flag is set.
    bed.network.port(1).wait_segment(
        seg, [&] { return memory[8192] != std::byte{0}; });
    EXPECT_TRUE(verify_pattern(memory.subspan(0, 8192), 7));
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(10));
    auto remote = bed.network.port(0).connect(1, seg);
    const auto payload = make_pattern_buffer(8192, 7);
    bed.network.port(0).pio_write(remote, 0, payload);
    std::vector<std::byte> flag{std::byte{1}};
    bed.network.port(0).pio_write(remote, 8192, flag);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

double measure_write_bandwidth(bool dma, std::size_t size) {
  SciBed bed(2);
  SegmentId seg = 0;
  sim::Time start = 0;
  sim::Time end = 0;
  bed.simulator.spawn("receiver", [&] {
    seg = bed.network.port(1).create_segment(size + 4);
    auto memory = bed.network.port(1).segment_memory(seg);
    bed.network.port(1).wait_segment(
        seg, [&] { return memory[size] != std::byte{0}; });
    end = bed.simulator.now();
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(10));
    auto remote = bed.network.port(0).connect(1, seg);
    const auto payload = make_pattern_buffer(size, 8);
    start = bed.simulator.now();
    if (dma) {
      bed.network.port(0).dma_write(remote, 0, payload);
    } else {
      bed.network.port(0).pio_write(remote, 0, payload);
    }
    std::vector<std::byte> flag{std::byte{1}};
    if (dma) {
      bed.network.port(0).dma_write(remote, size, flag);
    } else {
      bed.network.port(0).pio_write(remote, size, flag);
    }
  });
  EXPECT_TRUE(bed.simulator.run().is_ok());
  return sim::bandwidth_mbs(size, end - start);
}

TEST(Sisci, PioBandwidthIsAbout85MBs) {
  const double mbs = measure_write_bandwidth(/*dma=*/false, 2 * 1024 * 1024);
  EXPECT_GT(mbs, 75.0);
  EXPECT_LT(mbs, 90.0);
}

TEST(Sisci, DmaEngineIsPoor) {
  const double mbs = measure_write_bandwidth(/*dma=*/true, 2 * 1024 * 1024);
  // Paper: could not get more than 35 MB/s out of the D310 DMA.
  EXPECT_GT(mbs, 25.0);
  EXPECT_LT(mbs, 40.0);
}

TEST(Sisci, WritesFromTwoSendersLandInDistinctRegions) {
  SciBed bed(3);
  SegmentId seg = 0;
  bed.simulator.spawn("receiver", [&] {
    seg = bed.network.port(2).create_segment(2 * 4096 + 8);
    auto memory = bed.network.port(2).segment_memory(seg);
    bed.network.port(2).wait_segment(seg, [&] {
      return memory[2 * 4096] != std::byte{0} &&
             memory[2 * 4096 + 1] != std::byte{0};
    });
    EXPECT_TRUE(verify_pattern(memory.subspan(0, 4096), 100));
    EXPECT_TRUE(verify_pattern(memory.subspan(4096, 4096), 200));
  });
  for (int who = 0; who < 2; ++who) {
    bed.simulator.spawn("sender" + std::to_string(who), [&, who] {
      bed.simulator.advance(sim::microseconds(10));
      auto remote = bed.network.port(who).connect(2, seg);
      const auto payload = make_pattern_buffer(4096, 100 * (who + 1));
      bed.network.port(who).pio_write(remote, 4096 * who, payload);
      std::vector<std::byte> flag{std::byte{1}};
      bed.network.port(who).pio_write(remote, 2 * 4096 + who, flag);
    });
  }
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Sisci, OutOfBoundsRemoteWriteAborts) {
  SciBed bed(2);
  SegmentId seg = 0;
  bed.simulator.spawn("receiver", [&]{
    seg = bed.network.port(1).create_segment(16);
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(10));
    auto remote = bed.network.port(0).connect(1, seg);
    const auto payload = make_pattern_buffer(64, 1);
    bed.network.port(0).pio_write(remote, 0, payload);
  });
  EXPECT_DEATH({ (void)bed.simulator.run(); }, "out of segment bounds");
}

}  // namespace
}  // namespace mad2::net
