// Tests for the discrete-event simulator core: fibers, virtual time,
// blocking/waking, timeouts, and the synchronization primitives — plus
// madcheck schedule-exploration cases asserting the order-independent
// invariants of the sync primitives across hundreds of interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/explore.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace mad2::sim {
namespace {

TEST(Simulator, RunsSingleFiberToCompletion) {
  Simulator simulator;
  bool ran = false;
  simulator.spawn("f", [&] { ran = true; });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_TRUE(ran);
  EXPECT_EQ(simulator.live_fiber_count(), 0u);
}

TEST(Simulator, AdvanceMovesVirtualTime) {
  Simulator simulator;
  Time end = -1;
  simulator.spawn("f", [&] {
    simulator.advance(microseconds(5));
    simulator.advance(microseconds(7));
    end = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(end, microseconds(12));
}

TEST(Simulator, FibersInterleaveDeterministically) {
  Simulator simulator;
  std::vector<int> order;
  simulator.spawn("a", [&] {
    order.push_back(1);
    simulator.advance(microseconds(10));
    order.push_back(3);
  });
  simulator.spawn("b", [&] {
    order.push_back(2);
    simulator.advance(microseconds(5));
    order.push_back(4);  // runs at t=5, before a's t=10 resume
    simulator.advance(microseconds(10));
    order.push_back(5);  // t=15
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3, 5}));
}

TEST(Simulator, YieldIsFairAtSameTimestamp) {
  Simulator simulator;
  std::vector<int> order;
  simulator.spawn("a", [&] {
    order.push_back(1);
    simulator.yield_fiber();
    order.push_back(3);
  });
  simulator.spawn("b", [&] { order.push_back(2); });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, BlockAndWake) {
  Simulator simulator;
  Fiber* sleeper = nullptr;
  Time woke_at = -1;
  sleeper = simulator.spawn("sleeper", [&] {
    const bool timed_out = simulator.block_current();
    EXPECT_FALSE(timed_out);
    woke_at = simulator.now();
  });
  simulator.spawn("waker", [&] {
    simulator.advance(microseconds(42));
    simulator.wake(sleeper);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(woke_at, microseconds(42));
}

TEST(Simulator, BlockWithDeadlineTimesOut) {
  Simulator simulator;
  bool timed_out = false;
  Time woke_at = -1;
  simulator.spawn("sleeper", [&] {
    timed_out = simulator.block_current(microseconds(100));
    woke_at = simulator.now();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(woke_at, microseconds(100));
}

TEST(Simulator, WakeBeforeDeadlineCancelsTimeout) {
  Simulator simulator;
  bool timed_out = true;
  Fiber* sleeper = simulator.spawn("sleeper", [&] {
    timed_out = simulator.block_current(microseconds(100));
  });
  simulator.spawn("waker", [&] {
    simulator.advance(microseconds(10));
    simulator.wake(sleeper);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_FALSE(timed_out);
}

TEST(Simulator, StaleTimeoutDoesNotReWakeLaterBlock) {
  Simulator simulator;
  Fiber* sleeper = nullptr;
  int wakes = 0;
  sleeper = simulator.spawn("sleeper", [&] {
    // First block with a deadline, woken early.
    EXPECT_FALSE(simulator.block_current(microseconds(100)));
    ++wakes;
    // Second block without deadline; the stale first deadline event must
    // not wake it.
    EXPECT_FALSE(simulator.block_current());
    ++wakes;
  });
  simulator.spawn("waker", [&] {
    simulator.advance(microseconds(10));
    simulator.wake(sleeper);
    simulator.advance(microseconds(500));
    simulator.wake(sleeper);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(wakes, 2);
}

TEST(Simulator, DeadlockIsReported) {
  Simulator simulator;
  simulator.spawn("stuck", [&] { simulator.block_current(); });
  const Status status = simulator.run();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("stuck"), std::string::npos);
}

TEST(Simulator, BlockedDaemonsAreNotADeadlock) {
  Simulator simulator;
  simulator.spawn_daemon("server", [&] { simulator.block_current(); });
  simulator.spawn("client", [&] { simulator.advance(microseconds(1)); });
  EXPECT_TRUE(simulator.run().is_ok());
}

TEST(Simulator, PostedCallbacksRunAtTheirTime) {
  Simulator simulator;
  std::vector<Time> fired;
  simulator.spawn("f", [&] {
    simulator.post_after(microseconds(30), [&] {
      fired.push_back(simulator.now());
    });
    simulator.post_after(microseconds(10), [&] {
      fired.push_back(simulator.now());
    });
    simulator.advance(microseconds(50));
  });
  ASSERT_TRUE(simulator.run().is_ok());
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], microseconds(10));
  EXPECT_EQ(fired[1], microseconds(30));
}

TEST(Simulator, StopAbortsTheRun) {
  Simulator simulator;
  int steps = 0;
  simulator.spawn("looper", [&] {
    for (;;) {
      ++steps;
      if (steps == 5) simulator.stop();
      simulator.advance(microseconds(1));
    }
  });
  // stop() means "ended by request", not a deadlock.
  EXPECT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(steps, 5);
}

// ---------------------------------------------------------------- Sync ---

TEST(Sync, MutexProvidesExclusionAcrossBlocking) {
  Simulator simulator;
  Mutex mutex(&simulator);
  std::vector<int> order;
  simulator.spawn("a", [&] {
    LockGuard lock(mutex);
    order.push_back(1);
    simulator.advance(microseconds(10));  // holds the lock across a block
    order.push_back(2);
  });
  simulator.spawn("b", [&] {
    LockGuard lock(mutex);
    order.push_back(3);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Sync, TryLockFailsWhenHeld) {
  Simulator simulator;
  Mutex mutex(&simulator);
  simulator.spawn("a", [&] {
    ASSERT_TRUE(mutex.try_lock());
    EXPECT_FALSE(mutex.try_lock());
    mutex.unlock();
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
  });
  ASSERT_TRUE(simulator.run().is_ok());
}

TEST(Sync, CondVarWaitAndNotify) {
  Simulator simulator;
  Mutex mutex(&simulator);
  CondVar cond(&simulator);
  bool flag = false;
  Time observed = -1;
  simulator.spawn("waiter", [&] {
    LockGuard lock(mutex);
    while (!flag) cond.wait(mutex);
    observed = simulator.now();
  });
  simulator.spawn("setter", [&] {
    simulator.advance(microseconds(25));
    LockGuard lock(mutex);
    flag = true;
    cond.notify_one();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(observed, microseconds(25));
}

TEST(Sync, CondVarWaitUntilTimesOut) {
  Simulator simulator;
  Mutex mutex(&simulator);
  CondVar cond(&simulator);
  bool timed_out = false;
  simulator.spawn("waiter", [&] {
    LockGuard lock(mutex);
    timed_out = cond.wait_until(mutex, microseconds(40));
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_TRUE(timed_out);
}

TEST(Sync, SemaphoreBlocksAtZero) {
  Simulator simulator;
  Semaphore semaphore(&simulator, 2);
  std::vector<int> order;
  simulator.spawn("consumer", [&] {
    semaphore.acquire();
    semaphore.acquire();
    order.push_back(1);
    semaphore.acquire();  // blocks until release
    order.push_back(3);
  });
  simulator.spawn("producer", [&] {
    simulator.advance(microseconds(5));
    order.push_back(2);
    semaphore.release();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Sync, SemaphoreTryAcquire) {
  Simulator simulator;
  Semaphore semaphore(&simulator, 1);
  simulator.spawn("f", [&] {
    EXPECT_TRUE(semaphore.try_acquire());
    EXPECT_FALSE(semaphore.try_acquire());
    semaphore.release(3);
    EXPECT_EQ(semaphore.available(), 3u);
  });
  ASSERT_TRUE(simulator.run().is_ok());
}

TEST(Sync, BarrierReleasesAllPartiesTogether) {
  Simulator simulator;
  Barrier barrier(&simulator, 3);
  std::vector<Time> arrival;
  for (int i = 0; i < 3; ++i) {
    simulator.spawn("p" + std::to_string(i), [&, i] {
      simulator.advance(microseconds(10 * (i + 1)));
      barrier.arrive_and_wait();
      arrival.push_back(simulator.now());
    });
  }
  ASSERT_TRUE(simulator.run().is_ok());
  ASSERT_EQ(arrival.size(), 3u);
  for (Time t : arrival) EXPECT_EQ(t, microseconds(30));
}

TEST(Sync, BarrierIsReusable) {
  Simulator simulator;
  Barrier barrier(&simulator, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    simulator.spawn("p" + std::to_string(i), [&, i] {
      for (int round = 0; round < 3; ++round) {
        simulator.advance(microseconds(i + 1));
        barrier.arrive_and_wait();
      }
      ++rounds_done;
    });
  }
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(rounds_done, 2);
}

TEST(Sync, BoundedChannelPassesValuesInOrder) {
  Simulator simulator;
  BoundedChannel<int> channel(&simulator, 2);
  std::vector<int> received;
  simulator.spawn("producer", [&] {
    for (int i = 0; i < 5; ++i) channel.send(i);
    channel.close();
  });
  simulator.spawn("consumer", [&] {
    while (auto v = channel.receive()) received.push_back(*v);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sync, BoundedChannelBlocksProducerWhenFull) {
  Simulator simulator;
  BoundedChannel<int> channel(&simulator, 1);
  Time producer_done = -1;
  simulator.spawn("producer", [&] {
    channel.send(1);
    channel.send(2);  // blocks until the consumer drains one
    producer_done = simulator.now();
  });
  simulator.spawn("consumer", [&] {
    simulator.advance(microseconds(50));
    EXPECT_TRUE(channel.receive().has_value());
    EXPECT_TRUE(channel.receive().has_value());
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(producer_done, microseconds(50));
}

TEST(Sync, TrySendAndTryReceive) {
  Simulator simulator;
  BoundedChannel<int> channel(&simulator, 1);
  simulator.spawn("f", [&] {
    EXPECT_FALSE(channel.try_receive().has_value());
    EXPECT_TRUE(channel.try_send(7));
    EXPECT_FALSE(channel.try_send(8));  // full
    auto v = channel.try_receive();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
  });
  ASSERT_TRUE(simulator.run().is_ok());
}

// Regression suite for the timed-wait contract (see the block_current()
// comment in simulator.hpp). The woke_by_timeout_ machinery is easy to
// get subtly wrong; these pin the intended semantics.

TEST(TimeoutSemantics, DeadlineBeatsNotifyAtTheSameTimestamp) {
  // The deadline event is scheduled when the wait begins, so at a tied
  // timestamp it has the lower sequence number and runs first; by the time
  // the racing notify executes, the waiter is already deregistered.
  Simulator simulator;
  WaitQueue queue(&simulator);
  bool timed_out = false;
  bool notify_found_waiter = true;
  simulator.spawn("waiter", [&] {
    timed_out = queue.wait(microseconds(10));
  });
  simulator.spawn("notifier", [&] {
    simulator.advance(microseconds(10));
    notify_found_waiter = queue.notify_one();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_TRUE(timed_out);
  EXPECT_FALSE(notify_found_waiter);
}

TEST(TimeoutSemantics, NotifyStrictlyBeforeDeadlineWins) {
  Simulator simulator;
  WaitQueue queue(&simulator);
  bool timed_out = true;
  sim::Time woke_at = 0;
  simulator.spawn("waiter", [&] {
    timed_out = queue.wait(microseconds(10));
    woke_at = simulator.now();
  });
  simulator.spawn("notifier", [&] {
    simulator.advance(microseconds(9));
    EXPECT_TRUE(queue.notify_one());
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(woke_at, microseconds(9));
}

TEST(TimeoutSemantics, TimedOutWaiterLeavesTheQueue) {
  // A timeout must deregister the waiter: a later notify_one may not
  // target it, and waiter_count drops back to zero.
  Simulator simulator;
  WaitQueue queue(&simulator);
  simulator.spawn("waiter", [&] {
    EXPECT_TRUE(queue.wait(microseconds(5)));
    EXPECT_EQ(queue.waiter_count(), 0u);
    // Step past the racing notify tick before re-waiting (re-registering
    // at the tied timestamp would legitimately absorb the notify); then
    // park again: a stale registration would have consumed the notify and
    // this second episode would hang instead of timing out.
    simulator.advance(microseconds(2));
    EXPECT_TRUE(queue.wait(microseconds(20)));
    EXPECT_EQ(simulator.now(), microseconds(20));
  });
  simulator.spawn("notifier", [&] {
    simulator.advance(microseconds(5));
    // Tied with the waiter's timeout: deadline wins, queue is empty.
    EXPECT_FALSE(queue.notify_one());
  });
  ASSERT_TRUE(simulator.run().is_ok());
}

TEST(TimeoutSemantics, TimeoutFlagResetsBetweenEpisodes) {
  // woke_by_timeout_ describes only the *latest* episode: a timed-out
  // wait followed by a notified wait reports true then false.
  Simulator simulator;
  WaitQueue queue(&simulator);
  std::vector<bool> outcomes;
  simulator.spawn("waiter", [&] {
    outcomes.push_back(queue.wait(microseconds(5)));    // times out
    outcomes.push_back(queue.wait(microseconds(100)));  // notified
    outcomes.push_back(queue.wait(microseconds(15)));   // times out again
  });
  simulator.spawn("notifier", [&] {
    simulator.advance(microseconds(8));
    EXPECT_TRUE(queue.notify_one());
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(outcomes, (std::vector<bool>{true, false, true}));
}

TEST(TimeoutSemantics, NotifiedReturnDoesNotImplyThePredicate) {
  // The rule every block_current()/wait() caller must follow: false means
  // "woken", not "your condition holds". A fiber woken by an unrelated
  // notify must re-check and re-block, and the deadline of the *retry*
  // still works.
  Simulator simulator;
  WaitQueue queue(&simulator);
  bool ready = false;
  int wakeups = 0;
  bool gave_up = false;
  simulator.spawn("waiter", [&] {
    while (!ready) {
      if (queue.wait(microseconds(30))) {
        gave_up = true;  // deadline hit before the predicate held
        return;
      }
      ++wakeups;
    }
  });
  simulator.spawn("poker", [&] {
    simulator.advance(microseconds(5));
    queue.notify_one();  // spurious: predicate still false
    simulator.advance(microseconds(5));
    ready = true;        // now it holds
    queue.notify_one();
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_FALSE(gave_up);
  EXPECT_EQ(wakeups, 2);  // one spurious, one real
}

// Regression suite for the WaitQueue/wake_generation_ contract: every
// blocking episode is its own generation, so events armed for an episode
// that already ended (stale deadlines) are no-ops forever after.

TEST(WakeGeneration, NotifiedAndReblockedFiberIgnoresTheOldDeadline) {
  // wait(deadline=100), notified at t=10, immediately re-blocked without a
  // deadline: when the *old* deadline event fires at t=100 it must not
  // spuriously wake the new episode — only the second notify at t=500 may.
  Simulator simulator;
  WaitQueue queue(&simulator);
  std::vector<Time> wake_times;
  simulator.spawn("waiter", [&] {
    EXPECT_FALSE(queue.wait(microseconds(100)));  // notified at t=10
    wake_times.push_back(simulator.now());
    EXPECT_FALSE(queue.wait());  // must sleep through the stale t=100 event
    wake_times.push_back(simulator.now());
  });
  simulator.spawn("notifier", [&] {
    simulator.advance(microseconds(10));
    EXPECT_TRUE(queue.notify_one());
    simulator.advance(microseconds(490));
    EXPECT_TRUE(queue.notify_one());
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(wake_times,
            (std::vector<Time>{microseconds(10), microseconds(500)}));
}

TEST(WakeGeneration, ReblockedFibersOwnDeadlineStillFires) {
  // Same shape, but the second episode has its own deadline: the stale
  // t=100 event is skipped, and the fresh t=200 deadline fires normally.
  Simulator simulator;
  WaitQueue queue(&simulator);
  bool second_timed_out = false;
  Time second_woke_at = 0;
  simulator.spawn("waiter", [&] {
    EXPECT_FALSE(queue.wait(microseconds(100)));
    second_timed_out = queue.wait(microseconds(200));
    second_woke_at = simulator.now();
    EXPECT_EQ(queue.waiter_count(), 0u);  // the timeout deregistered us
  });
  simulator.spawn("notifier", [&] {
    simulator.advance(microseconds(10));
    EXPECT_TRUE(queue.notify_one());
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_TRUE(second_timed_out);
  EXPECT_EQ(second_woke_at, microseconds(200));
}

// ---------------------------------------------------------- exploration ---
//
// madcheck cases: the sync primitives promise their invariants for EVERY
// legal interleaving of same-time fibers, not just the FIFO one — so each
// body is re-run across 200+ schedules (see sim/explore.hpp). On failure
// gtest prints the shrunk decision trace; replay it with MAD2_SCHEDULE.

TEST(Explore, ProducerConsumerDeliversEverythingUnderAnySchedule) {
  const auto body = []() -> Status {
    Simulator simulator;
    BoundedChannel<int> channel(&simulator, 2);
    std::map<int, int> received;
    for (int p = 0; p < 3; ++p) {
      simulator.spawn("producer" + std::to_string(p), [&, p] {
        for (int i = 0; i < 4; ++i) channel.send(p * 100 + i);
      });
    }
    int producers_pending = 12;
    for (int c = 0; c < 2; ++c) {
      simulator.spawn("consumer" + std::to_string(c), [&] {
        while (producers_pending > 0) {
          auto value = channel.try_receive();
          if (value.has_value()) {
            ++received[*value];
            --producers_pending;
          } else {
            simulator.yield_fiber();
          }
        }
      });
    }
    const Status run = simulator.run();
    if (!run.is_ok()) return run;
    if (received.size() != 12) {
      return internal_error("lost or duplicated items: " +
                            std::to_string(received.size()) + "/12 keys");
    }
    for (const auto& [value, count] : received) {
      if (count != 1) {
        return internal_error("value " + std::to_string(value) +
                              " delivered " + std::to_string(count) +
                              " times");
      }
    }
    return Status::ok();
  };
  ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const ExploreResult result = explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(Explore, MutexAndCondVarInvariantsHoldUnderAnySchedule) {
  const auto body = []() -> Status {
    Simulator simulator;
    Mutex mutex(&simulator);
    CondVar cond(&simulator);
    int inside = 0;       // fibers inside the critical section
    int max_inside = 0;
    int turn = 0;         // round-robin baton passed via the condvar
    for (int f = 0; f < 4; ++f) {
      simulator.spawn("f" + std::to_string(f), [&, f] {
        LockGuard lock(mutex);
        while (turn != f) cond.wait(mutex);
        ++inside;
        max_inside = std::max(max_inside, inside);
        simulator.advance(microseconds(3));  // hold across a block
        --inside;
        ++turn;
        cond.notify_all();
      });
    }
    const Status run = simulator.run();
    if (!run.is_ok()) return run;
    if (max_inside != 1) {
      return internal_error("mutual exclusion violated: " +
                            std::to_string(max_inside) + " holders");
    }
    if (turn != 4) {
      return internal_error("baton stopped at " + std::to_string(turn));
    }
    return Status::ok();
  };
  ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const ExploreResult result = explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(Explore, BarrierAndSemaphoreHoldUnderAnySchedule) {
  const auto body = []() -> Status {
    Simulator simulator;
    Barrier barrier(&simulator, 3);
    Semaphore tokens(&simulator, 2);  // at most 2 fibers in the "resource"
    int in_resource = 0;
    int max_in_resource = 0;
    int through = 0;
    for (int f = 0; f < 3; ++f) {
      simulator.spawn("w" + std::to_string(f), [&] {
        for (int round = 0; round < 2; ++round) {
          tokens.acquire();
          ++in_resource;
          max_in_resource = std::max(max_in_resource, in_resource);
          simulator.yield_fiber();
          --in_resource;
          tokens.release();
          barrier.arrive_and_wait();
        }
        ++through;
      });
    }
    const Status run = simulator.run();
    if (!run.is_ok()) return run;
    if (max_in_resource > 2) {
      return internal_error("semaphore admitted " +
                            std::to_string(max_in_resource));
    }
    if (through != 3) {
      return internal_error("only " + std::to_string(through) +
                            " fibers finished");
    }
    return Status::ok();
  };
  ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const ExploreResult result = explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

}  // namespace
}  // namespace mad2::sim
