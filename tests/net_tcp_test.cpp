// Tests for the TCP/Fast-Ethernet driver: stream semantics, multiplexed
// stream ids, flow control, and calibration (latency ~75 us, ~11.5 MB/s).
#include <gtest/gtest.h>

#include <algorithm>

#include "net/tcp.hpp"
#include "sim/time.hpp"
#include "testbed.hpp"
#include "util/bytes.hpp"

namespace mad2::net {
namespace {

using sim::to_us;

struct TcpBed : Testbed {
  explicit TcpBed(int n)
      : Testbed(n),
        network(&simulator, node_ptrs(), TcpParams::fast_ethernet()) {}
  TcpNetwork network;
};

TEST(Tcp, StreamRoundTripsBytes) {
  TcpBed bed(2);
  const auto payload = make_pattern_buffer(10000, 1);
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).stream(1).send(payload);
  });
  bed.simulator.spawn("receiver", [&] {
    std::vector<std::byte> out(10000);
    bed.network.port(1).stream(0).recv(out);
    EXPECT_TRUE(verify_pattern(out, 1));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Tcp, SmallMessageLatencyIsTensOfMicroseconds) {
  TcpBed bed(2);
  sim::Time arrival = 0;
  bed.simulator.spawn("sender", [&] {
    std::vector<std::byte> m(4, std::byte{1});
    bed.network.port(0).stream(1).send(m);
  });
  bed.simulator.spawn("receiver", [&] {
    std::vector<std::byte> out(4);
    bed.network.port(1).stream(0).recv(out);
    arrival = bed.simulator.now();
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_GT(to_us(arrival), 50.0);
  EXPECT_LT(to_us(arrival), 110.0);
}

TEST(Tcp, BandwidthIsFastEthernetClass) {
  TcpBed bed(2);
  const std::size_t size = 2 * 1024 * 1024;
  const auto payload = make_pattern_buffer(size, 2);
  sim::Time end = 0;
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).stream(1).send(payload);
  });
  bed.simulator.spawn("receiver", [&] {
    std::vector<std::byte> out(size);
    bed.network.port(1).stream(0).recv(out);
    end = bed.simulator.now();
    EXPECT_TRUE(verify_pattern(out, 2));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  const double mbs = sim::bandwidth_mbs(size, end);
  EXPECT_GT(mbs, 10.0);
  EXPECT_LT(mbs, 12.5);
}

TEST(Tcp, StreamIdsAreIndependent) {
  TcpBed bed(2);
  bed.simulator.spawn("sender", [&] {
    std::vector<std::byte> a{std::byte{1}};
    std::vector<std::byte> b{std::byte{2}};
    bed.network.port(0).stream(1, 0).send(a);
    bed.network.port(0).stream(1, 1).send(b);
  });
  bed.simulator.spawn("receiver", [&] {
    std::vector<std::byte> out(1);
    bed.network.port(1).stream(0, 1).recv(out);
    EXPECT_EQ(out[0], std::byte{2});
    bed.network.port(1).stream(0, 0).recv(out);
    EXPECT_EQ(out[0], std::byte{1});
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Tcp, RecvSomeReturnsPartialData) {
  TcpBed bed(2);
  bed.simulator.spawn("sender", [&] {
    std::vector<std::byte> m(100, std::byte{7});
    bed.network.port(0).stream(1).send(m);
  });
  bed.simulator.spawn("receiver", [&] {
    std::vector<std::byte> out(1000);
    auto& stream = bed.network.port(1).stream(0);
    std::size_t total = 0;
    while (total < 100) {
      total += stream.recv_some(std::span(out).subspan(total));
    }
    EXPECT_EQ(total, 100u);
    for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], std::byte{7});
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Tcp, SendBlocksOnFullSocketBufferUntilReceiverDrains) {
  TcpBed bed(2);
  const std::size_t big = 512 * 1024;  // far beyond the 64 kB socket buffer
  const auto payload = make_pattern_buffer(big, 3);
  sim::Time send_done = 0;
  sim::Time recv_done = 0;
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).stream(1).send(payload);
    send_done = bed.simulator.now();
  });
  bed.simulator.spawn("receiver", [&] {
    bed.simulator.advance(sim::milliseconds(5));  // drain late
    std::vector<std::byte> out(big);
    bed.network.port(1).stream(0).recv(out);
    recv_done = bed.simulator.now();
    EXPECT_TRUE(verify_pattern(out, 3));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_GT(send_done, sim::milliseconds(4));  // was throttled
  EXPECT_GT(recv_done, send_done);
}

TEST(Tcp, DirectSendWaitsForInFlightPendingFlush) {
  // Regression: a flush_pending() parked mid-batch on socket-buffer room
  // must finish its whole span before a racing direct send() may start
  // copying, or the two writers refill the drained buffer in alternating
  // mss-sized chunks and corrupt the stream's byte order.
  TcpBed bed(2);
  const std::size_t batch = 100 * 1024;  // beyond the 64 kB socket buffer
  const std::size_t direct = 8 * 1024;
  const auto staged = make_pattern_buffer(batch, 1);
  const auto block = make_pattern_buffer(direct, 2);
  bed.simulator.spawn("tick", [&] {
    auto& stream = bed.network.port(0).stream(1);
    stream.send_deferred(staged);
    stream.flush_pending();  // parks once tx fills; pending_ already swapped
  });
  bed.simulator.spawn("app", [&] {
    // 2 ms: past the staging memcpy and the initial 64 kB fill, but well
    // before the flush finishes draining at wire speed (~4.3 ms) — the
    // flush is parked with pending_ empty, so a pre-fix send() saw
    // nothing to flush and walked straight into enqueue_tx.
    bed.simulator.advance(sim::milliseconds(2));
    bed.network.port(0).stream(1).send(block);
  });
  bed.simulator.spawn("receiver", [&] {
    bed.simulator.advance(sim::milliseconds(2));  // both writers parked
    std::vector<std::byte> out(batch + direct);
    bed.network.port(1).stream(0).recv(out);
    EXPECT_TRUE(
        std::equal(out.begin(), out.begin() + batch, staged.begin()));
    EXPECT_TRUE(std::equal(out.begin() + batch, out.end(), block.begin()));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Tcp, WaitReadableAndReadableAgree) {
  TcpBed bed(2);
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(500));
    std::vector<std::byte> m{std::byte{5}};
    bed.network.port(0).stream(1).send(m);
  });
  bed.simulator.spawn("receiver", [&] {
    auto& stream = bed.network.port(1).stream(0);
    EXPECT_FALSE(stream.readable());
    stream.wait_readable();
    EXPECT_TRUE(stream.readable());
    std::vector<std::byte> out(1);
    stream.recv(out);
    EXPECT_FALSE(stream.readable());
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Tcp, ConcurrentBidirectionalStreams) {
  TcpBed bed(2);
  const std::size_t size = 100 * 1024;
  int done = 0;
  for (int me = 0; me < 2; ++me) {
    bed.simulator.spawn("peer" + std::to_string(me), [&, me] {
      const std::uint32_t other = 1 - me;
      const auto payload = make_pattern_buffer(size, 10 + me);
      // Each peer sends on one fiber...
      bed.network.port(me).stream(other).send(payload);
      ++done;
    });
    bed.simulator.spawn("peer_rx" + std::to_string(me), [&, me] {
      const std::uint32_t other = 1 - me;
      std::vector<std::byte> out(size);
      bed.network.port(me).stream(other).recv(out);
      EXPECT_TRUE(verify_pattern(out, 10 + other));
      ++done;
    });
  }
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_EQ(done, 4);
}

}  // namespace
}  // namespace mad2::net
