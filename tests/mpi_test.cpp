// Tests for the mini-MPI layer: ch_mad point-to-point semantics (matching,
// wildcards, unexpected messages, nonblocking ops), collectives, and the
// two SISCI baselines used in Figure 6.
#include <gtest/gtest.h>

#include "mpi/ch_mad.hpp"
#include "mpi/sci_baselines.hpp"
#include "util/bytes.hpp"

namespace mad2::mpi {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::NodeRuntime;
using mad::Session;
using mad::SessionConfig;

SessionConfig mpi_config(NetworkKind kind, std::size_t nodes) {
  SessionConfig config;
  config.node_count = nodes;
  NetworkDef net;
  net.name = "net0";
  net.kind = kind;
  for (std::uint32_t i = 0; i < nodes; ++i) net.nodes.push_back(i);
  config.networks.push_back(net);
  config.channels.push_back(ChannelDef{"mpi", "net0"});
  return config;
}

TEST(ChMad, SendRecvRoundTrip) {
  Session session(mpi_config(NetworkKind::kBip, 2));
  ChMadWorld world(session, "mpi");
  const std::size_t size = 100000;
  session.spawn(0, "r0", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(size, 1);
    world.comm(0).send(payload, 1, 42);
  });
  session.spawn(1, "r1", [&](NodeRuntime&) {
    std::vector<std::byte> out(size);
    const RecvStatus status = world.comm(1).recv(out, 0, 42);
    EXPECT_EQ(status.source, 0);
    EXPECT_EQ(status.tag, 42);
    EXPECT_EQ(status.bytes, size);
    EXPECT_TRUE(verify_pattern(out, 1));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(ChMad, TagMatchingReordersDelivery) {
  Session session(mpi_config(NetworkKind::kSisci, 2));
  ChMadWorld world(session, "mpi");
  session.spawn(0, "r0", [&](NodeRuntime&) {
    auto a = make_pattern_buffer(1000, 1);
    auto b = make_pattern_buffer(2000, 2);
    world.comm(0).send(a, 1, 10);
    world.comm(0).send(b, 1, 20);
  });
  session.spawn(1, "r1", [&](NodeRuntime&) {
    // Receive tag 20 first: the tag-10 message must wait in the
    // unexpected queue.
    std::vector<std::byte> b(2000);
    world.comm(1).recv(b, 0, 20);
    EXPECT_TRUE(verify_pattern(b, 2));
    std::vector<std::byte> a(1000);
    world.comm(1).recv(a, 0, 10);
    EXPECT_TRUE(verify_pattern(a, 1));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(ChMad, AnySourceAndAnyTagWildcardsMatch) {
  Session session(mpi_config(NetworkKind::kBip, 3));
  ChMadWorld world(session, "mpi");
  session.spawn(2, "r2", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(500, 7);
    world.comm(2).send(payload, 0, 99);
  });
  session.spawn(0, "r0", [&](NodeRuntime&) {
    std::vector<std::byte> out(500);
    const RecvStatus status = world.comm(0).recv(out, kAnySource, kAnyTag);
    EXPECT_EQ(status.source, 2);
    EXPECT_EQ(status.tag, 99);
    EXPECT_TRUE(verify_pattern(out, 7));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST(ChMad, NonblockingOverlapsBothDirections) {
  Session session(mpi_config(NetworkKind::kBip, 2));
  ChMadWorld world(session, "mpi");
  const std::size_t size = 50000;
  for (int me = 0; me < 2; ++me) {
    session.spawn(me, "r" + std::to_string(me), [&, me](NodeRuntime&) {
      const int other = 1 - me;
      auto payload = make_pattern_buffer(size, 10 + me);
      std::vector<std::byte> incoming(size);
      Request rx = world.comm(me).irecv(incoming, other, 5);
      Request tx = world.comm(me).isend(payload, other, 5);
      world.comm(me).wait(rx);
      world.comm(me).wait(tx);
      EXPECT_TRUE(verify_pattern(incoming, 10 + other));
    });
  }
  ASSERT_TRUE(session.run().is_ok());
}

TEST(ChMad, SendrecvExchanges) {
  Session session(mpi_config(NetworkKind::kSisci, 2));
  ChMadWorld world(session, "mpi");
  for (int me = 0; me < 2; ++me) {
    session.spawn(me, "r" + std::to_string(me), [&, me](NodeRuntime&) {
      const int other = 1 - me;
      std::uint64_t mine = 100 + me;
      std::uint64_t theirs = 0;
      world.comm(me).sendrecv(
          std::as_bytes(std::span(&mine, 1)), other, 3,
          std::as_writable_bytes(std::span(&theirs, 1)), other, 3);
      EXPECT_EQ(theirs, 100u + other);
    });
  }
  ASSERT_TRUE(session.run().is_ok());
}

TEST(ChMad, BarrierSynchronizesRanks) {
  Session session(mpi_config(NetworkKind::kBip, 4));
  ChMadWorld world(session, "mpi");
  std::vector<sim::Time> after(4);
  for (int me = 0; me < 4; ++me) {
    session.spawn(me, "r" + std::to_string(me), [&, me](NodeRuntime& rt) {
      rt.simulator().advance(sim::microseconds(10 * (me + 1)));
      world.comm(me).barrier();
      after[me] = rt.simulator().now();
    });
  }
  ASSERT_TRUE(session.run().is_ok());
  for (int me = 0; me < 4; ++me) {
    EXPECT_GE(after[me], sim::microseconds(40));
  }
}

TEST(ChMad, BcastReachesAllRanks) {
  Session session(mpi_config(NetworkKind::kBip, 5));
  ChMadWorld world(session, "mpi");
  for (int me = 0; me < 5; ++me) {
    session.spawn(me, "r" + std::to_string(me), [&, me](NodeRuntime&) {
      std::vector<std::byte> data(10000);
      if (me == 2) fill_pattern(data, 123);
      world.comm(me).bcast(data, /*root=*/2);
      EXPECT_TRUE(verify_pattern(data, 123)) << "rank " << me;
    });
  }
  ASSERT_TRUE(session.run().is_ok());
}

TEST(ChMad, ReduceAndAllreduceSum) {
  Session session(mpi_config(NetworkKind::kSisci, 4));
  ChMadWorld world(session, "mpi");
  for (int me = 0; me < 4; ++me) {
    session.spawn(me, "r" + std::to_string(me), [&, me](NodeRuntime&) {
      std::vector<double> data{static_cast<double>(me),
                               static_cast<double>(me) * 10.0};
      world.comm(me).allreduce_sum(data);
      EXPECT_DOUBLE_EQ(data[0], 6.0);   // 0+1+2+3
      EXPECT_DOUBLE_EQ(data[1], 60.0);
    });
  }
  ASSERT_TRUE(session.run().is_ok());
}

TEST(ChMad, GatherCollectsChunks) {
  Session session(mpi_config(NetworkKind::kBip, 3));
  ChMadWorld world(session, "mpi");
  for (int me = 0; me < 3; ++me) {
    session.spawn(me, "r" + std::to_string(me), [&, me](NodeRuntime&) {
      std::vector<std::byte> chunk(100);
      fill_pattern(chunk, 50 + me);
      std::vector<std::byte> out(me == 0 ? 300 : 0);
      world.comm(me).gather(chunk, out, 0);
      if (me == 0) {
        for (int peer = 0; peer < 3; ++peer) {
          EXPECT_TRUE(verify_pattern(
              std::span<const std::byte>(out).subspan(100 * peer, 100),
              50 + peer));
        }
      }
    });
  }
  ASSERT_TRUE(session.run().is_ok());
}

// ------------------------------------------------------------- baselines ---

struct BaselineCase {
  bool scampi;
};

class SciBaseline : public testing::TestWithParam<bool> {};
INSTANTIATE_TEST_SUITE_P(Both, SciBaseline, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("scampi")
                                             : std::string("scimpich");
                         });

SciBaselineParams baseline_params(bool scampi) {
  return scampi ? SciBaselineParams::scampi_like()
                : SciBaselineParams::scimpich_like();
}

TEST_P(SciBaseline, RoundTripsAcrossSizes) {
  Session session(mpi_config(NetworkKind::kSisci, 2));
  SciBaselineWorld world(*session.network("net0").sci,
                         baseline_params(GetParam()));
  const std::vector<std::size_t> sizes{0, 4, 1000, 8192, 16384, 100000};
  session.spawn(0, "r0", [&](NodeRuntime&) {
    for (std::size_t size : sizes) {
      auto payload = make_pattern_buffer(size, size + 1);
      world.comm(0).send(payload, 1, 7);
    }
  });
  session.spawn(1, "r1", [&](NodeRuntime&) {
    for (std::size_t size : sizes) {
      std::vector<std::byte> out(size);
      const RecvStatus status = world.comm(1).recv(out, 0, 7);
      EXPECT_EQ(status.bytes, size);
      EXPECT_TRUE(verify_pattern(out, size + 1)) << size;
    }
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(SciBaseline, AnySourceWildcardWorks) {
  Session session(mpi_config(NetworkKind::kSisci, 3));
  SciBaselineWorld world(*session.network("net0").sci,
                         baseline_params(GetParam()));
  session.spawn(2, "r2", [&](NodeRuntime&) {
    auto payload = make_pattern_buffer(300, 3);
    world.comm(2).send(payload, 0, 1);
  });
  session.spawn(0, "r0", [&](NodeRuntime&) {
    std::vector<std::byte> out(300);
    const RecvStatus status = world.comm(0).recv(out, kAnySource, kAnyTag);
    EXPECT_EQ(status.source, 2);
    EXPECT_TRUE(verify_pattern(out, 3));
  });
  ASSERT_TRUE(session.run().is_ok());
}

// ---------------------------------------------------- figure 6 orderings ---

double mpi_pingpong_latency_us(Comm& a, Comm& b, mad::Session& session,
                               std::size_t size, int iterations = 10) {
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(0, "ping", [&](NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::vector<std::byte> back(size);
    start = rt.simulator().now();
    for (int i = 0; i < iterations; ++i) {
      a.send(payload, 1, 0);
      a.recv(back, 1, 0);
    }
    end = rt.simulator().now();
  });
  session.spawn(1, "pong", [&](NodeRuntime&) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < iterations; ++i) {
      b.recv(data, 0, 0);
      b.send(data, 0, 0);
    }
  });
  EXPECT_TRUE(session.run().is_ok());
  return sim::to_us(end - start) / (2.0 * iterations);
}

TEST(Figure6, LatencyOrderMatchesThePaper) {
  // Direct SCI MPIs beat MPICH/Madeleine on small-message latency.
  double chmad_lat;
  double scampi_lat;
  double scimpich_lat;
  {
    Session session(mpi_config(NetworkKind::kSisci, 2));
    ChMadWorld world(session, "mpi");
    chmad_lat = mpi_pingpong_latency_us(world.comm(0), world.comm(1),
                                        session, 4);
  }
  {
    Session session(mpi_config(NetworkKind::kSisci, 2));
    SciBaselineWorld world(*session.network("net0").sci,
                           SciBaselineParams::scampi_like());
    scampi_lat = mpi_pingpong_latency_us(world.comm(0), world.comm(1),
                                         session, 4);
  }
  {
    Session session(mpi_config(NetworkKind::kSisci, 2));
    SciBaselineWorld world(*session.network("net0").sci,
                           SciBaselineParams::scimpich_like());
    scimpich_lat = mpi_pingpong_latency_us(world.comm(0), world.comm(1),
                                           session, 4);
  }
  EXPECT_LT(scampi_lat, scimpich_lat);
  EXPECT_LT(scimpich_lat, chmad_lat);
}

TEST(Figure6, ChMadWinsBandwidthAtLargeSizes) {
  // Paper: "our ch_mad module provides the best results for messages of
  // 32 kB and above".
  const std::size_t size = 256 * 1024;
  double chmad_lat;
  double scampi_lat;
  double scimpich_lat;
  {
    Session session(mpi_config(NetworkKind::kSisci, 2));
    ChMadWorld world(session, "mpi");
    chmad_lat = mpi_pingpong_latency_us(world.comm(0), world.comm(1),
                                        session, size, 4);
  }
  {
    Session session(mpi_config(NetworkKind::kSisci, 2));
    SciBaselineWorld world(*session.network("net0").sci,
                           SciBaselineParams::scampi_like());
    scampi_lat = mpi_pingpong_latency_us(world.comm(0), world.comm(1),
                                         session, size, 4);
  }
  {
    Session session(mpi_config(NetworkKind::kSisci, 2));
    SciBaselineWorld world(*session.network("net0").sci,
                           SciBaselineParams::scimpich_like());
    scimpich_lat = mpi_pingpong_latency_us(world.comm(0), world.comm(1),
                                           session, size, 4);
  }
  EXPECT_LT(chmad_lat, scampi_lat);
  EXPECT_LT(scampi_lat, scimpich_lat);
}

}  // namespace
}  // namespace mad2::mpi
