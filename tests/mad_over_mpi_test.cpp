// Tests for the mad-over-MPI port (paper Section 5.3: "Madeleine II has
// also been ported, quite straightforwardly, on top of MPI") and the
// custom-PMM extension point it is built on.
#include <gtest/gtest.h>

#include <memory>

#include "mad/madeleine.hpp"
#include "mpi/pmm_mpi.hpp"
#include "mpi/sci_baselines.hpp"
#include "util/bytes.hpp"

namespace mad2::mpi {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::NodeRuntime;
using mad::Session;
using mad::SessionConfig;

/// A session whose "madompi" channel runs Madeleine over a ScaMPI-like
/// MPI, which itself runs on a raw SCI network of the same nodes.
struct MadOverMpiBed {
  explicit MadOverMpiBed(std::size_t nodes) {
    SessionConfig config;
    config.node_count = nodes;
    // The substrate network the MPI library drives directly.
    NetworkDef sci;
    sci.name = "sci0";
    sci.kind = NetworkKind::kSisci;
    for (std::uint32_t i = 0; i < nodes; ++i) sci.nodes.push_back(i);
    config.networks.push_back(sci);
    // The custom network: Madeleine over that MPI.
    std::vector<std::uint32_t> members(sci.nodes);
    // The world is created lazily on first PMM construction, after the
    // session has built the SCI driver.
    auto world = std::make_shared<std::unique_ptr<SciBaselineWorld>>();
    session_holder = std::make_shared<Session*>(nullptr);
    auto holder = session_holder;
    config.networks.push_back(make_mad_over_mpi_network(
        "madompi", members, [world, holder](std::uint32_t node) -> Comm& {
          if (!*world) {
            *world = std::make_unique<SciBaselineWorld>(
                *(*holder)->network("sci0").sci,
                SciBaselineParams::scampi_like());
          }
          return (*world)->comm(node);
        }));
    config.channels.push_back(ChannelDef{"ch", "madompi"});
    session = std::make_unique<Session>(std::move(config));
    *session_holder = session.get();
  }

  std::shared_ptr<Session*> session_holder;
  std::unique_ptr<Session> session;
};

TEST(MadOverMpi, RoundTripsAcrossSizes) {
  MadOverMpiBed bed(2);
  const std::vector<std::size_t> sizes{1, 100, 4096, 65536, 300000};
  bed.session->spawn(0, "sender", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto payload = make_pattern_buffer(size, size);
      auto& conn = rt.channel("ch").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  bed.session->spawn(1, "receiver", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto& conn = rt.channel("ch").begin_unpacking();
      std::vector<std::byte> out(size);
      conn.unpack(out);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, size)) << size;
    }
  });
  ASSERT_TRUE(bed.session->run().is_ok());
}

TEST(MadOverMpi, Figure1StyleMessagesWork) {
  MadOverMpiBed bed(2);
  bed.session->spawn(0, "sender", [&](NodeRuntime& rt) {
    const std::uint32_t n = 5000;
    auto payload = make_pattern_buffer(n, 3);
    auto& conn = mad_begin_packing(rt.channel("ch"), 1);
    mad_pack_value(conn, n, mad::send_CHEAPER, mad::receive_EXPRESS);
    mad_pack(conn, payload, mad::send_CHEAPER, mad::receive_CHEAPER);
    mad_end_packing(conn);
  });
  bed.session->spawn(1, "receiver", [&](NodeRuntime& rt) {
    auto& conn = mad_begin_unpacking(rt.channel("ch"));
    std::uint32_t n = 0;
    mad_unpack_value(conn, n, mad::send_CHEAPER, mad::receive_EXPRESS);
    ASSERT_EQ(n, 5000u);
    std::vector<std::byte> data(n);
    mad_unpack(conn, data, mad::send_CHEAPER, mad::receive_CHEAPER);
    mad_end_unpacking(conn);
    EXPECT_TRUE(verify_pattern(data, 3));
  });
  ASSERT_TRUE(bed.session->run().is_ok());
}

TEST(MadOverMpi, ThreeNodesDemultiplexBySource) {
  MadOverMpiBed bed(3);
  for (std::uint32_t s : {1u, 2u}) {
    bed.session->spawn(s, "sender" + std::to_string(s),
                       [&, s](NodeRuntime& rt) {
      if (s == 2) rt.simulator().advance(sim::milliseconds(1));
      auto payload = make_pattern_buffer(1000, s);
      auto& conn = rt.channel("ch").begin_packing(0);
      conn.pack(payload);
      conn.end_packing();
    });
  }
  bed.session->spawn(0, "receiver", [&](NodeRuntime& rt) {
    for (int m = 0; m < 2; ++m) {
      auto& conn = rt.channel("ch").begin_unpacking();
      std::vector<std::byte> out(1000);
      conn.unpack(out);
      const std::uint32_t src = conn.remote();
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, src));
    }
  });
  ASSERT_TRUE(bed.session->run().is_ok());
}

TEST(MadOverMpi, SlowerThanNativeSisciButWorks) {
  // The point of native protocol modules (paper Section 1): MPI underneath
  // costs real latency. Compare 4-byte one-way times.
  auto one_way = [](bool over_mpi) {
    std::unique_ptr<MadOverMpiBed> bed;
    std::unique_ptr<Session> native;
    Session* session = nullptr;
    if (over_mpi) {
      bed = std::make_unique<MadOverMpiBed>(2);
      session = bed->session.get();
    } else {
      SessionConfig config;
      config.node_count = 2;
      NetworkDef net;
      net.name = "sci0";
      net.kind = NetworkKind::kSisci;
      net.nodes = {0, 1};
      config.networks.push_back(net);
      config.channels.push_back(ChannelDef{"ch", "sci0"});
      native = std::make_unique<Session>(std::move(config));
      session = native.get();
    }
    const int iterations = 10;
    sim::Time start = 0;
    sim::Time end = 0;
    session->spawn(0, "ping", [&](NodeRuntime& rt) {
      std::uint32_t v = 1;
      start = rt.simulator().now();
      for (int i = 0; i < iterations; ++i) {
        auto& out = rt.channel("ch").begin_packing(1);
        mad_pack_value(out, v);
        out.end_packing();
        auto& in = rt.channel("ch").begin_unpacking();
        mad_unpack_value(in, v);
        in.end_unpacking();
      }
      end = rt.simulator().now();
    });
    session->spawn(1, "pong", [&](NodeRuntime& rt) {
      std::uint32_t v = 0;
      for (int i = 0; i < iterations; ++i) {
        auto& in = rt.channel("ch").begin_unpacking();
        mad_unpack_value(in, v);
        in.end_unpacking();
        auto& out = rt.channel("ch").begin_packing(0);
        mad_pack_value(out, v);
        out.end_packing();
      }
    });
    EXPECT_TRUE(session->run().is_ok());
    return sim::to_us(end - start) / (2.0 * iterations);
  };
  const double native_us = one_way(false);
  const double over_mpi_us = one_way(true);
  EXPECT_GT(over_mpi_us, native_us * 1.3);
}

TEST(MadOverMpi, TwoChannelsOnOneMpiNetworkAbort) {
  SessionConfig config;
  config.node_count = 2;
  NetworkDef sci;
  sci.name = "sci0";
  sci.kind = NetworkKind::kSisci;
  sci.nodes = {0, 1};
  config.networks.push_back(sci);
  config.networks.push_back(make_mad_over_mpi_network(
      "madompi", {0, 1}, [](std::uint32_t) -> Comm& {
        MAD2_CHECK(false, "never reached: config validation fires first");
      }));
  config.channels.push_back(ChannelDef{"a", "madompi"});
  config.channels.push_back(ChannelDef{"b", "madompi"});
  EXPECT_DEATH({ Session session(std::move(config)); },
               "exactly one channel");
}

}  // namespace
}  // namespace mad2::mpi
