// White-box tests for the IB protocol module: eager/rendezvous selection
// at the configurable cutoff, RDMA-write (EXPRESS) vs receiver-driven
// RDMA-read (CHEAPER) rendezvous, credit-window streaming, the
// progress-engine fastpath, pinned-memory metrics, and a >= 200-schedule
// madcheck exploration of the rendezvous handshake including
// mid-rendezvous rail death routed through Session::route_network_failure.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "mad/madeleine.hpp"
#include "net/fault.hpp"
#include "net/ib.hpp"
#include "sim/explore.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {
namespace {

SessionConfig ib_net(std::optional<IbPmmOptions> options = {},
                     std::optional<net::IbParams> params = {}) {
  SessionConfig config;
  config.node_count = 2;
  NetworkDef net;
  net.name = "n";
  net.kind = NetworkKind::kIb;
  net.nodes = {0, 1};
  net.ib_params = params;
  config.networks.push_back(net);
  ChannelDef channel{"ch", "n"};
  channel.ib_options = options;
  config.channels.push_back(channel);
  return config;
}

/// Send one block of each size and return the sender's per-TM stats.
TrafficStats run_blocks(SessionConfig config,
                        const std::vector<std::size_t>& sizes,
                        SendMode smode = send_CHEAPER,
                        ReceiveMode rmode = receive_CHEAPER) {
  Session session(std::move(config));
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto payload = make_pattern_buffer(size, size);
      auto& conn = rt.channel("ch").begin_packing(1);
      conn.pack(payload, smode, rmode);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto& conn = rt.channel("ch").begin_unpacking();
      std::vector<std::byte> out(size);
      conn.unpack(out, smode, rmode);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, size)) << size << " bytes corrupt";
    }
  });
  EXPECT_TRUE(session.run().is_ok());
  return session.endpoint("ch", 0).stats();
}

TEST(PmmIb, SplitsAtTheEagerCutoff) {
  const auto stats =
      run_blocks(ib_net(), {64, 8192, 8193, 1 << 20});
  EXPECT_EQ(stats.sent_by_tm.at("ib-eager").blocks, 2u);  // 64, 8192
  EXPECT_EQ(stats.sent_by_tm.at("ib-read").blocks, 2u);   // the rest
}

TEST(PmmIb, EagerCutoffOverrideIsHonored) {
  IbPmmOptions options;
  options.eager_cutoff = 1024;
  const auto stats = run_blocks(ib_net(options), {1024, 1025});
  EXPECT_EQ(stats.sent_by_tm.at("ib-eager").blocks, 1u);
  EXPECT_EQ(stats.sent_by_tm.at("ib-read").blocks, 1u);
}

TEST(PmmIb, ExpressLandingsUseTheWriteRendezvous) {
  // EXPRESS data must be available when unpack returns, so the sender
  // pushes with RDMA write; CHEAPER landings let the receiver pull with
  // RDMA read whenever it lands the data.
  const auto stats = run_blocks(ib_net(), {100000, 1 << 18},
                                send_CHEAPER, receive_EXPRESS);
  EXPECT_EQ(stats.sent_by_tm.at("ib-write").blocks, 2u);
  EXPECT_EQ(stats.sent_by_tm.count("ib-read"), 0u);
}

TEST(PmmIb, RoundTripsAcrossSizesAndModes) {
  for (ReceiveMode rmode : {receive_CHEAPER, receive_EXPRESS}) {
    const std::vector<std::size_t> sizes = {1,     64,        4096,
                                            8192,  8193,      65536,
                                            100000, (1 << 20) + 13};
    const auto stats = run_blocks(ib_net(), sizes, send_CHEAPER, rmode);
    std::uint64_t blocks = 0;
    for (const auto& [tm, counters] : stats.sent_by_tm) {
      blocks += counters.blocks;
    }
    EXPECT_EQ(blocks, sizes.size());
  }
}

TEST(PmmIb, GroupedBlocksShareOneRendezvous) {
  // Several rendezvous-sized blocks packed back to back coalesce into one
  // buffer group: one RTS/CTS handshake, per-block RDMA.
  Session session(ib_net());
  const std::vector<std::size_t> sizes = {65536, 100000, 32768};
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    std::vector<std::vector<std::byte>> payloads;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      payloads.push_back(make_pattern_buffer(sizes[i], 50 + i));
    }
    auto& conn = rt.channel("ch").begin_packing(1);
    for (const auto& payload : payloads) {
      conn.pack(payload, send_CHEAPER, receive_EXPRESS);
    }
    conn.end_packing();
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch").begin_unpacking();
    std::vector<std::vector<std::byte>> outs;
    for (std::size_t size : sizes) outs.emplace_back(size);
    for (auto& out : outs) {
      conn.unpack(out, send_CHEAPER, receive_EXPRESS);
    }
    conn.end_unpacking();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_TRUE(verify_pattern(outs[i], 50 + i)) << "block " << i;
    }
  });
  EXPECT_TRUE(session.run().is_ok());
}

TEST(PmmIb, AdjacentBlocksInOneGroupKeepTheirPins) {
  // Three 48 KiB blocks cut from one allocation and packed back to back:
  // every block's registration abuts the previous one. The registration
  // cache must keep each pin alive while its rkey is advertised to the
  // peer — merging a referenced entry would deregister an MR backing an
  // in-flight rendezvous and the peer's RDMA op would hit "unknown
  // rkey". Covers both the read (CHEAPER: source blocks adjacent) and
  // write (EXPRESS: landing blocks adjacent too) rendezvous.
  constexpr std::size_t kBlock = 48 * 1024;
  for (ReceiveMode rmode : {receive_CHEAPER, receive_EXPRESS}) {
    Session session(ib_net());
    session.spawn(0, "tx", [&](NodeRuntime& rt) {
      const auto payload = make_pattern_buffer(3 * kBlock, 9);
      auto& conn = rt.channel("ch").begin_packing(1);
      for (std::size_t i = 0; i < 3; ++i) {
        conn.pack(std::span(payload).subspan(i * kBlock, kBlock),
                  send_CHEAPER, rmode);
      }
      conn.end_packing();
    });
    session.spawn(1, "rx", [&](NodeRuntime& rt) {
      std::vector<std::byte> out(3 * kBlock);
      auto& conn = rt.channel("ch").begin_unpacking();
      for (std::size_t i = 0; i < 3; ++i) {
        conn.unpack(std::span(out).subspan(i * kBlock, kBlock),
                    send_CHEAPER, rmode);
      }
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, 9));
    });
    ASSERT_TRUE(session.run().is_ok())
        << (rmode == receive_CHEAPER ? "CHEAPER" : "EXPRESS");
  }
}

TEST(PmmIb, CreditWindowThrottlesButNeverDeadlocks) {
  // Stream far more eager messages than the credit window (= qp_depth)
  // in both directions at once.
  Session session(ib_net());
  const int messages = 200;
  int verified = 0;
  for (int me = 0; me < 2; ++me) {
    session.spawn(me, "tx" + std::to_string(me), [&, me](NodeRuntime& rt) {
      for (int i = 0; i < messages; ++i) {
        std::uint32_t value = i;
        auto& conn = rt.channel("ch").begin_packing(1 - me);
        mad_pack_value(conn, value);
        conn.end_packing();
      }
    });
    session.spawn(me, "rx" + std::to_string(me), [&](NodeRuntime& rt) {
      for (int i = 0; i < messages; ++i) {
        auto& conn = rt.channel("ch").begin_unpacking();
        std::uint32_t value = 0;
        mad_unpack_value(conn, value);
        conn.end_unpacking();
        if (value == static_cast<std::uint32_t>(i)) ++verified;
      }
    });
  }
  ASSERT_TRUE(session.run().is_ok());
  EXPECT_EQ(verified, 2 * messages);
}

TEST(PmmIb, FastPathEngineDrivesTheCompletionQueue) {
  // Under the fastpath stanza the CQ is reaped by a ProgressEngine client
  // instead of a per-endpoint pump fiber; the traffic must be identical
  // and the engine must actually tick.
  SessionConfig config = ib_net();
  config.fastpath = FastPathConfig{};
  Session session(std::move(config));
  const std::vector<std::size_t> sizes = {64, 4096, 65536, 1 << 20};
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto payload = make_pattern_buffer(size, size);
      auto& conn = rt.channel("ch").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      auto& conn = rt.channel("ch").begin_unpacking();
      std::vector<std::byte> out(size);
      conn.unpack(out);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, size));
    }
  });
  ASSERT_TRUE(session.run().is_ok());
  const ProgressEngine* engine = session.progress_engine(1);
  ASSERT_NE(engine, nullptr);
  EXPECT_GT(engine->counters().doorbells, 0u);
  EXPECT_GT(engine->counters().flushes, 0u);
}

TEST(PmmIb, PinnedMemoryAndRegCacheMetricsAreExported) {
  Session session(ib_net());
  session.spawn(0, "tx", [&](NodeRuntime& rt) {
    const auto payload = make_pattern_buffer(1 << 20, 3);
    for (int i = 0; i < 4; ++i) {
      auto& conn = rt.channel("ch").begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
    }
  });
  session.spawn(1, "rx", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(1 << 20);
    for (int i = 0; i < 4; ++i) {
      auto& conn = rt.channel("ch").begin_unpacking();
      conn.unpack(out);
      conn.end_unpacking();
    }
  });
  ASSERT_TRUE(session.run().is_ok());
  // Registration work shows up in TrafficStats like memcpy/allocs do.
  const TrafficStats stats = session.endpoint("ch", 0).stats();
  EXPECT_GT(stats.mem.reg_count, 0u);
  EXPECT_GT(stats.mem.pinned_bytes, 0u);
  obs::MetricsRegistry registry;
  session.export_metrics(registry);
  // The eager pools and the rendezvous landings were pinned.
  EXPECT_GT(registry.value("mem.node0.pinned_bytes"), 0);
  EXPECT_GT(registry.value("mem.node0.regs"), 0);
  EXPECT_GT(registry.value("ib.n:0.send_wrs"), 0);
  EXPECT_GT(registry.value("ib.n:0.cqes"), 0);
  // The same 1 MiB source repeated 4x: the sender's cache must hit.
  EXPECT_GT(registry.value("ib.n:0.regcache.hits"), 0);
}

// ----------------------------------------------------- explored schedules ---

TEST(PmmIb, RendezvousSurvivesExploredSchedules) {
  // madcheck over the full rendezvous handshake: RTS/CTS/completion
  // interleavings with concurrent eager traffic must deliver identical
  // bytes under every explored fiber schedule.
  auto body = []() -> Status {
    Session session(ib_net());
    std::string failure;
    const std::vector<std::size_t> sizes = {64, 100000, 512, 65536};
    session.spawn(0, "tx", [&](NodeRuntime& rt) {
      for (std::size_t size : sizes) {
        auto payload = make_pattern_buffer(size, size);
        auto& conn = rt.channel("ch").begin_packing(1);
        conn.pack(payload);
        conn.end_packing();
      }
    });
    session.spawn(1, "rx", [&](NodeRuntime& rt) {
      for (std::size_t size : sizes) {
        auto& conn = rt.channel("ch").begin_unpacking();
        std::vector<std::byte> out(size);
        conn.unpack(out);
        conn.end_unpacking();
        if (!verify_pattern(out, size)) {
          failure = std::to_string(size) + " bytes corrupt";
        }
      }
    });
    const Status run = session.run();
    if (!run.is_ok()) return run;
    if (!failure.empty()) return internal_error(failure);
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

/// BIP primary + IB secondary rail set whose IB fabric partitions at
/// `at`, with an aggressive give-up so the rail dies mid-rendezvous.
SessionConfig ib_rail_config(net::FaultPlan* plan, sim::Duration timeout) {
  net::IbParams ib = net::IbParams::mellanox_like();
  ib.fabric.faults = plan;
  ib.op_timeout = timeout;
  SessionConfig config;
  config.node_count = 2;
  NetworkDef myri;
  myri.name = "myri0";
  myri.kind = NetworkKind::kBip;
  myri.nodes = {0, 1};
  NetworkDef ibnet;
  ibnet.name = "ib0";
  ibnet.kind = NetworkKind::kIb;
  ibnet.nodes = {0, 1};
  ibnet.ib_params = ib;
  config.networks = {myri, ibnet};
  config.channels = {ChannelDef{"ch0", "myri0"}, ChannelDef{"ch1", "ib0"}};
  config.rail_sets.push_back(RailSetDef{"r", {"ch0", "ch1"}});
  return config;
}

TEST(PmmIb, DeadRailMidRendezvousExploredSchedules) {
  // The IB rail partitions while striped segments rendezvous across it.
  // Under >= 200 explored schedules the give-up timer must kill exactly
  // that rail through Session::route_network_failure (RTS sent / CTS
  // pending / write in flight — every phase appears across schedules),
  // and every byte must land via resubmission on the BIP primary.
  auto body = []() -> Status {
    net::FaultPlan plan(/*seed=*/29);
    plan.partition(0, 1, sim::microseconds(800));
    Session session(ib_rail_config(&plan, sim::microseconds(300)));
    std::string failure;
    const std::vector<std::size_t> sizes(3, 96 * 1024);
    session.spawn(0, "tx", [&](NodeRuntime& rt) {
      std::vector<std::vector<std::byte>> payloads;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        payloads.push_back(make_pattern_buffer(sizes[i], 100 + i));
      }
      auto& conn = rt.channel("ch0").begin_packing(1);
      for (const auto& payload : payloads) conn.pack(payload);
      conn.end_packing();
    });
    session.spawn(1, "rx", [&](NodeRuntime& rt) {
      auto& conn = rt.channel("ch0").begin_unpacking();
      std::vector<std::vector<std::byte>> outs;
      for (std::size_t size : sizes) outs.emplace_back(size);
      for (auto& out : outs) conn.unpack(out);
      conn.end_unpacking();
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        if (!verify_pattern(outs[i], 100 + i)) {
          failure = "block " + std::to_string(i) +
                    " corrupt after IB rail death";
        }
      }
    });
    const Status run = session.run();
    if (!run.is_ok()) return run;
    if (!failure.empty()) return internal_error(failure);
    if (session.rail_set("r").health().is_ok()) {
      return internal_error("partitioned IB rail still healthy");
    }
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(PmmIb, EagerWaitersSurviveLinkDeath) {
  // Link death must unwedge *every* blocked eager fiber, not only the
  // rendezvous waiters: a sender starved of credits and a receiver
  // waiting for a message tail hold no failable work request of their
  // own, so only the poison pass can wake them. The rail set absorbs the
  // network failure (kRail), so a clean run() proves nobody wedged — a
  // stuck fiber would surface as a deadlock report instead.
  net::FaultPlan plan(/*seed=*/31);
  plan.partition(0, 1, sim::microseconds(800));
  SessionConfig config = ib_rail_config(&plan, sim::microseconds(300));
  config.channels.push_back(ChannelDef{"ch2", "ib0"});
  Session session(std::move(config));
  const int packs = 20;  // > credit window even with returned credits
  // node 0: a write rendezvous whose RDMA write crosses the partition —
  // its give-up timer is what declares the link dead (~1005us).
  session.spawn(0, "tx0", [&](NodeRuntime& rt) {
    rt.simulator().advance(sim::microseconds(700));
    const auto payload = make_pattern_buffer(64 * 1024, 11);
    auto& conn = rt.channel("ch2").begin_packing(1);
    conn.pack(payload, send_CHEAPER, receive_EXPRESS);
    conn.end_packing();  // bails when the link dies; must not wedge
  });
  session.spawn(1, "rx1", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch2").begin_unpacking();
    std::vector<std::byte> out(64 * 1024);
    // Answers CTS, then waits for a write that never completes: woken by
    // the poison pass on node 1 (which owns no timed-out WR itself).
    conn.unpack(out, send_CHEAPER, receive_EXPRESS);
    conn.end_unpacking();
  });
  // node 1 -> node 0: one eager message whose first block lands before
  // the partition and whose tail is swallowed by it.
  session.spawn(1, "tx1", [&](NodeRuntime& rt) {
    const auto part = make_pattern_buffer(1024, 13);
    auto& conn = rt.channel("ch2").begin_packing(0);
    conn.pack(part, send_CHEAPER, receive_EXPRESS);  // arrives
    rt.simulator().advance(sim::microseconds(820));
    for (int i = 1; i < packs; ++i) {
      // These vanish into the partition; one of them exhausts the credit
      // window and blocks until the link is declared dead, the rest are
      // dropped on the dead connection.
      conn.pack(part, send_CHEAPER, receive_EXPRESS);
    }
    conn.end_packing();
  });
  session.spawn(0, "rx0", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch2").begin_unpacking();
    std::vector<std::byte> first(1024);
    conn.unpack(first, send_CHEAPER, receive_EXPRESS);
    EXPECT_TRUE(verify_pattern(first, 13));
    // The tail never arrives: this blocks in the eager receive until the
    // poison pass marks the connection dead, then unwinds with the rest
    // of the message unfilled.
    std::vector<std::byte> rest(1024);
    for (int i = 1; i < packs; ++i) {
      conn.unpack(rest, send_CHEAPER, receive_EXPRESS);
    }
    conn.end_unpacking();
  });
  ASSERT_TRUE(session.run().is_ok());
  // The IB rail died and claimed the failure; the session survived.
  EXPECT_FALSE(session.rail_set("r").health().is_ok());
}

}  // namespace
}  // namespace mad2::mad
