// Property suite for the reliable-delivery shim (net/reliable): under a
// seeded faulty fabric every payload arrives exactly once, in order, and
// uncorrupted, while the retransmit backoff honors its cap.
//
// Replaying one failing sweep case: the suite prints the seed on failure;
// set MAD2_FAULT_SEED=<seed> (cmake -DMAD2_FAULT_SEED=... wires it into
// the test environment) and re-run `ctest -R reliable --verbose` to
// execute only that seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "sim/explore.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"

namespace mad2::net {
namespace {

FabricParams lossy_fabric(FaultPlan* plan) {
  FabricParams params;
  params.wire_mbs = 1000.0;
  params.propagation = sim::microseconds(5);
  params.faults = plan;
  return params;
}

struct SweepOutcome {
  bool ok = true;
  std::string detail;
  ReliabilityCounters counters;
  std::string trace;  // "<src>:<channel>:<fnv1a>;" per delivery
};

/// One bidirectional workload on a 2-node lossy fabric: each side sends
/// `messages` patterned payloads; the shim must deliver all of them
/// exactly once, in order, intact.
SweepOutcome run_sweep_case(std::uint64_t seed, int messages,
                            const LinkFaults& faults,
                            ReliableParams reliability = {}) {
  SweepOutcome outcome;
  sim::Simulator simulator;
  FaultPlan plan(seed);
  plan.set_default_faults(faults);
  ReliableNetwork network(&simulator, lossy_fabric(&plan), reliability);
  const std::uint32_t a = network.add_port();
  const std::uint32_t b = network.add_port();

  auto fail = [&outcome](std::string detail) {
    outcome.ok = false;
    if (outcome.detail.empty()) outcome.detail = std::move(detail);
  };
  auto sender = [&](std::uint32_t self, std::uint32_t peer) {
    return [&, self, peer] {
      for (int i = 0; i < messages; ++i) {
        const std::size_t size = 16 + 13 * (i % 97);
        std::vector<std::byte> payload(size);
        fill_pattern(payload, seed ^ (self * 1000003ULL) ^ i);
        const Status status =
            network.endpoint(self).send(peer, /*channel=*/7, payload);
        if (!status.is_ok()) {
          fail("send " + std::to_string(i) + ": " + status.to_string());
          return;
        }
      }
    };
  };
  auto receiver = [&](std::uint32_t self, std::uint32_t peer) {
    return [&, self, peer] {
      for (int i = 0; i < messages; ++i) {
        ReliableEndpoint::Message message;
        const Status status = network.endpoint(self).recv(message);
        if (!status.is_ok()) {
          fail("recv " + std::to_string(i) + ": " + status.to_string());
          return;
        }
        const std::size_t expect_size = 16 + 13 * (i % 97);
        if (message.src != peer || message.channel != 7 ||
            message.payload.size() != expect_size ||
            !verify_pattern(message.payload,
                            seed ^ (peer * 1000003ULL) ^ i)) {
          fail("delivery " + std::to_string(i) + " at node " +
               std::to_string(self) +
               " is out of order, corrupt, or duplicated");
          return;
        }
        outcome.trace += std::to_string(message.src) + ":" +
                         std::to_string(message.channel) + ":" +
                         std::to_string(fnv1a(message.payload)) + ";";
      }
    };
  };
  simulator.spawn("tx.a", sender(a, b));
  simulator.spawn("tx.b", sender(b, a));
  simulator.spawn("rx.a", receiver(a, b));
  simulator.spawn("rx.b", receiver(b, a));
  const Status run = simulator.run();
  if (!run.is_ok()) fail("run: " + run.to_string());
  outcome.counters.merge(network.endpoint(a).counters());
  outcome.counters.merge(network.endpoint(b).counters());
  return outcome;
}

LinkFaults sweep_faults(std::uint64_t seed) {
  // Vary the fault mix with the seed so the sweep covers drop-heavy,
  // dup-heavy, reorder-heavy, and corrupt-heavy regimes.
  LinkFaults faults;
  faults.drop_rate = 0.02 + 0.02 * static_cast<double>(seed % 5);
  faults.dup_rate = 0.01 * static_cast<double>(seed % 3);
  faults.reorder_rate = 0.05 * static_cast<double>(seed % 4);
  faults.reorder_window = 1 + static_cast<std::uint32_t>(seed % 4);
  faults.corrupt_rate = 0.01 * static_cast<double>(seed % 2);
  faults.jitter_rate = 0.2;
  faults.jitter_max = sim::microseconds(40);
  return faults;
}

// Property: exactly-once, in-order, uncorrupted delivery for every seed.
// MAD2_FAULT_SEED narrows the sweep to a single seed for replay.
TEST(ReliableSweep, AllPayloadsExactlyOnceInOrderAcrossSeeds) {
  std::uint64_t first = 1;
  std::uint64_t last = 64;
  if (const char* replay = std::getenv("MAD2_FAULT_SEED")) {
    first = last = std::strtoull(replay, nullptr, 10);
  }
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    const SweepOutcome outcome =
        run_sweep_case(seed, /*messages=*/120, sweep_faults(seed));
    ASSERT_TRUE(outcome.ok)
        << "seed " << seed << ": " << outcome.detail
        << "\nreplay: MAD2_FAULT_SEED=" << seed
        << " ctest -R reliable --verbose\n"
        << outcome.counters.to_string();
    // Backoff cap respected even when frames retransmit repeatedly.
    EXPECT_LE(outcome.counters.max_rto, ReliableParams{}.rto_max)
        << "seed " << seed;
    EXPECT_EQ(outcome.counters.give_ups, 0u) << "seed " << seed;
  }
}

TEST(ReliableSweep, LossActuallyForcesRetransmissions) {
  LinkFaults faults;
  faults.drop_rate = 0.2;
  const SweepOutcome outcome = run_sweep_case(11, 100, faults);
  ASSERT_TRUE(outcome.ok) << outcome.detail;
  EXPECT_GT(outcome.counters.retransmits, 0u);
  EXPECT_EQ(outcome.counters.data_frames, 200u);  // first transmissions
}

TEST(ReliableSweep, BackoffClimbsToTheCapAndNoFurther) {
  // Drop everything for a while via a healing partition: the first frame
  // retransmits until its timeout has doubled up to rto_max.
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/13);
  plan.partition(0, 1, 0, sim::milliseconds(80));
  ReliableParams reliability;
  reliability.rto_initial = sim::microseconds(500);
  reliability.rto_max = sim::milliseconds(8);
  reliability.max_retransmits = 100;
  ReliableNetwork network(&simulator, lossy_fabric(&plan), reliability);
  const std::uint32_t a = network.add_port();
  const std::uint32_t b = network.add_port();
  bool received = false;
  simulator.spawn("tx", [&] {
    std::vector<std::byte> payload = make_pattern_buffer(64, 1);
    ASSERT_TRUE(network.endpoint(a).send(b, 0, payload).is_ok());
  });
  simulator.spawn("rx", [&] {
    ReliableEndpoint::Message message;
    ASSERT_TRUE(network.endpoint(b).recv(message).is_ok());
    received = verify_pattern(message.payload, 1);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_TRUE(received);  // delivered after the partition healed
  const ReliabilityCounters& counters = network.endpoint(a).counters();
  EXPECT_GT(counters.retransmits, 5u);
  EXPECT_EQ(counters.max_rto, reliability.rto_max);  // hit the cap exactly
  EXPECT_EQ(counters.give_ups, 0u);
}

TEST(ReliableSweep, PermanentPartitionGivesUpWithUnavailable) {
  sim::Simulator simulator;
  FaultPlan plan(/*seed=*/17);
  plan.partition(0, 1, 0, sim::kNever);
  ReliableParams reliability;
  reliability.rto_initial = sim::microseconds(200);
  reliability.rto_max = sim::microseconds(800);
  reliability.max_retransmits = 5;  // give up quickly
  ReliableNetwork network(&simulator, lossy_fabric(&plan), reliability);
  const std::uint32_t a = network.add_port();
  const std::uint32_t b = network.add_port();
  Status handled = Status::ok();
  network.set_error_handler([&](const Status& status) { handled = status; });
  Status send_status = Status::ok();
  Status recv_status = Status::ok();
  simulator.spawn("tx", [&] {
    // The first send is accepted (the window has room); the link dies
    // retransmitting it, after which sends fail fast.
    std::vector<std::byte> payload(32);
    (void)network.endpoint(a).send(b, 0, payload);
    while (network.endpoint(a).health().is_ok()) {
      simulator.advance(sim::milliseconds(1));
    }
    send_status = network.endpoint(a).send(b, 0, payload);
  });
  simulator.spawn("rx", [&] {
    ReliableEndpoint::Message message;
    recv_status = network.endpoint(a).recv(message);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(send_status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(recv_status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(handled.code(), ErrorCode::kUnavailable);
  EXPECT_GE(network.endpoint(a).counters().give_ups, 1u);
}

// Acceptance criterion of the fault-injection issue: 10k messages across
// a 5% drop + 1% dup + reorder-window-4 fabric, delivered exactly once
// and in order, with a byte-identical delivery trace across two runs of
// the same seed.
TEST(ReliableAcceptance, TenThousandMessagesExactlyOnceDeterministically) {
  LinkFaults faults;
  faults.drop_rate = 0.05;
  faults.dup_rate = 0.01;
  faults.reorder_rate = 0.25;
  faults.reorder_window = 4;
  auto run_once = [&] {
    // 5000 messages per direction = 10k through one fabric.
    return run_sweep_case(/*seed=*/424242, /*messages=*/5000, faults);
  };
  const SweepOutcome first = run_once();
  ASSERT_TRUE(first.ok) << first.detail;
  EXPECT_EQ(first.counters.data_frames, 10000u);
  EXPECT_GT(first.counters.retransmits, 0u);
  EXPECT_GT(first.counters.dup_frames, 0u);
  const SweepOutcome second = run_once();
  ASSERT_TRUE(second.ok) << second.detail;
  EXPECT_EQ(first.trace, second.trace);  // byte-identical delivery trace
}

// ------------------------------------------------------------ madcheck ---

// Schedule exploration (sim/explore.hpp): the retransmit timer, the ack
// path and both application fibers all race at tied virtual times; the
// exactly-once/in-order/uncorrupted property must survive every legal
// ordering of those events, not just the FIFO one the sweeps above run.
// Failures print a shrunk decision trace replayable via MAD2_SCHEDULE.
TEST(ReliableExplore, ExactlyOnceInOrderAcross200Schedules) {
  const auto body = []() -> Status {
    // Drop/dup/reorder-heavy mix so retransmit timers actually arm and
    // race with late acks under the explored schedules.
    LinkFaults faults;
    faults.drop_rate = 0.08;
    faults.dup_rate = 0.03;
    faults.reorder_rate = 0.15;
    faults.reorder_window = 3;
    ReliableParams reliability;
    reliability.rto_initial = sim::microseconds(300);
    const SweepOutcome outcome =
        run_sweep_case(/*seed=*/7, /*messages=*/12, faults, reliability);
    if (!outcome.ok) return internal_error(outcome.detail);
    if (outcome.counters.give_ups != 0) {
      return internal_error("healthy link declared dead");
    }
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

}  // namespace
}  // namespace mad2::net
