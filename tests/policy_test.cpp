// White-box tests for the pure decision functions: the Switch's BMM
// policy, TM selection per PMM, the TCP coalescing plan, and virtual
// channel routing. These are the functions whose sender/receiver symmetry
// the whole no-self-description design rests on.
#include <gtest/gtest.h>

#include "fwd/virtual_channel.hpp"
#include "mad/bmm.hpp"
#include "mad/pmm_tcp.hpp"
#include "mad/session.hpp"

namespace mad2::mad {
namespace {

// A stub TM to drive select_bmm_kind.
class StubTm final : public Tm {
 public:
  StubTm(bool statics, bool groups) : statics_(statics), groups_(groups) {}
  [[nodiscard]] std::string_view name() const override { return "stub"; }
  [[nodiscard]] bool uses_static_buffers() const override {
    return statics_;
  }
  [[nodiscard]] bool supports_groups() const override { return groups_; }
  void send_buffer(Connection&, std::span<const std::byte>) override {}
  void receive_buffer(Connection&, std::span<std::byte>) override {}

 private:
  bool statics_;
  bool groups_;
};

TEST(BmmPolicy, StaticTmsAlwaysCopyThroughProtocolBuffers) {
  StubTm tm(/*statics=*/true, /*groups=*/false);
  for (SendMode s : {send_SAFER, send_LATER, send_CHEAPER}) {
    for (ReceiveMode r : {receive_EXPRESS, receive_CHEAPER}) {
      EXPECT_EQ(select_bmm_kind(tm, s, r), BmmKind::kStaticCopy);
    }
  }
}

TEST(BmmPolicy, LaterAlwaysDefersOnDynamicTms) {
  StubTm tm(/*statics=*/false, /*groups=*/true);
  EXPECT_EQ(select_bmm_kind(tm, send_LATER, receive_EXPRESS),
            BmmKind::kLater);
  EXPECT_EQ(select_bmm_kind(tm, send_LATER, receive_CHEAPER),
            BmmKind::kLater);
}

TEST(BmmPolicy, SaferIsEager) {
  StubTm tm(/*statics=*/false, /*groups=*/true);
  EXPECT_EQ(select_bmm_kind(tm, send_SAFER, receive_EXPRESS),
            BmmKind::kEager);
  EXPECT_EQ(select_bmm_kind(tm, send_SAFER, receive_CHEAPER),
            BmmKind::kEager);
}

TEST(BmmPolicy, CheaperGroupsOnlyWhenDeferralIsLegalAndUseful) {
  StubTm grouping(/*statics=*/false, /*groups=*/true);
  StubTm plain(/*statics=*/false, /*groups=*/false);
  // EXPRESS receive forbids deferral -> eager.
  EXPECT_EQ(select_bmm_kind(grouping, send_CHEAPER, receive_EXPRESS),
            BmmKind::kEager);
  // CHEAPER + grouping TM -> aggregate.
  EXPECT_EQ(select_bmm_kind(grouping, send_CHEAPER, receive_CHEAPER),
            BmmKind::kGroup);
  // CHEAPER but grouping buys nothing -> eager.
  EXPECT_EQ(select_bmm_kind(plain, send_CHEAPER, receive_CHEAPER),
            BmmKind::kEager);
}

TEST(TcpPlanRuns, BigBlocksStandAlone) {
  const auto runs = TcpTm::plan_runs({5000, 8000});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_FALSE(runs[0].coalesced);
  EXPECT_FALSE(runs[1].coalesced);
}

TEST(TcpPlanRuns, SmallBlocksCoalesce) {
  const auto runs = TcpTm::plan_runs({10, 20, 30});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].coalesced);
  EXPECT_EQ(runs[0].first, 0u);
  EXPECT_EQ(runs[0].count, 3u);
}

TEST(TcpPlanRuns, MixedBlocksSplitAtBigOnes) {
  const auto runs = TcpTm::plan_runs({10, 20, 5000, 30, 40});
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_TRUE(runs[0].coalesced);
  EXPECT_EQ(runs[0].count, 2u);
  EXPECT_FALSE(runs[1].coalesced);
  EXPECT_TRUE(runs[2].coalesced);
  EXPECT_EQ(runs[2].first, 3u);
}

TEST(TcpPlanRuns, RunCapsAtRunMax) {
  // 20 blocks of 1000 B exceed kRunMax (8192): runs split.
  std::vector<std::size_t> sizes(20, 1000);
  const auto runs = TcpTm::plan_runs(sizes);
  EXPECT_GT(runs.size(), 1u);
  std::size_t covered = 0;
  for (const auto& run : runs) {
    std::size_t bytes = 0;
    for (std::size_t k = 0; k < run.count; ++k) bytes += 1000;
    EXPECT_LE(bytes, TcpTm::kRunMax);
    covered += run.count;
  }
  EXPECT_EQ(covered, sizes.size());
}

TEST(TcpPlanRuns, SingleSmallBlockIsNotCoalesced) {
  const auto runs = TcpTm::plan_runs({100});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs[0].coalesced);  // nothing to merge with
}

TEST(TcpPlanRuns, EmptyGroup) {
  EXPECT_TRUE(TcpTm::plan_runs({}).empty());
}

}  // namespace
}  // namespace mad2::mad

namespace mad2::fwd {
namespace {

using mad::ChannelDef;
using mad::NetworkDef;
using mad::NetworkKind;
using mad::Session;
using mad::SessionConfig;

/// Chain: a{0,1} - b{1,2} - c{2,3}; gateways 1 and 2.
struct ChainBed {
  ChainBed() {
    SessionConfig config;
    config.node_count = 5;  // node 4 on hop a too (non-gateway peer)
    NetworkDef a;
    a.name = "a";
    a.kind = NetworkKind::kTcp;
    a.nodes = {0, 4, 1};
    NetworkDef b;
    b.name = "b";
    b.kind = NetworkKind::kTcp;
    b.nodes = {1, 2};
    NetworkDef c;
    c.name = "c";
    c.kind = NetworkKind::kTcp;
    c.nodes = {2, 3};
    config.networks = {a, b, c};
    config.channels = {ChannelDef{"cha", "a"}, ChannelDef{"chb", "b"},
                       ChannelDef{"chc", "c"}};
    session = std::make_unique<Session>(std::move(config));
    VirtualChannelDef def;
    def.name = "vc";
    def.hops = {"cha", "chb", "chc"};
    vc = std::make_unique<VirtualChannel>(*session, def);
  }
  std::unique_ptr<Session> session;
  std::unique_ptr<VirtualChannel> vc;
};

TEST(Routing, SameHopIsDirect) {
  ChainBed bed;
  EXPECT_EQ(bed.vc->hop_of(0, 4), 0u);
  EXPECT_EQ(bed.vc->next_node(0, 0, 4), 4u);
}

TEST(Routing, ForwardAcrossOneGateway) {
  ChainBed bed;
  EXPECT_EQ(bed.vc->hop_of(0, 2), 0u);
  EXPECT_EQ(bed.vc->next_node(0, 0, 2), 1u);  // via gateway 1
  // At gateway 1, hop 1 reaches node 2 directly.
  EXPECT_EQ(bed.vc->next_node(1, 0, 2), 2u);
}

TEST(Routing, ForwardAcrossTwoGateways) {
  ChainBed bed;
  EXPECT_EQ(bed.vc->hop_of(0, 3), 0u);
  EXPECT_EQ(bed.vc->next_node(0, 0, 3), 1u);  // first gateway
  EXPECT_EQ(bed.vc->next_node(1, 0, 3), 2u);  // second gateway
  EXPECT_EQ(bed.vc->next_node(2, 0, 3), 3u);  // final hop
}

TEST(Routing, BackwardDirection) {
  ChainBed bed;
  EXPECT_EQ(bed.vc->hop_of(3, 0), 2u);
  EXPECT_EQ(bed.vc->next_node(2, 3, 0), 2u);  // gateway joining hops 1,2
  EXPECT_EQ(bed.vc->next_node(1, 3, 0), 1u);
  EXPECT_EQ(bed.vc->next_node(0, 3, 0), 0u);
}

TEST(Routing, TerminalHopOfNonGatewayNodes) {
  ChainBed bed;
  EXPECT_EQ(bed.vc->terminal_hop(0), 0u);
  EXPECT_EQ(bed.vc->terminal_hop(4), 0u);
  EXPECT_EQ(bed.vc->terminal_hop(3), 2u);
}

TEST(Routing, GatewayNodesCannotBeReceivers) {
  ChainBed bed;
  EXPECT_DEATH({ (void)bed.vc->terminal_hop(1); }, "gateway");
}

TEST(Routing, NodesAreTheHopUnion) {
  ChainBed bed;
  EXPECT_EQ(bed.vc->nodes(),
            (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Routing, HopsMustShareExactlyOneNode) {
  SessionConfig config;
  config.node_count = 4;
  NetworkDef a;
  a.name = "a";
  a.kind = NetworkKind::kTcp;
  a.nodes = {0, 1};
  NetworkDef b;
  b.name = "b";
  b.kind = NetworkKind::kTcp;
  b.nodes = {2, 3};  // disjoint: no gateway
  config.networks = {a, b};
  config.channels = {ChannelDef{"cha", "a"}, ChannelDef{"chb", "b"}};
  Session session(std::move(config));
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"cha", "chb"};
  EXPECT_DEATH({ VirtualChannel vc(session, def); },
               "at least one gateway");
}

TEST(Routing, RedundantGatewaysNeedTheTopologyStanza) {
  // Two shared nodes between consecutive hops is a gateway *set* — legal
  // only in resilient mode (topology stanza / def override), a hard
  // misconfiguration otherwise.
  SessionConfig config;
  config.node_count = 4;
  NetworkDef a;
  a.name = "a";
  a.kind = NetworkKind::kTcp;
  a.nodes = {0, 1, 2};
  NetworkDef b;
  b.name = "b";
  b.kind = NetworkKind::kTcp;
  b.nodes = {1, 2, 3};  // nodes 1 and 2 both join the hops
  config.networks = {a, b};
  config.channels = {ChannelDef{"cha", "a"}, ChannelDef{"chb", "b"}};
  Session session(std::move(config));
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"cha", "chb"};
  EXPECT_DEATH({ VirtualChannel vc(session, def); },
               "topology stanza");
}

TEST(Routing, KillGatewayNeedsTheTopologyStanza) {
  // Failover is a resilient-mode feature: without the stanza there is no
  // retained-packet replay, so a kill could only lose data.
  ChainBed bed;
  EXPECT_DEATH({ bed.vc->kill_gateway(1); }, "topology stanza");
  EXPECT_DEATH({ bed.vc->arm_gateway_kill(1, 10); }, "topology stanza");
}

TEST(Routing, KillingTheLastHealthyGatewayAborts) {
  // A single-gateway boundary has no failover to run: killing its only
  // gateway is a test-harness (or operator) error, not a survivable
  // fault, and must fail loudly instead of black-holing the hop.
  SessionConfig config;
  config.node_count = 4;
  NetworkDef a;
  a.name = "a";
  a.kind = NetworkKind::kTcp;
  a.nodes = {0, 1};
  NetworkDef b;
  b.name = "b";
  b.kind = NetworkKind::kTcp;
  b.nodes = {1, 2, 3};
  config.networks = {a, b};
  config.channels = {ChannelDef{"cha", "a"}, ChannelDef{"chb", "b"}};
  mad::TopologyConfig topology;
  topology.enabled = true;
  config.topology = topology;
  Session session(std::move(config));
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {"cha", "chb"};
  VirtualChannel vc(session, def);
  EXPECT_DEATH({ vc.kill_gateway(1); }, "last healthy gateway");
}

}  // namespace
}  // namespace mad2::fwd
