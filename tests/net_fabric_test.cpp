// Tests for the shared PacketFabric machinery: back-pressure via receiver
// slots, FIFO delivery, and wire serialization accounting.
#include <gtest/gtest.h>

#include "net/wire.hpp"
#include "sim/time.hpp"

namespace mad2::net {
namespace {

struct TestPacket {
  int id = 0;
  std::vector<std::byte> data;
};

TEST(PacketFabric, DeliversInFifoOrder) {
  sim::Simulator simulator;
  FabricParams params;
  params.wire_mbs = 100.0;
  params.propagation = sim::microseconds(1);
  PacketFabric<TestPacket> fabric(&simulator, params);
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  std::vector<int> received;
  simulator.spawn("tx", [&] {
    for (int i = 0; i < 10; ++i) {
      fabric.ship(a, b, TestPacket{i, std::vector<std::byte>(100)}, 100);
    }
  });
  simulator.spawn("rx", [&] {
    for (int i = 0; i < 10; ++i) {
      received.push_back(fabric.receive(b).id);
    }
  });
  ASSERT_TRUE(simulator.run().is_ok());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
}

TEST(PacketFabric, ReceiverSlotsBackpressureTheSender) {
  sim::Simulator simulator;
  FabricParams params;
  params.wire_mbs = 1000.0;  // wire is never the constraint here
  params.propagation = 0;
  params.rx_slots = 4;
  PacketFabric<TestPacket> fabric(&simulator, params);
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  sim::Time sender_done = 0;
  simulator.spawn("tx", [&] {
    for (int i = 0; i < 8; ++i) {
      fabric.ship(a, b, TestPacket{i, {}}, 64);
    }
    sender_done = simulator.now();
  });
  simulator.spawn("rx", [&] {
    simulator.advance(sim::milliseconds(1));  // drain late
    for (int i = 0; i < 8; ++i) (void)fabric.receive(b);
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // The 5th..8th ship() had to wait for the late receiver.
  EXPECT_GE(sender_done, sim::milliseconds(1));
}

TEST(PacketFabric, WireSerializationPacesLargePackets) {
  sim::Simulator simulator;
  FabricParams params;
  params.wire_mbs = 100.0;
  params.propagation = 0;
  PacketFabric<TestPacket> fabric(&simulator, params);
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  sim::Time shipped_at = 0;
  simulator.spawn("tx", [&] {
    fabric.ship(a, b, TestPacket{1, std::vector<std::byte>(100000)},
                100000);
    shipped_at = simulator.now();
  });
  simulator.spawn("rx", [&] { (void)fabric.receive(b); });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_NEAR(sim::to_us(shipped_at), 1000.0, 5.0);  // 100 kB at 100 MB/s
}

TEST(PacketFabric, SeparatePortPairsDoNotSerializeEachOther) {
  sim::Simulator simulator;
  FabricParams params;
  params.wire_mbs = 100.0;
  params.propagation = 0;
  PacketFabric<TestPacket> fabric(&simulator, params);
  const auto a = fabric.add_port();
  const auto b = fabric.add_port();
  const auto c = fabric.add_port();
  const auto d = fabric.add_port();
  sim::Time end_ab = 0;
  sim::Time end_cd = 0;
  simulator.spawn("tx_ab", [&] {
    fabric.ship(a, b, TestPacket{1, {}}, 100000);
    end_ab = simulator.now();
  });
  simulator.spawn("tx_cd", [&] {
    fabric.ship(c, d, TestPacket{2, {}}, 100000);
    end_cd = simulator.now();
  });
  simulator.spawn("rx_b", [&] { (void)fabric.receive(b); });
  simulator.spawn("rx_d", [&] { (void)fabric.receive(d); });
  ASSERT_TRUE(simulator.run().is_ok());
  // Per-port links: both finish in ~1 ms, not 2 ms.
  EXPECT_NEAR(sim::to_us(end_ab), 1000.0, 5.0);
  EXPECT_NEAR(sim::to_us(end_cd), 1000.0, 5.0);
}

TEST(PacketFabric, InvalidPortAborts) {
  sim::Simulator simulator;
  PacketFabric<TestPacket> fabric(&simulator, FabricParams{});
  const auto a = fabric.add_port();
  simulator.spawn("tx", [&] { fabric.ship(a, 9, TestPacket{}, 10); });
  EXPECT_DEATH({ (void)simulator.run(); }, "invalid port");
}

}  // namespace
}  // namespace mad2::net
