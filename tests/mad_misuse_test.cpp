// Failure-injection tests: API misuse must fail loudly (MAD2_CHECK
// aborts), and the paranoid channel mode must catch asymmetric
// pack/unpack sequences — the "unspecified behavior" of paper Section 2.2
// — at the first divergence.
#include <gtest/gtest.h>

#include "mad/madeleine.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {
namespace {

SessionConfig config_for(NetworkKind kind, bool paranoid) {
  SessionConfig config;
  config.node_count = 2;
  NetworkDef net;
  net.name = "net0";
  net.kind = kind;
  net.nodes = {0, 1};
  config.networks.push_back(net);
  ChannelDef channel{"ch", "net0"};
  channel.paranoid = paranoid;
  config.channels.push_back(channel);
  return config;
}

std::string kind_name(const testing::TestParamInfo<NetworkKind>& info) {
  return std::string(to_string(info.param));
}

class Paranoid : public testing::TestWithParam<NetworkKind> {};

INSTANTIATE_TEST_SUITE_P(AllDrivers, Paranoid,
                         testing::Values(NetworkKind::kBip,
                                         NetworkKind::kSisci,
                                         NetworkKind::kTcp,
                                         NetworkKind::kVia),
                         kind_name);

TEST_P(Paranoid, SymmetricSequencesStillWork) {
  Session session(config_for(GetParam(), /*paranoid=*/true));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto a = make_pattern_buffer(100, 1);
    auto b = make_pattern_buffer(50000, 2);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(a, send_CHEAPER, receive_EXPRESS);
    conn.pack(b, send_CHEAPER, receive_CHEAPER);
    conn.end_packing();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    std::vector<std::byte> a(100);
    std::vector<std::byte> b(50000);
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(a, send_CHEAPER, receive_EXPRESS);
    conn.unpack(b, send_CHEAPER, receive_CHEAPER);
    conn.end_unpacking();
    EXPECT_TRUE(verify_pattern(a, 1));
    EXPECT_TRUE(verify_pattern(b, 2));
  });
  ASSERT_TRUE(session.run().is_ok());
}

TEST_P(Paranoid, CatchesSizeMismatch) {
  Session session(config_for(GetParam(), /*paranoid=*/true));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto data = make_pattern_buffer(1000, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(data);
    conn.end_packing();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(999);  // wrong size
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(out);
    conn.end_unpacking();
  });
  EXPECT_DEATH({ (void)session.run(); }, "paranoid");
}

TEST_P(Paranoid, CatchesReceiveModeMismatch) {
  Session session(config_for(GetParam(), /*paranoid=*/true));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto data = make_pattern_buffer(64, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(data, send_CHEAPER, receive_CHEAPER);
    conn.end_packing();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(64);
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(out, send_CHEAPER, receive_EXPRESS);  // wrong mode
    conn.end_unpacking();
  });
  EXPECT_DEATH({ (void)session.run(); }, "paranoid");
}

TEST_P(Paranoid, CatchesSendModeMismatch) {
  Session session(config_for(GetParam(), /*paranoid=*/true));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto data = make_pattern_buffer(64, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(data, send_SAFER, receive_EXPRESS);
    conn.end_packing();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(64);
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(out, send_CHEAPER, receive_EXPRESS);  // wrong send mode
    conn.end_unpacking();
  });
  EXPECT_DEATH({ (void)session.run(); }, "paranoid");
}

// ------------------------------------------------------------ API misuse ---

TEST(Misuse, PackWithoutBeginPackingAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    auto& conn = rt.channel("ch").connection(1);
    std::byte b{1};
    conn.pack(std::span(&b, 1));
  });
  EXPECT_DEATH({ (void)session.run(); }, "pack outside");
}

TEST(Misuse, DoubleBeginPackingAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    rt.channel("ch").begin_packing(1);
    rt.channel("ch").begin_packing(1);
  });
  EXPECT_DEATH({ (void)session.run(); }, "already open");
}

TEST(Misuse, EndPackingWithoutBeginAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    rt.channel("ch").connection(1).end_packing();
  });
  EXPECT_DEATH({ (void)session.run(); }, "without begin_packing");
}

TEST(Misuse, UnpackWithoutBeginUnpackingAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    std::byte b;
    rt.channel("ch").connection(1).unpack(std::span(&b, 1));
  });
  EXPECT_DEATH({ (void)session.run(); }, "unpack outside");
}

TEST(Misuse, PackAfterEndPackingAborts) {
  // Pack-after-commit: once the message is committed (end_packing), the
  // connection must reject further pack calls until a new begin_packing.
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    auto data = make_pattern_buffer(16, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(data);
    conn.end_packing();
    conn.pack(data);  // message already committed
  });
  session.spawn(1, "r", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(16);
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(out);
    conn.end_unpacking();
  });
  EXPECT_DEATH({ (void)session.run(); }, "pack outside");
}

TEST(Misuse, DoubleEndPackingAborts) {
  // The double-teardown case: channels are session-owned (there is no
  // separate free call), so releasing the same message twice is the
  // analogous misuse.
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    auto data = make_pattern_buffer(16, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(data);
    conn.end_packing();
    conn.end_packing();  // already committed
  });
  session.spawn(1, "r", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(16);
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(out);
    conn.end_unpacking();
  });
  EXPECT_DEATH({ (void)session.run(); }, "without begin_packing");
}

TEST(Misuse, DoubleBeginUnpackingAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "s", [&](NodeRuntime& rt) {
    auto data = make_pattern_buffer(16, 1);
    for (int i = 0; i < 2; ++i) {
      auto& conn = rt.channel("ch").begin_packing(1);
      conn.pack(data);
      conn.end_packing();
    }
  });
  session.spawn(1, "r", [&](NodeRuntime& rt) {
    (void)rt.channel("ch").begin_unpacking();
    (void)rt.channel("ch").begin_unpacking();  // first message still open
  });
  EXPECT_DEATH({ (void)session.run(); }, "already open");
}

TEST(Misuse, UnpackAfterEndUnpackingAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "s", [&](NodeRuntime& rt) {
    auto data = make_pattern_buffer(16, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(data);
    conn.end_packing();
  });
  session.spawn(1, "r", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(16);
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(out);
    conn.end_unpacking();
    conn.unpack(out);  // message already checked out
  });
  EXPECT_DEATH({ (void)session.run(); }, "unpack outside");
}

TEST(Misuse, DoubleEndUnpackingAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "s", [&](NodeRuntime& rt) {
    auto data = make_pattern_buffer(16, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(data);
    conn.end_packing();
  });
  session.spawn(1, "r", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(16);
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(out);
    conn.end_unpacking();
    conn.end_unpacking();  // already checked out
  });
  EXPECT_DEATH({ (void)session.run(); }, "without begin_unpacking");
}

TEST(Misuse, BeginPackingToUnknownNodeAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    rt.channel("ch").begin_packing(7);
  });
  EXPECT_DEATH({ (void)session.run(); }, "no connection");
}

TEST(Misuse, BeginPackingToSelfAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    rt.channel("ch").begin_packing(0);
  });
  EXPECT_DEATH({ (void)session.run(); }, "no connection");
}

TEST(Misuse, UnknownChannelNameAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  session.spawn(0, "f", [&](NodeRuntime& rt) {
    (void)rt.channel("nope");
  });
  EXPECT_DEATH({ (void)session.run(); }, "unknown channel");
}

TEST(Misuse, NetworkReferencingUnknownNodeAborts) {
  SessionConfig config;
  config.node_count = 2;
  NetworkDef net;
  net.name = "net0";
  net.kind = NetworkKind::kTcp;
  net.nodes = {0, 5};  // node 5 does not exist
  config.networks.push_back(net);
  EXPECT_DEATH({ Session session(std::move(config)); }, "unknown node");
}

TEST(Misuse, ChannelOnUnknownNetworkAborts) {
  SessionConfig config;
  config.node_count = 2;
  config.channels.push_back(ChannelDef{"ch", "ghost"});
  EXPECT_DEATH({ Session session(std::move(config)); }, "unknown network");
}

TEST(Misuse, EndpointForNonMemberNodeAborts) {
  SessionConfig config;
  config.node_count = 3;
  NetworkDef net;
  net.name = "net0";
  net.kind = NetworkKind::kTcp;
  net.nodes = {0, 1};  // node 2 is not attached
  config.networks.push_back(net);
  config.channels.push_back(ChannelDef{"ch", "net0"});
  Session session(std::move(config));
  session.spawn(2, "f", [&](NodeRuntime& rt) { (void)rt.channel("ch"); });
  EXPECT_DEATH({ (void)session.run(); }, "not a member");
}

// Without paranoid mode, an asymmetric sequence on a static-buffer TM is
// still caught by the BMM's buffer accounting (a weaker, later check).
TEST(Misuse, StaticBufferAccountingCatchesGrossAsymmetry) {
  Session session(config_for(NetworkKind::kBip, false));
  session.spawn(0, "sender", [&](NodeRuntime& rt) {
    auto a = make_pattern_buffer(100, 1);
    auto& conn = rt.channel("ch").begin_packing(1);
    conn.pack(a, send_CHEAPER, receive_EXPRESS);
    conn.end_packing();
  });
  session.spawn(1, "receiver", [&](NodeRuntime& rt) {
    std::vector<std::byte> out(60);  // shorter than the packed block
    auto& conn = rt.channel("ch").begin_unpacking();
    conn.unpack(out, send_CHEAPER, receive_EXPRESS);
    conn.end_unpacking();
  });
  EXPECT_DEATH({ (void)session.run(); }, "asymmetric");
}

// Failure triage is for failures: reporting a healthy link (OK status)
// into route_network_failure is a driver bug, not a routable event.
TEST(Misuse, RouteNetworkFailureWithOkStatusAborts) {
  Session session(config_for(NetworkKind::kTcp, false));
  NetworkFailure report;
  report.network = &session.network("net0");
  report.status = Status::ok();
  report.src_node = 0;
  report.dst_node = 1;
  EXPECT_DEATH({ (void)session.route_network_failure(report); },
               "OK status");
}

}  // namespace
}  // namespace mad2::mad
