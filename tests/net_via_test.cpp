// Tests for the VIA driver: descriptor queues, posted-receive discipline,
// registration costs, and fatal behaviour on unposted sends.
#include <gtest/gtest.h>

#include "net/via.hpp"
#include "sim/time.hpp"
#include "testbed.hpp"
#include "util/bytes.hpp"

namespace mad2::net {
namespace {

using sim::to_us;

struct ViaBed : Testbed {
  explicit ViaBed(int n)
      : Testbed(n), network(&simulator, node_ptrs(), ViaParams::generic_nic()) {}
  ViaNetwork network;
};

TEST(Via, SendLandsInPostedDescriptor) {
  ViaBed bed(2);
  const auto payload = make_pattern_buffer(2048, 1);
  std::vector<std::byte> sink(4096);
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv(0, sink);
    auto completion = bed.network.port(1).wait_recv(0);
    EXPECT_EQ(completion.bytes, 2048u);
    EXPECT_TRUE(verify_pattern(
        std::span<const std::byte>(sink).subspan(0, 2048), 1));
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(5));  // after the post
    bed.network.port(0).send(1, payload);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Via, DescriptorsConsumeInPostOrder) {
  ViaBed bed(2);
  std::vector<std::byte> first(4096);
  std::vector<std::byte> second(4096);
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv(0, first);
    bed.network.port(1).post_recv(0, second);
    auto c1 = bed.network.port(1).wait_recv(0);
    auto c2 = bed.network.port(1).wait_recv(0);
    EXPECT_EQ(c1.bytes, 100u);
    EXPECT_EQ(c2.bytes, 200u);
    EXPECT_EQ(c1.buffer.data(), first.data());
    EXPECT_EQ(c2.buffer.data(), second.data());
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(5));
    bed.network.port(0).send(1, make_pattern_buffer(100, 1));
    bed.network.port(0).send(1, make_pattern_buffer(200, 2));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Via, MultiMtuSendsFillOneDescriptor) {
  ViaBed bed(2);
  const std::size_t size = 64 * 1024;  // 16 MTUs
  const auto payload = make_pattern_buffer(size, 3);
  std::vector<std::byte> sink(size);
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv(0, sink);
    auto completion = bed.network.port(1).wait_recv(0);
    EXPECT_EQ(completion.bytes, size);
    EXPECT_TRUE(verify_pattern(sink, 3));
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(5));
    bed.network.port(0).send(1, payload);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Via, SendWithoutPostedDescriptorAborts) {
  ViaBed bed(2);
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).send(1, make_pattern_buffer(64, 1));
  });
  EXPECT_DEATH({ (void)bed.simulator.run(); }, "no posted receive");
}

TEST(Via, RegistrationChargesPerPage) {
  ViaBed bed(1);
  std::vector<std::byte> small(4096);
  std::vector<std::byte> large(4096 * 256);
  sim::Duration small_cost = 0;
  sim::Duration large_cost = 0;
  bed.simulator.spawn("f", [&] {
    const sim::Time t0 = bed.simulator.now();
    auto h1 = bed.network.port(0).register_memory(small);
    small_cost = bed.simulator.now() - t0;
    const sim::Time t1 = bed.simulator.now();
    auto h2 = bed.network.port(0).register_memory(large);
    large_cost = bed.simulator.now() - t1;
    bed.network.port(0).deregister(h1);
    bed.network.port(0).deregister(h2);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_GT(large_cost, small_cost);
  EXPECT_NEAR(to_us(large_cost - small_cost), 0.2 * 255, 1.0);
}

TEST(Via, RecvReadyAndPostedCountTrackState) {
  ViaBed bed(2);
  std::vector<std::byte> sink(4096);
  bed.simulator.spawn("receiver", [&] {
    EXPECT_EQ(bed.network.port(1).posted_count(0), 0u);
    bed.network.port(1).post_recv(0, sink);
    EXPECT_EQ(bed.network.port(1).posted_count(0), 1u);
    EXPECT_FALSE(bed.network.port(1).recv_ready(0));
    auto completion = bed.network.port(1).wait_recv(0);
    EXPECT_EQ(completion.bytes, 16u);
    EXPECT_EQ(bed.network.port(1).posted_count(0), 0u);
  });
  bed.simulator.spawn("sender", [&] {
    bed.simulator.advance(sim::microseconds(5));
    bed.network.port(0).send(1, make_pattern_buffer(16, 1));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Via, LatencyIsLowSingleDigitMicroseconds) {
  ViaBed bed(2);
  std::vector<std::byte> sink(64);
  sim::Time arrival = 0;
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv(0, sink);
    bed.network.port(1).wait_recv(0);
    arrival = bed.simulator.now();
  });
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).send(1, make_pattern_buffer(4, 1));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_GT(to_us(arrival), 2.0);
  EXPECT_LT(to_us(arrival), 8.0);
}

TEST(Via, BandwidthIsHigh) {
  ViaBed bed(2);
  const std::size_t size = 2 * 1024 * 1024;
  std::vector<std::byte> sink(size);
  sim::Time end = 0;
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv(0, sink);
    bed.network.port(1).wait_recv(0);
    end = bed.simulator.now();
  });
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).send(1, make_pattern_buffer(size, 4));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  const double mbs = sim::bandwidth_mbs(size, end);
  EXPECT_GT(mbs, 95.0);
  EXPECT_LT(mbs, 130.0);
}

}  // namespace
}  // namespace mad2::net
