// madcheck self-tests: the schedule-exploration harness must (a) leave
// correct programs alone across hundreds of schedules, (b) find a planted
// ordering bug the FIFO scheduler never trips, (c) shrink the failing
// trace to a minimal decision prefix, and (d) replay it deterministically
// — including through the MAD2_SCHEDULE environment variable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "sim/explore.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace mad2::sim {
namespace {

// ------------------------------------------------- the mutation subject ---
//
// A two-fiber notify/wait pipeline with a classic lost-wakeup window when
// `buggy`: the consumer checks the predicate, *then* yields (modeling work
// between the check and the park), then waits without re-checking. Under
// the FIFO schedule the producer's notify always lands after the wait, so
// the plain test suite can never see the bug; under exploration, any
// schedule that runs the producer's second step before the consumer's
// wait loses the wakeup and deadlocks.
Status notify_wait_pipeline(bool buggy) {
  Simulator simulator;
  WaitQueue queue(&simulator);
  bool ready = false;
  bool consumed = false;
  simulator.spawn("consumer", [&] {
    if (buggy) {
      if (!ready) {
        simulator.yield_fiber();  // check-to-wait window
        queue.wait();             // no re-check: wakeup can be lost
      }
    } else {
      while (!ready) queue.wait();  // correct predicate loop
    }
    consumed = true;
  });
  simulator.spawn("producer", [&] {
    simulator.yield_fiber();  // produce "later" at the same virtual time
    ready = true;
    queue.notify_one();
  });
  const Status run = simulator.run();
  if (!run.is_ok()) return run;
  if (!consumed) return internal_error("consumer never consumed");
  return Status::ok();
}

// --------------------------------------------------------- serialization ---

TEST(ScheduleTraceSerialization, RoundTrips) {
  const ScheduleTrace trace{0, 2, 1, 0, 7};
  EXPECT_EQ(trace_to_string(trace), "0,2,1,0,7");
  EXPECT_EQ(trace_from_string("0,2,1,0,7"), trace);
  EXPECT_EQ(trace_to_string({}), "");
  EXPECT_TRUE(trace_from_string("").empty());
}

// ------------------------------------------------------------ exploration ---

TEST(Madcheck, CorrectPipelinePassesRandomAndExhaustiveSchedules) {
  ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 200;
  const ExploreResult result =
      explore([] { return notify_wait_pipeline(/*buggy=*/false); }, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(Madcheck, FifoBaselineHidesThePlantedBug) {
  // The premise of the whole harness: the default schedule passes.
  EXPECT_TRUE(notify_wait_pipeline(/*buggy=*/true).is_ok());
}

TEST(Madcheck, ExhaustiveFindsAndShrinksThePlantedBug) {
  ExploreOptions options;
  options.random_runs = 0;  // deterministic: exhaustive only
  options.delay_bound = 2;
  options.max_exhaustive_runs = 500;
  const ExploreResult result =
      explore([] { return notify_wait_pipeline(/*buggy=*/true); }, options);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("stuck"), std::string::npos)
      << result.failure;  // the lost wakeup surfaces as a deadlock
  // The shrunk trace is a minimal prefix: exactly one non-FIFO decision.
  ASSERT_FALSE(result.trace.empty());
  int deviations = 0;
  for (std::uint32_t choice : result.trace) deviations += choice != 0;
  EXPECT_EQ(deviations, 1) << result.summary();
  EXPECT_NE(result.trace.back(), 0u);  // shrinker strips trailing zeros
  EXPECT_NE(result.replay_hint.find("MAD2_SCHEDULE="), std::string::npos);
}

TEST(Madcheck, RandomWalksFindThePlantedBugToo) {
  ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 0;
  const ExploreResult result =
      explore([] { return notify_wait_pipeline(/*buggy=*/true); }, options);
  ASSERT_FALSE(result.ok) << "200 random schedules missed the lost wakeup";
  int deviations = 0;
  for (std::uint32_t choice : result.trace) deviations += choice != 0;
  EXPECT_EQ(deviations, 1) << result.summary();
}

TEST(Madcheck, ShrunkTraceReplaysDeterministically) {
  ExploreOptions options;
  options.random_runs = 0;
  options.max_exhaustive_runs = 500;
  const ExploreResult result =
      explore([] { return notify_wait_pipeline(/*buggy=*/true); }, options);
  ASSERT_FALSE(result.ok);
  // Replaying the shrunk trace reproduces the failure, run after run,
  // with an identical decision stream (the simulator is deterministic
  // given the schedule).
  const auto body = [] { return notify_wait_pipeline(/*buggy=*/true); };
  const ReplayOutcome first = run_with_schedule(body, result.trace);
  const ReplayOutcome second = run_with_schedule(body, result.trace);
  EXPECT_FALSE(first.status.is_ok());
  EXPECT_FALSE(second.status.is_ok());
  EXPECT_EQ(first.taken, second.taken);
  // And the FIFO schedule still passes, so the trace is load-bearing.
  EXPECT_TRUE(run_with_schedule(body, {}).status.is_ok());
}

TEST(Madcheck, EnvVarReplayPinsTheSchedule) {
  ExploreOptions options;
  options.random_runs = 0;
  options.max_exhaustive_runs = 500;
  const auto body = [] { return notify_wait_pipeline(/*buggy=*/true); };
  const ExploreResult found = explore(body, options);
  ASSERT_FALSE(found.ok);

  // MAD2_SCHEDULE=<shrunk trace>: explore() must run exactly once and
  // reproduce the failure instead of exploring.
  ASSERT_EQ(setenv(kScheduleEnvVar, trace_to_string(found.trace).c_str(),
                   /*overwrite=*/1),
            0);
  const ExploreResult replayed = explore(body, options);
  unsetenv(kScheduleEnvVar);
  EXPECT_EQ(replayed.runs, 1);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.trace, found.trace);

  // An innocent schedule replayed through the env var passes.
  ASSERT_EQ(setenv(kScheduleEnvVar, "", /*overwrite=*/1), 0);
  const ExploreResult fifo = explore(body, options);
  unsetenv(kScheduleEnvVar);
  EXPECT_EQ(fifo.runs, 1);
  EXPECT_TRUE(fifo.ok);
}

// -------------------------------------------------- policy plumbing ------

TEST(SchedulePolicy, PerSimulatorPolicyOverridesFifo) {
  // A policy that always picks the *last* candidate reverses the spawn
  // order of same-time fibers.
  class LastPolicy : public SchedulePolicy {
   public:
    std::size_t choose(std::size_t count) override { return count - 1; }
  };
  LastPolicy last;
  std::vector<int> order;
  Simulator simulator;
  simulator.set_schedule_policy(&last);
  simulator.spawn("a", [&] { order.push_back(1); });
  simulator.spawn("b", [&] { order.push_back(2); });
  simulator.spawn("c", [&] { order.push_back(3); });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(SchedulePolicy, AmbientPolicyReachesNewSimulators) {
  class LastPolicy : public SchedulePolicy {
   public:
    std::size_t choose(std::size_t count) override { return count - 1; }
  };
  LastPolicy last;
  Simulator::set_ambient_schedule_policy(&last);
  std::vector<int> order;
  {
    Simulator simulator;  // picks up the ambient policy at construction
    simulator.spawn("a", [&] { order.push_back(1); });
    simulator.spawn("b", [&] { order.push_back(2); });
    EXPECT_TRUE(simulator.run().is_ok());
  }
  Simulator::set_ambient_schedule_policy(nullptr);
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  // With the ambient policy cleared, construction reverts to FIFO.
  order.clear();
  Simulator simulator;
  simulator.spawn("a", [&] { order.push_back(1); });
  simulator.spawn("b", [&] { order.push_back(2); });
  EXPECT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulePolicy, StaleEventsAreNotDecisionPoints) {
  // A fiber woken before its deadline leaves a stale timeout event in the
  // queue; that event must be consumed silently, never offered to the
  // policy as a candidate.
  class CountingPolicy : public SchedulePolicy {
   public:
    std::size_t choose(std::size_t count) override {
      ties.push_back(count);
      return 0;
    }
    std::vector<std::size_t> ties;
  };
  CountingPolicy counting;
  Simulator simulator;
  simulator.set_schedule_policy(&counting);
  Fiber* sleeper = simulator.spawn("sleeper", [&] {
    EXPECT_FALSE(simulator.block_current(microseconds(100)));
  });
  simulator.spawn("waker", [&] {
    simulator.advance(microseconds(10));
    simulator.wake(sleeper);  // the t=100 deadline event is now stale
    simulator.advance(microseconds(90));  // resume ties with stale event
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // One real decision: the two spawns tied at t=0. The t=100 "tie"
  // between the stale deadline and the waker's resume must NOT have been
  // offered (a stale no-op is not an alternative schedule).
  EXPECT_EQ(counting.ties, (std::vector<std::size_t>{2}));
}

}  // namespace
}  // namespace mad2::sim
