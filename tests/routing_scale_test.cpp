// Resilient multi-gateway routing at scale (ctest label `scale`, its own
// release-mode CI job): 256- and 1024-node cluster sims where a gateway
// dies mid-transfer and every flow must still deliver exactly once, in
// order, with intact payloads (tests/routing_testlib.hpp); killed-gateway
// seed sweeps scanning the kill instant across the packet stream; a
// driver-level partition that has to travel the whole failure-routing
// chain (fault plan -> reliable link give-up -> route_network_failure ->
// gateway kill -> replay); and a >= 200-schedule madcheck exploration of
// the failover window itself.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fwd/virtual_channel.hpp"
#include "mad/hostdb.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "routing_testlib.hpp"
#include "sim/explore.hpp"
#include "testbed.hpp"

namespace mad2 {
namespace {

using fwd::VirtualChannel;
using fwd::VirtualChannelDef;
using mad::Session;

VirtualChannelDef resilient_vdef(std::vector<std::string> hops,
                                 std::size_t mtu = 4 * 1024) {
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = std::move(hops);
  def.mtu = mtu;
  mad::TopologyConfig topology;
  topology.enabled = true;
  def.topology = topology;
  return def;
}

std::vector<FlowSpec> cross_cluster_flows(const FatTreeBed& bed,
                                          std::size_t count) {
  std::vector<FlowSpec> flows;
  for (std::size_t i = 0; i < count; ++i) {
    flows.push_back(FlowSpec{bed.leaf(0, i), bed.leaf(1, i)});
  }
  return flows;
}

// ------------------------------------------------------ 256-node fat tree

constexpr std::size_t kFtLeaves = 124;
constexpr std::size_t kFtGateways = 4;  // 2 * (124 + 4) = 256 nodes

TEST(RoutingScale, FatTree256SpreadsFlowsAcrossGateways) {
  FatTreeBed bed = make_fat_tree(2, kFtLeaves, kFtGateways);
  Session session(bed.config);
  VirtualChannel vc(session, resilient_vdef(bed.route(0, 1)));
  ASSERT_EQ(session.node_count(), 256u);
  ASSERT_EQ(vc.boundary_count(), 2u);

  auto failure = run_flows(session, vc, cross_cluster_flows(bed, 8),
                           /*messages=*/2, /*message_bytes=*/12 * 1024);
  const Status run = session.run();
  ASSERT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_TRUE(failure->empty()) << *failure;
  EXPECT_EQ(check_channel_drained(vc), "");
  EXPECT_EQ(vc.routing_counters().gateway_kills, 0u);

  // Eight flows hashed across four healthy gateways per boundary: the
  // deterministic spread must use more than one of them.
  std::size_t used = 0;
  for (std::size_t g = 0; g < kFtGateways; ++g) {
    if (vc.gateway_forwarded(bed.gateway(0, g)) > 0) ++used;
  }
  EXPECT_GE(used, 2u) << "hashed spread left all flows on one gateway";
}

TEST(RoutingScale, FatTree256KilledGatewayMidTransfer) {
  FatTreeBed bed = make_fat_tree(2, kFtLeaves, kFtGateways);
  Session session(bed.config);
  VirtualChannel vc(session, resilient_vdef(bed.route(0, 1)));

  const std::vector<FlowSpec> flows = cross_cluster_flows(bed, 8);
  // Kill the gateway flow 0 actually routes through, once the channel's
  // gateways have moved 40 packets — squarely mid-transfer.
  const std::uint32_t victim = vc.next_node(0, flows[0].src, flows[0].dst);
  GatewayKiller::at_packet_count(vc, victim, 40);

  auto failure = run_flows(session, vc, flows, /*messages=*/2,
                           /*message_bytes=*/12 * 1024);
  const Status run = session.run();
  ASSERT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_TRUE(failure->empty()) << *failure;
  EXPECT_EQ(check_channel_drained(vc), "");

  EXPECT_EQ(vc.routing_counters().gateway_kills, 1u);
  EXPECT_FALSE(session.hostdb().alive(victim));
  EXPECT_EQ(session.hostdb().epoch(), 1u);
  for (std::size_t b = 0; b < vc.boundary_count(); ++b) {
    for (std::uint32_t g : vc.healthy_gateways(b)) {
      EXPECT_NE(g, victim) << "dead gateway still in a healthy set";
    }
  }
}

TEST(RoutingScale, FatTree256MadreportConsolidatedReport) {
  // Cluster-health reporting at scale: run cross-cluster traffic with
  // trace propagation on, write per-"process" metrics snapshots the way
  // a real deployment would (one per registry), and fold them with
  // madreport into one consolidated JSON carrying per-flow hop-latency
  // rollups. When CI sets MAD2_REPORT_DIR the artifacts land there for
  // upload; otherwise they go to a scratch directory.
  namespace fs = std::filesystem;
  FatTreeBed bed = make_fat_tree(2, kFtLeaves, kFtGateways);
  Session session(bed.config);
  VirtualChannelDef def = resilient_vdef(bed.route(0, 1));
  def.propagation = true;
  VirtualChannel vc(session, def);
  ASSERT_EQ(session.node_count(), 256u);

  // Delivery-side hop replay records into the ambient registry.
  obs::MetricsRegistry hop_metrics;
  obs::install_metrics(&hop_metrics);
  auto failure = run_flows(session, vc, cross_cluster_flows(bed, 6),
                           /*messages=*/2, /*message_bytes=*/12 * 1024);
  const Status run = session.run();
  obs::uninstall_metrics(&hop_metrics);
  ASSERT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_TRUE(failure->empty()) << *failure;
  EXPECT_EQ(check_channel_drained(vc), "");
  vc.export_metrics(hop_metrics);

  obs::MetricsRegistry session_metrics;
  session.export_metrics(session_metrics);

  const char* report_env = std::getenv("MAD2_REPORT_DIR");
  const fs::path dir = (report_env != nullptr && report_env[0] != '\0')
                           ? fs::path(report_env)
                           : fs::temp_directory_path() / "mad2_scale_report";
  fs::create_directories(dir);
  const std::string hop_path = (dir / "ft256_channel.json").string();
  const std::string session_path = (dir / "ft256_session.json").string();
  ASSERT_TRUE(hop_metrics.write_json(hop_path));
  ASSERT_TRUE(session_metrics.write_json(session_path));

  std::vector<std::string> errors;
  const obs::ClusterReport report =
      obs::cluster_report_from_files({hop_path, session_path}, &errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_EQ(report.inputs, 2u);

  // Six cross-cluster flows, each attributed across all four hops of its
  // leaf -> gateway -> gateway -> leaf journey.
  ASSERT_EQ(report.flows.size(), 6u);
  for (const obs::FlowRollup& flow : report.flows) {
    EXPECT_EQ(flow.channel, "vc");
    EXPECT_GT(flow.packets, 0) << flow.flow;
    ASSERT_EQ(flow.hops.size(), 4u) << flow.flow;
    for (const obs::HopRollup& hop : flow.hops) {
      EXPECT_GT(hop.samples, 0) << flow.flow << " hop " << hop.hop;
      // Every non-delivery hop saw real wire time.
      if (hop.hop < 3) {
        EXPECT_GT(hop.wire_mean_us, 0.0) << flow.flow << " hop " << hop.hop;
      }
    }
  }

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"flows\""), std::string::npos);
  EXPECT_NE(json.find("\"hops\""), std::string::npos);
  std::ofstream out(dir / "ft256_madreport.json");
  out << json;
  ASSERT_TRUE(out.good());
}

// -------------------------------------------------- 1024-node torus ring

TEST(RoutingScale, Torus1024KilledGatewayMidTransfer) {
  // 16 clusters x (62 leaves + 2 east gateways) = 1024 nodes; traffic
  // crosses three gateway boundaries from cluster 0 to cluster 3.
  TorusBed bed = make_torus(16, 62, 2);
  Session session(bed.config);
  VirtualChannel vc(session, resilient_vdef(bed.route(0, 3)));
  ASSERT_EQ(session.node_count(), 1024u);
  ASSERT_EQ(vc.boundary_count(), 3u);

  std::vector<FlowSpec> flows;
  for (std::size_t i = 0; i < 6; ++i) {
    flows.push_back(FlowSpec{bed.leaf(0, i), bed.leaf(3, i)});
  }
  // Victim on the middle boundary, so both the upstream and downstream
  // legs of the route survive around the hole.
  const std::uint32_t victim = vc.next_node(1, flows[0].src, flows[0].dst);
  GatewayKiller::at_packet_count(vc, victim, 30);

  auto failure = run_flows(session, vc, flows, /*messages=*/2,
                           /*message_bytes=*/8 * 1024);
  const Status run = session.run();
  ASSERT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_TRUE(failure->empty()) << *failure;
  EXPECT_EQ(check_channel_drained(vc), "");
  EXPECT_EQ(vc.routing_counters().gateway_kills, 1u);
  EXPECT_FALSE(session.hostdb().alive(victim));
}

// ------------------------------------------------- killed-gateway sweeps

TEST(RoutingScale, KilledGatewaySeedSweep) {
  // Scan the kill instant across the whole packet stream: before the
  // first data packet, inside the bulk, near the tail, and past the end
  // (the kill stays armed but never fires — equally valid). 18 nodes
  // keeps ~8 full sims affordable.
  for (std::uint64_t after_packets : {1u, 5u, 10u, 20u, 35u, 50u, 75u, 100u}) {
    FatTreeBed bed = make_fat_tree(2, 6, 3);
    Session session(bed.config);
    VirtualChannel vc(session, resilient_vdef(bed.route(0, 1)));
    const std::vector<FlowSpec> flows = cross_cluster_flows(bed, 4);
    const std::uint32_t victim =
        vc.next_node(0, flows[0].src, flows[0].dst);
    GatewayKiller::at_packet_count(vc, victim, after_packets);

    auto failure = run_flows(session, vc, flows, /*messages=*/3,
                             /*message_bytes=*/8 * 1024);
    const Status run = session.run();
    ASSERT_TRUE(run.is_ok())
        << "kill after " << after_packets << " packets: " << run.to_string();
    EXPECT_TRUE(failure->empty())
        << "kill after " << after_packets << " packets: " << *failure;
    EXPECT_EQ(check_channel_drained(vc), "")
        << "kill after " << after_packets << " packets";
    EXPECT_LE(vc.routing_counters().gateway_kills, 1u);
  }
}

// -------------------------------- driver partition -> end-to-end failover

/// Core rank of gateway (cluster, g): make_fat_tree pushes gateways onto
/// the core network cluster-major, so ranks follow the same order.
std::uint32_t core_rank(const FatTreeBed& bed, std::uint32_t gateway_node) {
  for (std::size_t c = 0; c < bed.clusters; ++c) {
    for (std::size_t g = 0; g < bed.gateways_per_cluster; ++g) {
      if (bed.gateway(c, g) == gateway_node) {
        return static_cast<std::uint32_t>(c * bed.gateways_per_cluster + g);
      }
    }
  }
  ADD_FAILURE() << "node " << gateway_node << " is not a gateway";
  return 0;
}

TEST(RoutingScale, PartitionTriggersFailoverEndToEnd) {
  // No explicit kill anywhere: a scripted fabric partition between the
  // two core gateways flow 0 uses must travel the entire failure chain
  // — reliable-link give-up, link error handler, route_network_failure,
  // the channel's failure listener, gateway kill, replay — and the flows
  // must still satisfy every delivery invariant. The partition instant
  // sweeps across the transfer.
  //
  // The gateway choice is deterministic, so a throwaway session (no
  // faults) tells us which core ranks to partition.
  FatTreeBed probe_bed = make_fat_tree(2, 4, 2);
  std::uint32_t gw_out = 0, gw_in = 0;
  const std::vector<FlowSpec> flows = {{probe_bed.leaf(0, 0),
                                        probe_bed.leaf(1, 0)},
                                       {probe_bed.leaf(0, 1),
                                        probe_bed.leaf(1, 1)}};
  {
    Session probe(probe_bed.config);
    VirtualChannel vc(probe, resilient_vdef(probe_bed.route(0, 1)));
    gw_out = vc.next_node(0, flows[0].src, flows[0].dst);
    gw_in = vc.next_node(1, flows[0].src, flows[0].dst);
  }

  std::uint64_t total_kills = 0;
  for (int at_us = 500; at_us <= 3000; at_us += 500) {
    net::FaultPlan plan(/*seed=*/at_us);
    plan.partition(core_rank(probe_bed, gw_out), core_rank(probe_bed, gw_in),
                   sim::microseconds(at_us));

    FatTreeBed bed = make_fat_tree(2, 4, 2);
    net::TcpParams tcp = net::TcpParams::fast_ethernet();
    tcp.fabric.faults = &plan;
    tcp.reliability.rto_initial = sim::microseconds(200);
    tcp.reliability.rto_max = sim::microseconds(800);
    tcp.reliability.max_retransmits = 5;
    for (mad::NetworkDef& net : bed.config.networks) {
      if (net.name == "ft_core_net") net.tcp_params = tcp;
    }

    Session session(bed.config);
    VirtualChannel vc(session, resilient_vdef(bed.route(0, 1)));
    auto failure = run_flows(session, vc, flows, /*messages=*/4,
                             /*message_bytes=*/16 * 1024);
    const Status run = session.run();
    ASSERT_TRUE(run.is_ok())
        << "partition at " << at_us << "us: " << run.to_string();
    EXPECT_TRUE(failure->empty())
        << "partition at " << at_us << "us: " << *failure;
    EXPECT_EQ(check_channel_drained(vc), "")
        << "partition at " << at_us << "us";
    total_kills += vc.routing_counters().gateway_kills;
  }
  // Somewhere in the sweep the partition must have landed mid-transfer
  // and actually cost a gateway (instants past the transfer's end are
  // no-kill runs, which is why this accumulates over the sweep).
  EXPECT_GE(total_kills, 1u);
}

// ----------------------------------------- failover window, madcheck'd

TEST(RoutingScale, FailoverWindowExploredSchedules) {
  // The kill lands while sender, gateway pump, repair, and receiver
  // fibers are all runnable: madcheck permutes their interleavings and
  // the delivery invariants must hold under every schedule.
  auto body = []() -> Status {
    FatTreeBed bed = make_fat_tree(2, 2, 2);
    Session session(bed.config);
    VirtualChannel vc(session, resilient_vdef(bed.route(0, 1),
                                              /*mtu=*/2 * 1024));
    const std::vector<FlowSpec> flows = {{bed.leaf(0, 0), bed.leaf(1, 0)},
                                         {bed.leaf(0, 1), bed.leaf(1, 1)}};
    const std::uint32_t victim =
        vc.next_node(0, flows[0].src, flows[0].dst);
    GatewayKiller::at_packet_count(vc, victim, 4);
    auto failure = run_flows(session, vc, flows, /*messages=*/2,
                             /*message_bytes=*/6 * 1024);
    const Status run = session.run();
    if (!run.is_ok()) return run;
    if (!failure->empty()) return internal_error(*failure);
    const std::string drain = check_channel_drained(vc);
    if (!drain.empty()) return internal_error(drain);
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

// ----------------------------------- failure-domain routing regressions

TEST(RoutingScale, DoubleReportedGatewayFailureRoutesOnce) {
  FatTreeBed bed = make_fat_tree(2, 4, 2);
  Session session(bed.config);
  VirtualChannel vc(session, resilient_vdef(bed.route(0, 1)));

  mad::NetworkFailure report;
  report.network = &session.network("ft_core_net");
  report.status = unavailable("peer unresponsive (test)");
  report.src_node = bed.gateway(0, 0);
  report.dst_node = bed.gateway(1, 0);

  // First report: the listener absorbs it by retiring *both* ends of
  // the dead link — the unresponsive gateway, and the reporter, whose
  // endpoint on the failed network is terminal after a give-up. A
  // second, identical report (the same failure seen through another
  // link) returns the recorded domain with no further kills.
  EXPECT_EQ(session.route_network_failure(report),
            mad::FailureDomain::kHop);
  EXPECT_EQ(vc.routing_counters().gateway_kills, 2u);
  EXPECT_FALSE(session.hostdb().alive(bed.gateway(1, 0)));
  EXPECT_FALSE(session.hostdb().alive(bed.gateway(0, 0)));
  EXPECT_EQ(session.hostdb().epoch(), 2u);

  EXPECT_EQ(session.route_network_failure(report),
            mad::FailureDomain::kHop);
  EXPECT_EQ(vc.routing_counters().gateway_kills, 2u);
  EXPECT_EQ(session.hostdb().epoch(), 2u);
}

TEST(RoutingScale, LeafFailureIsANodeDomainNotAHop) {
  // A dead leaf is nobody's routing problem: no gateway sibling can
  // absorb it, so triage must land in the node domain and mark the host
  // dead — the session is failing, not re-routing.
  FatTreeBed bed = make_fat_tree(2, 4, 2);
  Session session(bed.config);
  VirtualChannel vc(session, resilient_vdef(bed.route(0, 1)));

  mad::NetworkFailure report;
  report.network = &session.network("ft_c0_net");
  report.status = unavailable("peer unresponsive (test)");
  report.src_node = bed.gateway(0, 0);
  report.dst_node = bed.leaf(0, 1);

  EXPECT_EQ(session.route_network_failure(report),
            mad::FailureDomain::kNode);
  EXPECT_FALSE(session.hostdb().alive(bed.leaf(0, 1)));
  EXPECT_EQ(vc.routing_counters().gateway_kills, 0u);
}

}  // namespace
}  // namespace mad2
