// End-to-end congestion control and weighted-fair scheduling:
// CongestionWindow AIMD behavior, DrrGate / FairPacketQueue arbitration,
// config resolution, and incast (N senders -> 1 receiver through a
// gateway) fairness invariants under the madcheck explore harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "fwd/fair_queue.hpp"
#include "fwd/virtual_channel.hpp"
#include "mad/congestion.hpp"
#include "obs/metrics.hpp"
#include "routing_testlib.hpp"
#include "sim/explore.hpp"
#include "testbed.hpp"
#include "util/bytes.hpp"

namespace mad2 {
namespace {

using fwd::FairPacketQueue;
using fwd::Packet;
using fwd::VirtualChannel;
using fwd::VirtualChannelDef;
using mad::CongestionConfig;
using mad::CongestionWindow;
using mad::DrrGate;
using mad::NodeRuntime;
using mad::Session;

// ------------------------------------------------------- CongestionWindow ---

CongestionConfig small_config() {
  CongestionConfig config;
  config.enabled = true;
  config.min_window = 1;
  config.max_window = 16;
  return config;
}

TEST(CongestionWindow, AdditiveIncreaseOnLowDelay) {
  sim::Simulator simulator;
  CongestionWindow window(&simulator, small_config(), 4.0);
  const double start = window.cwnd();
  for (int i = 0; i < 50; ++i) {
    window.before_send();
    window.on_delivered(sim::microseconds(100));  // constant: never congested
  }
  EXPECT_GT(window.cwnd(), start);
  EXPECT_LE(window.cwnd(), 16.0);
  EXPECT_EQ(window.decreases(), 0u);
  EXPECT_EQ(window.delivered(), 50u);
}

TEST(CongestionWindow, MultiplicativeDecreaseOnCongestion) {
  sim::Simulator simulator;
  CongestionWindow window(&simulator, small_config(), 8.0);
  window.before_send();
  window.on_delivered(sim::microseconds(100));  // establishes the floor
  // Queue builds: delay way past backlog_factor * base_rtt.
  window.before_send();
  window.on_delivered(sim::microseconds(1000));
  EXPECT_EQ(window.decreases(), 1u);
  EXPECT_LT(window.cwnd(), 8.0);
  EXPECT_GE(window.cwnd(), 1.0);
  // A second congested sample inside the same smoothed RTT must not
  // collapse the window again (decrease is rate-limited).
  window.before_send();
  window.on_delivered(sim::microseconds(1000));
  EXPECT_EQ(window.decreases(), 1u);
}

TEST(CongestionWindow, InitialWindowClampedToBounds) {
  sim::Simulator simulator;
  CongestionWindow huge(&simulator, small_config(), 1000.0);
  EXPECT_EQ(huge.cwnd(), 16.0);
  CongestionWindow tiny(&simulator, small_config(), 0.0);
  EXPECT_EQ(tiny.cwnd(), 1.0);
}

TEST(CongestionWindow, BeforeSendBlocksUntilDelivery) {
  sim::Simulator simulator;
  CongestionConfig config = small_config();
  CongestionWindow window(&simulator, config, 1.0);
  std::vector<int> order;
  simulator.spawn("sender", [&] {
    window.before_send();
    order.push_back(1);
    window.before_send();  // window of 1 is full: blocks until delivery
    order.push_back(3);
  });
  simulator.spawn("acker", [&] {
    simulator.advance(sim::microseconds(10));
    order.push_back(2);
    window.on_delivered(sim::microseconds(5));
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(window.in_flight(), 1u);
}

TEST(SeedWindow, BandwidthDelayProductInPackets) {
  CongestionConfig config = small_config();
  // 100 MB/s * 1 ms = 100 kB of flight; ~6.1 packets of 16 kB.
  const double seeded = mad::seed_window(config, 100.0, 16 * 1024);
  EXPECT_GT(seeded, 5.0);
  EXPECT_LT(seeded, 7.0);
  // Clamped into [min_window, max_window] at the extremes.
  EXPECT_EQ(mad::seed_window(config, 0.0, 16 * 1024), 1.0);
  EXPECT_EQ(mad::seed_window(config, 1e6, 16 * 1024), 16.0);
}

// ---------------------------------------------------------------- DrrGate ---

TEST(DrrGate, NoFlowStarvedUnderContention) {
  sim::Simulator simulator;
  DrrGate gate(&simulator, /*quantum=*/4096);
  std::vector<std::uint64_t> grants;
  const int rounds = 8;
  for (std::uint64_t flow = 0; flow < 2; ++flow) {
    simulator.spawn("flow" + std::to_string(flow), [&, flow] {
      for (int i = 0; i < rounds; ++i) {
        gate.acquire(flow, 4096);
        grants.push_back(flow);
        simulator.advance(sim::microseconds(1));
        gate.release();
      }
    });
  }
  ASSERT_TRUE(simulator.run().is_ok());
  ASSERT_EQ(grants.size(), 2u * rounds);
  // Equal-cost flows must take strict turns once both are queued: no flow
  // may be granted three times in a row.
  for (std::size_t i = 2; i < grants.size(); ++i) {
    EXPECT_FALSE(grants[i] == grants[i - 1] && grants[i] == grants[i - 2])
        << "flow " << grants[i] << " monopolized the gate at grant " << i;
  }
  const auto stats = gate.flow_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at(0).grants, static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(stats.at(1).grants, static_cast<std::uint64_t>(rounds));
}

TEST(DrrGate, ByteFairNotGrantFair) {
  sim::Simulator simulator;
  DrrGate gate(&simulator, /*quantum=*/4096);
  std::map<std::uint64_t, std::uint64_t> served_bytes;
  simulator.spawn("bulk", [&] {
    for (int i = 0; i < 4; ++i) {
      gate.acquire(0, 16 * 1024);
      served_bytes[0] += 16 * 1024;
      simulator.advance(sim::microseconds(4));
      gate.release();
    }
  });
  simulator.spawn("mice", [&] {
    for (int i = 0; i < 16; ++i) {
      gate.acquire(1, 4 * 1024);
      served_bytes[1] += 4 * 1024;
      simulator.advance(sim::microseconds(1));
      gate.release();
    }
  });
  ASSERT_TRUE(simulator.run().is_ok());
  // Both flows pushed 64 kB total; DRR should keep their byte shares
  // equal even though one needs 4x the grants.
  EXPECT_EQ(served_bytes[0], served_bytes[1]);
  const auto stats = gate.flow_stats();
  EXPECT_EQ(stats.at(0).bytes, stats.at(1).bytes);
  EXPECT_EQ(stats.at(1).grants, 4u * stats.at(0).grants);
}

// -------------------------------------------------------- FairPacketQueue ---

Packet make_packet(std::uint32_t src, std::uint32_t dst,
                   std::uint32_t payload_len) {
  Packet packet;
  packet.header.src = src;
  packet.header.dst = dst;
  packet.header.payload_len = payload_len;
  return packet;
}

TEST(FairPacketQueue, SmallFlowNotStarvedBehindBulk) {
  sim::Simulator simulator;
  FairPacketQueue queue(&simulator, /*capacity=*/16, /*quantum=*/4096);
  std::vector<std::uint32_t> order;
  simulator.spawn("driver", [&] {
    // Bulk flow 0 enqueues three near-MTU packets first; mouse flow 1
    // adds three tiny packets behind them.
    for (int i = 0; i < 3; ++i) queue.send(make_packet(0, 9, 10000));
    for (int i = 0; i < 3; ++i) queue.send(make_packet(1, 9, 100));
    for (int i = 0; i < 6; ++i) {
      auto packet = queue.receive();
      ASSERT_TRUE(packet.has_value());
      order.push_back(packet->header.src);
    }
  });
  ASSERT_TRUE(simulator.run().is_ok());
  ASSERT_EQ(order.size(), 6u);
  // DRR serves all three cheap packets before the bulk flow's second
  // expensive one — FIFO would have kept them behind all three.
  const auto second_bulk =
      std::find(order.begin() + 1, order.end(), 0u) - order.begin();
  const auto last_mouse =
      order.rend() - std::find(order.rbegin(), order.rend(), 1u) - 1;
  EXPECT_LT(last_mouse, second_bulk)
      << "small flow starved behind the bulk flow";
  const auto stats = queue.flow_stats();
  EXPECT_EQ(stats.at(FairPacketQueue::flow_key(0, 9)).dequeued, 3u);
  EXPECT_EQ(stats.at(FairPacketQueue::flow_key(1, 9)).dequeued, 3u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.depth_hwm(), 6u);
}

TEST(DrrGate, WeightedFlowTakesProportionalShare) {
  sim::Simulator simulator;
  DrrGate gate(&simulator, /*quantum=*/4096);
  gate.set_weight(0, 3.0);
  std::vector<std::uint64_t> grants;
  // Three concurrent fibers per flow keep a standing request backlog on
  // both flows, so the deficits — not the acquire/release handoff —
  // decide the order. (One serial acquirer per flow degenerates to
  // alternation: each pump only ever sees one waiter.)
  for (std::uint64_t flow = 0; flow < 2; ++flow) {
    for (int fiber = 0; fiber < 3; ++fiber) {
      simulator.spawn("f" + std::to_string(flow) + "_" +
                          std::to_string(fiber),
                      [&, flow] {
                        for (int i = 0; i < 4; ++i) {
                          gate.acquire(flow, 4096);
                          grants.push_back(flow);
                          simulator.advance(sim::microseconds(1));
                          gate.release();
                        }
                      });
    }
  }
  ASSERT_TRUE(simulator.run().is_ok());
  ASSERT_EQ(grants.size(), 24u);
  // Weight 3 vs 1 at equal request size: three grants per round against
  // one while both are backlogged, so the weighted flow dominates the
  // opening grants (equal weights would alternate, 4 apiece in 8).
  const auto flow0_early =
      std::count(grants.begin(), grants.begin() + 8, 0u);
  EXPECT_GE(flow0_early, 6)
      << "weight-3 flow did not get its proportional share of grants";
  const auto stats = gate.flow_stats();
  EXPECT_EQ(stats.at(0).grants, 12u);
  EXPECT_EQ(stats.at(1).grants, 12u);
}

TEST(FairPacketQueue, WeightedFlowReactivationIsExpedited) {
  sim::Simulator simulator;
  FairPacketQueue queue(&simulator, /*capacity=*/32, /*quantum=*/4096);
  queue.set_weight(FairPacketQueue::flow_key(7, 9), 8.0);
  std::vector<std::uint32_t> order;
  simulator.spawn("driver", [&] {
    // A standing backlog from two weight-1 bulk flows...
    for (int i = 0; i < 4; ++i) queue.send(make_packet(0, 9, 2048));
    for (int i = 0; i < 4; ++i) queue.send(make_packet(1, 9, 2048));
    // ...then a single packet from the weighted latency flow, arriving
    // last. DRR+ reactivation must put it at the head of the round.
    queue.send(make_packet(7, 9, 1024));
    for (int i = 0; i < 9; ++i) {
      auto packet = queue.receive();
      ASSERT_TRUE(packet.has_value());
      order.push_back(packet->header.src);
    }
  });
  ASSERT_TRUE(simulator.run().is_ok());
  ASSERT_EQ(order.size(), 9u);
  EXPECT_EQ(order.front(), 7u)
      << "weighted flow was not expedited past the bulk backlog";
}

TEST(FairPacketQueue, UnweightedReactivationJoinsTheTail) {
  sim::Simulator simulator;
  FairPacketQueue queue(&simulator, /*capacity=*/32, /*quantum=*/4096);
  std::vector<std::uint32_t> order;
  simulator.spawn("driver", [&] {
    // A weight-1 flow that drains to idle and reactivates must NOT jump
    // the round: churning windowed bulk flows would otherwise leapfrog
    // the head forever and starve whoever sits behind them.
    for (int i = 0; i < 3; ++i) queue.send(make_packet(0, 9, 2048));
    queue.send(make_packet(1, 9, 2048));  // flow 1 activates: tail
    for (int i = 0; i < 4; ++i) {
      auto packet = queue.receive();
      ASSERT_TRUE(packet.has_value());
      order.push_back(packet->header.src);
    }
  });
  ASSERT_TRUE(simulator.run().is_ok());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0u)
      << "a weight-1 reactivation preempted the flow already in service";
}

TEST(FairPacketQueue, CloseDrainsThenEnds) {
  sim::Simulator simulator;
  FairPacketQueue queue(&simulator, /*capacity=*/4, /*quantum=*/4096);
  std::size_t received = 0;
  bool ended = false;
  simulator.spawn("driver", [&] {
    queue.send(make_packet(2, 7, 64));
    queue.send(make_packet(3, 7, 64));
    queue.close();
    while (auto packet = queue.receive()) ++received;
    ended = true;
  });
  ASSERT_TRUE(simulator.run().is_ok());
  EXPECT_EQ(received, 2u);
  EXPECT_TRUE(ended);
}

// ------------------------------------------------------ config resolution ---

VirtualChannelDef incast_vdef(std::size_t mtu = 16 * 1024) {
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = {IncastBed::kLeftChannel, IncastBed::kRightChannel};
  def.mtu = mtu;
  return def;
}

TEST(VirtualChannelCongestion, DefOverrideBeatsSessionStanza) {
  IncastBed bed = make_incast(2);
  CongestionConfig session_cc;
  session_cc.enabled = true;
  session_cc.quantum = 1024;
  bed.config.congestion = session_cc;
  Session session(bed.config);
  VirtualChannelDef def = incast_vdef();
  CongestionConfig override_cc;
  override_cc.enabled = true;
  override_cc.quantum = 8192;
  def.congestion = override_cc;
  VirtualChannel vc(session, def);
  EXPECT_TRUE(vc.congestion_enabled());
  EXPECT_EQ(vc.congestion().quantum, 8192u);
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannelCongestion, SessionStanzaAppliesWhenDefUnset) {
  IncastBed bed = make_incast(2);
  CongestionConfig session_cc;
  session_cc.enabled = true;
  session_cc.max_window = 8;
  bed.config.congestion = session_cc;
  Session session(bed.config);
  VirtualChannel vc(session, incast_vdef());
  EXPECT_TRUE(vc.congestion_enabled());
  EXPECT_EQ(vc.congestion().max_window, 8u);
  ASSERT_TRUE(session.run().is_ok());
}

TEST(VirtualChannelCongestion, DisabledByDefault) {
  IncastBed bed = make_incast(2);
  Session session(bed.config);
  VirtualChannel vc(session, incast_vdef());
  EXPECT_FALSE(vc.congestion_enabled());
  // Without the congestion stanza the gateway runs its FIFO pipeline
  // queues; they report their depths (idle here), not fair-queue state.
  for (std::size_t depth : vc.gateway_queue_depths()) {
    EXPECT_EQ(depth, 0u);
  }
  EXPECT_TRUE(vc.stats().flows.empty());
  ASSERT_TRUE(session.run().is_ok());
}

// ------------------------------------------------------------------ incast ---

/// N senders each push one pattern-tagged message through the gateway to
/// the single receiver; the receiver drains them in arrival order.
void run_incast(Session& session, VirtualChannel& vc, const IncastBed& bed,
                std::size_t message_bytes) {
  // The fibers run inside session.run(), long after this helper has
  // returned — message_bytes must ride along by value, not by reference.
  for (std::uint32_t sender : bed.senders) {
    session.spawn(sender, "sender" + std::to_string(sender),
                  [&, sender, message_bytes](NodeRuntime&) {
                    auto payload = make_pattern_buffer(
                        message_bytes, static_cast<int>(sender) + 1);
                    auto& conn =
                        vc.endpoint(sender).begin_packing(bed.receiver);
                    conn.pack(payload);
                    conn.end_packing();
                  });
  }
  session.spawn(bed.receiver, "receiver", [&, message_bytes](NodeRuntime&) {
    for (std::size_t i = 0; i < bed.senders.size(); ++i) {
      auto& conn = vc.endpoint(bed.receiver).begin_unpacking();
      std::vector<std::byte> out(message_bytes);
      conn.unpack(out);
      const std::uint32_t src = conn.remote();
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, static_cast<int>(src) + 1))
          << "corrupt message from sender " << src;
    }
  });
}

TEST(Incast, FairDeliveryBoundedQueueAndConvergedWindows) {
  constexpr std::size_t kSenders = 6;
  constexpr std::size_t kMessage = 64 * 1024;
  IncastBed bed = make_incast(kSenders);
  CongestionConfig cc;
  cc.enabled = true;
  cc.min_window = 1;
  cc.max_window = 8;
  cc.gateway_queue = 8;
  cc.quantum = 4096;
  bed.config.congestion = cc;
  Session session(bed.config);
  VirtualChannel vc(session, incast_vdef(4 * 1024));
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  run_incast(session, vc, bed, kMessage);
  const Status run = session.run();
  obs::uninstall_metrics(&registry);
  ASSERT_TRUE(run.is_ok()) << run.to_string();

  const mad::TrafficStats stats = vc.stats();
  // One message = one 10-byte self-describing block header + the payload,
  // and the delivery counters see the whole stream.
  constexpr std::size_t kStream = kMessage + VirtualChannel::kBlockHeaderBytes;
  for (std::uint32_t sender : bed.senders) {
    const std::string key = std::to_string(sender) + "->" +
                            std::to_string(bed.receiver);
    ASSERT_TRUE(stats.flows.count(key)) << "flow " << key << " missing";
    const mad::FlowCounters& flow = stats.flows.at(key);
    EXPECT_GT(flow.packets, 0u) << "flow " << key << " starved";
    EXPECT_EQ(flow.bytes, kStream) << "flow " << key << " short-delivered";
    // Gateway backlog stayed bounded by the configured fair-queue depth.
    EXPECT_LE(flow.queue_depth_hwm, cc.gateway_queue);
    // The window adapted but stayed inside its configured bounds.
    const CongestionWindow* window =
        vc.flow_window(sender, bed.receiver);
    ASSERT_NE(window, nullptr);
    EXPECT_GE(window->cwnd(), static_cast<double>(cc.min_window));
    EXPECT_LE(window->cwnd(), static_cast<double>(cc.max_window));
    EXPECT_EQ(window->in_flight(), 0u) << "leaked window slot on " << key;
    EXPECT_GT(window->srtt(), 0);
    // Per-flow delivery histogram reached the ambient registry.
    EXPECT_GT(registry
                  .histogram("vc.flow." + std::to_string(sender) + "-" +
                             std::to_string(bed.receiver) + ".e2e")
                  ->count(),
              0u);
  }
  // All queues drained by the end of the run.
  for (std::size_t depth : vc.gateway_queue_depths()) EXPECT_EQ(depth, 0u);

  // Control-state gauges land next to the histograms.
  vc.export_metrics(registry);
  EXPECT_GT(registry.value("vc.flow.0-" + std::to_string(bed.receiver) +
                           ".packets"),
            0);
}

TEST(Incast, WindowAdaptsUnderOverload) {
  // One sender with a grossly oversized seed window against a slow right
  // hop: the delay feedback must pull at least one flow's window down.
  constexpr std::size_t kSenders = 4;
  IncastBed bed = make_incast(kSenders);
  CongestionConfig cc;
  cc.enabled = true;
  cc.init_window = 64;  // far above what the bottleneck supports
  cc.min_window = 1;
  cc.max_window = 64;
  cc.gateway_queue = 4;
  bed.config.congestion = cc;
  Session session(bed.config);
  VirtualChannel vc(session, incast_vdef(2 * 1024));
  run_incast(session, vc, bed, 128 * 1024);
  ASSERT_TRUE(session.run().is_ok());
  std::uint64_t decreases = 0;
  for (std::uint32_t sender : bed.senders) {
    const CongestionWindow* window = vc.flow_window(sender, bed.receiver);
    ASSERT_NE(window, nullptr);
    decreases += window->decreases();
  }
  EXPECT_GT(decreases, 0u)
      << "no flow ever backed off under a 4-to-1 incast overload";
}

TEST(Incast, KilledSenderDoesNotWedgeTheOthers) {
  // Sender 0 contributes one short message and exits; the remaining bulk
  // flows must still complete and every gateway queue must drain (a dead
  // flow's DRR state must not bank credit or hold a slot).
  constexpr std::size_t kSenders = 4;
  constexpr std::size_t kBulk = 48 * 1024;
  constexpr std::size_t kShort = 2 * 1024;
  IncastBed bed = make_incast(kSenders);
  CongestionConfig cc;
  cc.enabled = true;
  cc.max_window = 8;
  cc.gateway_queue = 8;
  bed.config.congestion = cc;
  Session session(bed.config);
  VirtualChannel vc(session, incast_vdef(4 * 1024));
  for (std::uint32_t sender : bed.senders) {
    const std::size_t bytes = sender == 0 ? kShort : kBulk;
    session.spawn(sender, "sender" + std::to_string(sender),
                  [&, sender, bytes](NodeRuntime&) {
                    auto payload = make_pattern_buffer(
                        bytes, static_cast<int>(sender) + 1);
                    auto& conn =
                        vc.endpoint(sender).begin_packing(bed.receiver);
                    conn.pack(payload);
                    conn.end_packing();
                    // Sender 0 is now gone for good (fiber exits).
                  });
  }
  session.spawn(bed.receiver, "receiver", [&](NodeRuntime&) {
    for (std::size_t i = 0; i < kSenders; ++i) {
      auto& conn = vc.endpoint(bed.receiver).begin_unpacking();
      const std::uint32_t src = conn.remote();
      std::vector<std::byte> out(src == 0 ? kShort : kBulk);
      conn.unpack(out);
      conn.end_unpacking();
      EXPECT_TRUE(verify_pattern(out, static_cast<int>(src) + 1));
    }
  });
  ASSERT_TRUE(session.run().is_ok());
  for (std::size_t depth : vc.gateway_queue_depths()) EXPECT_EQ(depth, 0u);
  const mad::TrafficStats stats = vc.stats();
  for (std::uint32_t sender : bed.senders) {
    const std::string key = std::to_string(sender) + "->" +
                            std::to_string(bed.receiver);
    const std::size_t expected =
        (sender == 0 ? kShort : kBulk) + VirtualChannel::kBlockHeaderBytes;
    EXPECT_EQ(stats.flows.at(key).bytes, expected);
  }
}

TEST(Incast, GatewaySchedulerSurvivesScheduleExploration) {
  // The DRR queue, per-flow windows, and the delivery feedback edge are
  // shared state among sender fibers, gateway pumps, and the receiver —
  // exactly the surface madcheck exists for. Invariants asserted here
  // are order-independent: full delivery, no starved flow, drained
  // queues, no leaked window slots.
  auto body = [] {
    constexpr std::size_t kSenders = 3;
    constexpr std::size_t kMessage = 6 * 1024;
    IncastBed bed = make_incast(kSenders);
    CongestionConfig cc;
    cc.enabled = true;
    cc.max_window = 4;
    cc.gateway_queue = 4;
    cc.quantum = 2048;
    bed.config.congestion = cc;
    Session session(bed.config);
    VirtualChannel vc(session, incast_vdef(2 * 1024));
    std::string failure;
    auto fail = [&](const std::string& what) {
      if (failure.empty()) failure = what;
    };
    for (std::uint32_t sender : bed.senders) {
      session.spawn(sender, "sender" + std::to_string(sender),
                    [&, sender](NodeRuntime&) {
                      auto payload = make_pattern_buffer(
                          kMessage, static_cast<int>(sender) + 1);
                      auto& conn =
                          vc.endpoint(sender).begin_packing(bed.receiver);
                      conn.pack(payload);
                      conn.end_packing();
                    });
    }
    session.spawn(bed.receiver, "receiver", [&](NodeRuntime&) {
      for (std::size_t i = 0; i < kSenders; ++i) {
        auto& conn = vc.endpoint(bed.receiver).begin_unpacking();
        std::vector<std::byte> out(kMessage);
        conn.unpack(out);
        const std::uint32_t src = conn.remote();
        conn.end_unpacking();
        if (!verify_pattern(out, static_cast<int>(src) + 1)) {
          fail("corrupt message from sender " + std::to_string(src));
        }
      }
    });
    const Status run = session.run();
    if (!run.is_ok()) return run;
    for (std::size_t depth : vc.gateway_queue_depths()) {
      if (depth != 0) fail("gateway queue not drained");
    }
    const mad::TrafficStats stats = vc.stats();
    for (std::uint32_t sender : bed.senders) {
      const std::string key = std::to_string(sender) + "->" +
                              std::to_string(bed.receiver);
      auto it = stats.flows.find(key);
      if (it == stats.flows.end() ||
          it->second.bytes != kMessage + VirtualChannel::kBlockHeaderBytes) {
        fail("flow " + key + " did not deliver in full");
      }
      const CongestionWindow* window = vc.flow_window(sender, bed.receiver);
      if (window == nullptr || window->in_flight() != 0) {
        fail("flow " + key + " leaked a window slot");
      }
    }
    if (!failure.empty()) return internal_error(failure);
    return Status::ok();
  };
  sim::ExploreOptions options;
  options.random_runs = 200;
  options.max_exhaustive_runs = 50;
  const sim::ExploreResult result = sim::explore(body, options);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GE(result.runs, 200);
}

TEST(VirtualChannelCongestion, WindowSurvivesGatewayDeathMidTransfer) {
  // Congestion control overlaid on resilient routing (both stanzas on,
  // via the session config): a gateway dies mid-transfer with window
  // slots charged to packets it had swallowed. Those slots are only
  // refunded when the replayed copies deliver — if replay lost them, the
  // windows would wedge at min_window with phantom in-flight packets and
  // the transfer would never finish. Completion IS the deadlock check.
  FatTreeBed bed = make_fat_tree(2, 4, 2);
  CongestionConfig cc;
  cc.enabled = true;
  cc.min_window = 1;
  cc.max_window = 8;
  cc.gateway_queue = 8;
  cc.quantum = 4096;
  bed.config.congestion = cc;
  mad::TopologyConfig topology;
  topology.enabled = true;
  bed.config.topology = topology;
  Session session(bed.config);

  VirtualChannelDef def;
  def.name = "vc";
  def.hops = bed.route(0, 1);
  def.mtu = 4 * 1024;
  VirtualChannel vc(session, def);
  ASSERT_TRUE(vc.congestion().enabled);
  ASSERT_TRUE(vc.topology().enabled);

  const std::vector<FlowSpec> flows = {{bed.leaf(0, 0), bed.leaf(1, 0)},
                                       {bed.leaf(0, 1), bed.leaf(1, 1)}};
  const std::uint32_t victim = vc.next_node(0, flows[0].src, flows[0].dst);
  GatewayKiller::at_packet_count(vc, victim, 6);

  auto failure = run_flows(session, vc, flows, /*messages=*/2,
                           /*message_bytes=*/24 * 1024);
  const Status run = session.run();
  ASSERT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_TRUE(failure->empty()) << *failure;
  EXPECT_EQ(check_channel_drained(vc), "");
  EXPECT_EQ(vc.routing_counters().gateway_kills, 1u);

  for (const FlowSpec& flow : flows) {
    const CongestionWindow* window = vc.flow_window(flow.src, flow.dst);
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(window->in_flight(), 0u)
        << "flow " << flow.src << "->" << flow.dst
        << " still charging the window for packets the dead gateway ate";
    EXPECT_GE(window->cwnd(), static_cast<double>(cc.min_window));
    EXPECT_LE(window->cwnd(), static_cast<double>(cc.max_window));
  }
}

}  // namespace
}  // namespace mad2
