// Resilient multi-gateway routing, 64-node smoke tier: small enough for
// the sanitizer builds, covering the same invariants the `scale` tier
// proves at 256/1024 nodes (tests/routing_scale_test.cpp) — healthy-path
// gateway spreading, a mid-transfer gateway kill with exactly-once
// in-order delivery, and drained-queue / packet-pool hygiene afterwards.
#include <gtest/gtest.h>

#include <vector>

#include "fwd/virtual_channel.hpp"
#include "mad/hostdb.hpp"
#include "routing_testlib.hpp"
#include "testbed.hpp"

namespace mad2 {
namespace {

using fwd::VirtualChannel;
using fwd::VirtualChannelDef;
using mad::Session;

constexpr std::size_t kLeaves = 30;
constexpr std::size_t kGateways = 2;  // 2 * (30 + 2) = 64 nodes

VirtualChannelDef smoke_vdef(const FatTreeBed& bed) {
  VirtualChannelDef def;
  def.name = "vc";
  def.hops = bed.route(0, 1);
  def.mtu = 4 * 1024;
  mad::TopologyConfig topology;
  topology.enabled = true;
  def.topology = topology;
  return def;
}

std::vector<FlowSpec> smoke_flows(const FatTreeBed& bed, std::size_t count) {
  std::vector<FlowSpec> flows;
  for (std::size_t i = 0; i < count; ++i) {
    flows.push_back(FlowSpec{bed.leaf(0, i), bed.leaf(1, i)});
  }
  return flows;
}

TEST(RoutingSmoke, HealthyFatTreeDeliversAndSpreads) {
  FatTreeBed bed = make_fat_tree(2, kLeaves, kGateways);
  Session session(bed.config);
  VirtualChannel vc(session, smoke_vdef(bed));
  ASSERT_EQ(session.node_count(), 64u);
  ASSERT_EQ(vc.boundary_count(), 2u);
  EXPECT_EQ(vc.boundary_gateways(0).size(), kGateways);

  auto failure = run_flows(session, vc, smoke_flows(bed, 6),
                           /*messages=*/2, /*message_bytes=*/12 * 1024);
  const Status run = session.run();
  ASSERT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_TRUE(failure->empty()) << *failure;
  EXPECT_EQ(check_channel_drained(vc), "");
  EXPECT_EQ(vc.routing_counters().gateway_kills, 0u);

  // Six flows hashed over two gateways per boundary: with no deaths, the
  // load must not all collapse onto one gateway.
  std::size_t used = 0;
  for (std::size_t g = 0; g < kGateways; ++g) {
    if (vc.gateway_forwarded(bed.gateway(0, g)) > 0) ++used;
  }
  EXPECT_GE(used, 2u) << "hashed spread left a cluster-0 gateway idle";
}

TEST(RoutingSmoke, KilledGatewayMidTransferKeepsEveryMessage) {
  FatTreeBed bed = make_fat_tree(2, kLeaves, kGateways);
  Session session(bed.config);
  VirtualChannel vc(session, smoke_vdef(bed));

  const std::vector<FlowSpec> flows = smoke_flows(bed, 6);
  // Kill the gateway flow 0 is actually routed through, a deterministic
  // choice, once the gateways have moved a couple dozen packets.
  const std::uint32_t victim =
      vc.next_node(0, flows[0].src, flows[0].dst);
  GatewayKiller::at_packet_count(vc, victim, 20);

  auto failure = run_flows(session, vc, flows, /*messages=*/2,
                           /*message_bytes=*/12 * 1024);
  const Status run = session.run();
  ASSERT_TRUE(run.is_ok()) << run.to_string();
  EXPECT_TRUE(failure->empty()) << *failure;
  EXPECT_EQ(check_channel_drained(vc), "");

  EXPECT_EQ(vc.routing_counters().gateway_kills, 1u);
  EXPECT_FALSE(session.hostdb().alive(victim));
  EXPECT_EQ(session.hostdb().dead_count(), 1u);
  for (std::size_t b = 0; b < vc.boundary_count(); ++b) {
    for (std::uint32_t g : vc.healthy_gateways(b)) {
      EXPECT_NE(g, victim) << "dead gateway still in a healthy set";
    }
  }
}

}  // namespace
}  // namespace mad2
