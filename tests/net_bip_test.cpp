// Tests for the BIP/Myrinet driver: short-path buffering, long-path
// rendezvous requirements, ordering, integrity, and calibration against
// the paper's raw numbers (latency ~5 us, bandwidth ~126 MB/s).
#include <gtest/gtest.h>

#include "net/bip.hpp"
#include "sim/time.hpp"
#include "testbed.hpp"
#include "util/bytes.hpp"

namespace mad2::net {
namespace {

using sim::to_us;

struct BipBed : Testbed {
  explicit BipBed(int n)
      : Testbed(n),
        network(&simulator, node_ptrs(), BipParams::myrinet_lanai43()) {}
  BipNetwork network;
};

TEST(Bip, ShortMessageRoundTripsData) {
  BipBed bed(2);
  const auto payload = make_pattern_buffer(256, 1);
  bool received = false;
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).send_short(1, 7, payload);
  });
  bed.simulator.spawn("receiver", [&] {
    std::vector<std::byte> out(256);
    std::uint32_t src = 99;
    const std::size_t n = bed.network.port(1).recv_short_copy(7, out, &src);
    EXPECT_EQ(n, 256u);
    EXPECT_EQ(src, 0u);
    EXPECT_TRUE(verify_pattern(out, 1));
    received = true;
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_TRUE(received);
}

TEST(Bip, ShortLatencyIsAboutFiveMicroseconds) {
  BipBed bed(2);
  sim::Time arrival = 0;
  const auto payload = make_pattern_buffer(4, 2);
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).send_short(1, 0, payload);
  });
  bed.simulator.spawn("receiver", [&] {
    std::vector<std::byte> out(4);
    bed.network.port(1).recv_short_copy(0, out);
    arrival = bed.simulator.now();
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_GT(to_us(arrival), 3.0);
  EXPECT_LT(to_us(arrival), 7.0);
}

TEST(Bip, ShortMessagesKeepFifoOrderPerTag) {
  BipBed bed(2);
  std::vector<int> order;
  bed.simulator.spawn("sender", [&] {
    for (int i = 0; i < 10; ++i) {
      std::vector<std::byte> m{static_cast<std::byte>(i)};
      bed.network.port(0).send_short(1, 3, m);
    }
  });
  bed.simulator.spawn("receiver", [&] {
    for (int i = 0; i < 10; ++i) {
      std::vector<std::byte> out(1);
      bed.network.port(1).recv_short_copy(3, out);
      order.push_back(static_cast<int>(out[0]));
    }
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Bip, TagsAreIndependentQueues) {
  BipBed bed(2);
  bed.simulator.spawn("sender", [&] {
    std::vector<std::byte> a{std::byte{1}};
    std::vector<std::byte> b{std::byte{2}};
    bed.network.port(0).send_short(1, 10, a);
    bed.network.port(0).send_short(1, 20, b);
  });
  bed.simulator.spawn("receiver", [&] {
    std::vector<std::byte> out(1);
    // Receive tag 20 first even though tag 10 arrived first.
    bed.network.port(1).recv_short_copy(20, out);
    EXPECT_EQ(out[0], std::byte{2});
    bed.network.port(1).recv_short_copy(10, out);
    EXPECT_EQ(out[0], std::byte{1});
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Bip, ZeroCopyShortSlotIsStableUntilRelease) {
  BipBed bed(2);
  const auto payload = make_pattern_buffer(512, 9);
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).send_short(1, 0, payload);
    // A second message while the first slot is checked out.
    bed.network.port(0).send_short(1, 0, payload);
  });
  bed.simulator.spawn("receiver", [&] {
    BipShortSlot first = bed.network.port(1).recv_short(0);
    BipShortSlot second = bed.network.port(1).recv_short(0);
    EXPECT_TRUE(verify_pattern(first.data, 9));
    EXPECT_TRUE(verify_pattern(second.data, 9));
    bed.network.port(1).release_short(first);
    bed.network.port(1).release_short(second);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Bip, WaitShortPeeksSourceWithoutConsuming) {
  BipBed bed(3);
  bed.simulator.spawn("sender2", [&] {
    std::vector<std::byte> m{std::byte{42}};
    bed.network.port(2).send_short(1, 0, m);
  });
  bed.simulator.spawn("receiver", [&] {
    const std::uint32_t src = bed.network.port(1).wait_short(0);
    EXPECT_EQ(src, 2u);
    EXPECT_TRUE(bed.network.port(1).short_pending(0));
    std::vector<std::byte> out(1);
    bed.network.port(1).recv_short_copy(0, out);
    EXPECT_FALSE(bed.network.port(1).short_pending(0));
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Bip, LongMessageDeliversDirectlyIntoPostedBuffer) {
  BipBed bed(2);
  const auto payload = make_pattern_buffer(256 * 1024, 4);
  std::vector<std::byte> sink(256 * 1024);
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv_long(0, 5, sink);
    // Tell the sender we are ready (the rendezvous Madeleine's TM does).
    std::vector<std::byte> ack{std::byte{1}};
    bed.network.port(1).send_short(0, 5, ack);
    bed.network.port(1).wait_recv_long(0, 5);
    EXPECT_TRUE(verify_pattern(sink, 4));
  });
  bed.simulator.spawn("sender", [&] {
    std::vector<std::byte> ack(1);
    bed.network.port(0).recv_short_copy(5, ack);
    bed.network.port(0).send_long(1, 5, payload);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Bip, LongBandwidthApproaches126MBs) {
  BipBed bed(2);
  const std::size_t size = 4 * 1024 * 1024;
  const auto payload = make_pattern_buffer(size, 6);
  std::vector<std::byte> sink(size);
  sim::Time start = 0;
  sim::Time end = 0;
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv_long(0, 0, sink);
    std::vector<std::byte> ack{std::byte{1}};
    bed.network.port(1).send_short(0, 0, ack);
    bed.network.port(1).wait_recv_long(0, 0);
    end = bed.simulator.now();
  });
  bed.simulator.spawn("sender", [&] {
    std::vector<std::byte> ack(1);
    bed.network.port(0).recv_short_copy(0, ack);
    start = bed.simulator.now();
    bed.network.port(0).send_long(1, 0, payload);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
  const double mbs = sim::bandwidth_mbs(size, end - start);
  EXPECT_GT(mbs, 110.0);
  EXPECT_LT(mbs, 130.0);
  EXPECT_TRUE(verify_pattern(sink, 6));
}

TEST(Bip, MultipleLongPostsCompleteInOrder) {
  BipBed bed(2);
  const auto a = make_pattern_buffer(10000, 11);
  const auto b = make_pattern_buffer(20000, 12);
  std::vector<std::byte> sink_a(10000);
  std::vector<std::byte> sink_b(20000);
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv_long(0, 0, sink_a);
    bed.network.port(1).post_recv_long(0, 0, sink_b);
    std::vector<std::byte> ack{std::byte{1}};
    bed.network.port(1).send_short(0, 0, ack);
    bed.network.port(1).wait_recv_long(0, 0);
    EXPECT_TRUE(verify_pattern(sink_a, 11));
    bed.network.port(1).wait_recv_long(0, 0);
    EXPECT_TRUE(verify_pattern(sink_b, 12));
  });
  bed.simulator.spawn("sender", [&] {
    std::vector<std::byte> ack(1);
    bed.network.port(0).recv_short_copy(0, ack);
    bed.network.port(0).send_long(1, 0, a);
    bed.network.port(0).send_long(1, 0, b);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Bip, EmptyLongMessageCompletes) {
  BipBed bed(2);
  std::vector<std::byte> empty;
  bed.simulator.spawn("receiver", [&] {
    bed.network.port(1).post_recv_long(0, 0, {});
    std::vector<std::byte> ack{std::byte{1}};
    bed.network.port(1).send_short(0, 0, ack);
    bed.network.port(1).wait_recv_long(0, 0);
  });
  bed.simulator.spawn("sender", [&] {
    std::vector<std::byte> ack(1);
    bed.network.port(0).recv_short_copy(0, ack);
    bed.network.port(0).send_long(1, 0, empty);
  });
  ASSERT_TRUE(bed.simulator.run().is_ok());
}

TEST(Bip, LongChunkWithoutPostedRecvAborts) {
  BipBed bed(2);
  const auto payload = make_pattern_buffer(8192, 1);
  bed.simulator.spawn("sender", [&] {
    bed.network.port(0).send_long(1, 0, payload);
  });
  EXPECT_DEATH(
      { (void)bed.simulator.run(); }, "no posted receive");
}

TEST(Bip, BidirectionalTrafficDoesNotDeadlock) {
  BipBed bed(2);
  const auto payload = make_pattern_buffer(64 * 1024, 3);
  int done = 0;
  for (int me = 0; me < 2; ++me) {
    bed.simulator.spawn("peer" + std::to_string(me), [&, me] {
      const std::uint32_t other = 1 - me;
      std::vector<std::byte> sink(64 * 1024);
      bed.network.port(me).post_recv_long(other, 0, sink);
      std::vector<std::byte> ack{std::byte{1}};
      bed.network.port(me).send_short(other, 0, ack);
      std::vector<std::byte> ack_in(1);
      bed.network.port(me).recv_short_copy(0, ack_in);
      bed.network.port(me).send_long(other, 0, payload);
      bed.network.port(me).wait_recv_long(other, 0);
      EXPECT_TRUE(verify_pattern(sink, 3));
      ++done;
    });
  }
  ASSERT_TRUE(bed.simulator.run().is_ok());
  EXPECT_EQ(done, 2);
}

}  // namespace
}  // namespace mad2::net
