// madreport: aggregate per-node metrics JSON snapshots into one cluster
// health report.
//
//   madreport [--text] [-o OUT] metrics1.json metrics2.json ...
//
// Each input is a MetricsRegistry::write_json file (a bench --json
// metrics sidecar, a trace-dump-N-metrics.json from an auto-dump, or a
// Session::export_metrics snapshot written by a test). The output is one
// consolidated JSON (default) or text report with per-flow rollups —
// packets, worst surviving cwnd, worst srtt, e2e percentiles, per-hop
// queue/wire latency attribution — plus cluster-wide retransmit/drop
// totals. All the logic lives in obs::cluster_report (src/obs/report.*);
// this binary is argument parsing and I/O.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--text] [-o OUT] metrics.json [metrics.json ...]\n"
               "  --text   human-readable report instead of JSON\n"
               "  -o OUT   write the report to OUT instead of stdout\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool text = false;
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--text") == 0) {
      text = true;
    } else if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      return usage(argv[0]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::vector<std::string> errors;
  const mad2::obs::ClusterReport report =
      mad2::obs::cluster_report_from_files(inputs, &errors);
  for (const std::string& error : errors) {
    std::fprintf(stderr, "madreport: %s\n", error.c_str());
  }
  if (report.inputs == 0) {
    std::fprintf(stderr, "madreport: no readable inputs\n");
    return 1;
  }

  const std::string body = text ? report.to_text() : report.to_json();
  if (out_path.empty()) {
    std::fwrite(body.data(), 1, body.size(), stdout);
  } else {
    std::FILE* file = std::fopen(out_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "madreport: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
  }
  // Partial input is worth reporting but the report itself is still
  // valid; signal the skip with a distinct exit code for CI scripts.
  return errors.empty() ? 0 : 3;
}
