file(REMOVE_RECURSE
  "CMakeFiles/multirail.dir/multirail.cpp.o"
  "CMakeFiles/multirail.dir/multirail.cpp.o.d"
  "multirail"
  "multirail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
