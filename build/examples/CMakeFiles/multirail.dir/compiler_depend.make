# Empty compiler generated dependencies file for multirail.
# This may be replaced when dependencies are built.
