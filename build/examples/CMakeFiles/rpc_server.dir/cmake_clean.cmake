file(REMOVE_RECURSE
  "CMakeFiles/rpc_server.dir/rpc_server.cpp.o"
  "CMakeFiles/rpc_server.dir/rpc_server.cpp.o.d"
  "rpc_server"
  "rpc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
