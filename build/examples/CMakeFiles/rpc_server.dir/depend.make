# Empty dependencies file for rpc_server.
# This may be replaced when dependencies are built.
