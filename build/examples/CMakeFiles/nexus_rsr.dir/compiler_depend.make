# Empty compiler generated dependencies file for nexus_rsr.
# This may be replaced when dependencies are built.
