file(REMOVE_RECURSE
  "CMakeFiles/nexus_rsr.dir/nexus_rsr.cpp.o"
  "CMakeFiles/nexus_rsr.dir/nexus_rsr.cpp.o.d"
  "nexus_rsr"
  "nexus_rsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_rsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
