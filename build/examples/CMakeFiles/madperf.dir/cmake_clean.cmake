file(REMOVE_RECURSE
  "CMakeFiles/madperf.dir/madperf.cpp.o"
  "CMakeFiles/madperf.dir/madperf.cpp.o.d"
  "madperf"
  "madperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
