# Empty dependencies file for madperf.
# This may be replaced when dependencies are built.
