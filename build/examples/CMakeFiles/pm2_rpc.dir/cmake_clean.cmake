file(REMOVE_RECURSE
  "CMakeFiles/pm2_rpc.dir/pm2_rpc.cpp.o"
  "CMakeFiles/pm2_rpc.dir/pm2_rpc.cpp.o.d"
  "pm2_rpc"
  "pm2_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
