# Empty dependencies file for pm2_rpc.
# This may be replaced when dependencies are built.
