# Empty compiler generated dependencies file for pm2_rpc.
# This may be replaced when dependencies are built.
