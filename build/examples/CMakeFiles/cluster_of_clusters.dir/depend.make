# Empty dependencies file for cluster_of_clusters.
# This may be replaced when dependencies are built.
