file(REMOVE_RECURSE
  "CMakeFiles/cluster_of_clusters.dir/cluster_of_clusters.cpp.o"
  "CMakeFiles/cluster_of_clusters.dir/cluster_of_clusters.cpp.o.d"
  "cluster_of_clusters"
  "cluster_of_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_of_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
