file(REMOVE_RECURSE
  "../bench/abl_aggregation"
  "../bench/abl_aggregation.pdb"
  "CMakeFiles/abl_aggregation.dir/abl_aggregation.cpp.o"
  "CMakeFiles/abl_aggregation.dir/abl_aggregation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
