file(REMOVE_RECURSE
  "../bench/fig6_mpi_sci"
  "../bench/fig6_mpi_sci.pdb"
  "CMakeFiles/fig6_mpi_sci.dir/fig6_mpi_sci.cpp.o"
  "CMakeFiles/fig6_mpi_sci.dir/fig6_mpi_sci.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mpi_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
