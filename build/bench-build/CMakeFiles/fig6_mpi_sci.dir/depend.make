# Empty dependencies file for fig6_mpi_sci.
# This may be replaced when dependencies are built.
