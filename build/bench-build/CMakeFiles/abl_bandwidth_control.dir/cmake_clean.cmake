file(REMOVE_RECURSE
  "../bench/abl_bandwidth_control"
  "../bench/abl_bandwidth_control.pdb"
  "CMakeFiles/abl_bandwidth_control.dir/abl_bandwidth_control.cpp.o"
  "CMakeFiles/abl_bandwidth_control.dir/abl_bandwidth_control.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bandwidth_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
