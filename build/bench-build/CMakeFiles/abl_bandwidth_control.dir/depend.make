# Empty dependencies file for abl_bandwidth_control.
# This may be replaced when dependencies are built.
