file(REMOVE_RECURSE
  "../bench/micro_pack"
  "../bench/micro_pack.pdb"
  "CMakeFiles/micro_pack.dir/micro_pack.cpp.o"
  "CMakeFiles/micro_pack.dir/micro_pack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
