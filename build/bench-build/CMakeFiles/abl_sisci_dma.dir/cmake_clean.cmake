file(REMOVE_RECURSE
  "../bench/abl_sisci_dma"
  "../bench/abl_sisci_dma.pdb"
  "CMakeFiles/abl_sisci_dma.dir/abl_sisci_dma.cpp.o"
  "CMakeFiles/abl_sisci_dma.dir/abl_sisci_dma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sisci_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
