# Empty dependencies file for abl_sisci_dma.
# This may be replaced when dependencies are built.
