file(REMOVE_RECURSE
  "CMakeFiles/mad2_benchutil.dir/bench_util.cpp.o"
  "CMakeFiles/mad2_benchutil.dir/bench_util.cpp.o.d"
  "libmad2_benchutil.a"
  "libmad2_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
