file(REMOVE_RECURSE
  "libmad2_benchutil.a"
)
