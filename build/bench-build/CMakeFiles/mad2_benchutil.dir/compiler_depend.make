# Empty compiler generated dependencies file for mad2_benchutil.
# This may be replaced when dependencies are built.
