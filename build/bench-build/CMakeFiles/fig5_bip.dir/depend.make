# Empty dependencies file for fig5_bip.
# This may be replaced when dependencies are built.
