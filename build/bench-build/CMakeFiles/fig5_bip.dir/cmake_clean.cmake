file(REMOVE_RECURSE
  "../bench/fig5_bip"
  "../bench/fig5_bip.pdb"
  "CMakeFiles/fig5_bip.dir/fig5_bip.cpp.o"
  "CMakeFiles/fig5_bip.dir/fig5_bip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
