file(REMOVE_RECURSE
  "../bench/fig11_fwd_myri_to_sci"
  "../bench/fig11_fwd_myri_to_sci.pdb"
  "CMakeFiles/fig11_fwd_myri_to_sci.dir/fig11_fwd_myri_to_sci.cpp.o"
  "CMakeFiles/fig11_fwd_myri_to_sci.dir/fig11_fwd_myri_to_sci.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fwd_myri_to_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
