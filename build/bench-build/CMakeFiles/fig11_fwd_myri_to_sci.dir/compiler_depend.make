# Empty compiler generated dependencies file for fig11_fwd_myri_to_sci.
# This may be replaced when dependencies are built.
