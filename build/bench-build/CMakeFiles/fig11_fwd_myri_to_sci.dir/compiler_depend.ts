# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_fwd_myri_to_sci.
