# Empty dependencies file for abl_modes.
# This may be replaced when dependencies are built.
