file(REMOVE_RECURSE
  "../bench/abl_modes"
  "../bench/abl_modes.pdb"
  "CMakeFiles/abl_modes.dir/abl_modes.cpp.o"
  "CMakeFiles/abl_modes.dir/abl_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
