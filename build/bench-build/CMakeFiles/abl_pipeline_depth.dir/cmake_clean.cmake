file(REMOVE_RECURSE
  "../bench/abl_pipeline_depth"
  "../bench/abl_pipeline_depth.pdb"
  "CMakeFiles/abl_pipeline_depth.dir/abl_pipeline_depth.cpp.o"
  "CMakeFiles/abl_pipeline_depth.dir/abl_pipeline_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pipeline_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
