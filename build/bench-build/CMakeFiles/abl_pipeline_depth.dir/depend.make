# Empty dependencies file for abl_pipeline_depth.
# This may be replaced when dependencies are built.
