# Empty dependencies file for abl_credit_window.
# This may be replaced when dependencies are built.
