file(REMOVE_RECURSE
  "../bench/abl_credit_window"
  "../bench/abl_credit_window.pdb"
  "CMakeFiles/abl_credit_window.dir/abl_credit_window.cpp.o"
  "CMakeFiles/abl_credit_window.dir/abl_credit_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_credit_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
