# Empty compiler generated dependencies file for fig10_fwd_sci_to_myri.
# This may be replaced when dependencies are built.
