file(REMOVE_RECURSE
  "../bench/fig10_fwd_sci_to_myri"
  "../bench/fig10_fwd_sci_to_myri.pdb"
  "CMakeFiles/fig10_fwd_sci_to_myri.dir/fig10_fwd_sci_to_myri.cpp.o"
  "CMakeFiles/fig10_fwd_sci_to_myri.dir/fig10_fwd_sci_to_myri.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fwd_sci_to_myri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
