file(REMOVE_RECURSE
  "../bench/fig7_nexus"
  "../bench/fig7_nexus.pdb"
  "CMakeFiles/fig7_nexus.dir/fig7_nexus.cpp.o"
  "CMakeFiles/fig7_nexus.dir/fig7_nexus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_nexus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
