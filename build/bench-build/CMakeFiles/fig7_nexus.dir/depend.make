# Empty dependencies file for fig7_nexus.
# This may be replaced when dependencies are built.
