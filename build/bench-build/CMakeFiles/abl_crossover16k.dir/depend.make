# Empty dependencies file for abl_crossover16k.
# This may be replaced when dependencies are built.
