file(REMOVE_RECURSE
  "../bench/abl_crossover16k"
  "../bench/abl_crossover16k.pdb"
  "CMakeFiles/abl_crossover16k.dir/abl_crossover16k.cpp.o"
  "CMakeFiles/abl_crossover16k.dir/abl_crossover16k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_crossover16k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
