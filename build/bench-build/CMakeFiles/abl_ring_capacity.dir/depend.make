# Empty dependencies file for abl_ring_capacity.
# This may be replaced when dependencies are built.
