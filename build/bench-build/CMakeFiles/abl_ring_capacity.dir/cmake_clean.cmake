file(REMOVE_RECURSE
  "../bench/abl_ring_capacity"
  "../bench/abl_ring_capacity.pdb"
  "CMakeFiles/abl_ring_capacity.dir/abl_ring_capacity.cpp.o"
  "CMakeFiles/abl_ring_capacity.dir/abl_ring_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ring_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
