file(REMOVE_RECURSE
  "../bench/abl_switch"
  "../bench/abl_switch.pdb"
  "CMakeFiles/abl_switch.dir/abl_switch.cpp.o"
  "CMakeFiles/abl_switch.dir/abl_switch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
