# Empty dependencies file for abl_switch.
# This may be replaced when dependencies are built.
