file(REMOVE_RECURSE
  "../bench/fig4_sisci"
  "../bench/fig4_sisci.pdb"
  "CMakeFiles/fig4_sisci.dir/fig4_sisci.cpp.o"
  "CMakeFiles/fig4_sisci.dir/fig4_sisci.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sisci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
