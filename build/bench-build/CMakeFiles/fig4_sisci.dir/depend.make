# Empty dependencies file for fig4_sisci.
# This may be replaced when dependencies are built.
