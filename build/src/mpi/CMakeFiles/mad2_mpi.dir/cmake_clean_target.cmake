file(REMOVE_RECURSE
  "libmad2_mpi.a"
)
