
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/ch_mad.cpp" "src/mpi/CMakeFiles/mad2_mpi.dir/ch_mad.cpp.o" "gcc" "src/mpi/CMakeFiles/mad2_mpi.dir/ch_mad.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/mad2_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/mad2_mpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpi/pmm_mpi.cpp" "src/mpi/CMakeFiles/mad2_mpi.dir/pmm_mpi.cpp.o" "gcc" "src/mpi/CMakeFiles/mad2_mpi.dir/pmm_mpi.cpp.o.d"
  "/root/repo/src/mpi/sci_baselines.cpp" "src/mpi/CMakeFiles/mad2_mpi.dir/sci_baselines.cpp.o" "gcc" "src/mpi/CMakeFiles/mad2_mpi.dir/sci_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mad/CMakeFiles/mad2_mad.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mad2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mad2_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mad2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
