file(REMOVE_RECURSE
  "CMakeFiles/mad2_mpi.dir/ch_mad.cpp.o"
  "CMakeFiles/mad2_mpi.dir/ch_mad.cpp.o.d"
  "CMakeFiles/mad2_mpi.dir/comm.cpp.o"
  "CMakeFiles/mad2_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/mad2_mpi.dir/pmm_mpi.cpp.o"
  "CMakeFiles/mad2_mpi.dir/pmm_mpi.cpp.o.d"
  "CMakeFiles/mad2_mpi.dir/sci_baselines.cpp.o"
  "CMakeFiles/mad2_mpi.dir/sci_baselines.cpp.o.d"
  "libmad2_mpi.a"
  "libmad2_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
