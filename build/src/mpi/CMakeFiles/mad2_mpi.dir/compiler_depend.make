# Empty compiler generated dependencies file for mad2_mpi.
# This may be replaced when dependencies are built.
