# Empty dependencies file for mad2_sim.
# This may be replaced when dependencies are built.
