file(REMOVE_RECURSE
  "libmad2_sim.a"
)
