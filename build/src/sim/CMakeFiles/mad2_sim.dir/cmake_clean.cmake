file(REMOVE_RECURSE
  "CMakeFiles/mad2_sim.dir/simulator.cpp.o"
  "CMakeFiles/mad2_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mad2_sim.dir/sync.cpp.o"
  "CMakeFiles/mad2_sim.dir/sync.cpp.o.d"
  "libmad2_sim.a"
  "libmad2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
