# Empty compiler generated dependencies file for mad2_nexus.
# This may be replaced when dependencies are built.
