file(REMOVE_RECURSE
  "libmad2_nexus.a"
)
