file(REMOVE_RECURSE
  "CMakeFiles/mad2_nexus.dir/nexus.cpp.o"
  "CMakeFiles/mad2_nexus.dir/nexus.cpp.o.d"
  "libmad2_nexus.a"
  "libmad2_nexus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_nexus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
