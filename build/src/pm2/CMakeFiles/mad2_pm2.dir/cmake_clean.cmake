file(REMOVE_RECURSE
  "CMakeFiles/mad2_pm2.dir/pm2.cpp.o"
  "CMakeFiles/mad2_pm2.dir/pm2.cpp.o.d"
  "libmad2_pm2.a"
  "libmad2_pm2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_pm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
