# Empty compiler generated dependencies file for mad2_pm2.
# This may be replaced when dependencies are built.
