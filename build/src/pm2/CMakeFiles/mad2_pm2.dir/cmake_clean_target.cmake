file(REMOVE_RECURSE
  "libmad2_pm2.a"
)
