file(REMOVE_RECURSE
  "CMakeFiles/mad2_fwd.dir/virtual_channel.cpp.o"
  "CMakeFiles/mad2_fwd.dir/virtual_channel.cpp.o.d"
  "libmad2_fwd.a"
  "libmad2_fwd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_fwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
