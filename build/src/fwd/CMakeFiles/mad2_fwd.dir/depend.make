# Empty dependencies file for mad2_fwd.
# This may be replaced when dependencies are built.
