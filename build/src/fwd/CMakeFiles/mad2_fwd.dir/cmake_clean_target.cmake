file(REMOVE_RECURSE
  "libmad2_fwd.a"
)
