# Empty dependencies file for mad2_util.
# This may be replaced when dependencies are built.
