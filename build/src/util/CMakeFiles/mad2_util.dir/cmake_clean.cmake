file(REMOVE_RECURSE
  "CMakeFiles/mad2_util.dir/bytes.cpp.o"
  "CMakeFiles/mad2_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mad2_util.dir/log.cpp.o"
  "CMakeFiles/mad2_util.dir/log.cpp.o.d"
  "CMakeFiles/mad2_util.dir/stats.cpp.o"
  "CMakeFiles/mad2_util.dir/stats.cpp.o.d"
  "CMakeFiles/mad2_util.dir/status.cpp.o"
  "CMakeFiles/mad2_util.dir/status.cpp.o.d"
  "CMakeFiles/mad2_util.dir/table.cpp.o"
  "CMakeFiles/mad2_util.dir/table.cpp.o.d"
  "libmad2_util.a"
  "libmad2_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
