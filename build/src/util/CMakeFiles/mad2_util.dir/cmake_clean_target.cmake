file(REMOVE_RECURSE
  "libmad2_util.a"
)
