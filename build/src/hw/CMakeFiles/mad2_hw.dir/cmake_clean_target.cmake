file(REMOVE_RECURSE
  "libmad2_hw.a"
)
