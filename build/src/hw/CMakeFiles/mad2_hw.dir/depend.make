# Empty dependencies file for mad2_hw.
# This may be replaced when dependencies are built.
