file(REMOVE_RECURSE
  "CMakeFiles/mad2_hw.dir/node.cpp.o"
  "CMakeFiles/mad2_hw.dir/node.cpp.o.d"
  "CMakeFiles/mad2_hw.dir/resource.cpp.o"
  "CMakeFiles/mad2_hw.dir/resource.cpp.o.d"
  "libmad2_hw.a"
  "libmad2_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
