# CMake generated Testfile for 
# Source directory: /root/repo/src/mad
# Build directory: /root/repo/build/src/mad
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
