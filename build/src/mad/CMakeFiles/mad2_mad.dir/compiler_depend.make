# Empty compiler generated dependencies file for mad2_mad.
# This may be replaced when dependencies are built.
