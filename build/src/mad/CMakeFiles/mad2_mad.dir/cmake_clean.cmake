file(REMOVE_RECURSE
  "CMakeFiles/mad2_mad.dir/bmm.cpp.o"
  "CMakeFiles/mad2_mad.dir/bmm.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/config_parser.cpp.o"
  "CMakeFiles/mad2_mad.dir/config_parser.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/connection.cpp.o"
  "CMakeFiles/mad2_mad.dir/connection.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/pmm_bip.cpp.o"
  "CMakeFiles/mad2_mad.dir/pmm_bip.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/pmm_factory.cpp.o"
  "CMakeFiles/mad2_mad.dir/pmm_factory.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/pmm_sbp.cpp.o"
  "CMakeFiles/mad2_mad.dir/pmm_sbp.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/pmm_sisci.cpp.o"
  "CMakeFiles/mad2_mad.dir/pmm_sisci.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/pmm_tcp.cpp.o"
  "CMakeFiles/mad2_mad.dir/pmm_tcp.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/pmm_via.cpp.o"
  "CMakeFiles/mad2_mad.dir/pmm_via.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/session.cpp.o"
  "CMakeFiles/mad2_mad.dir/session.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/stats.cpp.o"
  "CMakeFiles/mad2_mad.dir/stats.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/tm.cpp.o"
  "CMakeFiles/mad2_mad.dir/tm.cpp.o.d"
  "CMakeFiles/mad2_mad.dir/types.cpp.o"
  "CMakeFiles/mad2_mad.dir/types.cpp.o.d"
  "libmad2_mad.a"
  "libmad2_mad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_mad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
