file(REMOVE_RECURSE
  "libmad2_mad.a"
)
