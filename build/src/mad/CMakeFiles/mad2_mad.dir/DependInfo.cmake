
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mad/bmm.cpp" "src/mad/CMakeFiles/mad2_mad.dir/bmm.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/bmm.cpp.o.d"
  "/root/repo/src/mad/config_parser.cpp" "src/mad/CMakeFiles/mad2_mad.dir/config_parser.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/config_parser.cpp.o.d"
  "/root/repo/src/mad/connection.cpp" "src/mad/CMakeFiles/mad2_mad.dir/connection.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/connection.cpp.o.d"
  "/root/repo/src/mad/pmm_bip.cpp" "src/mad/CMakeFiles/mad2_mad.dir/pmm_bip.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/pmm_bip.cpp.o.d"
  "/root/repo/src/mad/pmm_factory.cpp" "src/mad/CMakeFiles/mad2_mad.dir/pmm_factory.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/pmm_factory.cpp.o.d"
  "/root/repo/src/mad/pmm_sbp.cpp" "src/mad/CMakeFiles/mad2_mad.dir/pmm_sbp.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/pmm_sbp.cpp.o.d"
  "/root/repo/src/mad/pmm_sisci.cpp" "src/mad/CMakeFiles/mad2_mad.dir/pmm_sisci.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/pmm_sisci.cpp.o.d"
  "/root/repo/src/mad/pmm_tcp.cpp" "src/mad/CMakeFiles/mad2_mad.dir/pmm_tcp.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/pmm_tcp.cpp.o.d"
  "/root/repo/src/mad/pmm_via.cpp" "src/mad/CMakeFiles/mad2_mad.dir/pmm_via.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/pmm_via.cpp.o.d"
  "/root/repo/src/mad/session.cpp" "src/mad/CMakeFiles/mad2_mad.dir/session.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/session.cpp.o.d"
  "/root/repo/src/mad/stats.cpp" "src/mad/CMakeFiles/mad2_mad.dir/stats.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/stats.cpp.o.d"
  "/root/repo/src/mad/tm.cpp" "src/mad/CMakeFiles/mad2_mad.dir/tm.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/tm.cpp.o.d"
  "/root/repo/src/mad/types.cpp" "src/mad/CMakeFiles/mad2_mad.dir/types.cpp.o" "gcc" "src/mad/CMakeFiles/mad2_mad.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mad2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mad2_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mad2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
