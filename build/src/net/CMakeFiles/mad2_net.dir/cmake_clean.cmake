file(REMOVE_RECURSE
  "CMakeFiles/mad2_net.dir/bip.cpp.o"
  "CMakeFiles/mad2_net.dir/bip.cpp.o.d"
  "CMakeFiles/mad2_net.dir/sbp.cpp.o"
  "CMakeFiles/mad2_net.dir/sbp.cpp.o.d"
  "CMakeFiles/mad2_net.dir/sisci.cpp.o"
  "CMakeFiles/mad2_net.dir/sisci.cpp.o.d"
  "CMakeFiles/mad2_net.dir/tcp.cpp.o"
  "CMakeFiles/mad2_net.dir/tcp.cpp.o.d"
  "CMakeFiles/mad2_net.dir/via.cpp.o"
  "CMakeFiles/mad2_net.dir/via.cpp.o.d"
  "libmad2_net.a"
  "libmad2_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad2_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
