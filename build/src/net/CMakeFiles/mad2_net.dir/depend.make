# Empty dependencies file for mad2_net.
# This may be replaced when dependencies are built.
