file(REMOVE_RECURSE
  "libmad2_net.a"
)
