
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bip.cpp" "src/net/CMakeFiles/mad2_net.dir/bip.cpp.o" "gcc" "src/net/CMakeFiles/mad2_net.dir/bip.cpp.o.d"
  "/root/repo/src/net/sbp.cpp" "src/net/CMakeFiles/mad2_net.dir/sbp.cpp.o" "gcc" "src/net/CMakeFiles/mad2_net.dir/sbp.cpp.o.d"
  "/root/repo/src/net/sisci.cpp" "src/net/CMakeFiles/mad2_net.dir/sisci.cpp.o" "gcc" "src/net/CMakeFiles/mad2_net.dir/sisci.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/mad2_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/mad2_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/via.cpp" "src/net/CMakeFiles/mad2_net.dir/via.cpp.o" "gcc" "src/net/CMakeFiles/mad2_net.dir/via.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/mad2_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mad2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
