# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/net_bip_test[1]_include.cmake")
include("/root/repo/build/tests/net_sisci_test[1]_include.cmake")
include("/root/repo/build/tests/net_tcp_test[1]_include.cmake")
include("/root/repo/build/tests/net_via_test[1]_include.cmake")
include("/root/repo/build/tests/mad_core_test[1]_include.cmake")
include("/root/repo/build/tests/fwd_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/nexus_test[1]_include.cmake")
include("/root/repo/build/tests/mad_misuse_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/mad_over_mpi_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/fwd_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/pm2_test[1]_include.cmake")
include("/root/repo/build/tests/net_sbp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stress_test[1]_include.cmake")
include("/root/repo/build/tests/net_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/pmm_protocol_test[1]_include.cmake")
