# Empty compiler generated dependencies file for fwd_fuzz_test.
# This may be replaced when dependencies are built.
