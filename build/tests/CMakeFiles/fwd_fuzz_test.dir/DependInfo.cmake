
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fwd_fuzz_test.cpp" "tests/CMakeFiles/fwd_fuzz_test.dir/fwd_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/fwd_fuzz_test.dir/fwd_fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fwd/CMakeFiles/mad2_fwd.dir/DependInfo.cmake"
  "/root/repo/build/src/mad/CMakeFiles/mad2_mad.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mad2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mad2_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mad2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
