file(REMOVE_RECURSE
  "CMakeFiles/fwd_fuzz_test.dir/fwd_fuzz_test.cpp.o"
  "CMakeFiles/fwd_fuzz_test.dir/fwd_fuzz_test.cpp.o.d"
  "fwd_fuzz_test"
  "fwd_fuzz_test.pdb"
  "fwd_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwd_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
