# Empty compiler generated dependencies file for mad_over_mpi_test.
# This may be replaced when dependencies are built.
