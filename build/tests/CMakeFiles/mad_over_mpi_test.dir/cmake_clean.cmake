file(REMOVE_RECURSE
  "CMakeFiles/mad_over_mpi_test.dir/mad_over_mpi_test.cpp.o"
  "CMakeFiles/mad_over_mpi_test.dir/mad_over_mpi_test.cpp.o.d"
  "mad_over_mpi_test"
  "mad_over_mpi_test.pdb"
  "mad_over_mpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_over_mpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
