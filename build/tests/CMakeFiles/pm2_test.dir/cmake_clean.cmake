file(REMOVE_RECURSE
  "CMakeFiles/pm2_test.dir/pm2_test.cpp.o"
  "CMakeFiles/pm2_test.dir/pm2_test.cpp.o.d"
  "pm2_test"
  "pm2_test.pdb"
  "pm2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
