# Empty compiler generated dependencies file for pm2_test.
# This may be replaced when dependencies are built.
