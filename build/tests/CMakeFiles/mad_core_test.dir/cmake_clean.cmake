file(REMOVE_RECURSE
  "CMakeFiles/mad_core_test.dir/mad_core_test.cpp.o"
  "CMakeFiles/mad_core_test.dir/mad_core_test.cpp.o.d"
  "mad_core_test"
  "mad_core_test.pdb"
  "mad_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
