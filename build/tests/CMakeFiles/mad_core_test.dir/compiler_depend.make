# Empty compiler generated dependencies file for mad_core_test.
# This may be replaced when dependencies are built.
