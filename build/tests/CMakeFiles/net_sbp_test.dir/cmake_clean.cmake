file(REMOVE_RECURSE
  "CMakeFiles/net_sbp_test.dir/net_sbp_test.cpp.o"
  "CMakeFiles/net_sbp_test.dir/net_sbp_test.cpp.o.d"
  "net_sbp_test"
  "net_sbp_test.pdb"
  "net_sbp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_sbp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
