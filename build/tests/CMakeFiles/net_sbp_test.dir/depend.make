# Empty dependencies file for net_sbp_test.
# This may be replaced when dependencies are built.
