file(REMOVE_RECURSE
  "CMakeFiles/net_via_test.dir/net_via_test.cpp.o"
  "CMakeFiles/net_via_test.dir/net_via_test.cpp.o.d"
  "net_via_test"
  "net_via_test.pdb"
  "net_via_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_via_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
