# Empty compiler generated dependencies file for net_via_test.
# This may be replaced when dependencies are built.
