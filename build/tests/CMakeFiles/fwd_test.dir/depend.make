# Empty dependencies file for fwd_test.
# This may be replaced when dependencies are built.
