file(REMOVE_RECURSE
  "CMakeFiles/fwd_test.dir/fwd_test.cpp.o"
  "CMakeFiles/fwd_test.dir/fwd_test.cpp.o.d"
  "fwd_test"
  "fwd_test.pdb"
  "fwd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
