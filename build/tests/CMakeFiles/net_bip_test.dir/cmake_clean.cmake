file(REMOVE_RECURSE
  "CMakeFiles/net_bip_test.dir/net_bip_test.cpp.o"
  "CMakeFiles/net_bip_test.dir/net_bip_test.cpp.o.d"
  "net_bip_test"
  "net_bip_test.pdb"
  "net_bip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_bip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
