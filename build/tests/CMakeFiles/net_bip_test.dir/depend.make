# Empty dependencies file for net_bip_test.
# This may be replaced when dependencies are built.
