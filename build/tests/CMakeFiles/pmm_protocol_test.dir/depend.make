# Empty dependencies file for pmm_protocol_test.
# This may be replaced when dependencies are built.
