file(REMOVE_RECURSE
  "CMakeFiles/pmm_protocol_test.dir/pmm_protocol_test.cpp.o"
  "CMakeFiles/pmm_protocol_test.dir/pmm_protocol_test.cpp.o.d"
  "pmm_protocol_test"
  "pmm_protocol_test.pdb"
  "pmm_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmm_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
