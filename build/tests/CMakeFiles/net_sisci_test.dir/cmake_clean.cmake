file(REMOVE_RECURSE
  "CMakeFiles/net_sisci_test.dir/net_sisci_test.cpp.o"
  "CMakeFiles/net_sisci_test.dir/net_sisci_test.cpp.o.d"
  "net_sisci_test"
  "net_sisci_test.pdb"
  "net_sisci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_sisci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
