# Empty compiler generated dependencies file for mad_misuse_test.
# This may be replaced when dependencies are built.
