file(REMOVE_RECURSE
  "CMakeFiles/mad_misuse_test.dir/mad_misuse_test.cpp.o"
  "CMakeFiles/mad_misuse_test.dir/mad_misuse_test.cpp.o.d"
  "mad_misuse_test"
  "mad_misuse_test.pdb"
  "mad_misuse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_misuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
