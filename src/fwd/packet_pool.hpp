// Recycled fixed-MTU packet buffers for the forwarding layer.
//
// Every packet that crosses a virtual channel lands in a PacketBuffer
// drawn from the channel's PacketPool instead of a freshly allocated
// vector: gateways hand buffers from the receiving fiber to the sending
// fiber and recycle them once the packet is back on the wire, endpoints
// recycle them once the application has drained the payload. After the
// constructor's prewarm (sized from the pipeline depth and endpoint
// lookahead) a steady forwarding flow performs no heap allocation at all
// — the pool hands the same buffers around in a cycle, which the per-node
// alloc/recycle counters (hw::MemCounters) make observable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mad/types.hpp"

namespace mad2::hw {
class Node;
}

namespace mad2::fwd {

class PacketPool;

/// One recyclable packet body: `bytes` is the fixed-MTU landing area, and
/// the scratch vectors (gather list, piece sizes, borrowed driver slots)
/// ride along so the hot path never allocates. Piece spans point into
/// `bytes` (staged data) or into `borrows` (driver slots lent out by a
/// static-buffer TM, kept alive until the buffer is recycled).
struct PacketBuffer {
  std::vector<std::byte> bytes;
  std::vector<std::span<const std::byte>> pieces;
  std::vector<std::uint32_t> sizes;
  std::vector<mad::BorrowedBlock> borrows;
};

/// Move-only handle returning its PacketBuffer to the pool on destruction.
/// The pool outlives every handle by construction (it is the first member
/// of VirtualChannel); handles abandoned on discarded fiber stacks at
/// simulator teardown simply never run their destructor, which is safe
/// because the pool owns the buffers either way.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(other.pool_), buffer_(other.buffer_) {
    other.pool_ = nullptr;
    other.buffer_ = nullptr;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      buffer_ = other.buffer_;
      other.pool_ = nullptr;
      other.buffer_ = nullptr;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { reset(); }

  [[nodiscard]] PacketBuffer* get() const { return buffer_; }
  PacketBuffer* operator->() const { return buffer_; }
  PacketBuffer& operator*() const { return *buffer_; }
  [[nodiscard]] explicit operator bool() const { return buffer_ != nullptr; }

  /// Return the buffer to the pool now.
  void reset();

 private:
  friend class PacketPool;
  PooledBuffer(PacketPool* pool, PacketBuffer* buffer)
      : pool_(pool), buffer_(buffer) {}

  PacketPool* pool_ = nullptr;
  PacketBuffer* buffer_ = nullptr;
};

class PacketPool {
 public:
  explicit PacketPool(std::size_t mtu);

  /// Allocate `count` buffers up front (outside fiber context: free).
  void prewarm(std::size_t count);

  /// Hand out a free buffer, growing the pool if it ran dry. `node`
  /// (nullable) takes the alloc/recycle count for the stats trajectory.
  [[nodiscard]] PooledBuffer acquire(hw::Node* node);

  [[nodiscard]] std::size_t mtu() const { return mtu_; }
  [[nodiscard]] std::size_t total_buffers() const { return all_.size(); }
  /// Buffers currently at home in the pool. free == total means every
  /// handed-out buffer came back — the leak check after a gateway death.
  [[nodiscard]] std::size_t free_buffers() const { return free_.size(); }

 private:
  friend class PooledBuffer;
  void recycle(PacketBuffer* buffer);
  [[nodiscard]] std::unique_ptr<PacketBuffer> make_buffer() const;

  std::size_t mtu_;
  std::vector<std::unique_ptr<PacketBuffer>> all_;
  std::vector<PacketBuffer*> free_;
};

}  // namespace mad2::fwd
