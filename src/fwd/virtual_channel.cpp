#include "fwd/virtual_channel.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "fwd/fair_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"

namespace mad2::fwd {

namespace {

/// Indices of the hops containing `node` (construction-time only; the hot
/// path reads the precomputed routing tables).
std::vector<std::size_t> hops_containing(
    const std::vector<mad::Channel*>& hops, std::uint32_t node) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& nodes = hops[i]->nodes();
    if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) {
      result.push_back(i);
    }
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------- VirtualChannel ---

VirtualChannel::VirtualChannel(mad::Session& session, VirtualChannelDef def)
    : session_(&session), def_(std::move(def)), pool_(def_.mtu) {
  MAD2_CHECK(!def_.hops.empty(), "virtual channel needs at least one hop");
  MAD2_CHECK(def_.mtu > kBlockHeaderBytes, "MTU too small");
  if (def_.congestion.has_value()) {
    congestion_ = *def_.congestion;
  } else if (session_->config().congestion.has_value()) {
    congestion_ = *session_->config().congestion;
  }
  for (const std::string& hop : def_.hops) {
    hop_channels_.push_back(&session_->channel(hop));
  }

  // Gateways: the unique common node of each consecutive hop pair.
  for (std::size_t i = 0; i + 1 < hop_channels_.size(); ++i) {
    const auto& a = hop_channels_[i]->nodes();
    const auto& b = hop_channels_[i + 1]->nodes();
    std::vector<std::uint32_t> common;
    for (std::uint32_t node : a) {
      if (std::find(b.begin(), b.end(), node) != b.end()) {
        common.push_back(node);
      }
    }
    MAD2_CHECK(common.size() == 1,
               "consecutive hops must share exactly one gateway node");
    gateways_.push_back(common.front());
  }

  for (const mad::Channel* hop : hop_channels_) {
    for (std::uint32_t node : hop->nodes()) {
      if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
        nodes_.push_back(node);
      }
    }
  }
  std::sort(nodes_.begin(), nodes_.end());

  // Precompute the routing tables once, instead of rebuilding the
  // hop-membership vectors (two heap allocations) on every packet in the
  // gateway loop and sender flush.
  std::map<std::uint32_t, std::vector<std::size_t>> hops_of_node;
  for (std::uint32_t node : nodes_) {
    hops_of_node[node] = hops_containing(hop_channels_, node);
  }
  for (std::uint32_t node : nodes_) {
    const auto& node_hops = hops_of_node[node];
    for (std::uint32_t dst : nodes_) {
      const auto& dst_hops = hops_of_node[dst];
      std::size_t hop;
      auto common = std::find_first_of(node_hops.begin(), node_hops.end(),
                                       dst_hops.begin(), dst_hops.end());
      if (common != node_hops.end()) {
        hop = *common;  // same hop: direct
      } else if (node_hops.back() < dst_hops.front()) {
        hop = node_hops.back();  // forward
      } else {
        hop = node_hops.front();  // backward
      }
      hop_of_.emplace(std::make_pair(node, dst), hop);
    }
    if (node_hops.size() == 1) terminal_hop_.emplace(node, node_hops.front());
  }
  next_of_.resize(hop_channels_.size());
  for (std::size_t hop = 0; hop < hop_channels_.size(); ++hop) {
    const auto& on_hop = hop_channels_[hop]->nodes();
    for (std::uint32_t dst : nodes_) {
      std::uint32_t next;
      if (std::find(on_hop.begin(), on_hop.end(), dst) != on_hop.end()) {
        next = dst;
      } else if (hops_of_node[dst].front() > hop) {
        next = gateways_[hop];  // forward
      } else {
        MAD2_CHECK(hop > 0, "no route to destination");
        next = gateways_[hop - 1];  // backward
      }
      next_of_[hop].emplace(dst, next);
    }
  }

  // Size the pool for the steady state: every gateway direction keeps
  // pipeline_depth packets queued plus one in each pump fiber, and each
  // endpoint looks ahead by a couple of packets while draining. Extra
  // demand grows the pool (counted via hw::MemCounters::alloc_count).
  pool_.prewarm(gateways_.size() * 2 * (def_.pipeline_depth + 2) +
                nodes_.size() * 2);

  for (std::uint32_t node : nodes_) {
    endpoints_.emplace(node, std::unique_ptr<VirtualEndpoint>(
                                 new VirtualEndpoint(this, node)));
  }

  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    spawn_gateway(gateways_[i], i, i + 1);
  }
}

VirtualChannel::~VirtualChannel() = default;

const Status& VirtualChannel::health() const { return session_->health(); }

VirtualEndpoint& VirtualChannel::endpoint(std::uint32_t node) {
  auto it = endpoints_.find(node);
  MAD2_CHECK(it != endpoints_.end(), "node not on this virtual channel");
  return *it->second;
}

std::size_t VirtualChannel::hop_of(std::uint32_t node,
                                   std::uint32_t dst) const {
  auto it = hop_of_.find(std::make_pair(node, dst));
  if (it == hop_of_.end()) {
    MAD2_CHECK(std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end(),
               "node not on this virtual channel");
    MAD2_CHECK(false, "destination not on this virtual channel");
  }
  return it->second;
}

std::uint32_t VirtualChannel::next_node(std::size_t hop,
                                        std::uint32_t dst) const {
  const auto& table = next_of_[hop];
  auto it = table.find(dst);
  MAD2_CHECK(it != table.end(), "destination not on this virtual channel");
  return it->second;
}

std::size_t VirtualChannel::terminal_hop(std::uint32_t node) const {
  auto it = terminal_hop_.find(node);
  if (it == terminal_hop_.end()) {
    MAD2_CHECK(std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end(),
               "node not on this virtual channel");
    MAD2_CHECK(false, "gateway nodes cannot be virtual-channel receivers");
  }
  return it->second;
}

void VirtualChannel::send_packet(
    mad::ChannelEndpoint& hop_endpoint, std::uint32_t to, PacketHeader header,
    std::span<const std::span<const std::byte>> pieces,
    std::vector<std::uint32_t>& sizes_scratch, sim::Time stamp) {
  header.n_pieces = static_cast<std::uint32_t>(pieces.size());
  sizes_scratch.clear();
  std::uint64_t total = 0;
  for (const auto& piece : pieces) {
    sizes_scratch.push_back(static_cast<std::uint32_t>(piece.size()));
    total += piece.size();
  }
  // The header carries the payload length as u32; a >= 4 GiB packet would
  // silently wrap it. (Messages are fragmented to the MTU well below
  // that; this guards direct callers handing over-long gather lists.)
  MAD2_CHECK(total <= std::numeric_limits<std::uint32_t>::max(),
             "virtual packet payload overflows the u32 length header");
  header.payload_len = static_cast<std::uint32_t>(total);

  MAD2_TRACE_SPAN(span, obs::Category::kFwd, "fwd.packet_flush");
  span.args(header.payload_len, header.dst);
  mad::Connection& conn = hop_endpoint.begin_packing(to);
  mad::mad_pack_value(conn, header, mad::send_CHEAPER, mad::receive_EXPRESS);
  if (congestion_.enabled) {
    // Congestion control rides the send timestamp as its own EXPRESS
    // block; with the feature off the byte stream is bit-identical to the
    // pre-congestion wire format.
    mad::mad_pack_value(conn, stamp, mad::send_CHEAPER,
                        mad::receive_EXPRESS);
  }
  if (!sizes_scratch.empty()) {
    conn.pack(std::as_bytes(std::span(sizes_scratch)), mad::send_CHEAPER,
              mad::receive_EXPRESS);
  }
  for (const auto& piece : pieces) {
    conn.pack(piece, mad::send_CHEAPER, mad::receive_CHEAPER);
  }
  conn.end_packing();
}

Packet VirtualChannel::receive_packet(mad::ChannelEndpoint& hop_endpoint,
                                      Demand* demand) {
  mad::Connection& conn = hop_endpoint.begin_unpacking();
  // Starts after begin_unpacking returns (a message is incoming), so the
  // span measures the packet landing, not idle waiting for traffic.
  MAD2_TRACE_SPAN(span, obs::Category::kFwd, "fwd.packet_land");
  Packet packet;
  packet.storage = pool_.acquire(&hop_endpoint.node());
  PacketBuffer& buffer = *packet.storage;
  mad::mad_unpack_value(conn, packet.header, mad::send_CHEAPER,
                        mad::receive_EXPRESS);
  if (congestion_.enabled) {
    mad::mad_unpack_value(conn, packet.stamp, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
  }
  // The stream is self-described, so a corrupted or hostile header could
  // otherwise drive the landing loop past the fixed-MTU buffer.
  MAD2_CHECK(packet.header.payload_len <= def_.mtu,
             "malformed virtual packet: payload length exceeds the MTU");
  MAD2_CHECK(packet.header.n_pieces <= def_.mtu,
             "malformed virtual packet: piece count exceeds the MTU");
  buffer.sizes.resize(packet.header.n_pieces);
  if (!buffer.sizes.empty()) {
    conn.unpack(std::as_writable_bytes(std::span(buffer.sizes)),
                mad::send_CHEAPER, mad::receive_EXPRESS);
  }
  std::uint64_t total = 0;
  for (std::uint32_t size : buffer.sizes) total += size;
  MAD2_CHECK(total == packet.header.payload_len,
             "piece sizes do not add up to the packet payload");

  // Land the pieces, in stream order. Each piece goes to exactly one
  // destination so the hop-level unpack sequence stays symmetric with the
  // sender:
  //  1. straight into the demanded user window (endpoints, while every
  //     earlier piece also landed there — staged bytes must keep stream
  //     order);
  //  2. borrowed from the hop TM's static receive buffer (no copy at all;
  //     the slot is released when the packet buffer recycles);
  //  3. staged into the pooled bytes.
  bool direct_ok = demand != nullptr && demand->src == packet.header.src;
  std::size_t offset = 0;
  for (std::uint32_t size : buffer.sizes) {
    if (direct_ok && demand->filled + size <= demand->window.size()) {
      conn.unpack(demand->window.subspan(demand->filled, size),
                  mad::send_CHEAPER, mad::receive_CHEAPER);
      demand->filled += size;
      continue;
    }
    direct_ok = false;
    const std::size_t first_new = buffer.borrows.size();
    if (conn.unpack_borrow(size, mad::send_CHEAPER, mad::receive_CHEAPER,
                           buffer.borrows)) {
      // A borrow may split the piece at protocol-buffer boundaries; each
      // chunk becomes a piece of its own (the block framing is inline in
      // the byte stream, so piece granularity is free to change).
      for (std::size_t i = first_new; i < buffer.borrows.size(); ++i) {
        buffer.pieces.push_back(buffer.borrows[i].data);
      }
    } else {
      const auto dst = std::span<std::byte>(buffer.bytes).subspan(offset, size);
      conn.unpack(dst, mad::send_CHEAPER, mad::receive_CHEAPER);
      buffer.pieces.push_back(dst);
      offset += size;
    }
  }
  conn.end_unpacking();
  span.args(packet.header.payload_len, packet.header.src);
  return packet;
}

void VirtualChannel::spawn_gateway(std::uint32_t gateway, std::size_t hop_in,
                                   std::size_t hop_out) {
  // One pipeline per direction; each is the paper's Figure 9: a receiving
  // fiber and a sending fiber exchanging a bounded pool of packet buffers
  // (pipeline_depth == 2 -> dual buffering). pipeline_depth <= 1 degrades
  // to strict store-and-forward (one fiber receives, then sends) — the
  // no-overlap baseline the dual-buffering design improves on. Either
  // way the landed buffer is forwarded with its original gather list and
  // recycled afterwards: the gateway never consolidates the payload.
  auto spawn_direction = [this, gateway](std::size_t in, std::size_t out) {
    if (def_.pipeline_depth <= 1) {
      session_->simulator().spawn_daemon(
          def_.name + ".gw" + std::to_string(gateway) + "." +
              std::to_string(in) + "to" + std::to_string(out) + ".sf",
          [this, in, out, gateway] {
            mad::ChannelEndpoint& ep_in =
                hop_channels_[in]->endpoint(gateway);
            mad::ChannelEndpoint& ep_out =
                hop_channels_[out]->endpoint(gateway);
            for (;;) {
              Packet packet = receive_packet(ep_in);
              MAD2_CHECK(packet.header.dst != gateway,
                         "forwarding packet addressed to the gateway");
              const std::uint32_t to = next_node(out, packet.header.dst);
              // Gateway residence: from fully landed to fully re-sent.
              MAD2_TRACE_SPAN(hop, obs::Category::kFwd, "fwd.hop",
                              "store_forward");
              hop.args(packet.header.payload_len, packet.header.dst);
              send_packet(ep_out, to, packet.header, packet.storage->pieces,
                          packet.storage->sizes, packet.stamp);
            }
          });
      return;
    }
    const std::string tag = def_.name + ".gw" + std::to_string(gateway) +
                            "." + std::to_string(in) + "to" +
                            std::to_string(out);
    if (congestion_.enabled) {
      // Congestion mode swaps the FIFO pipeline queue for a deficit-
      // round-robin queue keyed by (src, dst): when N inbound flows
      // converge on this gateway, the tx fiber drains them by byte-fair
      // quanta instead of arrival order, so one heavy flow cannot
      // monopolize the outgoing hop.
      fair_queues_.push_back(std::make_unique<FairPacketQueue>(
          &session_->simulator(), congestion_.gateway_queue,
          congestion_.quantum));
      FairPacketQueue* queue = fair_queues_.back().get();
      fair_gateways_.push_back(FairGateway{gateway, in, out, queue});
      session_->simulator().spawn_daemon(tag + ".rx", [this, in, gateway,
                                                       queue] {
        mad::ChannelEndpoint& ep = hop_channels_[in]->endpoint(gateway);
        for (;;) {
          Packet packet = receive_packet(ep);
          MAD2_CHECK(packet.header.dst != gateway,
                     "forwarding packet addressed to the gateway itself");
          MAD2_TRACE_SPAN(stage, obs::Category::kFwd, "fwd.gw_enqueue");
          stage.args(packet.header.payload_len, packet.header.dst);
          queue->send(std::move(packet));
        }
      });
      session_->simulator().spawn_daemon(tag + ".tx", [this, out, gateway,
                                                       queue] {
        mad::ChannelEndpoint& ep = hop_channels_[out]->endpoint(gateway);
        for (;;) {
          auto packet = queue->receive();
          if (!packet.has_value()) return;
          const std::uint32_t to = next_node(out, packet->header.dst);
          MAD2_TRACE_SPAN(hop, obs::Category::kFwd, "fwd.hop", "fair");
          hop.args(packet->header.payload_len, packet->header.dst);
          send_packet(ep, to, packet->header, packet->storage->pieces,
                      packet->storage->sizes, packet->stamp);
        }
      });
      return;
    }
    gateway_queues_.push_back(std::make_unique<sim::BoundedChannel<Packet>>(
        &session_->simulator(), def_.pipeline_depth));
    sim::BoundedChannel<Packet>* queue = gateway_queues_.back().get();
    session_->simulator().spawn_daemon(tag + ".rx", [this, in, gateway,
                                                     queue] {
      mad::ChannelEndpoint& ep = hop_channels_[in]->endpoint(gateway);
      for (;;) {
        Packet packet = receive_packet(ep);
        MAD2_CHECK(packet.header.dst != gateway,
                   "forwarding packet addressed to the gateway itself");
        // Time spent waiting for a free pipeline slot (backpressure from
        // the sending fiber shows up as a long enqueue).
        MAD2_TRACE_SPAN(stage, obs::Category::kFwd, "fwd.gw_enqueue");
        stage.args(packet.header.payload_len, packet.header.dst);
        queue->send(std::move(packet));
      }
    });
    session_->simulator().spawn_daemon(tag + ".tx", [this, out, gateway,
                                                     queue] {
      mad::ChannelEndpoint& ep = hop_channels_[out]->endpoint(gateway);
      for (;;) {
        auto packet = queue->receive();
        if (!packet.has_value()) return;
        const std::uint32_t to = next_node(out, packet->header.dst);
        // Outgoing half of the gateway hop (the incoming half is the rx
        // fiber's packet_land + gw_enqueue spans on its own track).
        MAD2_TRACE_SPAN(hop, obs::Category::kFwd, "fwd.hop", "pipelined");
        hop.args(packet->header.payload_len, packet->header.dst);
        // Re-emit the landed gather list as-is; the outgoing TM rides it
        // as one send_buffer_group. The received size list is dead by
        // now, so it doubles as the send-side scratch.
        send_packet(ep, to, packet->header, packet->storage->pieces,
                    packet->storage->sizes, packet->stamp);
        // `packet` dies here: borrows release to the incoming TM and the
        // buffer recycles into the pool.
      }
    });
  };
  spawn_direction(hop_in, hop_out);
  spawn_direction(hop_out, hop_in);
}

VirtualChannel::FlowControl& VirtualChannel::flow_control(std::uint32_t src,
                                                          std::uint32_t dst) {
  const auto key = std::make_pair(src, dst);
  auto it = flows_.find(key);
  if (it != flows_.end()) return it->second;
  // First packet of this flow: seed the window from the sender's first-hop
  // driver bandwidth self-report (about one millisecond of line rate, in
  // MTU packets), clamped to the configured window bounds.
  const std::size_t hop = hop_of(src, dst);
  const double hint =
      hop_channels_[hop]->endpoint(src).pmm().bandwidth_hint_mbs();
  const double initial = mad::seed_window(congestion_, hint, def_.mtu);
  FlowControl flow;
  flow.window = std::make_unique<mad::CongestionWindow>(
      &session_->simulator(), congestion_, initial);
  flow.hist_name = def_.name + ".flow." + std::to_string(src) + "-" +
                   std::to_string(dst) + ".e2e";
  return flows_.emplace(key, std::move(flow)).first->second;
}

void VirtualChannel::set_flow_weight(std::uint32_t src, std::uint32_t dst,
                                     double weight) {
  MAD2_CHECK(congestion_.enabled,
             "flow weights need the congestion stanza (the FIFO pipeline "
             "has no per-flow schedule to weight)");
  const std::uint64_t key = FairPacketQueue::flow_key(src, dst);
  for (auto& queue : fair_queues_) queue->set_weight(key, weight);
}

void VirtualChannel::on_packet_delivered(const Packet& packet) {
  FlowControl& flow = flow_control(packet.header.src, packet.header.dst);
  const sim::Duration delay =
      session_->simulator().now() - packet.stamp;
  flow.window->on_delivered(delay);
  ++flow.packets;
  flow.bytes += packet.header.payload_len;
  if (obs::MetricsRegistry* registry = obs::metrics()) {
    registry->histogram(flow.hist_name)->record(delay);
  }
}

mad::TrafficStats VirtualChannel::stats() const {
  mad::TrafficStats stats;
  for (const auto& [key, flow] : flows_) {
    mad::FlowCounters counters;
    counters.packets = flow.packets;
    counters.bytes = flow.bytes;
    counters.cwnd = flow.window->cwnd();
    counters.srtt_us = sim::to_us(flow.window->srtt());
    stats.flows[std::to_string(key.first) + "->" +
                std::to_string(key.second)] = counters;
  }
  for (const auto& queue : fair_queues_) {
    for (const auto& [key, fstats] : queue->flow_stats()) {
      const std::string name =
          std::to_string(FairPacketQueue::flow_src(key)) + "->" +
          std::to_string(FairPacketQueue::flow_dst(key));
      mad::FlowCounters& mine = stats.flows[name];
      mine.queue_depth_hwm =
          std::max<std::uint64_t>(mine.queue_depth_hwm, fstats.depth_hwm);
    }
  }
  return stats;
}

void VirtualChannel::export_metrics(obs::MetricsRegistry& registry) const {
  for (const auto& [key, flow] : flows_) {
    const std::string prefix = def_.name + ".flow." +
                               std::to_string(key.first) + "-" +
                               std::to_string(key.second);
    registry.set_value(
        prefix + ".cwnd_x1000",
        static_cast<std::int64_t>(flow.window->cwnd() * 1000.0));
    registry.set_value(
        prefix + ".srtt_us",
        static_cast<std::int64_t>(sim::to_us(flow.window->srtt())));
    registry.set_value(prefix + ".packets",
                       static_cast<std::int64_t>(flow.packets));
  }
  for (const auto& gw : fair_gateways_) {
    const std::string prefix =
        def_.name + ".gw" + std::to_string(gw.gateway) + "." +
        std::to_string(gw.hop_in) + "to" + std::to_string(gw.hop_out);
    registry.set_value(prefix + ".queue_depth_hwm",
                       static_cast<std::int64_t>(gw.queue->depth_hwm()));
  }
}

const mad::CongestionWindow* VirtualChannel::flow_window(
    std::uint32_t src, std::uint32_t dst) const {
  auto it = flows_.find(std::make_pair(src, dst));
  if (it == flows_.end()) return nullptr;
  return it->second.window.get();
}

std::vector<std::size_t> VirtualChannel::gateway_queue_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(fair_queues_.size());
  for (const auto& queue : fair_queues_) depths.push_back(queue->depth());
  return depths;
}

// --------------------------------------------------------- VirtualEndpoint ---

VirtualEndpoint::VirtualEndpoint(VirtualChannel* channel, std::uint32_t local)
    : channel_(channel), local_(local) {
  for (std::uint32_t node : channel_->nodes()) {
    if (node == local_) continue;
    connections_.emplace(node, std::unique_ptr<VirtualConnection>(
                                   new VirtualConnection(this, node)));
  }
}

VirtualConnection& VirtualEndpoint::begin_packing(std::uint32_t remote) {
  auto it = connections_.find(remote);
  MAD2_CHECK(it != connections_.end(), "unknown virtual destination");
  VirtualConnection& conn = *it->second;
  MAD2_CHECK(!conn.packing_, "virtual message already open");
  conn.packing_ = true;
  conn.pieces_.clear();
  conn.metas_.clear();
  conn.pending_bytes_ = 0;
  return conn;
}

std::uint32_t VirtualEndpoint::fetch_packet(Demand* demand) {
  if (terminal_ep_ == nullptr) {
    const std::size_t hop = channel_->terminal_hop(local_);
    terminal_ep_ = &channel_->hop_channels_[hop]->endpoint(local_);
  }
  Packet packet = channel_->receive_packet(*terminal_ep_, demand);
  MAD2_CHECK(packet.header.dst == local_,
             "virtual packet delivered to the wrong node");
  // End-to-end feedback: free the sender's window slot and feed the
  // delivery delay into the flow's estimator. Empty packets (bare `last`
  // markers) never took a slot, so they must not release one.
  if (channel_->congestion_enabled() && packet.header.payload_len > 0) {
    channel_->on_packet_delivered(packet);
  }
  const std::uint32_t src = packet.header.src;
  std::size_t staged = 0;
  for (const auto& piece : packet.storage->pieces) staged += piece.size();
  if (staged > 0) {
    Stream& stream = streams_[src];
    stream.packets.push_back(std::move(packet));
    stream.bytes += staged;
  }
  // else: fully direct-landed (or empty) — the buffer recycles right here.
  return src;
}

VirtualConnection& VirtualEndpoint::begin_unpacking() {
  MAD2_CHECK(active_incoming_ == nullptr,
             "virtual incoming message already open");
  // Leftover packets of a *different* source fetched while draining the
  // previous message start the next one; otherwise fetch.
  std::uint32_t src = 0;
  bool found = false;
  for (auto& [candidate, stream] : streams_) {
    if (stream.bytes > 0) {
      src = candidate;
      found = true;
      break;
    }
  }
  if (!found) src = fetch_packet(nullptr);
  VirtualConnection& conn = *connections_.at(src);
  MAD2_CHECK(!conn.unpacking_, "virtual connection already unpacking");
  conn.unpacking_ = true;
  active_incoming_ = &conn;
  return conn;
}

void VirtualEndpoint::retire_front(Stream& stream, PooledBuffer* retain) {
  if (retain != nullptr) *retain = std::move(stream.packets.front().storage);
  stream.packets.pop_front();
  stream.piece_index = 0;
  stream.piece_offset = 0;
}

void VirtualEndpoint::settle(Stream& stream) {
  while (!stream.packets.empty()) {
    const auto& pieces = stream.packets.front().storage->pieces;
    while (stream.piece_index < pieces.size() &&
           stream.piece_offset == pieces[stream.piece_index].size()) {
      ++stream.piece_index;
      stream.piece_offset = 0;
    }
    if (stream.piece_index < pieces.size()) return;
    retire_front(stream, nullptr);
  }
}

void VirtualEndpoint::read_stream(std::uint32_t src,
                                  std::span<std::byte> out) {
  Stream& stream = streams_[src];
  std::size_t done = 0;
  while (done < out.size()) {
    if (stream.bytes == 0) {
      // Nothing staged: fetch with the remaining window as the landing
      // demand, so payload goes straight from the hop driver into the
      // user memory (no pool -> user copy for those bytes).
      Demand demand{src, out.subspan(done), 0};
      fetch_packet(&demand);
      done += demand.filled;
      continue;
    }
    settle(stream);
    const auto piece = stream.packets.front().storage->pieces[
        stream.piece_index];
    const std::size_t chunk =
        std::min(piece.size() - stream.piece_offset, out.size() - done);
    // Staged bytes pay the one pool -> user copy.
    channel_->session().node(local_).charge_memcpy(chunk);
    std::memcpy(out.data() + done, piece.data() + stream.piece_offset,
                chunk);
    stream.piece_offset += chunk;
    stream.bytes -= chunk;
    done += chunk;
  }
  settle(stream);  // recycle a front packet this read fully drained
}

// ------------------------------------------------------- VirtualConnection ---

void VirtualConnection::append_meta(std::span<const std::byte> bytes) {
  // Consolidate into the trailing meta buffer when it is still the last
  // piece; re-point the span afterwards (the vector may reallocate).
  endpoint_->channel().session().node(endpoint_->local()).charge_memcpy(
      bytes.size());
  // Extend the trailing meta buffer only while the piece still covers the
  // whole buffer — a piece split by a packet flush must not be re-pointed
  // (its front part is already on the wire).
  if (!pieces_.empty() && pieces_.back().is_meta &&
      pieces_.back().data.data() == metas_.back().data() &&
      pieces_.back().data.size() == metas_.back().size()) {
    std::vector<std::byte>& meta = metas_.back();
    meta.insert(meta.end(), bytes.begin(), bytes.end());
    pieces_.back().data = std::span<const std::byte>(meta);
  } else {
    metas_.emplace_back(bytes.begin(), bytes.end());
    pieces_.push_back(
        Piece{std::span<const std::byte>(metas_.back()), true});
  }
  pending_bytes_ += bytes.size();
}

void VirtualConnection::append_piece(std::span<const std::byte> data) {
  pieces_.push_back(Piece{data, false});
  pending_bytes_ += data.size();
}

void VirtualConnection::pack(std::span<const std::byte> data,
                             mad::SendMode smode, mad::ReceiveMode rmode) {
  MAD2_CHECK(packing_, "pack outside begin_packing/end_packing");
  // The Generic TM self-describes every block (size + constraints) so
  // gateways and the receiver can handle the stream without application
  // knowledge (Section 6.1). Headers and small blocks are consolidated
  // into owned buffers; large blocks travel zero-copy from user memory
  // (read at packet flush — so send_LATER data may be read before
  // end_packing once the MTU fills).
  constexpr std::size_t kInlineMax = 512;
  std::byte header[VirtualChannel::kBlockHeaderBytes];
  store_u64(header, data.size());
  header[8] = static_cast<std::byte>(smode);
  header[9] = static_cast<std::byte>(rmode);
  append_meta(header);
  if (data.size() < kInlineMax) {
    append_meta(data);
  } else {
    append_piece(data);
  }
  while (pending_bytes_ >= endpoint_->channel().def().mtu) {
    flush_packet(/*last=*/false);
  }
}

void VirtualConnection::flush_packet(bool last) {
  const std::size_t mtu = endpoint_->channel().def().mtu;
  std::size_t take = std::min(pending_bytes_, mtu);

  // Gather pieces off the front of the queue, splitting the last one at
  // the packet boundary. The gather list reuses this connection's scratch
  // vector — after warm-up no allocation happens per packet.
  gather_scratch_.clear();
  std::size_t taken = 0;
  std::size_t metas_consumed = 0;  // freed only after the send reads them
  while (taken < take) {
    Piece& piece = pieces_.front();
    const std::size_t chunk = std::min(piece.data.size(), take - taken);
    gather_scratch_.push_back(piece.data.subspan(0, chunk));
    taken += chunk;
    if (chunk == piece.data.size()) {
      if (piece.is_meta) ++metas_consumed;
      pieces_.pop_front();
    } else {
      piece.data = piece.data.subspan(chunk);
      // A split meta piece keeps its backing buffer alive in metas_.
    }
  }
  pending_bytes_ -= taken;

  VirtualChannel::PacketHeader header{};
  header.src = endpoint_->local();
  header.dst = remote_;
  header.last = last ? 1 : 0;

  VirtualChannel& channel = endpoint_->channel();
  const std::size_t hop = channel.hop_of(endpoint_->local(), remote_);
  mad::ChannelEndpoint& ep =
      channel.session().channel(channel.def().hops[hop]).endpoint(
          endpoint_->local());
  const std::uint32_t to = channel.next_node(hop, remote_);

  // Bandwidth control (paper future work): pace packet departures so the
  // inbound flow at the gateway stays below the configured rate.
  if (channel.def().sender_rate_mbs > 0.0 && taken > 0) {
    sim::Simulator& simulator = channel.session().simulator();
    if (simulator.now() < pace_next_send_) {
      simulator.advance(pace_next_send_ - simulator.now());
    }
    pace_next_send_ =
        simulator.now() +
        sim::transfer_time(taken, channel.def().sender_rate_mbs);
  }

  // End-to-end window: block until the flow has room in flight. The stamp
  // is taken after admission, so time spent waiting here is the sender's
  // own queueing, not network delay — the estimator only sees the path.
  sim::Time stamp = 0;
  if (channel.congestion_enabled() && taken > 0) {
    VirtualChannel::FlowControl& flow =
        channel.flow_control(endpoint_->local(), remote_);
    flow.window->before_send();
    stamp = channel.session().simulator().now();
  }

  channel.send_packet(ep, to, header, gather_scratch_, sizes_scratch_,
                      stamp);
  // The packet is fully on the wire (end_packing committed every piece);
  // now the consumed meta buffers can go.
  for (std::size_t i = 0; i < metas_consumed; ++i) metas_.pop_front();
}

void VirtualConnection::end_packing() {
  MAD2_CHECK(packing_, "end_packing without begin_packing");
  flush_packet(/*last=*/true);
  MAD2_CHECK(pieces_.empty() && pending_bytes_ == 0,
             "unflushed virtual stream at end_packing");
  metas_.clear();
  packing_ = false;
}

void VirtualConnection::drop_view() {
  view_hold_.reset();  // view_scratch_ keeps its capacity for reuse
}

void VirtualConnection::read_block_header(std::size_t expected_len,
                                          mad::SendMode smode,
                                          mad::ReceiveMode rmode) {
  std::byte header[VirtualChannel::kBlockHeaderBytes];
  endpoint_->read_stream(remote_, header);
  const std::uint64_t len = load_u64(header);
  MAD2_CHECK(len == expected_len,
             "virtual unpack size does not match the self-described block");
  MAD2_CHECK(header[8] == static_cast<std::byte>(smode) &&
                 header[9] == static_cast<std::byte>(rmode),
             "virtual unpack modes do not match the self-described block");
}

void VirtualConnection::unpack(std::span<std::byte> out,
                               mad::SendMode smode, mad::ReceiveMode rmode) {
  MAD2_CHECK(unpacking_, "unpack outside begin_unpacking/end_unpacking");
  drop_view();
  read_block_header(out.size(), smode, rmode);
  // Staged bytes are copied out of the pooled buffers (charged inside
  // read_stream); the rest of the block lands directly from the hop
  // driver into `out` via the demand-directed fetch — no blanket
  // reassembly copy.
  endpoint_->read_stream(remote_, out);
}

std::span<const std::byte> VirtualConnection::unpack_view(
    std::size_t len, mad::SendMode smode, mad::ReceiveMode rmode) {
  MAD2_CHECK(unpacking_, "unpack outside begin_unpacking/end_unpacking");
  MAD2_CHECK(rmode == mad::receive_CHEAPER,
             "unpack_view is receive_CHEAPER-only (EXPRESS data must land "
             "in caller memory)");
  drop_view();
  read_block_header(len, smode, rmode);
  if (len == 0) return {};
  VirtualEndpoint::Stream& stream = endpoint_->streams_[remote_];
  while (stream.bytes == 0) endpoint_->fetch_packet(nullptr);
  endpoint_->settle(stream);
  const auto piece =
      stream.packets.front().storage->pieces[stream.piece_index];
  if (piece.size() - stream.piece_offset >= len) {
    // Contiguous inside the landed buffer: lend the memory out instead of
    // copying. Nothing is charged — this is the zero-copy receive_CHEAPER
    // path. If the view is the packet's tail, the storage moves to
    // view_hold_ so the memory survives until the next unpack.
    const auto view = piece.subspan(stream.piece_offset, len);
    stream.piece_offset += len;
    stream.bytes -= len;
    const auto& pieces = stream.packets.front().storage->pieces;
    std::size_t index = stream.piece_index;
    std::size_t pos = stream.piece_offset;
    while (index < pieces.size() && pos == pieces[index].size()) {
      ++index;
      pos = 0;
    }
    if (index == pieces.size()) {
      endpoint_->retire_front(stream, &view_hold_);
    }
    return view;
  }
  // The block straddles packets (or borrowed-slot chunks): stage it
  // through the scratch copy — still only one copy, pool -> scratch.
  view_scratch_.resize(len);
  endpoint_->read_stream(remote_, std::span<std::byte>(view_scratch_));
  return std::span<const std::byte>(view_scratch_);
}

void VirtualConnection::end_unpacking() {
  MAD2_CHECK(unpacking_, "end_unpacking without begin_unpacking");
  drop_view();
  unpacking_ = false;
  endpoint_->active_incoming_ = nullptr;
}

}  // namespace mad2::fwd
