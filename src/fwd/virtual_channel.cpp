#include "fwd/virtual_channel.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "fwd/fair_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/span_weaver.hpp"
#include "obs/trace.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"

namespace mad2::fwd {

namespace {

/// Indices of the hops containing `node` (construction-time only; the hot
/// path reads the precomputed routing tables).
std::vector<std::size_t> hops_containing(
    const std::vector<mad::Channel*>& hops, std::uint32_t node) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& nodes = hops[i]->nodes();
    if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) {
      result.push_back(i);
    }
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------- VirtualChannel ---

VirtualChannel::VirtualChannel(mad::Session& session, VirtualChannelDef def)
    : session_(&session), def_(std::move(def)), pool_(def_.mtu) {
  MAD2_CHECK(!def_.hops.empty(), "virtual channel needs at least one hop");
  MAD2_CHECK(def_.mtu > kBlockHeaderBytes, "MTU too small");
  if (def_.congestion.has_value()) {
    congestion_ = *def_.congestion;
  } else if (session_->config().congestion.has_value()) {
    congestion_ = *session_->config().congestion;
  }
  if (def_.topology.has_value()) {
    topology_ = *def_.topology;
  } else if (session_->config().topology.has_value()) {
    topology_ = *session_->config().topology;
  }
  if (def_.propagation.has_value()) {
    propagation_ = *def_.propagation;
  } else if (session_->config().trace.has_value()) {
    propagation_ = session_->config().trace->propagation;
  }
  if (topology_.enabled) {
    MAD2_CHECK(topology_.replay_quota > 0,
               "topology replay_quota must be positive");
  }
  for (const std::string& hop : def_.hops) {
    hop_channels_.push_back(&session_->channel(hop));
  }

  // Boundaries: the common nodes of each consecutive hop pair, in hop-a
  // membership order. Without the topology stanza only one gateway is
  // allowed — redundant siblings would silently idle, which is a config
  // mistake, not a feature.
  std::size_t total_gateways = 0;
  for (std::size_t i = 0; i + 1 < hop_channels_.size(); ++i) {
    const auto& a = hop_channels_[i]->nodes();
    const auto& b = hop_channels_[i + 1]->nodes();
    Boundary boundary;
    for (std::uint32_t node : a) {
      if (std::find(b.begin(), b.end(), node) != b.end()) {
        boundary.gateways.push_back(node);
      }
    }
    MAD2_CHECK(!boundary.gateways.empty(),
               "consecutive hops must share at least one gateway node");
    if (!topology_.enabled) {
      MAD2_CHECK(boundary.gateways.size() == 1,
                 "consecutive hops share several gateway nodes; redundant "
                 "gateways need the topology stanza");
    }
    boundary.healthy = boundary.gateways;
    total_gateways += boundary.gateways.size();
    boundaries_.push_back(std::move(boundary));
  }

  for (const mad::Channel* hop : hop_channels_) {
    for (std::uint32_t node : hop->nodes()) {
      if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
        nodes_.push_back(node);
      }
    }
  }
  std::sort(nodes_.begin(), nodes_.end());

  // Flat directory-indexed routing tables, precomputed once: a dense
  // node index over the session directory, then n x n vectors instead of
  // per-pair maps — O(1) cell reads with no tree walks, which is what
  // keeps the 256-1024-node scenarios' routing cost flat.
  node_index_.assign(session_->node_count(), kNoIndex);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    node_index_[nodes_[i]] = static_cast<std::uint32_t>(i);
  }
  const std::size_t n = nodes_.size();
  MAD2_CHECK(hop_channels_.size() < kNoHop, "too many hops");
  std::vector<std::vector<std::size_t>> hops_of_node(n);
  for (std::size_t i = 0; i < n; ++i) {
    hops_of_node[i] = hops_containing(hop_channels_, nodes_[i]);
  }
  hop_table_.assign(n * n, kNoHop);
  terminal_table_.assign(n, kNoHop);
  for (std::size_t ni = 0; ni < n; ++ni) {
    const auto& node_hops = hops_of_node[ni];
    for (std::size_t di = 0; di < n; ++di) {
      const auto& dst_hops = hops_of_node[di];
      std::size_t hop;
      auto common = std::find_first_of(node_hops.begin(), node_hops.end(),
                                       dst_hops.begin(), dst_hops.end());
      if (common != node_hops.end()) {
        hop = *common;  // same hop: direct
      } else if (node_hops.back() < dst_hops.front()) {
        hop = node_hops.back();  // forward
      } else {
        hop = node_hops.front();  // backward
      }
      hop_table_[ni * n + di] = static_cast<std::uint16_t>(hop);
    }
    if (node_hops.size() == 1) {
      terminal_table_[ni] = static_cast<std::uint16_t>(node_hops.front());
    }
  }
  next_table_.resize(hop_channels_.size());
  for (std::size_t hop = 0; hop < hop_channels_.size(); ++hop) {
    next_table_[hop].assign(n, NextHop{});
    const auto& on_hop = hop_channels_[hop]->nodes();
    for (std::size_t di = 0; di < n; ++di) {
      const std::uint32_t dst = nodes_[di];
      NextHop& cell = next_table_[hop][di];
      if (std::find(on_hop.begin(), on_hop.end(), dst) != on_hop.end()) {
        cell.kind = NextHop::Kind::kDirect;
      } else if (hops_of_node[di].front() > hop) {
        cell.kind = NextHop::Kind::kForward;
        cell.boundary = static_cast<std::uint32_t>(hop);
      } else {
        MAD2_CHECK(hop > 0, "no route to destination");
        cell.kind = NextHop::Kind::kBackward;
        cell.boundary = static_cast<std::uint32_t>(hop - 1);
      }
    }
  }

  // Register the gateway roles in the session directory (liveness is
  // consulted on the pump hot paths in resilient mode).
  for (const Boundary& boundary : boundaries_) {
    for (std::uint32_t gateway : boundary.gateways) {
      session_->hostdb().set_gateway_role(gateway);
    }
  }

  // Size the pool for the steady state: every gateway direction keeps
  // pipeline_depth packets queued plus one in each pump fiber, and each
  // endpoint looks ahead by a couple of packets while draining. Extra
  // demand (e.g. a failover's out-of-order stash) grows the pool
  // (counted via hw::MemCounters::alloc_count).
  pool_.prewarm(total_gateways * 2 * (def_.pipeline_depth + 2) +
                nodes_.size() * 2);

  for (std::uint32_t node : nodes_) {
    endpoints_.emplace(node, std::unique_ptr<VirtualEndpoint>(
                                 new VirtualEndpoint(this, node)));
  }

  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    for (std::uint32_t gateway : boundaries_[i].gateways) {
      spawn_gateway(gateway, i, i + 1);
    }
  }

  if (topology_.enabled) {
    replay_settled_ =
        std::make_unique<sim::WaitQueue>(&session_->simulator());
    retention_freed_ =
        std::make_unique<sim::WaitQueue>(&session_->simulator());
    failure_listener_id_ = session_->add_failure_listener(
        [this](const mad::NetworkFailure& failure) {
          return on_network_failure(failure);
        });
  }
}

VirtualChannel::~VirtualChannel() {
  if (failure_listener_id_ != 0) {
    session_->remove_failure_listener(failure_listener_id_);
  }
}

const Status& VirtualChannel::health() const { return session_->health(); }

VirtualEndpoint& VirtualChannel::endpoint(std::uint32_t node) {
  auto it = endpoints_.find(node);
  MAD2_CHECK(it != endpoints_.end(), "node not on this virtual channel");
  return *it->second;
}

std::uint32_t VirtualChannel::dense_index(std::uint32_t node) const {
  MAD2_CHECK(node < node_index_.size() && node_index_[node] != kNoIndex,
             "node not on this virtual channel");
  return node_index_[node];
}

std::size_t VirtualChannel::hop_of(std::uint32_t node,
                                   std::uint32_t dst) const {
  const std::uint32_t ni = dense_index(node);
  MAD2_CHECK(dst < node_index_.size() && node_index_[dst] != kNoIndex,
             "destination not on this virtual channel");
  return hop_table_[static_cast<std::size_t>(ni) * nodes_.size() +
                    node_index_[dst]];
}

std::uint32_t VirtualChannel::pick_gateway(std::uint32_t boundary,
                                           std::uint32_t src,
                                           std::uint32_t dst) const {
  const Boundary& b = boundaries_[boundary];
  MAD2_CHECK(!b.healthy.empty(), "no healthy gateway left on a boundary");
  if (b.healthy.size() == 1) return b.healthy.front();
  // Deterministic flow spreading: splitmix64 of the flow identity (plus
  // the configured salt) over the *healthy* set. Same flow -> same
  // gateway while membership holds; an epoch bump re-deals only because
  // the healthy list changed.
  std::uint64_t x = ((static_cast<std::uint64_t>(src) << 32) | dst) ^
                    topology_.spread_salt;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return b.healthy[x % b.healthy.size()];
}

std::uint32_t VirtualChannel::next_node(std::size_t hop, std::uint32_t src,
                                        std::uint32_t dst) const {
  MAD2_CHECK(dst < node_index_.size() && node_index_[dst] != kNoIndex,
             "destination not on this virtual channel");
  const NextHop& cell = next_table_[hop][node_index_[dst]];
  MAD2_CHECK(cell.kind != NextHop::Kind::kUnreachable,
             "no route to destination");
  if (cell.kind == NextHop::Kind::kDirect) return dst;
  return pick_gateway(cell.boundary, src, dst);
}

std::size_t VirtualChannel::terminal_hop(std::uint32_t node) const {
  const std::uint32_t ni = dense_index(node);
  MAD2_CHECK(terminal_table_[ni] != kNoHop,
             "gateway nodes cannot be virtual-channel receivers");
  return terminal_table_[ni];
}

void VirtualChannel::send_packet(
    mad::ChannelEndpoint& hop_endpoint, std::uint32_t to, PacketHeader header,
    std::span<const std::span<const std::byte>> pieces,
    std::vector<std::uint32_t>& sizes_scratch, sim::Time stamp,
    std::uint64_t seq, const HopStamp* trace) {
  header.n_pieces = static_cast<std::uint32_t>(pieces.size());
  sizes_scratch.clear();
  std::uint64_t total = 0;
  for (const auto& piece : pieces) {
    sizes_scratch.push_back(static_cast<std::uint32_t>(piece.size()));
    total += piece.size();
  }
  // The header carries the payload length as u32; a >= 4 GiB packet would
  // silently wrap it. (Messages are fragmented to the MTU well below
  // that; this guards direct callers handing over-long gather lists.)
  MAD2_CHECK(total <= std::numeric_limits<std::uint32_t>::max(),
             "virtual packet payload overflows the u32 length header");
  header.payload_len = static_cast<std::uint32_t>(total);

  MAD2_TRACE_SPAN(span, obs::Category::kFwd, "fwd.packet_flush");
  span.args(header.payload_len, header.dst);
  mad::Connection& conn = hop_endpoint.begin_packing(to);
  mad::mad_pack_value(conn, header, mad::send_CHEAPER, mad::receive_EXPRESS);
  if (congestion_.enabled) {
    // Congestion control rides the send timestamp as its own EXPRESS
    // block; with the feature off the byte stream is bit-identical to the
    // pre-congestion wire format.
    mad::mad_pack_value(conn, stamp, mad::send_CHEAPER,
                        mad::receive_EXPRESS);
  }
  if (topology_.enabled) {
    // Resilient routing rides the per-flow sequence the same way: an
    // extra EXPRESS block only when the feature is on.
    mad::mad_pack_value(conn, seq, mad::send_CHEAPER, mad::receive_EXPRESS);
  }
  if (propagation_) {
    // Trace-context propagation rides the hop stamps as one more EXPRESS
    // block, after the seq and before the size list — never a payload
    // piece, so it can never become an unpack_borrow candidate and never
    // enters the copies-per-byte accounting. Off keeps the wire
    // bit-identical, same rule as the stamp and seq above.
    static const HopStamp kEmptyStamp{};
    mad::mad_pack_value(conn, trace != nullptr ? *trace : kEmptyStamp,
                        mad::send_CHEAPER, mad::receive_EXPRESS);
  }
  if (!sizes_scratch.empty()) {
    conn.pack(std::as_bytes(std::span(sizes_scratch)), mad::send_CHEAPER,
              mad::receive_EXPRESS);
  }
  for (const auto& piece : pieces) {
    conn.pack(piece, mad::send_CHEAPER, mad::receive_CHEAPER);
  }
  conn.end_packing();
}

Packet VirtualChannel::receive_packet(mad::ChannelEndpoint& hop_endpoint,
                                      Demand* demand, bool at_destination) {
  mad::Connection& conn = hop_endpoint.begin_unpacking();
  // Starts after begin_unpacking returns (a message is incoming), so the
  // span measures the packet landing, not idle waiting for traffic.
  MAD2_TRACE_SPAN(span, obs::Category::kFwd, "fwd.packet_land");
  Packet packet;
  packet.storage = pool_.acquire(&hop_endpoint.node());
  PacketBuffer& buffer = *packet.storage;
  mad::mad_unpack_value(conn, packet.header, mad::send_CHEAPER,
                        mad::receive_EXPRESS);
  if (congestion_.enabled) {
    mad::mad_unpack_value(conn, packet.stamp, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
  }
  bool in_sequence = true;
  if (topology_.enabled) {
    mad::mad_unpack_value(conn, packet.seq, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
    if (at_destination) {
      // The sequence unpacks before any payload lands, so an
      // out-of-order packet (replay duplicate or a packet that overtook
      // a replayed one) is known up front and must stage everything —
      // demand landing would put its bytes into user memory out of
      // stream order.
      const FlowControl& flow =
          flow_control(packet.header.src, packet.header.dst);
      in_sequence = packet.seq == flow.expected_seq;
    }
  }
  if (propagation_) {
    // The hop stamps unpack EXPRESS before the payload landing loop, so
    // (like the stamp and seq) they are structurally outside the borrow /
    // demand-landing machinery and the copies-per-byte accounting.
    mad::mad_unpack_value(conn, packet.trace, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
  }
  // The stream is self-described, so a corrupted or hostile header could
  // otherwise drive the landing loop past the fixed-MTU buffer.
  MAD2_CHECK(packet.header.payload_len <= def_.mtu,
             "malformed virtual packet: payload length exceeds the MTU");
  MAD2_CHECK(packet.header.n_pieces <= def_.mtu,
             "malformed virtual packet: piece count exceeds the MTU");
  buffer.sizes.resize(packet.header.n_pieces);
  if (!buffer.sizes.empty()) {
    conn.unpack(std::as_writable_bytes(std::span(buffer.sizes)),
                mad::send_CHEAPER, mad::receive_EXPRESS);
  }
  std::uint64_t total = 0;
  for (std::uint32_t size : buffer.sizes) total += size;
  MAD2_CHECK(total == packet.header.payload_len,
             "piece sizes do not add up to the packet payload");

  // Land the pieces, in stream order. Each piece goes to exactly one
  // destination so the hop-level unpack sequence stays symmetric with the
  // sender:
  //  1. straight into the demanded user window (endpoints, while every
  //     earlier piece also landed there — staged bytes must keep stream
  //     order);
  //  2. borrowed from the hop TM's static receive buffer (no copy at all;
  //     the slot is released when the packet buffer recycles);
  //  3. staged into the pooled bytes.
  bool direct_ok =
      demand != nullptr && demand->src == packet.header.src && in_sequence;
  std::size_t offset = 0;
  for (std::uint32_t size : buffer.sizes) {
    if (direct_ok && demand->filled + size <= demand->window.size()) {
      conn.unpack(demand->window.subspan(demand->filled, size),
                  mad::send_CHEAPER, mad::receive_CHEAPER);
      demand->filled += size;
      continue;
    }
    direct_ok = false;
    const std::size_t first_new = buffer.borrows.size();
    if (conn.unpack_borrow(size, mad::send_CHEAPER, mad::receive_CHEAPER,
                           buffer.borrows)) {
      // A borrow may split the piece at protocol-buffer boundaries; each
      // chunk becomes a piece of its own (the block framing is inline in
      // the byte stream, so piece granularity is free to change).
      for (std::size_t i = first_new; i < buffer.borrows.size(); ++i) {
        buffer.pieces.push_back(buffer.borrows[i].data);
      }
    } else {
      const auto dst = std::span<std::byte>(buffer.bytes).subspan(offset, size);
      conn.unpack(dst, mad::send_CHEAPER, mad::receive_CHEAPER);
      buffer.pieces.push_back(dst);
      offset += size;
    }
  }
  conn.end_unpacking();
  span.args(packet.header.payload_len, packet.header.src);
  return packet;
}

void VirtualChannel::spawn_gateway(std::uint32_t gateway, std::size_t hop_in,
                                   std::size_t hop_out) {
  // One pipeline per direction; each is the paper's Figure 9: a receiving
  // fiber and a sending fiber exchanging a bounded pool of packet buffers
  // (pipeline_depth == 2 -> dual buffering). pipeline_depth <= 1 degrades
  // to strict store-and-forward (one fiber receives, then sends) — the
  // no-overlap baseline the dual-buffering design improves on. Either
  // way the landed buffer is forwarded with its original gather list and
  // recycled afterwards: the gateway never consolidates the payload.
  auto spawn_direction = [this, gateway](std::size_t in, std::size_t out) {
    if (def_.pipeline_depth <= 1) {
      pumps_.push_back(GatewayPump{gateway, in, out, nullptr, nullptr});
      session_->simulator().spawn_daemon(
          def_.name + ".gw" + std::to_string(gateway) + "." +
              std::to_string(in) + "to" + std::to_string(out) + ".sf",
          [this, in, out, gateway] {
            mad::ChannelEndpoint& ep_in =
                hop_channels_[in]->endpoint(gateway);
            mad::ChannelEndpoint& ep_out =
                hop_channels_[out]->endpoint(gateway);
            for (;;) {
              Packet packet = receive_packet(ep_in);
              const sim::Time landed = session_->simulator().now();
              // Dead-check before the sanity CHECK: a poisoned stream
              // hands a dying gateway zero-filled truncated packets
              // whose garbage headers must not trip assertions.
              if (resilient()) {
                note_gateway_packet(gateway);
                if (!session_->hostdb().alive(gateway)) {
                  ++counters_.discarded;
                  continue;  // dead gateway black-holes; replay redelivers
                }
              }
              MAD2_CHECK(packet.header.dst != gateway,
                         "forwarding packet addressed to the gateway");
              const std::uint32_t to =
                  next_node(out, packet.header.src, packet.header.dst);
              // Gateway residence: from fully landed to fully re-sent.
              MAD2_TRACE_SPAN(hop, obs::Category::kFwd, "fwd.hop",
                              "store_forward");
              hop.args(packet.header.payload_len, packet.header.dst);
              ++forwarded_by_gateway_[gateway];
              if (propagation_) {
                // Store-and-forward holds no queue: the packet leaves the
                // moment it landed, so residence collapses to a point.
                const sim::Time t = session_->simulator().now();
                packet.trace.push(gateway, landed, t, t);
              }
              send_packet(ep_out, to, packet.header, packet.storage->pieces,
                          packet.storage->sizes, packet.stamp, packet.seq,
                          &packet.trace);
            }
          });
      return;
    }
    const std::string tag = def_.name + ".gw" + std::to_string(gateway) +
                            "." + std::to_string(in) + "to" +
                            std::to_string(out);
    if (congestion_.enabled) {
      // Congestion mode swaps the FIFO pipeline queue for a deficit-
      // round-robin queue keyed by (src, dst): when N inbound flows
      // converge on this gateway, the tx fiber drains them by byte-fair
      // quanta instead of arrival order, so one heavy flow cannot
      // monopolize the outgoing hop.
      fair_queues_.push_back(std::make_unique<FairPacketQueue>(
          &session_->simulator(), congestion_.gateway_queue,
          congestion_.quantum));
      FairPacketQueue* queue = fair_queues_.back().get();
      pumps_.push_back(GatewayPump{gateway, in, out, nullptr, queue});
      session_->simulator().spawn_daemon(tag + ".rx", [this, in, gateway,
                                                       queue] {
        mad::ChannelEndpoint& ep = hop_channels_[in]->endpoint(gateway);
        for (;;) {
          Packet packet = receive_packet(ep);
          if (resilient()) {
            note_gateway_packet(gateway);
            if (!session_->hostdb().alive(gateway)) {
              ++counters_.discarded;
              continue;
            }
          }
          MAD2_CHECK(packet.header.dst != gateway,
                     "forwarding packet addressed to the gateway itself");
          MAD2_TRACE_SPAN(stage, obs::Category::kFwd, "fwd.gw_enqueue");
          stage.args(packet.header.payload_len, packet.header.dst);
          if (propagation_) {
            // Queue residency opens here; the tx fiber closes it when the
            // DRR schedule picks the packet (backpressure waits inside
            // queue->send count as residency too).
            packet.trace.push(gateway, session_->simulator().now(), 0, 0);
          }
          queue->send(std::move(packet));
        }
      });
      session_->simulator().spawn_daemon(tag + ".tx", [this, out, gateway,
                                                       queue] {
        mad::ChannelEndpoint& ep = hop_channels_[out]->endpoint(gateway);
        for (;;) {
          auto packet = queue->receive();
          if (!packet.has_value()) return;
          if (resilient() && !session_->hostdb().alive(gateway)) {
            // A packet that slipped into the queue around the kill's
            // drain (e.g. an rx fiber unblocked mid-enqueue): discard it
            // here so the queue still ends empty and the buffer recycles.
            ++counters_.discarded;
            continue;
          }
          const std::uint32_t to =
              next_node(out, packet->header.src, packet->header.dst);
          MAD2_TRACE_SPAN(hop, obs::Category::kFwd, "fwd.hop", "fair");
          hop.args(packet->header.payload_len, packet->header.dst);
          ++forwarded_by_gateway_[gateway];
          if (propagation_ && packet->trace.hop_count > 0) {
            HopStamp::Hop& here =
                packet->trace.hops[packet->trace.hop_count - 1];
            here.dequeue = session_->simulator().now();
            here.wire = here.dequeue;
          }
          send_packet(ep, to, packet->header, packet->storage->pieces,
                      packet->storage->sizes, packet->stamp, packet->seq,
                      &packet->trace);
        }
      });
      return;
    }
    gateway_queues_.push_back(std::make_unique<sim::BoundedChannel<Packet>>(
        &session_->simulator(), def_.pipeline_depth));
    sim::BoundedChannel<Packet>* queue = gateway_queues_.back().get();
    pumps_.push_back(GatewayPump{gateway, in, out, queue, nullptr});
    session_->simulator().spawn_daemon(tag + ".rx", [this, in, gateway,
                                                     queue] {
      mad::ChannelEndpoint& ep = hop_channels_[in]->endpoint(gateway);
      for (;;) {
        Packet packet = receive_packet(ep);
        if (resilient()) {
          note_gateway_packet(gateway);
          if (!session_->hostdb().alive(gateway)) {
            ++counters_.discarded;
            continue;
          }
        }
        MAD2_CHECK(packet.header.dst != gateway,
                   "forwarding packet addressed to the gateway itself");
        // Time spent waiting for a free pipeline slot (backpressure from
        // the sending fiber shows up as a long enqueue).
        MAD2_TRACE_SPAN(stage, obs::Category::kFwd, "fwd.gw_enqueue");
        stage.args(packet.header.payload_len, packet.header.dst);
        if (propagation_) {
          packet.trace.push(gateway, session_->simulator().now(), 0, 0);
        }
        queue->send(std::move(packet));
      }
    });
    session_->simulator().spawn_daemon(tag + ".tx", [this, out, gateway,
                                                     queue] {
      mad::ChannelEndpoint& ep = hop_channels_[out]->endpoint(gateway);
      for (;;) {
        auto packet = queue->receive();
        if (!packet.has_value()) return;
        if (resilient() && !session_->hostdb().alive(gateway)) {
          ++counters_.discarded;
          continue;
        }
        const std::uint32_t to =
            next_node(out, packet->header.src, packet->header.dst);
        // Outgoing half of the gateway hop (the incoming half is the rx
        // fiber's packet_land + gw_enqueue spans on its own track).
        MAD2_TRACE_SPAN(hop, obs::Category::kFwd, "fwd.hop", "pipelined");
        hop.args(packet->header.payload_len, packet->header.dst);
        ++forwarded_by_gateway_[gateway];
        if (propagation_ && packet->trace.hop_count > 0) {
          HopStamp::Hop& here =
              packet->trace.hops[packet->trace.hop_count - 1];
          here.dequeue = session_->simulator().now();
          here.wire = here.dequeue;
        }
        // Re-emit the landed gather list as-is; the outgoing TM rides it
        // as one send_buffer_group. The received size list is dead by
        // now, so it doubles as the send-side scratch.
        send_packet(ep, to, packet->header, packet->storage->pieces,
                    packet->storage->sizes, packet->stamp, packet->seq,
                    &packet->trace);
        // `packet` dies here: borrows release to the incoming TM and the
        // buffer recycles into the pool.
      }
    });
  };
  spawn_direction(hop_in, hop_out);
  spawn_direction(hop_out, hop_in);
}

sim::Mutex& VirtualChannel::send_mutex(std::uint32_t src) {
  auto it = send_mutexes_.find(src);
  if (it == send_mutexes_.end()) {
    it = send_mutexes_
             .emplace(src, std::make_unique<sim::Mutex>(
                               &session_->simulator()))
             .first;
  }
  return *it->second;
}

void VirtualChannel::trim_unacked(FlowControl& flow) {
  // Confirmation is the receiver's in-order cursor: everything below
  // expected_seq was delivered exactly once. Only the sender/repair fiber
  // (holding the send mutex) pops, so replay iteration by index is safe.
  while (!flow.unacked.empty() &&
         flow.unacked.front().seq < flow.expected_seq) {
    flow.unacked.pop_front();
  }
}

bool VirtualChannel::route_uses_gateway(std::uint32_t src, std::uint32_t dst,
                                        std::uint32_t gateway) const {
  std::uint32_t node = src;
  while (node != dst) {
    const std::size_t hop = hop_of(node, dst);
    const std::uint32_t next = next_node(hop, src, dst);
    if (next == gateway) return true;
    if (next == node) return false;  // defensive: no progress
    node = next;
  }
  return false;
}

bool VirtualChannel::can_absorb_gateway(std::uint32_t node) const {
  bool member = false;
  for (const Boundary& boundary : boundaries_) {
    const auto it = std::find(boundary.healthy.begin(),
                              boundary.healthy.end(), node);
    if (it == boundary.healthy.end()) continue;
    if (boundary.healthy.size() < 2) return false;  // last one standing
    member = true;
  }
  return member;
}

void VirtualChannel::kill_gateway(std::uint32_t node) {
  MAD2_CHECK(resilient(),
             "kill_gateway requires the topology stanza (resilient mode)");
  mad::Hostdb& hostdb = session_->hostdb();
  if (!hostdb.alive(node)) return;  // idempotent
  MAD2_CHECK(hostdb.is_gateway(node), "kill_gateway on a non-gateway node");
  MAD2_CHECK(can_absorb_gateway(node),
             "killing the last healthy gateway of a boundary");

  // 1. While the pre-death routes are still in force, find the flows
  //    whose unconfirmed packets were traveling through the dying
  //    gateway: those are the ones that must replay.
  for (auto& [key, flow] : flows_) {
    if (flow.unacked.empty()) continue;
    trim_unacked(flow);
    if (flow.unacked.empty()) continue;
    if (route_uses_gateway(key.first, key.second, node)) {
      flow.replay_pending = true;
    }
  }

  // 2. Membership update: directory epoch bump + healthy-set shrink.
  //    From this call on, every next_node() resolves around the corpse.
  hostdb.mark_dead(node);
  for (Boundary& boundary : boundaries_) {
    boundary.healthy.erase(std::remove(boundary.healthy.begin(),
                                       boundary.healthy.end(), node),
                           boundary.healthy.end());
  }
  ++counters_.gateway_kills;

  // 3. Packets parked in the dead gateway's pump queues go back to the
  //    pool (they are unconfirmed by definition — replay covers them).
  drain_gateway_queues(node);

  // 4. Repair: replay the marked flows over surviving gateways, off the
  //    killer's fiber so a kill from inside a pump cannot deadlock on
  //    its own queue.
  session_->simulator().spawn(
      def_.name + ".repair.gw" + std::to_string(node),
      [this] { replay_pending_flows(); });
}

void VirtualChannel::arm_gateway_kill(std::uint32_t node,
                                      std::uint64_t after_packets) {
  MAD2_CHECK(resilient(),
             "arm_gateway_kill requires the topology stanza");
  armed_kill_ = ArmedKill{node, gateway_rx_packets_ + after_packets};
}

void VirtualChannel::note_gateway_packet(std::uint32_t gateway) {
  (void)gateway;
  ++gateway_rx_packets_;
  if (armed_kill_.has_value() &&
      gateway_rx_packets_ >= armed_kill_->after_packets) {
    const std::uint32_t victim = armed_kill_->gateway;
    armed_kill_.reset();
    kill_gateway(victim);
  }
}

void VirtualChannel::drain_gateway_queues(std::uint32_t gateway) {
  for (GatewayPump& pump : pumps_) {
    if (pump.gateway != gateway) continue;
    if (pump.pipe != nullptr) {
      while (auto packet = pump.pipe->try_receive()) {
        ++counters_.discarded;  // buffer recycles as `packet` dies
      }
    }
    if (pump.fair != nullptr) {
      while (auto packet = pump.fair->try_receive()) {
        ++counters_.discarded;
      }
    }
  }
}

void VirtualChannel::replay_pending_flows() {
  std::vector<std::span<const std::byte>> one_piece(1);
  std::vector<std::uint32_t> sizes_scratch;
  for (auto& [key, flow] : flows_) {
    if (!flow.replay_pending) continue;
    const std::uint32_t src = key.first;
    const std::uint32_t dst = key.second;
    sim::Mutex& mutex = send_mutex(src);
    mutex.lock();
    trim_unacked(flow);
    const std::size_t hop = hop_of(src, dst);
    mad::ChannelEndpoint& ep = hop_channels_[hop]->endpoint(src);
    // Confirmations only advance the watermark, so indexing stays valid
    // across the blocking sends; already-confirmed entries are skipped
    // instead of replayed as guaranteed duplicates.
    for (std::size_t i = 0; i < flow.unacked.size(); ++i) {
      RetainedPacket& retained = flow.unacked[i];
      if (retained.seq < flow.expected_seq) continue;
      const std::uint32_t to = next_node(hop, src, dst);
      one_piece[0] = std::span<const std::byte>(retained.bytes);
      // A retained bare `last` marker has no payload: replay it with an
      // empty gather list, exactly as it first went out.
      const std::span<const std::span<const std::byte>> pieces =
          retained.bytes.empty()
              ? std::span<const std::span<const std::byte>>()
              : std::span<const std::span<const std::byte>>(one_piece);
      MAD2_TRACE_SPAN(span, obs::Category::kFwd, "fwd.replay");
      span.args(static_cast<std::uint32_t>(retained.bytes.size()), dst);
      // The retained trace stamp re-ships as-is: the replay inherits the
      // original packet's trace identity, so the weaved span shows the
      // journey that actually delivered.
      send_packet(ep, to, retained.header, pieces, sizes_scratch,
                  retained.stamp, retained.seq, &retained.trace);
      ++counters_.replayed_packets;
      counters_.replayed_bytes += retained.bytes.size();
      ++flow.replays;
    }
    flow.replay_pending = false;
    mutex.unlock();
    replay_settled_->notify_all();
  }
}

mad::FailureDomain VirtualChannel::on_network_failure(
    const mad::NetworkFailure& failure) {
  // Only failures of networks backing this channel's hops concern us.
  bool ours = false;
  for (mad::Channel* hop : hop_channels_) {
    if (&hop->network() == failure.network) {
      ours = true;
      break;
    }
  }
  if (!ours) return mad::FailureDomain::kUnknown;
  // The unresponsive end decides whether this is our failure to absorb:
  // a dead leaf is a node-domain problem however it was reported, so
  // anything but a gateway with healthy siblings passes through.
  const auto attributable = [this](std::uint32_t node) {
    return node != mad::NetworkFailure::kNoNode &&
           node < node_index_.size() && node_index_[node] != kNoIndex;
  };
  const std::uint32_t dst = failure.dst_node;
  if (!attributable(dst)) return mad::FailureDomain::kUnknown;
  if (session_->hostdb().alive(dst)) {
    if (!can_absorb_gateway(dst)) return mad::FailureDomain::kUnknown;
    kill_gateway(dst);
  }
  // A give-up is terminal for the *reporting* endpoint too (the net
  // layer fails the whole endpoint and poisons every stream touching
  // it, see net/reliable.cpp and TcpNetwork::on_link_failed), so the
  // reporter must leave the gateway rotation as well — routing replays
  // through it would black-hole them. If it is the last healthy gateway
  // of a boundary it stays, and flows hashed there are on their own;
  // there is no failover left to run.
  const std::uint32_t src = failure.src_node;
  if (attributable(src) && session_->hostdb().alive(src) &&
      can_absorb_gateway(src)) {
    kill_gateway(src);
  }
  return mad::FailureDomain::kHop;
}

VirtualChannel::FlowControl& VirtualChannel::flow_control(std::uint32_t src,
                                                          std::uint32_t dst) {
  const auto key = std::make_pair(src, dst);
  auto it = flows_.find(key);
  if (it != flows_.end()) return it->second;
  FlowControl flow;
  if (congestion_.enabled) {
    // First packet of this flow: seed the window from the sender's
    // first-hop driver bandwidth self-report (about one millisecond of
    // line rate, in MTU packets), clamped to the configured window
    // bounds. Resilient-only flows keep no window — the entry then just
    // carries the failover cursors.
    const std::size_t hop = hop_of(src, dst);
    const double hint =
        hop_channels_[hop]->endpoint(src).pmm().bandwidth_hint_mbs();
    const double initial = mad::seed_window(congestion_, hint, def_.mtu);
    flow.window = std::make_unique<mad::CongestionWindow>(
        &session_->simulator(), congestion_, initial);
    flow.hist_name = def_.name + ".flow." + std::to_string(src) + "-" +
                     std::to_string(dst) + ".e2e";
  }
  return flows_.emplace(key, std::move(flow)).first->second;
}

void VirtualChannel::set_flow_weight(std::uint32_t src, std::uint32_t dst,
                                     double weight) {
  MAD2_CHECK(congestion_.enabled,
             "flow weights need the congestion stanza (the FIFO pipeline "
             "has no per-flow schedule to weight)");
  const std::uint64_t key = FairPacketQueue::flow_key(src, dst);
  for (auto& queue : fair_queues_) queue->set_weight(key, weight);
}

void VirtualChannel::on_packet_delivered(const Packet& packet) {
  FlowControl& flow = flow_control(packet.header.src, packet.header.dst);
  ++flow.packets;
  flow.bytes += packet.header.payload_len;
  if (flow.window == nullptr) return;  // resilient-only: no windowing
  const sim::Duration delay =
      session_->simulator().now() - packet.stamp;
  flow.window->on_delivered(delay);
  if (obs::MetricsRegistry* registry = obs::metrics()) {
    registry->histogram(flow.hist_name)->record(delay);
  }
}

void VirtualChannel::note_packet_trace(Packet& packet) {
  if (!propagation_) return;
  const sim::Time now = session_->simulator().now();
  // The delivery hop: landing time only, no queue and no outgoing wire.
  packet.trace.push(packet.header.dst, now, now, 0);

  obs::TraceRecorder* rec = obs::recorder();
  const bool record_events = rec != nullptr &&
                             obs::trace_enabled(obs::Category::kFwd) &&
                             rec->channel_enabled(def_.name);
  obs::MetricsRegistry* registry = obs::metrics();
  if (!record_events && registry == nullptr) return;

  FlowControl& flow = flow_control(packet.header.src, packet.header.dst);
  const std::uint64_t id =
      obs::flow_id(packet.header.src, packet.header.dst);
  const HopStamp& trace = packet.trace;
  for (std::uint32_t k = 0; k < trace.hop_count; ++k) {
    const HopStamp::Hop& hop = trace.hops[k];
    const bool last = k + 1 == trace.hop_count;
    const sim::Duration queue_ns = hop.dequeue - hop.enqueue;
    const sim::Duration wire_ns =
        last ? 0 : trace.hops[k + 1].enqueue - hop.wire;
    const std::uint64_t arg = obs::hop_arg(trace.seq, hop.node, k);
    if (record_events) {
      // Explicit timestamps: the events are written at delivery but dated
      // back to when each hop actually happened, so the weaved timeline
      // is causal, not delivery-batched. Nothing here charges time.
      rec->record(obs::Category::kFwd, obs::kHopQueueEvent, nullptr,
                  hop.enqueue, queue_ns, id, arg);
      if (!last) {
        rec->record(obs::Category::kFwd, obs::kHopWireEvent, nullptr,
                    hop.wire, wire_ns, id, arg);
      }
    }
    if (registry != nullptr) {
      while (flow.hop_hists.size() <= k) {
        const std::string stem =
            def_.name + ".hop." + std::to_string(packet.header.src) + "-" +
            std::to_string(packet.header.dst) + "." +
            std::to_string(flow.hop_hists.size());
        flow.hop_hists.emplace_back(registry->histogram(stem + ".queue"),
                                    registry->histogram(stem + ".wire"));
      }
      flow.hop_hists[k].first->record(queue_ns);
      if (!last) flow.hop_hists[k].second->record(wire_ns);
    }
  }
}

mad::TrafficStats VirtualChannel::stats() const {
  mad::TrafficStats stats;
  for (const auto& [key, flow] : flows_) {
    mad::FlowCounters counters;
    counters.packets = flow.packets;
    counters.bytes = flow.bytes;
    if (flow.window != nullptr) {
      counters.cwnd = flow.window->cwnd();
      counters.srtt_us = sim::to_us(flow.window->srtt());
    }
    counters.replays = flow.replays;
    counters.dup_drops = flow.dup_drops;
    stats.flows[std::to_string(key.first) + "->" +
                std::to_string(key.second)] = counters;
  }
  for (const auto& queue : fair_queues_) {
    for (const auto& [key, fstats] : queue->flow_stats()) {
      const std::string name =
          std::to_string(FairPacketQueue::flow_src(key)) + "->" +
          std::to_string(FairPacketQueue::flow_dst(key));
      mad::FlowCounters& mine = stats.flows[name];
      mine.queue_depth_hwm =
          std::max<std::uint64_t>(mine.queue_depth_hwm, fstats.depth_hwm);
    }
  }
  return stats;
}

void VirtualChannel::export_metrics(obs::MetricsRegistry& registry) const {
  for (const auto& [key, flow] : flows_) {
    const std::string prefix = def_.name + ".flow." +
                               std::to_string(key.first) + "-" +
                               std::to_string(key.second);
    if (flow.window != nullptr) {
      registry.set_value(
          prefix + ".cwnd_x1000",
          static_cast<std::int64_t>(flow.window->cwnd() * 1000.0));
      registry.set_value(
          prefix + ".srtt_us",
          static_cast<std::int64_t>(sim::to_us(flow.window->srtt())));
    }
    registry.set_value(prefix + ".packets",
                       static_cast<std::int64_t>(flow.packets));
  }
  for (const auto& pump : pumps_) {
    if (pump.fair == nullptr) continue;
    const std::string prefix =
        def_.name + ".gw" + std::to_string(pump.gateway) + "." +
        std::to_string(pump.hop_in) + "to" + std::to_string(pump.hop_out);
    registry.set_value(prefix + ".queue_depth_hwm",
                       static_cast<std::int64_t>(pump.fair->depth_hwm()));
  }
  if (resilient()) {
    const std::string prefix = def_.name + ".routing";
    registry.set_value(prefix + ".gateway_kills",
                       static_cast<std::int64_t>(counters_.gateway_kills));
    registry.set_value(prefix + ".replayed_packets",
                       static_cast<std::int64_t>(counters_.replayed_packets));
    registry.set_value(prefix + ".dup_drops",
                       static_cast<std::int64_t>(counters_.dup_drops));
    registry.set_value(prefix + ".discarded",
                       static_cast<std::int64_t>(counters_.discarded));
    for (const auto& [gateway, forwarded] : forwarded_by_gateway_) {
      registry.set_value(
          def_.name + ".gw" + std::to_string(gateway) + ".forwarded",
          static_cast<std::int64_t>(forwarded));
    }
  }
}

const mad::CongestionWindow* VirtualChannel::flow_window(
    std::uint32_t src, std::uint32_t dst) const {
  auto it = flows_.find(std::make_pair(src, dst));
  if (it == flows_.end()) return nullptr;
  return it->second.window.get();
}

std::vector<std::size_t> VirtualChannel::gateway_queue_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(pumps_.size());
  for (const auto& pump : pumps_) {
    if (pump.fair != nullptr) {
      depths.push_back(pump.fair->depth());
    } else if (pump.pipe != nullptr) {
      depths.push_back(pump.pipe->size());
    }
    // store-and-forward pumps hold no queue: nothing to report.
  }
  return depths;
}

std::uint64_t VirtualChannel::gateway_forwarded(std::uint32_t gateway) const {
  auto it = forwarded_by_gateway_.find(gateway);
  return it == forwarded_by_gateway_.end() ? 0 : it->second;
}

// --------------------------------------------------------- VirtualEndpoint ---

VirtualEndpoint::VirtualEndpoint(VirtualChannel* channel, std::uint32_t local)
    : channel_(channel), local_(local) {
  for (std::uint32_t node : channel_->nodes()) {
    if (node == local_) continue;
    connections_.emplace(node, std::unique_ptr<VirtualConnection>(
                                   new VirtualConnection(this, node)));
  }
}

VirtualConnection& VirtualEndpoint::begin_packing(std::uint32_t remote) {
  auto it = connections_.find(remote);
  MAD2_CHECK(it != connections_.end(), "unknown virtual destination");
  VirtualConnection& conn = *it->second;
  MAD2_CHECK(!conn.packing_, "virtual message already open");
  conn.packing_ = true;
  conn.pieces_.clear();
  conn.metas_.clear();
  conn.pending_bytes_ = 0;
  return conn;
}

std::uint32_t VirtualEndpoint::fetch_packet(Demand* demand) {
  if (terminal_ep_ == nullptr) {
    const std::size_t hop = channel_->terminal_hop(local_);
    terminal_ep_ = &channel_->hop_channels_[hop]->endpoint(local_);
  }
  const bool resilient = channel_->resilient();
  for (;;) {
    Packet packet =
        channel_->receive_packet(*terminal_ep_, demand, resilient);
    MAD2_CHECK(packet.header.dst == local_,
               "virtual packet delivered to the wrong node");
    if (resilient) {
      VirtualChannel::FlowControl& flow =
          channel_->flow_control(packet.header.src, local_);
      if (packet.seq < flow.expected_seq ||
          flow.ooo.count(packet.seq) != 0) {
        // Replay duplicate of something already delivered or already
        // stashed: drop it (the buffer recycles right here) and keep
        // waiting for the cursor packet.
        ++flow.dup_drops;
        ++channel_->counters_.dup_drops;
        continue;
      }
      if (packet.seq > flow.expected_seq) {
        // A later packet overtook the cursor across the re-route. Park
        // it whole (demand landing was disabled for it) until the gap
        // fills; delivery order per flow never deviates from seq order.
        ++channel_->counters_.stashed;
        flow.ooo.emplace(packet.seq, std::move(packet));
        continue;
      }
    }
    const std::uint32_t src = packet.header.src;
    deliver_packet(std::move(packet));
    if (resilient) {
      // The cursor moved: drain every consecutive stashed successor of
      // this flow behind it.
      VirtualChannel::FlowControl& flow =
          channel_->flow_control(src, local_);
      auto next = flow.ooo.begin();
      while (next != flow.ooo.end() && next->first == flow.expected_seq) {
        Packet stashed = std::move(next->second);
        next = flow.ooo.erase(next);
        deliver_packet(std::move(stashed));
      }
    }
    return src;
  }
}

void VirtualEndpoint::deliver_packet(Packet packet) {
  // End-to-end feedback: free the sender's window slot and feed the
  // delivery delay into the flow's estimator. Empty packets (bare `last`
  // markers) never took a slot, so they must not release one.
  if ((channel_->congestion_enabled() || channel_->resilient()) &&
      packet.header.payload_len > 0) {
    channel_->on_packet_delivered(packet);
  }
  channel_->note_packet_trace(packet);
  if (channel_->resilient()) {
    // Advancing the receiver cursor doubles as confirming seq-1 to the
    // sender: its retain buffer trims against this watermark.
    VirtualChannel::FlowControl& flow =
        channel_->flow_control(packet.header.src, local_);
    flow.expected_seq = packet.seq + 1;
    channel_->retention_freed_->notify_all();
  }
  const std::uint32_t src = packet.header.src;
  std::size_t staged = 0;
  for (const auto& piece : packet.storage->pieces) staged += piece.size();
  if (staged > 0) {
    Stream& stream = streams_[src];
    stream.packets.push_back(std::move(packet));
    stream.bytes += staged;
  }
  // else: fully direct-landed (or empty) — the buffer recycles right here.
}

VirtualConnection& VirtualEndpoint::begin_unpacking() {
  MAD2_CHECK(active_incoming_ == nullptr,
             "virtual incoming message already open");
  // Leftover packets of a *different* source fetched while draining the
  // previous message start the next one; otherwise fetch.
  std::uint32_t src = 0;
  bool found = false;
  for (auto& [candidate, stream] : streams_) {
    if (stream.bytes > 0) {
      src = candidate;
      found = true;
      break;
    }
  }
  if (!found) src = fetch_packet(nullptr);
  VirtualConnection& conn = *connections_.at(src);
  MAD2_CHECK(!conn.unpacking_, "virtual connection already unpacking");
  conn.unpacking_ = true;
  active_incoming_ = &conn;
  return conn;
}

void VirtualEndpoint::retire_front(Stream& stream, PooledBuffer* retain) {
  if (retain != nullptr) *retain = std::move(stream.packets.front().storage);
  stream.packets.pop_front();
  stream.piece_index = 0;
  stream.piece_offset = 0;
}

void VirtualEndpoint::settle(Stream& stream) {
  while (!stream.packets.empty()) {
    const auto& pieces = stream.packets.front().storage->pieces;
    while (stream.piece_index < pieces.size() &&
           stream.piece_offset == pieces[stream.piece_index].size()) {
      ++stream.piece_index;
      stream.piece_offset = 0;
    }
    if (stream.piece_index < pieces.size()) return;
    retire_front(stream, nullptr);
  }
}

void VirtualEndpoint::read_stream(std::uint32_t src,
                                  std::span<std::byte> out) {
  Stream& stream = streams_[src];
  std::size_t done = 0;
  while (done < out.size()) {
    if (stream.bytes == 0) {
      // Nothing staged: fetch with the remaining window as the landing
      // demand, so payload goes straight from the hop driver into the
      // user memory (no pool -> user copy for those bytes).
      Demand demand{src, out.subspan(done), 0};
      fetch_packet(&demand);
      done += demand.filled;
      continue;
    }
    settle(stream);
    const auto piece = stream.packets.front().storage->pieces[
        stream.piece_index];
    const std::size_t chunk =
        std::min(piece.size() - stream.piece_offset, out.size() - done);
    // Staged bytes pay the one pool -> user copy.
    channel_->session().node(local_).charge_memcpy(chunk);
    std::memcpy(out.data() + done, piece.data() + stream.piece_offset,
                chunk);
    stream.piece_offset += chunk;
    stream.bytes -= chunk;
    done += chunk;
  }
  settle(stream);  // recycle a front packet this read fully drained
}

// ------------------------------------------------------- VirtualConnection ---

void VirtualConnection::append_meta(std::span<const std::byte> bytes) {
  // Consolidate into the trailing meta buffer when it is still the last
  // piece; re-point the span afterwards (the vector may reallocate).
  endpoint_->channel().session().node(endpoint_->local()).charge_memcpy(
      bytes.size());
  // Extend the trailing meta buffer only while the piece still covers the
  // whole buffer — a piece split by a packet flush must not be re-pointed
  // (its front part is already on the wire).
  if (!pieces_.empty() && pieces_.back().is_meta &&
      pieces_.back().data.data() == metas_.back().data() &&
      pieces_.back().data.size() == metas_.back().size()) {
    std::vector<std::byte>& meta = metas_.back();
    meta.insert(meta.end(), bytes.begin(), bytes.end());
    pieces_.back().data = std::span<const std::byte>(meta);
  } else {
    metas_.emplace_back(bytes.begin(), bytes.end());
    pieces_.push_back(
        Piece{std::span<const std::byte>(metas_.back()), true});
  }
  pending_bytes_ += bytes.size();
}

void VirtualConnection::append_piece(std::span<const std::byte> data) {
  pieces_.push_back(Piece{data, false});
  pending_bytes_ += data.size();
}

void VirtualConnection::pack(std::span<const std::byte> data,
                             mad::SendMode smode, mad::ReceiveMode rmode) {
  MAD2_CHECK(packing_, "pack outside begin_packing/end_packing");
  // The Generic TM self-describes every block (size + constraints) so
  // gateways and the receiver can handle the stream without application
  // knowledge (Section 6.1). Headers and small blocks are consolidated
  // into owned buffers; large blocks travel zero-copy from user memory
  // (read at packet flush — so send_LATER data may be read before
  // end_packing once the MTU fills).
  constexpr std::size_t kInlineMax = 512;
  std::byte header[VirtualChannel::kBlockHeaderBytes];
  store_u64(header, data.size());
  header[8] = static_cast<std::byte>(smode);
  header[9] = static_cast<std::byte>(rmode);
  append_meta(header);
  if (data.size() < kInlineMax) {
    append_meta(data);
  } else {
    append_piece(data);
  }
  while (pending_bytes_ >= endpoint_->channel().def().mtu) {
    flush_packet(/*last=*/false);
  }
}

void VirtualConnection::flush_packet(bool last) {
  const std::size_t mtu = endpoint_->channel().def().mtu;
  std::size_t take = std::min(pending_bytes_, mtu);

  // Gather pieces off the front of the queue, splitting the last one at
  // the packet boundary. The gather list reuses this connection's scratch
  // vector — after warm-up no allocation happens per packet.
  gather_scratch_.clear();
  std::size_t taken = 0;
  std::size_t metas_consumed = 0;  // freed only after the send reads them
  while (taken < take) {
    Piece& piece = pieces_.front();
    const std::size_t chunk = std::min(piece.data.size(), take - taken);
    gather_scratch_.push_back(piece.data.subspan(0, chunk));
    taken += chunk;
    if (chunk == piece.data.size()) {
      if (piece.is_meta) ++metas_consumed;
      pieces_.pop_front();
    } else {
      piece.data = piece.data.subspan(chunk);
      // A split meta piece keeps its backing buffer alive in metas_.
    }
  }
  pending_bytes_ -= taken;

  VirtualChannel::PacketHeader header{};
  header.src = endpoint_->local();
  header.dst = remote_;
  header.last = last ? 1 : 0;

  VirtualChannel& channel = endpoint_->channel();
  const std::size_t hop = channel.hop_of(endpoint_->local(), remote_);
  const std::uint32_t local = endpoint_->local();
  mad::ChannelEndpoint& ep =
      channel.session().channel(channel.def().hops[hop]).endpoint(local);

  // Trace-context propagation: hop 0 opens at flush entry, so pacing,
  // window admission and (resilient) mutex waits below all show up as
  // sender-side queue residency instead of being misattributed to the
  // wire.
  HopStamp trace;
  const bool tracing = channel.propagation_enabled();
  const sim::Time flush_enter =
      tracing ? channel.session().simulator().now() : 0;

  // Bandwidth control (paper future work): pace packet departures so the
  // inbound flow at the gateway stays below the configured rate.
  if (channel.def().sender_rate_mbs > 0.0 && taken > 0) {
    sim::Simulator& simulator = channel.session().simulator();
    if (simulator.now() < pace_next_send_) {
      simulator.advance(pace_next_send_ - simulator.now());
    }
    pace_next_send_ =
        simulator.now() +
        sim::transfer_time(taken, channel.def().sender_rate_mbs);
  }

  // End-to-end window: block until the flow has room in flight. The stamp
  // is taken after admission, so time spent waiting here is the sender's
  // own queueing, not network delay — the estimator only sees the path.
  // Admission happens BEFORE the send mutex below: a failover replay
  // needs that mutex to redeliver the lost packets that free the window,
  // so blocking on the window while holding it would deadlock.
  sim::Time stamp = 0;
  if (channel.congestion_enabled() && taken > 0) {
    VirtualChannel::FlowControl& flow = channel.flow_control(local, remote_);
    flow.window->before_send();
    stamp = channel.session().simulator().now();
  }

  if (!channel.resilient()) {
    const std::uint32_t to = channel.next_node(hop, local, remote_);
    if (tracing) {
      VirtualChannel::FlowControl& flow =
          channel.flow_control(local, remote_);
      trace.seq = flow.trace_seq++;
      const sim::Time t = channel.session().simulator().now();
      trace.push(local, flush_enter, t, t);
    }
    channel.send_packet(ep, to, header, gather_scratch_, sizes_scratch_,
                        stamp, 0, &trace);
  } else {
    // Resilient send: serialize with the repair fiber, then sequence and
    // retain the packet before it leaves, so a gateway death at any
    // point can replay it. Empty `last` markers are sequenced too —
    // losing one would wedge the receiver cursor forever.
    sim::Mutex& mutex = channel.send_mutex(local);
    mutex.lock();
    VirtualChannel::FlowControl& flow = channel.flow_control(local, remote_);
    for (;;) {
      channel.trim_unacked(flow);
      if (!flow.replay_pending &&
          flow.unacked.size() < channel.topology().replay_quota) {
        break;
      }
      // A failover is mid-replay for this flow, or the retain buffer is
      // full of unconfirmed packets: park until the repair fiber settles
      // / the receiver cursor advances, re-checking from scratch (the
      // kill may land exactly in this window).
      mutex.unlock();
      (flow.replay_pending ? channel.replay_settled_
                           : channel.retention_freed_)
          ->wait();
      mutex.lock();
    }
    const std::uint64_t seq = flow.next_seq++;
    if (tracing) {
      trace.seq = flow.trace_seq++;
      const sim::Time t = channel.session().simulator().now();
      trace.push(local, flush_enter, t, t);
    }
    VirtualChannel::RetainedPacket retained;
    retained.header = header;
    retained.seq = seq;
    retained.stamp = stamp;
    retained.trace = trace;
    retained.bytes.reserve(taken);
    for (const auto& piece : gather_scratch_) {
      retained.bytes.insert(retained.bytes.end(), piece.begin(),
                            piece.end());
    }
    channel.session().node(local).charge_memcpy(taken);
    flow.unacked.push_back(std::move(retained));
    // Route picked under the mutex, against the current healthy sets: a
    // kill that already happened re-routes this packet, a kill that
    // lands later replays it from the retain buffer.
    const std::uint32_t to = channel.next_node(hop, local, remote_);
    channel.send_packet(ep, to, header, gather_scratch_, sizes_scratch_,
                        stamp, seq, &trace);
    mutex.unlock();
  }
  // The packet is fully on the wire (end_packing committed every piece);
  // now the consumed meta buffers can go.
  for (std::size_t i = 0; i < metas_consumed; ++i) metas_.pop_front();
}

void VirtualConnection::end_packing() {
  MAD2_CHECK(packing_, "end_packing without begin_packing");
  flush_packet(/*last=*/true);
  MAD2_CHECK(pieces_.empty() && pending_bytes_ == 0,
             "unflushed virtual stream at end_packing");
  metas_.clear();
  packing_ = false;
}

void VirtualConnection::drop_view() {
  view_hold_.reset();  // view_scratch_ keeps its capacity for reuse
}

void VirtualConnection::read_block_header(std::size_t expected_len,
                                          mad::SendMode smode,
                                          mad::ReceiveMode rmode) {
  std::byte header[VirtualChannel::kBlockHeaderBytes];
  endpoint_->read_stream(remote_, header);
  const std::uint64_t len = load_u64(header);
  MAD2_CHECK(len == expected_len,
             "virtual unpack size does not match the self-described block");
  MAD2_CHECK(header[8] == static_cast<std::byte>(smode) &&
                 header[9] == static_cast<std::byte>(rmode),
             "virtual unpack modes do not match the self-described block");
}

void VirtualConnection::unpack(std::span<std::byte> out,
                               mad::SendMode smode, mad::ReceiveMode rmode) {
  MAD2_CHECK(unpacking_, "unpack outside begin_unpacking/end_unpacking");
  drop_view();
  read_block_header(out.size(), smode, rmode);
  // Staged bytes are copied out of the pooled buffers (charged inside
  // read_stream); the rest of the block lands directly from the hop
  // driver into `out` via the demand-directed fetch — no blanket
  // reassembly copy.
  endpoint_->read_stream(remote_, out);
}

std::span<const std::byte> VirtualConnection::unpack_view(
    std::size_t len, mad::SendMode smode, mad::ReceiveMode rmode) {
  MAD2_CHECK(unpacking_, "unpack outside begin_unpacking/end_unpacking");
  MAD2_CHECK(rmode == mad::receive_CHEAPER,
             "unpack_view is receive_CHEAPER-only (EXPRESS data must land "
             "in caller memory)");
  drop_view();
  read_block_header(len, smode, rmode);
  if (len == 0) return {};
  VirtualEndpoint::Stream& stream = endpoint_->streams_[remote_];
  while (stream.bytes == 0) endpoint_->fetch_packet(nullptr);
  endpoint_->settle(stream);
  const auto piece =
      stream.packets.front().storage->pieces[stream.piece_index];
  if (piece.size() - stream.piece_offset >= len) {
    // Contiguous inside the landed buffer: lend the memory out instead of
    // copying. Nothing is charged — this is the zero-copy receive_CHEAPER
    // path. If the view is the packet's tail, the storage moves to
    // view_hold_ so the memory survives until the next unpack.
    const auto view = piece.subspan(stream.piece_offset, len);
    stream.piece_offset += len;
    stream.bytes -= len;
    const auto& pieces = stream.packets.front().storage->pieces;
    std::size_t index = stream.piece_index;
    std::size_t pos = stream.piece_offset;
    while (index < pieces.size() && pos == pieces[index].size()) {
      ++index;
      pos = 0;
    }
    if (index == pieces.size()) {
      endpoint_->retire_front(stream, &view_hold_);
    }
    return view;
  }
  // The block straddles packets (or borrowed-slot chunks): stage it
  // through the scratch copy — still only one copy, pool -> scratch.
  view_scratch_.resize(len);
  endpoint_->read_stream(remote_, std::span<std::byte>(view_scratch_));
  return std::span<const std::byte>(view_scratch_);
}

void VirtualConnection::end_unpacking() {
  MAD2_CHECK(unpacking_, "end_unpacking without begin_unpacking");
  drop_view();
  unpacking_ = false;
  endpoint_->active_incoming_ = nullptr;
}

}  // namespace mad2::fwd
