#include "fwd/virtual_channel.hpp"

#include <algorithm>
#include <cstring>

#include "sim/sync.hpp"
#include "util/bytes.hpp"

namespace mad2::fwd {

namespace {

/// Indices of the hops containing `node`.
std::vector<std::size_t> hops_containing(
    const std::vector<mad::Channel*>& hops, std::uint32_t node) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& nodes = hops[i]->nodes();
    if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) {
      result.push_back(i);
    }
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------- VirtualChannel ---

VirtualChannel::VirtualChannel(mad::Session& session, VirtualChannelDef def)
    : session_(&session), def_(std::move(def)) {
  MAD2_CHECK(!def_.hops.empty(), "virtual channel needs at least one hop");
  MAD2_CHECK(def_.mtu > kBlockHeaderBytes, "MTU too small");
  for (const std::string& hop : def_.hops) {
    hop_channels_.push_back(&session_->channel(hop));
  }

  // Gateways: the unique common node of each consecutive hop pair.
  for (std::size_t i = 0; i + 1 < hop_channels_.size(); ++i) {
    const auto& a = hop_channels_[i]->nodes();
    const auto& b = hop_channels_[i + 1]->nodes();
    std::vector<std::uint32_t> common;
    for (std::uint32_t node : a) {
      if (std::find(b.begin(), b.end(), node) != b.end()) {
        common.push_back(node);
      }
    }
    MAD2_CHECK(common.size() == 1,
               "consecutive hops must share exactly one gateway node");
    gateways_.push_back(common.front());
  }

  for (const mad::Channel* hop : hop_channels_) {
    for (std::uint32_t node : hop->nodes()) {
      if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
        nodes_.push_back(node);
      }
    }
  }
  std::sort(nodes_.begin(), nodes_.end());

  for (std::uint32_t node : nodes_) {
    endpoints_.emplace(node, std::unique_ptr<VirtualEndpoint>(
                                 new VirtualEndpoint(this, node)));
  }

  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    spawn_gateway(gateways_[i], i, i + 1);
  }
}

VirtualChannel::~VirtualChannel() = default;

const Status& VirtualChannel::health() const { return session_->health(); }

VirtualEndpoint& VirtualChannel::endpoint(std::uint32_t node) {
  auto it = endpoints_.find(node);
  MAD2_CHECK(it != endpoints_.end(), "node not on this virtual channel");
  return *it->second;
}

std::size_t VirtualChannel::hop_of(std::uint32_t node,
                                   std::uint32_t dst) const {
  const auto node_hops = hops_containing(hop_channels_, node);
  const auto dst_hops = hops_containing(hop_channels_, dst);
  MAD2_CHECK(!node_hops.empty(), "node not on this virtual channel");
  MAD2_CHECK(!dst_hops.empty(), "destination not on this virtual channel");
  for (std::size_t h : node_hops) {
    if (std::find(dst_hops.begin(), dst_hops.end(), h) != dst_hops.end()) {
      return h;  // same hop: direct
    }
  }
  if (node_hops.back() < dst_hops.front()) return node_hops.back();
  return node_hops.front();
}

std::uint32_t VirtualChannel::next_node(std::size_t hop,
                                        std::uint32_t dst) const {
  const auto& nodes = hop_channels_[hop]->nodes();
  if (std::find(nodes.begin(), nodes.end(), dst) != nodes.end()) return dst;
  const auto dst_hops = hops_containing(hop_channels_, dst);
  MAD2_CHECK(!dst_hops.empty(), "destination not on this virtual channel");
  if (dst_hops.front() > hop) return gateways_[hop];  // forward
  MAD2_CHECK(hop > 0, "no route to destination");
  return gateways_[hop - 1];  // backward
}

std::size_t VirtualChannel::terminal_hop(std::uint32_t node) const {
  const auto node_hops = hops_containing(hop_channels_, node);
  MAD2_CHECK(!node_hops.empty(), "node not on this virtual channel");
  MAD2_CHECK(node_hops.size() == 1,
             "gateway nodes cannot be virtual-channel receivers");
  return node_hops.front();
}

void VirtualChannel::send_packet(
    mad::ChannelEndpoint& hop_endpoint, std::uint32_t to, PacketHeader header,
    const std::vector<std::span<const std::byte>>& pieces) {
  header.n_pieces = static_cast<std::uint32_t>(pieces.size());
  std::vector<std::uint32_t> sizes;
  sizes.reserve(pieces.size());
  std::uint32_t total = 0;
  for (const auto& piece : pieces) {
    sizes.push_back(static_cast<std::uint32_t>(piece.size()));
    total += static_cast<std::uint32_t>(piece.size());
  }
  header.payload_len = total;

  mad::Connection& conn = hop_endpoint.begin_packing(to);
  mad::mad_pack_value(conn, header, mad::send_CHEAPER, mad::receive_EXPRESS);
  if (!sizes.empty()) {
    conn.pack(std::as_bytes(std::span(sizes)), mad::send_CHEAPER,
              mad::receive_EXPRESS);
  }
  for (const auto& piece : pieces) {
    conn.pack(piece, mad::send_CHEAPER, mad::receive_CHEAPER);
  }
  conn.end_packing();
}

VirtualChannel::Packet VirtualChannel::receive_packet(
    mad::ChannelEndpoint& hop_endpoint) {
  mad::Connection& conn = hop_endpoint.begin_unpacking();
  Packet packet;
  mad::mad_unpack_value(conn, packet.header, mad::send_CHEAPER,
                        mad::receive_EXPRESS);
  std::vector<std::uint32_t> sizes(packet.header.n_pieces);
  if (!sizes.empty()) {
    conn.unpack(std::as_writable_bytes(std::span(sizes)), mad::send_CHEAPER,
                mad::receive_EXPRESS);
  }
  packet.payload.resize(packet.header.payload_len);
  std::size_t offset = 0;
  for (std::uint32_t size : sizes) {
    conn.unpack(std::span(packet.payload).subspan(offset, size),
                mad::send_CHEAPER, mad::receive_CHEAPER);
    offset += size;
  }
  MAD2_CHECK(offset == packet.header.payload_len,
             "piece sizes do not add up to the packet payload");
  conn.end_unpacking();
  return packet;
}

void VirtualChannel::spawn_gateway(std::uint32_t gateway, std::size_t hop_in,
                                   std::size_t hop_out) {
  // One pipeline per direction; each is the paper's Figure 9: a receiving
  // fiber and a sending fiber exchanging a bounded pool of packet buffers
  // (pipeline_depth == 2 -> dual buffering). pipeline_depth <= 1 degrades
  // to strict store-and-forward (one fiber receives, then sends) — the
  // no-overlap baseline the dual-buffering design improves on.
  auto spawn_direction = [this, gateway](std::size_t in, std::size_t out) {
    if (def_.pipeline_depth <= 1) {
      session_->simulator().spawn_daemon(
          def_.name + ".gw" + std::to_string(gateway) + "." +
              std::to_string(in) + "to" + std::to_string(out) + ".sf",
          [this, in, out, gateway] {
            mad::ChannelEndpoint& ep_in =
                hop_channels_[in]->endpoint(gateway);
            mad::ChannelEndpoint& ep_out =
                hop_channels_[out]->endpoint(gateway);
            for (;;) {
              Packet packet = receive_packet(ep_in);
              MAD2_CHECK(packet.header.dst != gateway,
                         "forwarding packet addressed to the gateway");
              const std::uint32_t to = next_node(out, packet.header.dst);
              send_packet(ep_out, to, packet.header,
                          {std::span<const std::byte>(packet.payload)});
            }
          });
      return;
    }
    gateway_queues_.push_back(std::make_unique<sim::BoundedChannel<Packet>>(
        &session_->simulator(), def_.pipeline_depth));
    sim::BoundedChannel<Packet>* queue = gateway_queues_.back().get();
    const std::string tag = def_.name + ".gw" + std::to_string(gateway) +
                            "." + std::to_string(in) + "to" +
                            std::to_string(out);
    session_->simulator().spawn_daemon(tag + ".rx", [this, in, gateway,
                                                     queue] {
      mad::ChannelEndpoint& ep = hop_channels_[in]->endpoint(gateway);
      for (;;) {
        Packet packet = receive_packet(ep);
        MAD2_CHECK(packet.header.dst != gateway,
                   "forwarding packet addressed to the gateway itself");
        queue->send(std::move(packet));
      }
    });
    session_->simulator().spawn_daemon(tag + ".tx", [this, out, gateway,
                                                     queue] {
      mad::ChannelEndpoint& ep = hop_channels_[out]->endpoint(gateway);
      for (;;) {
        auto packet = queue->receive();
        if (!packet.has_value()) return;
        const std::uint32_t to = next_node(out, packet->header.dst);
        // Forward the landed buffer as a single gather piece.
        send_packet(ep, to, packet->header,
                    {std::span<const std::byte>(packet->payload)});
      }
    });
  };
  spawn_direction(hop_in, hop_out);
  spawn_direction(hop_out, hop_in);
}

// --------------------------------------------------------- VirtualEndpoint ---

VirtualEndpoint::VirtualEndpoint(VirtualChannel* channel, std::uint32_t local)
    : channel_(channel), local_(local) {
  for (std::uint32_t node : channel_->nodes()) {
    if (node == local_) continue;
    connections_.emplace(node, std::unique_ptr<VirtualConnection>(
                                   new VirtualConnection(this, node)));
  }
}

VirtualConnection& VirtualEndpoint::begin_packing(std::uint32_t remote) {
  auto it = connections_.find(remote);
  MAD2_CHECK(it != connections_.end(), "unknown virtual destination");
  VirtualConnection& conn = *it->second;
  MAD2_CHECK(!conn.packing_, "virtual message already open");
  conn.packing_ = true;
  conn.pieces_.clear();
  conn.metas_.clear();
  conn.pending_bytes_ = 0;
  return conn;
}

std::uint32_t VirtualEndpoint::fetch_packet() {
  const std::size_t hop = channel_->terminal_hop(local_);
  mad::ChannelEndpoint& ep =
      channel_->session().channel(channel_->def().hops[hop]).endpoint(local_);
  VirtualChannel::Packet packet = channel_->receive_packet(ep);
  MAD2_CHECK(packet.header.dst == local_,
             "virtual packet delivered to the wrong node");
  auto& queue = reassembly_[packet.header.src];
  queue.insert(queue.end(), packet.payload.begin(), packet.payload.end());
  return packet.header.src;
}

VirtualConnection& VirtualEndpoint::begin_unpacking() {
  MAD2_CHECK(active_incoming_ == nullptr,
             "virtual incoming message already open");
  // Leftover packets of a *different* source fetched while draining the
  // previous message start the next one; otherwise fetch.
  std::uint32_t src = 0;
  bool found = false;
  for (auto& [candidate, queue] : reassembly_) {
    if (!queue.empty()) {
      src = candidate;
      found = true;
      break;
    }
  }
  if (!found) src = fetch_packet();
  VirtualConnection& conn = *connections_.at(src);
  MAD2_CHECK(!conn.unpacking_, "virtual connection already unpacking");
  conn.unpacking_ = true;
  active_incoming_ = &conn;
  return conn;
}

void VirtualEndpoint::read_stream(std::uint32_t src,
                                  std::span<std::byte> out) {
  auto& queue = reassembly_[src];
  while (queue.size() < out.size()) fetch_packet();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = queue.front();
    queue.pop_front();
  }
}

// ------------------------------------------------------- VirtualConnection ---

void VirtualConnection::append_meta(std::span<const std::byte> bytes) {
  // Consolidate into the trailing meta buffer when it is still the last
  // piece; re-point the span afterwards (the vector may reallocate).
  endpoint_->channel().session().node(endpoint_->local()).charge_memcpy(
      bytes.size());
  // Extend the trailing meta buffer only while the piece still covers the
  // whole buffer — a piece split by a packet flush must not be re-pointed
  // (its front part is already on the wire).
  if (!pieces_.empty() && pieces_.back().is_meta &&
      pieces_.back().data.data() == metas_.back().data() &&
      pieces_.back().data.size() == metas_.back().size()) {
    std::vector<std::byte>& meta = metas_.back();
    meta.insert(meta.end(), bytes.begin(), bytes.end());
    pieces_.back().data = std::span<const std::byte>(meta);
  } else {
    metas_.emplace_back(bytes.begin(), bytes.end());
    pieces_.push_back(
        Piece{std::span<const std::byte>(metas_.back()), true});
  }
  pending_bytes_ += bytes.size();
}

void VirtualConnection::append_piece(std::span<const std::byte> data) {
  pieces_.push_back(Piece{data, false});
  pending_bytes_ += data.size();
}

void VirtualConnection::pack(std::span<const std::byte> data,
                             mad::SendMode smode, mad::ReceiveMode rmode) {
  MAD2_CHECK(packing_, "pack outside begin_packing/end_packing");
  // The Generic TM self-describes every block (size + constraints) so
  // gateways and the receiver can handle the stream without application
  // knowledge (Section 6.1). Headers and small blocks are consolidated
  // into owned buffers; large blocks travel zero-copy from user memory
  // (read at packet flush — so send_LATER data may be read before
  // end_packing once the MTU fills).
  constexpr std::size_t kInlineMax = 512;
  std::byte header[VirtualChannel::kBlockHeaderBytes];
  store_u64(header, data.size());
  header[8] = static_cast<std::byte>(smode);
  header[9] = static_cast<std::byte>(rmode);
  append_meta(header);
  if (data.size() < kInlineMax) {
    append_meta(data);
  } else {
    append_piece(data);
  }
  while (pending_bytes_ >= endpoint_->channel().def().mtu) {
    flush_packet(/*last=*/false);
  }
}

void VirtualConnection::flush_packet(bool last) {
  const std::size_t mtu = endpoint_->channel().def().mtu;
  std::size_t take = std::min(pending_bytes_, mtu);

  // Gather pieces off the front of the queue, splitting the last one at
  // the packet boundary.
  std::vector<std::span<const std::byte>> gathered;
  std::size_t taken = 0;
  std::size_t metas_consumed = 0;  // freed only after the send reads them
  while (taken < take) {
    Piece& piece = pieces_.front();
    const std::size_t chunk = std::min(piece.data.size(), take - taken);
    gathered.push_back(piece.data.subspan(0, chunk));
    taken += chunk;
    if (chunk == piece.data.size()) {
      if (piece.is_meta) ++metas_consumed;
      pieces_.pop_front();
    } else {
      piece.data = piece.data.subspan(chunk);
      // A split meta piece keeps its backing buffer alive in metas_.
    }
  }
  pending_bytes_ -= taken;

  VirtualChannel::PacketHeader header{};
  header.src = endpoint_->local();
  header.dst = remote_;
  header.last = last ? 1 : 0;

  VirtualChannel& channel = endpoint_->channel();
  const std::size_t hop = channel.hop_of(endpoint_->local(), remote_);
  mad::ChannelEndpoint& ep =
      channel.session().channel(channel.def().hops[hop]).endpoint(
          endpoint_->local());
  const std::uint32_t to = channel.next_node(hop, remote_);

  // Bandwidth control (paper future work): pace packet departures so the
  // inbound flow at the gateway stays below the configured rate.
  if (channel.def().sender_rate_mbs > 0.0 && taken > 0) {
    sim::Simulator& simulator = channel.session().simulator();
    if (simulator.now() < pace_next_send_) {
      simulator.advance(pace_next_send_ - simulator.now());
    }
    pace_next_send_ =
        simulator.now() +
        sim::transfer_time(taken, channel.def().sender_rate_mbs);
  }

  channel.send_packet(ep, to, header, gathered);
  // The packet is fully on the wire (end_packing committed every piece);
  // now the consumed meta buffers can go.
  for (std::size_t i = 0; i < metas_consumed; ++i) metas_.pop_front();
}

void VirtualConnection::end_packing() {
  MAD2_CHECK(packing_, "end_packing without begin_packing");
  flush_packet(/*last=*/true);
  MAD2_CHECK(pieces_.empty() && pending_bytes_ == 0,
             "unflushed virtual stream at end_packing");
  metas_.clear();
  packing_ = false;
}

void VirtualConnection::unpack(std::span<std::byte> out,
                               mad::SendMode smode, mad::ReceiveMode rmode) {
  MAD2_CHECK(unpacking_, "unpack outside begin_unpacking/end_unpacking");
  std::byte header[VirtualChannel::kBlockHeaderBytes];
  endpoint_->read_stream(remote_, header);
  const std::uint64_t len = load_u64(header);
  MAD2_CHECK(len == out.size(),
             "virtual unpack size does not match the self-described block");
  MAD2_CHECK(header[8] == static_cast<std::byte>(smode) &&
                 header[9] == static_cast<std::byte>(rmode),
             "virtual unpack modes do not match the self-described block");
  endpoint_->channel().session().node(endpoint_->local()).charge_memcpy(
      out.size());
  endpoint_->read_stream(remote_, out);
}

void VirtualConnection::end_unpacking() {
  MAD2_CHECK(unpacking_, "end_unpacking without begin_unpacking");
  unpacking_ = false;
  endpoint_->active_incoming_ = nullptr;
}

}  // namespace mad2::fwd
