// Inter-device data forwarding for clusters of clusters (paper Section 6).
//
// A *virtual channel* spans a sequence of real Madeleine channels joined at
// gateway nodes (each consecutive pair of hop channels shares exactly one
// node). The application uses the same pack/unpack interface; the only
// difference is the channel definition (Section 6: "instead of a single
// channel ... one has to specify a virtual channel that includes a
// sequence of real channels").
//
// Mechanics, faithful to Section 6.1:
//  - all inter-cluster traffic goes through a *Generic TM*: messages are
//    fragmented into fixed-MTU packets and made self-describing — a packet
//    header carries (source, destination, payload size), and each packed
//    block is preceded by {size, send mode, receive mode} in the byte
//    stream, because gateways know nothing about message structure;
//  - gateway nodes run a two-fiber forwarding pipeline per direction with
//    a bounded buffer pool (dual buffering, Figure 9): one fiber receives
//    packet k+1 from the incoming network while the other transmits packet
//    k on the outgoing one;
//  - the hop channels must be dedicated to the virtual channel (the
//    gateway pump is their only receiver on gateway nodes).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mad/madeleine.hpp"
#include "sim/sync.hpp"

namespace mad2::fwd {

struct VirtualChannelDef {
  std::string name;
  /// Real channel names, in hop order. Consecutive hops must share exactly
  /// one (gateway) node.
  std::vector<std::string> hops;
  /// Fixed packet size used along the route (paper: chosen at compile time
  /// so no network needs to re-fragment; Section 6.2 sweeps 8-128 kB).
  std::size_t mtu = 16 * 1024;
  /// Gateway pipeline depth (2 = the paper's dual buffering; <= 1 degrades
  /// to strict store-and-forward).
  std::size_t pipeline_depth = 2;
  /// Bandwidth control (the paper's stated future work: "some
  /// sophisticated bandwidth control mechanism is needed to regulate the
  /// incoming communication flow on gateways"). When positive, each
  /// sender paces its packet flushes to this rate (decimal MB/s) with a
  /// token bucket, so inbound traffic cannot thrash the gateway's PCI bus.
  /// 0 disables pacing.
  double sender_rate_mbs = 0.0;
};

class VirtualChannel;
class VirtualEndpoint;

/// Point-to-point virtual connection. Mirrors mad::Connection's interface.
class VirtualConnection {
 public:
  void pack(std::span<const std::byte> data,
            mad::SendMode smode = mad::send_CHEAPER,
            mad::ReceiveMode rmode = mad::receive_CHEAPER);
  void end_packing();

  void unpack(std::span<std::byte> out,
              mad::SendMode smode = mad::send_CHEAPER,
              mad::ReceiveMode rmode = mad::receive_CHEAPER);
  void end_unpacking();

  [[nodiscard]] std::uint32_t remote() const { return remote_; }

 private:
  friend class VirtualEndpoint;
  VirtualConnection(VirtualEndpoint* endpoint, std::uint32_t remote)
      : endpoint_(endpoint), remote_(remote) {}

  void flush_packet(bool last);
  void append_meta(std::span<const std::byte> bytes);
  void append_piece(std::span<const std::byte> data);

  VirtualEndpoint* endpoint_;
  std::uint32_t remote_;
  // --- send state ---
  // The outgoing logical stream is a gather list: block self-description
  // headers and small blocks are consolidated into owned `meta` buffers;
  // large blocks are referenced directly from user memory (zero-copy, read
  // at packet flush). Packets take `mtu` bytes off the front.
  bool packing_ = false;
  std::deque<std::vector<std::byte>> metas_;
  struct Piece {
    std::span<const std::byte> data;
    bool is_meta;  // points into metas_ (stable addresses)
  };
  std::deque<Piece> pieces_;
  std::size_t pending_bytes_ = 0;
  // Token-bucket state for sender-side bandwidth control.
  sim::Time pace_next_send_ = 0;
  // --- receive state ---
  bool unpacking_ = false;

  friend class VirtualChannel;
};

/// Per-node view of a virtual channel.
class VirtualEndpoint {
 public:
  VirtualConnection& begin_packing(std::uint32_t remote);
  VirtualConnection& begin_unpacking();

  [[nodiscard]] std::uint32_t local() const { return local_; }
  [[nodiscard]] VirtualChannel& channel() { return *channel_; }

 private:
  friend class VirtualChannel;
  friend class VirtualConnection;
  VirtualEndpoint(VirtualChannel* channel, std::uint32_t local);

  /// Receive one packet from the terminal hop and file its payload into
  /// the per-source reassembly queue. Returns that source.
  std::uint32_t fetch_packet();

  /// Pop `out.size()` bytes for `src`, fetching packets as needed.
  void read_stream(std::uint32_t src, std::span<std::byte> out);

  VirtualChannel* channel_;
  std::uint32_t local_;
  std::map<std::uint32_t, std::unique_ptr<VirtualConnection>> connections_;
  std::map<std::uint32_t, std::deque<std::byte>> reassembly_;
  VirtualConnection* active_incoming_ = nullptr;
};

class VirtualChannel {
 public:
  /// Build the virtual channel over an existing session and spawn the
  /// gateway forwarding pipelines. The hop channels must not be used for
  /// anything else on the gateway nodes.
  VirtualChannel(mad::Session& session, VirtualChannelDef def);
  ~VirtualChannel();

  [[nodiscard]] const VirtualChannelDef& def() const { return def_; }
  [[nodiscard]] mad::Session& session() { return *session_; }
  [[nodiscard]] VirtualEndpoint& endpoint(std::uint32_t node);

  /// The nodes reachable through this virtual channel (union of hops).
  [[nodiscard]] const std::vector<std::uint32_t>& nodes() const {
    return nodes_;
  }

  /// OK while every hop's links are healthy; the session's first recorded
  /// failure otherwise. A failed hop stops the gateway pumps, so senders
  /// and receivers should consult this after run() returns early.
  [[nodiscard]] const Status& health() const;

  // --- internals shared with endpoints/gateway pumps ---------------------
  struct PacketHeader {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t payload_len;
    std::uint32_t last;      // last packet of the message
    std::uint32_t n_pieces;  // gather-list entries in this packet
  };
  struct Packet {
    PacketHeader header;
    std::vector<std::byte> payload;
  };
  /// Per-block self-description prepended to each packed block.
  struct BlockHeader {
    std::uint64_t len;
    std::uint8_t smode;
    std::uint8_t rmode;
  };
  static constexpr std::size_t kBlockHeaderBytes = 10;

  /// Index of the hop channel `node` uses to make progress toward `dst`
  /// (the first hop containing `node` that is not already past `dst`).
  [[nodiscard]] std::size_t hop_of(std::uint32_t node,
                                   std::uint32_t dst) const;
  /// Next node on hop `hop` toward `dst`: `dst` itself if it is on the
  /// hop, else the gateway to the following hop.
  [[nodiscard]] std::uint32_t next_node(std::size_t hop,
                                        std::uint32_t dst) const;
  /// The hop channel on which `node` receives virtual-channel traffic.
  [[nodiscard]] std::size_t terminal_hop(std::uint32_t node) const;

  /// Ship one packet: header + piece-size list (EXPRESS), then the pieces
  /// (CHEAPER — ridden zero-copy by the underlying TMs where possible).
  void send_packet(mad::ChannelEndpoint& hop_endpoint, std::uint32_t to,
                   PacketHeader header,
                   const std::vector<std::span<const std::byte>>& pieces);
  /// Receive one packet, reassembling the pieces into a contiguous
  /// payload buffer.
  Packet receive_packet(mad::ChannelEndpoint& hop_endpoint);

 private:
  void spawn_gateway(std::uint32_t gateway, std::size_t hop_in,
                     std::size_t hop_out);

  mad::Session* session_;
  VirtualChannelDef def_;
  std::vector<mad::Channel*> hop_channels_;
  std::vector<std::uint32_t> gateways_;  // gateways_[i] joins hop i, i+1
  std::vector<std::uint32_t> nodes_;
  std::map<std::uint32_t, std::unique_ptr<VirtualEndpoint>> endpoints_;
  std::vector<std::unique_ptr<sim::BoundedChannel<Packet>>> gateway_queues_;
};

}  // namespace mad2::fwd
