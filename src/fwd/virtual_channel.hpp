// Inter-device data forwarding for clusters of clusters (paper Section 6).
//
// A *virtual channel* spans a sequence of real Madeleine channels joined at
// gateway nodes (each consecutive pair of hop channels shares at least one
// node — the *boundary*'s gateway set). The application uses the same
// pack/unpack interface; the only difference is the channel definition
// (Section 6: "instead of a single channel ... one has to specify a
// virtual channel that includes a sequence of real channels").
//
// Beyond the paper: with the `topology` stanza (mad::TopologyConfig) the
// channel runs in *resilient* mode — boundaries may hold several
// gateways, flows spread across the healthy ones by a deterministic
// hash, and a gateway death at runtime re-routes in-flight traffic with
// zero lost and zero duplicated bytes (per-flow sequence numbers, a
// bounded sender retain buffer replayed over a surviving gateway, and a
// receiver-side out-of-order stash). docs/ROUTING.md has the protocol.
//
// Mechanics, faithful to Section 6.1:
//  - all inter-cluster traffic goes through a *Generic TM*: messages are
//    fragmented into fixed-MTU packets and made self-describing — a packet
//    header carries (source, destination, payload size), and each packed
//    block is preceded by {size, send mode, receive mode} in the byte
//    stream, because gateways know nothing about message structure;
//  - gateway nodes run a two-fiber forwarding pipeline per direction with
//    a bounded buffer pool (dual buffering, Figure 9): one fiber receives
//    packet k+1 from the incoming network while the other transmits packet
//    k on the outgoing one;
//  - the hop channels must be dedicated to the virtual channel (the
//    gateway pump is their only receiver on gateway nodes).
//
// Data-path design (docs/FORWARDING.md has the full walk-through):
//  - every packet lands in a buffer recycled through the channel's
//    PacketPool, and carries its gather-list piece boundaries, so gateways
//    re-emit the original scatter/gather list without consolidating;
//  - where a hop TM uses static buffers, the gateway *borrows* the driver
//    slot (paper Section 6.1) instead of staging the bytes through a copy;
//  - receiving endpoints land payload pieces directly into the user
//    memory demanded by the current unpack whenever the stream cursor
//    allows it, and keep the rest staged in the pooled buffer until the
//    application drains it (one pool -> user copy, or none for a
//    receive_CHEAPER view via unpack_view).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fwd/packet_pool.hpp"
#include "mad/congestion.hpp"
#include "mad/madeleine.hpp"
#include "sim/sync.hpp"

namespace mad2::fwd {

class FairPacketQueue;

struct VirtualChannelDef {
  std::string name;
  /// Real channel names, in hop order. Consecutive hops must share at
  /// least one (gateway) node; several shared nodes form a redundant
  /// gateway set (requires the topology stanza to be exploited — without
  /// it only the first common node forwards).
  std::vector<std::string> hops;
  /// Fixed packet size used along the route (paper: chosen at compile time
  /// so no network needs to re-fragment; Section 6.2 sweeps 8-128 kB).
  std::size_t mtu = 16 * 1024;
  /// Gateway pipeline depth (2 = the paper's dual buffering; <= 1 degrades
  /// to strict store-and-forward).
  std::size_t pipeline_depth = 2;
  /// Bandwidth control (the paper's stated future work: "some
  /// sophisticated bandwidth control mechanism is needed to regulate the
  /// incoming communication flow on gateways"). When positive, each
  /// sender paces its packet flushes to this rate (decimal MB/s) with a
  /// token bucket, so inbound traffic cannot thrash the gateway's PCI bus.
  /// 0 disables pacing.
  double sender_rate_mbs = 0.0;
  /// End-to-end congestion control override for this virtual channel
  /// (per-flow windows + fair gateway queues, see mad/congestion.hpp).
  /// Unset falls back to the session's `congestion` stanza; neither set
  /// leaves the data path exactly as before (no stamp on the wire, FIFO
  /// gateway queues, no windowing).
  std::optional<mad::CongestionConfig> congestion;
  /// Resilient multi-gateway routing override for this virtual channel
  /// (see mad/hostdb.hpp). Unset falls back to the session's `topology`
  /// stanza; neither set keeps single-gateway routing and the wire
  /// format bit-identical to earlier releases.
  std::optional<mad::TopologyConfig> topology;
  /// Trace-context propagation override (distributed madtrace). Unset
  /// falls back to the `propagation` flag of the session's trace stanza;
  /// neither set keeps the wire bit-identical to an untraced session.
  std::optional<bool> propagation;
};

/// Per-packet trace context for distributed madtrace: the identity of the
/// flow plus enqueue/dequeue/wire timestamps for every hop the packet has
/// crossed so far. Travels as one extra EXPRESS block (after the
/// congestion stamp and the resilient seq) ONLY when trace-context
/// propagation is on — same bit-identical-wire rule as those blocks.
/// Senders stamp hop 0, every gateway pump appends its hop, and the
/// delivering endpoint appends the final hop and replays the whole
/// journey into the trace ring (see obs/span_weaver.hpp for how the ring
/// events weave back into cross-node spans).
struct HopStamp {
  /// Longest traceable route: sender + 4 gateways + receiver. Longer
  /// routes truncate (push becomes a no-op) rather than corrupt.
  static constexpr std::uint32_t kMaxHops = 6;
  struct Hop {
    std::uint32_t node = 0;
    sim::Time enqueue = 0;  ///< entered this hop's send/forward queue
    sim::Time dequeue = 0;  ///< left the queue (admitted / scheduled)
    sim::Time wire = 0;     ///< handed to the outgoing wire
  };
  /// Per-flow packet counter (trace identity, NOT the resilient protocol
  /// seq — replays reuse the original trace seq so a replayed packet
  /// weaves into the same span).
  std::uint64_t seq = 0;
  std::uint32_t hop_count = 0;
  Hop hops[kMaxHops] = {};

  void push(std::uint32_t node, sim::Time enqueue, sim::Time dequeue,
            sim::Time wire) {
    if (hop_count >= kMaxHops) return;
    hops[hop_count++] = Hop{node, enqueue, dequeue, wire};
  }
};

class VirtualChannel;
class VirtualEndpoint;

/// Point-to-point virtual connection. Mirrors mad::Connection's interface.
class VirtualConnection {
 public:
  void pack(std::span<const std::byte> data,
            mad::SendMode smode = mad::send_CHEAPER,
            mad::ReceiveMode rmode = mad::receive_CHEAPER);
  void end_packing();

  void unpack(std::span<std::byte> out,
              mad::SendMode smode = mad::send_CHEAPER,
              mad::ReceiveMode rmode = mad::receive_CHEAPER);
  void end_unpacking();

  /// Zero-copy variant of unpack for receive_CHEAPER blocks: returns a
  /// read-only view of the next `len` stream bytes, borrowed from the
  /// landed packet buffer when the block is contiguous inside it (no copy,
  /// nothing charged), or staged through an internal scratch copy
  /// otherwise. The view is valid until the next unpack / unpack_view /
  /// end_unpacking on this connection.
  std::span<const std::byte> unpack_view(
      std::size_t len, mad::SendMode smode = mad::send_CHEAPER,
      mad::ReceiveMode rmode = mad::receive_CHEAPER);

  [[nodiscard]] std::uint32_t remote() const { return remote_; }

 private:
  friend class VirtualEndpoint;
  VirtualConnection(VirtualEndpoint* endpoint, std::uint32_t remote)
      : endpoint_(endpoint), remote_(remote) {}

  void flush_packet(bool last);
  void append_meta(std::span<const std::byte> bytes);
  void append_piece(std::span<const std::byte> data);
  void read_block_header(std::size_t expected_len, mad::SendMode smode,
                         mad::ReceiveMode rmode);
  void drop_view();

  VirtualEndpoint* endpoint_;
  std::uint32_t remote_;
  // --- send state ---
  // The outgoing logical stream is a gather list: block self-description
  // headers and small blocks are consolidated into owned `meta` buffers;
  // large blocks are referenced directly from user memory (zero-copy, read
  // at packet flush). Packets take `mtu` bytes off the front.
  bool packing_ = false;
  std::deque<std::vector<std::byte>> metas_;
  struct Piece {
    std::span<const std::byte> data;
    bool is_meta;  // points into metas_ (stable addresses)
  };
  std::deque<Piece> pieces_;
  std::size_t pending_bytes_ = 0;
  // Reused per-flush scratch (steady-state: no allocation per packet).
  std::vector<std::span<const std::byte>> gather_scratch_;
  std::vector<std::uint32_t> sizes_scratch_;
  // Token-bucket state for sender-side bandwidth control.
  sim::Time pace_next_send_ = 0;
  // --- receive state ---
  bool unpacking_ = false;
  // Backing for the current unpack_view: a fully consumed packet whose
  // memory is still lent out, or the scratch copy for non-contiguous
  // blocks. Released at the next unpack / end_unpacking.
  PooledBuffer view_hold_;
  std::vector<std::byte> view_scratch_;

  friend class VirtualChannel;
};

/// A packet in flight through the forwarding layer: self-describing
/// header plus a pooled buffer carrying the payload and its gather-list
/// piece boundaries (spans into the pooled bytes or into borrowed driver
/// slots kept alive by the buffer's holds).
struct Packet {
  struct PacketHeader {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t payload_len;
    std::uint32_t last;      // last packet of the message
    std::uint32_t n_pieces;  // gather-list entries in this packet
  } header;
  /// Send timestamp for the end-to-end delay feedback. Travels as a
  /// separate EXPRESS block after the header — and ONLY when congestion
  /// control is enabled, so the wire byte stream of existing sessions is
  /// bit-identical. Gateways forward it unchanged.
  sim::Time stamp = 0;
  /// Per-flow sequence number for resilient routing. Travels as its own
  /// EXPRESS block (after the stamp, when both features are on) ONLY in
  /// resilient mode — same bit-identical-wire rule as the stamp.
  /// Gateways forward it unchanged; the receiving endpoint uses it to
  /// drop replay duplicates and re-order around a failover.
  std::uint64_t seq = 0;
  /// Hop-by-hop trace context; on the wire ONLY with trace-context
  /// propagation enabled (an EXPRESS block after the seq). Unlike the
  /// stamp/seq, gateways MUTATE it in flight — each pump appends its own
  /// hop before re-sending.
  HopStamp trace;
  PooledBuffer storage;
};

/// Demand-directed landing window for receive_packet: pieces of a packet
/// from `src` are unpacked straight into `window` (in stream order, while
/// they fit) instead of being staged in the pooled buffer. `filled` is the
/// prefix of `window` that received data this way.
struct Demand {
  std::uint32_t src;
  std::span<std::byte> window;
  std::size_t filled = 0;
};

/// Per-node view of a virtual channel.
class VirtualEndpoint {
 public:
  VirtualConnection& begin_packing(std::uint32_t remote);
  VirtualConnection& begin_unpacking();

  [[nodiscard]] std::uint32_t local() const { return local_; }
  [[nodiscard]] VirtualChannel& channel() { return *channel_; }

 private:
  friend class VirtualChannel;
  friend class VirtualConnection;
  VirtualEndpoint(VirtualChannel* channel, std::uint32_t local);

  /// The incoming byte stream of one source: landed packets in arrival
  /// order plus a cursor over the staged pieces of the front packet.
  /// `bytes` counts staged-and-unconsumed bytes; fully drained packets go
  /// back to the pool.
  struct Stream {
    std::deque<Packet> packets;
    std::size_t piece_index = 0;   // into the front packet's pieces
    std::size_t piece_offset = 0;  // into that piece
    std::size_t bytes = 0;
  };

  /// Receive one packet from the terminal hop. Pieces may land directly
  /// into `demand`'s window (see VirtualChannel::Demand); whatever stays
  /// staged is filed into the per-source stream. Returns the source.
  std::uint32_t fetch_packet(Demand* demand);

  /// Land one in-sequence packet: window/cursor bookkeeping, then file
  /// whatever stayed staged into the per-source stream (recycling the
  /// buffer immediately when nothing did).
  void deliver_packet(Packet packet);

  /// Pop `out.size()` bytes for `src`, fetching packets as needed.
  /// Staged bytes are copied out (charged); bytes landed directly by a
  /// demand-directed fetch cost nothing here.
  void read_stream(std::uint32_t src, std::span<std::byte> out);

  /// Drop the front packet of `stream`, resetting the cursor; `retain`
  /// receives the packet's storage instead of the pool when the caller
  /// still needs the memory (unpack_view).
  void retire_front(Stream& stream, PooledBuffer* retain);

  /// Normalize the cursor: skip exhausted pieces and recycle fully
  /// consumed front packets, so the cursor points at unread data whenever
  /// the stream has any.
  void settle(Stream& stream);

  VirtualChannel* channel_;
  std::uint32_t local_;
  std::map<std::uint32_t, std::unique_ptr<VirtualConnection>> connections_;
  std::map<std::uint32_t, Stream> streams_;
  mad::ChannelEndpoint* terminal_ep_ = nullptr;  // cached on first fetch
  VirtualConnection* active_incoming_ = nullptr;
};

class VirtualChannel {
 public:
  using PacketHeader = Packet::PacketHeader;

  /// Build the virtual channel over an existing session and spawn the
  /// gateway forwarding pipelines. The hop channels must not be used for
  /// anything else on the gateway nodes.
  VirtualChannel(mad::Session& session, VirtualChannelDef def);
  ~VirtualChannel();

  [[nodiscard]] const VirtualChannelDef& def() const { return def_; }
  [[nodiscard]] mad::Session& session() { return *session_; }
  [[nodiscard]] VirtualEndpoint& endpoint(std::uint32_t node);

  /// The nodes reachable through this virtual channel (union of hops).
  [[nodiscard]] const std::vector<std::uint32_t>& nodes() const {
    return nodes_;
  }

  /// OK while every hop's links are healthy; the session's first recorded
  /// failure otherwise. A failed hop stops the gateway pumps, so senders
  /// and receivers should consult this after run() returns early.
  [[nodiscard]] const Status& health() const;

  /// The channel's packet-buffer pool (introspection for tests/benches).
  [[nodiscard]] const PacketPool& pool() const { return pool_; }

  /// Resolved congestion config: the def's override, else the session's
  /// `congestion` stanza, else disabled.
  [[nodiscard]] const mad::CongestionConfig& congestion() const {
    return congestion_;
  }
  [[nodiscard]] bool congestion_enabled() const {
    return congestion_.enabled;
  }

  /// Resolved topology config: the def's override, else the session's
  /// `topology` stanza, else disabled (single-gateway routing).
  [[nodiscard]] const mad::TopologyConfig& topology() const {
    return topology_;
  }
  /// Resilient mode: gateway sets per boundary, per-flow sequencing, and
  /// runtime failover are all active.
  [[nodiscard]] bool resilient() const { return topology_.enabled; }

  /// Resolved trace-context propagation: the def's override, else the
  /// session trace stanza's `propagation` flag, else off. When on, every
  /// packet carries a HopStamp and deliveries replay per-hop events into
  /// the trace ring; when off the wire is bit-identical to an untraced
  /// session.
  [[nodiscard]] bool propagation_enabled() const { return propagation_; }

  /// Declare gateway `node` dead right now (resilient mode only): mark it
  /// in the host directory (epoch bump), shrink every boundary's healthy
  /// set, drain its pump queues back to the pool, and replay unconfirmed
  /// packets of the flows routed through it over surviving gateways.
  /// Idempotent on an already-dead gateway. Every boundary holding the
  /// gateway must keep at least one healthy sibling.
  void kill_gateway(std::uint32_t node);

  /// Arm a one-shot kill_gateway(`node`) after the channel's gateways
  /// have received `after_packets` more packets (tests/bench: kill
  /// mid-transfer at a deterministic point in the packet stream).
  void arm_gateway_kill(std::uint32_t node, std::uint64_t after_packets);

  /// Failover bookkeeping (resilient mode; all zero otherwise).
  struct RoutingCounters {
    std::uint64_t gateway_kills = 0;
    std::uint64_t replayed_packets = 0;
    std::uint64_t replayed_bytes = 0;
    std::uint64_t dup_drops = 0;   // replay duplicates dropped at receivers
    std::uint64_t stashed = 0;     // packets parked in out-of-order stashes
    std::uint64_t discarded = 0;   // packets black-holed at dead gateways
  };
  [[nodiscard]] const RoutingCounters& routing_counters() const {
    return counters_;
  }
  /// Packets forwarded by `gateway`'s pumps (spread/evidence for tests).
  [[nodiscard]] std::uint64_t gateway_forwarded(std::uint32_t gateway) const;

  /// Boundary introspection: gateway sets joining consecutive hops.
  [[nodiscard]] std::size_t boundary_count() const {
    return boundaries_.size();
  }
  [[nodiscard]] const std::vector<std::uint32_t>& boundary_gateways(
      std::size_t boundary) const {
    return boundaries_[boundary].gateways;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& healthy_gateways(
      std::size_t boundary) const {
    return boundaries_[boundary].healthy;
  }

  /// Weighted-fair share for flow src -> dst at every gateway fair queue
  /// of this channel: backlogged flows split each forwarding hop in
  /// weight proportion (default 1). Requires the congestion stanza — the
  /// FIFO pipeline has no per-flow schedule to weight.
  void set_flow_weight(std::uint32_t src, std::uint32_t dst, double weight);

  /// Per-flow traffic/control snapshot: TrafficStats with `flows` filled
  /// (delivered packets/bytes, window + smoothed delay, gateway-queue
  /// depth high-water marks). Empty unless congestion control is on.
  [[nodiscard]] mad::TrafficStats stats() const;
  /// Pour cwnd / srtt / queue-depth gauges into `registry` (per-flow e2e
  /// delay histograms accumulate in the ambient registry as packets
  /// deliver; this adds the control-state scalars next to them).
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// The send window of flow src -> dst; nullptr while congestion is off
  /// or the flow never sent. Test/bench introspection.
  [[nodiscard]] const mad::CongestionWindow* flow_window(
      std::uint32_t src, std::uint32_t dst) const;
  /// Current depth of every gateway pump queue (drain evidence for
  /// tests): the fair queues under congestion control, the pipeline
  /// queues otherwise. Empty only in store-and-forward mode
  /// (pipeline_depth <= 1), which holds no queue at all.
  [[nodiscard]] std::vector<std::size_t> gateway_queue_depths() const;

  // --- internals shared with endpoints/gateway pumps ---------------------
  /// Per-block self-description prepended to each packed block.
  struct BlockHeader {
    std::uint64_t len;
    std::uint8_t smode;
    std::uint8_t rmode;
  };
  static constexpr std::size_t kBlockHeaderBytes = 10;

  /// Index of the hop channel `node` uses to make progress toward `dst`
  /// (the first hop containing `node` that is not already past `dst`).
  /// Precomputed into a flat dense table at construction (O(1) at
  /// 1024-node fan-out) — no per-packet work.
  [[nodiscard]] std::size_t hop_of(std::uint32_t node,
                                   std::uint32_t dst) const;
  /// Next node on hop `hop` for flow src -> dst: `dst` itself if it is on
  /// the hop, else a gateway of the boundary toward `dst` — the flow's
  /// deterministic hash pick among the boundary's *currently healthy*
  /// gateways, so an epoch bump re-routes the very next packet.
  [[nodiscard]] std::uint32_t next_node(std::size_t hop, std::uint32_t src,
                                        std::uint32_t dst) const;
  /// The hop channel on which `node` receives virtual-channel traffic.
  [[nodiscard]] std::size_t terminal_hop(std::uint32_t node) const;

  /// Ship one packet: header + piece-size list (EXPRESS), then the pieces
  /// (CHEAPER — ridden zero-copy by the underlying TMs where possible).
  /// `sizes_scratch` is caller-owned reusable scratch for the size list.
  /// With congestion control on, `stamp` (the flow's send time) rides as
  /// an extra EXPRESS block right after the header; in resilient mode
  /// `seq` rides likewise.
  /// With trace-context propagation on, `trace` (the hop stamps gathered
  /// so far) rides as one more EXPRESS block; null packs an empty stamp
  /// so the wire shape stays uniform within a propagation-enabled run.
  void send_packet(mad::ChannelEndpoint& hop_endpoint, std::uint32_t to,
                   PacketHeader header,
                   std::span<const std::span<const std::byte>> pieces,
                   std::vector<std::uint32_t>& sizes_scratch,
                   sim::Time stamp = 0, std::uint64_t seq = 0,
                   const HopStamp* trace = nullptr);
  /// Receive one packet into a pooled buffer. Pieces land, in order:
  /// directly in `demand`'s window (when given, the source matches, and
  /// the piece fits — endpoints only), as borrowed driver slots (static-
  /// buffer hop TMs), or staged into the pooled bytes. The returned
  /// packet's pieces cover exactly the staged/borrowed (non-demand) data.
  /// `at_destination` (resilient endpoints only) disables demand landing
  /// for out-of-sequence packets — they are stashed whole, so stream
  /// order is restored before any byte reaches user memory.
  Packet receive_packet(mad::ChannelEndpoint& hop_endpoint,
                        Demand* demand = nullptr,
                        bool at_destination = false);

 private:
  friend class VirtualEndpoint;
  friend class VirtualConnection;
  void spawn_gateway(std::uint32_t gateway, std::size_t hop_in,
                     std::size_t hop_out);

  /// One retained (sent but unconfirmed) packet of a resilient flow: the
  /// payload flattened to owned bytes (piece granularity is free to
  /// change — the block framing is inline in the byte stream), replayed
  /// as a single piece over a surviving gateway on failover.
  struct RetainedPacket {
    PacketHeader header;
    std::uint64_t seq = 0;
    sim::Time stamp = 0;
    /// Sender-hop trace context, kept so a failover replay re-ships the
    /// packet under its original trace identity (the replay then weaves
    /// into the same cross-node span as the lost original).
    HopStamp trace;
    std::vector<std::byte> bytes;
  };

  /// End-to-end control state of one flow (src, dst). The sending fiber
  /// blocks on the window in flush_packet; the receiving endpoint feeds
  /// delivery timestamps back through on_packet_delivered — fibers share
  /// the channel object, so the feedback edge is a call, not a wire
  /// message (the simulated analogue of ack-borne signaling). Resilient
  /// mode adds the failover protocol state: sender cursor + retain
  /// buffer, receiver cursor (doubling as the confirm watermark — only
  /// the sender/repair fiber trims `unacked` against it, so there is no
  /// cross-fiber deque mutation) and out-of-order stash.
  struct FlowControl {
    std::unique_ptr<mad::CongestionWindow> window;
    std::string hist_name;  // per-flow e2e histogram in the registry
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    // --- resilient-mode state ---
    std::uint64_t next_seq = 0;      // sender: next sequence to assign
    std::uint64_t expected_seq = 0;  // receiver cursor / confirm watermark
    bool replay_pending = false;     // failover marked; sender must wait
    std::deque<RetainedPacket> unacked;
    std::map<std::uint64_t, Packet> ooo;  // seq -> stashed future packet
    std::uint64_t replays = 0;
    std::uint64_t dup_drops = 0;
    // --- trace-context propagation state ---
    /// Sender-side trace identity counter (independent of the resilient
    /// protocol seq so propagation works without the topology stanza).
    std::uint64_t trace_seq = 0;
    /// Receiver-side cache of the per-hop attribution histograms
    /// ("<vc>.hop.<src>-<dst>.<k>.{queue,wire}"): registry pointers are
    /// stable, so after warm-up a delivery costs no string building.
    std::vector<std::pair<obs::Histogram*, obs::Histogram*>> hop_hists;
  };
  FlowControl& flow_control(std::uint32_t src, std::uint32_t dst);
  void on_packet_delivered(const Packet& packet);
  /// Delivery-side half of trace-context propagation: append the final
  /// hop to `packet.trace`, replay the whole journey into the trace ring
  /// as hop.queue / hop.wire events (explicit timestamps — nothing here
  /// charges virtual time), and feed the per-(src,dst,hop) attribution
  /// histograms. No-op with propagation off.
  void note_packet_trace(Packet& packet);

  /// Gateway set joining hops i and i+1. `healthy` shrinks on deaths;
  /// `gateways` is the construction-time inventory.
  struct Boundary {
    std::vector<std::uint32_t> gateways;
    std::vector<std::uint32_t> healthy;
  };

  /// One routing-table cell: how hop `hop` reaches a destination.
  struct NextHop {
    enum class Kind : std::uint8_t {
      kUnreachable,
      kDirect,    // dst is on the hop
      kForward,   // through boundary `boundary` (toward hop+1)
      kBackward,  // through boundary `boundary` (toward hop-1)
    };
    Kind kind = Kind::kUnreachable;
    std::uint32_t boundary = 0;
  };

  static constexpr std::uint32_t kNoIndex = 0xffffffffu;
  static constexpr std::uint16_t kNoHop = 0xffffu;

  [[nodiscard]] std::uint32_t dense_index(std::uint32_t node) const;
  [[nodiscard]] std::uint32_t pick_gateway(std::uint32_t boundary,
                                           std::uint32_t src,
                                           std::uint32_t dst) const;
  /// Walks the flow's current deterministic route; true if it crosses
  /// `gateway`. Used at kill time, before the healthy sets shrink, to
  /// find the flows that need replay.
  [[nodiscard]] bool route_uses_gateway(std::uint32_t src, std::uint32_t dst,
                                        std::uint32_t gateway) const;
  /// True if this channel can absorb `node`'s death: it is a healthy
  /// gateway here and every boundary holding it keeps a sibling.
  [[nodiscard]] bool can_absorb_gateway(std::uint32_t node) const;
  mad::FailureDomain on_network_failure(const mad::NetworkFailure& failure);
  sim::Mutex& send_mutex(std::uint32_t src);
  void trim_unacked(FlowControl& flow);
  void note_gateway_packet(std::uint32_t gateway);
  void drain_gateway_queues(std::uint32_t gateway);
  void replay_pending_flows();

  mad::Session* session_;
  VirtualChannelDef def_;
  mad::CongestionConfig congestion_;  // resolved (def > session > off)
  mad::TopologyConfig topology_;      // resolved (def > session > off)
  bool propagation_ = false;          // resolved (def > session > off)
  std::vector<mad::Channel*> hop_channels_;
  std::vector<Boundary> boundaries_;  // boundaries_[i] joins hop i, i+1
  std::vector<std::uint32_t> nodes_;
  // Flat directory-indexed routing tables, precomputed at construction:
  // global node id -> dense index, then dense n x n lookups. O(1) with no
  // tree walks at 256-1024-node fan-out.
  std::vector<std::uint32_t> node_index_;   // by global id; kNoIndex = off
  std::vector<std::uint16_t> hop_table_;    // [src_dense * n + dst_dense]
  std::vector<std::uint16_t> terminal_table_;  // [dense]; kNoHop = gateway
  std::vector<std::vector<NextHop>> next_table_;  // [hop][dst_dense]
  // Declared before every Packet holder below so recycling handles in
  // endpoints_/gateway_queues_/flows_ still find the pool during
  // destruction.
  PacketPool pool_;
  std::map<std::uint32_t, std::unique_ptr<VirtualEndpoint>> endpoints_;
  std::vector<std::unique_ptr<sim::BoundedChannel<Packet>>> gateway_queues_;
  // Congestion-control / failover state (empty/idle when both are off).
  std::map<std::pair<std::uint32_t, std::uint32_t>, FlowControl> flows_;
  std::vector<std::unique_ptr<FairPacketQueue>> fair_queues_;
  /// Every gateway pump direction, uniformly across the three modes:
  /// exactly one of pipe/fair is set (neither in store-and-forward).
  struct GatewayPump {
    std::uint32_t gateway;
    std::size_t hop_in;
    std::size_t hop_out;
    sim::BoundedChannel<Packet>* pipe = nullptr;
    FairPacketQueue* fair = nullptr;
  };
  std::vector<GatewayPump> pumps_;
  // --- resilient-mode machinery ---
  RoutingCounters counters_;
  std::map<std::uint32_t, std::uint64_t> forwarded_by_gateway_;
  /// Per-source send serialization: flush and replay of the same flow
  /// must not interleave, or a replayed seq could chase a newer one.
  std::map<std::uint32_t, std::unique_ptr<sim::Mutex>> send_mutexes_;
  std::unique_ptr<sim::WaitQueue> replay_settled_;   // replay_pending off
  std::unique_ptr<sim::WaitQueue> retention_freed_;  // unacked slot freed
  struct ArmedKill {
    std::uint32_t gateway;
    std::uint64_t after_packets;
  };
  std::optional<ArmedKill> armed_kill_;
  std::uint64_t gateway_rx_packets_ = 0;
  std::uint64_t failure_listener_id_ = 0;  // 0 = not registered
};

}  // namespace mad2::fwd
