#include "fwd/packet_pool.hpp"

#include "hw/node.hpp"

namespace mad2::fwd {

void PooledBuffer::reset() {
  if (buffer_ != nullptr) pool_->recycle(buffer_);
  pool_ = nullptr;
  buffer_ = nullptr;
}

PacketPool::PacketPool(std::size_t mtu) : mtu_(mtu) {}

std::unique_ptr<PacketBuffer> PacketPool::make_buffer() const {
  auto buffer = std::make_unique<PacketBuffer>();
  buffer->bytes.resize(mtu_);
  return buffer;
}

void PacketPool::prewarm(std::size_t count) {
  while (all_.size() < count) {
    all_.push_back(make_buffer());
    free_.push_back(all_.back().get());
  }
}

PooledBuffer PacketPool::acquire(hw::Node* node) {
  if (free_.empty()) {
    all_.push_back(make_buffer());
    free_.push_back(all_.back().get());
    if (node != nullptr) node->count_alloc();
  } else if (node != nullptr) {
    node->count_pool_recycle();
  }
  PacketBuffer* buffer = free_.back();
  free_.pop_back();
  return PooledBuffer(this, buffer);
}

void PacketPool::recycle(PacketBuffer* buffer) {
  // Dropping the borrows returns the driver slots to their TMs (in
  // arrival order — the deque discipline of the gateway queues keeps
  // releases FIFO, which the credit-window protocols expect).
  buffer->borrows.clear();
  buffer->pieces.clear();
  buffer->sizes.clear();
  free_.push_back(buffer);
}

}  // namespace mad2::fwd
