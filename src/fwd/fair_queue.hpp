// Weighted-fair gateway forwarding queue (deficit round robin).
//
// The pipelined gateway of a virtual channel exchanges packets between
// its rx and tx fibers through a bounded queue. The plain BoundedChannel
// is FIFO: under incast, one bulk sender's backlog occupies every slot
// and a latency-sensitive packet waits behind all of it (head-of-line
// blocking). FairPacketQueue keeps the same bounded blocking interface
// but dequeues in deficit-round-robin order across (src, dst) flows:
// each flow earns `quantum` bytes of deficit per round and is served
// while its deficit covers the head packet, so every backlogged flow
// gets an equal byte share of the outgoing hop and a short flow overtakes
// a long backlog within one round.
//
// Per-flow depth high-water marks are tracked so tests can assert queue
// boundedness without parsing trace dumps (TrafficStats::FlowCounters).
// Scheduling derives from std::map/deque order only — deterministic
// under madcheck schedule exploration.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "fwd/virtual_channel.hpp"
#include "sim/sync.hpp"

namespace mad2::fwd {

class FairPacketQueue {
 public:
  /// `capacity` bounds the total queued packets (backpressure to the rx
  /// fiber); `quantum` is the DRR deficit replenished per round, bytes.
  FairPacketQueue(sim::Simulator* simulator, std::size_t capacity,
                  std::size_t quantum);

  /// Blocks while the queue is at capacity.
  void send(Packet packet);
  /// Blocks while the queue is empty; nullopt after close() drained it.
  std::optional<Packet> receive();
  /// Non-blocking receive: the next DRR packet, or nullopt when empty.
  /// Used to drain a dead gateway's queue without parking a fiber on it.
  std::optional<Packet> try_receive();
  void close();

  /// Weighted-fair share: the flow's deficit replenishes by
  /// quantum*weight per round, so backlogged flows split the outgoing
  /// hop in weight proportion. Weight 1 is the default; must be
  /// positive.
  void set_weight(std::uint64_t flow, double weight);

  struct FlowStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t bytes = 0;       // payload bytes dequeued
    std::size_t depth = 0;         // packets currently queued
    std::size_t depth_hwm = 0;     // per-flow high-water mark
  };
  [[nodiscard]] const std::map<std::uint64_t, FlowStats>& flow_stats()
      const {
    return flows_stats_;
  }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::size_t depth_hwm() const { return depth_hwm_; }

  [[nodiscard]] static std::uint64_t flow_key(std::uint32_t src,
                                              std::uint32_t dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  [[nodiscard]] static std::uint32_t flow_src(std::uint64_t key) {
    return static_cast<std::uint32_t>(key >> 32);
  }
  [[nodiscard]] static std::uint32_t flow_dst(std::uint64_t key) {
    return static_cast<std::uint32_t>(key);
  }

 private:
  struct FlowQueue {
    std::deque<Packet> packets;
    std::size_t deficit = 0;
    double weight = 1.0;
  };

  [[nodiscard]] std::size_t scaled_quantum(double weight) const;

  std::size_t capacity_;
  std::size_t quantum_;
  bool closed_ = false;
  std::size_t depth_ = 0;
  std::size_t depth_hwm_ = 0;
  std::map<std::uint64_t, FlowQueue> flows_;
  std::map<std::uint64_t, FlowStats> flows_stats_;
  std::deque<std::uint64_t> active_;  // flows with queued packets
  sim::WaitQueue not_empty_;
  sim::WaitQueue not_full_;
};

}  // namespace mad2::fwd
