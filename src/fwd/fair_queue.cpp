#include "fwd/fair_queue.hpp"

#include <algorithm>

#include "util/debug_hook.hpp"

namespace mad2::fwd {

FairPacketQueue::FairPacketQueue(sim::Simulator* simulator,
                                 std::size_t capacity, std::size_t quantum)
    : capacity_(capacity),
      quantum_(quantum),
      not_empty_(simulator),
      not_full_(simulator) {
  MAD2_CHECK(capacity_ > 0, "fair queue capacity must be positive");
  MAD2_CHECK(quantum_ > 0, "fair queue quantum must be positive");
}

void FairPacketQueue::send(Packet packet) {
  while (depth_ >= capacity_ && !closed_) not_full_.wait();
  MAD2_CHECK(!closed_, "send on a closed fair queue");
  const std::uint64_t key = flow_key(packet.header.src, packet.header.dst);
  FlowQueue& flow = flows_[key];
  if (flow.packets.empty()) {
    // DRR+-style two-class reactivation. A weighted (> 1) flow waking
    // from idle joins the round at the head with a fresh quantum: the
    // latency-sensitive kind keeps no standing backlog, so it waits
    // behind at most the packet in service. Weight-1 flows must rejoin
    // at the tail with no credit — windowed bulk flows drain their lane
    // to empty between round trips, and expediting that churn would let
    // a herd of them leapfrog the head forever (observed as seconds of
    // starvation in the incast bench).
    if (flow.weight > 1.0) {
      active_.push_front(key);
      flow.deficit = scaled_quantum(flow.weight);
    } else {
      active_.push_back(key);
    }
  }
  flow.packets.push_back(std::move(packet));
  ++depth_;
  depth_hwm_ = std::max(depth_hwm_, depth_);
  FlowStats& stats = flows_stats_[key];
  ++stats.enqueued;
  stats.depth = flow.packets.size();
  stats.depth_hwm = std::max(stats.depth_hwm, stats.depth);
  not_empty_.notify_all();
}

std::optional<Packet> FairPacketQueue::receive() {
  while (depth_ == 0 && !closed_) not_empty_.wait();
  if (depth_ == 0) return std::nullopt;  // closed and drained
  for (;;) {
    MAD2_CHECK(!active_.empty(), "fair queue depth/schedule drift");
    const std::uint64_t key = active_.front();
    FlowQueue& flow = flows_.at(key);
    MAD2_CHECK(!flow.packets.empty(), "empty flow on the active list");
    // +1 so zero-payload packets still consume deficit (no free spins).
    const std::size_t cost = flow.packets.front().header.payload_len + 1;
    if (flow.deficit < cost) {
      flow.deficit += scaled_quantum(flow.weight);
      active_.pop_front();
      active_.push_back(key);
      continue;
    }
    flow.deficit -= cost;
    Packet packet = std::move(flow.packets.front());
    flow.packets.pop_front();
    --depth_;
    if (flow.packets.empty()) {
      // An idle flow must not bank deficit against future rounds.
      active_.pop_front();
      flow.deficit = 0;
    }
    FlowStats& stats = flows_stats_.at(key);
    ++stats.dequeued;
    stats.bytes += packet.header.payload_len;
    stats.depth = flow.packets.size();
    not_full_.notify_all();
    return packet;
  }
}

std::optional<Packet> FairPacketQueue::try_receive() {
  if (depth_ == 0) return std::nullopt;
  return receive();  // depth_ > 0: the DRR loop never blocks
}

void FairPacketQueue::set_weight(std::uint64_t flow, double weight) {
  MAD2_CHECK(weight > 0.0, "fair queue flow weight must be positive");
  flows_[flow].weight = weight;
}

std::size_t FairPacketQueue::scaled_quantum(double weight) const {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(quantum_) * weight);
  return scaled < 1 ? 1 : scaled;
}

void FairPacketQueue::close() {
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

}  // namespace mad2::fwd
