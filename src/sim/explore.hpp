// madcheck: CHESS/loom-style schedule exploration for the fiber simulator.
//
// Every concurrency bug in the stack (Switch flush ordering, BMM
// commit/checkout, the gateway dual-buffered pipeline, retransmit-timer
// vs. ack races) is a function of which ready fiber runs next — and the
// plain scheduler always answers that question one fixed way (FIFO).
// madcheck re-runs a test body many times, each time driving the
// Simulator's SchedulePolicy hook with a different tie-breaking schedule,
// and checks that the body's invariants hold under every ordering:
//
//   auto result = sim::explore([] {
//     mad::Session session(config);   // picks up the ambient policy
//     ...spawn fibers, run, check invariants...
//     return ok_or_failure_status();
//   });
//   ASSERT_TRUE(result.ok) << result.summary();
//
// Three exploration modes compose in one call:
//  - a FIFO baseline plus `random_runs` seeded random-walk schedules;
//  - bounded-exhaustive enumeration: depth-first over all schedules with
//    at most `delay_bound` non-FIFO decisions (delay-bounded scheduling),
//    capped at `max_exhaustive_runs`;
//  - exact replay of one serialized trace via the MAD2_SCHEDULE
//    environment variable (mirroring MAD2_FAULT_SEED).
//
// On failure the offending decision trace is shrunk to a minimal prefix
// (prefix truncation + zeroing of individual decisions, each candidate
// re-validated by re-running the body) and serialized in `replay_hint`,
// ready to paste into MAD2_SCHEDULE for a deterministic single-run
// reproduction.
//
// Bodies must be self-contained and idempotent: they are executed many
// times, must build their Simulator/Session *inside* the callable, and
// must report invariant violations through the returned Status (a
// deadlocked run already surfaces as the FAILED_PRECONDITION from
// Simulator::run()). Invariants asserted under exploration must be
// order-independent — madcheck exists precisely to run legal orderings
// the FIFO scheduler never produces.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "util/status.hpp"

namespace mad2::sim {

/// A serialized schedule: entry i is the index chosen at the i-th decision
/// point (a tie of >= 2 runnable events; singleton steps are not recorded).
/// Entries beyond the trace default to 0 (FIFO), so a trace is a *prefix*
/// of decisions; trailing zeros are redundant.
using ScheduleTrace = std::vector<std::uint32_t>;

/// "2,0,1" <-> {2, 0, 1}; the empty string is the empty (pure-FIFO) trace.
[[nodiscard]] std::string trace_to_string(const ScheduleTrace& trace);
[[nodiscard]] ScheduleTrace trace_from_string(std::string_view text);

/// Name of the replay environment variable.
inline constexpr const char* kScheduleEnvVar = "MAD2_SCHEDULE";

struct ExploreOptions {
  /// Seeded random-walk schedules to run after the FIFO baseline.
  int random_runs = 200;
  /// Base seed for the random walks (run r uses a mix of seed and r).
  std::uint64_t seed = 1;
  /// Bounded-exhaustive phase: explore every schedule with at most this
  /// many non-FIFO decisions...
  int delay_bound = 2;
  /// ...capped at this many runs. 0 skips the exhaustive phase entirely.
  std::size_t max_exhaustive_runs = 0;
  /// Shrink a failing trace before reporting (costs extra runs).
  bool shrink = true;
  /// Max body re-runs the shrinker may spend.
  std::size_t shrink_budget = 200;
  /// Honor MAD2_SCHEDULE: when the variable is set, run the body exactly
  /// once under that trace and report, skipping all exploration.
  bool env_replay = true;
};

struct ExploreResult {
  bool ok = true;
  /// Schedules executed (baseline + random + exhaustive; excludes shrink
  /// re-runs and is 1 in MAD2_SCHEDULE replay mode).
  int runs = 0;
  /// First failing Status, untouched by shrinking.
  std::string failure;
  /// The failing decision trace, shrunk when options.shrink is set.
  ScheduleTrace trace;
  /// Paste-ready reproduction line, e.g. "MAD2_SCHEDULE=0,0,1".
  std::string replay_hint;

  /// One-paragraph report for test assertion messages.
  [[nodiscard]] std::string summary() const;
};

/// The unit under exploration. See the file comment for the contract.
using ExploreBody = std::function<Status()>;

/// Run `body` under many schedules; first failure wins (and is shrunk).
ExploreResult explore(const ExploreBody& body, ExploreOptions options = {});

/// One run of `body` under an exact trace (FIFO once the trace is
/// exhausted), outside any exploration loop. `taken` records the decision
/// actually made at every decision point — replaying it reproduces the
/// run bit for bit, which is how madcheck's own determinism is tested.
struct ReplayOutcome {
  Status status = Status::ok();
  ScheduleTrace taken;
};
ReplayOutcome run_with_schedule(const ExploreBody& body,
                                const ScheduleTrace& trace);

}  // namespace mad2::sim
