#include "sim/simulator.hpp"

#include <string>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace mad2::sim {

// ---------------------------------------------------------------- Fiber ---

Fiber::Fiber(Simulator* simulator, std::uint64_t id, std::string name,
             std::function<void()> body, bool daemon, std::size_t stack_bytes)
    : simulator_(simulator),
      id_(id),
      name_(std::move(name)),
      body_(std::move(body)),
      daemon_(daemon),
      stack_(stack_bytes) {
  MAD2_CHECK(getcontext(&context_) == 0, "getcontext failed");
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // fibers never fall off the trampoline
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t self = (static_cast<std::uintptr_t>(hi) << 32) |
                              static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_body();
}

void Fiber::run_body() {
  body_();
  state_ = State::kDone;
  // Hand control back to the scheduler; a kDone fiber is never resumed, so
  // this switch never returns.
  swapcontext(&context_, &simulator_->scheduler_context_);
  MAD2_CHECK(false, "resumed a finished fiber");
}

// ------------------------------------------------------------ Simulator ---

namespace {
// Ambient default for new simulators (see the header). Plain global on
// purpose: the library is single-host-thread by contract, and keeping it
// an ordinary variable lets ThreadSanitizer flag violations of that rule.
SchedulePolicy* g_ambient_schedule_policy = nullptr;
}  // namespace

void Simulator::set_ambient_schedule_policy(SchedulePolicy* policy) {
  g_ambient_schedule_policy = policy;
}

SchedulePolicy* Simulator::ambient_schedule_policy() {
  return g_ambient_schedule_policy;
}

Simulator::Simulator(Options options)
    : options_(options), schedule_policy_(g_ambient_schedule_policy) {}

Simulator::~Simulator() {
  // Unfinished fibers are discarded without stack unwinding: objects on
  // their stacks are not destroyed. Sessions are expected to drain via
  // run(); this is only a backstop for failed tests.
  if (live_fiber_count() != 0) {
    MAD2_DEBUG("simulator destroyed with %zu live fibers",
               live_fiber_count());
  }
}

Fiber* Simulator::spawn(std::string name, std::function<void()> body) {
  auto fiber = std::unique_ptr<Fiber>(
      new Fiber(this, next_fiber_id_++, std::move(name), std::move(body),
                /*daemon=*/false, options_.default_stack_bytes));
  Fiber* raw = fiber.get();
  fibers_.push_back(std::move(fiber));
  schedule_fiber(raw, now_);
  return raw;
}

Fiber* Simulator::spawn_daemon(std::string name, std::function<void()> body) {
  auto fiber = std::unique_ptr<Fiber>(
      new Fiber(this, next_fiber_id_++, std::move(name), std::move(body),
                /*daemon=*/true, options_.default_stack_bytes));
  Fiber* raw = fiber.get();
  fibers_.push_back(std::move(fiber));
  schedule_fiber(raw, now_);
  return raw;
}

std::size_t Simulator::live_fiber_count() const {
  std::size_t n = 0;
  for (const auto& fiber : fibers_) {
    if (fiber->state() != Fiber::State::kDone) ++n;
  }
  return n;
}

void Simulator::post_at(Time t, std::function<void()> fn) {
  MAD2_CHECK(t >= now_, "cannot post events in the past");
  events_.push(Event{t, next_sequence_++, nullptr, 0, std::move(fn)});
}

void Simulator::schedule_fiber(Fiber* fiber, Time t) {
  events_.push(Event{t, next_sequence_++, fiber, fiber->wake_generation_,
                     nullptr});
}

// Stale events are filtered *before* tie sets are shown to a
// SchedulePolicy so that no-op events are never decision points and
// recorded traces stay canonical.
bool Simulator::is_stale(const Event& event) {
  return event.fiber != nullptr &&
         (event.generation != event.fiber->wake_generation_ ||
          event.fiber->state() == Fiber::State::kDone);
}

bool Simulator::next_event(Event* out) {
  while (!events_.empty()) {
    Event first = events_.top();
    events_.pop();
    if (is_stale(first)) continue;
    if (schedule_policy_ == nullptr) {
      *out = std::move(first);
      return true;
    }
    // Gather every other live event tied at this timestamp, in FIFO
    // (sequence) order, and let the policy pick the one that runs.
    std::vector<Event> ties;
    const Time tie_time = first.time;
    ties.push_back(std::move(first));
    while (!events_.empty() && events_.top().time == tie_time) {
      Event next = events_.top();
      events_.pop();
      if (!is_stale(next)) ties.push_back(std::move(next));
    }
    std::size_t pick = 0;
    if (ties.size() > 1) {
      pick = schedule_policy_->choose(ties.size());
      if (pick >= ties.size()) pick = ties.size() - 1;
    }
    for (std::size_t i = 0; i < ties.size(); ++i) {
      if (i != pick) events_.push(std::move(ties[i]));
    }
    *out = std::move(ties[pick]);
    return true;
  }
  return false;
}

Status Simulator::run() {
  MAD2_CHECK(!running_, "Simulator::run() is not reentrant");
  MAD2_CHECK(current_ == nullptr, "run() called from inside a fiber");
  running_ = true;
  stop_requested_ = false;

  // Publish this simulator's clock to the tracing layer for the duration
  // of the run (restored on exit so stacked runs observe the right one).
  obs::ExecContext& exec = obs::exec_context();
  const sim::Time* previous_clock = exec.now;
  exec.now = &now_;

  Event event;
  while (!stop_requested_ && next_event(&event)) {
    MAD2_CHECK(event.time >= now_, "event queue went backwards");
    now_ = event.time;

    if (event.fiber == nullptr) {
      event.callback();
      continue;
    }

    Fiber* fiber = event.fiber;
    if (fiber->state() == Fiber::State::kReady) {
      resume(fiber);
    } else if (fiber->state() == Fiber::State::kBlocked) {
      // A block_current() deadline fired before anyone called wake().
      fiber->woke_by_timeout_ = true;
      fiber->wake_generation_++;
      fiber->state_ = Fiber::State::kReady;
      resume(fiber);
    }
    // kRunning cannot occur (single resume at a time); kDone was filtered
    // as stale by next_event().
  }

  running_ = false;
  exec.now = previous_clock;

  std::string stuck;
  for (const auto& fiber : fibers_) {
    if (fiber->state() != Fiber::State::kDone && !fiber->is_daemon()) {
      if (!stuck.empty()) stuck += ", ";
      stuck += fiber->name();
    }
  }
  if (!stuck.empty() && !stop_requested_) {
    return failed_precondition("simulation ended with stuck fibers: " +
                               stuck);
  }
  return Status::ok();
}

void Simulator::resume(Fiber* fiber) {
  fiber->state_ = Fiber::State::kRunning;
  current_ = fiber;
  // Trace events attribute to the running fiber's track; callbacks and
  // the scheduler itself fall back to track 0 ("main").
  obs::ExecContext& exec = obs::exec_context();
  exec.fiber = fiber->id();
  exec.fiber_name = fiber->name().c_str();
  swapcontext(&scheduler_context_, &fiber->context_);
  exec.fiber = 0;
  exec.fiber_name = "main";
  current_ = nullptr;
}

void Simulator::switch_out() {
  Fiber* fiber = current_;
  swapcontext(&fiber->context_, &scheduler_context_);
}

void Simulator::advance(Duration d) {
  MAD2_CHECK(current_ != nullptr, "advance() outside a fiber");
  MAD2_CHECK(d >= 0, "advance() with negative duration");
  Fiber* fiber = current_;
  fiber->state_ = Fiber::State::kReady;
  schedule_fiber(fiber, now_ + d);
  switch_out();
}

bool Simulator::block_current(Time deadline) {
  MAD2_CHECK(current_ != nullptr, "block_current() outside a fiber");
  Fiber* fiber = current_;
  fiber->state_ = Fiber::State::kBlocked;
  fiber->woke_by_timeout_ = false;
  if (deadline != kNever) {
    MAD2_CHECK(deadline >= now_, "deadline in the past");
    schedule_fiber(fiber, deadline);
  }
  switch_out();
  return fiber->woke_by_timeout_;
}

void Simulator::wake(Fiber* fiber) {
  MAD2_CHECK(fiber != nullptr, "wake(nullptr)");
  if (fiber->state() != Fiber::State::kBlocked) return;
  fiber->wake_generation_++;
  fiber->state_ = Fiber::State::kReady;
  schedule_fiber(fiber, now_);
}

}  // namespace mad2::sim
