#include "sim/simulator.hpp"

#include <string>

#include "util/log.hpp"

namespace mad2::sim {

// ---------------------------------------------------------------- Fiber ---

Fiber::Fiber(Simulator* simulator, std::uint64_t id, std::string name,
             std::function<void()> body, bool daemon, std::size_t stack_bytes)
    : simulator_(simulator),
      id_(id),
      name_(std::move(name)),
      body_(std::move(body)),
      daemon_(daemon),
      stack_(stack_bytes) {
  MAD2_CHECK(getcontext(&context_) == 0, "getcontext failed");
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // fibers never fall off the trampoline
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t self = (static_cast<std::uintptr_t>(hi) << 32) |
                              static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_body();
}

void Fiber::run_body() {
  body_();
  state_ = State::kDone;
  // Hand control back to the scheduler; a kDone fiber is never resumed, so
  // this switch never returns.
  swapcontext(&context_, &simulator_->scheduler_context_);
  MAD2_CHECK(false, "resumed a finished fiber");
}

// ------------------------------------------------------------ Simulator ---

Simulator::Simulator(Options options) : options_(options) {}

Simulator::~Simulator() {
  // Unfinished fibers are discarded without stack unwinding: objects on
  // their stacks are not destroyed. Sessions are expected to drain via
  // run(); this is only a backstop for failed tests.
  if (live_fiber_count() != 0) {
    MAD2_DEBUG("simulator destroyed with %zu live fibers",
               live_fiber_count());
  }
}

Fiber* Simulator::spawn(std::string name, std::function<void()> body) {
  auto fiber = std::unique_ptr<Fiber>(
      new Fiber(this, next_fiber_id_++, std::move(name), std::move(body),
                /*daemon=*/false, options_.default_stack_bytes));
  Fiber* raw = fiber.get();
  fibers_.push_back(std::move(fiber));
  schedule_fiber(raw, now_);
  return raw;
}

Fiber* Simulator::spawn_daemon(std::string name, std::function<void()> body) {
  auto fiber = std::unique_ptr<Fiber>(
      new Fiber(this, next_fiber_id_++, std::move(name), std::move(body),
                /*daemon=*/true, options_.default_stack_bytes));
  Fiber* raw = fiber.get();
  fibers_.push_back(std::move(fiber));
  schedule_fiber(raw, now_);
  return raw;
}

std::size_t Simulator::live_fiber_count() const {
  std::size_t n = 0;
  for (const auto& fiber : fibers_) {
    if (fiber->state() != Fiber::State::kDone) ++n;
  }
  return n;
}

void Simulator::post_at(Time t, std::function<void()> fn) {
  MAD2_CHECK(t >= now_, "cannot post events in the past");
  events_.push(Event{t, next_sequence_++, nullptr, 0, std::move(fn)});
}

void Simulator::schedule_fiber(Fiber* fiber, Time t) {
  events_.push(Event{t, next_sequence_++, fiber, fiber->wake_generation_,
                     nullptr});
}

Status Simulator::run() {
  MAD2_CHECK(!running_, "Simulator::run() is not reentrant");
  MAD2_CHECK(current_ == nullptr, "run() called from inside a fiber");
  running_ = true;
  stop_requested_ = false;

  while (!events_.empty() && !stop_requested_) {
    Event event = events_.top();
    events_.pop();
    MAD2_CHECK(event.time >= now_, "event queue went backwards");
    now_ = event.time;

    if (event.fiber == nullptr) {
      event.callback();
      continue;
    }

    Fiber* fiber = event.fiber;
    if (event.generation != fiber->wake_generation_) continue;  // stale
    if (fiber->state() == Fiber::State::kReady) {
      resume(fiber);
    } else if (fiber->state() == Fiber::State::kBlocked) {
      // A block_current() deadline fired before anyone called wake().
      fiber->woke_by_timeout_ = true;
      fiber->wake_generation_++;
      fiber->state_ = Fiber::State::kReady;
      resume(fiber);
    }
    // kRunning cannot occur (single resume at a time); kDone is stale.
  }

  running_ = false;

  std::string stuck;
  for (const auto& fiber : fibers_) {
    if (fiber->state() != Fiber::State::kDone && !fiber->is_daemon()) {
      if (!stuck.empty()) stuck += ", ";
      stuck += fiber->name();
    }
  }
  if (!stuck.empty() && !stop_requested_) {
    return failed_precondition("simulation ended with stuck fibers: " +
                               stuck);
  }
  return Status::ok();
}

void Simulator::resume(Fiber* fiber) {
  fiber->state_ = Fiber::State::kRunning;
  current_ = fiber;
  swapcontext(&scheduler_context_, &fiber->context_);
  current_ = nullptr;
}

void Simulator::switch_out() {
  Fiber* fiber = current_;
  swapcontext(&fiber->context_, &scheduler_context_);
}

void Simulator::advance(Duration d) {
  MAD2_CHECK(current_ != nullptr, "advance() outside a fiber");
  MAD2_CHECK(d >= 0, "advance() with negative duration");
  Fiber* fiber = current_;
  fiber->state_ = Fiber::State::kReady;
  schedule_fiber(fiber, now_ + d);
  switch_out();
}

bool Simulator::block_current(Time deadline) {
  MAD2_CHECK(current_ != nullptr, "block_current() outside a fiber");
  Fiber* fiber = current_;
  fiber->state_ = Fiber::State::kBlocked;
  fiber->woke_by_timeout_ = false;
  if (deadline != kNever) {
    MAD2_CHECK(deadline >= now_, "deadline in the past");
    schedule_fiber(fiber, deadline);
  }
  switch_out();
  return fiber->woke_by_timeout_;
}

void Simulator::wake(Fiber* fiber) {
  MAD2_CHECK(fiber != nullptr, "wake(nullptr)");
  if (fiber->state() != Fiber::State::kBlocked) return;
  fiber->wake_generation_++;
  fiber->state_ = Fiber::State::kReady;
  schedule_fiber(fiber, now_);
}

}  // namespace mad2::sim
