// Virtual time for the discrete-event simulator.
//
// All latencies/bandwidths reported by the benchmark harnesses are measured
// in this clock. The unit is the nanosecond (signed 64-bit), which gives
// ~292 years of range — far beyond any simulated session — while keeping
// sub-microsecond hardware costs exact.
#pragma once

#include <cmath>
#include <cstdint>

namespace mad2::sim {

using Time = std::int64_t;      // absolute virtual nanoseconds
using Duration = std::int64_t;  // virtual nanoseconds

constexpr Time kNever = INT64_MAX;

/// Duration constructors.
constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t u) { return u * 1000; }
constexpr Duration milliseconds(std::int64_t m) { return m * 1000000; }
constexpr Duration seconds(std::int64_t s) { return s * 1000000000; }

/// Fractional microseconds, rounded to the nearest nanosecond.
inline Duration from_us(double us) {
  return static_cast<Duration>(std::llround(us * 1000.0));
}

/// Conversions for reporting.
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1e9;
}

/// Time to move `bytes` at `mb_per_s` decimal MB/s (the paper's unit).
inline Duration transfer_time(std::uint64_t bytes, double mb_per_s) {
  if (mb_per_s <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) / (mb_per_s * 1e6) * 1e9;
  return static_cast<Duration>(std::llround(ns));
}

/// Bandwidth in decimal MB/s achieved moving `bytes` in `elapsed`.
inline double bandwidth_mbs(std::uint64_t bytes, Duration elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) / (to_seconds(elapsed) * 1e6);
}

}  // namespace mad2::sim
