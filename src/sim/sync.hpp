// Fiber-level synchronization primitives for the simulator: wait queues,
// mutexes, condition variables, semaphores, barriers, and a bounded
// message channel. All of them operate on virtual time and must only be
// used from fibers of the Simulator they were constructed with.
#pragma once

#include <deque>
#include <optional>

#include "sim/simulator.hpp"
#include "util/status.hpp"

namespace mad2::sim {

/// FIFO queue of blocked fibers. Building block for everything below.
class WaitQueue {
 public:
  explicit WaitQueue(Simulator* simulator) : simulator_(simulator) {}

  /// Block the current fiber until notified. With a deadline, returns true
  /// iff the deadline fired first (the fiber is removed from the queue).
  bool wait(Time deadline = kNever);

  /// Wake the longest-waiting fiber, if any. Returns whether one was woken.
  bool notify_one();

  /// Wake every waiting fiber.
  void notify_all();

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }
  [[nodiscard]] Simulator* simulator() const { return simulator_; }

 private:
  Simulator* simulator_;
  std::deque<Fiber*> waiters_;
};

/// Non-recursive mutex. Fibers are cooperative, so this only matters when
/// a critical section blocks (e.g. waits on a CondVar or NIC event) —
/// exactly the cases the gateway pipeline exercises.
class Mutex {
 public:
  explicit Mutex(Simulator* simulator) : queue_(simulator) {}

  void lock();
  void unlock();
  [[nodiscard]] bool try_lock();
  [[nodiscard]] bool locked() const { return holder_ != nullptr; }

 private:
  friend class CondVar;
  WaitQueue queue_;
  Fiber* holder_ = nullptr;
};

/// RAII lock guard for sim::Mutex.
class LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) : mutex_(mutex) { mutex_.lock(); }
  ~LockGuard() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with sim::Mutex.
class CondVar {
 public:
  explicit CondVar(Simulator* simulator) : queue_(simulator) {}

  /// Atomically release `mutex`, wait, re-acquire. Spurious wakeups do not
  /// occur, but callers should still use predicate loops for clarity.
  void wait(Mutex& mutex);

  /// Returns true iff the deadline fired before a notification.
  bool wait_until(Mutex& mutex, Time deadline);

  void notify_one() { queue_.notify_one(); }
  void notify_all() { queue_.notify_all(); }

 private:
  WaitQueue queue_;
};

/// Counting semaphore; models credit-based flow control in the BIP driver.
class Semaphore {
 public:
  Semaphore(Simulator* simulator, std::size_t initial)
      : queue_(simulator), count_(initial) {}

  void acquire();
  [[nodiscard]] bool try_acquire();
  void release(std::size_t n = 1);
  [[nodiscard]] std::size_t available() const { return count_; }

 private:
  WaitQueue queue_;
  std::size_t count_;
};

/// Reusable barrier for `parties` fibers.
class Barrier {
 public:
  Barrier(Simulator* simulator, std::size_t parties)
      : queue_(simulator), parties_(parties) {}

  /// Block until `parties` fibers have arrived; the last arrival releases
  /// everyone and resets the barrier.
  void arrive_and_wait();

 private:
  WaitQueue queue_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t round_ = 0;
};

/// Bounded FIFO channel for passing values between fibers. `capacity == 0`
/// is not supported (no rendezvous semantics needed here).
template <typename T>
class BoundedChannel {
 public:
  BoundedChannel(Simulator* simulator, std::size_t capacity)
      : not_empty_(simulator), not_full_(simulator), capacity_(capacity) {
    MAD2_CHECK(capacity > 0, "BoundedChannel capacity must be positive");
  }

  /// Block until space is available, then enqueue.
  void send(T value) {
    while (items_.size() >= capacity_ && !closed_) not_full_.wait();
    MAD2_CHECK(!closed_, "send() on closed channel");
    items_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  /// Enqueue without blocking; false if full or closed.
  bool try_send(T value) {
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Block until a value is available. nullopt once closed and drained.
  std::optional<T> receive() {
    while (items_.empty() && !closed_) not_empty_.wait();
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Close: senders must stop; receivers drain then get nullopt.
  void close() {
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

 private:
  WaitQueue not_empty_;
  WaitQueue not_full_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
};

}  // namespace mad2::sim
