#include "sim/explore.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "util/debug_hook.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace mad2::sim {

namespace {

/// The one policy madcheck needs: replay a trace prefix exactly, then
/// either stay on FIFO (replay / exhaustive prefixes) or take seeded
/// random choices (random walks). Records the tie width and the decision
/// actually taken at every decision point.
class TracePolicy : public SchedulePolicy {
 public:
  TracePolicy(ScheduleTrace prefix, std::uint64_t seed, bool random_tail)
      : prefix_(std::move(prefix)), rng_(seed), random_tail_(random_tail) {}

  std::size_t choose(std::size_t count) override {
    std::size_t pick = 0;
    if (taken_.size() < prefix_.size()) {
      pick = std::min<std::size_t>(prefix_[taken_.size()], count - 1);
    } else if (random_tail_) {
      pick = static_cast<std::size_t>(rng_.next_below(count));
    }
    counts_.push_back(static_cast<std::uint32_t>(count));
    taken_.push_back(static_cast<std::uint32_t>(pick));
    return pick;
  }

  [[nodiscard]] const ScheduleTrace& taken() const { return taken_; }
  [[nodiscard]] const std::vector<std::uint32_t>& counts() const {
    return counts_;
  }

 private:
  ScheduleTrace prefix_;
  Rng rng_;
  bool random_tail_;
  ScheduleTrace taken_;
  std::vector<std::uint32_t> counts_;
};

/// Installs a policy as the ambient default (and restores the previous one
/// on scope exit) so bodies that construct their own Simulator — usually
/// buried inside a mad::Session — come under the explorer's control.
class ScopedAmbientPolicy {
 public:
  explicit ScopedAmbientPolicy(SchedulePolicy* policy)
      : previous_(Simulator::ambient_schedule_policy()) {
    Simulator::set_ambient_schedule_policy(policy);
  }
  ~ScopedAmbientPolicy() {
    Simulator::set_ambient_schedule_policy(previous_);
  }
  ScopedAmbientPolicy(const ScopedAmbientPolicy&) = delete;
  ScopedAmbientPolicy& operator=(const ScopedAmbientPolicy&) = delete;

 private:
  SchedulePolicy* previous_;
};

Status run_under(const ExploreBody& body, TracePolicy& policy) {
  ScopedAmbientPolicy scope(&policy);
  return body();
}

void strip_trailing_zeros(ScheduleTrace& trace) {
  while (!trace.empty() && trace.back() == 0) trace.pop_back();
}

/// Minimize a failing trace: find the shortest failing prefix (binary
/// search — failure is not strictly monotonic in prefix length, but in
/// practice the essential deviation is a prefix property), then try to
/// zero individual non-FIFO decisions. Every candidate is validated by
/// re-running the body; `budget` caps those re-runs.
ScheduleTrace shrink_trace(const ExploreBody& body, ScheduleTrace trace,
                           std::size_t budget) {
  auto fails = [&](const ScheduleTrace& candidate) {
    if (budget == 0) return false;
    --budget;
    TracePolicy policy(candidate, 0, /*random_tail=*/false);
    return !run_under(body, policy).is_ok();
  };

  strip_trailing_zeros(trace);  // semantically a no-op: beyond-prefix = 0

  // Shortest failing prefix. Invariant kept by the search: `trace`
  // (length hi) fails; probe lengths below it.
  std::size_t lo = 0;
  std::size_t hi = trace.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ScheduleTrace candidate(trace.begin(),
                            trace.begin() + static_cast<std::ptrdiff_t>(mid));
    if (fails(candidate)) {
      trace = std::move(candidate);
      strip_trailing_zeros(trace);
      hi = trace.size();
    } else {
      lo = mid + 1;
    }
  }

  // Zero out non-essential deviations, one at a time until a fixpoint.
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (trace[i] == 0) continue;
      ScheduleTrace candidate = trace;
      candidate[i] = 0;
      strip_trailing_zeros(candidate);
      if (fails(candidate)) {
        trace = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return trace;
}

void record_failure(ExploreResult& result, const ExploreBody& body,
                    ScheduleTrace trace, const Status& status,
                    const ExploreOptions& options) {
  result.ok = false;
  result.failure = status.to_string();
  // Dump the trace ring before shrinking reruns the body and overwrites
  // the failing run's events with passing-schedule noise.
  invoke_failure_dump_hook(result.failure.c_str());
  strip_trailing_zeros(trace);
  if (options.shrink) {
    trace = shrink_trace(body, std::move(trace), options.shrink_budget);
  }
  result.trace = std::move(trace);
  result.replay_hint = std::string(kScheduleEnvVar) + "=" +
                       trace_to_string(result.trace);
}

}  // namespace

std::string trace_to_string(const ScheduleTrace& trace) {
  std::string text;
  for (std::uint32_t choice : trace) {
    if (!text.empty()) text += ",";
    text += std::to_string(choice);
  }
  return text;
}

ScheduleTrace trace_from_string(std::string_view text) {
  ScheduleTrace trace;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view token = text.substr(start, end - start);
    if (!token.empty()) {
      std::uint32_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      MAD2_CHECK(ec == std::errc() && ptr == token.data() + token.size(),
                 "bad MAD2_SCHEDULE entry");
      trace.push_back(value);
    }
    start = end + 1;
  }
  return trace;
}

std::string ExploreResult::summary() const {
  std::string text = "madcheck: " + std::to_string(runs) +
                     " schedule(s) explored";
  if (ok) return text + ", all invariants held";
  text += "; FAILED: " + failure;
  text += "\n  shrunk trace: [" + trace_to_string(trace) + "]";
  text += "\n  replay with: " + replay_hint;
  return text;
}

ReplayOutcome run_with_schedule(const ExploreBody& body,
                                const ScheduleTrace& trace) {
  TracePolicy policy(trace, 0, /*random_tail=*/false);
  ReplayOutcome outcome;
  outcome.status = run_under(body, policy);
  outcome.taken = policy.taken();
  return outcome;
}

ExploreResult explore(const ExploreBody& body, ExploreOptions options) {
  ExploreResult result;

  // Replay mode: MAD2_SCHEDULE pins the whole call to one schedule.
  if (options.env_replay) {
    if (const char* env = std::getenv(kScheduleEnvVar)) {
      const ScheduleTrace trace = trace_from_string(env);
      TracePolicy policy(trace, 0, /*random_tail=*/false);
      const Status status = run_under(body, policy);
      result.runs = 1;
      if (!status.is_ok()) {
        // Report verbatim — no shrinking during a pinned replay.
        result.ok = false;
        result.failure = status.to_string();
        invoke_failure_dump_hook(result.failure.c_str());
        result.trace = trace;
        result.replay_hint =
            std::string(kScheduleEnvVar) + "=" + trace_to_string(trace);
      }
      return result;
    }
  }

  // FIFO baseline: the schedule every other test in the repo runs under.
  {
    TracePolicy policy({}, 0, /*random_tail=*/false);
    const Status status = run_under(body, policy);
    ++result.runs;
    if (!status.is_ok()) {
      record_failure(result, body, policy.taken(), status, options);
      return result;
    }
  }

  // Seeded random walks.
  for (int run = 0; run < options.random_runs; ++run) {
    // SplitMix-style mix keeps per-run streams decorrelated even for
    // adjacent run indices.
    const std::uint64_t seed =
        (options.seed + 0x9e3779b97f4a7c15ULL * (run + 1)) ^ 0x5bf03635ULL;
    TracePolicy policy({}, seed, /*random_tail=*/true);
    const Status status = run_under(body, policy);
    ++result.runs;
    if (!status.is_ok()) {
      record_failure(result, body, policy.taken(), status, options);
      return result;
    }
  }

  // Bounded-exhaustive enumeration (delay-bounded DFS): children extend a
  // passing run's recorded trace with one extra non-FIFO decision, so
  // every schedule with <= delay_bound deviations is eventually visited
  // (subject to the run cap).
  if (options.max_exhaustive_runs > 0) {
    std::vector<ScheduleTrace> stack;
    stack.push_back({});
    std::size_t exhaustive_runs = 0;
    while (!stack.empty() &&
           exhaustive_runs < options.max_exhaustive_runs) {
      const ScheduleTrace prefix = std::move(stack.back());
      stack.pop_back();
      TracePolicy policy(prefix, 0, /*random_tail=*/false);
      const Status status = run_under(body, policy);
      ++exhaustive_runs;
      ++result.runs;
      if (!status.is_ok()) {
        record_failure(result, body, policy.taken(), status, options);
        return result;
      }
      const auto& taken = policy.taken();
      const auto& counts = policy.counts();
      const int deviations = static_cast<int>(
          std::count_if(taken.begin(), taken.end(),
                        [](std::uint32_t c) { return c != 0; }));
      if (deviations >= options.delay_bound) continue;
      for (std::size_t step = counts.size(); step-- > prefix.size();) {
        for (std::uint32_t alt = 1; alt < counts[step]; ++alt) {
          ScheduleTrace child(taken.begin(),
                              taken.begin() +
                                  static_cast<std::ptrdiff_t>(step));
          child.push_back(alt);
          stack.push_back(std::move(child));
        }
      }
    }
  }

  return result;
}

}  // namespace mad2::sim
