// Discrete-event simulator with stackful fibers.
//
// Simulated "processes" (application code on cluster nodes, gateway
// forwarding threads, NIC firmware loops) run as cooperatively-scheduled
// ucontext fibers inside one OS thread. Blocking operations suspend the
// fiber; the scheduler advances virtual time to the next pending event.
// This lets ordinary blocking library code — the whole Madeleine II stack —
// run unmodified inside the simulation, with overlap (pipelining,
// dual-buffering) modeled exactly and every run fully deterministic.
//
// Threading model: a Simulator and everything scheduled on it must be used
// from a single OS thread. Distinct Simulator instances are independent.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <ucontext.h>
#include <vector>

#include "sim/time.hpp"
#include "util/status.hpp"

namespace mad2::sim {

class Simulator;

/// Decides which runnable event executes next when several are tied at the
/// earliest virtual time. The tie set is presented in FIFO (scheduling)
/// order; returning 0 everywhere reproduces the classic behavior, and any
/// other answer is an equally legal execution of the simulated program —
/// the virtual clock never moves while a tie is being broken, so policies
/// explore *orderings*, not timings. madcheck (sim/explore.hpp) drives
/// this hook with random-walk, bounded-exhaustive, and replay policies.
///
/// choose() is only consulted for ties of two or more non-stale events;
/// singleton steps are not decision points, which keeps recorded decision
/// traces short and canonical.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  /// Pick one of `count` (>= 2) co-enabled events. Out-of-range answers
  /// are clamped to the last candidate.
  virtual std::size_t choose(std::size_t count) = 0;
};

/// A stackful fiber. Created via Simulator::spawn(); not user-constructible.
class Fiber {
 public:
  enum class State { kReady, kRunning, kBlocked, kDone };

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool is_daemon() const { return daemon_; }

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

 private:
  friend class Simulator;
  Fiber(Simulator* simulator, std::uint64_t id, std::string name,
        std::function<void()> body, bool daemon, std::size_t stack_bytes);

  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  Simulator* simulator_;
  std::uint64_t id_;
  std::string name_;
  std::function<void()> body_;
  bool daemon_;
  State state_ = State::kReady;
  // Incremented on every wake; lets stale timeout events detect that the
  // blocking episode they were armed for has already ended.
  std::uint64_t wake_generation_ = 0;
  // Valid only between a block_current() return and the next block: true
  // iff the *latest* blocking episode ended via its deadline event rather
  // than wake(). Reset when the next episode begins. When a deadline event
  // and a wake() land on the same timestamp, whichever was scheduled first
  // wins (event-queue FIFO order) and the other becomes a no-op, so a
  // deadline armed before the racing notify reports a timeout.
  bool woke_by_timeout_ = false;
  std::vector<char> stack_;
  ucontext_t context_{};
};

/// The event loop: a virtual clock plus a priority queue of fiber wakeups
/// and plain callbacks. See file comment for the threading model.
class Simulator {
 public:
  struct Options {
    std::size_t default_stack_bytes = 256 * 1024;
  };

  Simulator() : Simulator(Options{}) {}
  explicit Simulator(Options options);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Create a fiber, runnable at the current virtual time. The body runs
  /// when run() reaches its wakeup. Returned pointer is owned by the
  /// Simulator and stays valid for the Simulator's lifetime.
  Fiber* spawn(std::string name, std::function<void()> body);

  /// Like spawn(), but the fiber may still be blocked when the session ends
  /// without run() reporting a deadlock (for server/firmware loops).
  Fiber* spawn_daemon(std::string name, std::function<void()> body);

  /// Run until no event remains. OK if every non-daemon fiber finished;
  /// FAILED_PRECONDITION listing stuck fibers otherwise (deadlock).
  Status run();

  /// Abort the run loop after the current event (callable from a fiber).
  void stop() { stop_requested_ = true; }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Fiber* current() const { return current_; }
  [[nodiscard]] std::size_t live_fiber_count() const;

  /// Schedule a plain callback at absolute time `t` (>= now()).
  void post_at(Time t, std::function<void()> fn);
  void post_after(Duration d, std::function<void()> fn) {
    post_at(now_ + d, std::move(fn));
  }

  // --- Fiber-context operations (must be called from inside a fiber). ---

  /// Let `d` of virtual time elapse on this fiber (models busy work).
  void advance(Duration d);

  /// Reschedule after other ready events at the same timestamp (fairness).
  void yield_fiber() { advance(0); }

  /// Block until another fiber/callback calls wake(). Returns false.
  /// With a deadline: returns true iff the deadline fired first.
  ///
  /// Contract for callers (the same rules as pthread timed waits):
  ///  - `false` means "woken", NOT "your condition holds". Anyone may have
  ///    called wake() for any reason; re-check the predicate and re-block.
  ///  - `true` means this episode's own deadline event ran. The fiber is
  ///    runnable again; a wake() arriving after the timeout targets a new
  ///    generation and cannot resurrect the expired episode.
  ///  - A deadline and a wake() at the same virtual timestamp resolve in
  ///    event-scheduling order (FIFO sequence numbers): the deadline was
  ///    scheduled when the wait began, so it beats any notify posted at
  ///    the deadline instant itself.
  /// The sync primitives (WaitQueue et al.) encode these rules; prefer
  /// them over calling this directly. Regression-tested in sim_test.cpp
  /// ("TimeoutSemantics" suite).
  bool block_current(Time deadline = kNever);

  /// Make a blocked fiber runnable at the current time. No-op if it is not
  /// blocked (wakeups are level-triggered through the sync primitives, not
  /// counted).
  void wake(Fiber* fiber);

  // --- Schedule exploration hooks (madcheck; see sim/explore.hpp). -------

  /// Install a tie-breaking policy for this simulator. nullptr restores
  /// the default FIFO order. The policy is borrowed, not owned, and must
  /// outlive every run() that uses it.
  void set_schedule_policy(SchedulePolicy* policy) {
    schedule_policy_ = policy;
  }
  [[nodiscard]] SchedulePolicy* schedule_policy() const {
    return schedule_policy_;
  }

  /// Process-wide default picked up by every subsequently constructed
  /// Simulator (explorers use this to reach simulators buried inside
  /// mad::Session et al.). Subject to the library's single-thread rule:
  /// do not flip the ambient policy from a second host thread.
  static void set_ambient_schedule_policy(SchedulePolicy* policy);
  [[nodiscard]] static SchedulePolicy* ambient_schedule_policy();

 private:
  struct Event {
    Time time;
    std::uint64_t sequence;  // FIFO tie-break for equal timestamps
    Fiber* fiber;            // nullptr => callback event
    std::uint64_t generation;
    std::function<void()> callback;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  void schedule_fiber(Fiber* fiber, Time t);
  void resume(Fiber* fiber);
  void switch_out();  // fiber -> scheduler
  /// Pop the next live event, letting schedule_policy_ break ties among
  /// the non-stale events at the earliest time. Returns false when the
  /// queue is drained.
  bool next_event(Event* out);
  /// A stale event targets a blocking episode that already ended (wrong
  /// generation or finished fiber); it is consumed without running
  /// anything and is never shown to a SchedulePolicy.
  static bool is_stale(const Event& event);

  Options options_;
  Time now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_fiber_id_ = 1;
  bool stop_requested_ = false;
  bool running_ = false;
  SchedulePolicy* schedule_policy_ = nullptr;
  Fiber* current_ = nullptr;
  ucontext_t scheduler_context_{};
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<std::unique_ptr<Fiber>> fibers_;

  friend class Fiber;
};

}  // namespace mad2::sim
