#include "sim/sync.hpp"

#include <algorithm>

namespace mad2::sim {

bool WaitQueue::wait(Time deadline) {
  Fiber* self = simulator_->current();
  MAD2_CHECK(self != nullptr, "WaitQueue::wait() outside a fiber");
  waiters_.push_back(self);
  const bool timed_out = simulator_->block_current(deadline);
  if (timed_out) {
    // We were woken by the deadline, not by notify_*: deregister.
    auto it = std::find(waiters_.begin(), waiters_.end(), self);
    MAD2_CHECK(it != waiters_.end(), "timed-out fiber missing from queue");
    waiters_.erase(it);
  }
  return timed_out;
}

bool WaitQueue::notify_one() {
  if (waiters_.empty()) return false;
  Fiber* fiber = waiters_.front();
  waiters_.pop_front();
  simulator_->wake(fiber);
  return true;
}

void WaitQueue::notify_all() {
  while (notify_one()) {
  }
}

void Mutex::lock() {
  Fiber* self = queue_.simulator()->current();
  MAD2_CHECK(self != nullptr, "Mutex::lock() outside a fiber");
  MAD2_CHECK(holder_ != self, "recursive Mutex::lock()");
  while (holder_ != nullptr) queue_.wait();
  holder_ = self;
}

bool Mutex::try_lock() {
  Fiber* self = queue_.simulator()->current();
  MAD2_CHECK(self != nullptr, "Mutex::try_lock() outside a fiber");
  if (holder_ != nullptr) return false;
  holder_ = self;
  return true;
}

void Mutex::unlock() {
  MAD2_CHECK(holder_ == queue_.simulator()->current(),
             "Mutex::unlock() by non-holder");
  holder_ = nullptr;
  queue_.notify_one();
}

void CondVar::wait(Mutex& mutex) {
  mutex.unlock();
  queue_.wait();
  mutex.lock();
}

bool CondVar::wait_until(Mutex& mutex, Time deadline) {
  mutex.unlock();
  const bool timed_out = queue_.wait(deadline);
  mutex.lock();
  return timed_out;
}

void Semaphore::acquire() {
  while (count_ == 0) queue_.wait();
  --count_;
}

bool Semaphore::try_acquire() {
  if (count_ == 0) return false;
  --count_;
  return true;
}

void Semaphore::release(std::size_t n) {
  count_ += n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!queue_.notify_one()) break;
  }
}

void Barrier::arrive_and_wait() {
  const std::uint64_t my_round = round_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++round_;
    queue_.notify_all();
    return;
  }
  while (round_ == my_round) queue_.wait();
}

}  // namespace mad2::sim
