#include "net/ib.hpp"

#include <algorithm>

namespace mad2::net {

IbParams IbParams::mellanox_like() {
  IbParams p;
  p.fabric.name = "ib";
  p.fabric.wire_mbs = 800.0;
  p.fabric.propagation = sim::from_us(1.3);
  p.fabric.per_packet = sim::from_us(0.3);
  p.fabric.wire_chunk_bytes = 2048;
  p.fabric.rx_slots = 256;
  return p;
}

// --- IbRegCache -----------------------------------------------------------

IbRegCache::IbRegCache(IbPort* port, std::size_t capacity)
    : port_(port), capacity_(capacity) {}

IbMr IbRegCache::acquire(const std::byte* addr, std::size_t len) {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  if (capacity_ == 0) {
    // Cache disabled: pin per acquire, unpin per release.
    ++stats_.misses;
    return port_->register_memory({addr, len});
  }
  ++clock_;
  for (Entry& entry : entries_) {
    if (entry.mr.base <= a && a + len <= entry.mr.base + entry.mr.bytes) {
      ++stats_.hits;
      entry.last_use = clock_;
      ++entry.refs;
      return entry.mr;
    }
  }
  ++stats_.misses;
  // Re-register the union of the request and every *idle* cached region
  // it overlaps or abuts, so adjacent partial registrations coalesce
  // instead of accumulating. Referenced entries are left alone — their
  // rkey may be advertised to a peer or backing an in-flight RDMA op
  // (e.g. the previous block of the same buffer group) — so the new
  // registration simply overlaps them.
  std::uintptr_t lo = a;
  std::uintptr_t hi = a + len;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::uintptr_t begin = it->mr.base;
    const std::uintptr_t end = begin + it->mr.bytes;
    if (it->refs == 0 && begin <= hi && lo <= end) {
      lo = std::min(lo, begin);
      hi = std::max(hi, end);
      ++stats_.merges;
      port_->deregister(it->mr);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  const IbMr mr = port_->register_memory(
      {reinterpret_cast<const std::byte*>(lo), hi - lo});
  while (entries_.size() >= capacity_ && evict_lru()) {
  }
  entries_.push_back(Entry{mr, clock_, 1});
  return mr;
}

void IbRegCache::release(const IbMr& mr) {
  if (capacity_ == 0) {
    port_->deregister(mr);
    return;
  }
  for (Entry& entry : entries_) {
    if (entry.mr.key == mr.key) {
      MAD2_CHECK(entry.refs > 0, "registration-cache release without acquire");
      --entry.refs;
      return;  // the pin stays hot until eviction or invalidation
    }
  }
  MAD2_CHECK(false, "release of a region unknown to the registration cache");
}

void IbRegCache::invalidate(const std::byte* addr, std::size_t len) {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::uintptr_t begin = it->mr.base;
    const std::uintptr_t end = begin + it->mr.bytes;
    if (begin < a + len && a < end) {
      MAD2_CHECK(it->refs == 0,
                 "invalidate of a referenced region (buffer freed while an "
                 "RDMA op still references it)");
      ++stats_.invalidations;
      port_->deregister(it->mr);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

bool IbRegCache::evict_lru() {
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->refs == 0 &&
        (victim == entries_.end() || it->last_use < victim->last_use)) {
      victim = it;
    }
  }
  if (victim == entries_.end()) return false;  // every entry is in use
  ++stats_.evictions;
  port_->deregister(victim->mr);
  entries_.erase(victim);
  return true;
}

// --- IbNetwork ------------------------------------------------------------

IbNetwork::IbNetwork(sim::Simulator* simulator, std::vector<hw::Node*> nodes,
                     IbParams params)
    : simulator_(simulator),
      params_(std::move(params)),
      fabric_(simulator, params_.fabric) {
  for (hw::Node* node : nodes) {
    const std::uint32_t rank = fabric_.add_port();
    ports_.emplace_back(new IbPort(this, node, rank));
  }
}

IbNetwork::~IbNetwork() = default;

void IbNetwork::fail_link(std::uint32_t a, std::uint32_t b,
                          const Status& status) {
  ports_[a]->fail_link(b, status);
}

void IbNetwork::report_link_failure(std::uint32_t reporter,
                                    std::uint32_t peer,
                                    const Status& status) {
  // Poison both directions before the handler runs, so a re-entrant
  // fail_link from the handler (or a racing give-up timer) no-ops.
  ports_[reporter]->poison_peer(peer, status);
  ports_[peer]->poison_peer(reporter, status);
  if (link_error_handler_) link_error_handler_(reporter, peer, status);
}

// --- IbPort ---------------------------------------------------------------

IbPort::IbPort(IbNetwork* network, hw::Node* node, std::uint32_t rank)
    : network_(network), node_(node), rank_(rank) {
  tx_stage_ = std::make_unique<sim::BoundedChannel<Packet>>(
      network_->simulator_, network_->params_.tx_stage_depth);
  tx_work_ = std::make_unique<sim::WaitQueue>(network_->simulator_);
  reg_cache_ =
      std::make_unique<IbRegCache>(this, network_->params_.regcache_capacity);
  network_->simulator_->spawn_daemon("ib.tx." + std::to_string(rank),
                                     [this] { tx_loop(); });
  network_->simulator_->spawn_daemon("ib.rx." + std::to_string(rank),
                                     [this] { rx_loop(); });
}

IbPort::QpState& IbPort::qp_state(std::uint32_t peer, std::uint32_t qp) {
  const std::uint64_t key = (static_cast<std::uint64_t>(peer) << 32) | qp;
  QpState& state = qps_[key];
  if (!state.sq_wq) {
    state.sq_wq = std::make_unique<sim::WaitQueue>(network_->simulator_);
  }
  return state;
}

const IbPort::QpState* IbPort::qp_if_exists(std::uint32_t peer,
                                            std::uint32_t qp) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(peer) << 32) | qp;
  auto it = qps_.find(key);
  return it == qps_.end() ? nullptr : &it->second;
}

IbPort::Cq& IbPort::cq(std::uint32_t qp) {
  Cq& queue = cqs_[qp];
  if (!queue.wq) {
    queue.wq = std::make_unique<sim::WaitQueue>(network_->simulator_);
  }
  return queue;
}

void IbPort::push_cqe(std::uint32_t qp, IbCompletion completion) {
  Cq& queue = cq(qp);
  queue.cqes.push_back(completion);
  ++counters_.cqes;
  queue.wq->notify_all();
  if (queue.callback) queue.callback();
}

void IbPort::sq_acquire(std::uint32_t peer, std::uint32_t qp) {
  QpState& state = qp_state(peer, qp);
  while (state.sq_outstanding >= params().qp_depth &&
         peer_status_.find(peer) == peer_status_.end()) {
    state.sq_wq->wait();
  }
  ++state.sq_outstanding;
}

void IbPort::sq_release(std::uint32_t peer, std::uint32_t qp) {
  QpState& state = qp_state(peer, qp);
  MAD2_CHECK(state.sq_outstanding > 0, "SQ release without acquire");
  --state.sq_outstanding;
  state.sq_wq->notify_one();
}

void IbPort::charge_dma(std::uint64_t bytes) {
  // The HCA masters its own 64-bit PCI segment (see ib.hpp): DMA is
  // charged at the adapter's rate, not the host's legacy-bus rate.
  node_->pci_bus().transfer(bytes, params().pci_dma_mbs, hw::TxClass::kDma,
                            node_->nic_initiator_id(4));
}

IbMr IbPort::register_memory(std::span<const std::byte> region) {
  const IbParams& params = network_->params_;
  const std::uint64_t pages =
      (region.size() + params.page_bytes - 1) / params.page_bytes;
  node_->charge_cpu(params.register_base +
                    static_cast<sim::Duration>(pages) *
                        params.register_per_page);
  IbMr mr{next_key_++, reinterpret_cast<std::uintptr_t>(region.data()),
          region.size()};
  regions_[mr.key] = mr;
  node_->count_mem_register(region.size());
  return mr;
}

void IbPort::deregister(const IbMr& mr) {
  auto it = regions_.find(mr.key);
  MAD2_CHECK(it != regions_.end(), "deregister of unknown memory region");
  node_->charge_cpu(network_->params_.deregister_base);
  node_->count_mem_deregister(it->second.bytes);
  regions_.erase(it);
}

void IbPort::post_recv(std::uint32_t peer, std::uint32_t qp,
                       std::span<std::byte> buffer) {
  ++counters_.recv_posts;
  qp_state(peer, qp).posted.push_back(RecvDescriptor{buffer, 0});
}

void IbPort::stage(Packet packet) {
  tx_stage_->send(std::move(packet));
  tx_work_->notify_all();
}

void IbPort::stage_fragments(Packet prototype,
                             std::span<const std::byte> data) {
  // prototype.offset carries the base offset (0 for op-relative sends /
  // read responses, the region offset for RDMA writes).
  const IbParams& params = network_->params_;
  const std::uint64_t base = prototype.offset;
  const std::uint64_t total = data.size();
  std::uint64_t offset = 0;
  do {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(total - offset, params.mtu);
    // The HCA pulls descriptor data from pinned host memory.
    charge_dma(chunk + params.header_bytes);
    Packet packet = prototype;
    packet.offset = base + offset;
    packet.data.assign(data.begin() + offset, data.begin() + offset + chunk);
    stage(std::move(packet));
    offset += chunk;
  } while (offset < total);
}

std::uint64_t IbPort::post_send(std::uint32_t peer, std::uint32_t qp,
                                std::span<const std::byte> data,
                                std::uint64_t imm, bool signaled) {
  node_->charge_cpu(params().doorbell);
  ++counters_.send_wrs;
  const std::uint64_t wr = next_wr_++;
  sq_acquire(peer, qp);
  if (peer_status_.find(peer) != peer_status_.end()) {
    sq_release(peer, qp);
    if (signaled) {
      IbCompletion completion;
      completion.kind = IbCompletion::Kind::kSend;
      completion.peer = peer;
      completion.wr_id = wr;
      completion.ok = false;
      push_cqe(qp, completion);
    }
    return wr;
  }
  Packet prototype;
  prototype.kind = Packet::Kind::kSend;
  prototype.src = rank_;
  prototype.dst = peer;
  prototype.qp = qp;
  prototype.wr = signaled ? wr : 0;  // 0 = unsignaled (no CQE)
  prototype.total = data.size();
  prototype.imm = imm;
  prototype.offset = 0;
  stage_fragments(std::move(prototype), data);
  return wr;
}

std::uint64_t IbPort::post_rdma_write(std::uint32_t peer, std::uint32_t qp,
                                      std::span<const std::byte> local,
                                      std::uint64_t rkey,
                                      std::uint64_t roffset,
                                      std::uint64_t imm) {
  MAD2_CHECK(!local.empty(), "RDMA write of an empty buffer");
  node_->charge_cpu(params().doorbell);
  ++counters_.write_wrs;
  const std::uint64_t wr = next_wr_++;
  sq_acquire(peer, qp);
  if (peer_status_.find(peer) != peer_status_.end()) {
    sq_release(peer, qp);
    IbCompletion completion;
    completion.kind = IbCompletion::Kind::kRdmaWrite;
    completion.peer = peer;
    completion.wr_id = wr;
    completion.ok = false;
    push_cqe(qp, completion);
    return wr;
  }
  pending_[wr] =
      PendingOp{peer, qp, IbCompletion::Kind::kRdmaWrite, {}, 0, local.size()};
  Packet prototype;
  prototype.kind = Packet::Kind::kWriteData;
  prototype.src = rank_;
  prototype.dst = peer;
  prototype.qp = qp;
  prototype.wr = wr;
  prototype.key = rkey;
  prototype.total = local.size();
  prototype.imm = imm;
  prototype.offset = roffset;  // region-absolute landing offset
  stage_fragments(std::move(prototype), local);
  arm_op_timeout(peer, wr);
  return wr;
}

std::uint64_t IbPort::post_rdma_read(std::uint32_t peer, std::uint32_t qp,
                                     std::span<std::byte> local,
                                     std::uint64_t rkey,
                                     std::uint64_t roffset) {
  MAD2_CHECK(!local.empty(), "RDMA read into an empty buffer");
  node_->charge_cpu(params().doorbell);
  ++counters_.read_wrs;
  const std::uint64_t wr = next_wr_++;
  sq_acquire(peer, qp);
  if (peer_status_.find(peer) != peer_status_.end()) {
    sq_release(peer, qp);
    IbCompletion completion;
    completion.kind = IbCompletion::Kind::kRdmaRead;
    completion.peer = peer;
    completion.wr_id = wr;
    completion.ok = false;
    push_cqe(qp, completion);
    return wr;
  }
  pending_[wr] = PendingOp{peer, qp, IbCompletion::Kind::kRdmaRead, local, 0,
                           local.size()};
  Packet request;
  request.kind = Packet::Kind::kReadReq;
  request.src = rank_;
  request.dst = peer;
  request.qp = qp;
  request.wr = wr;
  request.key = rkey;
  request.offset = roffset;  // region-absolute source offset
  request.total = local.size();
  charge_dma(params().header_bytes);
  stage(std::move(request));
  arm_op_timeout(peer, wr);
  return wr;
}

void IbPort::arm_op_timeout(std::uint32_t peer, std::uint64_t wr) {
  network_->simulator_->post_after(params().op_timeout, [this, peer, wr] {
    auto it = pending_.find(wr);
    if (it == pending_.end()) return;  // completed in time
    if (peer_status_.find(peer) == peer_status_.end()) {
      fail_link(peer,
                Status(ErrorCode::kUnavailable,
                       "ib: work request give-up timer expired (link to "
                       "peer presumed dead)"));
      return;  // poison_peer flushed the WR in error
    }
    // The link was already declared dead but this WR slipped in after the
    // poison pass: flush it directly.
    const PendingOp op = it->second;
    pending_.erase(it);
    sq_release(op.peer, op.qp);
    IbCompletion completion;
    completion.kind = op.kind;
    completion.peer = op.peer;
    completion.wr_id = wr;
    completion.ok = false;
    push_cqe(op.qp, completion);
  });
}

void IbPort::tx_loop() {
  const IbParams& params = network_->params_;
  for (;;) {
    // HCA-originated responses (write acks, read data) first: they must
    // never queue behind host posts, or two rendezvous peers could
    // deadlock with full staging channels.
    if (!nic_tx_.empty()) {
      Packet packet = std::move(nic_tx_.front());
      nic_tx_.pop_front();
      if (packet.kind == Packet::Kind::kReadData) {
        // Read responses DMA out of pinned host memory on their way to
        // the wire.
        charge_dma(packet.data.size() + params.header_bytes);
      }
      const std::uint32_t dst = packet.dst;
      const std::uint64_t wire_bytes = packet.data.size() + params.header_bytes;
      network_->fabric_.ship(rank_, dst, std::move(packet), wire_bytes);
      continue;
    }
    if (auto staged = tx_stage_->try_receive()) {
      const Packet::Kind kind = staged->kind;
      const std::uint32_t dst = staged->dst;
      const std::uint32_t qp = staged->qp;
      const std::uint64_t wr = staged->wr;
      const std::uint64_t total = staged->total;
      const bool final_fragment =
          staged->offset + staged->data.size() >= staged->total;
      const std::uint64_t wire_bytes =
          staged->data.size() + params.header_bytes;
      network_->fabric_.ship(rank_, dst, std::move(*staged), wire_bytes);
      if (kind == Packet::Kind::kSend && final_fragment) {
        // The SQ slot frees once the last fragment has serialized; a
        // signaled send additionally raises its local CQE.
        sq_release(dst, qp);
        if (wr != 0) {
          IbCompletion completion;
          completion.kind = IbCompletion::Kind::kSend;
          completion.peer = dst;
          completion.wr_id = wr;
          completion.bytes = total;
          push_cqe(qp, completion);
        }
      }
      continue;
    }
    tx_work_->wait();
  }
}

void IbPort::rx_loop() {
  for (;;) {
    Packet packet = network_->fabric_.receive(rank_);
    handle_rx(packet);
  }
}

void IbPort::handle_rx(Packet& packet) {
  const IbParams& params = network_->params_;
  if (peer_status_.find(packet.src) != peer_status_.end()) {
    return;  // late arrival on a link already declared dead
  }
  switch (packet.kind) {
    case Packet::Kind::kSend: {
      charge_dma(packet.data.size() + params.header_bytes);
      QpState& state = qp_state(packet.src, packet.qp);
      MAD2_CHECK(!state.posted.empty(),
                 "IB send with no posted receive descriptor: the QP is "
                 "broken (the IbPmm's credit window must pre-post)");
      // Sends funnel through the peer's single tx fiber, so fragments and
      // messages arrive in order: the front descriptor is the filling one.
      RecvDescriptor& descriptor = state.posted.front();
      MAD2_CHECK(
          descriptor.buffer.size() >= packet.offset + packet.data.size(),
          "IB send overflows the posted receive descriptor");
      std::copy(packet.data.begin(), packet.data.end(),
                descriptor.buffer.begin() + packet.offset);
      descriptor.received += packet.data.size();
      if (descriptor.received >= packet.total) {
        IbCompletion completion;
        completion.kind = IbCompletion::Kind::kRecv;
        completion.peer = packet.src;
        completion.imm = packet.imm;
        completion.bytes = packet.total;
        completion.buffer = descriptor.buffer;
        state.posted.pop_front();
        push_cqe(packet.qp, completion);
      }
      break;
    }
    case Packet::Kind::kWriteData: {
      charge_dma(packet.data.size() + params.header_bytes);
      auto it = regions_.find(packet.key);
      MAD2_CHECK(it != regions_.end(),
                 "RDMA write against an unknown rkey (region freed or "
                 "never registered)");
      const IbMr& mr = it->second;
      MAD2_CHECK(packet.offset + packet.data.size() <= mr.bytes,
                 "RDMA write overflows the registered region");
      // The HCA lands bytes directly in the pinned region: no host
      // memcpy, no receive descriptor consumed, target CPU never runs.
      std::copy(packet.data.begin(), packet.data.end(),
                reinterpret_cast<std::byte*>(mr.base) + packet.offset);
      WriteLanding& landing = landings_[{packet.src, packet.wr}];
      landing.received += packet.data.size();
      if (landing.received >= packet.total) {
        landings_.erase({packet.src, packet.wr});
        if (packet.imm != 0) {
          IbCompletion completion;
          completion.kind = IbCompletion::Kind::kWriteImm;
          completion.peer = packet.src;
          completion.imm = packet.imm;
          completion.bytes = packet.total;
          push_cqe(packet.qp, completion);
        }
        Packet ack;
        ack.kind = Packet::Kind::kWriteAck;
        ack.src = rank_;
        ack.dst = packet.src;
        ack.qp = packet.qp;
        ack.wr = packet.wr;
        nic_tx_.push_back(std::move(ack));
        tx_work_->notify_all();
      }
      break;
    }
    case Packet::Kind::kWriteAck: {
      charge_dma(params.header_bytes);
      auto it = pending_.find(packet.wr);
      if (it == pending_.end()) break;  // already flushed in error
      const PendingOp op = it->second;
      pending_.erase(it);
      sq_release(op.peer, op.qp);
      IbCompletion completion;
      completion.kind = IbCompletion::Kind::kRdmaWrite;
      completion.peer = op.peer;
      completion.wr_id = packet.wr;
      completion.bytes = op.total;
      push_cqe(op.qp, completion);
      break;
    }
    case Packet::Kind::kReadReq: {
      charge_dma(params.header_bytes);
      auto it = regions_.find(packet.key);
      MAD2_CHECK(it != regions_.end(),
                 "RDMA read against an unknown rkey (region freed or "
                 "never registered)");
      const IbMr& mr = it->second;
      MAD2_CHECK(packet.offset + packet.total <= mr.bytes,
                 "RDMA read overruns the registered region");
      const auto* base =
          reinterpret_cast<const std::byte*>(mr.base) + packet.offset;
      std::uint64_t offset = 0;
      do {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(packet.total - offset, params.mtu);
        Packet response;
        response.kind = Packet::Kind::kReadData;
        response.src = rank_;
        response.dst = packet.src;
        response.qp = packet.qp;
        response.wr = packet.wr;
        response.offset = offset;  // op-relative
        response.total = packet.total;
        response.data.assign(base + offset, base + offset + chunk);
        nic_tx_.push_back(std::move(response));
        offset += chunk;
      } while (offset < packet.total);
      tx_work_->notify_all();
      break;
    }
    case Packet::Kind::kReadData: {
      charge_dma(packet.data.size() + params.header_bytes);
      auto it = pending_.find(packet.wr);
      if (it == pending_.end()) break;  // already flushed in error
      PendingOp& op = it->second;
      MAD2_CHECK(op.local.size() >= packet.offset + packet.data.size(),
                 "RDMA read response overflows the landing buffer");
      std::copy(packet.data.begin(), packet.data.end(),
                op.local.begin() + packet.offset);
      op.received += packet.data.size();
      if (op.received >= op.total) {
        const PendingOp done = op;
        pending_.erase(it);
        sq_release(done.peer, done.qp);
        IbCompletion completion;
        completion.kind = IbCompletion::Kind::kRdmaRead;
        completion.peer = done.peer;
        completion.wr_id = packet.wr;
        completion.bytes = done.total;
        push_cqe(done.qp, completion);
      }
      break;
    }
  }
}

std::optional<IbCompletion> IbPort::poll_cq(std::uint32_t qp) {
  Cq& queue = cq(qp);
  if (queue.cqes.empty()) return std::nullopt;  // empty polls are free
  IbCompletion completion = queue.cqes.front();
  queue.cqes.pop_front();
  ++counters_.cq_polls;
  node_->charge_cpu(params().cq_poll);
  return completion;
}

IbCompletion IbPort::wait_cq(std::uint32_t qp) {
  Cq& queue = cq(qp);
  while (queue.cqes.empty()) queue.wq->wait();
  IbCompletion completion = queue.cqes.front();
  queue.cqes.pop_front();
  ++counters_.cq_polls;
  node_->charge_cpu(params().cq_poll);
  return completion;
}

bool IbPort::cq_ready(std::uint32_t qp) const {
  auto it = cqs_.find(qp);
  return it != cqs_.end() && !it->second.cqes.empty();
}

void IbPort::set_cq_callback(std::uint32_t qp, std::function<void()> fn) {
  cq(qp).callback = std::move(fn);
}

std::size_t IbPort::outstanding(std::uint32_t peer, std::uint32_t qp) const {
  const QpState* state = qp_if_exists(peer, qp);
  return state == nullptr ? 0 : state->sq_outstanding;
}

std::size_t IbPort::posted_count(std::uint32_t peer, std::uint32_t qp) const {
  const QpState* state = qp_if_exists(peer, qp);
  return state == nullptr ? 0 : state->posted.size();
}

const Status& IbPort::link_status(std::uint32_t peer) const {
  auto it = peer_status_.find(peer);
  return it == peer_status_.end() ? ok_status_ : it->second;
}

void IbPort::fail_link(std::uint32_t peer, const Status& status) {
  if (peer_status_.find(peer) != peer_status_.end()) return;
  network_->report_link_failure(rank_, peer, status);
}

void IbPort::add_link_down_callback(
    std::function<void(std::uint32_t, const Status&)> fn) {
  link_down_callbacks_.push_back(std::move(fn));
}

void IbPort::poison_peer(std::uint32_t peer, const Status& status) {
  if (peer_status_.find(peer) != peer_status_.end()) return;
  peer_status_.emplace(peer, status);
  // Flush every outstanding remote-dependent WR toward the peer in error.
  std::vector<std::uint64_t> doomed;
  for (const auto& [wr, op] : pending_) {
    if (op.peer == peer) doomed.push_back(wr);
  }
  for (const std::uint64_t wr : doomed) {
    const PendingOp op = pending_[wr];
    pending_.erase(wr);
    sq_release(op.peer, op.qp);
    IbCompletion completion;
    completion.kind = op.kind;
    completion.peer = op.peer;
    completion.wr_id = wr;
    completion.ok = false;
    push_cqe(op.qp, completion);
  }
  // Wake SQ-slot waiters so blocked posters re-check the link status.
  for (auto& [key, state] : qps_) {
    if (static_cast<std::uint32_t>(key >> 32) == peer && state.sq_wq) {
      state.sq_wq->notify_all();
    }
  }
  // Last: tell the protocol modules, now that the flushed CQEs are
  // already queued (a callback that drains the CQ sees the final state).
  for (const auto& fn : link_down_callbacks_) fn(peer, status);
}

}  // namespace mad2::net
