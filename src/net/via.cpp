#include "net/via.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace mad2::net {

ViaParams ViaParams::generic_nic() {
  ViaParams p;
  p.fabric.name = "via";
  p.fabric.wire_mbs = 140.0;
  p.fabric.propagation = sim::from_us(0.8);
  p.fabric.per_packet = sim::from_us(0.5);
  p.fabric.wire_chunk_bytes = 4096;
  p.fabric.rx_slots = 128;
  return p;
}

ViaNetwork::ViaNetwork(sim::Simulator* simulator,
                       std::vector<hw::Node*> nodes, ViaParams params)
    : simulator_(simulator),
      params_(std::move(params)),
      fabric_(simulator, params_.fabric) {
  for (hw::Node* node : nodes) {
    const std::uint32_t rank = fabric_.add_port();
    ports_.emplace_back(new ViaPort(this, node, rank));
  }
}

ViaNetwork::~ViaNetwork() = default;

ViaPort::ViaPort(ViaNetwork* network, hw::Node* node, std::uint32_t rank)
    : network_(network), node_(node), rank_(rank) {
  any_completion_ = std::make_unique<sim::WaitQueue>(network_->simulator_);
  tx_stage_ = std::make_unique<sim::BoundedChannel<Packet>>(
      network_->simulator_, network_->params_.tx_stage_depth);
  network_->simulator_->spawn_daemon(
      "via.tx." + std::to_string(rank), [this] { tx_loop(); });
  network_->simulator_->spawn_daemon(
      "via.rx." + std::to_string(rank), [this] { rx_loop(); });
}

ViaPort::ViState& ViaPort::vi_state(std::uint32_t peer, std::uint32_t vi) {
  const std::uint64_t key = (static_cast<std::uint64_t>(peer) << 32) | vi;
  ViState& state = vis_[key];
  if (!state.completion) {
    state.completion =
        std::make_unique<sim::WaitQueue>(network_->simulator_);
  }
  return state;
}

const ViaPort::ViState* ViaPort::vi_if_exists(std::uint32_t peer,
                                              std::uint32_t vi) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(peer) << 32) | vi;
  auto it = vis_.find(key);
  return it == vis_.end() ? nullptr : &it->second;
}

ViaMemoryHandle ViaPort::register_memory(
    std::span<const std::byte> region) {
  const ViaParams& params = network_->params_;
  const std::uint64_t pages =
      (region.size() + params.page_bytes - 1) / params.page_bytes;
  node_->charge_cpu(params.register_base +
                    static_cast<sim::Duration>(pages) *
                        params.register_per_page);
  return ViaMemoryHandle{next_handle_++};
}

void ViaPort::deregister(ViaMemoryHandle handle) {
  MAD2_CHECK(handle.id != 0 && handle.id < next_handle_,
             "deregister of unknown handle");
  node_->charge_cpu(network_->params_.register_base / 2);
}

void ViaPort::post_recv(std::uint32_t peer, std::span<std::byte> buffer,
                        std::uint32_t vi) {
  vi_state(peer, vi).posted.push_back(Descriptor{buffer, 0, false, 0});
}

void ViaPort::send(std::uint32_t peer, std::span<const std::byte> data,
                   std::uint32_t vi) {
  const ViaParams& params = network_->params_;
  node_->charge_cpu(params.doorbell);
  const std::uint64_t total = data.size();
  std::uint64_t offset = 0;
  do {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(total - offset, params.mtu);
    // NIC pulls descriptor data from registered host memory.
    node_->pci_bus().transfer(chunk + params.header_bytes,
                              node_->params().pci_dma_mbs, hw::TxClass::kDma,
                              node_->nic_initiator_id(3));
    Packet packet;
    packet.src = rank_;
    packet.dst = peer;
    packet.vi = vi;
    packet.offset = offset;
    packet.total_len = total;
    packet.data.assign(data.begin() + offset, data.begin() + offset + chunk);
    tx_stage_->send(std::move(packet));
    offset += chunk;
  } while (offset < total);
}

void ViaPort::tx_loop() {
  for (;;) {
    auto packet = tx_stage_->receive();
    if (!packet.has_value()) return;
    const std::uint32_t dst = packet->dst;
    const std::uint64_t wire_bytes =
        packet->data.size() + network_->params_.header_bytes;
    network_->fabric_.ship(rank_, dst, std::move(*packet), wire_bytes);
  }
}

void ViaPort::rx_loop() {
  for (;;) {
    Packet packet = network_->fabric_.receive(rank_);
    node_->pci_bus().transfer(
        packet.data.size() + network_->params_.header_bytes,
        node_->params().pci_dma_mbs, hw::TxClass::kDma,
        node_->nic_initiator_id(3));
    ViState& state = vi_state(packet.src, packet.vi);
    Descriptor* descriptor = nullptr;
    for (Descriptor& candidate : state.posted) {
      if (!candidate.complete) {
        descriptor = &candidate;
        break;
      }
    }
    MAD2_CHECK(descriptor != nullptr,
               "VIA send with no posted receive descriptor: the VI is "
               "broken (Madeleine's VIA TM must pre-post or rendezvous)");
    MAD2_CHECK(
        descriptor->buffer.size() >= packet.offset + packet.data.size(),
        "VIA send overflows the posted receive descriptor");
    std::copy(packet.data.begin(), packet.data.end(),
              descriptor->buffer.begin() + packet.offset);
    descriptor->received += packet.data.size();
    if (descriptor->received >= packet.total_len) {
      descriptor->complete = true;
      descriptor->bytes = packet.total_len;
      state.completion->notify_all();
      any_completion_->notify_all();
    }
  }
}

ViaRecvCompletion ViaPort::wait_recv(std::uint32_t peer, std::uint32_t vi) {
  ViState& state = vi_state(peer, vi);
  MAD2_CHECK(!state.posted.empty(), "wait_recv with nothing posted");
  while (!state.posted.front().complete) state.completion->wait();
  Descriptor descriptor = state.posted.front();
  state.posted.pop_front();
  node_->charge_cpu(network_->params_.completion);
  return ViaRecvCompletion{descriptor.buffer, descriptor.bytes};
}

bool ViaPort::recv_ready(std::uint32_t peer, std::uint32_t vi) const {
  const ViState* state = vi_if_exists(peer, vi);
  return state != nullptr && !state->posted.empty() &&
         state->posted.front().complete;
}

std::size_t ViaPort::posted_count(std::uint32_t peer,
                                  std::uint32_t vi) const {
  const ViState* state = vi_if_exists(peer, vi);
  return state == nullptr ? 0 : state->posted.size();
}

void ViaPort::wait_any(const std::function<bool()>& pred) {
  while (!pred()) any_completion_->wait();
}

}  // namespace mad2::net
