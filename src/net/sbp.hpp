// SBP over simulated Fast Ethernet.
//
// SBP (Russell & Hatcher, "Efficient kernel support for reliable
// communication", SAC '98 — the paper's reference [14]) is the Section 6.1
// example of a protocol where *all* data must be written into specific
// preallocated buffers before being sent: there is no long-message /
// zero-copy path at all. Kernel-managed fixed-size buffer pools exist on
// both sides; senders acquire a tx buffer, fill it, and hand it back to
// the kernel; receivers get filled kernel buffers and must release them.
//
// Madeleine's SBP protocol module therefore runs everything through the
// static-copy BMM, and a gateway bridging two SBP-like networks pays the
// unavoidable extra copy the paper describes ("one extra copy cannot be
// avoided when both networks require static buffers").
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hw/node.hpp"
#include "net/wire.hpp"
#include "sim/sync.hpp"
#include "util/status.hpp"

namespace mad2::net {

struct SbpParams {
  std::uint32_t buffer_bytes = 4096;  // fixed kernel buffer size
  std::size_t tx_pool = 16;           // kernel tx buffers per port
  std::size_t rx_pool = 64;           // kernel rx buffers per port
  std::uint32_t header_bytes = 24;    // kernel framing
  sim::Duration send_cost = sim::from_us(6.0);  // lean kernel path
  sim::Duration recv_cost = sim::from_us(6.0);
  FabricParams fabric;

  static SbpParams fast_ethernet();
};

class SbpPort;

class SbpNetwork {
 public:
  SbpNetwork(sim::Simulator* simulator, std::vector<hw::Node*> nodes,
             SbpParams params);
  ~SbpNetwork();

  [[nodiscard]] std::size_t size() const { return ports_.size(); }
  [[nodiscard]] SbpPort& port(std::uint32_t rank) { return *ports_[rank]; }
  [[nodiscard]] const SbpParams& params() const { return params_; }

 private:
  friend class SbpPort;
  struct Packet {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t tag;
    std::vector<std::byte> data;
  };

  sim::Simulator* simulator_;
  SbpParams params_;
  PacketFabric<Packet> fabric_;
  std::vector<std::unique_ptr<SbpPort>> ports_;
};

/// A kernel tx buffer on loan to the application.
struct SbpTxBuffer {
  std::span<std::byte> memory;  // capacity buffer_bytes
  std::uint64_t handle = 0;
};

/// A filled kernel rx buffer on loan to the application.
struct SbpRxBuffer {
  std::uint32_t src = 0;
  std::uint32_t tag = 0;
  std::span<const std::byte> data;
  std::uint64_t handle = 0;
};

class SbpPort {
 public:
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] hw::Node& node() { return *node_; }

  /// Borrow an empty kernel tx buffer; blocks while the pool is empty.
  SbpTxBuffer acquire_tx_buffer();

  /// Transmit `used` bytes of a borrowed tx buffer to (dst, tag). The
  /// buffer returns to the kernel pool once the NIC has consumed it.
  /// The receiver must have a free rx buffer (overflow is a protocol
  /// error — Madeleine's SBP TM runs credits on top, like BIP-short).
  void send(std::uint32_t dst, std::uint32_t tag, SbpTxBuffer buffer,
            std::size_t used);

  /// Blocking: the next filled rx buffer on `tag` (any source).
  SbpRxBuffer recv(std::uint32_t tag);
  void release(const SbpRxBuffer& buffer);

  [[nodiscard]] bool pending(std::uint32_t tag) const;

  /// Block until a buffer is queued on any of `tags`; returns that tag.
  std::uint32_t wait_multi(const std::vector<std::uint32_t>& tags);

 private:
  friend class SbpNetwork;
  using Packet = SbpNetwork::Packet;

  SbpPort(SbpNetwork* network, hw::Node* node, std::uint32_t rank);

  void rx_loop();

  struct TagQueue {
    std::deque<SbpRxBuffer> entries;
    std::unique_ptr<sim::WaitQueue> arrival;
  };
  TagQueue& tag_queue(std::uint32_t tag);

  SbpNetwork* network_;
  hw::Node* node_;
  std::uint32_t rank_;
  // Kernel tx pool: reusable buffers + availability gate.
  std::vector<std::vector<std::byte>> tx_buffers_;
  std::vector<std::size_t> tx_free_;
  std::unique_ptr<sim::Semaphore> tx_available_;
  // Rx side: filled buffers parked until release().
  std::map<std::uint64_t, std::vector<std::byte>> rx_parked_;
  std::size_t rx_in_use_ = 0;
  std::map<std::uint32_t, TagQueue> tag_queues_;
  std::unique_ptr<sim::WaitQueue> any_arrival_;
  std::uint64_t next_handle_ = 1;
};

}  // namespace mad2::net
