#include "net/sbp.hpp"

namespace mad2::net {

SbpParams SbpParams::fast_ethernet() {
  SbpParams p;
  p.fabric.name = "sbp";
  p.fabric.wire_mbs = 12.5;  // 100 Mb/s
  p.fabric.propagation = sim::from_us(12.0);  // lean kernel interrupt path
  p.fabric.per_packet = sim::from_us(1.0);
  p.fabric.wire_chunk_bytes = 1518;
  p.fabric.rx_slots = 128;
  return p;
}

SbpNetwork::SbpNetwork(sim::Simulator* simulator,
                       std::vector<hw::Node*> nodes, SbpParams params)
    : simulator_(simulator),
      params_(std::move(params)),
      fabric_(simulator, params_.fabric) {
  for (hw::Node* node : nodes) {
    const std::uint32_t rank = fabric_.add_port();
    ports_.emplace_back(new SbpPort(this, node, rank));
  }
}

SbpNetwork::~SbpNetwork() = default;

SbpPort::SbpPort(SbpNetwork* network, hw::Node* node, std::uint32_t rank)
    : network_(network), node_(node), rank_(rank) {
  const SbpParams& params = network_->params_;
  tx_buffers_.resize(params.tx_pool);
  for (std::size_t i = 0; i < params.tx_pool; ++i) {
    tx_buffers_[i].resize(params.buffer_bytes);
    tx_free_.push_back(i);
  }
  tx_available_ =
      std::make_unique<sim::Semaphore>(network_->simulator_, params.tx_pool);
  any_arrival_ = std::make_unique<sim::WaitQueue>(network_->simulator_);
  network_->simulator_->spawn_daemon(
      "sbp.rx." + std::to_string(rank), [this] { rx_loop(); });
}

SbpPort::TagQueue& SbpPort::tag_queue(std::uint32_t tag) {
  TagQueue& queue = tag_queues_[tag];
  if (!queue.arrival) {
    queue.arrival = std::make_unique<sim::WaitQueue>(network_->simulator_);
  }
  return queue;
}

SbpTxBuffer SbpPort::acquire_tx_buffer() {
  tx_available_->acquire();
  MAD2_CHECK(!tx_free_.empty(), "SBP tx pool accounting broken");
  const std::size_t index = tx_free_.back();
  tx_free_.pop_back();
  return SbpTxBuffer{std::span<std::byte>(tx_buffers_[index]), index + 1};
}

void SbpPort::send(std::uint32_t dst, std::uint32_t tag, SbpTxBuffer buffer,
                   std::size_t used) {
  MAD2_CHECK(buffer.handle != 0, "send with an unacquired tx buffer");
  MAD2_CHECK(used <= buffer.memory.size(), "tx buffer overfilled");
  const SbpParams& params = network_->params_;
  node_->charge_cpu(params.send_cost);

  Packet packet;
  packet.src = rank_;
  packet.dst = dst;
  packet.tag = tag;
  packet.data.assign(buffer.memory.begin(), buffer.memory.begin() + used);
  // The NIC pulls the kernel buffer over the bus, after which it returns
  // to the pool.
  node_->pci_bus().transfer(used + params.header_bytes,
                            node_->params().pci_dma_mbs, hw::TxClass::kDma,
                            node_->nic_initiator_id(4));
  network_->fabric_.ship(rank_, dst, std::move(packet),
                         used + params.header_bytes);
  tx_free_.push_back(buffer.handle - 1);
  tx_available_->release();
}

void SbpPort::rx_loop() {
  const SbpParams& params = network_->params_;
  for (;;) {
    Packet packet = network_->fabric_.receive(rank_);
    node_->pci_bus().transfer(packet.data.size() + params.header_bytes,
                              node_->params().pci_dma_mbs, hw::TxClass::kDma,
                              node_->nic_initiator_id(4));
    MAD2_CHECK(rx_in_use_ < params.rx_pool,
               "SBP rx buffer pool overflow: missing flow control "
               "(Madeleine's SBP TM must run credits on top)");
    ++rx_in_use_;
    const std::uint64_t handle = next_handle_++;
    auto [it, inserted] = rx_parked_.emplace(handle, std::move(packet.data));
    MAD2_CHECK(inserted, "duplicate SBP rx handle");
    SbpRxBuffer buffer;
    buffer.src = packet.src;
    buffer.tag = packet.tag;
    buffer.data = std::span<const std::byte>(it->second);
    buffer.handle = handle;
    TagQueue& queue = tag_queue(packet.tag);
    queue.entries.push_back(buffer);
    queue.arrival->notify_all();
    any_arrival_->notify_all();
  }
}

SbpRxBuffer SbpPort::recv(std::uint32_t tag) {
  TagQueue& queue = tag_queue(tag);
  while (queue.entries.empty()) queue.arrival->wait();
  SbpRxBuffer buffer = queue.entries.front();
  queue.entries.pop_front();
  node_->charge_cpu(network_->params_.recv_cost);
  return buffer;
}

void SbpPort::release(const SbpRxBuffer& buffer) {
  const auto erased = rx_parked_.erase(buffer.handle);
  MAD2_CHECK(erased == 1, "release of unknown SBP rx buffer");
  MAD2_CHECK(rx_in_use_ > 0, "SBP rx accounting underflow");
  --rx_in_use_;
}

bool SbpPort::pending(std::uint32_t tag) const {
  auto it = tag_queues_.find(tag);
  return it != tag_queues_.end() && !it->second.entries.empty();
}

std::uint32_t SbpPort::wait_multi(const std::vector<std::uint32_t>& tags) {
  MAD2_CHECK(!tags.empty(), "wait_multi with no tags");
  for (;;) {
    for (std::uint32_t tag : tags) {
      if (pending(tag)) return tag;
    }
    any_arrival_->wait();
  }
}

}  // namespace mad2::net
