// BIP (Basic Interface for Parallelism) over a simulated Myrinet fabric.
//
// Faithful to the semantics the paper relies on (Prylli & Tourancheau,
// PC-NOW '98):
//  - short messages (< 1 kB) are buffered into a finite pool of internal
//    receive buffers; the receiver does not participate. Overflowing the
//    pool is a protocol error (real BIP: undefined behaviour) — Madeleine's
//    short TM must implement credit-based flow control on top.
//  - long messages are delivered directly to their final location with no
//    intermediate copy, but the receive MUST be posted before data arrives
//    (real BIP: strict sender/receiver synchronization) — Madeleine's long
//    TM implements the receiver-acknowledgment rendezvous on top.
//
// Calibration (Section 5.2.2): raw one-way latency ~5 us, asymptotic
// bandwidth ~126 MB/s (LANai 4.3, 32-bit PCI).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hw/node.hpp"
#include "net/wire.hpp"
#include "sim/sync.hpp"
#include "util/status.hpp"

namespace mad2::net {

struct BipParams {
  /// Messages up to this size may use the short path (paper: < 1 kB).
  std::uint32_t short_max_bytes = 1024;
  /// NIC-level fragmentation of long messages.
  std::uint32_t long_mtu = 4096;
  /// Internal short-message buffers per tag; overflow aborts (see above).
  std::size_t short_host_slots = 64;
  /// NIC staging depth in packets (overlap host DMA with the wire).
  std::size_t tx_stage_depth = 4;
  /// Per-packet header on the wire.
  std::uint32_t header_bytes = 16;
  sim::Duration tx_overhead = sim::from_us(1.5);  // host send entry cost
  sim::Duration rx_overhead = sim::from_us(1.0);  // host recv exit cost
  /// Fixed cost of the long-message path, each side: buffer pinning, NIC
  /// rendezvous programming, and the strict sender/receiver
  /// synchronization BIP requires. This is what makes the paper's
  /// Madeleine/BIP curve sit at ~250 us for 16 kB (~60 MB/s) while still
  /// reaching 122 MB/s asymptotically — and what keeps SCI ahead of
  /// Myrinet below the ~16 kB crossover (Section 6.2.1).
  sim::Duration long_setup = sim::from_us(55.0);
  FabricParams fabric;

  /// Myrinet with LANai 4.3 NICs (the paper's testbed).
  static BipParams myrinet_lanai43();
};

class BipPort;

/// One Myrinet network instance: a fabric plus one BipPort per node.
class BipNetwork {
 public:
  BipNetwork(sim::Simulator* simulator, std::vector<hw::Node*> nodes,
             BipParams params);
  ~BipNetwork();

  [[nodiscard]] std::size_t size() const { return ports_.size(); }
  [[nodiscard]] BipPort& port(std::uint32_t rank) { return *ports_[rank]; }
  [[nodiscard]] const BipParams& params() const { return params_; }

 private:
  friend class BipPort;

  enum class PacketKind : std::uint8_t { kShort, kLongChunk };
  struct Packet {
    PacketKind kind;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t tag;
    std::uint64_t offset;     // long chunks: position in the message
    std::uint64_t total_len;  // long chunks: full message length
    std::vector<std::byte> data;
  };

  sim::Simulator* simulator_;
  BipParams params_;
  PacketFabric<Packet> fabric_;
  std::vector<std::unique_ptr<BipPort>> ports_;
};

/// A zero-copy view of a received short message, backed by one of BIP's
/// internal buffers. Must be released to free the buffer slot.
struct BipShortSlot {
  std::uint32_t src = 0;
  std::uint32_t tag = 0;
  std::span<const std::byte> data;
  std::uint64_t slot_id = 0;  // opaque, for release
};

class BipPort {
 public:
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] hw::Node& node() { return *node_; }

  // --- Short messages -----------------------------------------------------
  /// Send `data` (<= short_max_bytes) to `dst` on `tag`. Returns when the
  /// host buffer is reusable. The receiver must have an internal buffer
  /// available (Madeleine's credit TM guarantees this).
  void send_short(std::uint32_t dst, std::uint32_t tag,
                  std::span<const std::byte> data);

  /// Blocking: dequeue the next short message on `tag` (any source),
  /// zero-copy. Call release_short() when done with the buffer.
  BipShortSlot recv_short(std::uint32_t tag);
  void release_short(const BipShortSlot& slot);

  /// Convenience: blocking receive with copy-out. Returns byte count.
  std::size_t recv_short_copy(std::uint32_t tag, std::span<std::byte> out,
                              std::uint32_t* src = nullptr);

  /// True if a short message on `tag` is already queued.
  [[nodiscard]] bool short_pending(std::uint32_t tag) const;

  /// Block until a short message on `tag` is queued; returns the source of
  /// the head message without consuming it.
  std::uint32_t wait_short(std::uint32_t tag);

  /// Block until a short message is queued on any of `tags`; returns the
  /// tag whose queue is non-empty (lowest index wins on ties). Does not
  /// consume anything.
  std::uint32_t wait_short_multi(const std::vector<std::uint32_t>& tags);

  // --- Long messages -------------------------------------------------------
  /// Post a receive: incoming long data from (src, tag) lands directly in
  /// `out` (zero-copy). Multiple posts on the same (src, tag) queue up.
  void post_recv_long(std::uint32_t src, std::uint32_t tag,
                      std::span<std::byte> out);

  /// Block until the oldest incomplete posted receive on (src, tag) that
  /// was posted before this call has fully arrived.
  void wait_recv_long(std::uint32_t src, std::uint32_t tag);

  /// Send a long message. The receive MUST already be posted when data
  /// arrives; a chunk with no posted receive aborts (protocol error).
  /// Returns when the host buffer is reusable.
  void send_long(std::uint32_t dst, std::uint32_t tag,
                 std::span<const std::byte> data);

 private:
  friend class BipNetwork;
  using Packet = BipNetwork::Packet;

  BipPort(BipNetwork* network, hw::Node* node, std::uint32_t rank);

  void stage_packet(Packet packet);  // host DMA + hand to the tx fiber
  void tx_loop();
  void rx_loop();
  void handle_short(Packet packet);
  void handle_long_chunk(Packet packet);

  struct ShortQueueEntry {
    std::uint32_t src;
    std::vector<std::byte> data;
    std::uint64_t slot_id;
  };
  struct TagQueue {
    std::deque<ShortQueueEntry> entries;
    std::unique_ptr<sim::WaitQueue> arrival;
  };
  struct PostedRecv {
    std::span<std::byte> out;
    std::uint64_t received = 0;
    bool complete = false;
  };
  struct PostedQueue {
    std::deque<PostedRecv> posts;
    std::unique_ptr<sim::WaitQueue> completion;
  };

  TagQueue& tag_queue(std::uint32_t tag);
  PostedQueue& posted_queue(std::uint32_t src, std::uint32_t tag);

  BipNetwork* network_;
  hw::Node* node_;
  std::uint32_t rank_;
  std::unique_ptr<sim::BoundedChannel<Packet>> tx_stage_;
  std::map<std::uint32_t, TagQueue> short_queues_;
  std::map<std::uint64_t, PostedQueue> posted_;  // key: src << 32 | tag
  std::map<std::uint64_t, std::vector<std::byte>> checked_out_;
  std::unique_ptr<sim::WaitQueue> any_short_arrival_;
  std::size_t short_slots_in_use_ = 0;
  std::uint64_t next_slot_id_ = 1;
};

}  // namespace mad2::net
