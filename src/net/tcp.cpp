#include "net/tcp.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace mad2::net {

TcpParams TcpParams::fast_ethernet() {
  TcpParams p;
  p.fabric.name = "ethernet";
  p.fabric.wire_mbs = 12.5;  // 100 Mb/s
  p.fabric.propagation = sim::from_us(25.0);  // switch + NIC interrupt path
  p.fabric.per_packet = sim::from_us(2.0);    // driver per-frame cost
  p.fabric.wire_chunk_bytes = 1518;
  p.fabric.rx_slots = 256;
  // A 32-frame window of full-MSS frames serializes in ~3.9 ms at
  // 12.5 MB/s, so the retransmit clock must sit above that or every
  // queued frame would "time out" while merely waiting for the wire.
  p.reliability.rto_initial = sim::from_us(3000.0);
  p.reliability.rto_max = sim::from_us(50000.0);
  p.reliability.header_bytes = p.frame_overhead + 21;  // + shim header
  return p;
}

TcpNetwork::TcpNetwork(sim::Simulator* simulator,
                       std::vector<hw::Node*> nodes, TcpParams params)
    : simulator_(simulator),
      params_(std::move(params)),
      fabric_(simulator, params_.fabric) {
  if (params_.fabric.faults != nullptr) {
    // Lossy wire: frames travel via the reliable shim's own fabric; the
    // raw one stays empty (no ports) and injects no faults.
    reliable_ = std::make_unique<ReliableNetwork>(
        simulator, params_.fabric, params_.reliability);
    reliable_->set_link_error_handler(
        [this](std::uint32_t rank, std::uint32_t peer,
               const Status& status) { on_link_failed(rank, peer, status); });
  }
  for (hw::Node* node : nodes) {
    const std::uint32_t rank =
        reliable_ ? reliable_->add_port() : fabric_.add_port();
    ports_.emplace_back(new TcpPort(this, node, rank));
  }
}

TcpNetwork::~TcpNetwork() = default;

void TcpNetwork::set_error_handler(
    std::function<void(const Status&)> handler) {
  error_handler_ = std::move(handler);
}

void TcpNetwork::set_link_error_handler(
    std::function<void(std::uint32_t, std::uint32_t, const Status&)>
        handler) {
  link_error_handler_ = std::move(handler);
}

void TcpNetwork::on_link_failed(std::uint32_t a, std::uint32_t b,
                                const Status& status) {
  // Endpoint `a` gave up, so nothing it sends reaches anyone and its rx
  // pump is winding down: poison all of a's streams, plus every stream
  // pointed at a from the other ports. Streams between unaffected pairs
  // keep working.
  for (auto& port : ports_) {
    for (auto& [key, stream] : port->streams_) {
      if (port->rank_ == a || stream->peer() == a) stream->fail(status);
    }
  }
  if (link_error_handler_) {
    link_error_handler_(a, b, status);
    return;
  }
  if (error_handler_) error_handler_(status);
}

// -------------------------------------------------------------- TcpPort ---

TcpPort::TcpPort(TcpNetwork* network, hw::Node* node, std::uint32_t rank)
    : network_(network), node_(node), rank_(rank) {
  any_frame_ = std::make_unique<sim::WaitQueue>(network_->simulator_);
  network_->simulator_->spawn_daemon(
      "tcp.rx." + std::to_string(rank), [this] { rx_loop(); });
}

void TcpPort::wait_any(const std::function<bool()>& pred) {
  while (!pred()) any_frame_->wait();
}

TcpStream& TcpPort::stream(std::uint32_t peer, std::uint32_t stream_id) {
  MAD2_CHECK(peer < network_->size(), "stream to unknown peer");
  const std::uint64_t key =
      (static_cast<std::uint64_t>(peer) << 32) | stream_id;
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_
             .emplace(key, std::unique_ptr<TcpStream>(
                               new TcpStream(this, peer, stream_id)))
             .first;
  }
  return *it->second;
}

void TcpPort::rx_loop() {
  if (network_->reliable_) {
    ReliableEndpoint& endpoint = network_->reliable_->endpoint(rank_);
    for (;;) {
      ReliableEndpoint::Message message;
      if (!endpoint.recv(message).is_ok()) {
        // Link declared dead; the error handler has fired. Blocked stream
        // readers stay parked until the session tears the simulation down.
        return;
      }
      node_->pci_bus().transfer(
          message.payload.size() + network_->params_.frame_overhead,
          node_->params().pci_dma_mbs, hw::TxClass::kDma,
          node_->nic_initiator_id(2));
      stream(message.src, message.channel)
          .on_frame(std::move(message.payload));
      any_frame_->notify_all();
    }
  }
  for (;;) {
    TcpNetwork::Packet packet = network_->fabric_.receive(rank_);
    // NIC DMA into kernel memory.
    node_->pci_bus().transfer(
        packet.data.size() + network_->params_.frame_overhead,
        node_->params().pci_dma_mbs, hw::TxClass::kDma,
        node_->nic_initiator_id(2));
    stream(packet.src, packet.stream).on_frame(std::move(packet.data));
    any_frame_->notify_all();
  }
}

// ------------------------------------------------------------ TcpStream ---

TcpStream::TcpStream(TcpPort* port, std::uint32_t peer,
                     std::uint32_t stream_id)
    : port_(port), peer_(peer), stream_id_(stream_id) {
  sim::Simulator* simulator = port_->network_->simulator_;
  tx_room_ = std::make_unique<sim::WaitQueue>(simulator);
  tx_data_ = std::make_unique<sim::WaitQueue>(simulator);
  rx_data_ = std::make_unique<sim::WaitQueue>(simulator);
  simulator->spawn_daemon("tcp.stream." + std::to_string(port_->rank_) +
                              "->" + std::to_string(peer_) + "." +
                              std::to_string(stream_id_),
                          [this] { tx_loop(); });
}

// Blocks until no other fiber is inside enqueue_tx() on this stream, then
// claims the writer turn for the scope. tx_room_ doubles as the turn wait
// queue: both room and turn waiters re-check their condition in a loop, so
// sharing wakeups is safe.
struct TcpStream::TxWriter {
  explicit TxWriter(TcpStream& stream) : stream_(stream) {
    while (stream_.tx_writing_) stream_.tx_room_->wait();
    stream_.tx_writing_ = true;
  }
  ~TxWriter() {
    stream_.tx_writing_ = false;
    stream_.tx_room_->notify_all();
  }
  TxWriter(const TxWriter&) = delete;
  TxWriter& operator=(const TxWriter&) = delete;
  TcpStream& stream_;
};

void TcpStream::send(std::span<const std::byte> data) {
  TxWriter writer(*this);
  // Re-check pending under the writer turn: a tick's flush may have been
  // in flight when we arrived, and more bytes may have been staged while
  // we waited for it. Flushing here keeps byte order.
  flush_pending_locked();
  const TcpParams& params = port_->network_->params_;
  port_->node_->charge_cpu(params.send_syscall);
  enqueue_tx(data);
}

void TcpStream::send_deferred(std::span<const std::byte> data) {
  // One user-space staging copy; the kernel crossing waits for the batch.
  // No writer turn needed: pending_ is only drained under the turn, and
  // appending never touches tx_buffer_.
  port_->node_->charge_memcpy(data.size());
  pending_.insert(pending_.end(), data.begin(), data.end());
}

void TcpStream::flush_pending() {
  if (pending_.empty()) return;
  TxWriter writer(*this);
  flush_pending_locked();
}

void TcpStream::flush_pending_locked() {
  if (pending_.empty()) return;
  const TcpParams& params = port_->network_->params_;
  port_->node_->charge_cpu(params.send_syscall);
  // Swap out the batch before enqueueing: enqueue_tx can block on socket-
  // buffer room, and a fiber staging more bytes meanwhile must land them
  // in the *next* batch, not a vector being iterated. Swapping with the
  // (empty, capacitated) flush buffer keeps both capacities alive, so
  // steady-state batches allocate nothing.
  pending_.swap(pending_flushing_);
  enqueue_tx(pending_flushing_);
  pending_flushing_.clear();
}

void TcpStream::enqueue_tx(std::span<const std::byte> data) {
  const TcpParams& params = port_->network_->params_;
  // Kernel copies user data into the socket buffer (checksum + copy).
  std::size_t done = 0;
  while (done < data.size()) {
    while (failed_.is_ok() && tx_buffer_.size() >= params.socket_buffer) {
      tx_room_->wait();
    }
    // A poisoned stream black-holes the remaining bytes instead of
    // parking forever with the socket buffer full: resilient sessions
    // keep running after a link death, and a sender wedged inside send()
    // would hold its flow's send mutex across the failover (the replay
    // machinery redelivers whatever the dead link swallowed).
    if (!failed_.is_ok()) return;
    const std::size_t room = params.socket_buffer - tx_buffer_.size();
    const std::size_t chunk = std::min(room, data.size() - done);
    port_->node_->charge_memcpy(chunk);
    tx_buffer_.insert(tx_buffer_.end(), data.begin() + done,
                      data.begin() + done + chunk);
    done += chunk;
    tx_data_->notify_all();
  }
}

void TcpStream::tx_loop() {
  const TcpParams& params = port_->network_->params_;
  ReliableNetwork* reliable = port_->network_->reliable_.get();
  for (;;) {
    while (tx_buffer_.empty()) tx_data_->wait();
    const std::size_t chunk =
        std::min<std::size_t>(tx_buffer_.size(), params.mss);
    std::vector<std::byte> data(tx_buffer_.begin(),
                                tx_buffer_.begin() + chunk);
    tx_buffer_.erase(tx_buffer_.begin(), tx_buffer_.begin() + chunk);
    tx_room_->notify_all();
    // NIC pulls the frame from kernel memory, then it goes on the wire.
    port_->node_->pci_bus().transfer(
        chunk + params.frame_overhead, port_->node_->params().pci_dma_mbs,
        hw::TxClass::kDma, port_->node_->nic_initiator_id(2));
    if (reliable != nullptr) {
      if (!reliable->endpoint(port_->rank_)
               .send(peer_, stream_id_, std::move(data))
               .is_ok()) {
        // Link declared dead (error handler has fired); stop transmitting.
        return;
      }
      continue;
    }
    TcpNetwork::Packet packet;
    packet.src = port_->rank_;
    packet.stream = stream_id_;
    packet.data = std::move(data);
    port_->network_->fabric_.ship(port_->rank_, peer_, std::move(packet),
                                  chunk + params.frame_overhead);
  }
}

void TcpStream::on_frame(std::vector<std::byte> data) {
  rx_buffer_.insert(rx_buffer_.end(), data.begin(), data.end());
  rx_data_->notify_all();
}

void TcpStream::recv(std::span<std::byte> out) {
  const TcpParams& params = port_->network_->params_;
  if (!fast_) port_->node_->charge_cpu(params.recv_syscall);
  std::size_t done = 0;
  while (done < out.size()) {
    while (rx_buffer_.empty() && failed_.is_ok()) rx_data_->wait();
    // Poisoned and drained: the rest of this message is gone. Zero-fill
    // and return — the mirror of send()'s black-hole — so a reader parked
    // mid-message completes and releases whatever buffers it holds
    // instead of pinning them forever (resilient sessions keep running
    // after a link death and discard the truncated packet downstream).
    // recv_some()/wait_readable() keep ignoring the poison on purpose:
    // the rail drain relies on reading already-delivered bytes from a
    // failed stream (see RailSet::drain_segment).
    if (rx_buffer_.empty()) {
      std::fill(out.begin() + done, out.end(), std::byte{0});
      // The staged drain is void along with the stream: bytes arriving
      // after this point must charge their own recv syscall.
      rx_staged_ = 0;
      return;
    }
    // Fastpath: one syscall drains everything the kernel has buffered;
    // reads served out of that staged drain are user-space copies only.
    if (fast_ && rx_staged_ == 0) {
      port_->node_->charge_cpu(params.recv_syscall);
      rx_staged_ = rx_buffer_.size();
    }
    std::size_t chunk = std::min(rx_buffer_.size(), out.size() - done);
    if (fast_) chunk = std::min(chunk, rx_staged_);
    port_->node_->charge_memcpy(chunk);
    std::copy(rx_buffer_.begin(), rx_buffer_.begin() + chunk,
              out.begin() + done);
    rx_buffer_.erase(rx_buffer_.begin(), rx_buffer_.begin() + chunk);
    if (fast_) rx_staged_ -= chunk;
    done += chunk;
  }
}

std::size_t TcpStream::recv_some(std::span<std::byte> out) {
  const TcpParams& params = port_->network_->params_;
  if (!fast_) port_->node_->charge_cpu(params.recv_syscall);
  while (rx_buffer_.empty()) rx_data_->wait();
  if (fast_ && rx_staged_ == 0) {
    port_->node_->charge_cpu(params.recv_syscall);
    rx_staged_ = rx_buffer_.size();
  }
  std::size_t chunk = std::min(rx_buffer_.size(), out.size());
  if (fast_) chunk = std::min(chunk, rx_staged_);
  port_->node_->charge_memcpy(chunk);
  std::copy(rx_buffer_.begin(), rx_buffer_.begin() + chunk, out.begin());
  rx_buffer_.erase(rx_buffer_.begin(), rx_buffer_.begin() + chunk);
  if (fast_) rx_staged_ -= chunk;
  return chunk;
}

void TcpStream::wait_readable() {
  while (rx_buffer_.empty()) rx_data_->wait();
}

void TcpStream::fail(const Status& status) {
  if (!failed_.is_ok()) return;  // first failure wins
  failed_ = status;
  // Any staged recv drain dies with the link: post-failure reads (the
  // rail drains deliberately keep reading a poisoned stream) must charge
  // their own recv syscall rather than ride a stale staging window.
  rx_staged_ = 0;
  // Unpark everyone; rx_buffer_ keeps its bytes (delivered data always
  // wins over the failure) and checked callers observe status().
  tx_room_->notify_all();
  tx_data_->notify_all();
  rx_data_->notify_all();
}

Status TcpStream::send_checked(std::span<const std::byte> data) {
  TxWriter writer(*this);
  flush_pending_locked();  // keep byte order (see send())
  const TcpParams& params = port_->network_->params_;
  port_->node_->charge_cpu(params.send_syscall);
  std::size_t done = 0;
  while (done < data.size()) {
    while (failed_.is_ok() && tx_buffer_.size() >= params.socket_buffer) {
      tx_room_->wait();
    }
    if (!failed_.is_ok()) return failed_;
    const std::size_t room = params.socket_buffer - tx_buffer_.size();
    const std::size_t chunk = std::min(room, data.size() - done);
    port_->node_->charge_memcpy(chunk);
    tx_buffer_.insert(tx_buffer_.end(), data.begin() + done,
                      data.begin() + done + chunk);
    done += chunk;
    tx_data_->notify_all();
  }
  return Status::ok();
}

Status TcpStream::recv_some_checked(std::span<std::byte> out,
                                    std::size_t* got) {
  const TcpParams& params = port_->network_->params_;
  port_->node_->charge_cpu(params.recv_syscall);
  while (rx_buffer_.empty() && failed_.is_ok()) rx_data_->wait();
  if (rx_buffer_.empty()) {
    *got = 0;
    return failed_;
  }
  const std::size_t chunk = std::min(rx_buffer_.size(), out.size());
  port_->node_->charge_memcpy(chunk);
  std::copy(rx_buffer_.begin(), rx_buffer_.begin() + chunk, out.begin());
  rx_buffer_.erase(rx_buffer_.begin(), rx_buffer_.begin() + chunk);
  *got = chunk;
  return Status::ok();
}

Status TcpStream::flush() {
  if (!pending_.empty()) flush_pending();
  // tx_loop notifies tx_room_ after every chunk it takes, including the
  // one that empties the buffer, and ~TxWriter notifies when a writer
  // turn ends, so this wait set is complete. Waiting out tx_writing_
  // covers a concurrent writer parked mid-copy whose remaining bytes are
  // not yet in tx_buffer_.
  while (failed_.is_ok() && (tx_writing_ || !tx_buffer_.empty())) {
    tx_room_->wait();
  }
  if (!failed_.is_ok()) return failed_;
  ReliableNetwork* reliable = port_->network_->reliable_.get();
  if (reliable != nullptr) {
    const Status drained =
        reliable->endpoint(port_->rank_).wait_drained(peer_);
    if (!drained.is_ok()) return drained;
  }
  return failed_;
}

}  // namespace mad2::net
