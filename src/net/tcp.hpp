// TCP over simulated Fast Ethernet (100 Mb/s).
//
// The commodity control/fallback network of the paper's clusters: every
// node pair gets reliable byte streams, with Linux-2.2-era kernel costs
// (syscall entry, checksum+copy) and MSS framing on a 12.5 MB/s wire.
// Calibration: raw one-way latency ~75 us, stream bandwidth ~11.5 MB/s.
//
// When a FaultPlan is attached (TcpParams::fabric::faults), frames ride
// the reliable-delivery shim (net/reliable) instead of the raw fabric —
// the kernel's seq/ack/retransmit machinery, collapsed to the shim — so
// the byte streams stay reliable over a lossy wire. A link that gives up
// retransmitting reports through set_error_handler().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hw/node.hpp"
#include "net/reliable.hpp"
#include "net/wire.hpp"
#include "sim/sync.hpp"

namespace mad2::net {

struct TcpParams {
  sim::Duration send_syscall = sim::from_us(18.0);
  sim::Duration recv_syscall = sim::from_us(18.0);
  std::uint32_t mss = 1460;           // TCP payload per Ethernet frame
  std::uint32_t frame_overhead = 58;  // Ethernet + IP + TCP headers
  std::size_t socket_buffer = 64 * 1024;
  FabricParams fabric;
  /// Retransmission tuning, used only when fabric.faults is set.
  ReliableParams reliability;

  static TcpParams fast_ethernet();
};

class TcpPort;
class TcpStream;

/// One Ethernet segment: a fabric plus one TcpPort per node. Streams
/// between any node pair are created on demand (the mesh is implicit; no
/// connection establishment is modeled).
class TcpNetwork {
 public:
  TcpNetwork(sim::Simulator* simulator, std::vector<hw::Node*> nodes,
             TcpParams params);
  ~TcpNetwork();

  [[nodiscard]] std::size_t size() const { return ports_.size(); }
  [[nodiscard]] TcpPort& port(std::uint32_t rank) { return *ports_[rank]; }
  [[nodiscard]] const TcpParams& params() const { return params_; }

  /// The reliable shim carrying this network's frames, or nullptr when the
  /// fabric is lossless (no FaultPlan attached).
  [[nodiscard]] ReliableNetwork* reliable() { return reliable_.get(); }

  /// Fires when a link gives up retransmitting, after every stream
  /// touching the dead link has been poisoned (see TcpStream::status()).
  /// Never fires on a lossless fabric, which cannot fail.
  void set_error_handler(std::function<void(const Status&)> handler);

  /// Like set_error_handler but keeps the endpoint ranks of the dead link:
  /// `a` is the rank whose shim gave up, `b` the unresponsive peer. When
  /// both handlers are set, only this one fires — the caller is expected
  /// to fold the plain handler's behavior into its richer one.
  void set_link_error_handler(
      std::function<void(std::uint32_t a, std::uint32_t b, const Status&)>
          handler);

 private:
  friend class TcpPort;
  friend class TcpStream;

  /// Reliable-shim link (a -> b) declared dead: tear down both directions
  /// of the affected streams — a real stack would collapse the connection
  /// pair via RSTs and keepalive timeouts — then report upward.
  void on_link_failed(std::uint32_t a, std::uint32_t b,
                      const Status& status);

  struct Packet {
    std::uint32_t src;
    std::uint32_t stream;
    std::vector<std::byte> data;
  };

  sim::Simulator* simulator_;
  TcpParams params_;
  PacketFabric<Packet> fabric_;
  std::unique_ptr<ReliableNetwork> reliable_;
  std::vector<std::unique_ptr<TcpPort>> ports_;
  std::function<void(const Status&)> error_handler_;
  std::function<void(std::uint32_t, std::uint32_t, const Status&)>
      link_error_handler_;
};

/// One directed byte stream endpoint pair. Obtained from TcpPort::stream();
/// `stream_id` lets independent modules multiplex separate connections
/// between the same node pair (one per Madeleine channel).
class TcpStream {
 public:
  /// Copy `data` into the socket buffer (blocking while full) and return.
  /// Transmission proceeds asynchronously in order.
  void send(std::span<const std::byte> data);

  /// Blocking read of exactly `out.size()` bytes.
  void recv(std::span<std::byte> out);

  /// Blocking read of at least one byte; returns the byte count.
  std::size_t recv_some(std::span<std::byte> out);

  [[nodiscard]] bool readable() const { return !rx_buffer_.empty(); }
  void wait_readable();

  [[nodiscard]] std::uint32_t peer() const { return peer_; }

  // --- Failure-aware variants (the rail layer's data path) ---------------
  // The plain calls above park forever on a dead link (their callers rely
  // on the session tearing the simulation down). These unblock with the
  // link's Status instead, so a caller can fail over to another adapter.

  /// OK while the stream's link is healthy; the link's death Status after.
  [[nodiscard]] const Status& status() const { return failed_; }

  /// send(), but aborts with the link Status instead of blocking on the
  /// socket buffer of a dead link. Bytes accepted before the failure are
  /// still in flight.
  Status send_checked(std::span<const std::byte> data);

  /// recv_some(), but returns the link Status once the stream is poisoned
  /// *and* drained — buffered bytes always win over the failure.
  Status recv_some_checked(std::span<std::byte> out, std::size_t* got);

  /// Block until every byte accepted by send() has left the socket buffer
  /// and — over a faulty fabric — been acknowledged by the peer's shim.
  /// OK from flush() therefore means delivered, not merely queued.
  Status flush();

  // --- fastpath (mad/progress.hpp; see docs/PERFORMANCE.md) --------------
  // Small writes stage in a user-space buffer (one memcpy, no syscall) and
  // a later flush_pending() pushes the whole batch with a single kernel
  // crossing — writev-style coalescing. On the receive side, one syscall
  // drains everything the kernel buffered; reads served from that staged
  // drain are free until it is consumed. Ordering is preserved: any direct
  // send/flush first pushes the staged bytes.

  /// Opt this stream into staged receives (and mark it as batch-managed).
  void set_fastpath(bool on) { fast_ = on; }
  /// Stage `data` for the next flush_pending(); no syscall charge.
  void send_deferred(std::span<const std::byte> data);
  /// Push everything staged by send_deferred() with one syscall charge.
  void flush_pending();
  [[nodiscard]] std::size_t pending_bytes() const { return pending_.size(); }

 private:
  friend class TcpPort;
  friend class TcpNetwork;
  TcpStream(TcpPort* port, std::uint32_t peer, std::uint32_t stream_id);

  /// RAII writer turn: enqueue_tx() can park mid-copy on a full socket
  /// buffer, and two fibers interleaving mss-sized refills would corrupt
  /// the stream's byte order. Every span handed to enqueue_tx therefore
  /// lands under one of these, serializing writers per stream.
  struct TxWriter;

  void tx_loop();
  void on_frame(std::vector<std::byte> data);
  void fail(const Status& status);
  /// send() minus the syscall charge: checksum+copy into the socket
  /// buffer, blocking while it is full. Caller holds the TxWriter turn.
  void enqueue_tx(std::span<const std::byte> data);
  /// flush_pending() body; caller holds the TxWriter turn.
  void flush_pending_locked();

  TcpPort* port_;
  std::uint32_t peer_;
  std::uint32_t stream_id_;
  Status failed_;
  std::deque<std::byte> tx_buffer_;
  std::deque<std::byte> rx_buffer_;
  std::unique_ptr<sim::WaitQueue> tx_room_;
  std::unique_ptr<sim::WaitQueue> tx_data_;
  std::unique_ptr<sim::WaitQueue> rx_data_;
  bool fast_ = false;
  bool tx_writing_ = false;         // a TxWriter turn is in flight
  std::vector<std::byte> pending_;  // deferred-send staging
  // Batch being pushed by flush_pending(); swapped with pending_ so the
  // staging capacity survives the flush (no steady-state reallocation).
  std::vector<std::byte> pending_flushing_;
  std::size_t rx_staged_ = 0;       // bytes covered by the last recv syscall
};

class TcpPort {
 public:
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] hw::Node& node() { return *node_; }

  /// The stream to `peer` with the given id (created on demand; the peer's
  /// port materializes its own endpoint on first use or first data).
  TcpStream& stream(std::uint32_t peer, std::uint32_t stream_id = 0);

  /// Block until `pred()` holds; re-evaluated after every frame delivered
  /// to any stream of this port (a select() across streams).
  void wait_any(const std::function<bool()>& pred);

 private:
  friend class TcpNetwork;
  friend class TcpStream;
  TcpPort(TcpNetwork* network, hw::Node* node, std::uint32_t rank);

  void rx_loop();

  TcpNetwork* network_;
  hw::Node* node_;
  std::uint32_t rank_;
  // key: peer << 32 | stream_id
  std::map<std::uint64_t, std::unique_ptr<TcpStream>> streams_;
  std::unique_ptr<sim::WaitQueue> any_frame_;
};

}  // namespace mad2::net
