// Reliable-delivery shim over a (possibly faulty) PacketFabric.
//
// The simulated interconnects of the paper are lossless, so the drivers
// assume every packet arrives intact, in order, exactly once. When a
// FaultPlan is attached to a fabric that assumption breaks; this shim wins
// it back with a classic ARQ protocol:
//
//  - every data frame carries a per-link sequence number and a checksum
//    over header + payload (wire_checksum);
//  - the receiver discards corrupt frames, buffers out-of-order frames,
//    deduplicates by sequence number, and acknowledges cumulatively (ack N
//    = "every frame <= N arrived"); acks are also piggybacked on data
//    frames flowing the other way;
//  - the sender keeps a bounded window of unacked frames and retransmits
//    on a per-frame timer with exponential backoff, capped at rto_max;
//  - after max_retransmits of one frame the link is declared dead: the
//    endpoint fails with an UNAVAILABLE Status, every blocked sender and
//    receiver is woken, and the optional error handler fires so a Session
//    can stop cleanly instead of deadlocking.
//
// Used by the TCP driver (net/tcp) when its fabric has faults, and
// directly by the seed-sweep property suites (tests/reliable_test).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/wire.hpp"
#include "sim/sync.hpp"
#include "util/status.hpp"

namespace mad2::net {

struct ReliableParams {
  /// First retransmit timeout for a frame.
  sim::Duration rto_initial = sim::microseconds(200);
  /// Exponential backoff cap.
  sim::Duration rto_max = sim::milliseconds(10);
  /// Backoff factor applied per retransmit.
  double backoff = 2.0;
  /// Give-up threshold: retransmits of one frame before the link is
  /// declared dead.
  std::uint32_t max_retransmits = 40;
  /// Max unacked data frames per destination; send() blocks beyond it.
  std::size_t window = 32;
  /// Wire bytes charged per frame on top of the payload (shim header plus
  /// whatever framing the embedding driver wants accounted).
  std::size_t header_bytes = 21;
};

/// One shim frame. `channel` is an opaque multiplexing tag for the layer
/// above (the TCP driver puts its stream id there).
struct ReliableFrame {
  enum Kind : std::uint8_t { kData = 0, kAck = 1 };

  std::uint32_t src = 0;
  std::uint32_t channel = 0;
  std::uint8_t kind = kData;
  std::uint32_t seq = 0;  // data frames: per-link sequence, starting at 1
  std::uint32_t ack = 0;  // cumulative: every seq <= ack was received
  std::uint32_t checksum = 0;
  std::vector<std::byte> payload;

  /// Expose payload bytes to the fault layer for corruption.
  friend std::span<std::byte> fault_payload(ReliableFrame& frame) {
    return frame.payload;
  }
};

/// Header+payload checksum as it goes on the wire.
[[nodiscard]] std::uint32_t frame_checksum(const ReliableFrame& frame);

class ReliableEndpoint;

/// A fabric wrapped in per-port reliable endpoints. Port numbering follows
/// add_port() order, exactly like the raw fabric.
class ReliableNetwork {
 public:
  ReliableNetwork(sim::Simulator* simulator, FabricParams fabric_params,
                  ReliableParams params);
  ~ReliableNetwork();

  std::uint32_t add_port();
  [[nodiscard]] std::size_t port_count() const { return endpoints_.size(); }
  [[nodiscard]] ReliableEndpoint& endpoint(std::uint32_t port);
  [[nodiscard]] PacketFabric<ReliableFrame>& fabric() { return fabric_; }
  [[nodiscard]] const ReliableParams& params() const { return params_; }
  [[nodiscard]] sim::Simulator* simulator() const { return simulator_; }

  /// Called (at most once per endpoint) when a link is declared dead.
  void set_error_handler(std::function<void(const Status&)> handler) {
    error_handler_ = std::move(handler);
  }

  /// Like set_error_handler, but identifies the dead link: (rank, peer)
  /// is the directed link whose sender gave up. Fires before the plain
  /// error handler, so an embedding driver can tear its own per-link
  /// state down before the session-level handler runs.
  void set_link_error_handler(
      std::function<void(std::uint32_t rank, std::uint32_t peer,
                         const Status&)>
          handler) {
    link_error_handler_ = std::move(handler);
  }

 private:
  friend class ReliableEndpoint;
  sim::Simulator* simulator_;
  ReliableParams params_;
  PacketFabric<ReliableFrame> fabric_;
  std::vector<std::unique_ptr<ReliableEndpoint>> endpoints_;
  std::function<void(const Status&)> error_handler_;
  std::function<void(std::uint32_t, std::uint32_t, const Status&)>
      link_error_handler_;
};

class ReliableEndpoint {
 public:
  struct Message {
    std::uint32_t src = 0;
    std::uint32_t channel = 0;
    std::vector<std::byte> payload;
  };

  /// Reliably send one message to `dst`. Blocks while the send window to
  /// `dst` is full. Fails with UNAVAILABLE once the endpoint declared any
  /// of its links dead.
  Status send(std::uint32_t dst, std::uint32_t channel,
              std::vector<std::byte> payload);

  /// Blocking receive of the next in-order message from any peer. Fails
  /// with UNAVAILABLE once the endpoint declared a link dead and no
  /// already-delivered messages remain.
  Status recv(Message& out);

  /// Block until every data frame sent to `dst` has been acknowledged
  /// (or the link died). A send() that returned OK only means "queued in
  /// the window"; this is the delivered barrier.
  Status wait_drained(std::uint32_t dst);

  [[nodiscard]] bool pending() const { return !delivery_.empty(); }
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  /// OK, or the first link failure this endpoint observed.
  [[nodiscard]] const Status& health() const { return health_; }
  [[nodiscard]] const ReliabilityCounters& counters() const {
    return counters_;
  }

  /// Smoothed round-trip time of the directed link to `peer`, sampled
  /// from the seq/ack stamps under Karn's rule (retransmitted frames are
  /// never sampled, so a retransmit's ack cannot be mistaken for the
  /// original's). 0 until the first clean sample. Retransmit timing is
  /// deliberately NOT driven by this estimate — RTO behavior is
  /// unchanged; the samples feed the congestion layer and telemetry.
  [[nodiscard]] sim::Duration srtt(std::uint32_t peer) const;
  /// Smallest clean RTT sample to `peer` (the delay floor). 0 = none.
  [[nodiscard]] sim::Duration min_rtt(std::uint32_t peer) const;

 private:
  friend class ReliableNetwork;
  ReliableEndpoint(ReliableNetwork* network, std::uint32_t rank);

  struct Outstanding {
    ReliableFrame frame;
    sim::Time deadline;
    sim::Duration rto;
    std::uint32_t retransmits = 0;
    sim::Time sent_at = 0;  // first transmission time (RTT sampling)
  };
  struct PeerTx {
    std::uint32_t next_seq = 1;
    std::map<std::uint32_t, Outstanding> outstanding;
    // RTT estimate of this directed link (see srtt()/min_rtt()).
    sim::Duration srtt = 0;
    sim::Duration min_rtt = 0;
    std::uint64_t rtt_samples = 0;
  };
  struct PeerRx {
    std::uint32_t next_expected = 1;
    std::map<std::uint32_t, ReliableFrame> out_of_order;
  };

  void rx_loop();
  void ack_loop();
  void retransmit_loop();
  void handle_data(ReliableFrame frame);
  void handle_ack(std::uint32_t peer, std::uint32_t ack);
  void sample_rtt(PeerTx& tx, sim::Duration rtt);
  void queue_ack(std::uint32_t peer);
  void fail_link(std::uint32_t peer, const Outstanding& frame);
  [[nodiscard]] std::uint64_t wire_bytes(const ReliableFrame& frame) const;

  ReliableNetwork* network_;
  std::uint32_t rank_;
  Status health_;
  ReliabilityCounters counters_;
  std::map<std::uint32_t, PeerTx> tx_;
  std::map<std::uint32_t, PeerRx> rx_;
  std::deque<Message> delivery_;
  // Pending cumulative acks, coalesced per peer between ack_loop rounds.
  std::deque<std::uint32_t> ack_order_;
  std::map<std::uint32_t, std::uint32_t> ack_value_;
  sim::WaitQueue rx_ready_;      // recv() waiters
  sim::WaitQueue window_room_;   // send() waiters
  sim::WaitQueue ack_pending_;   // ack_loop wakeups
  sim::WaitQueue timer_wakeup_;  // retransmit_loop wakeups
};

}  // namespace mad2::net
