#include "net/sisci.hpp"

#include <algorithm>

namespace mad2::net {

SciParams SciParams::dolphin_d310() {
  SciParams p;
  p.fabric.name = "sci";
  p.fabric.wire_mbs = 150.0;  // SCI link; PCI PIO is the real bottleneck
  p.fabric.propagation = sim::from_us(1.2);
  p.fabric.per_packet = 0;
  p.fabric.wire_chunk_bytes = 4096;
  p.fabric.rx_slots = 64;
  return p;
}

SciNetwork::SciNetwork(sim::Simulator* simulator,
                       std::vector<hw::Node*> nodes, SciParams params)
    : simulator_(simulator),
      params_(std::move(params)),
      fabric_(simulator, params_.fabric) {
  for (hw::Node* node : nodes) {
    const std::uint32_t rank = fabric_.add_port();
    ports_.emplace_back(new SciPort(this, node, rank));
  }
}

SciNetwork::~SciNetwork() = default;

SciPort::SciPort(SciNetwork* network, hw::Node* node, std::uint32_t rank)
    : network_(network), node_(node), rank_(rank) {
  any_delivery_ = std::make_unique<sim::WaitQueue>(network_->simulator_);
  tx_stage_ = std::make_unique<sim::BoundedChannel<Packet>>(
      network_->simulator_, network_->params_.tx_stage_depth);
  network_->simulator_->spawn_daemon(
      "sci.tx." + std::to_string(rank), [this] { tx_loop(); });
  network_->simulator_->spawn_daemon(
      "sci.rx." + std::to_string(rank), [this] { rx_loop(); });
}

SegmentId SciPort::create_segment(std::size_t bytes) {
  const SegmentId id = next_segment_++;
  Segment segment;
  segment.memory.assign(bytes, std::byte{0});
  segment.waiters = std::make_unique<sim::WaitQueue>(network_->simulator_);
  segments_.emplace(id, std::move(segment));
  return id;
}

std::span<std::byte> SciPort::segment_memory(SegmentId segment) {
  auto it = segments_.find(segment);
  MAD2_CHECK(it != segments_.end(), "unknown local segment");
  return it->second.memory;
}

RemoteSegment SciPort::connect(std::uint32_t node, SegmentId segment) {
  MAD2_CHECK(node < network_->size(), "connect to unknown node");
  return RemoteSegment{node, segment};
}

void SciPort::write_common(const RemoteSegment& dst, std::uint64_t offset,
                           std::span<const std::byte> data, bool dma) {
  const SciParams& params = network_->params_;
  node_->charge_cpu(dma ? params.dma_setup : params.pio_setup);
  // Fragment at packet granularity so long writes pipeline across the
  // local bus, the wire, and the remote bus.
  std::uint64_t done = 0;
  do {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(data.size() - done, params.packet_bytes);
    const std::uint64_t bus_bytes = chunk + params.header_bytes;
    if (dma) {
      // The DMA engine reads host memory as a bus master, rate-limited by
      // the (slow) engine itself.
      node_->pci_bus().transfer(
          bus_bytes, std::min(params.dma_engine_mbs,
                              node_->params().pci_dma_mbs),
          hw::TxClass::kDma, node_->nic_initiator_id(1));
    } else {
      // CPU stores through the mapped window: PIO class, CPU initiator.
      node_->pci_bus().transfer(bus_bytes, node_->params().pci_pio_mbs,
                                hw::TxClass::kPio,
                                node_->cpu_initiator_id());
    }
    Packet packet;
    packet.src = rank_;
    packet.dst = dst.node;
    packet.segment = dst.segment;
    packet.offset = offset + done;
    packet.data.assign(data.begin() + done, data.begin() + done + chunk);
    tx_stage_->send(std::move(packet));
    done += chunk;
  } while (done < data.size());
}

void SciPort::pio_write(const RemoteSegment& dst, std::uint64_t offset,
                        std::span<const std::byte> data) {
  write_common(dst, offset, data, /*dma=*/false);
}

void SciPort::dma_write(const RemoteSegment& dst, std::uint64_t offset,
                        std::span<const std::byte> data) {
  write_common(dst, offset, data, /*dma=*/true);
}

void SciPort::tx_loop() {
  for (;;) {
    auto packet = tx_stage_->receive();
    if (!packet.has_value()) return;
    const std::uint32_t dst = packet->dst;
    const std::uint64_t wire_bytes =
        packet->data.size() + network_->params_.header_bytes;
    network_->fabric_.ship(rank_, dst, std::move(*packet), wire_bytes);
  }
}

void SciPort::rx_loop() {
  for (;;) {
    // Batch queued incoming writes into one bus burst (the NIC chains
    // them), holding the bus against PIO and amortizing turnaround.
    std::vector<Packet> batch;
    batch.push_back(network_->fabric_.receive(rank_));
    while (batch.size() < 8) {
      auto more = network_->fabric_.try_receive(rank_);
      if (!more.has_value()) break;
      batch.push_back(std::move(*more));
    }
    std::uint64_t bus_bytes = 0;
    for (const Packet& packet : batch) {
      bus_bytes += packet.data.size() + network_->params_.header_bytes;
    }
    node_->pci_bus().transfer(bus_bytes, node_->params().pci_dma_mbs,
                              hw::TxClass::kDma, node_->nic_initiator_id(1));
    for (Packet& packet : batch) {
      auto it = segments_.find(packet.segment);
      MAD2_CHECK(it != segments_.end(), "remote write to unknown segment");
      Segment& segment = it->second;
      MAD2_CHECK(
          packet.offset + packet.data.size() <= segment.memory.size(),
          "remote write out of segment bounds");
      std::copy(packet.data.begin(), packet.data.end(),
                segment.memory.begin() + packet.offset);
      node_->charge_cpu(network_->params_.deliver_cost);
      segment.waiters->notify_all();
    }
    any_delivery_->notify_all();
  }
}

void SciPort::wait_segment(SegmentId segment,
                           const std::function<bool()>& pred) {
  auto it = segments_.find(segment);
  MAD2_CHECK(it != segments_.end(), "wait on unknown segment");
  while (!pred()) it->second.waiters->wait();
}

void SciPort::wait_delivery(const std::function<bool()>& pred) {
  while (!pred()) any_delivery_->wait();
}

}  // namespace mad2::net
