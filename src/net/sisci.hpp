// SISCI over a simulated Dolphin SCI (D310) network.
//
// The SISCI programming model the paper's SISCI PMM targets:
//  - the receiver exports memory *segments*; senders map them and write
//    remotely with plain CPU stores (PIO). Writes to one remote node are
//    delivered in order; receivers detect data by polling flag words in
//    segment memory.
//  - a DMA engine exists but performs poorly on D310 NICs (paper: could
//    not exceed 35 MB/s), so Madeleine ships the DMA TM disabled.
//
// Cost model: PIO occupies the *sender's* CPU and its PCI bus in the PIO
// class (~85 MB/s sustained write-combined stores); on the receiving node
// the SCI NIC masters the writes into host memory (DMA class). This class
// split is what makes the gateway experiments come out right (Section 6.2.3:
// Myrinet receive DMA has priority over SCI PIO sends).
//
// Calibration (Section 5.2.1): raw one-way PIO latency ~2 us (Madeleine
// adds ~1.9 us -> 3.9 us), PIO bandwidth ~85 MB/s (Madeleine reaches 82),
// DMA <= ~38 MB/s engine rate.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hw/node.hpp"
#include "net/wire.hpp"
#include "sim/sync.hpp"
#include "util/status.hpp"

namespace mad2::net {

struct SciParams {
  sim::Duration pio_setup = sim::from_us(0.2);      // per pio_write call
  sim::Duration dma_setup = sim::from_us(8.0);      // per dma_write call
  sim::Duration deliver_cost = sim::from_us(0.15);  // receiver-side visibility
  double dma_engine_mbs = 38.0;  // D310 DMA engine (paper: poor, <= 35 MB/s)
  std::uint32_t packet_bytes = 4096;  // pipelining granularity of writes
  std::uint32_t header_bytes = 8;     // per-packet address/route overhead
  std::size_t tx_stage_depth = 4;
  FabricParams fabric;

  static SciParams dolphin_d310();
};

using SegmentId = std::uint32_t;

/// Handle to a mapped remote segment.
struct RemoteSegment {
  std::uint32_t node = 0;
  SegmentId segment = 0;
};

class SciPort;

class SciNetwork {
 public:
  SciNetwork(sim::Simulator* simulator, std::vector<hw::Node*> nodes,
             SciParams params);
  ~SciNetwork();

  [[nodiscard]] std::size_t size() const { return ports_.size(); }
  [[nodiscard]] SciPort& port(std::uint32_t rank) { return *ports_[rank]; }
  [[nodiscard]] const SciParams& params() const { return params_; }

 private:
  friend class SciPort;
  struct Packet {
    std::uint32_t src;
    std::uint32_t dst;
    SegmentId segment;
    std::uint64_t offset;
    std::vector<std::byte> data;
  };

  sim::Simulator* simulator_;
  SciParams params_;
  PacketFabric<Packet> fabric_;
  std::vector<std::unique_ptr<SciPort>> ports_;
};

class SciPort {
 public:
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] hw::Node& node() { return *node_; }

  /// Export a segment of `bytes`, locally backed. Returns its id
  /// (unique per port).
  SegmentId create_segment(std::size_t bytes);

  /// Raw access to a local segment's memory (receivers read data and
  /// flags here; zero-copy).
  std::span<std::byte> segment_memory(SegmentId segment);

  /// Map a segment exported by `node` for remote writes.
  RemoteSegment connect(std::uint32_t node, SegmentId segment);

  /// CPU-driven remote write (PIO). Charges the caller for the stores
  /// (local PCI bus, PIO class); data becomes visible remotely, in order,
  /// after wire transfer + remote-side delivery. Returns once the local
  /// write buffer has drained (the caller's data is reusable).
  void pio_write(const RemoteSegment& dst, std::uint64_t offset,
                 std::span<const std::byte> data);

  /// DMA-engine remote write. High setup cost and a slow engine — kept
  /// faithful to the D310 so the "DMA TM disabled by default" story holds.
  void dma_write(const RemoteSegment& dst, std::uint64_t offset,
                 std::span<const std::byte> data);

  /// Block until `pred()` holds for this segment. `pred` typically reads
  /// flag words via segment_memory(); it is re-evaluated after every remote
  /// write delivered into the segment.
  void wait_segment(SegmentId segment, const std::function<bool()>& pred);

  /// Block until `pred()` holds; re-evaluated after every remote write
  /// delivered into *any* segment of this port (channel-level polling
  /// across per-source rings).
  void wait_delivery(const std::function<bool()>& pred);

 private:
  friend class SciNetwork;
  using Packet = SciNetwork::Packet;

  SciPort(SciNetwork* network, hw::Node* node, std::uint32_t rank);

  void write_common(const RemoteSegment& dst, std::uint64_t offset,
                    std::span<const std::byte> data, bool dma);
  void tx_loop();
  void rx_loop();

  struct Segment {
    std::vector<std::byte> memory;
    std::unique_ptr<sim::WaitQueue> waiters;
  };

  SciNetwork* network_;
  hw::Node* node_;
  std::uint32_t rank_;
  SegmentId next_segment_ = 1;
  std::map<SegmentId, Segment> segments_;
  std::unique_ptr<sim::WaitQueue> any_delivery_;
  std::unique_ptr<sim::BoundedChannel<Packet>> tx_stage_;
};

}  // namespace mad2::net
