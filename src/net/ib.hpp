// Simulated InfiniBand-style HCA (ROADMAP item 3).
//
// The model the IbPmm targets ("Design and Implementation of MPICH2 over
// InfiniBand with RDMA Support", PAPERS.md):
//  - reliable-connection *queue pairs* per (peer, qp number), with a
//    bounded send-queue depth — posting a work request on a full SQ
//    blocks until completions free a slot;
//  - *explicit memory registration*: every buffer the HCA touches must be
//    pinned first, at a syscall-plus-per-page cost that dwarfs the
//    per-message overhead (the pin-down cost the registration cache
//    amortizes), and unpinned at a deregistration cost;
//  - two-sided *send/recv* (a send consumes the oldest posted receive
//    descriptor at the target and carries 64 bits of immediate data) and
//    one-sided *RDMA write / RDMA read* against a remote region named by
//    an rkey — no receive descriptor is consumed and the target CPU never
//    runs; a write carrying immediate data additionally raises a
//    completion at the target when its last byte lands;
//  - *completion queues* per qp number shared by every peer's QP, drained
//    by polling at a configurable per-CQE reap cost, with doorbell
//    (post) latency on the submission side.
//
// Unlike the paper-era NICs, the HCA sits on its own 64-bit/66 MHz PCI
// segment: DMA is charged at IbParams::pci_dma_mbs rather than the
// host's legacy-bus rate, which is what lets the IB rail set a new
// bandwidth ceiling on the same simulated hosts.
//
// Failure model: remotely-dependent work requests (RDMA write acks, RDMA
// read responses) carry a give-up timer. When one expires — e.g. the
// fabric's fault plan partitioned the link — the port declares the peer
// link dead: every outstanding and future work request toward that peer
// completes with ok=false, and the network-level link error handler
// fires (Session routes it through route_network_failure, so an IB rail
// inside a RailSet is marked dead and its segments resubmitted).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "hw/node.hpp"
#include "net/wire.hpp"
#include "sim/sync.hpp"
#include "util/status.hpp"

namespace mad2::net {

struct IbParams {
  // Host-interface per-op costs.
  sim::Duration doorbell = sim::from_us(0.8);  ///< WR post (PIO + WQE fetch)
  sim::Duration cq_poll = sim::from_us(0.4);   ///< per reaped CQE
  // Memory registration (pin-down) costs.
  sim::Duration register_base = sim::from_us(30.0);
  sim::Duration register_per_page = sim::from_us(3.0);
  sim::Duration deregister_base = sim::from_us(10.0);
  std::uint32_t page_bytes = 4096;
  // Link layer.
  std::uint32_t mtu = 2048;
  std::uint32_t header_bytes = 30;  ///< LRH + BTH + ICRC/VCRC
  /// Send-queue depth per QP: outstanding WRs beyond this block the
  /// poster. Doubles as the IbPmm's eager credit window.
  std::uint32_t qp_depth = 16;
  std::size_t tx_stage_depth = 8;
  /// HCA-side DMA rate (64-bit/66 MHz PCI segment; see file comment).
  double pci_dma_mbs = 450.0;
  /// Give-up timer for remotely-dependent WRs (see failure model above).
  sim::Duration op_timeout = sim::from_us(50'000.0);
  /// Per-port registration-cache capacity, in cached regions. 0 disables
  /// the cache entirely: every acquire registers and every release
  /// deregisters (the abl_ib off-ablation).
  std::size_t regcache_capacity = 64;
  FabricParams fabric;

  /// Early-2000s 4X HCA: ~800 MB/s effective wire, 64-bit PCI DMA.
  static IbParams mellanox_like();
};

/// A pinned memory region. `key` doubles as the rkey peers use to name
/// this region in RDMA work requests.
struct IbMr {
  std::uint64_t key = 0;
  std::uintptr_t base = 0;
  std::size_t bytes = 0;

  [[nodiscard]] bool valid() const { return key != 0; }
};

struct IbCompletion {
  enum class Kind : std::uint32_t {
    kSend,       ///< signaled send finished serializing (local)
    kRecv,       ///< posted receive descriptor filled
    kRdmaWrite,  ///< write acknowledged by the target HCA (local)
    kRdmaRead,   ///< read response fully landed (local)
    kWriteImm,   ///< a peer's RDMA-write-with-immediate landed here
  };
  Kind kind = Kind::kSend;
  std::uint32_t peer = 0;
  std::uint64_t wr_id = 0;  ///< local WR id (0 for kRecv / kWriteImm)
  std::uint64_t imm = 0;
  std::size_t bytes = 0;
  std::span<std::byte> buffer;  ///< kRecv: the posted buffer
  bool ok = true;  ///< false: flushed in error (peer link declared dead)
};

/// Registration-cache observability (surfaced via Session::export_metrics
/// and the abl_ib JSON sidecar).
struct IbRegCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t merges = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Per-port work/completion counters.
struct IbCounters {
  std::uint64_t send_wrs = 0;
  std::uint64_t recv_posts = 0;
  std::uint64_t write_wrs = 0;
  std::uint64_t read_wrs = 0;
  std::uint64_t cqes = 0;
  std::uint64_t cq_polls = 0;  ///< reaps (poll_cq hits + wait_cq)
};

class IbPort;

/// LRU pin-down cache, shared per adapter (one per IbPort): interval-keyed
/// registered regions, overlapping/adjacent-region merge, explicit
/// invalidation on free, capacity eviction paying the deregistration
/// cost. acquire() returns a registration covering the request; release()
/// only drops the reference (the pin persists until eviction or
/// invalidation) — that persistence is the entire win for repeated-buffer
/// traffic.
///
/// Entries are refcounted between acquire() and release(): a referenced
/// entry is never merged away, evicted, or invalidated, because its rkey
/// may already be advertised to a peer or backing an in-flight RDMA op —
/// deregistering it would make the peer's write/read hit "unknown rkey".
class IbRegCache {
 public:
  IbRegCache(IbPort* port, std::size_t capacity);

  /// A registration covering [addr, addr+len). Cache hit: no cost. Miss:
  /// registers the union of the request and any *idle* cached regions it
  /// overlaps or abuts (those are deregistered and their stats merged);
  /// referenced overlapping regions are left pinned and simply coexist.
  IbMr acquire(const std::byte* addr, std::size_t len);

  /// Drop the caller's use of a region obtained from acquire(). With the
  /// cache enabled this only unpins when `mr` bypassed the cache
  /// (capacity 0); cached pins stay hot for the next acquire.
  void release(const IbMr& mr);

  /// The registered-memory hook for freed buffers: deregister every
  /// cached region overlapping [addr, addr+len) so a recycled address
  /// range cannot alias a stale pin.
  void invalidate(const std::byte* addr, std::size_t len);

  [[nodiscard]] const IbRegCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    IbMr mr;
    std::uint64_t last_use = 0;
    std::size_t refs = 0;  ///< acquires not yet released
  };

  /// Deregister the least-recently-used *idle* entry. False when every
  /// entry is referenced (the cache then temporarily exceeds capacity:
  /// in-use pins cannot be dropped).
  bool evict_lru();

  IbPort* port_;
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::vector<Entry> entries_;
  IbRegCacheStats stats_;
};

class IbNetwork {
 public:
  IbNetwork(sim::Simulator* simulator, std::vector<hw::Node*> nodes,
            IbParams params);
  ~IbNetwork();

  [[nodiscard]] std::size_t size() const { return ports_.size(); }
  [[nodiscard]] IbPort& port(std::uint32_t rank) { return *ports_[rank]; }
  [[nodiscard]] const IbParams& params() const { return params_; }

  /// Called once per dead link (both port directions poisoned first).
  using LinkErrorHandler =
      std::function<void(std::uint32_t, std::uint32_t, const Status&)>;
  void set_link_error_handler(LinkErrorHandler handler) {
    link_error_handler_ = std::move(handler);
  }

  /// Declare the a<->b link dead (test hook; the ports' give-up timers
  /// call the same path). Idempotent per direction.
  void fail_link(std::uint32_t a, std::uint32_t b, const Status& status);

 private:
  friend class IbPort;
  struct Packet {
    enum class Kind : std::uint32_t {
      kSend,       ///< two-sided send fragment
      kWriteData,  ///< RDMA write fragment
      kWriteAck,   ///< target HCA ack completing a write WR
      kReadReq,    ///< RDMA read request
      kReadData,   ///< RDMA read response fragment
    };
    Kind kind = Kind::kSend;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t qp = 0;
    std::uint64_t wr = 0;      ///< requester WR id (echoed back)
    std::uint64_t key = 0;     ///< rkey for kWriteData / kReadReq
    std::uint64_t offset = 0;  ///< op-relative byte offset
    std::uint64_t total = 0;   ///< op length
    std::uint64_t imm = 0;
    std::vector<std::byte> data;

    friend std::span<std::byte> fault_payload(Packet& p) { return p.data; }
  };

  /// Report a dead link discovered by `reporter`: poison both ports, then
  /// run the handler once.
  void report_link_failure(std::uint32_t reporter, std::uint32_t peer,
                           const Status& status);

  sim::Simulator* simulator_;
  IbParams params_;
  PacketFabric<Packet> fabric_;
  std::vector<std::unique_ptr<IbPort>> ports_;
  LinkErrorHandler link_error_handler_;
};

class IbPort {
 public:
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] hw::Node& node() { return *node_; }
  [[nodiscard]] const IbParams& params() const { return network_->params_; }

  // --- memory registration ------------------------------------------------
  /// Pin [region.begin(), region.end()): charged base + per-page, counted
  /// in the node's MemCounters (pinned_bytes / reg_count). The returned
  /// key is valid as an rkey for peers' RDMA work requests. Registering
  /// from immutable memory and then letting a peer RDMA-write through the
  /// rkey is caller error, exactly as with real access flags.
  IbMr register_memory(std::span<const std::byte> region);
  void deregister(const IbMr& mr);
  [[nodiscard]] IbRegCache& reg_cache() { return *reg_cache_; }

  // --- queue pairs --------------------------------------------------------
  /// Post a receive descriptor on the (peer, qp) queue pair. Descriptors
  /// fill strictly in post order; a send arriving with none posted breaks
  /// the QP (fatal — the IbPmm's credit window prevents it).
  void post_recv(std::uint32_t peer, std::uint32_t qp,
                 std::span<std::byte> buffer);

  /// Two-sided send. Blocks while the SQ is full, then stages the data
  /// (the host buffer is reusable on return). `signaled` pushes a kSend
  /// CQE once the last fragment has serialized; unsignaled sends free
  /// their SQ slot silently (the verbs idiom for eager paths).
  std::uint64_t post_send(std::uint32_t peer, std::uint32_t qp,
                          std::span<const std::byte> data,
                          std::uint64_t imm = 0, bool signaled = false);

  /// One-sided RDMA write of `local` into the peer region named by
  /// (rkey, roffset). Completes (kRdmaWrite CQE) when the target HCA has
  /// landed and acknowledged the last byte. A nonzero `imm` additionally
  /// raises a kWriteImm completion at the target.
  std::uint64_t post_rdma_write(std::uint32_t peer, std::uint32_t qp,
                                std::span<const std::byte> local,
                                std::uint64_t rkey, std::uint64_t roffset,
                                std::uint64_t imm = 0);

  /// One-sided RDMA read of the peer region (rkey, roffset, local.size())
  /// into `local`. Completes (kRdmaRead CQE) when every byte has landed.
  std::uint64_t post_rdma_read(std::uint32_t peer, std::uint32_t qp,
                               std::span<std::byte> local, std::uint64_t rkey,
                               std::uint64_t roffset);

  // --- completion queues (one per qp number, shared across peers) ---------
  /// Non-blocking reap; charges cq_poll per reaped CQE (empty polls are
  /// free — the progress engine's batched drain relies on that).
  std::optional<IbCompletion> poll_cq(std::uint32_t qp);
  /// Blocking reap.
  IbCompletion wait_cq(std::uint32_t qp);
  [[nodiscard]] bool cq_ready(std::uint32_t qp) const;
  /// Run `fn` after every CQE pushed to `qp`'s CQ (progress-engine
  /// doorbell; must not block).
  void set_cq_callback(std::uint32_t qp, std::function<void()> fn);

  /// Outstanding (posted, uncompleted) WRs on the (peer, qp) SQ.
  [[nodiscard]] std::size_t outstanding(std::uint32_t peer,
                                        std::uint32_t qp) const;
  /// Receive descriptors posted and not yet filled on (peer, qp).
  [[nodiscard]] std::size_t posted_count(std::uint32_t peer,
                                         std::uint32_t qp) const;

  // --- failure surface ----------------------------------------------------
  /// OK while the link to `peer` is healthy.
  [[nodiscard]] const Status& link_status(std::uint32_t peer) const;
  /// Declare the link to `peer` dead (local poison + network handler).
  void fail_link(std::uint32_t peer, const Status& status);
  /// Run `fn(peer, status)` after the link to `peer` is declared dead and
  /// its outstanding WRs flushed (the poison pass). Protocol modules
  /// register one each: a fiber blocked on protocol state (credits, a
  /// rendezvous answer) holds no failable WR of its own, so without this
  /// hook only the side that owned the timed-out WR would ever learn of
  /// the death.
  void add_link_down_callback(
      std::function<void(std::uint32_t, const Status&)> fn);

  [[nodiscard]] const IbCounters& counters() const { return counters_; }

 private:
  friend class IbNetwork;
  friend class IbRegCache;
  using Packet = IbNetwork::Packet;

  IbPort(IbNetwork* network, hw::Node* node, std::uint32_t rank);

  void tx_loop();
  void rx_loop();
  void handle_rx(Packet& packet);

  struct RecvDescriptor {
    std::span<std::byte> buffer;
    std::uint64_t received = 0;
  };
  struct QpState {
    std::deque<RecvDescriptor> posted;
    std::size_t sq_outstanding = 0;
    std::unique_ptr<sim::WaitQueue> sq_wq;  ///< SQ slot waiters
  };
  struct Cq {
    std::deque<IbCompletion> cqes;
    std::unique_ptr<sim::WaitQueue> wq;
    std::function<void()> callback;
  };
  /// A locally-posted WR whose completion depends on the remote HCA.
  struct PendingOp {
    std::uint32_t peer = 0;
    std::uint32_t qp = 0;
    IbCompletion::Kind kind = IbCompletion::Kind::kRdmaWrite;
    std::span<std::byte> local;  ///< read landing buffer
    std::uint64_t received = 0;
    std::uint64_t total = 0;
  };
  /// Target-side landing progress of a peer's write WR.
  struct WriteLanding {
    std::uint64_t received = 0;
  };

  QpState& qp_state(std::uint32_t peer, std::uint32_t qp);
  [[nodiscard]] const QpState* qp_if_exists(std::uint32_t peer,
                                            std::uint32_t qp) const;
  Cq& cq(std::uint32_t qp);
  void push_cqe(std::uint32_t qp, IbCompletion completion);
  void sq_acquire(std::uint32_t peer, std::uint32_t qp);
  void sq_release(std::uint32_t peer, std::uint32_t qp);
  /// DMA-charge + fragment `data` into staged packets (template carries
  /// everything but offset/data).
  void stage_fragments(Packet prototype, std::span<const std::byte> data);
  void stage(Packet packet);
  /// Arm the give-up timer for WR `wr` toward `peer`.
  void arm_op_timeout(std::uint32_t peer, std::uint64_t wr);
  void charge_dma(std::uint64_t bytes);
  /// Poison every QP/SQ/pending op toward `peer` (no handler callback).
  void poison_peer(std::uint32_t peer, const Status& status);

  IbNetwork* network_;
  hw::Node* node_;
  std::uint32_t rank_;
  std::map<std::uint64_t, QpState> qps_;  // key: peer << 32 | qp
  std::map<std::uint32_t, Cq> cqs_;       // key: qp number
  std::map<std::uint64_t, PendingOp> pending_;  // key: local wr id
  // Landing progress is keyed by (source rank, requester wr id): two peers
  // number their WRs independently.
  std::map<std::pair<std::uint32_t, std::uint64_t>, WriteLanding> landings_;
  std::map<std::uint64_t, IbMr> regions_;  // key -> pinned region
  std::map<std::uint32_t, Status> peer_status_;
  std::vector<std::function<void(std::uint32_t, const Status&)>>
      link_down_callbacks_;
  std::unique_ptr<sim::BoundedChannel<Packet>> tx_stage_;
  /// HCA-originated responses (write acks, read-response jobs): unbounded
  /// so the rx fiber never blocks shipping into its own full staging.
  std::deque<Packet> nic_tx_;
  std::unique_ptr<sim::WaitQueue> tx_work_;
  std::unique_ptr<IbRegCache> reg_cache_;
  std::uint64_t next_wr_ = 1;
  std::uint64_t next_key_ = 1;
  IbCounters counters_;
  Status ok_status_;
};

}  // namespace mad2::net
