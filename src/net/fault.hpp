// Deterministic fault injection for the packet fabric.
//
// A FaultPlan describes how one PacketFabric misbehaves: per-link
// probabilistic packet drop, duplication, bounded reordering, payload
// corruption, and delay jitter, plus scripted link partitions/heals keyed
// to virtual time. Every probabilistic decision is drawn from one seeded
// Rng in ship() order, so a given (seed, workload) pair replays the exact
// same fault schedule — the property the seed-sweep suites rely on.
//
// The plan only *decides*; the mechanics (holding packets back, flipping
// bytes, delaying delivery) live in PacketFabric so they work for any
// packet type. A fabric with no plan attached behaves exactly as before.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mad2::net {

/// Fault rates of one directed link (or the whole fabric as a default).
struct LinkFaults {
  /// Probability a packet silently disappears on the wire.
  double drop_rate = 0.0;
  /// Probability the NIC delivers a second copy of a packet.
  double dup_rate = 0.0;
  /// Probability a packet is held back so later packets overtake it.
  double reorder_rate = 0.0;
  /// Max packets that may overtake a held-back packet (its overtake budget
  /// is drawn uniformly from [1, reorder_window]). 0 disables reordering.
  std::uint32_t reorder_window = 0;
  /// Safety valve: a held-back packet is force-delivered this long after
  /// its normal arrival time even if no later traffic overtakes it.
  sim::Duration reorder_timeout = sim::microseconds(500);
  /// Probability one payload byte is flipped in flight. Only packet types
  /// that expose their bytes via fault_payload() (see wire.hpp) are
  /// actually corrupted; others are delivered intact.
  double corrupt_rate = 0.0;
  /// Probability of extra propagation delay, uniform in [0, jitter_max].
  double jitter_rate = 0.0;
  sim::Duration jitter_max = 0;

  [[nodiscard]] bool any() const {
    return drop_rate > 0 || dup_rate > 0 ||
           (reorder_rate > 0 && reorder_window > 0) || corrupt_rate > 0 ||
           (jitter_rate > 0 && jitter_max > 0);
  }
};

/// What the fault layer did to the traffic, for test assertions and bench
/// reports. `shipped` counts ship() calls; `delivered` counts packets
/// pushed into a receive queue (dups add, drops subtract).
struct FaultCounters {
  std::uint64_t shipped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t partition_dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t jittered = 0;

  void merge(const FaultCounters& other);
  [[nodiscard]] std::string to_string() const;
};

/// Ack/retransmit bookkeeping of the reliable-delivery shim (net/reliable)
/// — defined here so mad::TrafficStats can embed it without pulling in the
/// whole shim. All counters are per reliable endpoint (link level).
struct ReliabilityCounters {
  std::uint64_t data_frames = 0;  // first transmissions
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t dup_frames = 0;      // duplicates discarded on receive
  std::uint64_t corrupt_frames = 0;  // checksum failures discarded
  std::uint64_t give_ups = 0;        // links declared dead
  /// Largest retransmit timeout any frame backed off to (for asserting the
  /// exponential-backoff cap).
  sim::Duration max_rto = 0;
  /// RTT sampling over the shim's seq/ack stamps, feeding the congestion
  /// layer (mad/congestion.hpp). Karn's rule: only frames that were never
  /// retransmitted are sampled, so a retransmit ack cannot be mistaken
  /// for the original's. srtt is the smoothed estimate at the last
  /// sample; min_rtt the smallest clean sample. Both 0 until sampled.
  std::uint64_t rtt_samples = 0;
  sim::Duration srtt = 0;
  sim::Duration min_rtt = 0;

  void merge(const ReliabilityCounters& other);
  [[nodiscard]] std::string to_string() const;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Faults applied to links without a per-link override.
  void set_default_faults(const LinkFaults& faults) {
    default_faults_ = faults;
  }
  /// Faults of the directed link src -> dst.
  void set_link_faults(std::uint32_t src, std::uint32_t dst,
                       const LinkFaults& faults) {
    per_link_[{src, dst}] = faults;
  }
  [[nodiscard]] const LinkFaults& faults_for(std::uint32_t src,
                                             std::uint32_t dst) const;

  /// Script a symmetric partition between nodes a and b: every packet in
  /// either direction with ship time in [from, until) is dropped.
  /// `until == kNever` means the partition never heals.
  void partition(std::uint32_t a, std::uint32_t b, sim::Time from,
                 sim::Time until = sim::kNever);
  /// One-directional variant (asymmetric link failure).
  void partition_one_way(std::uint32_t src, std::uint32_t dst,
                         sim::Time from, sim::Time until = sim::kNever);
  [[nodiscard]] bool is_partitioned(std::uint32_t src, std::uint32_t dst,
                                    sim::Time now) const;

  /// The fate of one packet shipped src -> dst at virtual time `now`.
  /// Consumes random draws; the fabric must call it exactly once per
  /// ship() so the decision stream stays aligned across runs.
  struct Decision {
    bool drop = false;
    bool partition_drop = false;
    bool duplicate = false;
    bool corrupt = false;
    std::uint32_t corrupt_offset = 0;  // byte index mod payload size
    std::uint8_t corrupt_xor = 0;      // non-zero flip mask
    std::uint32_t hold_back = 0;       // overtake budget; 0 = in order
    sim::Duration reorder_timeout = 0;
    sim::Duration extra_delay = 0;
  };
  Decision decide(std::uint32_t src, std::uint32_t dst, sim::Time now);

  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  /// Mutable view for the fabric's delivery-side accounting.
  [[nodiscard]] FaultCounters& counters_mutable() { return counters_; }

 private:
  struct PartitionWindow {
    sim::Time from;
    sim::Time until;
  };

  std::uint64_t seed_;
  Rng rng_;
  LinkFaults default_faults_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkFaults> per_link_;
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<PartitionWindow>>
      partitions_;
  FaultCounters counters_;
};

/// Checksum carried in fault-aware wire headers (the reliable shim's frame
/// header uses it to detect in-flight corruption). 32-bit fold of FNV-1a.
[[nodiscard]] std::uint32_t wire_checksum(const std::byte* data,
                                          std::size_t size);

}  // namespace mad2::net
