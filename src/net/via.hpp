// VIA (Virtual Interface Architecture) over a simulated VI-capable NIC.
//
// The model the paper's VIA PMM targets (Dunning et al., IEEE Micro '98):
//  - communication happens on *virtual interfaces* (here: an implicit VI
//    per node pair) through send and receive descriptor queues;
//  - every receive buffer must be *posted* before the matching send
//    arrives; a send with no posted receive descriptor is a fatal VI error
//    (Madeleine's VIA TM prevents this with credits / rendezvous);
//  - all buffers must live in *registered* memory; registration is
//    expensive, so small transfers copy through preregistered pools while
//    large ones register the user buffer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hw/node.hpp"
#include "net/wire.hpp"
#include "sim/sync.hpp"

namespace mad2::net {

struct ViaParams {
  sim::Duration doorbell = sim::from_us(0.8);     // post-send entry
  sim::Duration completion = sim::from_us(0.8);   // completion reaping
  sim::Duration register_base = sim::from_us(5.0);
  sim::Duration register_per_page = sim::nanoseconds(200);
  std::uint32_t page_bytes = 4096;
  std::uint32_t mtu = 4096;  // descriptor-level fragmentation
  std::uint32_t header_bytes = 16;
  std::size_t tx_stage_depth = 4;
  FabricParams fabric;

  static ViaParams generic_nic();
};

/// Opaque registration handle.
struct ViaMemoryHandle {
  std::uint64_t id = 0;
};

/// A completed receive: the posted buffer and how many bytes landed in it.
struct ViaRecvCompletion {
  std::span<std::byte> buffer;
  std::size_t bytes = 0;
};

class ViaPort;

class ViaNetwork {
 public:
  ViaNetwork(sim::Simulator* simulator, std::vector<hw::Node*> nodes,
             ViaParams params);
  ~ViaNetwork();

  [[nodiscard]] std::size_t size() const { return ports_.size(); }
  [[nodiscard]] ViaPort& port(std::uint32_t rank) { return *ports_[rank]; }
  [[nodiscard]] const ViaParams& params() const { return params_; }

 private:
  friend class ViaPort;
  struct Packet {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t vi;
    std::uint64_t offset;     // within the current send descriptor
    std::uint64_t total_len;  // descriptor length
    std::vector<std::byte> data;
  };

  sim::Simulator* simulator_;
  ViaParams params_;
  PacketFabric<Packet> fabric_;
  std::vector<std::unique_ptr<ViaPort>> ports_;
};

class ViaPort {
 public:
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] hw::Node& node() { return *node_; }

  /// Register a memory region (charged: base + per-page cost). The model
  /// does not enforce that send/post buffers are registered; the Madeleine
  /// VIA TM calls this where the real interface would require it.
  ViaMemoryHandle register_memory(std::span<const std::byte> region);
  void deregister(ViaMemoryHandle handle);

  /// Post a receive descriptor on VI number `vi` from `peer`. Descriptors
  /// are consumed strictly in post order per VI. Multiple VIs per peer let
  /// upper layers separate small/control traffic from bulk rendezvous
  /// transfers (as real VIA deployments do).
  void post_recv(std::uint32_t peer, std::span<std::byte> buffer,
                 std::uint32_t vi = 0);

  /// Send on VI `vi` to `peer`. The data lands in the oldest posted receive
  /// descriptor at the destination; if none is posted when data arrives,
  /// the VI is broken (fatal, as in real VIA). Returns when the host
  /// buffer is reusable.
  void send(std::uint32_t peer, std::span<const std::byte> data,
            std::uint32_t vi = 0);

  /// Reap the next receive completion on VI `vi` from `peer` (in post
  /// order). Blocks until one is complete.
  ViaRecvCompletion wait_recv(std::uint32_t peer, std::uint32_t vi = 0);

  /// True if a completed (unreaped) receive exists on VI `vi` from `peer`.
  [[nodiscard]] bool recv_ready(std::uint32_t peer,
                                std::uint32_t vi = 0) const;

  /// Number of receive descriptors currently posted (incl. in-fill) on VI
  /// `vi` from `peer` — lets the TM track credits.
  [[nodiscard]] std::size_t posted_count(std::uint32_t peer,
                                         std::uint32_t vi = 0) const;

  /// Block until `pred()` holds; re-evaluated after every completion on
  /// any VI of this port.
  void wait_any(const std::function<bool()>& pred);

 private:
  friend class ViaNetwork;
  using Packet = ViaNetwork::Packet;

  ViaPort(ViaNetwork* network, hw::Node* node, std::uint32_t rank);

  void tx_loop();
  void rx_loop();

  struct Descriptor {
    std::span<std::byte> buffer;
    std::uint64_t received = 0;
    bool complete = false;
    std::size_t bytes = 0;
  };
  struct ViState {
    std::deque<Descriptor> posted;
    std::unique_ptr<sim::WaitQueue> completion;
  };

  ViState& vi_state(std::uint32_t peer, std::uint32_t vi);
  [[nodiscard]] const ViState* vi_if_exists(std::uint32_t peer,
                                            std::uint32_t vi) const;

  ViaNetwork* network_;
  hw::Node* node_;
  std::uint32_t rank_;
  std::map<std::uint64_t, ViState> vis_;  // key: peer << 32 | vi
  std::unique_ptr<sim::WaitQueue> any_completion_;
  std::unique_ptr<sim::BoundedChannel<Packet>> tx_stage_;
  std::uint64_t next_handle_ = 1;
};

}  // namespace mad2::net
