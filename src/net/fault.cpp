#include "net/fault.hpp"

#include <cstdio>

#include "util/bytes.hpp"

namespace mad2::net {

void FaultCounters::merge(const FaultCounters& other) {
  shipped += other.shipped;
  delivered += other.delivered;
  dropped += other.dropped;
  partition_dropped += other.partition_dropped;
  duplicated += other.duplicated;
  reordered += other.reordered;
  corrupted += other.corrupted;
  jittered += other.jittered;
}

std::string FaultCounters::to_string() const {
  char line[256];
  std::snprintf(line, sizeof line,
                "faults: %llu shipped, %llu delivered, %llu dropped "
                "(%llu by partition), %llu duplicated, %llu reordered, "
                "%llu corrupted, %llu jittered",
                static_cast<unsigned long long>(shipped),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(partition_dropped),
                static_cast<unsigned long long>(duplicated),
                static_cast<unsigned long long>(reordered),
                static_cast<unsigned long long>(corrupted),
                static_cast<unsigned long long>(jittered));
  return line;
}

void ReliabilityCounters::merge(const ReliabilityCounters& other) {
  data_frames += other.data_frames;
  retransmits += other.retransmits;
  acks_sent += other.acks_sent;
  dup_frames += other.dup_frames;
  corrupt_frames += other.corrupt_frames;
  give_ups += other.give_ups;
  if (other.max_rto > max_rto) max_rto = other.max_rto;
  rtt_samples += other.rtt_samples;
  // srtt is a snapshot, not a sum; keep the largest observed, and the
  // smallest non-zero floor.
  if (other.srtt > srtt) srtt = other.srtt;
  if (other.min_rtt != 0 && (min_rtt == 0 || other.min_rtt < min_rtt)) {
    min_rtt = other.min_rtt;
  }
}

std::string ReliabilityCounters::to_string() const {
  char line[256];
  std::snprintf(line, sizeof line,
                "reliability: %llu data frames, %llu retransmits, "
                "%llu acks, %llu dups dropped, %llu corrupt dropped, "
                "%llu give-ups, max rto %.1f us",
                static_cast<unsigned long long>(data_frames),
                static_cast<unsigned long long>(retransmits),
                static_cast<unsigned long long>(acks_sent),
                static_cast<unsigned long long>(dup_frames),
                static_cast<unsigned long long>(corrupt_frames),
                static_cast<unsigned long long>(give_ups),
                sim::to_us(max_rto));
  std::string out = line;
  if (rtt_samples != 0) {
    std::snprintf(line, sizeof line,
                  ", %llu rtt samples, srtt %.1f us, min rtt %.1f us",
                  static_cast<unsigned long long>(rtt_samples),
                  sim::to_us(srtt), sim::to_us(min_rtt));
    out += line;
  }
  return out;
}

const LinkFaults& FaultPlan::faults_for(std::uint32_t src,
                                        std::uint32_t dst) const {
  auto it = per_link_.find({src, dst});
  if (it != per_link_.end()) return it->second;
  return default_faults_;
}

void FaultPlan::partition(std::uint32_t a, std::uint32_t b, sim::Time from,
                          sim::Time until) {
  partition_one_way(a, b, from, until);
  partition_one_way(b, a, from, until);
}

void FaultPlan::partition_one_way(std::uint32_t src, std::uint32_t dst,
                                  sim::Time from, sim::Time until) {
  partitions_[{src, dst}].push_back(PartitionWindow{from, until});
}

bool FaultPlan::is_partitioned(std::uint32_t src, std::uint32_t dst,
                               sim::Time now) const {
  auto it = partitions_.find({src, dst});
  if (it == partitions_.end()) return false;
  for (const PartitionWindow& window : it->second) {
    if (now >= window.from && now < window.until) return true;
  }
  return false;
}

FaultPlan::Decision FaultPlan::decide(std::uint32_t src, std::uint32_t dst,
                                      sim::Time now) {
  ++counters_.shipped;
  Decision decision;
  if (is_partitioned(src, dst, now)) {
    // Partition drops are scripted, not probabilistic: no random draws, so
    // adding a partition does not shift the fault schedule of other links.
    decision.drop = true;
    decision.partition_drop = true;
    ++counters_.partition_dropped;
    return decision;
  }
  const LinkFaults& faults = faults_for(src, dst);
  if (!faults.any()) return decision;

  // Fixed draw order (drop, dup, corrupt, reorder, jitter) keeps the
  // random stream aligned: toggling one fault kind off only removes its
  // own draws for links where its rate was positive.
  if (faults.drop_rate > 0 && rng_.next_bool(faults.drop_rate)) {
    decision.drop = true;
    ++counters_.dropped;
    return decision;
  }
  if (faults.dup_rate > 0 && rng_.next_bool(faults.dup_rate)) {
    decision.duplicate = true;
    ++counters_.duplicated;
  }
  if (faults.corrupt_rate > 0 && rng_.next_bool(faults.corrupt_rate)) {
    decision.corrupt = true;
    decision.corrupt_offset = static_cast<std::uint32_t>(rng_.next_u64());
    decision.corrupt_xor =
        static_cast<std::uint8_t>(rng_.next_range(1, 255));
    ++counters_.corrupted;
  }
  if (faults.reorder_rate > 0 && faults.reorder_window > 0 &&
      rng_.next_bool(faults.reorder_rate)) {
    decision.hold_back = static_cast<std::uint32_t>(
        rng_.next_range(1, faults.reorder_window));
    decision.reorder_timeout = faults.reorder_timeout;
    ++counters_.reordered;
  }
  if (faults.jitter_rate > 0 && faults.jitter_max > 0 &&
      rng_.next_bool(faults.jitter_rate)) {
    decision.extra_delay = static_cast<sim::Duration>(
        rng_.next_below(static_cast<std::uint64_t>(faults.jitter_max) + 1));
    ++counters_.jittered;
  }
  return decision;
}

std::uint32_t wire_checksum(const std::byte* data, std::size_t size) {
  const std::uint64_t h = fnv1a({data, size});
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace mad2::net
