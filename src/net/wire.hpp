// Generic packet transport shared by the protocol drivers.
//
// A PacketFabric models one physical network: per-port transmit links
// (sender-side serialization), bounded receiver NIC buffering (back-pressure
// all the way to the sender), and fixed propagation delay. The protocol
// drivers (BIP, SISCI, TCP, VIA) layer their own semantics — tags, segments,
// streams, descriptors — on top.
//
// Ordering: packets shipped by a single fiber from a given port arrive at
// any given destination in ship() order. Drivers that need total per-pair
// order across application fibers must funnel sends through one tx fiber
// (the BIP driver does).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/resource.hpp"
#include "sim/sync.hpp"

namespace mad2::net {

struct FabricParams {
  std::string name = "net";
  /// Link serialization bandwidth per port (decimal MB/s).
  double wire_mbs = 160.0;
  /// Propagation + switching delay per packet.
  sim::Duration propagation = sim::nanoseconds(500);
  /// Firmware cost charged to the shipping fiber per packet.
  sim::Duration per_packet = 0;
  /// Wire arbitration granularity.
  std::uint32_t wire_chunk_bytes = 4096;
  /// Receiver NIC buffering, in packets. ship() blocks when the
  /// destination NIC is full (back-pressure).
  std::size_t rx_slots = 64;
};

template <typename P>
class PacketFabric {
 public:
  PacketFabric(sim::Simulator* simulator, FabricParams params)
      : simulator_(simulator), params_(std::move(params)) {}

  /// Add a port; ports are numbered 0, 1, ... in creation order.
  std::uint32_t add_port() {
    auto port = std::make_unique<Port>();
    port->tx = std::make_unique<hw::ChunkedResource>(
        simulator_, hw::ChunkedResource::Params{
                        params_.name + ".wire", params_.wire_chunk_bytes,
                        /*per_chunk_overhead=*/0, /*turnaround=*/0,
                        /*strict_priority=*/false});
    port->slots =
        std::make_unique<sim::Semaphore>(simulator_, params_.rx_slots);
    port->arrival = std::make_unique<sim::WaitQueue>(simulator_);
    ports_.push_back(std::move(port));
    return static_cast<std::uint32_t>(ports_.size() - 1);
  }

  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }
  [[nodiscard]] const FabricParams& params() const { return params_; }

  /// Move a packet from `src` to `dst`, charging the calling fiber for the
  /// firmware cost and wire serialization of `wire_bytes`. Blocks while the
  /// destination NIC has no free packet slot.
  void ship(std::uint32_t src, std::uint32_t dst, P packet,
            std::uint64_t wire_bytes) {
    MAD2_CHECK(src < ports_.size() && dst < ports_.size(),
               "ship() with invalid port");
    Port& to = *ports_[dst];
    to.slots->acquire();
    if (params_.per_packet > 0) simulator_->advance(params_.per_packet);
    ports_[src]->tx->transfer(wire_bytes, params_.wire_mbs, hw::TxClass::kDma,
                              src);
    // Deliver after the propagation delay. The shared_ptr carries the
    // payload through the std::function (which must be copyable).
    auto slot = std::make_shared<P>(std::move(packet));
    simulator_->post_after(params_.propagation, [this, dst, slot] {
      Port& port = *ports_[dst];
      port.rx.push_back(std::move(*slot));
      port.arrival->notify_one();
    });
  }

  /// Blocking receive of the next packet addressed to `port`.
  P receive(std::uint32_t port) {
    Port& p = *ports_[port];
    while (p.rx.empty()) p.arrival->wait();
    P packet = std::move(p.rx.front());
    p.rx.pop_front();
    p.slots->release();
    return packet;
  }

  std::optional<P> try_receive(std::uint32_t port) {
    Port& p = *ports_[port];
    if (p.rx.empty()) return std::nullopt;
    P packet = std::move(p.rx.front());
    p.rx.pop_front();
    p.slots->release();
    return packet;
  }

  [[nodiscard]] bool pending(std::uint32_t port) const {
    return !ports_[port]->rx.empty();
  }

 private:
  struct Port {
    std::unique_ptr<hw::ChunkedResource> tx;
    std::unique_ptr<sim::Semaphore> slots;
    std::deque<P> rx;
    std::unique_ptr<sim::WaitQueue> arrival;
  };

  sim::Simulator* simulator_;
  FabricParams params_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace mad2::net
