// Generic packet transport shared by the protocol drivers.
//
// A PacketFabric models one physical network: per-port transmit links
// (sender-side serialization), bounded receiver NIC buffering (back-pressure
// all the way to the sender), and fixed propagation delay. The protocol
// drivers (BIP, SISCI, TCP, VIA) layer their own semantics — tags, segments,
// streams, descriptors — on top.
//
// Ordering: packets shipped by a single fiber from a given port arrive at
// any given destination in ship() order. Drivers that need total per-pair
// order across application fibers must funnel sends through one tx fiber
// (the BIP driver does).
//
// Fault injection: attaching a net::FaultPlan (FabricParams::faults) makes
// the fabric drop, duplicate, reorder, corrupt, delay, or partition traffic
// under a deterministic seed. With no plan attached, behavior and timing
// are bit-for-bit identical to the lossless fabric. Under a plan, the
// ordering guarantee above no longer holds — layer net::ReliableNetwork on
// top to win it back.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hw/resource.hpp"
#include "net/fault.hpp"
#include "sim/sync.hpp"

namespace mad2::net {

/// Fault-injection byte access. The fabric corrupts packets through this
/// hook; packet types that want corruption to be observable define a
/// friend/namespace overload (found by ADL) exposing their payload bytes.
/// The default exposes nothing, so corruption decisions on opaque packet
/// types deliver the packet intact.
template <typename P>
inline std::span<std::byte> fault_payload(P&) {
  return {};
}

struct FabricParams {
  std::string name = "net";
  /// Link serialization bandwidth per port (decimal MB/s).
  double wire_mbs = 160.0;
  /// Propagation + switching delay per packet.
  sim::Duration propagation = sim::nanoseconds(500);
  /// Firmware cost charged to the shipping fiber per packet.
  sim::Duration per_packet = 0;
  /// Wire arbitration granularity.
  std::uint32_t wire_chunk_bytes = 4096;
  /// Receiver NIC buffering, in packets. ship() blocks when the
  /// destination NIC is full (back-pressure).
  std::size_t rx_slots = 64;
  /// Optional fault injection (not owned; must outlive the fabric).
  /// nullptr = lossless fabric.
  FaultPlan* faults = nullptr;
};

template <typename P>
class PacketFabric {
 public:
  PacketFabric(sim::Simulator* simulator, FabricParams params)
      : simulator_(simulator), params_(std::move(params)) {}

  /// Add a port; ports are numbered 0, 1, ... in creation order.
  std::uint32_t add_port() {
    auto port = std::make_unique<Port>();
    port->tx = std::make_unique<hw::ChunkedResource>(
        simulator_, hw::ChunkedResource::Params{
                        params_.name + ".wire", params_.wire_chunk_bytes,
                        /*per_chunk_overhead=*/0, /*turnaround=*/0,
                        /*strict_priority=*/false});
    port->slots =
        std::make_unique<sim::Semaphore>(simulator_, params_.rx_slots);
    port->arrival = std::make_unique<sim::WaitQueue>(simulator_);
    ports_.push_back(std::move(port));
    return static_cast<std::uint32_t>(ports_.size() - 1);
  }

  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }
  [[nodiscard]] const FabricParams& params() const { return params_; }
  [[nodiscard]] FaultPlan* fault_plan() const { return params_.faults; }

  /// Move a packet from `src` to `dst`, charging the calling fiber for the
  /// firmware cost and wire serialization of `wire_bytes`. Blocks while the
  /// destination NIC has no free packet slot.
  void ship(std::uint32_t src, std::uint32_t dst, P packet,
            std::uint64_t wire_bytes) {
    MAD2_CHECK(src < ports_.size() && dst < ports_.size(),
               "ship() with invalid port");
    FaultPlan::Decision decision;
    if (params_.faults != nullptr) {
      decision = params_.faults->decide(src, dst, simulator_->now());
    }
    if (decision.drop) {
      // The sender still pays firmware and serialization — the frame left
      // the NIC and died on the wire (or hit a partitioned link) — but it
      // neither consumes a receiver slot nor blocks on a full/unreachable
      // destination.
      if (params_.per_packet > 0) simulator_->advance(params_.per_packet);
      ports_[src]->tx->transfer(wire_bytes, params_.wire_mbs,
                                hw::TxClass::kDma, src);
      return;
    }
    Port& to = *ports_[dst];
    to.slots->acquire();
    if (params_.per_packet > 0) simulator_->advance(params_.per_packet);
    ports_[src]->tx->transfer(wire_bytes, params_.wire_mbs, hw::TxClass::kDma,
                              src);
    if (decision.corrupt) {
      std::span<std::byte> bytes = fault_payload(packet);
      if (!bytes.empty()) {
        bytes[decision.corrupt_offset % bytes.size()] ^=
            std::byte{decision.corrupt_xor};
      }
    }
    // A duplicate is a second independent delivery; it needs its own
    // receiver slot. A full NIC squashes the copy rather than blocking the
    // sender twice for one packet.
    const bool duplicate = decision.duplicate && to.slots->try_acquire();
    const sim::Duration delay = params_.propagation + decision.extra_delay;
    // The shared_ptr carries the payload through the std::function (which
    // must be copyable).
    auto slot = std::make_shared<P>(std::move(packet));
    if (duplicate) {
      // Same flight time; the copy lands right behind the original (or in
      // front of it while the original is held back for reordering).
      auto copy = std::make_shared<P>(*slot);
      simulator_->post_after(delay, [this, dst, copy] {
        arrive(dst, std::move(*copy));
      });
    }
    if (decision.hold_back > 0) {
      simulator_->post_after(
          delay, [this, dst, slot, hold = decision.hold_back,
                  timeout = decision.reorder_timeout] {
            hold_back(dst, std::move(*slot), hold, timeout);
          });
    } else {
      simulator_->post_after(delay, [this, dst, slot] {
        arrive(dst, std::move(*slot));
      });
    }
  }

  /// Blocking receive of the next packet addressed to `port`.
  P receive(std::uint32_t port) {
    Port& p = *ports_[port];
    while (p.rx.empty()) p.arrival->wait();
    P packet = std::move(p.rx.front());
    p.rx.pop_front();
    p.slots->release();
    return packet;
  }

  std::optional<P> try_receive(std::uint32_t port) {
    Port& p = *ports_[port];
    if (p.rx.empty()) return std::nullopt;
    P packet = std::move(p.rx.front());
    p.rx.pop_front();
    p.slots->release();
    return packet;
  }

  [[nodiscard]] bool pending(std::uint32_t port) const {
    return !ports_[port]->rx.empty();
  }

 private:
  struct Held {
    P packet;
    std::uint32_t budget;  // deliveries left before forced release
    std::uint64_t id;      // for the timeout safety valve
  };
  struct Port {
    std::unique_ptr<hw::ChunkedResource> tx;
    std::unique_ptr<sim::Semaphore> slots;
    std::deque<P> rx;
    std::unique_ptr<sim::WaitQueue> arrival;
    std::deque<Held> held;
    std::uint64_t next_held_id = 0;
  };

  /// Put `packet` into the receive queue. Every delivery decrements the
  /// overtake budget of each held-back packet once; exhausted ones are
  /// released, and a release is itself a delivery (cascade).
  void arrive(std::uint32_t dst, P packet) {
    Port& port = *ports_[dst];
    std::deque<P> pending;
    pending.push_back(std::move(packet));
    while (!pending.empty()) {
      P next = std::move(pending.front());
      pending.pop_front();
      push_rx(port, std::move(next));
      for (auto it = port.held.begin(); it != port.held.end();) {
        if (--it->budget == 0) {
          pending.push_back(std::move(it->packet));
          it = port.held.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  void hold_back(std::uint32_t dst, P packet, std::uint32_t budget,
                 sim::Duration timeout) {
    Port& port = *ports_[dst];
    const std::uint64_t id = port.next_held_id++;
    port.held.push_back(Held{std::move(packet), budget, id});
    // Safety valve: with no follow-on traffic the packet must still arrive
    // eventually, or a quiet link would stall forever.
    simulator_->post_after(timeout, [this, dst, id] {
      Port& p = *ports_[dst];
      for (auto it = p.held.begin(); it != p.held.end(); ++it) {
        if (it->id == id) {
          P held = std::move(it->packet);
          p.held.erase(it);
          arrive(dst, std::move(held));
          return;
        }
      }
    });
  }

  void push_rx(Port& port, P packet) {
    port.rx.push_back(std::move(packet));
    if (params_.faults != nullptr) {
      ++params_.faults->counters_mutable().delivered;
    }
    port.arrival->notify_one();
  }

  sim::Simulator* simulator_;
  FabricParams params_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace mad2::net
