#include "net/reliable.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/debug_hook.hpp"

namespace mad2::net {

std::uint32_t frame_checksum(const ReliableFrame& frame) {
  std::byte header[17];
  store_u32(header + 0, frame.src);
  store_u32(header + 4, frame.channel);
  header[8] = std::byte{frame.kind};
  store_u32(header + 9, frame.seq);
  store_u32(header + 13, frame.ack);
  return wire_checksum(header, sizeof header) ^
         wire_checksum(frame.payload.data(), frame.payload.size());
}

// -------------------------------------------------------- ReliableNetwork ---

ReliableNetwork::ReliableNetwork(sim::Simulator* simulator,
                                 FabricParams fabric_params,
                                 ReliableParams params)
    : simulator_(simulator),
      params_(params),
      fabric_(simulator, std::move(fabric_params)) {}

ReliableNetwork::~ReliableNetwork() = default;

std::uint32_t ReliableNetwork::add_port() {
  const std::uint32_t rank = fabric_.add_port();
  MAD2_CHECK(rank == endpoints_.size(), "fabric/endpoint rank drift");
  endpoints_.emplace_back(new ReliableEndpoint(this, rank));
  return rank;
}

ReliableEndpoint& ReliableNetwork::endpoint(std::uint32_t port) {
  MAD2_CHECK(port < endpoints_.size(), "unknown reliable endpoint");
  return *endpoints_[port];
}

// ------------------------------------------------------- ReliableEndpoint ---

ReliableEndpoint::ReliableEndpoint(ReliableNetwork* network,
                                   std::uint32_t rank)
    : network_(network),
      rank_(rank),
      rx_ready_(network->simulator_),
      window_room_(network->simulator_),
      ack_pending_(network->simulator_),
      timer_wakeup_(network->simulator_) {
  const std::string tag = "." + std::to_string(rank_);
  network_->simulator_->spawn_daemon("rel.rx" + tag, [this] { rx_loop(); });
  network_->simulator_->spawn_daemon("rel.ack" + tag, [this] { ack_loop(); });
  network_->simulator_->spawn_daemon("rel.rto" + tag,
                                     [this] { retransmit_loop(); });
}

std::uint64_t ReliableEndpoint::wire_bytes(const ReliableFrame& frame) const {
  return network_->params_.header_bytes + frame.payload.size();
}

Status ReliableEndpoint::send(std::uint32_t dst, std::uint32_t channel,
                              std::vector<std::byte> payload) {
  MAD2_CHECK(dst < network_->port_count(), "send() to unknown port");
  MAD2_CHECK(dst != rank_, "send() to self");
  PeerTx& tx = tx_[dst];
  while (health_.is_ok() &&
         tx.outstanding.size() >= network_->params_.window) {
    window_room_.wait();
  }
  if (!health_.is_ok()) return health_;

  ReliableFrame frame;
  frame.src = rank_;
  frame.channel = channel;
  frame.kind = ReliableFrame::kData;
  frame.seq = tx.next_seq++;
  frame.ack = rx_[dst].next_expected - 1;  // piggybacked cumulative ack
  frame.payload = std::move(payload);
  frame.checksum = frame_checksum(frame);
  const std::uint64_t bytes = wire_bytes(frame);

  // Register before shipping: ship() blocks on wire serialization, and the
  // ack can race back before it returns. The retransmit clock starts only
  // once the frame is actually on the wire.
  const std::uint32_t seq = frame.seq;
  const bool inserted =
      tx.outstanding
          .emplace(seq, Outstanding{frame, sim::kNever,
                                    network_->params_.rto_initial, 0,
                                    network_->simulator_->now()})
          .second;
  MAD2_CHECK(inserted, "duplicate sequence number in flight");
  ++counters_.data_frames;
  network_->fabric_.ship(rank_, dst, std::move(frame), bytes);

  auto still = tx.outstanding.find(seq);
  if (still != tx.outstanding.end()) {
    still->second.deadline =
        network_->simulator_->now() + network_->params_.rto_initial;
    timer_wakeup_.notify_all();
  }
  return Status::ok();
}

Status ReliableEndpoint::wait_drained(std::uint32_t dst) {
  // handle_ack and fail_link both notify window_room_, so the wait set
  // below covers every way the outstanding map can shrink or the loop
  // can become hopeless.
  for (;;) {
    if (!health_.is_ok()) return health_;
    auto it = tx_.find(dst);
    if (it == tx_.end() || it->second.outstanding.empty()) {
      return Status::ok();
    }
    window_room_.wait();
  }
}

Status ReliableEndpoint::recv(Message& out) {
  while (delivery_.empty() && health_.is_ok()) rx_ready_.wait();
  if (!delivery_.empty()) {
    out = std::move(delivery_.front());
    delivery_.pop_front();
    return Status::ok();
  }
  return health_;
}

void ReliableEndpoint::rx_loop() {
  for (;;) {
    ReliableFrame frame = network_->fabric_.receive(rank_);
    if (frame_checksum(frame) != frame.checksum) {
      // Indistinguishable from loss for the sender: no ack, so the frame
      // retransmits.
      ++counters_.corrupt_frames;
      continue;
    }
    handle_ack(frame.src, frame.ack);  // data frames piggyback acks too
    if (frame.kind == ReliableFrame::kData) handle_data(std::move(frame));
  }
}

void ReliableEndpoint::handle_data(ReliableFrame frame) {
  const std::uint32_t peer = frame.src;
  PeerRx& rx = rx_[peer];
  if (frame.seq < rx.next_expected ||
      rx.out_of_order.count(frame.seq) != 0) {
    // Duplicate (retransmit of something we already have, or a fabric
    // dup). Re-ack so a sender whose acks got lost stops retransmitting.
    ++counters_.dup_frames;
    queue_ack(peer);
    return;
  }
  rx.out_of_order.emplace(frame.seq, std::move(frame));
  bool delivered = false;
  for (auto it = rx.out_of_order.find(rx.next_expected);
       it != rx.out_of_order.end();
       it = rx.out_of_order.find(rx.next_expected)) {
    delivery_.push_back(Message{peer, it->second.channel,
                                std::move(it->second.payload)});
    rx.out_of_order.erase(it);
    ++rx.next_expected;
    delivered = true;
  }
  if (delivered) rx_ready_.notify_all();
  queue_ack(peer);
}

void ReliableEndpoint::handle_ack(std::uint32_t peer, std::uint32_t ack) {
  auto it = tx_.find(peer);
  if (it == tx_.end()) return;
  PeerTx& tx = it->second;
  bool erased = false;
  while (!tx.outstanding.empty() && tx.outstanding.begin()->first <= ack) {
    const Outstanding& out = tx.outstanding.begin()->second;
    // Karn's rule: a retransmitted frame's ack is ambiguous (it may
    // answer any copy), so only never-retransmitted frames are sampled.
    if (out.retransmits == 0) {
      sample_rtt(tx, network_->simulator_->now() - out.sent_at);
    }
    tx.outstanding.erase(tx.outstanding.begin());
    erased = true;
  }
  if (erased) {
    window_room_.notify_all();
    timer_wakeup_.notify_all();  // earliest deadline may have changed
  }
}

void ReliableEndpoint::sample_rtt(PeerTx& tx, sim::Duration rtt) {
  if (rtt < 0) rtt = 0;
  if (tx.rtt_samples == 0) {
    tx.srtt = rtt;
    tx.min_rtt = rtt;
  } else {
    tx.srtt += (rtt - tx.srtt) / 8;  // classic 1/8 EWMA
    if (rtt < tx.min_rtt) tx.min_rtt = rtt;
  }
  ++tx.rtt_samples;
  ++counters_.rtt_samples;
  counters_.srtt = tx.srtt;
  if (tx.min_rtt != 0 &&
      (counters_.min_rtt == 0 || tx.min_rtt < counters_.min_rtt)) {
    counters_.min_rtt = tx.min_rtt;
  }
}

sim::Duration ReliableEndpoint::srtt(std::uint32_t peer) const {
  auto it = tx_.find(peer);
  return it == tx_.end() ? 0 : it->second.srtt;
}

sim::Duration ReliableEndpoint::min_rtt(std::uint32_t peer) const {
  auto it = tx_.find(peer);
  return it == tx_.end() ? 0 : it->second.min_rtt;
}

void ReliableEndpoint::queue_ack(std::uint32_t peer) {
  if (ack_value_.count(peer) == 0) ack_order_.push_back(peer);
  // Coalesce: only the latest cumulative value matters.
  ack_value_[peer] = rx_[peer].next_expected - 1;
  ack_pending_.notify_all();
}

void ReliableEndpoint::ack_loop() {
  for (;;) {
    while (ack_order_.empty()) ack_pending_.wait();
    const std::uint32_t peer = ack_order_.front();
    ack_order_.pop_front();
    ReliableFrame frame;
    frame.src = rank_;
    frame.kind = ReliableFrame::kAck;
    frame.ack = ack_value_.at(peer);
    ack_value_.erase(peer);
    frame.checksum = frame_checksum(frame);
    ++counters_.acks_sent;
    // Shipping from this dedicated fiber keeps rx_loop from ever blocking
    // on a full peer NIC (which could deadlock two endpoints ack-ing each
    // other); acks queued meanwhile coalesce into the next round.
    network_->fabric_.ship(rank_, peer, std::move(frame),
                           network_->params_.header_bytes);
  }
}

void ReliableEndpoint::retransmit_loop() {
  const ReliableParams& params = network_->params_;
  for (;;) {
    if (!health_.is_ok()) return;
    sim::Time earliest = sim::kNever;
    for (const auto& [peer, tx] : tx_) {
      for (const auto& [seq, out] : tx.outstanding) {
        if (out.deadline < earliest) earliest = out.deadline;
      }
    }
    if (earliest == sim::kNever) {
      timer_wakeup_.wait();
      continue;
    }
    if (earliest > network_->simulator_->now()) {
      // Either the deadline fires or an ack/new-frame notification arrives
      // first; both ways we recompute. A false (notified) return says
      // nothing about the deadline set — classic spurious-wakeup rule.
      (void)timer_wakeup_.wait(earliest);
      continue;
    }
    // Retransmit every frame that is due. Collect sequence numbers first:
    // ship() blocks, and acks arriving meanwhile mutate the maps.
    for (auto& [peer, tx] : tx_) {
      std::vector<std::uint32_t> due;
      for (const auto& [seq, out] : tx.outstanding) {
        if (out.deadline <= network_->simulator_->now()) {
          due.push_back(seq);
        }
      }
      for (const std::uint32_t seq : due) {
        auto it = tx.outstanding.find(seq);
        if (it == tx.outstanding.end()) continue;  // acked while shipping
        Outstanding& out = it->second;
        if (out.retransmits >= params.max_retransmits) {
          fail_link(peer, out);
          return;
        }
        ++out.retransmits;
        ++counters_.retransmits;
        MAD2_TRACE_EVENT(obs::Category::kNet, "rel.retransmit", nullptr,
                         out.frame.seq, out.retransmits);
        out.rto = std::min(
            static_cast<sim::Duration>(static_cast<double>(out.rto) *
                                       params.backoff),
            params.rto_max);
        if (out.rto > counters_.max_rto) counters_.max_rto = out.rto;
        ReliableFrame copy = out.frame;
        const std::uint64_t bytes = wire_bytes(copy);
        network_->fabric_.ship(rank_, peer, std::move(copy), bytes);
        // Restart the clock after the (blocking) ship, same as first
        // transmissions, and only if no ack raced in.
        auto again = tx.outstanding.find(seq);
        if (again != tx.outstanding.end()) {
          again->second.deadline =
              network_->simulator_->now() + again->second.rto;
        }
      }
    }
  }
}

void ReliableEndpoint::fail_link(std::uint32_t peer,
                                 const Outstanding& frame) {
  if (!health_.is_ok()) return;
  ++counters_.give_ups;
  MAD2_TRACE_EVENT(obs::Category::kNet, "rel.give_up", nullptr,
                   frame.frame.seq, frame.retransmits);
  health_ = unavailable(
      "reliable link " + std::to_string(rank_) + "->" +
      std::to_string(peer) + " gave up: seq " +
      std::to_string(frame.frame.seq) + " unacked after " +
      std::to_string(frame.retransmits) + " retransmits");
  // A give-up is terminal for the link: dump the trace tail now, while
  // the events leading up to it are still in the ring.
  invoke_failure_dump_hook(health_.to_string().c_str());
  // Unblock everyone; they observe health() and fail cleanly instead of
  // waiting on a dead link.
  rx_ready_.notify_all();
  window_room_.notify_all();
  if (network_->link_error_handler_) {
    network_->link_error_handler_(rank_, peer, health_);
  }
  if (network_->error_handler_) network_->error_handler_(health_);
}

}  // namespace mad2::net
